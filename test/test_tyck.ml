(* Tests for the metapool type system: valid annotations pass the trusted
   checker; the Section 5 bug-injection experiment (4 kinds x 5 instances)
   is fully detected. *)

open Sva_pipeline
module Tyck = Sva_tyck.Tyck
module Inject = Sva_tyck.Inject
module Pointsto = Sva_analysis.Pointsto
module Allocdecl = Sva_analysis.Allocdecl

let allocator_src =
  "long __km_cursor = 0;\n\
   extern long sva_heap_base(void);\n\
   __noanalyze char *kmalloc(long size) {\n\
  \  if (size <= 0) return (char*)0;\n\
  \  if (__km_cursor == 0) __km_cursor = sva_heap_base();\n\
  \  long p = __km_cursor;\n\
  \  __km_cursor = __km_cursor + ((size + 15) / 16) * 16;\n\
  \  return (char*)p;\n\
   }\n\
   __noanalyze void kfree(char *p) { }\n"

(* A program with enough pointer structure for interesting annotations:
   linked structures, global tables, pointer loads/stores, array geps. *)
let kernelish_src =
  "extern char *kmalloc(long size);\n\
   struct buf { long len; char data[56]; };\n\
   struct conn { int id; int state; struct buf *rx; struct conn *next; };\n\
   struct conn *conn_list = 0;\n\
   int conn_count = 0;\n\
   struct conn *new_conn(int id) {\n\
  \  struct conn *c = (struct conn*)kmalloc(sizeof(struct conn));\n\
  \  c->id = id;\n\
  \  c->state = 0;\n\
  \  c->rx = (struct buf*)kmalloc(sizeof(struct buf));\n\
  \  c->rx->len = 0;\n\
  \  c->next = conn_list;\n\
  \  conn_list = c;\n\
  \  conn_count++;\n\
  \  return c;\n\
   }\n\
   struct conn *find_conn(int id) {\n\
  \  struct conn *c = conn_list;\n\
  \  while (c) { if (c->id == id) return c; c = c->next; }\n\
  \  return (struct conn*)0;\n\
   }\n\
   int push_byte(struct conn *c, int b) {\n\
  \  if (!c || !c->rx) return -1;\n\
  \  if (c->rx->len >= 56) return -1;\n\
  \  c->rx->data[c->rx->len] = (char)b;\n\
  \  c->rx->len++;\n\
  \  return 0;\n\
   }\n\
   int drive(void) {\n\
  \  struct conn *a = new_conn(1);\n\
  \  struct conn *b = new_conn(2);\n\
  \  push_byte(a, 65);\n\
  \  push_byte(b, 66);\n\
  \  struct conn *f = find_conn(2);\n\
  \  if (!f) return -1;\n\
  \  return conn_count;\n\
   }\n"

let aconfig =
  {
    Pointsto.default_config with
    Pointsto.allocators =
      [ Allocdecl.ordinary ~free:"kfree" ~size_arg:0 "kmalloc" ];
  }

let build () =
  Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~name:"tyck"
    [ allocator_src; kernelish_src ]

let test_valid_annotations_pass () =
  let b = build () in
  match b.Pipeline.bl_annot with
  | Some _ -> () (* build would have failed otherwise *)
  | None -> Alcotest.fail "pipeline did not produce annotations"

let get_parts b =
  match (b.Pipeline.bl_pa, b.Pipeline.bl_mps, b.Pipeline.bl_annot) with
  | Some pa, Some mps, Some an -> (pa, mps, an)
  | _ -> Alcotest.fail "missing analysis outputs"

let test_annotations_nonempty () =
  let b = build () in
  let _, _, an = get_parts b in
  Alcotest.(check bool) "value qualifiers" true
    (Hashtbl.length an.Tyck.an_value_mp > 10);
  Alcotest.(check bool) "succ edges" true (Hashtbl.length an.Tyck.an_succ > 0)

let test_still_runs () =
  let b = build () in
  let t = Pipeline.instantiate b in
  match Sva_interp.Interp.call t "drive" [] with
  | Some 2L -> ()
  | Some v -> Alcotest.failf "drive returned %Ld" v
  | None -> Alcotest.fail "void"

(* The Section 5 experiment: 4 kinds x 5 instances, all caught.  Note the
   checked module is the pre-instrumentation one; we rebuild without
   typecheck so annotations correspond to the uninstrumented module. *)
let experiment_parts () =
  let m =
    Minic.Lower.compile_strings ~name:"tyck" [ allocator_src; kernelish_src ]
  in
  Sva_ir.Passes.run Sva_ir.Passes.Llvm_like m;
  let pa = Pointsto.run ~config:aconfig m in
  let mps = Sva_safety.Metapool.infer m pa aconfig.Pointsto.allocators in
  let an = Tyck.extract m pa mps in
  (m, an)

let test_injection_experiment () =
  let m, an = experiment_parts () in
  Alcotest.(check (list string)) "clean annotations pass" []
    (List.map Tyck.string_of_error (Tyck.check m an));
  let results = Inject.experiment m an ~instances:5 in
  Alcotest.(check int) "20 bugs injected" 20 (List.length results);
  List.iter
    (fun (kind, desc, caught) ->
      if not caught then
        Alcotest.failf "missed %s: %s" (Inject.kind_name kind) desc)
    results

let test_each_kind_injectable () =
  let m, an = experiment_parts () in
  List.iter
    (fun kind ->
      match Inject.inject m an kind ~seed:0 with
      | Some (buggy, _) ->
          Alcotest.(check bool)
            (Inject.kind_name kind ^ " detected")
            false (Tyck.check_ok m buggy)
      | None -> Alcotest.failf "no site for %s" (Inject.kind_name kind))
    Inject.all_kinds

let test_copy_is_deep () =
  let m, an = experiment_parts () in
  (match Inject.inject m an Inject.Wrong_edge ~seed:0 with
  | Some _ -> ()
  | None -> Alcotest.fail "no injection site");
  (* The original must still check clean after injections created copies. *)
  Alcotest.(check bool) "original untouched" true (Tyck.check_ok m an)

(* ------------------------------------------------------------------ *)
(* Range certificates: the same PCC discipline for the interval
   analysis.  The producer's bundle must pass the trusted checker
   verbatim, and every injected certificate bug must be rejected.       *)
(* ------------------------------------------------------------------ *)

module Interval = Sva_analysis.Interval
module Rangecert = Sva_tyck.Rangecert

let range_src =
  "int tbl[64];\n\
   int get(long i) { return tbl[i]; }\n\
   long clamp(long v) {\n\
  \  if (v < 0) return 0;\n\
  \  if (v > 63) return 63;\n\
  \  return v;\n\
   }\n\
   int read_at(long v) { long j = clamp(v); return tbl[j]; }\n\
   int kmain(void) {\n\
  \  long s = 0;\n\
  \  for (long i = 0; i < 64; i = i + 1) tbl[i] = (int)i;\n\
  \  s = get(3) + get(7) + get(11);\n\
  \  s = s + read_at(5) + read_at(60);\n\
  \  return (int)s;\n\
   }\n"

let range_parts () =
  let m = Minic.Lower.compile_strings ~name:"rc" [ range_src ] in
  Sva_ir.Passes.run Sva_ir.Passes.Llvm_like m;
  let pa = Pointsto.run m in
  let entries fn = fn = "kmain" in
  let res = Interval.run ~entries m pa in
  List.iter
    (fun (f : Sva_ir.Func.t) ->
      Sva_ir.Func.iter_instrs f (fun _ i ->
          if Interval.certifiable res ~fname:f.Sva_ir.Func.f_name i then
            ignore
              (Interval.elide res ~fname:f.Sva_ir.Func.f_name i
                 Interval.Cbounds)))
    m.Sva_ir.Irmod.m_funcs;
  (m, Interval.bundle res, entries)

let test_rangecert_accepts_producer () =
  let m, b, entries = range_parts () in
  Alcotest.(check (list string))
    "producer bundle passes the trusted checker" []
    (List.map Rangecert.string_of_error (Rangecert.check ~entries m b));
  (* the fixture must exercise every justification the checker rules on *)
  Alcotest.(check bool) "has facts" true (Hashtbl.length b.Interval.cb_facts > 0);
  Alcotest.(check bool) "has certificates" true (b.Interval.cb_certs <> []);
  Alcotest.(check bool) "has a parameter claim" true
    (Hashtbl.length b.Interval.cb_params > 0);
  Alcotest.(check bool) "has a return claim" true
    (Hashtbl.length b.Interval.cb_rets > 0)

let test_rangecert_rejects_injections () =
  let m, b, entries = range_parts () in
  let results = Rangecert.experiment ~entries m b ~instances:5 in
  List.iter
    (fun bug ->
      if not (List.exists (fun (k, _, _) -> k = bug) results) then
        Alcotest.failf "no injection site for %s" (Rangecert.bug_name bug))
    Rangecert.all_bugs;
  List.iter
    (fun (bug, desc, caught) ->
      if not caught then
        Alcotest.failf "missed %s: %s" (Rangecert.bug_name bug) desc)
    results

let test_rangecert_copy_is_deep () =
  let m, b, entries = range_parts () in
  List.iter
    (fun bug -> ignore (Rangecert.inject m b bug ~seed:0))
    Rangecert.all_bugs;
  Alcotest.(check bool) "original bundle untouched" true
    (Rangecert.check_ok ~entries m b)

(* ---------- atomicity certificates (concurrency pass) ---------- *)

module Lockset = Sva_analysis.Lockset
module Atomcert = Sva_tyck.Atomcert
module Kbuild = Ukern.Kbuild

(* The producer side is the kernel plus the seeded race fixture — the
   same module pair sva_verify --atomcert gates on; built once and
   shared across the atomcert cases. *)
let atom_parts_cache = ref None

let atom_parts () =
  match !atom_parts_cache with
  | Some p -> p
  | None ->
      let v = Kbuild.as_tested in
      let m =
        Sva_pipeline.Pipeline.compile ~name:"tyck-atomcert"
          (Kbuild.race_fixture_sources v)
      in
      let pa = Pointsto.run ~config:(Kbuild.aconfig v) m in
      let res = Lockset.run m pa in
      let p = (m, res, Lockset.bundle res, Lockset.entry_config res) in
      atom_parts_cache := Some p;
      p

let test_racebugs_exact_match () =
  let _, res, _, _ = atom_parts () in
  let got =
    List.sort_uniq compare
      (List.map
         (fun (f : Lockset.finding) -> (f.Lockset.lf_checker, f.Lockset.lf_func))
         (Lockset.findings res))
  in
  let want = List.sort_uniq compare Ukern.Ksrc_racebugs.expected in
  Alcotest.(check (list (pair string string))) "fixture findings" want got

let test_atomcert_accepts_producer () =
  let m, _, b, entries = atom_parts () in
  Alcotest.(check (list string))
    "producer bundle passes the trusted checker" []
    (List.map Atomcert.string_of_error (Atomcert.check ~entries m b));
  Alcotest.(check bool) "has access certificates" true
    (b.Lockset.cb_acerts <> []);
  Alcotest.(check bool) "has function claims" true (b.Lockset.cb_fcerts <> [])

let test_atomcert_rejects_injections () =
  let m, _, b, entries = atom_parts () in
  let results = Atomcert.experiment ~entries m b ~instances:3 in
  List.iter
    (fun bug ->
      if not (List.exists (fun (k, _, _) -> k = bug) results) then
        Alcotest.failf "no injection site for %s" (Atomcert.bug_name bug))
    Atomcert.all_bugs;
  List.iter
    (fun (bug, desc, caught) ->
      if not caught then
        Alcotest.failf "missed %s: %s" (Atomcert.bug_name bug) desc)
    results

let test_atomcert_copy_is_deep () =
  let m, _, b, entries = atom_parts () in
  List.iter
    (fun bug -> ignore (Atomcert.inject m b bug ~seed:0))
    Atomcert.all_bugs;
  Alcotest.(check bool) "original bundle untouched" true
    (Atomcert.check_ok ~entries m b)

(* ---------- Pool-safety certificates (points-to evicted from the TCB):
   the producer bundle re-verifies on the local fixture and on the
   kernel; every injected pool-certificate bug is rejected; injection
   never mutates the original bundle; devirtualization emits a checked
   certificate per rewritten call. ---------- *)

module Poolcert = Sva_tyck.Poolcert
module Poolev = Sva_safety.Poolev

let bundle_of built =
  match built.Pipeline.bl_poolcert with
  | Some b -> b
  | None -> Alcotest.fail "poolcert build carried no evidence bundle"

(* The kernel producer the trusted checker gates on, built once and
   shared across the poolcert cases (same pattern as atom_parts). *)
let pool_parts_cache = ref None

let pool_parts () =
  match !pool_parts_cache with
  | Some p -> p
  | None ->
      let v = Kbuild.as_tested in
      let built = Kbuild.build ~poolcert:true v in
      let p = (built.Pipeline.bl_mod, bundle_of built, Kbuild.aconfig v) in
      pool_parts_cache := Some p;
      p

let test_poolcert_accepts_producer () =
  let built =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~poolcert:true
      ~name:"tyck-poolcert"
      [ allocator_src; kernelish_src ]
  in
  let b = bundle_of built in
  Alcotest.(check (list string))
    "producer bundle passes the trusted checker" []
    (List.map Poolcert.string_of_error
       (Poolcert.check ~config:aconfig built.Pipeline.bl_mod b));
  Alcotest.(check bool) "has TH certificates" true (b.Poolev.pb_th <> []);
  Alcotest.(check bool) "has completeness certificates" true
    (b.Poolev.pb_comp <> []);
  Alcotest.(check bool) "has recorded elisions" true
    (Poolev.elision_count b > 0)

let test_poolcert_kernel_accepts () =
  let m, b, config = pool_parts () in
  (* the pipeline gate already enforced acceptance; re-check explicitly *)
  Alcotest.(check (list string)) "kernel bundle re-verifies" []
    (List.map Poolcert.string_of_error (Poolcert.check ~config m b));
  Alcotest.(check bool) "kernel has certificates" true
    (Poolev.cert_count b > 0);
  Alcotest.(check bool) "kernel has elisions" true (Poolev.elision_count b > 0)

let test_poolcert_rejects_injections () =
  let m, b, config = pool_parts () in
  let results = Inject.pool_experiment ~config m b ~instances:3 in
  List.iter
    (fun bug ->
      if not (List.exists (fun (k, _, _) -> k = bug) results) then
        Alcotest.failf "no injection site for %s" (Inject.pool_bug_name bug))
    Inject.all_pool_bugs;
  Alcotest.(check int) "18 bugs injected (6 kinds x 3 instances)" 18
    (List.length results);
  List.iter
    (fun (bug, desc, caught) ->
      if not caught then
        Alcotest.failf "missed %s: %s" (Inject.pool_bug_name bug) desc)
    results

let test_poolcert_copy_is_deep () =
  let m, b, config = pool_parts () in
  List.iter
    (fun bug -> ignore (Inject.pool_inject m b bug ~seed:0))
    Inject.all_pool_bugs;
  Alcotest.(check bool) "original bundle untouched" true
    (Poolcert.check_ok ~config m b)

(* Devirtualization evidence: the same fixture test_opts uses, built
   with both devirtualization and certification on — the rewritten
   dispatch must carry exactly one certificate naming the real targets,
   and the trusted checker must accept it (the build's gate already
   did; assert the certificate's content here). *)
let devirt_src =
  "int inc(int x) { return x + 1; }\n\
   int dec(int x) { return x - 1; }\n\
   __callsig_assert int apply(int which, int v) {\n\
  \  int (*f)(int);\n\
  \  if (which) f = inc; else f = dec;\n\
  \  return f(v);\n\
   }"

let test_poolcert_devirt_cert () =
  let built =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~devirt:true ~poolcert:true
      ~name:"tyck-dv"
      [ allocator_src; devirt_src ]
  in
  let b = bundle_of built in
  Alcotest.(check int) "one devirtualization certificate" 1
    (List.length b.Poolev.pb_dv);
  let dc = List.hd b.Poolev.pb_dv in
  Alcotest.(check string) "certificate names the dispatching function"
    "apply" dc.Poolev.dc_func;
  Alcotest.(check (list string)) "claimed target set" [ "dec"; "inc" ]
    (List.sort compare dc.Poolev.dc_targets);
  Alcotest.(check bool) "bundle re-verifies" true
    (Poolcert.check_ok ~config:aconfig built.Pipeline.bl_mod b)

let () =
  Alcotest.run "sva_tyck"
    [
      ( "checker",
        [
          Alcotest.test_case "valid annotations pass" `Quick
            test_valid_annotations_pass;
          Alcotest.test_case "annotations nonempty" `Quick
            test_annotations_nonempty;
          Alcotest.test_case "instrumented module runs" `Quick test_still_runs;
        ] );
      ( "injection",
        [
          Alcotest.test_case "20-bug experiment (Section 5)" `Quick
            test_injection_experiment;
          Alcotest.test_case "each kind detected" `Quick test_each_kind_injectable;
          Alcotest.test_case "injection copies annotations" `Quick
            test_copy_is_deep;
        ] );
      ( "rangecert",
        [
          Alcotest.test_case "producer certificates accepted" `Quick
            test_rangecert_accepts_producer;
          Alcotest.test_case "injected certificate bugs rejected" `Quick
            test_rangecert_rejects_injections;
          Alcotest.test_case "injection copies bundle" `Quick
            test_rangecert_copy_is_deep;
        ] );
      ( "atomcert",
        [
          Alcotest.test_case "race fixture matches ground truth" `Quick
            test_racebugs_exact_match;
          Alcotest.test_case "producer certificates accepted" `Quick
            test_atomcert_accepts_producer;
          Alcotest.test_case "injected certificate bugs rejected" `Quick
            test_atomcert_rejects_injections;
          Alcotest.test_case "injection copies bundle" `Quick
            test_atomcert_copy_is_deep;
        ] );
      ( "poolcert",
        [
          Alcotest.test_case "producer bundle accepted" `Quick
            test_poolcert_accepts_producer;
          Alcotest.test_case "kernel bundle accepted" `Quick
            test_poolcert_kernel_accepts;
          Alcotest.test_case "injected certificate bugs rejected" `Quick
            test_poolcert_rejects_injections;
          Alcotest.test_case "injection copies bundle" `Quick
            test_poolcert_copy_is_deep;
          Alcotest.test_case "devirtualization certificate" `Quick
            test_poolcert_devirt_cert;
        ] );
    ]
