(* Tests for the static lint layer: the generic dataflow solver
   (convergence on diamonds and loops, both directions, edge
   refinement), one suite per checker over seeded-bug and clean inputs,
   the safe-access prover, the kernel-level guarantees (clean kernel,
   exact fixture match, deterministic output) and the Jsonout codec the
   benchmark --json flag uses. *)

open Sva_ir
module Dataflow = Sva_lint.Dataflow
module Lint = Sva_lint.Lint
module Report = Sva_lint.Report
module Pointsto = Sva_analysis.Pointsto
module Pipeline = Sva_pipeline.Pipeline
module Kbuild = Ukern.Kbuild
module J = Harness.Jsonout

(* ---------- the dataflow solver ---------- *)

(* Counting lattice: bottom 0, join max — high enough for the tests,
   finite height via the capped transfer functions below. *)
module MaxInt = struct
  type t = int

  let bottom = 0
  let equal = Int.equal
  let join = max
end

module S = Dataflow.Make (MaxInt)

let imm n = Value.imm n

(* entry --> then/else --> join: the classic diamond. *)
let diamond () =
  let m = Irmod.create "df" in
  let f = Func.create "f" Ty.i64 [ ("a", Ty.i64) ] in
  Irmod.add_func m f;
  let bld = Builder.create m f in
  ignore (Builder.start_block bld "entry");
  let c = Builder.b_icmp bld Instr.Ne (Func.param_value f 0) (imm 0) in
  Builder.b_br bld c "then" "else";
  ignore (Builder.start_block bld "then");
  ignore (Builder.b_binop bld Instr.Add (Func.param_value f 0) (imm 1));
  ignore (Builder.b_binop bld Instr.Add (Func.param_value f 0) (imm 2));
  Builder.b_jmp bld "join";
  ignore (Builder.start_block bld "else");
  Builder.b_jmp bld "join";
  ignore (Builder.start_block bld "join");
  Builder.b_ret bld (Some (Func.param_value f 0));
  (f, Cfg.build f)

(* entry --> header <--> body, header --> exit: a single natural loop. *)
let loop () =
  let m = Irmod.create "df" in
  let f = Func.create "f" Ty.i64 [ ("a", Ty.i64) ] in
  Irmod.add_func m f;
  let bld = Builder.create m f in
  ignore (Builder.start_block bld "entry");
  Builder.b_jmp bld "header";
  ignore (Builder.start_block bld "header");
  let c = Builder.b_icmp bld Instr.Ne (Func.param_value f 0) (imm 0) in
  Builder.b_br bld c "body" "exit";
  ignore (Builder.start_block bld "body");
  Builder.b_jmp bld "header";
  ignore (Builder.start_block bld "exit");
  Builder.b_ret bld (Some (Func.param_value f 0));
  (f, Cfg.build f)

let test_solver_diamond () =
  let f, cfg = diamond () in
  (* Transfer: instructions seen along the hottest path. *)
  let r =
    S.solve ~transfer:(fun b v -> v + List.length b.Func.insns) f cfg
  in
  (* terminators live outside [insns]: entry carries the icmp, then the
     two adds, else nothing. *)
  Alcotest.(check int) "entry in" 0 (r.S.input "entry");
  Alcotest.(check int) "then out" 3 (r.S.output "then");
  Alcotest.(check int) "else out" 1 (r.S.output "else");
  Alcotest.(check int) "join in = max of branches" 3 (r.S.input "join");
  (* acyclic graph in RPO: every block exactly once *)
  Alcotest.(check int) "one visit per block" 4 r.S.iterations

let test_solver_loop_converges () =
  let f, cfg = loop () in
  let r = S.solve ~transfer:(fun _ v -> min 10 (v + 1)) f cfg in
  (* the back edge feeds the header until the cap fixes the point *)
  Alcotest.(check int) "header stabilizes at the cap" 10 (r.S.output "header");
  Alcotest.(check int) "exit sees the fixpoint" 10 (r.S.input "exit");
  Alcotest.(check bool) "loop forced revisits" true (r.S.iterations > 4)

let test_solver_backward () =
  let f, cfg = loop () in
  let r =
    S.solve ~direction:Dataflow.Backward
      ~transfer:(fun _ v -> min 7 (v + 1))
      f cfg
  in
  (* backward: facts flow exit -> header -> entry/body *)
  Alcotest.(check int) "exit entry-fact" 1 (r.S.output "exit");
  Alcotest.(check int) "entry accumulates through the loop" 7
    (r.S.output "entry")

let test_solver_edge_refinement () =
  let f, cfg = diamond () in
  let r =
    S.solve
      ~edge:(fun ~src ~dst v ->
        ignore src;
        if dst = "then" then v + 100 else v)
      ~transfer:(fun b v -> v + List.length b.Func.insns)
      f cfg
  in
  Alcotest.(check int) "then sees the refined fact" 101 (r.S.input "then");
  Alcotest.(check int) "else does not" 1 (r.S.input "else")

(* ---------- checker suites ---------- *)

let aconfig =
  {
    Pointsto.default_config with
    Pointsto.syscall_register = Some "sva_register_syscall";
    syscall_invoke = Some "sva_syscall";
  }

let lint_src ?(config = Lint.config_of_aconfig aconfig) src =
  let m = Pipeline.compile ~name:"lint-test" [ src ] in
  let pa = Pointsto.run ~config:aconfig m in
  Lint.run ~config m pa

let findings_of checker (r : Lint.result) =
  List.filter_map
    (fun (f : Report.finding) ->
      if f.Report.f_checker = checker then Some f.Report.f_func else None)
    r.Lint.lr_findings

let proofs_in (r : Lint.result) fname =
  Hashtbl.fold
    (fun (f, _) () n -> if f = fname then n + 1 else n)
    r.Lint.lr_proofs 0

(* user-pointer taint *)

let taint_src =
  "extern void sva_register_syscall(long num, ...);\n\
   long sys_direct(long a0, long a1, long a2, long a3) {\n\
  \  long *p = (long *)a0;\n\
  \  return *p;\n\
   }\n\
   long fetch(long *p) { return *p; }\n\
   long sys_indirect(long a0, long a1, long a2, long a3) {\n\
  \  return fetch((long *)a0);\n\
   }\n\
   long sys_ok(long a0, long a1, long a2, long a3) { return a0 + a1; }\n\
   void init(void) {\n\
  \  sva_register_syscall(1, sys_direct);\n\
  \  sva_register_syscall(2, sys_indirect);\n\
  \  sva_register_syscall(3, sys_ok);\n\
   }\n"

let test_taint_finds_derefs () =
  let r = lint_src taint_src in
  Alcotest.(check (list string)) "direct + interprocedural sink"
    [ "fetch"; "sys_direct" ]
    (findings_of "user-taint" r)

let test_taint_trusted_boundary () =
  (* routing the user pointer through a trusted copy function is the
     sanctioned pattern and must not be flagged *)
  let src =
    "extern void sva_register_syscall(long num, ...);\n\
     extern long copy_from_user(char *dst, char *src, long n);\n\
     long sys_copy(long a0, long a1, long a2, long a3) {\n\
    \  long v = 0;\n\
    \  copy_from_user((char *)&v, (char *)a0, 8);\n\
    \  return v;\n\
     }\n\
     void init(void) { sva_register_syscall(1, sys_copy); }\n"
  in
  let r = lint_src src in
  Alcotest.(check (list string)) "no taint findings" []
    (findings_of "user-taint" r)

(* null / uninitialized dereference *)

let test_null_definite () =
  let src =
    "long bad(int flag) {\n\
    \  long *p = (long *)0;\n\
    \  if (flag) return 0;\n\
    \  return *p;\n\
     }\n"
  in
  Alcotest.(check (list string)) "definite null flagged" [ "bad" ]
    (findings_of "null-deref" (lint_src src))

let test_null_guard_sensitivity () =
  (* the == 0 branch dereference is a bug; the fall-through is clean —
     both facts come from the same branch refinement *)
  let src =
    "long guard(long *q) {\n\
    \  if (q == 0) { return *q; }\n\
    \  return *q;\n\
     }\n"
  in
  let r = lint_src src in
  Alcotest.(check (list string)) "only the null branch" [ "guard" ]
    (findings_of "null-deref" r);
  Alcotest.(check int) "exactly one finding" 1
    (List.length r.Lint.lr_findings)

let test_null_clean_guard () =
  let src =
    "long ok(long *q) {\n\
    \  if (q == 0) return -1;\n\
    \  return *q;\n\
     }\n"
  in
  Alcotest.(check (list string)) "guarded deref clean" []
    (findings_of "null-deref" (lint_src src))

(* interrupt-context allocation *)

let irq_src =
  "extern void sva_register_interrupt(long vec, ...);\n\
   extern char *kmalloc(long n);\n\
   extern void kfree(char *p);\n\
   long helper(long n) {\n\
  \  char *b = kmalloc(n);\n\
  \  if (!b) return -1;\n\
  \  kfree(b);\n\
  \  return 0;\n\
   }\n\
   long storm_interrupt(long icp, long vec, long a2, long a3) {\n\
  \  return helper(64);\n\
   }\n\
   long quiet_interrupt(long icp, long vec, long a2, long a3) {\n\
  \  return 0;\n\
   }\n\
   void init(void) {\n\
  \  sva_register_interrupt(9, storm_interrupt);\n\
  \  sva_register_interrupt(10, quiet_interrupt);\n\
   }\n"

let test_irq_sleeping_alloc () =
  let r = lint_src irq_src in
  Alcotest.(check (list string)) "kmalloc reachable from handler"
    [ "helper" ]
    (findings_of "irq-sleep" r)

let test_irq_outside_handler_ok () =
  let src =
    "extern char *kmalloc(long n);\n\
     long worker(long n) {\n\
    \  char *b = kmalloc(n);\n\
    \  return (long)b;\n\
     }\n"
  in
  Alcotest.(check (list string)) "no handlers, no findings" []
    (findings_of "irq-sleep" (lint_src src))

(* the safe-access prover *)

let test_prover_local_array () =
  let src =
    "long roundtrip(long x) {\n\
    \  long a[2];\n\
    \  a[0] = x;\n\
    \  a[1] = x + 1;\n\
    \  return a[0] + a[1];\n\
     }\n"
  in
  let r = lint_src src in
  Alcotest.(check bool) "accesses proved" true (proofs_in r "roundtrip" > 0);
  Alcotest.(check (list string)) "and no findings" []
    (List.map (fun (f : Report.finding) -> f.Report.f_func) r.Lint.lr_findings)

let test_prover_escape_blocks_proof () =
  let src =
    "extern void sink(long *p);\n\
     long escapes(long x) {\n\
    \  long a[2];\n\
    \  a[0] = x;\n\
    \  sink(a);\n\
    \  return a[0];\n\
     }\n"
  in
  let r = lint_src src in
  Alcotest.(check int) "escaped array proves nothing" 0
    (proofs_in r "escapes")

let range_prover_src =
  "int tbl[64];\n\
   int kmain(void) {\n\
  \  long s = 0;\n\
  \  for (long i = 0; i < 64; i = i + 1) tbl[i] = (int)i;\n\
  \  for (long i = 0; i < 64; i = i + 1) s = s + tbl[i];\n\
  \  return (int)s;\n\
   }\n"

let test_prover_range_oracle () =
  (* the loop-guarded variable index is beyond static_safe; the interval
     analysis certifies it in extent and the prover widens accordingly *)
  let m = Pipeline.compile ~name:"lint-range-test" [ range_prover_src ] in
  let pa = Pointsto.run ~config:aconfig m in
  let config = Lint.config_of_aconfig aconfig in
  let plain = Lint.run ~config m pa in
  let res = Sva_analysis.Interval.run m pa in
  let ranges ~fname i =
    Sva_analysis.Interval.elide res ~fname i Sva_analysis.Interval.Cls
  in
  let wide = Lint.run ~config ~ranges m pa in
  Alcotest.(check int) "no range proofs without the oracle" 0
    plain.Lint.lr_range_geps;
  Alcotest.(check bool) "oracle proves variable-index geps" true
    (wide.Lint.lr_range_geps > 0);
  Alcotest.(check bool) "strictly more accesses proved" true
    (wide.Lint.lr_proof_count > plain.Lint.lr_proof_count);
  (* every elision the oracle granted is backed by a certificate the
     trusted checker accepts *)
  let b = Sva_analysis.Interval.bundle res in
  Alcotest.(check bool) "certificates materialized" true
    (b.Sva_analysis.Interval.cb_certs <> []);
  Alcotest.(check (list string)) "and they all re-verify" []
    (List.map Sva_tyck.Rangecert.string_of_error
       (Sva_tyck.Rangecert.check
          ~entries:(Sva_analysis.Interval.entry_config res)
          m b))

(* ---------- kernel-level guarantees ---------- *)

let lint_kernel ~fixture =
  let v = Kbuild.as_tested in
  let sources =
    if fixture then Kbuild.fixture_sources v else Kbuild.sources v
  in
  let m = Pipeline.compile ~name:"ukern-lint-test" sources in
  let pa = Pointsto.run ~config:(Kbuild.aconfig v) m in
  Lint.run ~config:(Kbuild.lint_config v) m pa

let test_kernel_clean () =
  let r = lint_kernel ~fixture:false in
  Alcotest.(check string) "zero findings on the shipped kernel" ""
    (Report.render r.Lint.lr_findings);
  Alcotest.(check bool) "but plenty proved safe" true
    (r.Lint.lr_proof_count > 50)

let test_fixture_exact () =
  let r = lint_kernel ~fixture:true in
  let got =
    List.map
      (fun (f : Report.finding) -> (f.Report.f_checker, f.Report.f_func))
      r.Lint.lr_findings
    |> List.sort_uniq compare
  in
  Alcotest.(check (list (pair string string)))
    "fixture reports exactly the seeded bugs"
    (List.sort_uniq compare Ukern.Ksrc_lintbugs.expected)
    got

let test_deterministic_output () =
  let a = lint_kernel ~fixture:true and b = lint_kernel ~fixture:true in
  Alcotest.(check string) "two runs render identically" (Lint.render a)
    (Lint.render b);
  Alcotest.(check int) "same iteration count" a.Lint.lr_iterations
    b.Lint.lr_iterations

(* ---------- Jsonout (the bench --json codec) ---------- *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("name", J.Str "lint \"quoted\"\nline");
        ("count", J.Int 42);
        ("rate", J.Float 54.25);
        ("flag", J.Bool true);
        ("nothing", J.Null);
        ("rows", J.List [ J.Int 1; J.Obj []; J.List [] ]);
      ]
  in
  Alcotest.(check bool) "parse (emit doc) = doc" true (J.parse (J.emit doc) = doc)

let test_json_parse_basics () =
  let doc = J.parse {| {"a": [1, 2.5, "\u0078A", {"b": null}], "c": -3} |} in
  Alcotest.(check int) "int field" (-3) (J.to_int (Option.get (J.member "c" doc)));
  match J.member "a" doc with
  | Some (J.List [ J.Int 1; J.Float f; J.Str s; inner ]) ->
      Alcotest.(check (float 1e-9)) "float" 2.5 f;
      Alcotest.(check string) "\\u escape" "xA" s;
      Alcotest.(check bool) "nested null" true (J.member "b" inner = Some J.Null)
  | _ -> Alcotest.fail "unexpected shape"

let str_contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl > 0 && go 0

let test_json_control_chars () =
  (* every byte below 0x20 must leave the emitter escaped — either a
     short escape or \u00xx — and decode back to itself *)
  let s = String.init 0x20 Char.chr in
  let doc = J.Obj [ (s, J.Str s) ] in
  let text = J.emit doc in
  String.iter
    (fun c ->
      if Char.code c < 0x20 && c <> '\n' then
        Alcotest.failf "raw control byte %#x in emitted JSON" (Char.code c))
    text;
  Alcotest.(check bool) "NUL as \\u0000" true (str_contains text "\\u0000");
  Alcotest.(check bool) "0x1f as \\u001f" true (str_contains text "\\u001f");
  Alcotest.(check bool) "newline uses the short escape" true
    (str_contains text "\\n");
  Alcotest.(check bool) "round-trip through the parser" true
    (J.parse text = doc)

let test_json_backslash_quote_runs () =
  (* pathological backslash/quote runs, including a trailing backslash
     (the classic escape-the-closing-quote bug) and escaped keys *)
  let cases =
    [ "\\"; "\\\\"; "\\\""; "\"\"\""; "a\\"; "\\\"\\\"\\"; "\\u0041"; "" ]
  in
  List.iter
    (fun s ->
      let doc = J.Obj [ (s, J.List [ J.Str s ]) ] in
      if J.parse (J.emit doc) <> doc then
        Alcotest.failf "round-trip drifted for %S" s)
    cases;
  (* "A" the *content* must not be re-interpreted as an escape *)
  Alcotest.(check string) "literal backslash-u survives" "\\u0041"
    (J.to_string (J.parse (J.emit (J.Str "\\u0041"))))

let test_json_non_ascii_bytes () =
  (* UTF-8 (and arbitrary high) bytes pass through unescaped *)
  let s = "caf\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x90\xab \x80\xff" in
  let doc = J.Obj [ ("k", J.Str s) ] in
  let text = J.emit doc in
  Alcotest.(check bool) "bytes emitted verbatim" true
    (str_contains text "caf\xc3\xa9");
  Alcotest.(check bool) "round-trip" true (J.parse text = doc);
  (* \u escapes on the parse side decode to UTF-8 *)
  Alcotest.(check string) "2- and 3-byte code points" "\xc3\xa9\xe0\xa4\x85"
    (J.to_string (J.parse "\"\\u00e9\\u0905\""))

let test_json_rejects_garbage () =
  let bad s =
    match J.parse s with
    | exception J.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "bare word" true (bad "nope")

let () =
  Alcotest.run "sva_lint"
    [
      ( "solver",
        [
          Alcotest.test_case "diamond join" `Quick test_solver_diamond;
          Alcotest.test_case "loop convergence" `Quick
            test_solver_loop_converges;
          Alcotest.test_case "backward direction" `Quick test_solver_backward;
          Alcotest.test_case "edge refinement" `Quick
            test_solver_edge_refinement;
        ] );
      ( "user-taint",
        [
          Alcotest.test_case "direct + interprocedural" `Quick
            test_taint_finds_derefs;
          Alcotest.test_case "trusted copy boundary" `Quick
            test_taint_trusted_boundary;
        ] );
      ( "null-deref",
        [
          Alcotest.test_case "definite null" `Quick test_null_definite;
          Alcotest.test_case "branch sensitivity" `Quick
            test_null_guard_sensitivity;
          Alcotest.test_case "guarded deref clean" `Quick test_null_clean_guard;
        ] );
      ( "irq-sleep",
        [
          Alcotest.test_case "sleeping alloc in handler" `Quick
            test_irq_sleeping_alloc;
          Alcotest.test_case "no handler, no finding" `Quick
            test_irq_outside_handler_ok;
        ] );
      ( "prover",
        [
          Alcotest.test_case "local array proved" `Quick
            test_prover_local_array;
          Alcotest.test_case "escape blocks proof" `Quick
            test_prover_escape_blocks_proof;
          Alcotest.test_case "range oracle widens proofs" `Quick
            test_prover_range_oracle;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "clean kernel" `Quick test_kernel_clean;
          Alcotest.test_case "fixture exact match" `Quick test_fixture_exact;
          Alcotest.test_case "deterministic" `Quick test_deterministic_output;
        ] );
      ( "jsonout",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "control-char escaping" `Quick
            test_json_control_chars;
          Alcotest.test_case "backslash/quote runs" `Quick
            test_json_backslash_quote_runs;
          Alcotest.test_case "non-ASCII bytes" `Quick test_json_non_ascii_bytes;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
    ]
