(* The tiered execution engine (closure-compiled hot functions with a
   signed translation cache) must be semantically invisible: identical
   results, traps, exploit verdicts, check statistics and modeled cycle
   counts as the pre-decoded interpreter.  Plus the Section 3.4 cache
   integrity story: entries are signed, reuse verifies the signature, and
   a tampered entry falls back to re-translation. *)

module Pipeline = Sva_pipeline.Pipeline
module Interp = Sva_interp.Interp
module Closcomp = Sva_interp.Closcomp
module Tcache_disk = Sva_interp.Tcache_disk
module Signing = Sva_bytecode.Signing
module Stats = Sva_rt.Stats
module Boot = Ukern.Boot

let tiered_engine ?(threshold = 1) () =
  { Pipeline.default_engine with Pipeline.eng_kind = Pipeline.Tiered; eng_threshold = threshold }

let aot_engine ?dir () =
  { Pipeline.default_engine with Pipeline.eng_kind = Pipeline.Aot; eng_tcache_dir = dir }

(* ---------- differential property: random programs ---------- *)

(* Random arithmetic over a, b, c with non-trapping operators (same shape
   as the test_diff generator), inside a loop so the function gets hot. *)
let rec gen_expr rng depth =
  if depth = 0 then
    match Random.State.int rng 4 with
    | 0 -> "a"
    | 1 -> "b"
    | 2 -> "c"
    | _ -> string_of_int (Random.State.int rng 2000 - 1000)
  else
    let l = gen_expr rng (depth - 1) and r = gen_expr rng (depth - 1) in
    match Random.State.int rng 9 with
    | 0 -> Printf.sprintf "(%s + %s)" l r
    | 1 -> Printf.sprintf "(%s - %s)" l r
    | 2 -> Printf.sprintf "(%s * %s)" l r
    | 3 -> Printf.sprintf "(%s & %s)" l r
    | 4 -> Printf.sprintf "(%s | %s)" l r
    | 5 -> Printf.sprintf "(%s ^ %s)" l r
    | 6 -> Printf.sprintf "(%s << %d)" l (Random.State.int rng 8)
    | 7 -> Printf.sprintf "(%s >> %d)" l (Random.State.int rng 8)
    | _ -> Printf.sprintf "(%s < %s ? %s : %s)" l r l r

let gen_program seed =
  let rng = Random.State.make [| seed |] in
  let e1 = gen_expr rng 3 in
  let e2 = gen_expr rng 3 in
  let e3 = gen_expr rng 2 in
  let shift = Random.State.int rng 8 in
  Printf.sprintf
    "int helper(int x, int i) { return (x ^ (x << %d)) + i * 3; }\n\
     int f(int a, int b) {\n\
    \  int c = %s;\n\
    \  int acc = 0;\n\
    \  for (int i = 0; i < 8; i++) {\n\
    \    if ((%s) > acc) acc += helper(c, i); else acc ^= (%s);\n\
    \    c = c + i;\n\
    \  }\n\
    \  return acc;\n\
     }"
    shift e1 e2 e3

(* Run a safe-built module's [f] on an engine: result (or trap message),
   step count, modeled cycles and the check-stat snapshot. *)
let run_built built engine args =
  Stats.reset ();
  let t = Pipeline.instantiate ?engine built in
  let r =
    match Interp.call t "f" args with
    | v -> Ok v
    | exception Interp.Vm_error m -> Error ("vm: " ^ m)
    | exception Sva_rt.Violation.Safety_violation v ->
        Error ("violation: " ^ Sva_rt.Violation.to_string v)
  in
  (r, Interp.steps t, Interp.cycles t, Stats.read ())

let prop_engines_agree =
  let gen =
    QCheck2.Gen.(tup3 (int_range 0 5000) small_signed_int small_signed_int)
  in
  QCheck2.Test.make ~name:"tiered and aot engines agree with the interpreter"
    ~count:30 gen (fun (seed, a, b) ->
      let src = gen_program seed in
      let built =
        Pipeline.build ~conf:Pipeline.Sva_safe ~name:"rand" [ src ]
      in
      let args = [ Int64.of_int a; Int64.of_int b ] in
      let ri = run_built built None args in
      Closcomp.clear_cache ();
      let rt = run_built built (Some (tiered_engine ())) args in
      Closcomp.clear_cache ();
      let ra = run_built built (Some (aot_engine ())) args in
      ri = rt && ri = ra)

(* Same property with the certified range elision on: the elided-check
   module must behave identically on both engines too. *)
let gen_range_program seed =
  let rng = Random.State.make [| seed |] in
  let e = gen_expr rng 2 in
  let mask = (1 lsl (1 + Random.State.int rng 6)) - 1 in
  Printf.sprintf
    "int tbl[64];\n\
     int f(int a, int b) {\n\
    \  int c = %s;\n\
    \  long acc = 0;\n\
    \  for (long i = 0; i < 64; i = i + 1) tbl[i] = (int)(i + c);\n\
    \  for (long i = 0; i < 64; i = i + 1) acc = acc + tbl[i];\n\
    \  long k = (long)(a + b) & %d;\n\
    \  acc = acc + tbl[k];\n\
    \  return (int)acc;\n\
     }"
    e mask

let prop_engines_agree_with_ranges =
  let gen =
    QCheck2.Gen.(tup3 (int_range 0 5000) small_signed_int small_signed_int)
  in
  QCheck2.Test.make
    ~name:"tiered engine agrees with the interpreter under range elision"
    ~count:15 gen
    (fun (seed, a, b) ->
      let src = gen_range_program seed in
      let built =
        Pipeline.build ~conf:Pipeline.Sva_safe ~ranges:true ~name:"rand-rg"
          [ src ]
      in
      let args = [ Int64.of_int a; Int64.of_int b ] in
      let ri = run_built built None args in
      Closcomp.clear_cache ();
      let rt = run_built built (Some (tiered_engine ())) args in
      ri = rt)

(* ---------- the five exploits agree on both engines ---------- *)

let built_cache = Hashtbl.create 4

let kernel ?engine conf =
  let b =
    match Hashtbl.find_opt built_cache conf with
    | Some b -> b
    | None ->
        let b = Ukern.Kbuild.build ~conf Ukern.Kbuild.as_tested in
        Hashtbl.replace built_cache conf b;
        b
  in
  Boot.boot_built ?engine b ~variant:Ukern.Kbuild.as_tested

let test_exploit_verdicts_agree () =
  List.iter
    (fun ex ->
      let verdict engine =
        let t = kernel ?engine Pipeline.Sva_safe in
        Exploits.outcome_to_string (Exploits.attack t ex)
      in
      let vi = verdict None in
      Closcomp.clear_cache ();
      let vt = verdict (Some (tiered_engine ())) in
      Alcotest.(check string)
        (Printf.sprintf "verdict for %s" (Exploits.name ex))
        vi vt)
    Exploits.all

(* ---------- syscall mix: cycles, steps and stats bit-identical ---------- *)

let syscall_mix t =
  ignore (Boot.syscall t 1 []);
  Boot.write_user t 0 "tiered.txt\000";
  let fd = Boot.syscall t 4 [ Boot.user_addr t 0; 1L ] in
  Boot.write_user t 1024 "secure virtual architecture";
  ignore (Boot.syscall t 7 [ fd; Boot.user_addr t 1024; 27L ]);
  ignore (Boot.syscall t 20 [ fd; 0L; 0L ]);
  ignore (Boot.syscall t 6 [ fd; Boot.user_addr t 2048; 64L ]);
  ignore (Boot.syscall t 9 [])

let measure_mix engine =
  let t = kernel ?engine Pipeline.Sva_safe in
  Stats.reset ();
  Boot.reset_cycles t;
  Boot.reset_steps t;
  for _ = 1 to 4 do
    syscall_mix t
  done;
  (Boot.cycles t, Boot.steps t, Stats.to_string (Stats.read ()))

let test_syscall_mix_identical () =
  let ci, si, ki = measure_mix None in
  Closcomp.clear_cache ();
  Stats.reset_tier ();
  let ct, st, kt = measure_mix (Some (tiered_engine ~threshold:2 ())) in
  let tier = Stats.read_tier () in
  Alcotest.(check int) "modeled cycles" ci ct;
  Alcotest.(check int) "steps" si st;
  Alcotest.(check string) "check stats" ki kt;
  Alcotest.(check bool) "functions were promoted" true
    (tier.Stats.promotions > 0)

(* Same gate for the whole-kernel AOT engine: compiling everything at
   instantiate time (superblocks included) must not move a single
   modeled number. *)
let test_syscall_mix_identical_aot () =
  let ci, si, ki = measure_mix None in
  Closcomp.clear_cache ();
  Stats.reset_tier ();
  let ca, sa, ka = measure_mix (Some (aot_engine ())) in
  let tier = Stats.read_tier () in
  Alcotest.(check int) "modeled cycles" ci ca;
  Alcotest.(check int) "steps" si sa;
  Alcotest.(check string) "check stats" ki ka;
  Alcotest.(check bool) "whole kernel was compiled" true
    (tier.Stats.promotions > 0);
  Alcotest.(check bool) "superblocks were formed" true
    (tier.Stats.superblocks > 0)

(* ---------- signed translation cache ---------- *)

let sum_src =
  "int helper(int x) { return x * 3 + 1; }\n\
   int f(int a, int b) {\n\
  \  int acc = 0;\n\
  \  for (int i = 0; i < 8; i++) acc += helper(a + b + i);\n\
  \  return acc;\n\
   }"

let build_sum () = Pipeline.build ~conf:Pipeline.Sva_safe ~name:"sum" [ sum_src ]

let key_of built name =
  match Sva_ir.Irmod.find_func built.Pipeline.bl_mod name with
  | Some fn -> Closcomp.key_of_func fn
  | None -> Alcotest.failf "no function %s in the built module" name

let test_cache_hit_across_instances () =
  let built = build_sum () in
  Closcomp.clear_cache ();
  Stats.reset_tier ();
  let t1 = Pipeline.instantiate ~engine:(tiered_engine ()) built in
  let r1 = Interp.call t1 "f" [ 5L; 7L ] in
  let after_first = Stats.read_tier () in
  Alcotest.(check bool) "first run populates the cache" true
    (after_first.Stats.tcache_misses > 0);
  Alcotest.(check bool) "cache holds entries" true (Closcomp.cache_size () > 0);
  (* a second VM instance reuses the signed translations *)
  let t2 = Pipeline.instantiate ~engine:(tiered_engine ()) built in
  let r2 = Interp.call t2 "f" [ 5L; 7L ] in
  let after_second = Stats.read_tier () in
  Alcotest.(check bool) "same result" true (r1 = r2);
  Alcotest.(check bool) "cache hits on reuse" true
    (after_second.Stats.tcache_hits > after_first.Stats.tcache_hits);
  Alcotest.(check bool) "signatures were re-verified" true
    (after_second.Stats.sig_verifications > after_first.Stats.sig_verifications)

let test_tampered_entry_falls_back () =
  let built = build_sum () in
  (* reference result from the interpreter *)
  let ti = Pipeline.instantiate built in
  let expected = Interp.call ti "f" [ 5L; 7L ] in
  Closcomp.clear_cache ();
  let t1 = Pipeline.instantiate ~engine:(tiered_engine ()) built in
  Alcotest.(check bool) "clean tiered run" true
    (Interp.call t1 "f" [ 5L; 7L ] = expected);
  let key = key_of built "f" in
  Alcotest.(check bool) "entry for f is cached" true
    (Closcomp.cached_entry key <> None);
  Alcotest.(check bool) "tampering succeeds" true
    (Closcomp.tamper_cached key Signing.tamper_fentry_signature);
  Stats.reset_tier ();
  let t2 = Pipeline.instantiate ~engine:(tiered_engine ()) built in
  let r2 = Interp.call t2 "f" [ 5L; 7L ] in
  let tier = Stats.read_tier () in
  Alcotest.(check bool) "tampered entry detected (cache miss + resign)" true
    (tier.Stats.tcache_misses > 0);
  Alcotest.(check bool) "semantics unchanged after fallback" true
    (r2 = expected);
  (* the fallback re-signed the entry: it verifies again *)
  (match Closcomp.cached_entry key with
  | Some fe ->
      Signing.verify_function fe ~bytecode:fe.Signing.fe_bytecode
        ~native:fe.Signing.fe_native
  | None -> Alcotest.fail "entry missing after fallback")

let test_tampered_native_falls_back () =
  let built = build_sum () in
  Closcomp.clear_cache ();
  let t1 = Pipeline.instantiate ~engine:(tiered_engine ()) built in
  let expected = Interp.call t1 "f" [ 2L; 3L ] in
  let key = key_of built "f" in
  Alcotest.(check bool) "tampering succeeds" true
    (Closcomp.tamper_cached key Signing.tamper_fentry_native);
  Stats.reset_tier ();
  let t2 = Pipeline.instantiate ~engine:(tiered_engine ()) built in
  Alcotest.(check bool) "fallback reproduces the result" true
    (Interp.call t2 "f" [ 2L; 3L ] = expected);
  Alcotest.(check bool) "tamper counted as a miss" true
    ((Stats.read_tier ()).Stats.tcache_misses > 0)

(* ---------- persistent translation store ---------- *)

let with_store f =
  let dir = Filename.temp_dir "sva-tc-test" "" in
  Fun.protect
    ~finally:(fun () ->
      Tcache_disk.set_dir None;
      Closcomp.clear_cache ();
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let disk_engine dir =
  { (tiered_engine ()) with Pipeline.eng_tcache_dir = Some dir }

(* A fresh process has an empty in-memory cache but the same store: the
   second instantiation must reload every translation from disk,
   re-verify it, and translate nothing. *)
let test_disk_cold_then_warm () =
  let built = build_sum () in
  with_store (fun dir ->
      Closcomp.clear_cache ();
      Stats.reset_tier ();
      let t1 = Pipeline.instantiate ~engine:(disk_engine dir) built in
      let r1 = Interp.call t1 "f" [ 5L; 7L ] in
      let cold = Stats.read_tier () in
      Alcotest.(check bool) "cold run translated" true
        (cold.Stats.tcache_misses > 0);
      Alcotest.(check bool) "cold run persisted entries" true
        (cold.Stats.tcache_disk_writes > 0);
      Closcomp.clear_cache ();
      Stats.reset_tier ();
      let t2 = Pipeline.instantiate ~engine:(disk_engine dir) built in
      let r2 = Interp.call t2 "f" [ 5L; 7L ] in
      let warm = Stats.read_tier () in
      Alcotest.(check bool) "same result" true (r1 = r2);
      Alcotest.(check bool) "warm run hits the store" true
        (warm.Stats.tcache_disk_hits >= 1);
      Alcotest.(check int) "warm run re-translates nothing" 0
        warm.Stats.tcache_misses;
      Alcotest.(check bool) "disk entries were re-verified" true
        (warm.Stats.sig_verifications > 0))

(* Corrupt the on-disk entry for [f] in a given way; the warm run must
   detect it (disk-stale), quietly re-translate, produce the identical
   result, and repair the store. *)
let test_disk_corruption mutate () =
  let built = build_sum () in
  with_store (fun dir ->
      Closcomp.clear_cache ();
      Stats.reset_tier ();
      let t1 = Pipeline.instantiate ~engine:(disk_engine dir) built in
      let expected = Interp.call t1 "f" [ 5L; 7L ] in
      let key = key_of built "f" in
      let path = Filename.concat dir (key ^ ".fent") in
      Alcotest.(check bool) "entry for f is on disk" true (Sys.file_exists path);
      let data = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (mutate data));
      Closcomp.clear_cache ();
      Stats.reset_tier ();
      let t2 = Pipeline.instantiate ~engine:(disk_engine dir) built in
      let r = Interp.call t2 "f" [ 5L; 7L ] in
      let tier = Stats.read_tier () in
      Alcotest.(check bool) "identical result after fallback" true
        (r = expected);
      Alcotest.(check bool) "corruption detected as disk-stale" true
        (tier.Stats.tcache_disk_stale > 0);
      Alcotest.(check bool) "function re-translated" true
        (tier.Stats.tcache_misses > 0);
      Alcotest.(check bool) "store repaired" true
        (tier.Stats.tcache_disk_writes > 0);
      (* the repaired entry decodes and verifies again *)
      let repaired =
        Signing.decode_fentry (In_channel.with_open_bin path In_channel.input_all)
      in
      Signing.verify_function repaired
        ~bytecode:repaired.Signing.fe_bytecode
        ~native:repaired.Signing.fe_native)

let truncate_entry data = String.sub data 0 (String.length data / 2)

let flip_signature data =
  Signing.encode_fentry
    (Signing.tamper_fentry_signature (Signing.decode_fentry data))

let stale_bytecode data =
  Signing.encode_fentry
    (Signing.tamper_fentry_bytecode (Signing.decode_fentry data))

(* structurally valid and internally consistent, but signed by a key
   that is not the SVM's *)
let wrong_key data =
  let e = Signing.decode_fentry data in
  let saved = !Signing.svm_key in
  Signing.svm_key := "not-the-svm-key";
  let e' =
    Signing.sign_function ~name:e.Signing.fe_name
      ~bytecode:e.Signing.fe_bytecode ~native:e.Signing.fe_native
  in
  Signing.svm_key := saved;
  Signing.encode_fentry e'

let () =
  Alcotest.run "sva_tiered"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_engines_agree;
          QCheck_alcotest.to_alcotest prop_engines_agree_with_ranges;
          Alcotest.test_case "exploit verdicts agree" `Slow
            test_exploit_verdicts_agree;
          Alcotest.test_case "syscall mix bit-identical" `Quick
            test_syscall_mix_identical;
          Alcotest.test_case "syscall mix bit-identical (aot)" `Quick
            test_syscall_mix_identical_aot;
        ] );
      ( "translation-cache",
        [
          Alcotest.test_case "signed entries reused across instances" `Quick
            test_cache_hit_across_instances;
          Alcotest.test_case "tampered signature falls back" `Quick
            test_tampered_entry_falls_back;
          Alcotest.test_case "tampered native artifact falls back" `Quick
            test_tampered_native_falls_back;
        ] );
      ( "persistent-store",
        [
          Alcotest.test_case "cold boot persists, warm process reloads" `Quick
            test_disk_cold_then_warm;
          Alcotest.test_case "truncated entry falls back" `Quick
            (test_disk_corruption truncate_entry);
          Alcotest.test_case "flipped signature byte falls back" `Quick
            (test_disk_corruption flip_signature);
          Alcotest.test_case "stale bytecode digest falls back" `Quick
            (test_disk_corruption stale_bytecode);
          Alcotest.test_case "wrong-key entry falls back" `Quick
            (test_disk_corruption wrong_key);
        ] );
    ]
