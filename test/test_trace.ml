(* The observability layer (event trace + per-metapool metrics +
   cycle-attribution profiler) must observe without deciding: ring
   accounting is exact under wrap-around, a disabled emission site
   allocates nothing, enabling tracing/profiling changes no result, check
   count or modeled cycle, both execution tiers emit the same event
   stream (modulo the tier's own promote/tcache events), and the Chrome
   export survives a JSON round trip. *)

module Pipeline = Sva_pipeline.Pipeline
module Interp = Sva_interp.Interp
module Closcomp = Sva_interp.Closcomp
module Trace = Sva_rt.Trace
module Stats = Sva_rt.Stats
module Boot = Ukern.Boot
module J = Harness.Jsonout

let with_trace ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect ~finally:Trace.disable f

let with_profile f =
  Trace.enable_profile ();
  Fun.protect ~finally:Trace.disable_profile f

(* ---------- ring buffer accounting ---------- *)

let test_ring_wrap () =
  with_trace ~capacity:8 (fun () ->
      for i = 0 to 19 do
        Trace.emit_svaos ("op" ^ string_of_int i)
      done;
      Alcotest.(check int) "capacity" 8 (Trace.capacity ());
      Alcotest.(check int) "emitted counts overwritten events" 20
        (Trace.emitted ());
      Alcotest.(check int) "dropped = emitted - capacity" 12 (Trace.dropped ());
      let evs = Trace.events () in
      Alcotest.(check int) "at most capacity retained" 8 (List.length evs);
      Alcotest.(check (list string))
        "oldest retained first, newest last"
        [ "op12"; "op13"; "op14"; "op15"; "op16"; "op17"; "op18"; "op19" ]
        (List.map (fun e -> e.Trace.ev_name) evs);
      Alcotest.(check int) "sequence numbers survive the wrap" 12
        (List.hd evs).Trace.ev_seq;
      Alcotest.(check int) "count by kind" 8 (Trace.count Trace.Ev_svaos);
      Trace.clear ();
      Alcotest.(check int) "clear resets emitted" 0 (Trace.emitted ());
      Alcotest.(check int) "clear resets dropped" 0 (Trace.dropped ());
      Alcotest.(check int) "clear empties the ring" 0
        (List.length (Trace.events ()));
      Alcotest.(check bool) "still recording after clear" true (Trace.enabled ()));
  Alcotest.(check bool) "disabled afterwards" false (Trace.enabled ())

let test_no_wrap_accounting () =
  with_trace ~capacity:16 (fun () ->
      for i = 1 to 5 do
        Trace.emit_check "ls" ~pool:"MP" ~addr:i ~len:8
      done;
      Alcotest.(check int) "emitted" 5 (Trace.emitted ());
      Alcotest.(check int) "nothing dropped below capacity" 0 (Trace.dropped ());
      Alcotest.(check int) "all retained" 5 (List.length (Trace.events ())))

(* ---------- disabled mode: one flag test, zero allocation ---------- *)

let test_disabled_zero_alloc () =
  Trace.disable ();
  (* warm the call sites so any one-time setup is out of the window *)
  Trace.emit_check "ls" ~pool:"MP" ~addr:0 ~len:0;
  Trace.emit_syscall_enter ~num:0;
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    Trace.emit_check "ls" ~pool:"MP" ~addr:i ~len:8;
    Trace.emit_register ~pool:"MP" ~start:i ~len:16;
    Trace.emit_drop ~pool:"MP" ~start:i;
    Trace.emit_syscall_enter ~num:4;
    Trace.emit_syscall_exit ~num:4;
    Trace.emit_svaos "sva.icontext.create";
    Trace.emit_range_elide ~what:"bounds" ~count:3
  done;
  let w1 = Gc.minor_words () in
  (* 70k disabled emissions; the only tolerated words are the boxed
     floats of the Gc.minor_words calls themselves *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled emission allocates nothing (%.0f words)"
       (w1 -. w0))
    true
    (w1 -. w0 < 64.)

(* ---------- differential: tracing is semantically invisible ---------- *)

(* Same generator shape as test_tiered: random arithmetic with a helper
   call in a loop, plus a global-array variant that exercises object
   registration and bounds/ls checks. *)
let rec gen_expr rng depth =
  if depth = 0 then
    match Random.State.int rng 4 with
    | 0 -> "a"
    | 1 -> "b"
    | 2 -> "c"
    | _ -> string_of_int (Random.State.int rng 2000 - 1000)
  else
    let l = gen_expr rng (depth - 1) and r = gen_expr rng (depth - 1) in
    match Random.State.int rng 6 with
    | 0 -> Printf.sprintf "(%s + %s)" l r
    | 1 -> Printf.sprintf "(%s - %s)" l r
    | 2 -> Printf.sprintf "(%s * %s)" l r
    | 3 -> Printf.sprintf "(%s & %s)" l r
    | 4 -> Printf.sprintf "(%s ^ %s)" l r
    | _ -> Printf.sprintf "(%s < %s ? %s : %s)" l r l r

let gen_program seed =
  let rng = Random.State.make [| seed |] in
  let e1 = gen_expr rng 3 in
  let e2 = gen_expr rng 2 in
  let mask = (1 lsl (1 + Random.State.int rng 5)) - 1 in
  Printf.sprintf
    "int tbl[32];\n\
     int helper(int x, int i) { return (x ^ (x << 3)) + i * 3; }\n\
     int f(int a, int b) {\n\
    \  int c = %s;\n\
    \  int acc = 0;\n\
    \  for (int i = 0; i < 8; i++) {\n\
    \    tbl[i] = c + i;\n\
    \    if ((%s) > acc) acc += helper(c, i); else acc ^= tbl[i & %d];\n\
    \    c = c + i;\n\
    \  }\n\
    \  return acc;\n\
     }"
    e1 e2 (mask land 31)

let tiered_engine ?(threshold = 1) () =
  { Pipeline.default_engine with Pipeline.eng_kind = Pipeline.Tiered; eng_threshold = threshold }

let run_built built engine args =
  Stats.reset ();
  let t = Pipeline.instantiate ?engine built in
  let r =
    match Interp.call t "f" args with
    | v -> Ok v
    | exception Interp.Vm_error m -> Error ("vm: " ^ m)
    | exception Sva_rt.Violation.Safety_violation v ->
        Error ("violation: " ^ Sva_rt.Violation.to_string v)
  in
  (r, Interp.steps t, Interp.cycles t, Stats.read ())

let arg_gen =
  QCheck2.Gen.(tup3 (int_range 0 5000) small_signed_int small_signed_int)

let prop_tracing_invisible =
  QCheck2.Test.make
    ~name:"tracing+profiling leave results, cycles and checks unchanged"
    ~count:20 arg_gen (fun (seed, a, b) ->
      let src = gen_program seed in
      let built = Pipeline.build ~conf:Pipeline.Sva_safe ~name:"rand" [ src ] in
      let args = [ Int64.of_int a; Int64.of_int b ] in
      let plain = run_built built None args in
      let traced =
        with_trace (fun () -> with_profile (fun () -> run_built built None args))
      in
      plain = traced)

(* ---------- both tiers emit the same event stream ---------- *)

(* Tier promotion and translation-cache probes are the tiered engine's
   own activity — the one deliberate divergence — so the comparison
   projects them out.  Sequence numbers are dropped for the same reason
   (tier events interleave); everything else, timestamps included, must
   match because both engines keep bit-identical cycle counts. *)
let event_stream () =
  List.filter_map
    (fun (e : Trace.event) ->
      match e.Trace.ev_kind with
      | Trace.Ev_tier_promote | Trace.Ev_tcache_hit | Trace.Ev_tcache_miss
      | Trace.Ev_tcache_disk_hit | Trace.Ev_tcache_disk_stale
      | Trace.Ev_tcache_disk_write ->
          None
      | k ->
          Some
            (Trace.ekind_name k, e.Trace.ev_name, e.Trace.ev_pool,
             e.Trace.ev_a, e.Trace.ev_b, e.Trace.ev_ts))
    (Trace.events ())

let prop_tiers_emit_identically =
  QCheck2.Test.make
    ~name:"interp and tiered engines emit the same event stream" ~count:15
    arg_gen (fun (seed, a, b) ->
      let src = gen_program seed in
      let built = Pipeline.build ~conf:Pipeline.Sva_safe ~name:"rand" [ src ] in
      let args = [ Int64.of_int a; Int64.of_int b ] in
      with_trace (fun () ->
          ignore (run_built built None args);
          let si = event_stream () in
          Trace.clear ();
          Closcomp.clear_cache ();
          ignore (run_built built (Some (tiered_engine ())) args);
          si = event_stream ()))

(* ---------- Chrome trace-event export ---------- *)

let test_chrome_roundtrip () =
  with_trace ~capacity:64 (fun () ->
      Trace.emit_syscall_enter ~num:4;
      Trace.emit_check "ls" ~pool:"MP1" ~addr:64 ~len:8;
      Trace.emit_register ~pool:"MP1" ~start:128 ~len:32;
      Trace.emit_svaos "sva.icontext.create";
      Trace.emit_syscall_exit ~num:4;
      let j = Harness.Traceout.chrome_json () in
      Alcotest.(check bool) "emit/parse round-trip" true
        (J.parse (J.emit j) = j);
      let tev = J.to_list (Option.get (J.member "traceEvents" j)) in
      Alcotest.(check int) "one JSON record per retained event" 5
        (List.length tev);
      let phases =
        List.map (fun e -> J.to_string (Option.get (J.member "ph" e))) tev
      in
      Alcotest.(check (list string))
        "syscalls span B..E, the rest are instants"
        [ "B"; "i"; "i"; "i"; "E" ] phases;
      List.iter
        (fun e ->
          ignore (J.to_string (Option.get (J.member "name" e)));
          ignore (J.to_int (Option.get (J.member "ts" e))))
        tev)

(* ---------- profiler: shadow-stack self/total arithmetic ---------- *)

let test_profiler_shadow_stack () =
  with_profile (fun () ->
      (* outer runs cycles 0..100 with 6 checks; inner nests at 40..70
         with 3 of them.  Self = inclusive minus callees. *)
      Trace.fn_enter "outer" ~cycles:0 ~checks:0;
      Trace.fn_enter "inner" ~cycles:40 ~checks:2;
      Trace.fn_exit "inner" ~cycles:70 ~checks:5;
      Trace.fn_exit "outer" ~cycles:100 ~checks:6;
      match Trace.fn_report () with
      | [ o; i ] ->
          Alcotest.(check string) "hottest first" "outer" o.Trace.p_name;
          Alcotest.(check int) "outer self = 100 - 30" 70 o.Trace.p_self_cycles;
          Alcotest.(check int) "outer total inclusive" 100 o.Trace.p_total_cycles;
          Alcotest.(check int) "outer self checks" 3 o.Trace.p_self_checks;
          Alcotest.(check int) "outer calls" 1 o.Trace.p_calls;
          Alcotest.(check string) "inner second" "inner" i.Trace.p_name;
          Alcotest.(check int) "inner self" 30 i.Trace.p_self_cycles;
          Alcotest.(check int) "inner total" 30 i.Trace.p_total_cycles;
          Alcotest.(check int) "inner self checks" 3 i.Trace.p_self_checks;
          Alcotest.(check int) "self cycles partition the span" 100
            (Trace.fn_self_cycles ())
      | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows))

(* ---------- kernel: syscall attribution + per-pool metrics ---------- *)

let kernel ?engine conf =
  let b = Ukern.Kbuild.build ~conf Ukern.Kbuild.as_tested in
  Boot.boot_built ?engine b ~variant:Ukern.Kbuild.as_tested

let syscall_mix t =
  ignore (Boot.syscall t 1 []);
  Boot.write_user t 0 "trace.txt\000";
  let fd = Boot.syscall t 4 [ Boot.user_addr t 0; 1L ] in
  Boot.write_user t 1024 "secure virtual architecture";
  ignore (Boot.syscall t 7 [ fd; Boot.user_addr t 1024; 27L ]);
  ignore (Boot.syscall t 20 [ fd; 0L; 0L ]);
  ignore (Boot.syscall t 6 [ fd; Boot.user_addr t 2048; 64L ])

let test_kernel_attribution_and_metrics () =
  let t = kernel Pipeline.Sva_safe in
  with_trace (fun () ->
      with_profile (fun () ->
          Boot.reset_cycles t;
          List.iter
            (fun (_, mp) -> Sva_rt.Metapool_rt.reset_metrics mp)
            (Interp.metapools t.Boot.vm);
          syscall_mix t;
          (* the syscall scope wraps the whole trap path, so syscall self
             cycles partition the workload's cycles exactly *)
          Alcotest.(check int) "every workload cycle attributed to a syscall"
            (Boot.cycles t)
            (Trace.sys_self_cycles ());
          Alcotest.(check bool) "syscall events recorded" true
            (Trace.count Trace.Ev_syscall_enter > 0);
          Alcotest.(check int) "balanced enter/exit"
            (Trace.count Trace.Ev_syscall_enter)
            (Trace.count Trace.Ev_syscall_exit);
          Alcotest.(check bool) "check events recorded" true
            (Trace.count Trace.Ev_check > 0);
          let ms =
            List.map
              (fun (_, mp) -> Sva_rt.Metapool_rt.metrics mp)
              (Interp.metapools t.Boot.vm)
          in
          let touched =
            List.filter
              (fun (m : Sva_rt.Metapool_rt.metrics) ->
                m.Sva_rt.Metapool_rt.m_regs > 0
                || m.Sva_rt.Metapool_rt.m_lookups > 0)
              ms
          in
          Alcotest.(check bool) "some pool saw traffic" true (touched <> []);
          List.iter
            (fun (m : Sva_rt.Metapool_rt.metrics) ->
              let open Sva_rt.Metapool_rt in
              Alcotest.(check bool)
                (m.m_name ^ ": peak >= live") true (m.m_peak >= m.m_live);
              Alcotest.(check bool)
                (m.m_name ^ ": hits <= lookups") true
                (m.m_cache_hits <= m.m_lookups);
              let hr = metrics_hit_rate m in
              Alcotest.(check bool)
                (m.m_name ^ ": hit rate in [0,100]") true
                (hr >= 0. && hr <= 100.))
            ms;
          (* reset_metrics zeroes counters without touching objects *)
          List.iter
            (fun (_, mp) -> Sva_rt.Metapool_rt.reset_metrics mp)
            (Interp.metapools t.Boot.vm);
          List.iter
            (fun (_, mp) ->
              let m = Sva_rt.Metapool_rt.metrics mp in
              let open Sva_rt.Metapool_rt in
              Alcotest.(check int) (m.m_name ^ ": regs reset") 0 m.m_regs;
              Alcotest.(check int) (m.m_name ^ ": lookups reset") 0 m.m_lookups;
              Alcotest.(check int)
                (m.m_name ^ ": peak restarts at live")
                m.m_live m.m_peak)
            (Interp.metapools t.Boot.vm)))

let () =
  Alcotest.run "sva_trace"
    [
      ( "ring",
        [
          Alcotest.test_case "wrap-around accounting" `Quick test_ring_wrap;
          Alcotest.test_case "below-capacity accounting" `Quick
            test_no_wrap_accounting;
        ] );
      ( "invisibility",
        [
          Alcotest.test_case "disabled emission allocates nothing" `Quick
            test_disabled_zero_alloc;
          QCheck_alcotest.to_alcotest prop_tracing_invisible;
          QCheck_alcotest.to_alcotest prop_tiers_emit_identically;
        ] );
      ( "export",
        [
          Alcotest.test_case "Chrome JSON round-trip" `Quick
            test_chrome_roundtrip;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "shadow-stack self/total arithmetic" `Quick
            test_profiler_shadow_stack;
          Alcotest.test_case "syscall attribution and pool metrics" `Quick
            test_kernel_attribution_and_metrics;
        ] );
    ]
