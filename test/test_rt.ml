(* Tests for the SVA runtime: splay trees (with QCheck model-based
   properties) and metapool run-time checks. *)

open Sva_rt

(* ---------- Splay unit tests ---------- *)

let test_splay_basic () =
  let t = Splay.create () in
  Splay.insert t ~start:100 ~len:10 "a";
  Splay.insert t ~start:200 ~len:20 "b";
  Splay.insert t ~start:50 ~len:4 "c";
  Alcotest.(check int) "size" 3 (Splay.size t);
  (match Splay.find_containing t 105 with
  | Some n -> Alcotest.(check string) "contains 105" "a" n.Splay.n_data
  | None -> Alcotest.fail "105 not found");
  Alcotest.(check bool) "110 outside" true (Splay.find_containing t 110 = None);
  (match Splay.find_containing t 219 with
  | Some n -> Alcotest.(check string) "contains 219" "b" n.Splay.n_data
  | None -> Alcotest.fail "219 not found");
  Alcotest.(check bool) "49 outside" true (Splay.find_containing t 49 = None)

let test_splay_remove () =
  let t = Splay.create () in
  Splay.insert t ~start:10 ~len:5 ();
  Splay.insert t ~start:20 ~len:5 ();
  Alcotest.(check bool) "remove 10" true (Splay.remove t ~start:10 <> None);
  Alcotest.(check bool) "remove 10 again" true (Splay.remove t ~start:10 = None);
  Alcotest.(check bool) "remove middle of object" true (Splay.remove t ~start:22 = None);
  Alcotest.(check int) "size" 1 (Splay.size t)

let test_splay_overlap_rejected () =
  let t = Splay.create () in
  Splay.insert t ~start:100 ~len:10 ();
  List.iter
    (fun (s, l) ->
      match Splay.insert t ~start:s ~len:l () with
      | () -> Alcotest.failf "insert [%d,+%d) should overlap" s l
      | exception Invalid_argument _ -> ())
    [ (100, 10); (95, 6); (109, 1); (99, 100); (105, 2) ];
  Splay.insert t ~start:110 ~len:5 ();
  Splay.insert t ~start:90 ~len:10 ();
  Alcotest.(check int) "size" 3 (Splay.size t)

let test_splay_ordering () =
  let t = Splay.create () in
  List.iter (fun s -> Splay.insert t ~start:s ~len:1 s) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check (list int)) "in order" [ 1; 3; 5; 7; 9 ]
    (List.map (fun n -> n.Splay.n_data) (Splay.to_list t))

(* Model-based property: a splay tree over random disjoint ranges agrees
   with a naive list model on every query. *)
let prop_splay_model =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 60)
        (pair (int_range 0 500) (int_range 1 8)))
  in
  QCheck2.Test.make ~name:"splay agrees with list model" ~count:300 gen
    (fun ops ->
      let t = Splay.create () in
      let model = ref [] in
      List.iter
        (fun (start, len) ->
          let disjoint =
            List.for_all
              (fun (s, l) -> start + len <= s || s + l <= start)
              !model
          in
          match Splay.insert t ~start ~len () with
          | () ->
              if not disjoint then
                QCheck2.Test.fail_report "accepted an overlapping insert";
              model := (start, len) :: !model
          | exception Invalid_argument _ ->
              if disjoint then
                QCheck2.Test.fail_report "rejected a disjoint insert")
        ops;
      (* Every address 0..520: find_containing agrees with the model. *)
      let ok = ref true in
      for addr = 0 to 520 do
        let expected = List.find_opt (fun (s, l) -> addr >= s && addr < s + l) !model in
        let got = Splay.find_containing t addr in
        (match (expected, got) with
        | Some (s, l), Some n when n.Splay.n_start = s && n.Splay.n_len = l -> ()
        | None, None -> ()
        | _ -> ok := false)
      done;
      !ok && Splay.size t = List.length !model)

let prop_splay_insert_remove =
  let gen = QCheck2.Gen.(list_size (int_range 0 80) (int_range 0 100)) in
  QCheck2.Test.make ~name:"insert+remove returns to empty" ~count:300 gen
    (fun starts ->
      let t = Splay.create () in
      let starts = List.sort_uniq compare starts in
      List.iter (fun s -> Splay.insert t ~start:(s * 16) ~len:16 s) starts;
      List.iter
        (fun s ->
          match Splay.remove t ~start:(s * 16) with
          | Some n -> assert (n.Splay.n_data = s)
          | None -> QCheck2.Test.fail_report "lost an inserted range")
        starts;
      Splay.size t = 0)

(* ---------- Metapool checks ---------- *)

let mk ?(complete = true) ?(th = false) name =
  Metapool_rt.create ~type_homog:th ~complete name

let test_reg_drop_cycle () =
  let mp = mk "MP1" in
  Metapool_rt.register mp ~cls:Metapool_rt.Heap ~start:0x1000 ~len:96;
  Alcotest.(check int) "live" 1 (Metapool_rt.live_objects mp);
  Metapool_rt.drop mp ~start:0x1000;
  Alcotest.(check int) "dropped" 0 (Metapool_rt.live_objects mp)

let expect_violation kind f =
  match f () with
  | _ -> Alcotest.fail "expected a safety violation"
  | exception Violation.Safety_violation v ->
      Alcotest.(check string) "violation kind"
        (Violation.kind_to_string kind)
        (Violation.kind_to_string v.Violation.v_kind)

let test_double_free_detected () =
  let mp = mk "MP1" in
  Metapool_rt.register mp ~cls:Metapool_rt.Heap ~start:0x1000 ~len:96;
  Metapool_rt.drop mp ~start:0x1000;
  expect_violation Violation.Double_free (fun () ->
      Metapool_rt.drop mp ~start:0x1000)

let test_illegal_free_detected () =
  let mp = mk "MP1" in
  Metapool_rt.register mp ~cls:Metapool_rt.Heap ~start:0x1000 ~len:96;
  expect_violation Violation.Illegal_free (fun () ->
      Metapool_rt.drop mp ~start:0x1010)

let test_boundscheck_pass_and_fail () =
  let mp = mk "MP2" in
  Metapool_rt.register mp ~cls:Metapool_rt.Heap ~start:0x2000 ~len:96;
  (* In-bounds gep. *)
  Metapool_rt.boundscheck mp ~src:0x2000 ~dst:0x2050 ~access_len:4;
  (* The integer-overflow pattern: index far past the object. *)
  expect_violation Violation.Bounds (fun () ->
      Metapool_rt.boundscheck mp ~src:0x2000 ~dst:0x2000 ~access_len:1024)

let test_boundscheck_straddle () =
  let mp = mk "MP2" in
  Metapool_rt.register mp ~cls:Metapool_rt.Heap ~start:0x2000 ~len:96;
  expect_violation Violation.Bounds (fun () ->
      (* Last byte in range, access extends out. *)
      Metapool_rt.boundscheck mp ~src:0x2000 ~dst:0x205c ~access_len:8)

let test_boundscheck_incomplete_reduced () =
  let mp = mk ~complete:false "MPI" in
  (* Source points to an unregistered (external) object: reduced check. *)
  let before = Stats.read () in
  Metapool_rt.boundscheck mp ~src:0x9000 ~dst:0x9004 ~access_len:4;
  let after = Stats.read () in
  Alcotest.(check bool) "counted as reduced" true
    (Stats.(after.reduced_checks > before.reduced_checks))

let test_boundscheck_complete_rejects_unregistered () =
  let mp = mk "MPC" in
  expect_violation Violation.Bounds (fun () ->
      Metapool_rt.boundscheck mp ~src:0x9000 ~dst:0x9004 ~access_len:4)

let test_lscheck () =
  let mp = mk "MP3" in
  Metapool_rt.register mp ~cls:Metapool_rt.Heap ~start:0x3000 ~len:64;
  Metapool_rt.lscheck mp ~addr:0x3010 ~access_len:8;
  expect_violation Violation.Load_store (fun () ->
      Metapool_rt.lscheck mp ~addr:0x4000 ~access_len:4);
  expect_violation Violation.Uninit_pointer (fun () ->
      Metapool_rt.lscheck mp ~addr:0 ~access_len:4)

let test_lscheck_incomplete_elided () =
  let mp = mk ~complete:false "MP4" in
  (* Must not raise even for a wild address (Section 4.5, reduced checks:
     the sole source of false negatives). *)
  Metapool_rt.lscheck mp ~addr:0xdeadbeef ~access_len:4;
  Alcotest.(check pass) "no violation" () ()

let test_funccheck () =
  let allowed = [ (0x100, "sys_read"); (0x200, "sys_write") ] in
  Metapool_rt.funccheck ~allowed ~target:0x100;
  expect_violation Violation.Indirect_call (fun () ->
      Metapool_rt.funccheck ~allowed ~target:0x300)

let test_userspace_object () =
  (* Section 4.6: all of userspace is one object; a buffer that starts in
     userspace but ends in kernel space must be caught as a bounds
     violation. *)
  let mp = mk "MPsys" in
  let user_base = 0x100000 and user_len = 0x10000 in
  Metapool_rt.register mp ~cls:Metapool_rt.Userspace ~start:user_base ~len:user_len;
  (* A valid userspace access passes. *)
  Metapool_rt.boundscheck mp ~src:(user_base + 16) ~dst:(user_base + 4096) ~access_len:64;
  (* Crossing out of userspace fails. *)
  expect_violation Violation.Bounds (fun () ->
      Metapool_rt.boundscheck mp ~src:(user_base + user_len - 8)
        ~dst:(user_base + user_len - 8) ~access_len:64)

let test_getbounds () =
  let mp = mk "MP5" in
  Metapool_rt.register mp ~cls:Metapool_rt.Global ~start:0x5000 ~len:128;
  Alcotest.(check (option (pair int int))) "found" (Some (0x5000, 128))
    (Metapool_rt.getbounds mp 0x5042);
  Alcotest.(check (option (pair int int))) "missing" None
    (Metapool_rt.getbounds mp 0x6000)

let test_boundscheck_known_fast_path () =
  Metapool_rt.boundscheck_known ~start:0x100 ~len:96 ~dst:0x100 ~access_len:96
    ~pool:"MP";
  expect_violation Violation.Bounds (fun () ->
      Metapool_rt.boundscheck_known ~start:0x100 ~len:96 ~dst:0x100
        ~access_len:97 ~pool:"MP")

let test_stats_counting () =
  Stats.reset ();
  let mp = mk "MPS" in
  Metapool_rt.register mp ~cls:Metapool_rt.Heap ~start:0x100 ~len:32;
  Metapool_rt.lscheck mp ~addr:0x108 ~access_len:4;
  Metapool_rt.boundscheck mp ~src:0x100 ~dst:0x110 ~access_len:4;
  ignore (Metapool_rt.getbounds mp 0x100);
  Metapool_rt.drop mp ~start:0x100;
  let s = Stats.read () in
  Alcotest.(check int) "regs" 1 s.Stats.registrations;
  Alcotest.(check int) "drops" 1 s.Stats.drops;
  Alcotest.(check int) "ls" 1 s.Stats.ls_checks;
  Alcotest.(check int) "bounds" 1 s.Stats.bounds_checks;
  Alcotest.(check int) "getbounds" 1 s.Stats.getbounds;
  Alcotest.(check int) "violations" 0 s.Stats.violations

(* ---------- object-lookup cache ---------- *)

(* The cache is pure memoization of the splay lookup: every observable —
   verdicts, violation kinds, bounds — must be byte-identical with the
   cache disabled.  Run the same random op sequence against a cached and
   an uncached pool and compare outcome transcripts. *)
let prop_cache_transparent =
  let op_gen =
    QCheck2.Gen.(
      let addr = int_range 0 1024 in
      let start = map (fun s -> s * 16) (int_range 1 40) in
      let len = int_range 1 48 in
      frequency
        [
          (3, map2 (fun s l -> `Reg (s, l)) start len);
          (2, map (fun s -> `Drop s) start);
          (3, map (fun a -> `Ls a) addr);
          (2, map3 (fun s d l -> `Bounds (s, d, l)) addr addr len);
          (2, map (fun a -> `Getbounds a) addr);
        ])
  in
  let gen =
    QCheck2.Gen.(pair bool (list_size (int_range 0 120) op_gen))
  in
  QCheck2.Test.make ~name:"cache is semantically invisible" ~count:300 gen
    (fun (complete, ops) ->
      let outcome f =
        match f () with
        | v -> Ok v
        | exception Violation.Safety_violation v ->
            Error (Violation.kind_to_string v.Violation.v_kind)
        | exception Invalid_argument _ -> Error "invalid-arg"
      in
      let run cached =
        let mp = Metapool_rt.create ~complete ~cached "MPX" in
        List.map
          (fun op ->
            outcome (fun () ->
                match op with
                | `Reg (s, l) ->
                    Metapool_rt.register mp ~cls:Metapool_rt.Heap ~start:s
                      ~len:l;
                    None
                | `Drop s ->
                    Metapool_rt.drop mp ~start:s;
                    None
                | `Ls a ->
                    Metapool_rt.lscheck mp ~addr:a ~access_len:4;
                    None
                | `Bounds (s, d, l) ->
                    Metapool_rt.boundscheck mp ~src:s ~dst:d ~access_len:l;
                    None
                | `Getbounds a -> Metapool_rt.getbounds mp a))
          ops
      in
      run true = run false)

(* Coherence oracle at the Objcache/Splay layer itself: drive a cached
   tree and a splay-only twin through the same interleaved
   insert/remove/lookup sequence.  Every lookup must return the same
   containing range; a stale cache slot surviving a removal (the one
   hazard the direct-mapped table has) would show up as a divergence. *)
let prop_cache_coheres_with_splay_oracle =
  let op_gen =
    QCheck2.Gen.(
      let start = map (fun s -> s * 16) (int_range 0 48) in
      let len = int_range 1 32 in
      frequency
        [
          (3, map2 (fun s l -> `Ins (s, l)) start len);
          (2, map (fun s -> `Rem s) start);
          (4, map (fun a -> `Find a) (int_range 0 800));
        ])
  in
  let gen = QCheck2.Gen.(list_size (int_range 0 150) op_gen) in
  QCheck2.Test.make
    ~name:"object cache coheres with a splay-only oracle" ~count:300 gen
    (fun ops ->
      let cached_tree = Splay.create ()
      and cache = Objcache.create ()
      and oracle = Splay.create () in
      let range = function
        | Some n -> Some (n.Splay.n_start, n.Splay.n_len)
        | None -> None
      in
      List.for_all
        (fun op ->
          match op with
          | `Ins (s, l) ->
              let a =
                match Splay.insert cached_tree ~start:s ~len:l () with
                | () -> true
                | exception _ -> false
              and b =
                match Splay.insert oracle ~start:s ~len:l () with
                | () -> true
                | exception _ -> false
              in
              a = b
          | `Rem s ->
              let a = range (Splay.remove cached_tree ~start:s) in
              Objcache.invalidate_start cache s;
              let b = range (Splay.remove oracle ~start:s) in
              a = b
          | `Find a ->
              range (Objcache.find cache cached_tree a)
              = range (Splay.find_containing oracle a))
        ops)

let test_cache_invalidated_on_drop () =
  Stats.reset ();
  let mp = mk "MPC1" in
  Metapool_rt.register mp ~cls:Metapool_rt.Heap ~start:0x1000 ~len:64;
  (* Warm the cache, then confirm the second probe of the same bucket is a
     hit. *)
  Metapool_rt.lscheck mp ~addr:0x1008 ~access_len:4;
  let h0 = Stats.cache_hits () in
  Metapool_rt.lscheck mp ~addr:0x1008 ~access_len:4;
  Alcotest.(check bool) "second lookup hits the cache" true
    (Stats.cache_hits () > h0);
  (* Dropping the object must evict it: a stale hit here would wrongly
     pass the check. *)
  Metapool_rt.drop mp ~start:0x1000;
  expect_violation Violation.Load_store (fun () ->
      Metapool_rt.lscheck mp ~addr:0x1008 ~access_len:4);
  Alcotest.(check (option (pair int int))) "getbounds after drop" None
    (Metapool_rt.getbounds mp 0x1008)

let test_cache_invalidated_on_reset () =
  let mp = mk "MPC2" in
  Metapool_rt.register mp ~cls:Metapool_rt.Heap ~start:0x2000 ~len:64;
  (* Warm the cache through getbounds... *)
  Alcotest.(check bool) "warm lookup" true
    (Metapool_rt.getbounds mp 0x2010 <> None);
  ignore (Metapool_rt.getbounds mp 0x2010);
  Metapool_rt.reset mp;
  (* ...then a reset pool must not serve the evicted object. *)
  Alcotest.(check (option (pair int int))) "getbounds after reset" None
    (Metapool_rt.getbounds mp 0x2010);
  expect_violation Violation.Load_store (fun () ->
      Metapool_rt.lscheck mp ~addr:0x2010 ~access_len:4)

let () =
  Alcotest.run "sva_rt"
    [
      ( "splay",
        [
          Alcotest.test_case "basic" `Quick test_splay_basic;
          Alcotest.test_case "remove" `Quick test_splay_remove;
          Alcotest.test_case "overlap rejected" `Quick test_splay_overlap_rejected;
          Alcotest.test_case "ordering" `Quick test_splay_ordering;
          QCheck_alcotest.to_alcotest prop_splay_model;
          QCheck_alcotest.to_alcotest prop_splay_insert_remove;
        ] );
      ( "metapool",
        [
          Alcotest.test_case "register/drop" `Quick test_reg_drop_cycle;
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "illegal free" `Quick test_illegal_free_detected;
          Alcotest.test_case "boundscheck" `Quick test_boundscheck_pass_and_fail;
          Alcotest.test_case "boundscheck straddle" `Quick test_boundscheck_straddle;
          Alcotest.test_case "reduced checks (incomplete)" `Quick
            test_boundscheck_incomplete_reduced;
          Alcotest.test_case "complete rejects unregistered" `Quick
            test_boundscheck_complete_rejects_unregistered;
          Alcotest.test_case "lscheck" `Quick test_lscheck;
          Alcotest.test_case "lscheck elided when incomplete" `Quick
            test_lscheck_incomplete_elided;
          Alcotest.test_case "funccheck" `Quick test_funccheck;
          Alcotest.test_case "userspace single object" `Quick test_userspace_object;
          Alcotest.test_case "getbounds" `Quick test_getbounds;
          Alcotest.test_case "known-bounds fast path" `Quick
            test_boundscheck_known_fast_path;
          Alcotest.test_case "stats counting" `Quick test_stats_counting;
        ] );
      ( "objcache",
        [
          QCheck_alcotest.to_alcotest prop_cache_transparent;
          QCheck_alcotest.to_alcotest prop_cache_coheres_with_splay_oracle;
          Alcotest.test_case "invalidated on drop" `Quick
            test_cache_invalidated_on_drop;
          Alcotest.test_case "invalidated on reset" `Quick
            test_cache_invalidated_on_reset;
        ] );
    ]
