(* Tests for the Section 4.8 / 7.1.3 optimizations: function cloning,
   devirtualization, redundant-check elimination and monotonic-loop
   bounds-check hoisting — each must preserve program behaviour while
   changing the static check/precision profile. *)

open Sva_pipeline
module Pointsto = Sva_analysis.Pointsto
module Allocdecl = Sva_analysis.Allocdecl
module Clone = Sva_analysis.Clone
module Checkopt = Sva_safety.Checkopt
module Stats = Sva_rt.Stats

let allocator_src =
  "long __km_cursor = 0;\n\
   extern long sva_heap_base(void);\n\
   __noanalyze char *kmalloc(long size) {\n\
  \  if (size <= 0) return (char*)0;\n\
  \  if (__km_cursor == 0) __km_cursor = sva_heap_base();\n\
  \  long p = __km_cursor;\n\
  \  __km_cursor = __km_cursor + ((size + 15) / 16) * 16;\n\
  \  return (char*)p;\n\
   }\n\
   __noanalyze void kfree(char *p) { }\n"

let aconfig =
  {
    Pointsto.default_config with
    Pointsto.allocators =
      [
        (* size classes exposed so distinct-size allocation sites are not
           merged by metapool inference (Section 6.2) *)
        Allocdecl.ordinary ~free:"kfree" ~size_arg:0
          ~size_classes:[ 8; 16; 32; 64; 128 ] "kmalloc";
      ];
  }

let run built fn args =
  let t = Pipeline.instantiate built in
  Sva_interp.Interp.call t fn (List.map Int64.of_int args)

(* ---------- cloning ---------- *)

let cloning_src =
  "struct a { long x; };\n\
   struct b { long y; long z; };\n\
   extern char *kmalloc(long n);\n\
   long read_first(long *p) { return *p; }\n\
   long drive(void) {\n\
  \  struct a *pa = (struct a*)kmalloc(sizeof(struct a));\n\
  \  struct b *pb = (struct b*)kmalloc(sizeof(struct b));\n\
  \  pa->x = 5;\n\
  \  pb->y = 6; pb->z = 7;\n\
  \  return read_first((long*)pa) + read_first((long*)pb);\n\
   }"

(* Are the two kmalloc allocation sites in one merged partition? *)
let alloc_sites_merged built =
  let pa = Option.get built.Pipeline.bl_pa in
  match
    List.filter
      (fun (al : Pointsto.alloc_site) -> al.Pointsto.al_alloc = "kmalloc")
      (Pointsto.alloc_sites pa)
  with
  | [ a; b ] -> Pointsto.same_node a.Pointsto.al_node b.Pointsto.al_node
  | sites -> Alcotest.failf "expected 2 kmalloc sites, got %d" (List.length sites)

let test_cloning_improves_precision () =
  (* Without cloning, both objects flow into read_first's parameter and
     merge into one partition; with cloning each call site keeps its own
     (the Section 4.8 improvement). *)
  let build clone =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~clone ~name:"cl"
      [ allocator_src; cloning_src ]
  in
  let without = build false and with_ = build true in
  Alcotest.(check bool) "clones created" true (with_.Pipeline.bl_cloned >= 1);
  Alcotest.(check bool) "merged without cloning" true
    (alloc_sites_merged without);
  Alcotest.(check bool) "distinct with cloning" false
    (alloc_sites_merged with_);
  (* behaviour preserved *)
  Alcotest.(check (option int64)) "same result" (run without "drive" [])
    (run with_ "drive" [])

let test_clone_function_is_deep_enough () =
  let m = Minic.Lower.compile_string ~name:"c" "int f(int x) { return x + 1; }" in
  let f = Option.get (Sva_ir.Irmod.find_func m "f") in
  let g = Clone.clone_function m f "f.copy" in
  Alcotest.(check bool) "registered" true (Sva_ir.Irmod.find_func m "f.copy" <> None);
  Sva_ir.Verify.check m;
  (* mutating the clone's block list must not affect the original *)
  g.Sva_ir.Func.f_blocks <- [];
  Alcotest.(check bool) "original intact" true (f.Sva_ir.Func.f_blocks <> [])

(* ---------- devirtualization ---------- *)

let devirt_src =
  "int inc(int x) { return x + 1; }\n\
   int dec(int x) { return x - 1; }\n\
   __callsig_assert int apply(int which, int v) {\n\
  \  int (*f)(int);\n\
  \  if (which) f = inc; else f = dec;\n\
  \  return f(v);\n\
   }"

let test_devirt_rewrites_and_preserves () =
  let build devirt =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~devirt ~name:"dv"
      [ allocator_src; devirt_src ]
  in
  let plain = build false and dv = build true in
  Alcotest.(check int) "one site devirtualized" 1 dv.Pipeline.bl_devirt;
  List.iter
    (fun (which, v, expect) ->
      Alcotest.(check (option int64))
        (Printf.sprintf "apply(%d,%d)" which v)
        (Some expect)
        (run dv "apply" [ which; v ]);
      Alcotest.(check (option int64)) "plain agrees" (Some expect)
        (run plain "apply" [ which; v ]))
    [ (1, 10, 11L); (0, 10, 9L) ];
  (* devirtualized dispatch no longer consults the run-time target set *)
  Stats.reset ();
  ignore (run dv "apply" [ 1; 5 ]);
  Alcotest.(check int) "no run-time funcchecks" 0
    (Stats.read ()).Stats.funcchecks

(* ---------- redundant load/store check elimination ---------- *)

let dedup_src =
  "extern char *kmalloc(long n);\n\
   long drive(void) {\n\
  \  long *p = (long*)kmalloc(8);\n\
  \  int *r = (int*)p;\n\
  \  *r = 3;             /* int-typed access collapses the pool */\n\
  \  *p = 21;\n\
  \  long x = *p;        /* checked load */\n\
  \  *p = x + 1;         /* store does not invalidate liveness */\n\
  \  long y = *p;        /* redundant check: same pool, same pointer */\n\
  \  return x + y;\n\
   }"

let test_lscheck_dedup () =
  let build checkopt =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~checkopt ~name:"dd"
      [ allocator_src; dedup_src ]
  in
  let plain = build false and opt = build true in
  (match opt.Pipeline.bl_checkopt with
  | Some s ->
      Alcotest.(check bool) "some check removed" true
        (s.Checkopt.co_ls_deduped >= 1)
  | None -> Alcotest.fail "no checkopt summary");
  Alcotest.(check (option int64)) "same result" (run plain "drive" [])
    (run opt "drive" []);
  (* fewer dynamic checks with the optimizer on *)
  Stats.reset ();
  ignore (run plain "drive" []);
  let ls_plain = (Stats.read ()).Stats.ls_checks in
  Stats.reset ();
  ignore (run opt "drive" []);
  let ls_opt = (Stats.read ()).Stats.ls_checks in
  Alcotest.(check bool)
    (Printf.sprintf "fewer ls checks (%d < %d)" ls_opt ls_plain)
    true (ls_opt < ls_plain)

(* ---------- cross-block available-check elimination ---------- *)

let avail_src =
  "extern char *kmalloc(long n);\n\
   long drive(int flag) {\n\
  \  long *p = (long*)kmalloc(8);\n\
  \  int *r = (int*)p;\n\
  \  *r = 3;             /* collapse the pool: accesses stay checked */\n\
  \  *p = 21;            /* the dominating check */\n\
  \  long x = 0;\n\
  \  if (flag) { x = *p; } else { x = *p + 1; }\n\
  \  long y = *p;        /* available on every path to the join */\n\
  \  return x + y;\n\
   }"

let test_avail_elimination () =
  let build checkopt =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~checkopt ~name:"av"
      [ allocator_src; avail_src ]
  in
  let plain = build false and opt = build true in
  (match opt.Pipeline.bl_checkopt with
  | Some s ->
      Alcotest.(check bool)
        (Printf.sprintf "cross-block checks eliminated (%d >= 2)"
           s.Checkopt.co_avail_eliminated)
        true
        (s.Checkopt.co_avail_eliminated >= 2)
  | None -> Alcotest.fail "no checkopt summary");
  List.iter
    (fun flag ->
      Alcotest.(check (option int64))
        (Printf.sprintf "same result (flag=%d)" flag)
        (run plain "drive" [ flag ])
        (run opt "drive" [ flag ]))
    [ 0; 1 ];
  Stats.reset ();
  ignore (run plain "drive" [ 1 ]);
  let ls_plain = (Stats.read ()).Stats.ls_checks in
  Stats.reset ();
  ignore (run opt "drive" [ 1 ]);
  let ls_opt = (Stats.read ()).Stats.ls_checks in
  Alcotest.(check bool)
    (Printf.sprintf "fewer dynamic ls checks (%d < %d)" ls_opt ls_plain)
    true (ls_opt < ls_plain)

let test_avail_killed_by_call () =
  (* an unknown call between the check and the re-access may free the
     object: availability must not survive it *)
  let src =
    "extern char *kmalloc(long n);\n\
     extern void mystery(void);\n\
     long drive(int flag) {\n\
    \  long *p = (long*)kmalloc(8);\n\
    \  int *r = (int*)p;\n\
    \  *r = 3;\n\
    \  *p = 21;\n\
    \  mystery();\n\
    \  long y = 0;\n\
    \  if (flag) y = *p;\n\
    \  return y;\n\
     }"
  in
  let b =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~checkopt:true ~name:"avk"
      [ allocator_src; src ]
  in
  match b.Pipeline.bl_checkopt with
  | Some s ->
      Alcotest.(check int) "nothing eliminated past the call" 0
        s.Checkopt.co_avail_eliminated
  | None -> Alcotest.fail "no checkopt summary"

(* ---------- monotonic-loop hoisting ---------- *)

let hoist_src =
  "extern char *kmalloc(long n);\n\
   long fill(int n) {\n\
  \  long *a = (long*)kmalloc(n * 8);\n\
  \  if (!a) return -1;\n\
  \  long s = 0;\n\
  \  for (int i = 0; i < n; i++) { a[i] = i; }\n\
  \  for (int i = 0; i < n; i++) { s += a[i]; }\n\
  \  return s;\n\
   }"

let test_hoisting () =
  let build checkopt =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~checkopt ~name:"ho"
      [ allocator_src; hoist_src ]
  in
  let plain = build false and opt = build true in
  (match opt.Pipeline.bl_checkopt with
  | Some s ->
      Alcotest.(check bool) "bounds checks hoisted" true
        (s.Checkopt.co_bounds_hoisted >= 2)
  | None -> Alcotest.fail "no checkopt summary");
  (* same answer, far fewer dynamic bounds checks *)
  Alcotest.(check (option int64)) "same result" (Some 1225L)
    (run opt "fill" [ 50 ]);
  Stats.reset ();
  ignore (run plain "fill" [ 50 ]);
  let b_plain = (Stats.read ()).Stats.bounds_checks in
  Stats.reset ();
  ignore (run opt "fill" [ 50 ]);
  let b_opt = (Stats.read ()).Stats.bounds_checks in
  Alcotest.(check bool)
    (Printf.sprintf "hoisted: %d << %d dynamic bounds checks" b_opt b_plain)
    true (b_opt * 4 < b_plain)

let test_hoisting_still_catches_overrun () =
  (* the whole-range preheader check must still trap a too-small object *)
  let src =
    "extern char *kmalloc(long n);\n\
     long smash(int claimed, int alloc_bytes) {\n\
    \  long *a = (long*)kmalloc(alloc_bytes);\n\
    \  for (int i = 0; i < claimed; i++) a[i] = i;\n\
    \  return 0;\n\
     }"
  in
  let b =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~checkopt:true ~name:"hs"
      [ allocator_src; src ]
  in
  (match run b "smash" [ 4; 32 ] with
  | Some 0L -> ()
  | _ -> Alcotest.fail "benign fill failed");
  let b2 =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~checkopt:true ~name:"hs"
      [ allocator_src; src ]
  in
  match run b2 "smash" [ 16; 32 ] with
  | exception Sva_rt.Violation.Safety_violation v ->
      Alcotest.(check string) "bounds" "bounds"
        (Sva_rt.Violation.kind_to_string v.Sva_rt.Violation.v_kind)
  | _ -> Alcotest.fail "overrun escaped the hoisted check"

let test_hoisting_empty_loop_ok () =
  (* zero-trip loops must not fire the hoisted range check *)
  let b =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~checkopt:true ~name:"he"
      [ allocator_src; hoist_src ]
  in
  match run b "fill" [ 0 ] with
  | Some v -> Alcotest.(check int64) "empty loop" (-1L) v (* kmalloc(0) = 0 *)
  | None -> Alcotest.fail "void"

(* ---------- qcheck: Checkopt is a pure optimization ---------- *)

(* Random MiniC functions over a kmalloc'd 8-long array: masked (always
   in-bounds) accesses driven by random arithmetic, and in half the
   programs a plain [p[i]] walk whose claimed bound is sometimes past the
   allocation — so the optimized build must fault exactly where the plain
   build does. *)

let rec gen_arith rng depth =
  if depth = 0 then
    match Random.State.int rng 3 with 0 -> "a" | 1 -> "b" | _ -> "i"
  else
    let l = gen_arith rng (depth - 1) and r = gen_arith rng (depth - 1) in
    match Random.State.int rng 5 with
    | 0 -> Printf.sprintf "(%s + %s)" l r
    | 1 -> Printf.sprintf "(%s - %s)" l r
    | 2 -> Printf.sprintf "(%s * %s)" l r
    | 3 -> Printf.sprintf "(%s ^ %s)" l r
    | _ -> Printf.sprintf "(%s & %s)" l r

let gen_checkopt_program seed =
  let rng = Random.State.make [| seed |] in
  let e1 = gen_arith rng 2 and e2 = gen_arith rng 2 in
  let k1 = Random.State.int rng 8 and k2 = Random.State.int rng 8 in
  let walk =
    if Random.State.bool rng then
      let claimed = if Random.State.bool rng then 8 else 10 in
      Printf.sprintf "  for (long i = 0; i < %d; i++) s += p[i];\n" claimed
    else ""
  in
  Printf.sprintf
    "extern char *kmalloc(long n);\n\
     long f(long a, long b) {\n\
    \  long *p = (long*)kmalloc(64);\n\
    \  long s = 0;\n\
    \  for (long i = 0; i < 8; i++) {\n\
    \    p[(i + %d) & 7] = %s;\n\
    \    s = s + (p[(i + %d) & 7] ^ (%s));\n\
    \  }\n\
     %s\
    \  return s;\n\
     }"
    k1 e1 k2 e2 walk

let checkopt_outcome built a b =
  Stats.reset ();
  let verdict =
    match run built "f" [ a; b ] with
    | v -> Ok v
    | exception Sva_rt.Violation.Safety_violation v ->
        Error (Sva_rt.Violation.kind_to_string v.Sva_rt.Violation.v_kind)
  in
  (verdict, Stats.total_checks (Stats.read ()))

let prop_checkopt_equivalent =
  let gen =
    QCheck2.Gen.(tup3 (int_range 0 2000) small_signed_int small_signed_int)
  in
  QCheck2.Test.make
    ~name:"checkopt preserves verdicts and never adds dynamic checks"
    ~count:40 gen
    (fun (seed, a, b) ->
      let src = gen_checkopt_program seed in
      let build checkopt =
        Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~checkopt ~name:"qc"
          [ allocator_src; src ]
      in
      let plain = build false and opt = build true in
      let v_plain, c_plain = checkopt_outcome plain a b in
      let v_opt, c_opt = checkopt_outcome opt a b in
      if v_plain <> v_opt then
        QCheck2.Test.fail_reportf "verdict drift on seed %d:\n%s" seed src;
      if c_opt > c_plain then
        QCheck2.Test.fail_reportf
          "optimized build runs more checks (%d > %d) on seed %d" c_opt c_plain
          seed;
      true)

let () =
  Alcotest.run "sva_opts"
    [
      ( "cloning",
        [
          Alcotest.test_case "precision improves" `Quick
            test_cloning_improves_precision;
          Alcotest.test_case "clone independence" `Quick
            test_clone_function_is_deep_enough;
        ] );
      ( "devirt",
        [
          Alcotest.test_case "rewrite preserves behaviour" `Quick
            test_devirt_rewrites_and_preserves;
        ] );
      ( "checkopt",
        [
          Alcotest.test_case "lscheck dedup" `Quick test_lscheck_dedup;
          Alcotest.test_case "available-check elimination" `Quick
            test_avail_elimination;
          Alcotest.test_case "availability killed by calls" `Quick
            test_avail_killed_by_call;
          Alcotest.test_case "loop hoisting" `Quick test_hoisting;
          Alcotest.test_case "hoisted check still catches" `Quick
            test_hoisting_still_catches_overrun;
          Alcotest.test_case "zero-trip loop" `Quick test_hoisting_empty_loop_ok;
          QCheck_alcotest.to_alcotest prop_checkopt_equivalent;
        ] );
    ]
