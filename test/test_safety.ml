(* Integration tests for the safety-checking compiler: the full pipeline
   (MiniC -> SSA -> points-to -> metapools -> check insertion -> SVM),
   exercised on kernel-style code with a declared custom allocator. *)

open Sva_pipeline
module Violation = Sva_rt.Violation
module Stats = Sva_rt.Stats
module Pointsto = Sva_analysis.Pointsto
module Allocdecl = Sva_analysis.Allocdecl

(* A bump allocator standing in for the kernel's kmalloc, declared to the
   safety compiler but (like the paper's memory subsystem) not analyzed. *)
let allocator_src =
  "long __km_cursor = 0;\n\
   extern long sva_heap_base(void);\n\
   __noanalyze char *kmalloc(long size) {\n\
  \  if (size <= 0) return (char*)0;\n\
  \  if (__km_cursor == 0) __km_cursor = sva_heap_base();\n\
  \  long p = __km_cursor;\n\
  \  __km_cursor = __km_cursor + ((size + 15) / 16) * 16;\n\
  \  return (char*)p;\n\
   }\n\
   __noanalyze void kfree(char *p) { }\n"

let aconfig =
  {
    Pointsto.default_config with
    Pointsto.allocators =
      [ Allocdecl.ordinary ~free:"kfree" ~size_arg:0 "kmalloc" ];
  }

let build_safe ?options srcs =
  Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ?options ~name:"t"
    (allocator_src :: srcs)

let build_native srcs =
  Pipeline.build ~conf:Pipeline.Native ~aconfig ~name:"t" (allocator_src :: srcs)

let run built fn args =
  let t = Pipeline.instantiate built in
  Sva_interp.Interp.call t fn (List.map Int64.of_int args)

let expect_violation kind f =
  match f () with
  | _ -> Alcotest.fail "expected a safety violation"
  | exception Violation.Safety_violation v ->
      Alcotest.(check string) "violation kind"
        (Violation.kind_to_string kind)
        (Violation.kind_to_string v.Violation.v_kind)

(* ---------- heap overrun via integer overflow (the §7.2 pattern) ---------- *)

let overflow_src =
  "extern char *kmalloc(long size);\n\
   int set_filter(int count) {\n\
  \  /* 32-bit multiply overflows for count = 0x40000001: bytes = 4 */\n\
  \  int bytes = count * 4;\n\
  \  int *buf = (int*)kmalloc(bytes);\n\
  \  if (!buf) return -12;\n\
  \  for (int i = 0; i < 8 && i < count; i++) buf[i] = i;\n\
  \  return 0;\n\
   }"

let test_overflow_caught () =
  let b = build_safe [ overflow_src ] in
  (* Sane size: passes. *)
  (match run b "set_filter" [ 8 ] with
  | Some 0L -> ()
  | _ -> Alcotest.fail "benign call failed");
  (* Overflowed size: the second write escapes the 4-byte object. *)
  expect_violation Violation.Bounds (fun () ->
      run (build_safe [ overflow_src ]) "set_filter" [ 0x40000001 ])

let test_overflow_native_corrupts_silently () =
  (* The same input on the native kernel just corrupts the heap. *)
  match run (build_native [ overflow_src ]) "set_filter" [ 0x40000001 ] with
  | Some 0L -> ()
  | _ -> Alcotest.fail "native kernel should run straight through"

(* ---------- global array OOB (the BID 11956 pattern) ---------- *)

let global_oob_src =
  "int fib_props[12] = {1,2,3,4,5,6,7,8,9,10,11,12};\n\
   int read_prop(int idx) { return fib_props[idx]; }"

let test_global_oob_caught () =
  let b = build_safe [ global_oob_src ] in
  (match run b "read_prop" [ 3 ] with
  | Some 4L -> ()
  | _ -> Alcotest.fail "in-bounds read wrong");
  expect_violation Violation.Bounds (fun () ->
      run (build_safe [ global_oob_src ]) "read_prop" [ 50 ])

(* ---------- double free ---------- *)

let double_free_src =
  "extern char *kmalloc(long size);\n\
   extern void kfree(char *p);\n\
   int doit(int twice) {\n\
  \  char *p = kmalloc(32);\n\
  \  kfree(p);\n\
  \  if (twice) kfree(p);\n\
  \  return 0;\n\
   }"

let test_double_free_caught () =
  let b = build_safe [ double_free_src ] in
  (match run b "doit" [ 0 ] with
  | Some 0L -> ()
  | _ -> Alcotest.fail "single free should pass");
  expect_violation Violation.Double_free (fun () ->
      run (build_safe [ double_free_src ]) "doit" [ 1 ])

(* ---------- negative length byte (the BID 12911 bluetooth pattern) ---------- *)

let signed_index_src =
  "extern char *kmalloc(long size);\n\
   int parse_packet(int len_byte) {\n\
  \  char *table = kmalloc(64);\n\
  \  /* a length byte decremented below zero, then used unsigned */\n\
  \  unsigned int idx = (unsigned int)(len_byte - 2);\n\
  \  table[idx] = 1;\n\
  \  return 0;\n\
   }"

let test_signed_index_caught () =
  let b = build_safe [ signed_index_src ] in
  (match run b "parse_packet" [ 10 ] with
  | Some 0L -> ()
  | _ -> Alcotest.fail "benign packet failed");
  (* len_byte = 1: idx = (unsigned)(-1) = huge *)
  expect_violation Violation.Bounds (fun () ->
      run (build_safe [ signed_index_src ]) "parse_packet" [ 1 ])

(* ---------- stack promotion: escaping local survives ---------- *)

let escape_src =
  "struct box { int v; };\n\
   struct box *leak(void) {\n\
  \  struct box b;\n\
  \  b.v = 41;\n\
  \  struct box *p = &b;\n\
  \  p->v = 42;\n\
  \  return p;\n\
   }\n\
   int use(void) { struct box *p = leak(); return p->v; }"

let test_stack_promotion () =
  let b = build_safe [ escape_src ] in
  (match b.Pipeline.bl_summary with
  | Some s ->
      Alcotest.(check bool) "something promoted" true
        (s.Sva_safety.Checkinsert.stack_promoted >= 1)
  | None -> Alcotest.fail "no summary");
  ignore (run b "use" [])

(* ---------- TH pools elide load/store checks ---------- *)

let th_src =
  "struct task { int pid; int state; struct task *next; };\n\
   extern char *kmalloc(long size);\n\
   int mk(void) {\n\
  \  struct task *t = (struct task*)kmalloc(sizeof(struct task));\n\
  \  t->pid = 7;\n\
  \  t->state = 1;\n\
  \  return t->pid + t->state;\n\
   }"

let test_summary_counts () =
  let b = build_safe [ th_src ] in
  match b.Pipeline.bl_summary with
  | Some s ->
      Alcotest.(check bool) "registrations inserted" true
        (s.Sva_safety.Checkinsert.regs_inserted > 0);
      Alcotest.(check bool) "static bounds proved" true
        (s.Sva_safety.Checkinsert.bounds_static > 0)
  | None -> Alcotest.fail "no summary"

let test_checks_actually_execute () =
  Stats.reset ();
  let b = build_safe [ overflow_src ] in
  ignore (run b "set_filter" [ 8 ]);
  let s = Stats.read () in
  Alcotest.(check bool) "bounds checks ran" true (s.Stats.bounds_checks > 0);
  Alcotest.(check bool) "an object was registered" true
    (s.Stats.registrations > 0)

(* ---------- indirect call check ---------- *)

let cfi_src =
  "extern char *kmalloc(long size);\n\
   int good_a(int x) { return x + 1; }\n\
   int good_b(int x) { return x + 2; }\n\
   struct ops { long pad; int (*handler)(int); };\n\
   int dispatch(int which, int smash) {\n\
  \  struct ops *o = (struct ops*)kmalloc(sizeof(struct ops));\n\
  \  if (which) o->handler = good_a; else o->handler = good_b;\n\
  \  if (smash) o->pad = 0x1234567;\n\
  \  if (smash) o->handler = (int (*)(int))o->pad;\n\
  \  return o->handler(10);\n\
   }"

let test_cfi_indirect_call () =
  let b = build_safe [ cfi_src ] in
  (match run b "dispatch" [ 1; 0 ] with
  | Some 11L -> ()
  | _ -> Alcotest.fail "legit dispatch failed");
  expect_violation Violation.Indirect_call (fun () ->
      run (build_safe [ cfi_src ]) "dispatch" [ 1; 1 ])

(* ---------- dangling pointers are harmless in TH pools ---------- *)

let dangling_src =
  "struct obj { long a; long b; };\n\
   extern char *kmalloc(long size);\n\
   extern void kfree(char *p);\n\
   long dangle(void) {\n\
  \  struct obj *p = (struct obj*)kmalloc(sizeof(struct obj));\n\
  \  p->a = 5;\n\
  \  kfree((char*)p);\n\
  \  /* dangling read: must not violate safety (T-guarantees preserved,\n\
  \     Section 4.1: dangling pointers are not prevented, only rendered\n\
  \     harmless) */\n\
  \  return p->a;\n\
   }"

let test_dangling_harmless () =
  let b = build_safe [ dangling_src ] in
  match run b "dangle" [] with
  | Some 5L -> ()
  | Some v -> Alcotest.failf "unexpected value %Ld" v
  | None -> Alcotest.fail "void"

(* ---------- certified range elision is semantically invisible ---------- *)

(* Random arithmetic over a, b, c with non-trapping operators (same shape
   as the test_tiered generator). *)
let rec gen_expr rng depth =
  if depth = 0 then
    match Random.State.int rng 4 with
    | 0 -> "a"
    | 1 -> "b"
    | 2 -> "c"
    | _ -> string_of_int (Random.State.int rng 2000 - 1000)
  else
    let l = gen_expr rng (depth - 1) and r = gen_expr rng (depth - 1) in
    match Random.State.int rng 7 with
    | 0 -> Printf.sprintf "(%s + %s)" l r
    | 1 -> Printf.sprintf "(%s - %s)" l r
    | 2 -> Printf.sprintf "(%s * %s)" l r
    | 3 -> Printf.sprintf "(%s & %s)" l r
    | 4 -> Printf.sprintf "(%s | %s)" l r
    | 5 -> Printf.sprintf "(%s ^ %s)" l r
    | _ -> Printf.sprintf "(%s < %s ? %s : %s)" l r l r

(* Array-heavy programs: loop-guarded indexes the interval analysis can
   certify, a clamp-guarded index, a masked index, and (sometimes) a raw
   parameter index that must keep its check and may trap. *)
let gen_arr_program seed =
  let rng = Random.State.make [| seed |] in
  let e1 = gen_expr rng 2 in
  let e2 = gen_expr rng 2 in
  let mask = (1 lsl (1 + Random.State.int rng 6)) - 1 in
  let raw = Random.State.int rng 2 = 0 in
  Printf.sprintf
    "int tbl[64];\n\
     int f(int a, int b) {\n\
    \  int c = %s;\n\
    \  long acc = 0;\n\
    \  for (long i = 0; i < 64; i = i + 1) tbl[i] = (int)(i + c);\n\
    \  for (long i = 0; i < 64; i = i + 1) acc = acc + tbl[i];\n\
    \  long j = (long)(%s);\n\
    \  if (j < 0) j = 0;\n\
    \  if (j > 63) j = 63;\n\
    \  acc = acc + tbl[j];\n\
    \  long k = (long)a & %d;\n\
    \  acc = acc + tbl[k];\n\
    \  %s\n\
    \  return (int)acc;\n\
     }"
    e1 e2 mask
    (if raw then "if (a > 100) acc = acc + tbl[b];" else "")

(* Result (or trap), modeled cycles and executed-check total of [f]. *)
let run_f built args =
  Stats.reset ();
  let t = Pipeline.instantiate built in
  let r =
    match Sva_interp.Interp.call t "f" args with
    | v -> Ok v
    | exception Sva_interp.Interp.Vm_error m -> Error ("vm: " ^ m)
    | exception Violation.Safety_violation v ->
        Error ("violation: " ^ Violation.to_string v)
  in
  (r, Sva_interp.Interp.cycles t, Stats.total_checks (Stats.read ()))

let prop_range_elision_invisible =
  let gen =
    QCheck2.Gen.(tup3 (int_range 0 5000) small_signed_int small_signed_int)
  in
  QCheck2.Test.make
    ~name:
      "range elision: identical results/traps, fewer-or-equal checks and \
       cycles"
    ~count:25 gen
    (fun (seed, a, b) ->
      let src = gen_arr_program seed in
      let off = Pipeline.build ~conf:Pipeline.Sva_safe ~name:"roff" [ src ] in
      let on =
        Pipeline.build ~conf:Pipeline.Sva_safe ~ranges:true ~name:"ron" [ src ]
      in
      let args = [ Int64.of_int a; Int64.of_int b ] in
      let ro, co, ko = run_f off args in
      let rn, cn, kn = run_f on args in
      ro = rn && cn <= co && kn <= ko)

(* Pool certification must be pure observation: the same program built
   with and without [~poolcert:true] gives bit-identical results,
   modeled cycles and executed-check totals (the gated build fails
   outright if the trusted checker rejects anything), and every elision
   the verifier recorded is backed by exactly one certificate of the
   matching kind. *)
module Poolev = Sva_safety.Poolev

let prop_poolcert_invisible =
  let gen =
    QCheck2.Gen.(tup3 (int_range 0 5000) small_signed_int small_signed_int)
  in
  QCheck2.Test.make
    ~name:
      "pool certification: bit-identical results/cycles/checks; every \
       elision backed by exactly one certificate"
    ~count:25 gen
    (fun (seed, a, b) ->
      let src = gen_arr_program seed in
      let off = Pipeline.build ~conf:Pipeline.Sva_safe ~name:"pcoff" [ src ] in
      let on =
        Pipeline.build ~conf:Pipeline.Sva_safe ~poolcert:true ~name:"pcon"
          [ src ]
      in
      let args = [ Int64.of_int a; Int64.of_int b ] in
      let ro, co, ko = run_f off args in
      let rn, cn, kn = run_f on args in
      let bundle = Option.get on.Pipeline.bl_poolcert in
      let th_certs mp =
        List.length
          (List.filter (fun tc -> tc.Poolev.tc_mp = mp) bundle.Poolev.pb_th)
      in
      let incomplete_certs mp =
        List.length
          (List.filter
             (fun cc -> cc.Poolev.cc_mp = mp && not cc.Poolev.cc_complete)
             bundle.Poolev.pb_comp)
      in
      let backed =
        List.for_all
          (function
            | Poolev.El_th (_, mp) -> th_certs mp = 1
            | Poolev.El_reduced (_, mp) -> incomplete_certs mp = 1
            | Poolev.El_func (_, mp, Poolev.Fc_th) -> th_certs mp = 1
            | Poolev.El_func (_, mp, Poolev.Fc_incomplete) ->
                incomplete_certs mp = 1)
          bundle.Poolev.pb_elisions
      in
      ro = rn && co = cn && ko = kn && backed)

let test_ranges_kernel_static () =
  (* the Table 9 ablation row: on the entire-kernel build (lint on) the
     certified elision must push the static ls-check count below the
     lint-only baseline of 252 and account for every removed bounds check *)
  let off =
    Ukern.Kbuild.build ~conf:Pipeline.Sva_safe ~lint:true
      Ukern.Kbuild.entire_kernel
  in
  let on =
    Ukern.Kbuild.build ~conf:Pipeline.Sva_safe ~lint:true ~ranges:true
      Ukern.Kbuild.entire_kernel
  in
  let s0 = Option.get off.Pipeline.bl_summary in
  let s1 = Option.get on.Pipeline.bl_summary in
  Alcotest.(check bool) "below the lint-on baseline of 252" true
    (s1.Sva_safety.Checkinsert.ls_inserted < 252);
  Alcotest.(check bool) "strictly fewer ls checks than ranges-off" true
    (s1.Sva_safety.Checkinsert.ls_inserted
    < s0.Sva_safety.Checkinsert.ls_inserted);
  Alcotest.(check int) "bounds drop equals the certified-gep count"
    s1.Sva_safety.Checkinsert.bounds_static_range
    (s0.Sva_safety.Checkinsert.bounds_inserted
    - s1.Sva_safety.Checkinsert.bounds_inserted);
  Alcotest.(check bool) "certificates were emitted and verified" true
    (match on.Pipeline.bl_ranges with
    | Some rr ->
        let cb, cl = Sva_analysis.Interval.cert_counts rr in
        cb + cl > 0
    | None -> false)

let test_ranges_exploit_verdicts () =
  (* the five Section 7.2 exploits: verdicts bit-identical with range
     elision on and off *)
  let verdicts ranges =
    List.map
      (fun ex ->
        let t = Ukern.Boot.boot ~conf:Pipeline.Sva_safe ~ranges () in
        Exploits.outcome_to_string (Exploits.attack t ex))
      Exploits.all
  in
  Alcotest.(check (list string)) "verdicts identical" (verdicts false)
    (verdicts true)

(* ---------- analysis sanity on the compiled module ---------- *)

let test_analysis_results_present () =
  let b = build_safe [ th_src ] in
  match (b.Pipeline.bl_pa, b.Pipeline.bl_mps) with
  | Some pa, Some mps ->
      Alcotest.(check bool) "has nodes" true (Pointsto.node_count pa > 0);
      Alcotest.(check bool) "has metapools" true
        (List.length (Sva_safety.Metapool.decls mps) > 0);
      (* kmalloc'ed tasks: some heap node exists *)
      Alcotest.(check bool) "has heap node" true
        (List.exists
           (fun n -> Pointsto.has_flag n Pointsto.Heap)
           (Pointsto.nodes pa))
  | _ -> Alcotest.fail "missing analysis outputs"

let () =
  Alcotest.run "sva_safety"
    [
      ( "exploit-patterns",
        [
          Alcotest.test_case "integer overflow caught" `Quick test_overflow_caught;
          Alcotest.test_case "native corrupts silently" `Quick
            test_overflow_native_corrupts_silently;
          Alcotest.test_case "global OOB caught" `Quick test_global_oob_caught;
          Alcotest.test_case "double free caught" `Quick test_double_free_caught;
          Alcotest.test_case "signed index caught" `Quick test_signed_index_caught;
          Alcotest.test_case "CFI indirect call" `Quick test_cfi_indirect_call;
        ] );
      ( "mechanism",
        [
          Alcotest.test_case "stack promotion" `Quick test_stack_promotion;
          Alcotest.test_case "summary counts" `Quick test_summary_counts;
          Alcotest.test_case "checks execute" `Quick test_checks_actually_execute;
          Alcotest.test_case "dangling harmless" `Quick test_dangling_harmless;
          Alcotest.test_case "analysis present" `Quick test_analysis_results_present;
        ] );
      ( "range-elision",
        [
          QCheck_alcotest.to_alcotest prop_range_elision_invisible;
          Alcotest.test_case "entire-kernel static counts" `Slow
            test_ranges_kernel_static;
          Alcotest.test_case "exploit verdicts identical" `Slow
            test_ranges_exploit_verdicts;
        ] );
      ( "pool-certification",
        [ QCheck_alcotest.to_alcotest prop_poolcert_invisible ] );
    ]
