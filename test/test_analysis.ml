(* Unit tests for the points-to analysis and call graph: unification,
   memory-class flags, type-homogeneity, completeness, the Section 4.8
   kernel heuristics (error-cast nulling, internal syscall resolution,
   userspace-copy merging) and allocator size-class grouping. *)

module Pointsto = Sva_analysis.Pointsto
module Callgraph = Sva_analysis.Callgraph
module Allocdecl = Sva_analysis.Allocdecl

let compile ?(config = Pointsto.default_config) srcs =
  let m = Minic.Lower.compile_strings ~name:"t" srcs in
  Sva_ir.Passes.run Sva_ir.Passes.Llvm_like m;
  (m, Pointsto.run ~config m)

let node_of pa fname reg =
  match Pointsto.reg_node pa ~fname reg with
  | Some n -> n
  | None -> Alcotest.failf "no node for @%s r%d" fname reg

(* ---------- basic unification ---------- *)

let test_assignment_unifies () =
  let _, pa =
    compile
      [
        "struct s { long a; };\n\
         struct s g1;\n\
         struct s g2;\n\
         struct s *pick(int c) { if (c) return &g1; return &g2; }";
      ]
  in
  (* both globals flow into one return partition *)
  let n1 = Option.get (Pointsto.global_node pa "g1") in
  let n2 = Option.get (Pointsto.global_node pa "g2") in
  Alcotest.(check bool) "merged" true (Pointsto.same_node n1 n2);
  Alcotest.(check bool) "global flag" true (Pointsto.has_flag n1 Pointsto.Global);
  (match Pointsto.ret_node pa "pick" with
  | Some r -> Alcotest.(check bool) "ret targets them" true (Pointsto.same_node r n1)
  | None -> Alcotest.fail "no return node")

let test_distinct_objects_stay_distinct () =
  let _, pa =
    compile
      [
        "long a_var;\n\
         long b_var;\n\
         long *pa_fn(void) { return &a_var; }\n\
         long *pb_fn(void) { return &b_var; }";
      ]
  in
  let n1 = Option.get (Pointsto.global_node pa "a_var") in
  let n2 = Option.get (Pointsto.global_node pa "b_var") in
  Alcotest.(check bool) "not merged" false (Pointsto.same_node n1 n2)

let test_store_creates_edge () =
  let _, pa =
    compile
      [
        "long target;\n\
         long *slot;\n\
         void link(void) { slot = &target; }";
      ]
  in
  let slot = Option.get (Pointsto.global_node pa "slot") in
  match Pointsto.node_succ slot with
  | Some s ->
      Alcotest.(check bool) "edge to target" true
        (Pointsto.same_node s (Option.get (Pointsto.global_node pa "target")))
  | None -> Alcotest.fail "no points-to edge"

(* ---------- type homogeneity ---------- *)

let test_th_inference () =
  let _, pa =
    compile
      [
        "struct task { int pid; int st; };\n\
         struct task tasks[8];\n\
         int get(int i) { return tasks[i].pid; }";
      ]
  in
  let n = Option.get (Pointsto.global_node pa "tasks") in
  Alcotest.(check bool) "TH" true (Pointsto.is_type_homog n);
  match Pointsto.node_ty n with
  | Some (Sva_ir.Ty.Struct "task") -> ()
  | t ->
      Alcotest.failf "expected %%task, got %s"
        (match t with Some t -> Sva_ir.Ty.to_string t | None -> "none")

let test_conflicting_casts_collapse () =
  let _, pa =
    compile
      [
        "struct task { int pid; int st; };\n\
         struct task tasks[8];\n\
         long reinterpret(int i) { long *p = (long*)&tasks[i]; return *p; }";
      ]
  in
  let n = Option.get (Pointsto.global_node pa "tasks") in
  Alcotest.(check bool) "collapsed" false (Pointsto.is_type_homog n)

(* ---------- Section 4.8 heuristics ---------- *)

let test_error_cast_treated_as_null () =
  (* (struct s * )-22 error returns must not poison the partition *)
  let _, pa =
    compile
      [
        "struct s { long v; };\n\
         struct s g;\n\
         struct s *lookup(int c) { if (c) return &g; return (struct s*)-22; }";
      ]
  in
  let n = Option.get (Pointsto.global_node pa "g") in
  Alcotest.(check bool) "still complete" true (Pointsto.is_complete n);
  Alcotest.(check bool) "not unknown" false (Pointsto.has_flag n Pointsto.Unknown)

let test_manufactured_address_is_unknown () =
  let _, pa =
    compile
      [ "long probe(void) { long *p = (long*)0x7fff0000; return *p; }" ]
  in
  let n = node_of pa "probe" 2 in
  ignore n;
  (* some node involved in the deref is incomplete *)
  let any_unknown =
    List.exists
      (fun n -> Pointsto.has_flag n Pointsto.Unknown)
      (Pointsto.nodes pa)
  in
  Alcotest.(check bool) "manufactured -> unknown" true any_unknown

let test_pseudo_alloc_not_unknown () =
  let _, pa =
    compile
      [
        "extern char *sva_pseudo_alloc(long start, long len);\n\
         int probe(void) {\n\
        \  char *bios = sva_pseudo_alloc(0xE0000, 64);\n\
        \  return bios[8];\n\
         }";
      ]
  in
  let any_unknown =
    List.exists (fun n -> Pointsto.has_flag n Pointsto.Unknown) (Pointsto.nodes pa)
  in
  Alcotest.(check bool) "registered manufactured address is analyzable" false
    any_unknown;
  let any_bios =
    List.exists (fun n -> Pointsto.has_flag n Pointsto.Bios) (Pointsto.nodes pa)
  in
  Alcotest.(check bool) "bios flag" true any_bios

let syscall_config =
  {
    Pointsto.default_config with
    Pointsto.syscall_register = Some "sva_register_syscall";
    syscall_invoke = Some "sva_syscall";
  }

let test_syscall_registration_and_internal_calls () =
  let _, pa =
    compile ~config:syscall_config
      [
        "extern void sva_register_syscall(long num, ...);\n\
         extern long sva_syscall(long num, ...);\n\
         long value = 5;\n\
         long sys_probe(long a) { return value + a; }\n\
         void init(void) { sva_register_syscall(7, sys_probe); }\n\
         long internal(void) { return sva_syscall(7, 10); }";
      ]
  in
  Alcotest.(check (list (pair int string))) "table" [ (7, "sys_probe") ]
    (Pointsto.syscall_table pa);
  (* the internal syscall resolved as a direct call: sys_probe's return
     flows to internal's return *)
  match (Pointsto.ret_node pa "internal", Pointsto.ret_node pa "sys_probe") with
  | Some _, Some _ | None, None -> () (* scalar returns may have no node *)
  | _ -> ()

let test_syscall_pointer_params_marked_userspace () =
  let _, pa =
    compile ~config:syscall_config
      [
        "extern void sva_register_syscall(long num, ...);\n\
         long sys_write(long fd, char *buf, long n) { return buf[0] + n; }\n\
         void init(void) { sva_register_syscall(4, sys_write); }";
      ]
  in
  let buf_node = node_of pa "sys_write" 1 in
  Alcotest.(check bool) "userspace-flagged" true
    (Pointsto.has_flag buf_node Pointsto.Userspace);
  (* "as tested": userspace is an incompleteness source... *)
  Alcotest.(check bool) "incomplete" false (Pointsto.is_complete buf_node);
  (* ...and in "entire kernel" mode it is a valid object *)
  let _, pa2 =
    compile
      ~config:{ syscall_config with Pointsto.userspace_valid = true }
      [
        "extern void sva_register_syscall(long num, ...);\n\
         long sys_write(long fd, char *buf, long n) { return buf[0] + n; }\n\
         void init(void) { sva_register_syscall(4, sys_write); }";
      ]
  in
  Alcotest.(check bool) "complete when userspace valid" true
    (Pointsto.is_complete (node_of pa2 "sys_write" 1))

let test_user_copy_heuristic_no_merge () =
  let config =
    { syscall_config with Pointsto.user_copy_functions = [ "copy_from_user" ] }
  in
  let _, pa =
    compile ~config
      [
        "extern long copy_from_user(char *dst, long usrc, long n);\n\
         struct msg { long a; long b; };\n\
         struct msg g_msg;\n\
         long recv(long usrc) {\n\
        \  return copy_from_user((char*)&g_msg, usrc, 16);\n\
         }";
      ]
  in
  (* the heuristic collapses the destination (no type info for the user
     side) but must NOT mark it unknown/incomplete *)
  let n = Option.get (Pointsto.global_node pa "g_msg") in
  Alcotest.(check bool) "complete" true (Pointsto.is_complete n)

(* ---------- porting-configuration toggles (differential) ----------

   Each documented analysis toggle may move classification only in its
   documented direction, observed through the check-insertion summary:
   removing an incompleteness source can only convert reduced checks
   into full checks, adding one can only do the reverse.  Every toggled
   build runs with [~poolcert:true], so the trusted pool-safety checker
   gates each configuration — a toggle that broke certificate emission
   would fail the build outright. *)

let toggle_summary config srcs =
  let b =
    Sva_pipeline.Pipeline.build ~conf:Sva_pipeline.Pipeline.Sva_safe
      ~aconfig:config ~poolcert:true ~name:"toggle" srcs
  in
  Option.get b.Sva_pipeline.Pipeline.bl_summary

let check_direction name (off : Sva_safety.Checkinsert.summary)
    (on : Sva_safety.Checkinsert.summary) =
  (* "on" is the configuration with fewer incompleteness sources *)
  Alcotest.(check bool)
    (name ^ ": reduced checks shrink")
    true
    (on.Sva_safety.Checkinsert.ls_reduced_incomplete
    <= off.Sva_safety.Checkinsert.ls_reduced_incomplete);
  Alcotest.(check bool)
    (name ^ ": full checks grow")
    true
    (on.Sva_safety.Checkinsert.ls_inserted
    >= off.Sva_safety.Checkinsert.ls_inserted);
  Alcotest.(check bool)
    (name ^ ": toggle actually moved classification")
    true
    (on.Sva_safety.Checkinsert.ls_reduced_incomplete
     < off.Sva_safety.Checkinsert.ls_reduced_incomplete
    || on.Sva_safety.Checkinsert.ls_inserted
       > off.Sva_safety.Checkinsert.ls_inserted)

let test_toggle_userspace_valid () =
  (* syscall-handler pointer arguments: an incompleteness source "as
     tested", a valid registered object in "entire kernel" mode *)
  let src =
    "extern void sva_register_syscall(long num, ...);\n\
     long sys_write(long fd, char *buf, long n) { return buf[0] + n; }\n\
     void init(void) { sva_register_syscall(4, sys_write); }"
  in
  let off = toggle_summary syscall_config [ src ] in
  let on =
    toggle_summary
      { syscall_config with Pointsto.userspace_valid = true }
      [ src ]
  in
  check_direction "userspace_valid" off on

let test_toggle_null_small_int_casts () =
  (* (T* )-22 error-encoding casts: manufactured (unknown) pointers when
     the heuristic is off, null when on *)
  let src =
    "struct s { long v; };\n\
     struct s g;\n\
     struct s *lookup(int c) { if (c) return &g; return (struct s*)-22; }\n\
     long use(int c) {\n\
    \  struct s *p = lookup(c);\n\
    \  if (p) return p->v;\n\
    \  return 0;\n\
     }"
  in
  let off =
    toggle_summary
      { Pointsto.default_config with Pointsto.null_small_int_casts = false }
      [ src ]
  in
  let on = toggle_summary Pointsto.default_config [ src ] in
  check_direction "null_small_int_casts" off on

let test_toggle_track_int_ptrs () =
  (* a pointer round-tripped through a pointer-sized integer stays in
     its partition when tracking is on; with tracking off the cast back
     manufactures an unknown pointer *)
  let src =
    "char gbuf[16];\n\
     long enc(void) { return (long)(char*)gbuf; }\n\
     int dec(void) { char *p = (char*)enc(); return p[3]; }"
  in
  let off =
    toggle_summary
      { Pointsto.default_config with Pointsto.track_int_ptrs = false }
      [ src ]
  in
  let on = toggle_summary Pointsto.default_config [ src ] in
  check_direction "track_int_ptrs" off on

(* ---------- allocators ---------- *)

let km_src =
  "extern char *kmalloc(long n);\n\
   long *mk8(void) { return (long*)kmalloc(8); }\n\
   long *mk8b(void) { return (long*)kmalloc(8); }\n\
   char *mk64(void) { return kmalloc(64); }"

let test_size_classes_group_sites () =
  let decl classes =
    [ Allocdecl.ordinary ~free:"kfree" ~size_arg:0 ~size_classes:classes "kmalloc" ]
  in
  (* no classes exposed: all three sites in one metapool group *)
  let m, pa =
    compile ~config:{ Pointsto.default_config with Pointsto.allocators = decl [] }
      [ km_src ]
  in
  let mps = Sva_safety.Metapool.infer m pa (decl []) in
  ignore mps;
  let nodes_of_sites pa =
    List.map
      (fun (al : Pointsto.alloc_site) -> Pointsto.node_id al.Pointsto.al_node)
      (Pointsto.alloc_sites pa)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "merged into one" 1 (List.length (nodes_of_sites pa));
  (* classes exposed: the 8-byte sites merge together, 64 stays apart *)
  let m2, pa2 =
    compile
      ~config:
        { Pointsto.default_config with Pointsto.allocators = decl [ 8; 64 ] }
      [ km_src ]
  in
  let _ = Sva_safety.Metapool.infer m2 pa2 (decl [ 8; 64 ]) in
  Alcotest.(check int) "two class groups" 2 (List.length (nodes_of_sites pa2))

let test_alloc_sites_recorded_once () =
  let decl = [ Allocdecl.ordinary ~size_arg:0 "kmalloc" ] in
  let _, pa =
    compile ~config:{ Pointsto.default_config with Pointsto.allocators = decl }
      [ km_src ]
  in
  Alcotest.(check int) "three sites" 3 (List.length (Pointsto.alloc_sites pa))

(* ---------- call graph ---------- *)

let cg_src =
  "int f1(int x) { return x + 1; }\n\
   int f2(int x) { return x + 2; }\n\
   int dispatch(int which, int v) {\n\
  \  int (*h)(int);\n\
  \  if (which) h = f1; else h = f2;\n\
  \  return h(v);\n\
   }\n\
   int top(void) { return dispatch(1, 10) + f1(1); }"

let test_callgraph () =
  let m, pa = compile [ cg_src ] in
  let cg = Callgraph.build m pa in
  Alcotest.(check (list string)) "direct callees of top" [ "dispatch"; "f1" ]
    (Callgraph.callees cg "top");
  Alcotest.(check (list string)) "indirect targets" [ "f1"; "f2" ]
    (List.sort compare (Callgraph.callees cg "dispatch"));
  Alcotest.(check (list string)) "callers of f2" [ "dispatch" ]
    (Callgraph.callers cg "f2");
  (match Callgraph.indirect_fanout cg with
  | [ (_, n) ] -> Alcotest.(check int) "fanout 2" 2 n
  | l -> Alcotest.failf "expected 1 indirect site, got %d" (List.length l));
  Alcotest.(check (list string)) "reachable" [ "dispatch"; "f1"; "f2"; "top" ]
    (Callgraph.reachable_from cg [ "top" ])

let test_callsig_assert_narrows () =
  (* with mixed signatures in one table, the assertion filters targets *)
  let src =
    "int f1(int x) { return x + 1; }\n\
     long g1(long a, long b) { return a + b; }\n\
     long table[2] = {0, 0};\n\
     void init(void) { table[0] = (long)f1; table[1] = (long)g1; }\n\
     __callsig_assert int call_int(int v) {\n\
    \  int (*h)(int) = (int (*)(int))table[0];\n\
    \  return h(v);\n\
     }\n\
     long call_long(long v) {\n\
    \  long (*h)(long, long) = (long (*)(long, long))table[1];\n\
    \  return h(v, v);\n\
     }"
  in
  let m, pa = compile [ src ] in
  let cg = Callgraph.build m pa in
  let fan fname =
    List.filter_map
      (fun (cs, n) ->
        if cs.Callgraph.cs_func = fname then Some n else None)
      (Callgraph.indirect_fanout cg)
  in
  (* without the assertion, both functions are candidate targets *)
  Alcotest.(check (list int)) "unannotated sees both" [ 2 ] (fan "call_long");
  (* the annotated site is narrowed to signature-compatible targets *)
  Alcotest.(check (list int)) "asserted narrowed" [ 1 ] (fan "call_int")


(* ---------- value-range interval analysis ---------- *)

module Interval = Sva_analysis.Interval

let iv = Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Interval.ival_to_string v))
    Interval.equal_ival

let test_interval_selftest () =
  let n = Interval.selftest () in
  Alcotest.(check bool) "ran checks" true (n > 100_000)

let test_interval_guard_ranges () =
  (* the loop guard bounds the induction variable; certificates prove
     the variable-index gep in-extent *)
  let m, pa =
    compile
      [
        "long vec[64];\n\
         void fill(void) { int i; for (i = 0; i < 64; i = i + 1) vec[i] = i; }";
      ]
  in
  let res = Interval.run m pa in
  let f = Option.get (Sva_ir.Irmod.find_func m "fill") in
  let certified = ref 0 in
  Sva_ir.Func.iter_instrs f (fun _ i ->
      match i.Sva_ir.Instr.kind with
      | Sva_ir.Instr.Gep (_, _) when Interval.certifiable res ~fname:"fill" i ->
          incr certified
      | _ -> ());
  Alcotest.(check bool) "some gep certified" true (!certified > 0)

let test_interval_summaries () =
  (* with a closed module (no entries), argument ranges flow into the
     callee's parameter summary and the return range flows back *)
  let m, pa =
    compile
      [
        "long n_global;\n\
         static long clampf(long x) { if (x > 7) return 7; return x; }\n\
         long driver(void) { n_global = clampf(3) + clampf(5); return n_global; }";
      ]
  in
  let res = Interval.run ~entries:(fun f -> f = "driver") m pa in
  (match Interval.func_summary res "clampf" with
  | Some (params, ret) ->
      Alcotest.check iv "arg range" (Interval.range 3L 5L) params.(0);
      Alcotest.check iv "ret range" (Interval.range 3L 7L) ret
  | None -> Alcotest.fail "no summary for clampf");
  (* as an entry, the same callee's i64 param must stay unbounded *)
  let res2 = Interval.run m pa in
  match Interval.func_summary res2 "clampf" with
  | Some (params, _) ->
      Alcotest.(check bool) "entry param top" true (Interval.is_top params.(0))
  | None -> Alcotest.fail "no summary for clampf"

let test_interval_certificates_validate () =
  (* every emitted certificate index fact proves the in-extent range *)
  let m, pa =
    compile
      [
        "long buf[16];\n\
         long rd(int i) { if (i >= 0) { if (i < 16) return buf[i]; } return 0; }";
      ]
  in
  let res = Interval.run m pa in
  let f = Option.get (Sva_ir.Irmod.find_func m "rd") in
  let seen = ref false in
  Sva_ir.Func.iter_instrs f (fun _ i ->
      if Interval.certifiable res ~fname:"rd" i then begin
        seen := true;
        Alcotest.(check bool) "elide materializes" true
          (Interval.elide res ~fname:"rd" i Interval.Cbounds)
      end);
  Alcotest.(check bool) "guarded gep certified" true !seen;
  let b = Interval.bundle res in
  Alcotest.(check bool) "cert emitted" true (List.length b.Interval.cb_certs = 1)

(* ---------- concurrency-safety pass: lattice laws + detector ---------- *)

module Lockset = Sva_analysis.Lockset
module Pipeline = Sva_pipeline.Pipeline
module Kbuild = Ukern.Kbuild

let prot_gen =
  QCheck2.Gen.(
    map2
      (fun m ls ->
        { Lockset.p_masked = m; Lockset.p_locks = Lockset.SS.of_list ls })
      bool
      (list_size (int_range 0 4) (oneofl [ "a"; "b"; "c"; "d" ])))

let prop_join_comm =
  QCheck2.Test.make ~name:"prot_join commutes" ~count:200
    QCheck2.Gen.(pair prot_gen prot_gen)
    (fun (a, b) ->
      Lockset.prot_equal (Lockset.prot_join a b) (Lockset.prot_join b a))

let prop_join_idem =
  QCheck2.Test.make ~name:"prot_join idempotent" ~count:200 prot_gen
    (fun a -> Lockset.prot_equal (Lockset.prot_join a a) a)

let prop_join_assoc =
  QCheck2.Test.make ~name:"prot_join associates" ~count:200
    QCheck2.Gen.(triple prot_gen prot_gen prot_gen)
    (fun (a, b, c) ->
      Lockset.prot_equal
        (Lockset.prot_join a (Lockset.prot_join b c))
        (Lockset.prot_join (Lockset.prot_join a b) c))

let prop_join_lower_bound =
  QCheck2.Test.make ~name:"prot_join is a lower bound" ~count:200
    QCheck2.Gen.(pair prot_gen prot_gen)
    (fun (a, b) ->
      let j = Lockset.prot_join a b in
      Lockset.prot_leq j a && Lockset.prot_leq j b)

let prop_leq_antisym =
  QCheck2.Test.make ~name:"prot_leq antisymmetric" ~count:200
    QCheck2.Gen.(pair prot_gen prot_gen)
    (fun (a, b) ->
      (not (Lockset.prot_leq a b && Lockset.prot_leq b a))
      || Lockset.prot_equal a b)

let prop_leq_monotone =
  QCheck2.Test.make ~name:"prot_join monotone w.r.t. prot_leq" ~count:200
    QCheck2.Gen.(triple prot_gen prot_gen prot_gen)
    (fun (a, b, c) ->
      (not (Lockset.prot_leq a b))
      || Lockset.prot_leq (Lockset.prot_join a c) (Lockset.prot_join b c))

let prop_fact_unreached_identity =
  QCheck2.Test.make ~name:"Unreached is the fact_join identity" ~count:200
    prot_gen
    (fun a ->
      Lockset.fact_equal
        (Lockset.fact_join Lockset.Unreached (Lockset.Known a))
        (Lockset.Known a)
      && Lockset.fact_equal
           (Lockset.fact_join (Lockset.Known a) Lockset.Unreached)
           (Lockset.Known a))

(* A two-sided module: an interrupt handler and a syscall both touch
   [counter].  With the cli/sti window the access pair is atomic; with
   the window removed the detector must report the race. *)
let race_module ~guarded =
  let guard_on = if guarded then "sva_cli();" else ""
  and guard_off = if guarded then "sva_sti();" else "" in
  Printf.sprintf
    "extern void sva_cli(void);\n\
     extern void sva_sti(void);\n\
     extern void sva_register_syscall(long num, void *fn);\n\
     extern void sva_register_interrupt(long vec, void *fn);\n\
     long counter = 0;\n\
     long tick(long icp, long vec, long a2, long a3) {\n\
    \  counter = counter + 1;\n\
    \  return 0;\n\
     }\n\
     long sys_get(long a0, long a1, long a2, long a3) {\n\
    \  %s\n\
    \  long v = counter;\n\
    \  counter = 0;\n\
    \  %s\n\
    \  return v;\n\
     }\n\
     void init(void) {\n\
    \  sva_register_syscall(1, sys_get);\n\
    \  sva_register_interrupt(0, tick);\n\
     }\n"
    guard_on guard_off

let run_lockset srcs =
  let m, pa = compile srcs in
  (m, Lockset.run m pa)

let test_lockset_masked_window_clean () =
  let _, r = run_lockset [ race_module ~guarded:true ] in
  Alcotest.(check int) "no findings" 0 (List.length (Lockset.findings r));
  Alcotest.(check bool) "counter is shared" true (Lockset.shared_count r > 0);
  Alcotest.(check bool) "accesses certified" true (Lockset.cert_count r > 0)

let test_lockset_unmasked_window_races () =
  let _, r = run_lockset [ race_module ~guarded:false ] in
  Alcotest.(check bool) "race reported" true
    (Lockset.count_findings r "race" > 0);
  Alcotest.(check bool) "race is in sys_get or tick" true
    (List.for_all
       (fun (f : Lockset.finding) ->
         f.Lockset.lf_func = "sys_get" || f.Lockset.lf_func = "tick")
       (Lockset.findings r))

let test_lockset_deterministic () =
  let _, r1 = run_lockset [ race_module ~guarded:false ] in
  let _, r2 = run_lockset [ race_module ~guarded:false ] in
  Alcotest.(check bool) "findings stable across runs" true
    (List.map Lockset.render_finding (Lockset.findings r1)
    = List.map Lockset.render_finding (Lockset.findings r2))

(* The shipped kernel is the zero-false-positive regression: every
   checker must stay silent, while the analysis still classifies shared
   state and certifies accesses (silence must not mean blindness). *)
let test_kernel_audits_clean () =
  let v = Kbuild.as_tested in
  let m = Pipeline.compile ~name:"ukern-conc-test" (Kbuild.sources v) in
  let pa = Pointsto.run ~config:(Kbuild.aconfig v) m in
  let r = Lockset.run m pa in
  List.iter
    (fun c ->
      Alcotest.(check int) ("clean kernel: " ^ c) 0 (Lockset.count_findings r c))
    [ "race"; "deadlock"; "cli-imbalance"; "lock-imbalance"; "atomic-sleep" ];
  Alcotest.(check bool) "shared classes found" true (Lockset.shared_count r > 0);
  Alcotest.(check bool) "accesses certified" true (Lockset.cert_count r > 0);
  Alcotest.(check bool) "entry protections known" true
    (Lockset.entry_config r "kernel_syscall_entry" <> None)

let () =
  Alcotest.run "sva_analysis"
    [
      ( "unification",
        [
          Alcotest.test_case "assignment unifies" `Quick test_assignment_unifies;
          Alcotest.test_case "distinct stay distinct" `Quick
            test_distinct_objects_stay_distinct;
          Alcotest.test_case "store creates edge" `Quick test_store_creates_edge;
        ] );
      ( "type-homogeneity",
        [
          Alcotest.test_case "inference" `Quick test_th_inference;
          Alcotest.test_case "casts collapse" `Quick test_conflicting_casts_collapse;
        ] );
      ( "kernel-heuristics",
        [
          Alcotest.test_case "error casts are null" `Quick
            test_error_cast_treated_as_null;
          Alcotest.test_case "manufactured address" `Quick
            test_manufactured_address_is_unknown;
          Alcotest.test_case "pseudo_alloc analyzable" `Quick
            test_pseudo_alloc_not_unknown;
          Alcotest.test_case "syscall registration" `Quick
            test_syscall_registration_and_internal_calls;
          Alcotest.test_case "userspace params" `Quick
            test_syscall_pointer_params_marked_userspace;
          Alcotest.test_case "user-copy heuristic" `Quick
            test_user_copy_heuristic_no_merge;
        ] );
      ( "config-toggles",
        [
          Alcotest.test_case "userspace_valid differential" `Quick
            test_toggle_userspace_valid;
          Alcotest.test_case "null_small_int_casts differential" `Quick
            test_toggle_null_small_int_casts;
          Alcotest.test_case "track_int_ptrs differential" `Quick
            test_toggle_track_int_ptrs;
        ] );
      ( "allocators",
        [
          Alcotest.test_case "size classes" `Quick test_size_classes_group_sites;
          Alcotest.test_case "sites recorded" `Quick test_alloc_sites_recorded_once;
        ] );
      ( "interval",
        [
          Alcotest.test_case "kernel selftest" `Quick test_interval_selftest;
          Alcotest.test_case "guard ranges certify" `Quick
            test_interval_guard_ranges;
          Alcotest.test_case "interprocedural summaries" `Quick
            test_interval_summaries;
          Alcotest.test_case "certificates validate" `Quick
            test_interval_certificates_validate;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "construction" `Quick test_callgraph;
          Alcotest.test_case "callsig assert narrows" `Quick
            test_callsig_assert_narrows;
        ] );
      ( "lockset-lattice",
        [
          QCheck_alcotest.to_alcotest prop_join_comm;
          QCheck_alcotest.to_alcotest prop_join_idem;
          QCheck_alcotest.to_alcotest prop_join_assoc;
          QCheck_alcotest.to_alcotest prop_join_lower_bound;
          QCheck_alcotest.to_alcotest prop_leq_antisym;
          QCheck_alcotest.to_alcotest prop_leq_monotone;
          QCheck_alcotest.to_alcotest prop_fact_unreached_identity;
        ] );
      ( "lockset",
        [
          Alcotest.test_case "masked window is atomic" `Quick
            test_lockset_masked_window_clean;
          Alcotest.test_case "unmasked window races" `Quick
            test_lockset_unmasked_window_races;
          Alcotest.test_case "deterministic" `Quick test_lockset_deterministic;
          Alcotest.test_case "kernel audits clean" `Quick
            test_kernel_audits_clean;
        ] );
    ]
