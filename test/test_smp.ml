(* The simulated-SMP layer must be deterministic and semantically
   invisible: a 1-CPU run_smp schedule is bit-identical to calling the
   jobs in sequence, aggregate check counts are schedule-invariant, the
   per-CPU cache shards cohere with an uncached oracle under interleaved
   register/drop from different CPUs, the same seed reproduces the same
   schedule, and the per-CPU machine state (interrupt flags, IPI queues,
   icontext stacks, trap scratch, stats banks, lock ownership) is
   actually private to each modeled CPU. *)

module Machine = Sva_hw.Machine
module Svaos = Sva_os.Svaos
module Smp = Sva_rt.Smp
module Stats = Sva_rt.Stats
module Metapool_rt = Sva_rt.Metapool_rt
module Boot = Ukern.Boot
module Kbuild = Ukern.Kbuild
module Pipeline = Sva_pipeline.Pipeline
module Workloads = Harness.Workloads

(* One checked kernel image, compiled once and booted per measurement so
   every boot starts from identical deterministic state. *)
let image = lazy (Kbuild.build ~conf:Pipeline.Sva_safe Kbuild.as_tested)

let boot_smp ~cpus =
  let t =
    Boot.boot_built
      ~smp:{ Pipeline.smp_cpus = cpus; Pipeline.smp_seed = 1 }
      (Lazy.force image) ~variant:Kbuild.as_tested
  in
  let ctx = Workloads.prepare t in
  (t, ctx)

(* ---------- 1-CPU differential: run_smp ≡ sequential ---------- *)

let ops_table =
  [|
    Workloads.op_getpid;
    Workloads.op_getrusage;
    Workloads.op_gettimeofday;
    Workloads.op_sbrk;
    Workloads.op_sigaction;
    Workloads.op_write;
    Workloads.op_pipe_latency;
  |]

(* Two kernels booted identically; every generated case applies the same
   op sequence to both (one through the scheduler, one by direct calls),
   so their states stay in lockstep across cases and each comparison is
   a genuine differential. *)
let prop_single_cpu_bit_identical =
  let pair = lazy (boot_smp ~cpus:1, boot_smp ~cpus:1) in
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 12) (int_range 0 (Array.length ops_table - 1)))
  in
  QCheck2.Test.make
    ~name:"run_smp at 1 cpu is bit-identical to the sequential calls"
    ~count:40 gen
    (fun ops ->
      let (ts, cs), (tq, cq) = Lazy.force pair in
      let jobs = List.map (fun i () -> ops_table.(i) cs) ops in
      Stats.reset ();
      Boot.reset_cycles ts;
      let st = Boot.run_smp ts ~cpus:1 ~seed:1 jobs in
      let snap_smp = Stats.read () in
      Stats.reset ();
      Boot.reset_cycles tq;
      List.iter (fun i -> ops_table.(i) cq) ops;
      let snap_seq = Stats.read () in
      st.Boot.ss_makespan = Boot.cycles tq
      && st.Boot.ss_total = Boot.cycles tq
      && snap_smp = snap_seq
      && st.Boot.ss_steals = 0
      && st.Boot.ss_ipis_sent = 0)

(* ---------- shard coherence oracle across CPUs ---------- *)

(* A 4-CPU pool (one cache shard per CPU) and an uncached twin receive
   the same interleaved register/drop/lookup sequence, with each op
   issued from a generated CPU.  Every lookup must agree: a stale shard
   surviving another CPU's drop (the hazard the ownership/epoch protocol
   exists for) shows up as a divergence. *)
let prop_shards_cohere_across_cpus =
  let op_gen =
    QCheck2.Gen.(
      let cpu = int_range 0 3 in
      let start = map (fun s -> s * 16) (int_range 0 48) in
      let len = int_range 1 32 in
      frequency
        [
          (3, map3 (fun c s l -> (c, `Reg (s, l))) cpu start len);
          (2, map2 (fun c s -> (c, `Drop s)) cpu start);
          (4, map2 (fun c a -> (c, `Find a)) cpu (int_range 0 800));
        ])
  in
  let gen = QCheck2.Gen.(list_size (int_range 0 150) op_gen) in
  QCheck2.Test.make
    ~name:"per-cpu cache shards cohere with an uncached oracle" ~count:200
    gen
    (fun ops ->
      let smp = Smp.create ~ncpus:4 () in
      let cached = Metapool_rt.create ~smp "MPSMP"
      and oracle = Metapool_rt.create ~cached:false "MPORACLE" in
      let r =
        List.for_all
          (fun (cpu, op) ->
            Smp.set_cur smp cpu;
            match op with
            | `Reg (s, l) ->
                let a =
                  match
                    Metapool_rt.register cached ~cls:Metapool_rt.Heap
                      ~start:s ~len:l
                  with
                  | () -> true
                  | exception _ -> false
                and b =
                  match
                    Metapool_rt.register oracle ~cls:Metapool_rt.Heap
                      ~start:s ~len:l
                  with
                  | () -> true
                  | exception _ -> false
                in
                a = b
            | `Drop s ->
                Metapool_rt.drop_if_present cached ~start:s
                = Metapool_rt.drop_if_present oracle ~start:s
            | `Find a ->
                Metapool_rt.getbounds cached a
                = Metapool_rt.getbounds oracle a)
          ops
      in
      Smp.set_cur smp 0;
      r)

(* ---------- same-seed determinism and scaling ---------- *)

let measure ~cpus ~seed =
  let t, ctx = boot_smp ~cpus:4 in
  List.iter (fun j -> j ()) (Workloads.smp_jobs ctx 1);
  Stats.reset ();
  Boot.reset_cycles t;
  let st = Boot.run_smp t ~cpus ~seed (Workloads.smp_jobs ctx 16) in
  (st, Stats.total_checks (Stats.read ()))

let test_same_seed_reproduces () =
  let a = measure ~cpus:4 ~seed:5 and b = measure ~cpus:4 ~seed:5 in
  Alcotest.(check bool)
    "same seed, fresh boot: identical schedule, clocks and checks" true
    (a = b)

let test_scaling_and_check_identity () =
  let st1, checks1 = measure ~cpus:1 ~seed:1 in
  let st4, checks4 = measure ~cpus:4 ~seed:1 in
  Alcotest.(check int) "aggregate checks are schedule-invariant" checks1
    checks4;
  Alcotest.(check bool) "4-cpu makespan below 1-cpu" true
    (st4.Boot.ss_makespan < st1.Boot.ss_makespan);
  let speedup =
    float_of_int st1.Boot.ss_makespan /. float_of_int st4.Boot.ss_makespan
  in
  if speedup < 3.0 then
    Alcotest.failf "4-cpu speedup %.2fx below the 3x floor" speedup;
  Alcotest.(check int) "total modeled work conserved at 1 cpu"
    st1.Boot.ss_makespan st1.Boot.ss_total

(* Skewed job costs force the stealing path: round-robin puts every
   heavy job on CPU 0's queue, so CPUs 1-3 drain their light jobs,
   steal from it, and reschedule-IPI the victim. *)
let test_work_stealing_fires () =
  let t, ctx = boot_smp ~cpus:4 in
  let heavy () =
    for _ = 1 to 8 do
      Workloads.op_write ctx
    done
  and light () = Workloads.op_getpid ctx in
  let jobs = List.init 24 (fun i -> if i mod 4 = 0 then heavy else light) in
  Stats.reset ();
  let st = Boot.run_smp t ~cpus:4 ~seed:3 jobs in
  Alcotest.(check int) "every job ran exactly once" 24
    (Array.fold_left ( + ) 0 st.Boot.ss_jobs_per);
  Alcotest.(check bool) "work stealing fired" true (st.Boot.ss_steals > 0);
  Alcotest.(check bool) "every reschedule IPI was delivered" true
    (st.Boot.ss_ipis_sent > 0
    && st.Boot.ss_ipis_delivered = st.Boot.ss_ipis_sent)

(* ---------- IPI queues and interrupt gating ---------- *)

let test_ipi_queue_fifo_per_cpu () =
  let sys = Svaos.create ~ncpus:2 () in
  Stats.reset_conc ();
  Alcotest.(check bool) "cpu0 starts with no pending IPI" false
    (Svaos.ipi_pending sys);
  Svaos.ipi_send sys ~cpu:1 ~vector:240;
  Svaos.ipi_send sys ~cpu:1 ~vector:241;
  Alcotest.(check bool) "IPIs for cpu1 are not pending on cpu0" false
    (Svaos.ipi_pending sys);
  Svaos.switch_cpu sys 1;
  Alcotest.(check bool) "pending on cpu1" true (Svaos.ipi_pending sys);
  Alcotest.(check (option int)) "FIFO: first vector first" (Some 240)
    (Svaos.take_ipi sys);
  Alcotest.(check (option int)) "then the second" (Some 241)
    (Svaos.take_ipi sys);
  Alcotest.(check (option int)) "then empty" None (Svaos.take_ipi sys);
  let c = Stats.read_conc () in
  Alcotest.(check int) "ipis sent counted" 2 c.Stats.ipis_sent;
  Alcotest.(check int) "ipis delivered counted" 2 c.Stats.ipis_delivered;
  (try
     Svaos.ipi_send sys ~cpu:7 ~vector:240;
     Alcotest.fail "ipi_send to a nonexistent CPU must fail"
   with Failure _ -> ());
  Svaos.switch_cpu sys 0

let test_interrupt_flag_is_per_cpu () =
  let sys = Svaos.create ~ncpus:2 () in
  Svaos.cli sys;
  Alcotest.(check bool) "cpu0 masked" false (Svaos.interrupts_enabled sys);
  Svaos.switch_cpu sys 1;
  Alcotest.(check bool) "cpu1 unaffected by cpu0's cli" true
    (Svaos.interrupts_enabled sys);
  Svaos.switch_cpu sys 0;
  Alcotest.(check bool) "cpu0 still masked after the round trip" false
    (Svaos.interrupts_enabled sys);
  Svaos.sti sys;
  Alcotest.(check bool) "sti unmasks cpu0" true
    (Svaos.interrupts_enabled sys)

(* ---------- lock ownership across CPUs ---------- *)

let test_lock_holder_cpu () =
  let sys = Svaos.create ~ncpus:2 () in
  Svaos.lock_acquire sys ~lock:0x100;
  Alcotest.check_raises "same-CPU reacquire keeps the original message"
    (Failure "SVA-OS: deadlock: lock already held") (fun () ->
      Svaos.lock_acquire sys ~lock:0x100);
  Svaos.switch_cpu sys 1;
  Alcotest.check_raises "cross-CPU acquire names the holder"
    (Failure "SVA-OS: deadlock: spinning on a lock held by CPU 0")
    (fun () -> Svaos.lock_acquire sys ~lock:0x100);
  Alcotest.check_raises "cross-CPU release names the holder"
    (Failure "SVA-OS: releasing a lock held by CPU 0") (fun () ->
      Svaos.lock_release sys ~lock:0x100);
  Svaos.switch_cpu sys 0;
  Svaos.lock_release sys ~lock:0x100;
  Alcotest.(check bool) "released" false (Svaos.lock_held sys ~lock:0x100)

(* ---------- per-CPU trap scratch and icontext stacks ---------- *)

let test_percpu_trap_scratch () =
  let bases =
    List.init Machine.max_cpus (fun cpu -> Machine.percpu_trap_base ~cpu)
  in
  let distinct = List.sort_uniq compare bases in
  Alcotest.(check int) "one private area per CPU" Machine.max_cpus
    (List.length distinct);
  Alcotest.(check int) "cpu0 is the pre-SMP scratch address"
    (Machine.stack_base + Machine.stack_size - 4096)
    (Machine.percpu_trap_base ~cpu:0);
  List.iteri
    (fun i b ->
      if i > 0 then
        Alcotest.(check int) "areas are percpu_trap_size apart"
          Machine.percpu_trap_size
          (List.nth bases (i - 1) - b))
    bases;
  (try
     ignore (Machine.percpu_trap_base ~cpu:Machine.max_cpus);
     Alcotest.fail "out-of-range CPU must be rejected"
   with Invalid_argument _ -> ())

let test_icontext_stack_is_per_cpu () =
  let sys = Svaos.create ~ncpus:2 () in
  let icp0 =
    Svaos.icontext_create sys
      ~sp:(Machine.percpu_trap_base ~cpu:0)
      ~was_privileged:false
  in
  Alcotest.(check int) "cpu0 depth 1" 1 (Svaos.icontext_depth sys);
  Svaos.switch_cpu sys 1;
  Alcotest.(check int) "cpu1 sees its own empty stack" 0
    (Svaos.icontext_depth sys);
  let icp1 =
    Svaos.icontext_create sys
      ~sp:(Machine.percpu_trap_base ~cpu:1)
      ~was_privileged:true
  in
  Alcotest.(check int) "cpu1 depth 1" 1 (Svaos.icontext_depth sys);
  Svaos.icontext_destroy sys ~icp:icp1;
  Svaos.switch_cpu sys 0;
  Alcotest.(check int) "cpu0's context survived cpu1's trap" 1
    (Svaos.icontext_depth sys);
  Svaos.icontext_destroy sys ~icp:icp0;
  Alcotest.(check int) "balanced" 0 (Svaos.icontext_depth sys)

(* ---------- per-CPU stats banks ---------- *)

let test_stats_banks_sum () =
  Stats.reset ();
  Stats.set_cpu 0;
  Stats.bump_bounds ();
  Stats.set_cpu 2;
  Stats.bump_bounds ();
  Stats.bump_ls ();
  Alcotest.(check int) "bumps land in the selected bank" 1
    (Stats.read_cpu 2).Stats.ls_checks;
  Alcotest.(check int) "other banks unaffected" 0
    (Stats.read_cpu 0).Stats.ls_checks;
  Alcotest.(check int) "read sums all banks" 2 (Stats.read ()).Stats.bounds_checks;
  Alcotest.(check int) "never-selected bank reads zero" 0
    (Stats.read_cpu 7).Stats.bounds_checks;
  Stats.set_cpu 0;
  Stats.reset ();
  Alcotest.(check int) "reset clears every bank" 0
    (Stats.read ()).Stats.bounds_checks

let () =
  Alcotest.run "sva-smp"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_single_cpu_bit_identical;
          QCheck_alcotest.to_alcotest prop_shards_cohere_across_cpus;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed reproduces the schedule" `Quick
            test_same_seed_reproduces;
          Alcotest.test_case "scaling with check-count identity" `Quick
            test_scaling_and_check_identity;
          Alcotest.test_case "skewed loads force stealing + IPIs" `Quick
            test_work_stealing_fires;
        ] );
      ( "percpu-state",
        [
          Alcotest.test_case "IPI queues are per-CPU FIFOs" `Quick
            test_ipi_queue_fifo_per_cpu;
          Alcotest.test_case "interrupt flag is per-CPU" `Quick
            test_interrupt_flag_is_per_cpu;
          Alcotest.test_case "lock ownership records the CPU" `Quick
            test_lock_holder_cpu;
          Alcotest.test_case "trap scratch areas are private" `Quick
            test_percpu_trap_scratch;
          Alcotest.test_case "icontext stacks are per-CPU" `Quick
            test_icontext_stack_is_per_cpu;
          Alcotest.test_case "stats banks sum to the totals" `Quick
            test_stats_banks_sum;
        ] );
    ]
