(* Tests for the bytecode layer: SHA-256 vectors, codec roundtrips
   (including QCheck-generated modules), and the signed translation
   cache. *)

open Sva_bytecode

(* ---------- SHA-256 (FIPS 180-4 vectors) ---------- *)

let test_sha_vectors () =
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  Alcotest.(check string) "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_sha_block_boundaries () =
  (* Lengths around the 55/56/64 padding boundaries. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      Alcotest.(check int) "digest length" 32 (String.length (Sha256.digest s));
      Alcotest.(check bool) "deterministic" true
        (String.equal (Sha256.digest s) (Sha256.digest (String.make n 'x'))))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 127; 128; 129 ]

let test_hmac () =
  (* RFC 4231 test case 2. *)
  Alcotest.(check string) "rfc4231 tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.hmac_hex ~key:"Jefe" "what do ya want for nothing?")

(* ---------- codec roundtrip ---------- *)

let sample_module () =
  let src =
    "struct pair { int a; long b; };\n\
     int g_table[4] = {9, 8, 7, 6};\n\
     char g_msg[6] = \"hello\";\n\
     extern char *kmalloc(long n);\n\
     int pick(int i) { return g_table[i]; }\n\
     long combine(struct pair *p) { return p->a + p->b; }\n\
     int maxi(int a, int b) { return a > b ? a : b; }\n\
     int looped(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
  in
  Minic.Lower.compile_string ~name:"sample" src

let test_roundtrip_simple () =
  let m = sample_module () in
  Alcotest.(check bool) "roundtrip" true (Codec.roundtrip_equal m)

let test_roundtrip_optimized () =
  let m = sample_module () in
  Sva_ir.Passes.run Sva_ir.Passes.Llvm_like m;
  Alcotest.(check bool) "roundtrip after passes" true (Codec.roundtrip_equal m)

let test_decoded_module_verifies_and_runs () =
  let m = sample_module () in
  Sva_ir.Passes.run Sva_ir.Passes.Llvm_like m;
  let m' = Codec.decode (Codec.encode m) in
  Sva_ir.Verify.check m';
  let t = Sva_interp.Interp.load m' in
  Alcotest.(check (option int64)) "looped(10)" (Some 45L)
    (Sva_interp.Interp.call t "looped" [ 10L ]);
  Alcotest.(check (option int64)) "pick(2)" (Some 7L)
    (Sva_interp.Interp.call t "pick" [ 2L ])

let test_decode_garbage_rejected () =
  List.iter
    (fun s ->
      match Codec.decode s with
      | _ -> Alcotest.fail "garbage accepted"
      | exception Codec.Decode_error _ -> ())
    [ ""; "garbage"; "SVABC01\nxx"; String.make 100 '\255' ]

let test_decode_truncated_rejected () =
  let full = Codec.encode (sample_module ()) in
  List.iter
    (fun frac ->
      let cut = String.sub full 0 (String.length full * frac / 10) in
      match Codec.decode cut with
      | _ -> Alcotest.fail "truncated bytecode accepted"
      | exception Codec.Decode_error _ -> ())
    [ 3; 5; 7; 9 ]

(* ---------- signed cache ---------- *)

let test_sign_verify () =
  let m = sample_module () in
  let e = Signing.sign m in
  let m' = Signing.verify e in
  Alcotest.(check string) "same name" m.Sva_ir.Irmod.m_name m'.Sva_ir.Irmod.m_name;
  Alcotest.(check bool) "same bytecode" true
    (String.equal (Codec.encode m) (Codec.encode m'))

let test_tampered_bytecode_rejected () =
  let e = Signing.sign (sample_module ()) in
  match Signing.verify (Signing.tamper_bytecode e) with
  | _ -> Alcotest.fail "tampered bytecode accepted"
  | exception Signing.Tampered _ -> ()

let test_tampered_native_rejected () =
  let e = Signing.sign (sample_module ()) in
  match Signing.verify (Signing.tamper_native e) with
  | _ -> Alcotest.fail "tampered native artifact accepted"
  | exception Signing.Tampered _ -> ()

let test_wrong_key_rejected () =
  let e = Signing.sign (sample_module ()) in
  let saved = !Signing.svm_key in
  Signing.svm_key := "some other machine's key";
  let result =
    match Signing.verify e with
    | _ -> `Accepted
    | exception Signing.Tampered _ -> `Rejected
  in
  Signing.svm_key := saved;
  Alcotest.(check bool) "foreign signature rejected" true (result = `Rejected)

let test_whole_kernel_roundtrips () =
  (* the fully instrumented kernel module is the largest real artifact:
     encode, sign, verify, decode, re-verify, and check it still boots *)
  let built =
    Ukern.Kbuild.build ~conf:Sva_pipeline.Pipeline.Sva_safe
      Ukern.Kbuild.as_tested
  in
  let m = built.Sva_pipeline.Pipeline.bl_mod in
  Alcotest.(check bool) "roundtrip" true (Codec.roundtrip_equal m);
  let entry = Signing.sign m in
  let m' = Signing.verify entry in
  Sva_ir.Verify.check m';
  Alcotest.(check int) "same function count"
    (List.length m.Sva_ir.Irmod.m_funcs)
    (List.length m'.Sva_ir.Irmod.m_funcs);
  Alcotest.(check bool) "bytecode is substantial" true
    (String.length entry.Signing.ce_bytecode > 50_000)

(* ---------- property: roundtrip over random IR ---------- *)

let random_ty rng =
  match Random.State.int rng 5 with
  | 0 -> Sva_ir.Ty.i8
  | 1 -> Sva_ir.Ty.i16
  | 2 -> Sva_ir.Ty.i32
  | 3 -> Sva_ir.Ty.i64
  | _ -> Sva_ir.Ty.Ptr Sva_ir.Ty.i32

let random_module seed =
  let rng = Random.State.make [| seed |] in
  let m = Sva_ir.Irmod.create (Printf.sprintf "rand%d" seed) in
  let nfuncs = 1 + Random.State.int rng 3 in
  for fi = 0 to nfuncs - 1 do
    let f =
      Sva_ir.Func.create
        (Printf.sprintf "f%d" fi)
        Sva_ir.Ty.i32
        [ ("a", Sva_ir.Ty.i32); ("b", Sva_ir.Ty.i32) ]
    in
    Sva_ir.Irmod.add_func m f;
    let b = Sva_ir.Builder.create m f in
    ignore (Sva_ir.Builder.start_block b "entry");
    let x = ref (Sva_ir.Func.param_value f 0) in
    for _ = 0 to Random.State.int rng 6 do
      let op =
        match Random.State.int rng 4 with
        | 0 -> Sva_ir.Instr.Add
        | 1 -> Sva_ir.Instr.Sub
        | 2 -> Sva_ir.Instr.Mul
        | _ -> Sva_ir.Instr.Xor
      in
      x :=
        Sva_ir.Builder.b_binop b op !x
          (Sva_ir.Value.imm (Random.State.int rng 100));
      (* Sprinkle in an alloca of a random type to vary the encoding. *)
      if Random.State.int rng 3 = 0 then
        ignore (Sva_ir.Builder.b_alloca b (random_ty rng))
    done;
    Sva_ir.Builder.b_ret b (Some !x)
  done;
  m

let prop_roundtrip =
  QCheck2.Test.make ~name:"codec roundtrips random modules" ~count:100
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed -> Codec.roundtrip_equal (random_module seed))

(* ---------- per-function encoding + signed translation-cache entries ---------- *)

let sample_func name =
  let m = sample_module () in
  match Sva_ir.Irmod.find_func m name with
  | Some f -> f
  | None -> Alcotest.failf "sample module has no %s" name

let test_func_roundtrip () =
  List.iter
    (fun name ->
      let f = sample_func name in
      Alcotest.(check bool)
        (Printf.sprintf "%s roundtrips" name)
        true
        (Codec.func_roundtrip_equal f);
      let bytes = Codec.encode_func f in
      let f' = Codec.decode_func bytes in
      Alcotest.(check string) "name preserved" f.Sva_ir.Func.f_name
        f'.Sva_ir.Func.f_name;
      Alcotest.(check string) "re-encoding is stable" bytes
        (Codec.encode_func f'))
    [ "pick"; "combine"; "maxi"; "looped" ]

let test_func_decode_garbage_rejected () =
  List.iter
    (fun s ->
      match Codec.decode_func s with
      | _ -> Alcotest.fail "garbage function bytecode accepted"
      | exception _ -> ())
    [ ""; "x"; String.make 64 '\255' ]

let fentry_fixture () =
  let f = sample_func "looped" in
  let bytecode = Codec.encode_func f in
  let native = Sha256.hex ("native:" ^ bytecode) in
  (Signing.sign_function ~name:"looped" ~bytecode ~native, bytecode, native)

let test_fentry_sign_verify () =
  let fe, bytecode, native = fentry_fixture () in
  Signing.verify_function fe ~bytecode ~native;
  Alcotest.(check string) "hash is of the bytecode" (Sha256.hex bytecode)
    fe.Signing.fe_hash

let expect_tampered what f =
  match f () with
  | () -> Alcotest.failf "%s accepted" what
  | exception Signing.Tampered _ -> ()

let test_fentry_tampered_rejected () =
  let fe, bytecode, native = fentry_fixture () in
  expect_tampered "tampered signature" (fun () ->
      Signing.verify_function
        (Signing.tamper_fentry_signature fe)
        ~bytecode ~native);
  expect_tampered "tampered cached bytecode" (fun () ->
      Signing.verify_function
        (Signing.tamper_fentry_bytecode fe)
        ~bytecode ~native);
  expect_tampered "tampered native artifact" (fun () ->
      Signing.verify_function (Signing.tamper_fentry_native fe) ~bytecode ~native);
  (* entry is genuine but no longer matches what the VM is about to run *)
  expect_tampered "stale bytecode" (fun () ->
      Signing.verify_function fe ~bytecode:(bytecode ^ "\000") ~native);
  expect_tampered "stale native artifact" (fun () ->
      Signing.verify_function fe ~bytecode ~native:(native ^ "x"))

(* on-disk serialization: structural codec for the persistent store *)
let test_fentry_codec_roundtrip () =
  let fe, _, _ = fentry_fixture () in
  let fe' = Signing.decode_fentry (Signing.encode_fentry fe) in
  Alcotest.(check bool) "roundtrip preserves every field" true (fe = fe');
  (* a decoded entry still verifies — serialization is signature-safe *)
  Signing.verify_function fe' ~bytecode:fe'.Signing.fe_bytecode
    ~native:fe'.Signing.fe_native

let expect_decode_error what s =
  match Signing.decode_fentry s with
  | _ -> Alcotest.failf "%s accepted by decode_fentry" what
  | exception Codec.Decode_error _ -> ()

let test_fentry_codec_rejects_garbage () =
  let fe, _, _ = fentry_fixture () in
  let enc = Signing.encode_fentry fe in
  expect_decode_error "empty input" "";
  expect_decode_error "bad magic" ("XXXXXXXX" ^ String.sub enc 8 (String.length enc - 8));
  (* every truncation point must be rejected, not mis-parsed *)
  for i = 0 to String.length enc - 1 do
    expect_decode_error
      (Printf.sprintf "truncation at byte %d" i)
      (String.sub enc 0 i)
  done;
  expect_decode_error "trailing junk" (enc ^ "\000");
  expect_decode_error "corrupt length field"
    (let b = Bytes.of_string enc in
     Bytes.set b 8 'z';
     Bytes.to_string b)

let test_fentry_wrong_key_rejected () =
  let fe, bytecode, native = fentry_fixture () in
  let saved = !Signing.svm_key in
  Signing.svm_key := "some-other-svm-instance";
  Fun.protect
    ~finally:(fun () -> Signing.svm_key := saved)
    (fun () ->
      expect_tampered "entry signed under another key" (fun () ->
          Signing.verify_function fe ~bytecode ~native))

let () =
  Alcotest.run "sva_bytecode"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha_vectors;
          Alcotest.test_case "padding boundaries" `Quick test_sha_block_boundaries;
          Alcotest.test_case "hmac rfc4231" `Quick test_hmac;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_simple;
          Alcotest.test_case "roundtrip optimized" `Quick test_roundtrip_optimized;
          Alcotest.test_case "decoded module runs" `Quick
            test_decoded_module_verifies_and_runs;
          Alcotest.test_case "garbage rejected" `Quick test_decode_garbage_rejected;
          Alcotest.test_case "truncation rejected" `Quick
            test_decode_truncated_rejected;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          Alcotest.test_case "whole kernel roundtrips" `Quick
            test_whole_kernel_roundtrips;
        ] );
      ( "signing",
        [
          Alcotest.test_case "sign/verify" `Quick test_sign_verify;
          Alcotest.test_case "tampered bytecode" `Quick
            test_tampered_bytecode_rejected;
          Alcotest.test_case "tampered native" `Quick test_tampered_native_rejected;
          Alcotest.test_case "wrong key" `Quick test_wrong_key_rejected;
        ] );
      ( "function-entries",
        [
          Alcotest.test_case "function roundtrip" `Quick test_func_roundtrip;
          Alcotest.test_case "garbage function rejected" `Quick
            test_func_decode_garbage_rejected;
          Alcotest.test_case "fentry sign/verify" `Quick test_fentry_sign_verify;
          Alcotest.test_case "fentry tampering rejected" `Quick
            test_fentry_tampered_rejected;
          Alcotest.test_case "fentry wrong key" `Quick
            test_fentry_wrong_key_rejected;
          Alcotest.test_case "fentry codec roundtrip" `Quick
            test_fentry_codec_roundtrip;
          Alcotest.test_case "fentry codec rejects garbage" `Quick
            test_fentry_codec_rejects_garbage;
        ] );
    ]
