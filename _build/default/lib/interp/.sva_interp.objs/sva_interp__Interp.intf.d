lib/interp/interp.mli: Irmod Sva_ir Sva_os Sva_rt
