lib/interp/interp.ml: Array Bytes Char Constfold Func Hashtbl Instr Int64 Irmod List Option Printf Sva_hw Sva_ir Sva_os Sva_rt Ty Value
