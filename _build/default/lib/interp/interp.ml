open Sva_ir
module Machine = Sva_hw.Machine
module Mmu = Sva_hw.Mmu
module Svaos = Sva_os.Svaos
module Metapool_rt = Sva_rt.Metapool_rt
module Violation = Sva_rt.Violation

exception Vm_error of string

let vm_err fmt = Printf.ksprintf (fun s -> raise (Vm_error s)) fmt

let code_base = 0x00B00000
let code_stride = 16

type prepared_func = {
  pf : Func.t;
  pf_blocks : Func.block array;
  pf_index : (string, int) Hashtbl.t;
}

type t = {
  im_mod : Irmod.t;
  im_sys : Svaos.t;
  funcs : (string, prepared_func) Hashtbl.t;
  fn_addr : (string, int) Hashtbl.t;
  addr_fn : (int, string) Hashtbl.t;
  g_addr : (string, int) Hashtbl.t;
  g_size : (string, int) Hashtbl.t;
  mps : (int, Metapool_rt.t) Hashtbl.t;
  size_cache : (Ty.t, int) Hashtbl.t;
  mutable g_cursor : int;
  mutable next_code : int;
  mutable sp : int;
  mutable heap_ptr : int;
  free_lists : (int, int list ref) Hashtbl.t;
  alloc_sizes : (int, int) Hashtbl.t;
  mutable live_heap : int;
  mutable nsteps : int;
  mutable ncycles : int;
  mutable limit : int option;
}

let sizeof t ty =
  match Hashtbl.find_opt t.size_cache ty with
  | Some s -> s
  | None ->
      let s = Ty.sizeof t.im_mod.Irmod.m_ctx ty in
      Hashtbl.replace t.size_cache ty s;
      s

(* The malloc instruction's heap lives in the upper half of the machine
   heap region; the kernel's page allocator owns the lower half. *)
let malloc_base = Machine.heap_base + (Machine.heap_size / 2)

(* ---------- image construction ---------- *)

(* Lay out globals that do not have an address yet (initial load and each
   dynamically linked module); returns the newly placed globals. *)
let layout_globals t =
  let fresh = ref [] in
  List.iter
    (fun (g : Irmod.global) ->
      if not (Hashtbl.mem t.g_addr g.Irmod.g_name) then begin
        let size = max 1 (sizeof t g.Irmod.g_ty) in
        let align = Ty.alignof t.im_mod.Irmod.m_ctx g.Irmod.g_ty in
        t.g_cursor <- (t.g_cursor + align - 1) / align * align;
        Hashtbl.replace t.g_addr g.Irmod.g_name t.g_cursor;
        Hashtbl.replace t.g_size g.Irmod.g_name size;
        t.g_cursor <- t.g_cursor + size;
        fresh := g :: !fresh
      end)
    t.im_mod.Irmod.m_globals;
  if t.g_cursor > Machine.globals_base + Machine.globals_size then
    vm_err "globals do not fit in the globals region";
  List.rev !fresh

let write_global_inits t globals =
  List.iter
    (fun (g : Irmod.global) ->
      let addr = Hashtbl.find t.g_addr g.Irmod.g_name in
      match g.Irmod.g_init with
      | Irmod.Zero -> ()
      | Irmod.Str s -> Machine.write t.im_sys.Svaos.machine ~addr (Bytes.of_string s)
      | Irmod.Ints (ty, ns) ->
          let w = sizeof t ty in
          List.iteri
            (fun i n ->
              Machine.write_int t.im_sys.Svaos.machine ~addr:(addr + (i * w))
                ~width:w n)
            ns
      | Irmod.Ptrs syms ->
          List.iteri
            (fun i sym ->
              let target =
                match Hashtbl.find_opt t.fn_addr sym with
                | Some a -> a
                | None -> (
                    match Hashtbl.find_opt t.g_addr sym with
                    | Some a -> a
                    | None -> vm_err "initializer references unknown symbol @%s" sym)
              in
              Machine.write_int t.im_sys.Svaos.machine ~addr:(addr + (i * 8))
                ~width:8 (Int64.of_int target))
            syms)
    globals

let prepare_func (f : Func.t) =
  let blocks = Array.of_list f.Func.f_blocks in
  let index = Hashtbl.create (Array.length blocks) in
  Array.iteri (fun i b -> Hashtbl.replace index b.Func.label i) blocks;
  { pf = f; pf_blocks = blocks; pf_index = index }

let load ?sys ?(metapools = []) (m : Irmod.t) =
  let sys = match sys with Some s -> s | None -> Svaos.create () in
  let t =
    {
      im_mod = m;
      im_sys = sys;
      funcs = Hashtbl.create 64;
      fn_addr = Hashtbl.create 64;
      addr_fn = Hashtbl.create 64;
      g_addr = Hashtbl.create 64;
      g_size = Hashtbl.create 64;
      mps = Hashtbl.create 16;
      size_cache = Hashtbl.create 64;
      g_cursor = Machine.globals_base;
      next_code = 0;
      sp = Machine.stack_base;
      heap_ptr = malloc_base;
      free_lists = Hashtbl.create 16;
      alloc_sizes = Hashtbl.create 64;
      live_heap = 0;
      nsteps = 0;
      ncycles = 0;
      limit = None;
    }
  in
  let install_funcs t =
    List.iter
      (fun (f : Func.t) ->
        if not (Hashtbl.mem t.funcs f.Func.f_name) then begin
          let addr = code_base + (t.next_code * code_stride) in
          t.next_code <- t.next_code + 1;
          Hashtbl.replace t.funcs f.Func.f_name (prepare_func f);
          Hashtbl.replace t.fn_addr f.Func.f_name addr;
          Hashtbl.replace t.addr_fn addr f.Func.f_name
        end)
      t.im_mod.Irmod.m_funcs
  in
  install_funcs t;
  List.iter (fun (id, mp) -> Hashtbl.replace t.mps id mp) metapools;
  let fresh = layout_globals t in
  write_global_inits t fresh;
  t

(* Dynamic module loading: link, place code, lay out and initialize the
   module's globals.  Existing code and data are not disturbed. *)
let link_module t (m2 : Irmod.t) =
  Irmod.merge t.im_mod m2;
  List.iter
    (fun (f : Func.t) ->
      if not (Hashtbl.mem t.funcs f.Func.f_name) then begin
        let addr = code_base + (t.next_code * code_stride) in
        t.next_code <- t.next_code + 1;
        Hashtbl.replace t.funcs f.Func.f_name (prepare_func f);
        Hashtbl.replace t.fn_addr f.Func.f_name addr;
        Hashtbl.replace t.addr_fn addr f.Func.f_name
      end)
    t.im_mod.Irmod.m_funcs;
  let fresh = layout_globals t in
  write_global_inits t fresh

let sys t = t.im_sys
let irmod t = t.im_mod
let func_addr t name = Hashtbl.find t.fn_addr name
let func_name t addr = Hashtbl.find_opt t.addr_fn addr
let global_addr t name = Hashtbl.find t.g_addr name
let global_size t name = Hashtbl.find t.g_size name
let metapool t id = Hashtbl.find_opt t.mps id
let steps t = t.nsteps
let reset_steps t = t.nsteps <- 0
let cycles t = t.ncycles
let reset_cycles t = t.ncycles <- 0
let add_cycles t n = t.ncycles <- t.ncycles + n
let set_step_limit t l = t.limit <- l
let heap_live_bytes t = t.live_heap

(* ---------- memory access ---------- *)

let xlate t ~write addr =
  if Machine.in_kernel_range ~addr then addr
  else Mmu.translate t.im_sys.Svaos.mmu ~addr ~write

let mem_read_int t ~addr ~width =
  Machine.read_int t.im_sys.Svaos.machine ~addr:(xlate t ~write:false addr) ~width

let mem_write_int t ~addr ~width v =
  Machine.write_int t.im_sys.Svaos.machine ~addr:(xlate t ~write:true addr) ~width v

(* Bulk copy that translates page-by-page for user ranges. *)
let mem_blit t ~src ~dst ~len =
  let remaining = ref len and s = ref src and d = ref dst in
  while !remaining > 0 do
    let chunk_s = Machine.page_size - (!s mod Machine.page_size) in
    let chunk_d = Machine.page_size - (!d mod Machine.page_size) in
    let chunk = min !remaining (min chunk_s chunk_d) in
    Machine.blit t.im_sys.Svaos.machine
      ~src:(xlate t ~write:false !s)
      ~dst:(xlate t ~write:true !d)
      ~len:chunk;
    s := !s + chunk;
    d := !d + chunk;
    remaining := !remaining - chunk
  done

let mem_fill t ~addr ~len c =
  let remaining = ref len and a = ref addr in
  while !remaining > 0 do
    let chunk = min !remaining (Machine.page_size - (!a mod Machine.page_size)) in
    Machine.fill t.im_sys.Svaos.machine ~addr:(xlate t ~write:true !a) ~len:chunk c;
    a := !a + chunk;
    remaining := !remaining - chunk
  done

(* ---------- malloc/free (the SVA-Core heap instructions) ---------- *)

let heap_alloc t size =
  let size = max 8 ((size + 7) / 8 * 8) in
  let addr =
    match Hashtbl.find_opt t.free_lists size with
    | Some ({ contents = a :: rest } as l) ->
        l := rest;
        a
    | _ ->
        let a = t.heap_ptr in
        if a + size > Machine.heap_base + Machine.heap_size then
          vm_err "malloc heap exhausted";
        t.heap_ptr <- a + size;
        a
  in
  Hashtbl.replace t.alloc_sizes addr size;
  t.live_heap <- t.live_heap + size;
  addr

let heap_free t addr =
  match Hashtbl.find_opt t.alloc_sizes addr with
  | None -> vm_err "free of unknown heap address 0x%x" addr
  | Some size ->
      Hashtbl.remove t.alloc_sizes addr;
      t.live_heap <- t.live_heap - size;
      let l =
        match Hashtbl.find_opt t.free_lists size with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace t.free_lists size l;
            l
      in
      l := addr :: !l

(* ---------- value evaluation ---------- *)

let ty_width = function
  | Ty.Int w -> max 1 (w / 8)
  | Ty.Float -> 8
  | Ty.Ptr _ -> 8
  | t -> vm_err "scalar access at non-scalar type %s" (Ty.to_string t)

let eval t (regs : int64 array) (v : Value.t) : int64 =
  match v with
  | Value.Reg (id, _, _) -> regs.(id)
  | Value.Imm (Ty.Int w, n) -> Constfold.truncate_to_width w n
  | Value.Imm (_, n) -> n
  | Value.Fimm f -> Int64.bits_of_float f
  | Value.Null _ -> 0L
  | Value.Undef _ -> 0L
  | Value.Global (g, _) -> (
      match Hashtbl.find_opt t.g_addr g with
      | Some a -> Int64.of_int a
      | None -> vm_err "unknown global @%s" g)
  | Value.Fn (f, _) -> (
      match Hashtbl.find_opt t.fn_addr f with
      | Some a -> Int64.of_int a
      | None -> vm_err "unknown function @%s" f)

let to_addr v = Int64.to_int v

let width_of_value (v : Value.t) =
  match Value.ty v with
  | Ty.Int w -> w
  | Ty.Ptr _ -> 64
  | Ty.Float -> 64
  | t -> vm_err "no integer width for %s" (Ty.to_string t)

(* ---------- gep ---------- *)

let gep_offset t (base_pointee : Ty.t) regs idxs =
  let off = ref 0L in
  let add n = off := Int64.add !off n in
  (match idxs with
  | first :: rest ->
      add (Int64.mul (eval t regs first) (Int64.of_int (sizeof t base_pointee)));
      let rec descend ty = function
        | [] -> ()
        | idx :: more -> (
            match ty with
            | Ty.Array (e, _) ->
                add (Int64.mul (eval t regs idx) (Int64.of_int (sizeof t e)));
                descend e more
            | Ty.Struct sname ->
                let i = Int64.to_int (eval t regs idx) in
                let foff, fty = Ty.field_at t.im_mod.Irmod.m_ctx sname i in
                add (Int64.of_int foff);
                descend fty more
            | _ -> vm_err "gep descends into scalar")
      in
      descend base_pointee rest
  | [] -> vm_err "gep with no indices");
  !off

(* ---------- builtins (external C library functions) ---------- *)

let strlen_limit = 1 lsl 20

let builtin t name (args : int64 array) : int64 option =
  let a n = args.(n) in
  (match name with
  | "memcpy" | "memmove" | "memset" | "memcmp" ->
      t.ncycles <- t.ncycles + 4 + (to_addr args.(2) / 8)
  | "strlen" | "strcmp" | "strcpy" -> t.ncycles <- t.ncycles + 8
  | _ -> ());
  match name with
  | "memcpy" | "memmove" ->
      mem_blit t ~src:(to_addr (a 1)) ~dst:(to_addr (a 0)) ~len:(to_addr (a 2));
      Some (a 0)
  | "memset" ->
      mem_fill t
        ~addr:(to_addr (a 0))
        ~len:(to_addr (a 2))
        (Char.chr (Int64.to_int (Int64.logand (a 1) 0xffL)));
      Some (a 0)
  | "memcmp" ->
      let x = to_addr (a 0) and y = to_addr (a 1) and n = to_addr (a 2) in
      let rec go i =
        if i >= n then 0L
        else
          let cx = mem_read_int t ~addr:(x + i) ~width:1
          and cy = mem_read_int t ~addr:(y + i) ~width:1 in
          if cx = cy then go (i + 1)
          else if Int64.compare cx cy < 0 then -1L
          else 1L
      in
      Some (go 0)
  | "strlen" ->
      let p = to_addr (a 0) in
      let rec go i =
        if i > strlen_limit then vm_err "strlen: unterminated string"
        else if mem_read_int t ~addr:(p + i) ~width:1 = 0L then i
        else go (i + 1)
      in
      Some (Int64.of_int (go 0))
  | "strcmp" ->
      let x = to_addr (a 0) and y = to_addr (a 1) in
      let rec go i =
        let cx = mem_read_int t ~addr:(x + i) ~width:1
        and cy = mem_read_int t ~addr:(y + i) ~width:1 in
        if cx <> cy then if Int64.compare cx cy < 0 then -1L else 1L
        else if cx = 0L then 0L
        else go (i + 1)
      in
      Some (go 0)
  | "strcpy" ->
      let d = to_addr (a 0) and s = to_addr (a 1) in
      let rec go i =
        let c = mem_read_int t ~addr:(s + i) ~width:1 in
        mem_write_int t ~addr:(d + i) ~width:1 c;
        if c <> 0L then go (i + 1)
      in
      go 0;
      Some (a 0)
  | _ -> vm_err "call to unknown external function @%s" name

let is_builtin name =
  match name with
  | "memcpy" | "memmove" | "memset" | "memcmp" | "strlen" | "strcmp" | "strcpy" ->
      true
  | _ -> false

(* ---------- intrinsics ---------- *)

let get_mp t id =
  match Hashtbl.find_opt t.mps id with
  | Some mp -> mp
  | None -> vm_err "reference to unknown metapool %d" id

let cls_of_code = function
  | 0 -> Metapool_rt.Heap
  | 1 -> Metapool_rt.Stack
  | 2 -> Metapool_rt.Global
  | 3 -> Metapool_rt.Userspace
  | 4 -> Metapool_rt.Bios
  | c -> vm_err "bad memory class code %d" c

(* The cycle-model charge for an SVA-OS operation or run-time check.
   Mediated mode pays the privilege-boundary premium (validation, full
   state spills, integrity tags) over the native inline sequences. *)
let intrinsic_base_cost ~mediated name nargs =
  match name with
  | "pchk_reg_obj" | "pchk_drop_obj" | "pchk_pseudo_alloc" -> 22
  | "pchk_bounds" -> 18
  | "pchk_bounds_known" -> 4
  | "pchk_lscheck" -> 14
  | "pchk_getbounds_start" | "pchk_getbounds_len" -> 14
  | "pchk_funccheck" -> 6 + (nargs / 6)
  | "llva_save_integer" | "llva_load_integer" -> if mediated then 54 else 22
  | "llva_save_fp" | "llva_load_fp" -> if mediated then 22 else 10
  | "llva_icontext_save" | "llva_icontext_load" -> if mediated then 48 else 16
  | "llva_icontext_commit" -> if mediated then 40 else 14
  | "llva_ipush_function" -> if mediated then 18 else 8
  | "llva_was_privileged" -> 4
  | "sva_register_syscall" | "sva_register_interrupt" -> 10
  | "sva_syscall" -> if mediated then 16 else 8
  | "sva_mmu_map_page" | "sva_mmu_unmap_page" -> if mediated then 16 else 8
  | "sva_mmu_new_space" | "sva_mmu_destroy_space" | "sva_mmu_activate" ->
      if mediated then 12 else 6
  | "sva_mmu_clone_space" -> if mediated then 24 else 12
  | "sva_mmu_page_count" -> 6
  | "sva_io_console_write" | "sva_io_disk_read" | "sva_io_disk_write" -> 30
  | "sva_io_nic_send" | "sva_io_nic_recv" -> 30
  | "sva_timer_read" -> if mediated then 10 else 4
  | "sva_cli" | "sva_sti" -> 2
  | _ -> 2

let rec run_intrinsic t regs name (arg_vals : Value.t list) : int64 option =
  let mediated = t.im_sys.Svaos.mode = Svaos.Sva_mediated in
  let splay0 = Sva_rt.Splay.comparisons () in
  let r = run_intrinsic_inner t regs name arg_vals in
  let splay_work = Sva_rt.Splay.comparisons () - splay0 in
  t.ncycles <-
    t.ncycles
    + intrinsic_base_cost ~mediated name (List.length arg_vals)
    + (3 * splay_work);
  (* MMU space duplication costs a page-table walk. *)
  (match name with
  | "sva_mmu_clone_space" -> (
      match r with
      | Some sid ->
          t.ncycles <-
            t.ncycles + (2 * Svaos.mmu_page_count t.im_sys ~sid:(Int64.to_int sid))
      | None -> ())
  | _ -> ());
  r

and run_intrinsic_inner t regs name (arg_vals : Value.t list) : int64 option =
  let args = Array.of_list (List.map (eval t regs) arg_vals) in
  let a n = args.(n) in
  let addr n = to_addr (a n) in
  let sys = t.im_sys in
  match name with
  (* --- run-time checks --- *)
  | "pchk_reg_obj" ->
      let mp = get_mp t (to_addr (a 0)) in
      Metapool_rt.register mp ~cls:(cls_of_code (to_addr (a 3))) ~start:(addr 1)
        ~len:(to_addr (a 2));
      None
  | "pchk_drop_obj" ->
      Metapool_rt.drop (get_mp t (to_addr (a 0))) ~start:(addr 1);
      None
  | "pchk_drop_obj_opt" ->
      ignore (Metapool_rt.drop_if_present (get_mp t (to_addr (a 0))) ~start:(addr 1));
      None
  | "pchk_bounds" ->
      Metapool_rt.boundscheck
        (get_mp t (to_addr (a 0)))
        ~src:(addr 1) ~dst:(addr 2)
        ~access_len:(to_addr (a 3));
      None
  | "pchk_bounds_known" ->
      Metapool_rt.boundscheck_known ~start:(addr 0) ~len:(to_addr (a 1))
        ~dst:(addr 2) ~access_len:(to_addr (a 3)) ~pool:"<static>";
      None
  | "pchk_lscheck" ->
      Metapool_rt.lscheck
        (get_mp t (to_addr (a 0)))
        ~addr:(addr 1) ~access_len:(to_addr (a 2));
      None
  | "pchk_funccheck" ->
      let target = addr 0 in
      let allowed =
        List.filteri (fun i _ -> i > 0) arg_vals
        |> List.map (fun v ->
               match v with
               | Value.Fn (fn, _) -> (to_addr (eval t regs v), fn)
               | _ -> (to_addr (eval t regs v), "<addr>"))
      in
      Metapool_rt.funccheck ~allowed ~target;
      None
  | "pchk_getbounds_start" ->
      (* Returns the base of the object containing the pointer, 0 if
         unknown. *)
      Some
        (match Metapool_rt.getbounds (get_mp t (to_addr (a 0))) (addr 1) with
        | Some (s, _) -> Int64.of_int s
        | None -> 0L)
  | "pchk_getbounds_len" ->
      Some
        (match Metapool_rt.getbounds (get_mp t (to_addr (a 0))) (addr 1) with
        | Some (_, l) -> Int64.of_int l
        | None -> 0L)
  | "sva_pseudo_alloc" ->
      (* Unchecked build: just manufacture the pointer. *)
      Some (a 0)
  | "pchk_pseudo_alloc" ->
      let mp = get_mp t (to_addr (a 0)) in
      let start = addr 1 and len = to_addr (a 2) in
      (match Metapool_rt.getbounds mp start with
      | Some _ -> () (* already registered *)
      | None -> Metapool_rt.register mp ~cls:Metapool_rt.Bios ~start ~len);
      Some (a 1)
  (* --- Table 1: state save/restore --- *)
  | "llva_save_integer" ->
      Svaos.save_integer sys ~buffer:(addr 0);
      None
  | "llva_load_integer" ->
      Svaos.load_integer sys ~buffer:(addr 0);
      None
  | "llva_save_fp" ->
      Some (if Svaos.save_fp sys ~buffer:(addr 0) ~always:(a 1 <> 0L) then 1L else 0L)
  | "llva_load_fp" ->
      Svaos.load_fp sys ~buffer:(addr 0);
      None
  (* --- Table 2: interrupt contexts --- *)
  | "llva_icontext_save" ->
      Svaos.icontext_save sys ~icp:(addr 0) ~isp:(addr 1);
      None
  | "llva_icontext_load" ->
      Svaos.icontext_load sys ~icp:(addr 0) ~isp:(addr 1);
      None
  | "llva_icontext_commit" ->
      Svaos.icontext_commit sys ~icp:(addr 0);
      None
  | "llva_ipush_function" ->
      Svaos.ipush_function sys ~icp:(addr 0) ~fn:(addr 1) ~arg:(a 2);
      None
  | "llva_was_privileged" ->
      Some (if Svaos.was_privileged sys ~icp:(addr 0) then 1L else 0L)
  (* --- registration and dispatch --- *)
  | "sva_register_syscall" ->
      let handler =
        match func_name t (addr 1) with
        | Some fn -> fn
        | None -> vm_err "sva_register_syscall: bad handler address"
      in
      Svaos.register_syscall sys ~num:(to_addr (a 0)) ~handler;
      None
  | "sva_register_interrupt" ->
      let handler =
        match func_name t (addr 1) with
        | Some fn -> fn
        | None -> vm_err "sva_register_interrupt: bad handler address"
      in
      Svaos.register_interrupt sys ~vector:(to_addr (a 0)) ~handler;
      None
  | "sva_syscall" -> (
      (* Internal system call: dispatch through the registered handler
         using the same mechanism as a userspace trap, minus the privilege
         transition. *)
      match Svaos.syscall_handler sys ~num:(to_addr (a 0)) with
      | Some handler ->
          let rest = Array.to_list (Array.sub args 1 (Array.length args - 1)) in
          let res = call t handler rest in
          Some (Option.value res ~default:0L)
      | None -> Some (-38L) (* -ENOSYS *))
  (* --- MMU --- *)
  | "sva_mmu_new_space" -> Some (Int64.of_int (Svaos.mmu_new_space sys))
  | "sva_mmu_clone_space" ->
      Some (Int64.of_int (Svaos.mmu_clone_space sys ~sid:(to_addr (a 0))))
  | "sva_mmu_destroy_space" ->
      Svaos.mmu_destroy_space sys ~sid:(to_addr (a 0));
      None
  | "sva_mmu_activate" ->
      Svaos.mmu_activate sys ~sid:(to_addr (a 0));
      None
  | "sva_mmu_map_page" ->
      Svaos.mmu_map_page sys ~sid:(to_addr (a 0)) ~vpn:(to_addr (a 1))
        ~ppn:(to_addr (a 2))
        ~writable:(a 3 <> 0L);
      None
  | "sva_mmu_unmap_page" ->
      Svaos.mmu_unmap_page sys ~sid:(to_addr (a 0)) ~vpn:(to_addr (a 1));
      None
  | "sva_mmu_page_count" ->
      Some (Int64.of_int (Svaos.mmu_page_count sys ~sid:(to_addr (a 0))))
  (* --- I/O --- *)
  | "sva_io_console_write" ->
      Svaos.io_console_write sys ~addr:(addr 0) ~len:(to_addr (a 1));
      None
  | "sva_io_disk_read" ->
      Svaos.io_disk_read sys ~block:(to_addr (a 0)) ~addr:(addr 1);
      None
  | "sva_io_disk_write" ->
      Svaos.io_disk_write sys ~block:(to_addr (a 0)) ~addr:(addr 1);
      None
  | "sva_io_nic_send" ->
      Svaos.io_nic_send sys ~proto:(to_addr (a 0)) ~addr:(addr 1)
        ~len:(to_addr (a 2));
      None
  | "sva_io_nic_recv" ->
      Some (Int64.of_int (Svaos.io_nic_recv sys ~addr:(addr 0) ~maxlen:(to_addr (a 1))))
  | "sva_timer_read" -> Some (Svaos.timer_read sys)
  | "sva_cli" ->
      Svaos.cli sys;
      None
  | "sva_sti" ->
      Svaos.sti sys;
      None
  (* --- constants --- *)
  | "sva_heap_base" -> Some (Int64.of_int (Svaos.heap_base sys))
  | "sva_heap_size" -> Some (Int64.of_int (Svaos.heap_size sys / 2))
    (* lower half only: the upper half belongs to the malloc instruction *)
  | "sva_user_base" -> Some (Int64.of_int (Svaos.user_base sys))
  | "sva_user_size" -> Some (Int64.of_int (Svaos.user_size sys))
  | "sva_panic" -> vm_err "kernel panic: code %Ld" (a 0)
  | _ -> vm_err "unknown intrinsic @%s" name

(* ---------- the main execution loop ---------- *)

and exec_func t (pf : prepared_func) (args : int64 list) : int64 option =
  let f = pf.pf in
  let regs = Array.make (max 1 f.Func.f_next_reg) 0L in
  List.iteri
    (fun i v -> if i < Array.length regs then regs.(i) <- v)
    args;
  let sp_save = t.sp in
  let result = ref None in
  let running = ref true in
  let cur = ref 0 in
  let prev_label = ref "" in
  let goto label =
    match Hashtbl.find_opt pf.pf_index label with
    | Some i ->
        cur := i;
        true
    | None -> vm_err "branch to unknown label %%%s in @%s" label f.Func.f_name
  in
  while !running do
    let blk = pf.pf_blocks.(!cur) in
    (* Phase 1: evaluate all phis against the predecessor simultaneously. *)
    let rec phi_values acc = function
      | ({ Instr.kind = Instr.Phi incoming; _ } as i) :: rest ->
          let v =
            match List.assoc_opt !prev_label incoming with
            | Some v -> eval t regs v
            | None ->
                vm_err "phi in %%%s has no incoming for %%%s" blk.Func.label
                  !prev_label
          in
          phi_values ((i.Instr.id, v) :: acc) rest
      | rest -> (acc, rest)
    in
    let phis, body = phi_values [] blk.Func.insns in
    List.iter (fun (id, v) -> regs.(id) <- v) phis;
    t.nsteps <- t.nsteps + List.length phis;
    t.ncycles <- t.ncycles + List.length phis;
    (* Phase 2: straight-line instructions. *)
    List.iter
      (fun (i : Instr.t) ->
        t.nsteps <- t.nsteps + 1;
        t.ncycles <- t.ncycles + 1;
        (match t.limit with
        | Some l when t.nsteps > l -> vm_err "step limit exceeded"
        | _ -> ());
        let set v = regs.(i.Instr.id) <- v in
        match i.Instr.kind with
        | Instr.Binop (op, x, y) -> (
            match op with
            | Instr.Fadd | Instr.Fsub | Instr.Fmul | Instr.Fdiv ->
                let fx = Int64.float_of_bits (eval t regs x)
                and fy = Int64.float_of_bits (eval t regs y) in
                let r =
                  match op with
                  | Instr.Fadd -> fx +. fy
                  | Instr.Fsub -> fx -. fy
                  | Instr.Fmul -> fx *. fy
                  | _ -> fx /. fy
                in
                set (Int64.bits_of_float r)
            | _ -> (
                let w = width_of_value x in
                match Constfold.eval_binop op w (eval t regs x) (eval t regs y) with
                | Some r -> set r
                | None -> vm_err "division by zero in @%s" f.Func.f_name))
        | Instr.Icmp (op, x, y) ->
            let w = width_of_value x in
            set
              (if Constfold.eval_icmp op w (eval t regs x) (eval t regs y) then 1L
               else 0L)
        | Instr.Alloca (ty, count) ->
            let n = Int64.to_int (eval t regs count) in
            let size = max 1 (sizeof t ty * max 1 n) in
            t.sp <- (t.sp + 15) / 16 * 16;
            if t.sp + size > Machine.stack_base + Machine.stack_size then
              vm_err "kernel stack overflow";
            let addr = t.sp in
            t.sp <- t.sp + size;
            set (Int64.of_int addr)
        | Instr.Load p ->
            let w = ty_width i.Instr.ty in
            set (mem_read_int t ~addr:(to_addr (eval t regs p)) ~width:w)
        | Instr.Store (v, p) ->
            let w = ty_width (Value.ty v) in
            mem_write_int t ~addr:(to_addr (eval t regs p)) ~width:w (eval t regs v)
        | Instr.Gep (base, idxs) ->
            let pointee = Ty.pointee (Value.ty base) in
            let off = gep_offset t pointee regs idxs in
            set (Int64.add (eval t regs base) off)
        | Instr.Cast (op, x, ty) -> (
            let v = eval t regs x in
            match op with
            | Instr.Bitcast | Instr.Inttoptr | Instr.Ptrtoint -> set v
            | Instr.Trunc -> (
                match ty with
                | Ty.Int w -> set (Constfold.truncate_to_width w v)
                | _ -> vm_err "trunc to non-integer")
            | Instr.Sext -> set v
            | Instr.Zext ->
                let sw = width_of_value x in
                set (Constfold.zext_of_width sw v)
            | Instr.Fptosi -> set (Int64.of_float (Int64.float_of_bits v))
            | Instr.Sitofp -> set (Int64.bits_of_float (Int64.to_float v)))
        | Instr.Select (c, x, y) ->
            set (if eval t regs c <> 0L then eval t regs x else eval t regs y)
        | Instr.Call (callee, cargs) -> (
            let argv = List.map (eval t regs) cargs in
            let res =
              match callee with
              | Value.Fn (name, _) -> dispatch_call t name argv
              | _ -> (
                  let target = to_addr (eval t regs callee) in
                  match func_name t target with
                  | Some name -> dispatch_call t name argv
                  | None -> vm_err "indirect call to non-code address 0x%x" target)
            in
            match res with Some v -> set v | None -> ())
        | Instr.Phi _ -> vm_err "phi after non-phi instruction"
        | Instr.Malloc (ty, count) ->
            let n = Int64.to_int (eval t regs count) in
            set (Int64.of_int (heap_alloc t (sizeof t ty * max 1 n)))
        | Instr.Free p -> heap_free t (to_addr (eval t regs p))
        | Instr.Atomic_cas (p, e, r) ->
            let w = ty_width (Value.ty e) in
            let addr = to_addr (eval t regs p) in
            let old = mem_read_int t ~addr ~width:w in
            if old = eval t regs e then
              mem_write_int t ~addr ~width:w (eval t regs r);
            set old
        | Instr.Atomic_add (p, d) ->
            let w = ty_width (Value.ty d) in
            let addr = to_addr (eval t regs p) in
            let old = mem_read_int t ~addr ~width:w in
            mem_write_int t ~addr ~width:w (Int64.add old (eval t regs d));
            set old
        | Instr.Membar -> ()
        | Instr.Intrinsic (name, iargs) -> (
            match run_intrinsic t regs name iargs with
            | Some v -> if i.Instr.ty <> Ty.Void then set v
            | None -> ()))
      body;
    (* Terminator. *)
    t.nsteps <- t.nsteps + 1;
    t.ncycles <- t.ncycles + 1;
    (match t.limit with
    | Some l when t.nsteps > l -> vm_err "step limit exceeded"
    | _ -> ());
    prev_label := blk.Func.label;
    (match blk.Func.term with
    | Instr.Ret v ->
        result := Option.map (eval t regs) v;
        running := false
    | Instr.Jmp l -> ignore (goto l)
    | Instr.Br (c, th, el) -> ignore (goto (if eval t regs c <> 0L then th else el))
    | Instr.Switch (v, cases, default) ->
        let x = eval t regs v in
        let w = width_of_value v in
        let target =
          match
            List.find_opt
              (fun (n, _) -> Int64.equal (Constfold.truncate_to_width w n) x)
              cases
          with
          | Some (_, l) -> l
          | None -> default
        in
        ignore (goto target)
    | Instr.Unreachable -> vm_err "reached 'unreachable' in @%s" f.Func.f_name)
  done;
  t.sp <- sp_save;
  !result

and dispatch_call t name argv =
  match Hashtbl.find_opt t.funcs name with
  | Some pf -> exec_func t pf argv
  | None ->
      if is_builtin name then builtin t name (Array.of_list argv)
      else vm_err "call to undefined function @%s" name

and call t name args =
  match Hashtbl.find_opt t.funcs name with
  | Some pf -> (
      try exec_func t pf args
      with e ->
        (* A trap aborts the VM invocation; unwind the stack allocator. *)
        t.sp <- Machine.stack_base;
        raise e)
  | None -> vm_err "call to unknown function @%s" name

let call_addr t addr args =
  match func_name t addr with
  | Some name -> call t name args
  | None -> vm_err "call_addr: 0x%x is not a function" addr
