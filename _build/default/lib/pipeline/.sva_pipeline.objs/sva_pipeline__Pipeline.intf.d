lib/pipeline/pipeline.mli: Checkinsert Checkopt Irmod Metapool Pointsto Sva_analysis Sva_interp Sva_ir Sva_os Sva_safety Sva_tyck
