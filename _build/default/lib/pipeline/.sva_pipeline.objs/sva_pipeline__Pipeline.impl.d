lib/pipeline/pipeline.ml: Checkinsert Checkopt Clone Devirt Irmod List Metapool Minic Passes Pointsto String Sva_analysis Sva_hw Sva_interp Sva_ir Sva_os Sva_safety Sva_tyck
