(** The end-to-end SVA compilation pipeline.

    Models the four kernel configurations measured in Section 7.1:

    - {!conf.Native} — original kernel, GCC: no SVA-OS mediation, no
      checks, simple optimizer;
    - {!conf.Sva_gcc} — the SVA-ported kernel compiled with GCC: SVA-OS
      mediation, no checks, simple optimizer;
    - {!conf.Sva_llvm} — ported kernel through the LLVM-like pipeline;
    - {!conf.Sva_safe} — plus the safety-checking compiler: points-to
      analysis, metapool inference, run-time check insertion.

    The same MiniC sources build under every configuration; only the
    pass set and the SVA-OS execution mode differ. *)

open Sva_ir
open Sva_analysis
open Sva_safety

type conf = Native | Sva_gcc | Sva_llvm | Sva_safe

val conf_name : conf -> string
val all_confs : conf list

type built = {
  bl_name : string;
  bl_conf : conf;
  bl_mod : Irmod.t;
  bl_pa : Pointsto.result option;  (** present for [Sva_safe] *)
  bl_mps : Metapool.t option;
  bl_summary : Checkinsert.summary option;
  bl_aconfig : Pointsto.config;
  bl_annot : Sva_tyck.Tyck.annot option;
      (** the metapool type annotations, validated by the trusted checker
          before check insertion (Section 5) *)
  bl_cloned : int;  (** functions cloned (Section 4.8), when enabled *)
  bl_devirt : int;  (** indirect calls devirtualized (Section 4.8) *)
  bl_checkopt : Checkopt.summary option;
      (** results of the check optimizations of Section 7.1.3, when enabled *)
}

val build :
  ?conf:conf ->
  ?aconfig:Pointsto.config ->
  ?options:Checkinsert.options ->
  ?typecheck:bool ->
  ?clone:bool ->
  ?devirt:bool ->
  ?checkopt:bool ->
  name:string ->
  string list ->
  built
(** Compile MiniC sources under a configuration.  For [Sva_safe] the full
    safety pipeline runs: optional function cloning (Section 4.8),
    points-to analysis, metapool inference, metapool type annotation
    extraction + trusted type checking (unless [~typecheck:false]),
    optional devirtualization, run-time check insertion, the optional
    check optimizations of Section 7.1.3, and IR re-verification.
    @raise Failure if the type checker rejects the annotations (a
    safety-checking-compiler bug). *)

val instantiate : ?sys:Sva_os.Svaos.t -> built -> Sva_interp.Interp.t
(** Load a built image into an SVM instance.  The SVA-OS mode follows the
    configuration (Native_inline for [Native], mediated otherwise); the
    run-time metapools are created and userspace is pre-registered in
    pools reachable from syscall arguments. *)
