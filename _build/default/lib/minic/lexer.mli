(** Hand-written MiniC lexer.

    Supports decimal, hexadecimal ([0x..]) and character literals, string
    literals with the usual escapes, [//] and [/* */] comments, and all
    MiniC keywords and operators. *)

exception Lex_error of string * Token.loc

val tokenize : string -> Token.spanned list
(** Tokenize a full source string; the last token is always [EOF].
    @raise Lex_error on malformed input. *)
