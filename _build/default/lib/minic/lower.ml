open Sva_ir

exception Lower_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Lower_error s)) fmt

(* ---------- type conversion ---------- *)

let rec conv_ty (t : Ast.mty) : Ty.t =
  match t with
  | Ast.Mvoid -> Ty.Void
  | Ast.Mint (w, _) -> Ty.Int w
  | Ast.Mptr Ast.Mvoid -> Ty.Ptr Ty.i8 (* void* is a byte pointer *)
  | Ast.Mptr t -> Ty.Ptr (conv_ty t)
  | Ast.Marr (e, n) -> Ty.Array (conv_ty e, n)
  | Ast.Mstruct s -> Ty.Struct s
  | Ast.Mfunptr (r, ps) -> Ty.Ptr (Ty.Func (conv_ty r, List.map conv_ty ps, false))

let is_mint = function Ast.Mint _ -> true | _ -> false
let is_mptr = function Ast.Mptr _ | Ast.Mfunptr _ -> true | _ -> false

let int_width = function
  | Ast.Mint (w, _) -> w
  | _ -> fail "expected integer type"

let is_signed = function Ast.Mint (_, s) -> s | _ -> true

(* Usual arithmetic conversions, simplified: promote to at least int;
   common width is the max; unsigned wins at equal width. *)
let arith_common a b =
  match (a, b) with
  | Ast.Mint (wa, sa), Ast.Mint (wb, sb) ->
      let w = max 32 (max wa wb) in
      let s =
        if wa = wb then sa && sb
        else if wa > wb then sa
        else sb
      in
      Ast.Mint (w, s)
  | _ -> fail "arith_common: not integers"

type fsig = { fs_ret : Ast.mty; fs_params : Ast.mty list; fs_varargs : bool }

type env = {
  m : Irmod.t;
  structs : (string, (Ast.mty * string) list) Hashtbl.t;
  globals : (string, Ast.mty) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
  mutable str_count : int;
}

type fenv = {
  env : env;
  bld : Builder.t;
  fsig : fsig;
  mutable scopes : (string * (Value.t * Ast.mty)) list list;
  mutable loops : (string * string) list;  (* (continue target, break target) *)
  mutable blk_count : int;
}

let fresh_label fe prefix =
  fe.blk_count <- fe.blk_count + 1;
  Printf.sprintf "%s.%d" prefix fe.blk_count

let push_scope fe = fe.scopes <- [] :: fe.scopes

let pop_scope fe =
  match fe.scopes with
  | _ :: rest -> fe.scopes <- rest
  | [] -> fail "scope underflow"

let bind fe name slot ty =
  match fe.scopes with
  | scope :: rest -> fe.scopes <- ((name, (slot, ty)) :: scope) :: rest
  | [] -> fail "no scope"

let lookup_local fe name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some x -> Some x
        | None -> go rest)
  in
  go fe.scopes

let field_ty env sname fname =
  match Hashtbl.find_opt env.structs sname with
  | None -> fail "unknown struct %s" sname
  | Some fields -> (
      match List.find_opt (fun (_, n) -> n = fname) fields with
      | Some (ty, _) -> ty
      | None -> fail "struct %s has no field %s" sname fname)

(* ---------- value coercion ---------- *)

let imm_of w n = Value.Imm (Ty.Int w, n)

(* Coerce a value of MiniC type [from_t] to MiniC type [to_t]. *)
let coerce fe (v, from_t) to_t =
  let b = fe.bld in
  if from_t = to_t then v
  else
    match (from_t, to_t) with
    | Ast.Mint (wf, sf), Ast.Mint (wt, _) ->
        if wf = wt then v
        else if wf > wt then Builder.b_cast b Instr.Trunc v (Ty.Int wt)
        else if sf then Builder.b_cast b Instr.Sext v (Ty.Int wt)
        else Builder.b_cast b Instr.Zext v (Ty.Int wt)
    | Ast.Mint (wf, sf), (Ast.Mptr _ | Ast.Mfunptr _) -> (
        match v with
        | Value.Imm (_, 0L) -> Value.Null (conv_ty to_t)
        | _ ->
            let v =
              if wf = 64 then v
              else if sf then Builder.b_cast b Instr.Sext v Ty.i64
              else Builder.b_cast b Instr.Zext v Ty.i64
            in
            Builder.b_cast b Instr.Inttoptr v (conv_ty to_t))
    | (Ast.Mptr _ | Ast.Mfunptr _), Ast.Mint (wt, _) ->
        let v = Builder.b_cast b Instr.Ptrtoint v Ty.i64 in
        if wt = 64 then v else Builder.b_cast b Instr.Trunc v (Ty.Int wt)
    | (Ast.Mptr _ | Ast.Mfunptr _), (Ast.Mptr _ | Ast.Mfunptr _) ->
        if Ty.equal (Value.ty v) (conv_ty to_t) then v
        else Builder.b_cast b Instr.Bitcast v (conv_ty to_t)
    | Ast.Marr (e, _), Ast.Mptr e' when e = e' -> v (* decayed already *)
    | _, Ast.Mvoid -> v
    | _ ->
        fail "cannot convert %s" (Ty.to_string (Value.ty v))

(* Truth value (i1) of a scalar. *)
let truth fe (v, t) =
  let b = fe.bld in
  match t with
  | Ast.Mint (w, _) -> Builder.b_icmp b Instr.Ne v (imm_of w 0L)
  | Ast.Mptr _ | Ast.Mfunptr _ ->
      Builder.b_icmp b Instr.Ne v (Value.Null (Value.ty v))
  | _ -> fail "condition is not a scalar"

(* An i1 widened back to int. *)
let bool_to_int fe v = Builder.b_cast fe.bld Instr.Zext v Ty.i32

let cint = Ast.Mint (32, true)
let clong = Ast.Mint (64, true)
let culong = Ast.Mint (64, false)

(* ---------- static expression typing (for sizeof(expr)) ---------- *)

let rec static_ty fe (e : Ast.expr) : Ast.mty =
  match e with
  | Ast.Eint _ -> cint
  | Ast.Estr _ -> Ast.Mptr (Ast.Mint (8, true))
  | Ast.Eid name -> (
      match lookup_local fe name with
      | Some (_, t) -> t
      | None -> (
          match Hashtbl.find_opt fe.env.globals name with
          | Some t -> t
          | None -> (
              match Hashtbl.find_opt fe.env.funcs name with
              | Some fs -> Ast.Mfunptr (fs.fs_ret, fs.fs_params)
              | None -> fail "sizeof: unknown identifier %s" name)))
  | Ast.Ederef e -> (
      match static_ty fe e with
      | Ast.Mptr t -> t
      | _ -> fail "sizeof: deref of non-pointer")
  | Ast.Eindex (e, _) -> (
      match static_ty fe e with
      | Ast.Mptr t | Ast.Marr (t, _) -> t
      | _ -> fail "sizeof: index of non-array")
  | Ast.Efield (e, f) -> (
      match static_ty fe e with
      | Ast.Mstruct s -> field_ty fe.env s f
      | _ -> fail "sizeof: field of non-struct")
  | Ast.Earrow (e, f) -> (
      match static_ty fe e with
      | Ast.Mptr (Ast.Mstruct s) -> field_ty fe.env s f
      | _ -> fail "sizeof: arrow of non-struct-pointer")
  | Ast.Ecast (t, _) -> t
  | Ast.Eaddr e -> Ast.Mptr (static_ty fe e)
  | Ast.Eun ((Ast.Uneg | Ast.Ubnot), e) -> static_ty fe e
  | Ast.Eun (Ast.Unot, _) -> cint
  | Ast.Ebin ((Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge
              | Ast.Bland | Ast.Blor), _, _) ->
      cint
  | Ast.Ebin ((Ast.Badd | Ast.Bsub), a, b) -> (
      let ta = static_ty fe a in
      if is_mptr ta || (match ta with Ast.Marr _ -> true | _ -> false) then
        match ta with Ast.Marr (e, _) -> Ast.Mptr e | t -> t
      else
        let tb = static_ty fe b in
        if is_mptr tb then tb else arith_common ta tb)
  | Ast.Ebin (_, a, b) -> arith_common (static_ty fe a) (static_ty fe b)
  | Ast.Esizeof_ty _ | Ast.Esizeof_expr _ -> culong
  | Ast.Econd (_, a, _) -> static_ty fe a
  | Ast.Eassign (lhs, _) | Ast.Eassign_op (_, lhs, _) -> static_ty fe lhs
  | Ast.Epreincr (_, e) | Ast.Epostincr (_, e) -> static_ty fe e
  | Ast.Ecall (name, _) -> (
      match Hashtbl.find_opt fe.env.funcs name with
      | Some fs -> fs.fs_ret
      | None -> fail "static_ty: unknown function %s" name)
  | Ast.Ecallptr (callee, _) -> (
      match static_ty fe callee with
      | Ast.Mfunptr (r, _) -> r
      | _ -> fail "static_ty: indirect call of non-function-pointer")

let sizeof_mty env t = Ty.sizeof env.m.Irmod.m_ctx (conv_ty t)

(* ---------- expressions ---------- *)

let rec lvalue fe (e : Ast.expr) : Value.t * Ast.mty =
  let b = fe.bld in
  match e with
  | Ast.Eid name -> (
      match lookup_local fe name with
      | Some (slot, t) -> (slot, t)
      | None -> (
          match Hashtbl.find_opt fe.env.globals name with
          | Some t -> (Value.Global (name, conv_ty t), t)
          | None -> fail "unknown identifier %s" name))
  | Ast.Ederef e ->
      let v, t = rvalue fe e in
      (match t with
      | Ast.Mptr inner -> (v, inner)
      | _ -> fail "dereference of non-pointer")
  | Ast.Eindex (arr, idx) -> (
      let iv, it = rvalue fe idx in
      if not (is_mint it) then fail "array index is not an integer";
      let iv64 = coerce fe (iv, it) clong in
      match addr_or_value fe arr with
      | `Addr (addr, Ast.Marr (elem, _)) ->
          (Builder.b_gep b addr [ Value.imm 0; iv64 ], elem)
      | `Addr (addr, Ast.Mptr elem) ->
          let p = Builder.b_load b addr in
          (Builder.b_gep b p [ iv64 ], elem)
      | `Val (v, Ast.Mptr elem) -> (Builder.b_gep b v [ iv64 ], elem)
      | _ -> fail "indexing a non-array")
  | Ast.Efield (se, fname) -> (
      let addr, t = lvalue fe se in
      match t with
      | Ast.Mstruct sname ->
          let fty = field_ty fe.env sname fname in
          let idx = Ty.field_index fe.env.m.Irmod.m_ctx sname fname in
          (Builder.b_gep b addr [ Value.imm 0; Value.imm idx ], fty)
      | _ -> fail "field access on non-struct")
  | Ast.Earrow (pe, fname) -> (
      let v, t = rvalue fe pe in
      match t with
      | Ast.Mptr (Ast.Mstruct sname) ->
          let fty = field_ty fe.env sname fname in
          let idx = Ty.field_index fe.env.m.Irmod.m_ctx sname fname in
          (Builder.b_gep b v [ Value.imm 0; Value.imm idx ], fty)
      | _ -> fail "-> on non-struct-pointer")
  | Ast.Ecast (t, e) ->
      (* (T* )lv as lvalue: reinterpret the address. *)
      let addr, _ = lvalue fe e in
      (Builder.b_cast b Instr.Bitcast addr (Ty.Ptr (conv_ty t)), t)
  | _ -> fail "expression is not an lvalue"

(* For Eindex bases: arrays must be addressed, pointers may be values. *)
and addr_or_value fe (e : Ast.expr) =
  match e with
  | Ast.Eid name -> (
      match lookup_local fe name with
      | Some (slot, (Ast.Marr _ as t)) -> `Addr (slot, t)
      | Some (slot, t) -> `Addr (slot, t)
      | None -> (
          match Hashtbl.find_opt fe.env.globals name with
          | Some t -> `Addr (Value.Global (name, conv_ty t), t)
          | None -> fail "unknown identifier %s" name))
  | Ast.Efield _ | Ast.Earrow _ | Ast.Ederef _ | Ast.Eindex _ -> (
      let addr, t = lvalue fe e in
      match t with Ast.Marr _ -> `Addr (addr, t) | _ -> `Addr (addr, t))
  | _ ->
      let v, t = rvalue fe e in
      `Val (v, t)

and load_lvalue fe (addr, t) =
  let b = fe.bld in
  match t with
  | Ast.Marr (elem, _) ->
      (* Array decay: the value of an array is a pointer to its head. *)
      (Builder.b_gep b addr [ Value.imm 0; Value.imm ~width:64 0 ], Ast.Mptr elem)
  | Ast.Mstruct _ -> fail "struct values cannot be loaded wholesale; use fields"
  | _ -> (Builder.b_load b addr, t)

and rvalue fe (e : Ast.expr) : Value.t * Ast.mty =
  let b = fe.bld in
  match e with
  | Ast.Eint n ->
      let t = if Int64.abs n > 0x7fffffffL then clong else cint in
      ((match t with Ast.Mint (w, _) -> imm_of w n | _ -> assert false), t)
  | Ast.Estr s ->
      let name = Printf.sprintf ".str.%d" fe.env.str_count in
      fe.env.str_count <- fe.env.str_count + 1;
      let data = s ^ "\000" in
      Irmod.add_global fe.env.m
        {
          Irmod.g_name = name;
          g_ty = Ty.Array (Ty.i8, String.length data);
          g_init = Irmod.Str data;
          g_const = true;
        };
      let base = Value.Global (name, Ty.Array (Ty.i8, String.length data)) in
      ( Builder.b_gep b base [ Value.imm 0; Value.imm ~width:64 0 ],
        Ast.Mptr (Ast.Mint (8, true)) )
  | Ast.Eid name -> (
      match lookup_local fe name with
      | Some (slot, t) -> load_lvalue fe (slot, t)
      | None -> (
          match Hashtbl.find_opt fe.env.globals name with
          | Some t -> load_lvalue fe (Value.Global (name, conv_ty t), t)
          | None -> (
              (* A bare function name is a function pointer. *)
              match Hashtbl.find_opt fe.env.funcs name with
              | Some fs ->
                  let fty =
                    Ty.Func (conv_ty fs.fs_ret, List.map conv_ty fs.fs_params, fs.fs_varargs)
                  in
                  (Value.Fn (name, fty), Ast.Mfunptr (fs.fs_ret, fs.fs_params))
              | None -> fail "unknown identifier %s" name)))
  | Ast.Ederef _ | Ast.Eindex _ | Ast.Efield _ | Ast.Earrow _ ->
      load_lvalue fe (lvalue fe e)
  | Ast.Eaddr inner ->
      let addr, t = lvalue fe inner in
      (addr, Ast.Mptr t)
  | Ast.Eun (op, e) -> (
      let v, t = rvalue fe e in
      match op with
      | Ast.Uneg ->
          if not (is_mint t) then fail "unary - on non-integer";
          let w = int_width t in
          (Builder.b_binop b Instr.Sub (imm_of w 0L) v, t)
      | Ast.Ubnot ->
          if not (is_mint t) then fail "~ on non-integer";
          let w = int_width t in
          (Builder.b_binop b Instr.Xor v (imm_of w (-1L)), t)
      | Ast.Unot ->
          let c = truth fe (v, t) in
          let inv = Builder.b_icmp b Instr.Eq c (Value.i1 false) in
          (bool_to_int fe inv, cint))
  | Ast.Ebin (Ast.Bland, _, _) | Ast.Ebin (Ast.Blor, _, _) ->
      lower_shortcircuit fe e
  | Ast.Ebin (op, a, bb) -> lower_binop fe op a bb
  | Ast.Eassign (lhs, rhs) ->
      let addr, lt = lvalue fe lhs in
      let rv, rt = rvalue fe rhs in
      let v = coerce fe (rv, rt) lt in
      Builder.b_store b v addr;
      (v, lt)
  | Ast.Eassign_op (op, lhs, rhs) ->
      let addr, lt = lvalue fe lhs in
      let cur = Builder.b_load b addr in
      let v, vt = lower_binop_values fe op (cur, lt) (rvalue fe rhs) in
      let v = coerce fe (v, vt) lt in
      Builder.b_store b v addr;
      (v, lt)
  | Ast.Epreincr (delta, lhs) ->
      let addr, lt = lvalue fe lhs in
      let cur = Builder.b_load b addr in
      let v, vt = lower_binop_values fe Ast.Badd (cur, lt) (Value.imm delta, cint) in
      let v = coerce fe (v, vt) lt in
      Builder.b_store b v addr;
      (v, lt)
  | Ast.Epostincr (delta, lhs) ->
      let addr, lt = lvalue fe lhs in
      let cur = Builder.b_load b addr in
      let v, vt = lower_binop_values fe Ast.Badd (cur, lt) (Value.imm delta, cint) in
      let v = coerce fe (v, vt) lt in
      Builder.b_store b v addr;
      (cur, lt)
  | Ast.Ecast (t, e) ->
      let v, vt = rvalue fe e in
      (coerce fe (v, vt) t, t)
  | Ast.Esizeof_ty t -> (imm_of 64 (Int64.of_int (sizeof_mty fe.env t)), culong)
  | Ast.Esizeof_expr e ->
      let t = static_ty fe e in
      (imm_of 64 (Int64.of_int (sizeof_mty fe.env t)), culong)
  | Ast.Econd (c, a, bb) -> lower_ternary fe c a bb
  | Ast.Ecall (name, args) -> (
      match lower_call fe name args with
      | Some r -> r
      | None -> fail "void value of call to %s used" name)
  | Ast.Ecallptr (callee, args) -> (
      match lower_callptr fe callee args with
      | Some r -> r
      | None -> fail "void value of indirect call used")

and lower_binop fe op a b = lower_binop_values fe op (rvalue fe a) (rvalue fe b)

and lower_binop_values fe op (va, ta) (vb, tb) =
  let b = fe.bld in
  let cmp pred_s pred_u =
    (* Comparisons. *)
    match (ta, tb) with
    | t1, t2 when is_mint t1 && is_mint t2 ->
        let ct = arith_common t1 t2 in
        let xa = coerce fe (va, ta) ct and xb = coerce fe (vb, tb) ct in
        let pred = if is_signed ct then pred_s else pred_u in
        let c = Builder.b_icmp b pred xa xb in
        (bool_to_int fe c, cint)
    | t1, t2 when is_mptr t1 && is_mptr t2 ->
        let xb = coerce fe (vb, tb) ta in
        let c = Builder.b_icmp b pred_u va xb in
        (bool_to_int fe c, cint)
    | t1, t2 when is_mptr t1 && is_mint t2 ->
        let xb = coerce fe (vb, tb) ta in
        let c = Builder.b_icmp b pred_u va xb in
        (bool_to_int fe c, cint)
    | t1, t2 when is_mint t1 && is_mptr t2 ->
        let xa = coerce fe (va, ta) tb in
        let c = Builder.b_icmp b pred_u xa vb in
        (bool_to_int fe c, cint)
    | _ -> fail "invalid comparison operands"
  in
  match op with
  | Ast.Beq -> cmp Instr.Eq Instr.Eq
  | Ast.Bne -> cmp Instr.Ne Instr.Ne
  | Ast.Blt -> cmp Instr.Slt Instr.Ult
  | Ast.Ble -> cmp Instr.Sle Instr.Ule
  | Ast.Bgt -> cmp Instr.Sgt Instr.Ugt
  | Ast.Bge -> cmp Instr.Sge Instr.Uge
  | Ast.Bland | Ast.Blor -> fail "short-circuit handled elsewhere"
  | Ast.Badd | Ast.Bsub
    when is_mptr ta && is_mint tb -> (
      (* Pointer arithmetic through getelementptr. *)
      match ta with
      | Ast.Mptr _ ->
          let idx = coerce fe ((vb : Value.t), tb) clong in
          let idx =
            if op = Ast.Bsub then
              Builder.b_binop b Instr.Sub (imm_of 64 0L) idx
            else idx
          in
          (Builder.b_gep b va [ idx ], ta)
      | _ -> fail "pointer arithmetic on function pointer")
  | Ast.Badd when is_mint ta && is_mptr tb ->
      let idx = coerce fe (va, ta) clong in
      (Builder.b_gep b vb [ idx ], tb)
  | Ast.Bsub when is_mptr ta && is_mptr tb -> (
      (* Pointer difference in elements. *)
      match ta with
      | Ast.Mptr elem ->
          let ia = Builder.b_cast b Instr.Ptrtoint va Ty.i64 in
          let ib = Builder.b_cast b Instr.Ptrtoint vb Ty.i64 in
          let d = Builder.b_binop b Instr.Sub ia ib in
          let sz = sizeof_mty fe.env elem in
          ( Builder.b_binop b Instr.Sdiv d (imm_of 64 (Int64.of_int sz)),
            clong )
      | _ -> fail "pointer difference on function pointers")
  | _ ->
      if not (is_mint ta && is_mint tb) then fail "arithmetic on non-integers";
      let ct = arith_common ta tb in
      let xa = coerce fe (va, ta) ct and xb = coerce fe (vb, tb) ct in
      let signed = is_signed ct in
      let instr_op =
        match op with
        | Ast.Badd -> Instr.Add
        | Ast.Bsub -> Instr.Sub
        | Ast.Bmul -> Instr.Mul
        | Ast.Bdiv -> if signed then Instr.Sdiv else Instr.Udiv
        | Ast.Bmod -> if signed then Instr.Srem else Instr.Urem
        | Ast.Band -> Instr.And
        | Ast.Bor -> Instr.Or
        | Ast.Bxor -> Instr.Xor
        | Ast.Bshl -> Instr.Shl
        | Ast.Bshr -> if signed then Instr.Ashr else Instr.Lshr
        | _ -> assert false
      in
      (Builder.b_binop b instr_op xa xb, ct)

and lower_shortcircuit fe e =
  (* a && b / a || b with control flow; result materialized via a slot so
     that mem2reg later builds the phi. *)
  let b = fe.bld in
  let slot = Builder.b_alloca b ~name:"sc" Ty.i32 in
  let rhs_l = fresh_label fe "sc.rhs"
  and done_l = fresh_label fe "sc.done" in
  (match e with
  | Ast.Ebin (Ast.Bland, x, y) ->
      let cx = truth fe (rvalue fe x) in
      Builder.b_store b (Value.imm 0) slot;
      Builder.b_br b cx rhs_l done_l;
      ignore (Builder.start_block b rhs_l);
      let cy = truth fe (rvalue fe y) in
      Builder.b_store b (bool_to_int fe cy) slot;
      Builder.b_jmp b done_l
  | Ast.Ebin (Ast.Blor, x, y) ->
      let cx = truth fe (rvalue fe x) in
      Builder.b_store b (Value.imm 1) slot;
      Builder.b_br b cx done_l rhs_l;
      ignore (Builder.start_block b rhs_l);
      let cy = truth fe (rvalue fe y) in
      Builder.b_store b (bool_to_int fe cy) slot;
      Builder.b_jmp b done_l
  | _ -> assert false);
  ignore (Builder.start_block b done_l);
  (Builder.b_load b slot, cint)

and lower_ternary fe c a bb =
  let b = fe.bld in
  (* Result type from static typing (arrays decay); the slot is allocated
     before the branch so it dominates both arms. *)
  let ta =
    match static_ty fe a with Ast.Marr (e, _) -> Ast.Mptr e | t -> t
  in
  let slot = Builder.b_alloca b ~name:"sel" (conv_ty ta) in
  let cv = truth fe (rvalue fe c) in
  let then_l = fresh_label fe "sel.then"
  and else_l = fresh_label fe "sel.else"
  and done_l = fresh_label fe "sel.done" in
  Builder.b_br b cv then_l else_l;
  ignore (Builder.start_block b then_l);
  let va, ta' = rvalue fe a in
  Builder.b_store b (coerce fe (va, ta') ta) slot;
  Builder.b_jmp b done_l;
  ignore (Builder.start_block b else_l);
  let vb, tb = rvalue fe bb in
  Builder.b_store b (coerce fe (vb, tb) ta) slot;
  Builder.b_jmp b done_l;
  ignore (Builder.start_block b done_l);
  (Builder.b_load b slot, ta)

and lower_args fe fs name args =
  let nparams = List.length fs.fs_params in
  if
    List.length args < nparams
    || ((not fs.fs_varargs) && List.length args > nparams)
  then fail "call to %s: wrong arity" name;
  List.mapi
    (fun i arg ->
      let v, t = rvalue fe arg in
      match List.nth_opt fs.fs_params i with
      | Some pt -> coerce fe (v, t) pt
      | None ->
          (* vararg tail: pass integers widened to 64 bits *)
          if is_mint t then coerce fe (v, t) clong else v)
    args

and is_intrinsic_name name =
  let pfx p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  pfx "llva_" || pfx "sva_" || pfx "pchk_"

and lower_call fe name args : (Value.t * Ast.mty) option =
  let b = fe.bld in
  match (name, args) with
  | "malloc", [ sz ] ->
      (* The explicit heap-allocation instruction of SVA-Core. *)
      let v, t = rvalue fe sz in
      let count = coerce fe (v, t) clong in
      Some (Builder.b_malloc b ~count Ty.i8, Ast.Mptr (Ast.Mint (8, true)))
  | "free", [ p ] ->
      let v, t = rvalue fe p in
      if not (is_mptr t) then fail "free of non-pointer";
      Builder.b_free b v;
      None
  | _ -> (
  match Hashtbl.find_opt fe.env.funcs name with
  | None -> (
      (* A call through a function-pointer variable parses as Ecall. *)
      match lookup_local fe name with
      | Some (_, Ast.Mfunptr _) -> lower_callptr fe (Ast.Eid name) args
      | _ -> (
          match Hashtbl.find_opt fe.env.globals name with
          | Some (Ast.Mfunptr _) -> lower_callptr fe (Ast.Eid name) args
          | _ -> fail "call to undeclared function %s" name))
  | Some fs ->
      let vargs = lower_args fe fs name args in
      let ret_ir = conv_ty fs.fs_ret in
      if is_intrinsic_name name then
        match Builder.b_intrinsic b ret_ir name vargs with
        | Some v -> Some (v, fs.fs_ret)
        | None -> None
      else (
        (* Build the callee from the collected signature rather than the
           module symbol table: the callee's definition may be lowered
           after this call site. *)
        let fty =
          Ty.Func (ret_ir, List.map conv_ty fs.fs_params, fs.fs_varargs)
        in
        match Builder.b_call b (Value.Fn (name, fty)) vargs with
        | Some v -> Some (v, fs.fs_ret)
        | None -> None))

and lower_callptr fe callee args : (Value.t * Ast.mty) option =
  let b = fe.bld in
  let cv, ct = rvalue fe callee in
  match ct with
  | Ast.Mfunptr (ret, params) ->
      let fs = { fs_ret = ret; fs_params = params; fs_varargs = false } in
      let vargs = lower_args fe fs "<indirect>" args in
      (match Builder.b_call b cv vargs with
      | Some v -> Some (v, ret)
      | None -> None)
  | _ -> fail "call through non-function-pointer"

(* ---------- statements ---------- *)

let block_terminated fe =
  match (Builder.current_block fe.bld).Func.term with
  | Instr.Unreachable -> false
  | _ -> true

let rec lower_stmt fe (s : Ast.stmt) =
  let b = fe.bld in
  if block_terminated fe then
    (* Dead code after return/break: park it in an unreachable block, which
       DCE deletes. *)
    ignore (Builder.start_block b (fresh_label fe "dead"));
  match s with
  | Ast.Sexpr e -> ignore_expr fe e
  | Ast.Sdecl (ty, name, init) ->
      let slot = Builder.b_alloca b ~name (conv_ty ty) in
      bind fe name slot ty;
      (match init with
      | Some e ->
          let v, t = rvalue fe e in
          Builder.b_store b (coerce fe (v, t) ty) slot
      | None -> ())
  | Ast.Sif (c, then_s, else_s) ->
      let cv = truth fe (rvalue fe c) in
      let then_l = fresh_label fe "if.then"
      and else_l = fresh_label fe "if.else"
      and done_l = fresh_label fe "if.done" in
      Builder.b_br b cv then_l (if else_s = [] then done_l else else_l);
      ignore (Builder.start_block b then_l);
      lower_block fe then_s;
      if not (block_terminated fe) then Builder.b_jmp b done_l;
      if else_s <> [] then begin
        ignore (Builder.start_block b else_l);
        lower_block fe else_s;
        if not (block_terminated fe) then Builder.b_jmp b done_l
      end;
      ignore (Builder.start_block b done_l)
  | Ast.Swhile (c, body) ->
      let head_l = fresh_label fe "while.head"
      and body_l = fresh_label fe "while.body"
      and done_l = fresh_label fe "while.done" in
      Builder.b_jmp b head_l;
      ignore (Builder.start_block b head_l);
      let cv = truth fe (rvalue fe c) in
      Builder.b_br b cv body_l done_l;
      ignore (Builder.start_block b body_l);
      fe.loops <- (head_l, done_l) :: fe.loops;
      lower_block fe body;
      fe.loops <- List.tl fe.loops;
      if not (block_terminated fe) then Builder.b_jmp b head_l;
      ignore (Builder.start_block b done_l)
  | Ast.Sdo (body, c) ->
      let body_l = fresh_label fe "do.body"
      and cond_l = fresh_label fe "do.cond"
      and done_l = fresh_label fe "do.done" in
      Builder.b_jmp b body_l;
      ignore (Builder.start_block b body_l);
      fe.loops <- (cond_l, done_l) :: fe.loops;
      lower_block fe body;
      fe.loops <- List.tl fe.loops;
      if not (block_terminated fe) then Builder.b_jmp b cond_l;
      ignore (Builder.start_block b cond_l);
      let cv = truth fe (rvalue fe c) in
      Builder.b_br b cv body_l done_l;
      ignore (Builder.start_block b done_l)
  | Ast.Sfor (init, cond, step, body) ->
      push_scope fe;
      (match init with Some s -> lower_stmt fe s | None -> ());
      let head_l = fresh_label fe "for.head"
      and body_l = fresh_label fe "for.body"
      and step_l = fresh_label fe "for.step"
      and done_l = fresh_label fe "for.done" in
      Builder.b_jmp b head_l;
      ignore (Builder.start_block b head_l);
      (match cond with
      | Some c ->
          let cv = truth fe (rvalue fe c) in
          Builder.b_br b cv body_l done_l
      | None -> Builder.b_jmp b body_l);
      ignore (Builder.start_block b body_l);
      fe.loops <- (step_l, done_l) :: fe.loops;
      lower_block fe body;
      fe.loops <- List.tl fe.loops;
      if not (block_terminated fe) then Builder.b_jmp b step_l;
      ignore (Builder.start_block b step_l);
      (match step with Some e -> ignore_expr fe e | None -> ());
      Builder.b_jmp b head_l;
      ignore (Builder.start_block b done_l);
      pop_scope fe
  | Ast.Sreturn None ->
      if fe.fsig.fs_ret <> Ast.Mvoid then fail "return; in non-void function";
      Builder.b_ret b None
  | Ast.Sreturn (Some e) ->
      let v, t = rvalue fe e in
      Builder.b_ret b (Some (coerce fe (v, t) fe.fsig.fs_ret))
  | Ast.Sbreak -> (
      match fe.loops with
      | (_, done_l) :: _ -> Builder.b_jmp b done_l
      | [] -> fail "break outside loop")
  | Ast.Scontinue -> (
      match fe.loops with
      | (cont_l, _) :: _ -> Builder.b_jmp b cont_l
      | [] -> fail "continue outside loop")
  | Ast.Sblock body ->
      push_scope fe;
      lower_block fe body;
      pop_scope fe

and ignore_expr fe e =
  match e with
  | Ast.Ecall (name, args) -> ignore (lower_call fe name args)
  | Ast.Ecallptr (callee, args) -> ignore (lower_callptr fe callee args)
  | _ -> ignore (rvalue fe e)

and lower_block fe stmts = List.iter (lower_stmt fe) stmts

(* ---------- top level ---------- *)

let conv_ginit env (gty : Ast.mty) (gi : Ast.ginit_ast) : Irmod.ginit =
  match (gi, gty) with
  | Ast.Gnone, _ -> Irmod.Zero
  | Ast.Gint n, Ast.Mint (w, _) -> Irmod.Ints (Ty.Int w, [ n ])
  | Ast.Gint 0L, (Ast.Mptr _ | Ast.Mfunptr _) -> Irmod.Zero
  | Ast.Gint _, _ -> fail "integer initializer for non-integer global"
  | Ast.Gstr s, Ast.Marr (Ast.Mint (8, _), n) ->
      let data = s ^ "\000" in
      if String.length data > n then fail "string initializer too long";
      Irmod.Str (data ^ String.make (n - String.length data) '\000')
  | Ast.Gstr _, _ -> fail "string initializer for non-char-array"
  | Ast.Gints ns, Ast.Marr (Ast.Mint (w, _), n) ->
      if List.length ns > n then fail "too many array initializer elements";
      let pad = n - List.length ns in
      Irmod.Ints (Ty.Int w, ns @ List.init pad (fun _ -> 0L))
  | Ast.Gints _, _ -> fail "array initializer for non-int-array"
  | Ast.Gsyms syms, (Ast.Marr _ | Ast.Mptr _ | Ast.Mfunptr _) ->
      ignore env;
      Irmod.Ptrs syms
  | Ast.Gsyms _, _ -> fail "symbol initializer for non-pointer global"

let lower_func env (fn : Ast.func) =
  let attrs =
    List.map
      (function
        | Ast.Anoanalyze -> Func.Noanalyze
        | Ast.Acallsig -> Func.Callsig_assert
        | Ast.Akernel_entry -> Func.Kernel_entry)
      fn.Ast.fn_attrs
  in
  let params = List.map (fun (t, n) -> (n, conv_ty t)) fn.Ast.fn_params in
  let f = Func.create ~attrs fn.Ast.fn_name (conv_ty fn.Ast.fn_ret) params in
  Irmod.add_func env.m f;
  let bld = Builder.create env.m f in
  let fe =
    {
      env;
      bld;
      fsig =
        {
          fs_ret = fn.Ast.fn_ret;
          fs_params = List.map fst fn.Ast.fn_params;
          fs_varargs = false;
        };
      scopes = [ [] ];
      loops = [];
      blk_count = 0;
    }
  in
  ignore (Builder.start_block bld "entry");
  (* Spill parameters into slots so they are ordinary mutable locals. *)
  List.iteri
    (fun i (t, name) ->
      let slot = Builder.b_alloca bld ~name (conv_ty t) in
      Builder.b_store bld (Func.param_value f i) slot;
      bind fe name slot t)
    fn.Ast.fn_params;
  lower_block fe fn.Ast.fn_body;
  (* Hoist every alloca to the head of the entry block (as production C
     front ends do): slot lifetimes span the whole frame, loop bodies do
     not grow the stack, and every slot dominates all of its uses. *)
  (match f.Func.f_blocks with
  | entry_blk :: _ ->
      let allocas = ref [] in
      List.iter
        (fun (blk : Func.block) ->
          let keep, moved =
            List.partition
              (fun (i : Instr.t) ->
                match i.Instr.kind with Instr.Alloca _ -> false | _ -> true)
              blk.Func.insns
          in
          allocas := !allocas @ moved;
          blk.Func.insns <- keep)
        f.Func.f_blocks;
      entry_blk.Func.insns <- !allocas @ entry_blk.Func.insns
  | [] -> ());
  if not (block_terminated fe) then
    if fn.Ast.fn_ret = Ast.Mvoid then Builder.b_ret bld None
    else
      (* Falling off the end of a non-void function returns zero. *)
      Builder.b_ret bld
        (Some
           (match conv_ty fn.Ast.fn_ret with
           | Ty.Int w -> imm_of w 0L
           | t -> Value.Null t))

let compile_program ~name (units : Ast.program list) =
  let m = Irmod.create name in
  let env =
    {
      m;
      structs = Hashtbl.create 32;
      globals = Hashtbl.create 64;
      funcs = Hashtbl.create 64;
      str_count = 0;
    }
  in
  let tops = List.concat units in
  (* Pass 1: structs, globals, signatures. *)
  List.iter
    (function
      | Ast.Tstruct (sname, fields) ->
          Hashtbl.replace env.structs sname fields;
          ignore
            (Ty.define_struct m.Irmod.m_ctx sname
               (List.map (fun (t, n) -> (n, conv_ty t)) fields))
      | Ast.Tglobal { gty; gname; ginit = _; gconst = _ } ->
          Hashtbl.replace env.globals gname gty
      | Ast.Textern { ename; eret; eparams; evarargs } ->
          Hashtbl.replace env.funcs ename
            { fs_ret = eret; fs_params = eparams; fs_varargs = evarargs }
      | Ast.Tfunc fn ->
          Hashtbl.replace env.funcs fn.Ast.fn_name
            {
              fs_ret = fn.Ast.fn_ret;
              fs_params = List.map fst fn.Ast.fn_params;
              fs_varargs = false;
            })
    tops;
  (* Pass 2: global definitions (after structs exist for sizeof). *)
  List.iter
    (function
      | Ast.Tglobal { gty; gname; ginit; gconst } ->
          Irmod.add_global m
            {
              Irmod.g_name = gname;
              g_ty = conv_ty gty;
              g_init = conv_ginit env gty ginit;
              g_const = gconst;
            }
      | Ast.Textern { ename; eret; eparams; evarargs } ->
          Irmod.declare_extern m ename
            (Ty.Func (conv_ty eret, List.map conv_ty eparams, evarargs))
      | Ast.Tstruct _ | Ast.Tfunc _ -> ())
    tops;
  (* Pass 3: function bodies. *)
  List.iter (function Ast.Tfunc fn -> lower_func env fn | _ -> ()) tops;
  Verify.check m;
  m

let compile_strings ~name srcs =
  compile_program ~name (List.map Parser.parse srcs)

let compile_string ~name src = compile_strings ~name [ src ]
