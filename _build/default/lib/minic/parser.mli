(** Recursive-descent parser for MiniC.

    Grammar notes: no typedefs (types always start with a keyword, which
    keeps cast parsing unambiguous); one declarator per declaration;
    function pointers use the [ret ( * name )(params)] form; unions must be
    rewritten as structs (the Section 6.3 porting change is thereby
    enforced by the front end, and the parser says so in its error). *)

exception Parse_error of string * Token.loc

val parse : string -> Ast.program
(** Parse a full MiniC source string.
    @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)
