(** Tokens of the MiniC language — the C-like front-end language in which
    the kernel subsystems are written (standing in for the paper's "full
    generality of C code", Section 1). *)

type t =
  | INT_LIT of int64
  | STR_LIT of string
  | CHAR_LIT of char
  | IDENT of string
  (* keywords *)
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_UNSIGNED | KW_SIGNED
  | KW_STRUCT | KW_UNION
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_DO
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_SIZEOF | KW_EXTERN | KW_STATIC | KW_CONST
  | KW_NOANALYZE  (** [__noanalyze]: skip the safety-checking compiler *)
  | KW_CALLSIG  (** [__callsig_assert]: Section 4.8 signature assertion *)
  | KW_KERNEL_ENTRY  (** [__kernel_entry]: boot entry, registers globals *)
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW | ELLIPSIS
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LSHIFT | RSHIFT
  | LT | GT | LE | GE | EQEQ | NEQ
  | AMPAMP | PIPEPIPE
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | AMPEQ | PIPEEQ | CARETEQ
  | LSHIFTEQ | RSHIFTEQ
  | QUESTION | COLON
  | PLUSPLUS | MINUSMINUS
  | EOF

type loc = { line : int; col : int }

type spanned = { tok : t; loc : loc }

val to_string : t -> string
