exception Lex_error of string * Token.loc

let keywords =
  [
    ("void", Token.KW_VOID); ("char", Token.KW_CHAR); ("short", Token.KW_SHORT);
    ("int", Token.KW_INT); ("long", Token.KW_LONG);
    ("unsigned", Token.KW_UNSIGNED); ("signed", Token.KW_SIGNED);
    ("struct", Token.KW_STRUCT); ("union", Token.KW_UNION);
    ("if", Token.KW_IF); ("else", Token.KW_ELSE); ("while", Token.KW_WHILE);
    ("for", Token.KW_FOR); ("do", Token.KW_DO); ("return", Token.KW_RETURN);
    ("break", Token.KW_BREAK); ("continue", Token.KW_CONTINUE);
    ("sizeof", Token.KW_SIZEOF); ("extern", Token.KW_EXTERN);
    ("static", Token.KW_STATIC); ("const", Token.KW_CONST);
    ("__noanalyze", Token.KW_NOANALYZE); ("__callsig_assert", Token.KW_CALLSIG);
    ("__kernel_entry", Token.KW_KERNEL_ENTRY);
  ]

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let loc st = { Token.line = st.line; col = st.col }

let error st msg = raise (Lex_error (msg, loc st))

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident c = is_ident_start c || is_digit c

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            close ()
        | None, _ -> error st "unterminated comment"
      in
      close ();
      skip_ws_and_comments st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match List.assoc_opt s keywords with
  | Some kw -> kw
  | None -> Token.IDENT s

let lex_number st =
  let start = st.pos in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    let s = String.sub st.src start (st.pos - start) in
    while (match peek st with Some ('u' | 'U' | 'l' | 'L') -> true | _ -> false) do
      advance st
    done;
    Token.INT_LIT (Int64.of_string s)
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    (* Optional UL / L / U suffixes, ignored (widths come from context). *)
    while (match peek st with Some ('u' | 'U' | 'l' | 'L') -> true | _ -> false) do
      advance st
    done;
    let rec strip s =
      let n = String.length s in
      if n > 0 && (match s.[n - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false)
      then strip (String.sub s 0 (n - 1))
      else s
    in
    let s = strip (String.sub st.src start (st.pos - start)) in
    Token.INT_LIT (Int64.of_string s)
  end

let escape st c =
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | _ -> error st (Printf.sprintf "unknown escape \\%c" c)

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' ->
        advance st;
        Token.STR_LIT (Buffer.contents buf)
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some c ->
            Buffer.add_char buf (escape st c);
            advance st;
            go ()
        | None -> error st "unterminated string")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
    | None -> error st "unterminated string"
  in
  go ()

let lex_char st =
  advance st;
  let c =
    match peek st with
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some e ->
            advance st;
            escape st e
        | None -> error st "unterminated char literal")
    | Some c ->
        advance st;
        c
    | None -> error st "unterminated char literal"
  in
  (match peek st with
  | Some '\'' -> advance st
  | _ -> error st "unterminated char literal");
  Token.CHAR_LIT c

let lex_punct st =
  let c = match peek st with Some c -> c | None -> error st "eof" in
  let c2 = peek2 st in
  let two tok =
    advance st;
    advance st;
    tok
  in
  let three tok =
    advance st;
    advance st;
    advance st;
    tok
  in
  let one tok =
    advance st;
    tok
  in
  match (c, c2) with
  | '.', Some '.'
    when st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '.' ->
      three Token.ELLIPSIS
  | '-', Some '>' -> two Token.ARROW
  | '-', Some '-' -> two Token.MINUSMINUS
  | '-', Some '=' -> two Token.MINUSEQ
  | '+', Some '+' -> two Token.PLUSPLUS
  | '+', Some '=' -> two Token.PLUSEQ
  | '*', Some '=' -> two Token.STAREQ
  | '/', Some '=' -> two Token.SLASHEQ
  | '&', Some '&' -> two Token.AMPAMP
  | '&', Some '=' -> two Token.AMPEQ
  | '|', Some '|' -> two Token.PIPEPIPE
  | '|', Some '=' -> two Token.PIPEEQ
  | '^', Some '=' -> two Token.CARETEQ
  | '<', Some '<' ->
      if st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '=' then
        three Token.LSHIFTEQ
      else two Token.LSHIFT
  | '>', Some '>' ->
      if st.pos + 2 < String.length st.src && st.src.[st.pos + 2] = '=' then
        three Token.RSHIFTEQ
      else two Token.RSHIFT
  | '<', Some '=' -> two Token.LE
  | '>', Some '=' -> two Token.GE
  | '=', Some '=' -> two Token.EQEQ
  | '!', Some '=' -> two Token.NEQ
  | '(', _ -> one Token.LPAREN
  | ')', _ -> one Token.RPAREN
  | '{', _ -> one Token.LBRACE
  | '}', _ -> one Token.RBRACE
  | '[', _ -> one Token.LBRACKET
  | ']', _ -> one Token.RBRACKET
  | ';', _ -> one Token.SEMI
  | ',', _ -> one Token.COMMA
  | '.', _ -> one Token.DOT
  | '+', _ -> one Token.PLUS
  | '-', _ -> one Token.MINUS
  | '*', _ -> one Token.STAR
  | '/', _ -> one Token.SLASH
  | '%', _ -> one Token.PERCENT
  | '&', _ -> one Token.AMP
  | '|', _ -> one Token.PIPE
  | '^', _ -> one Token.CARET
  | '~', _ -> one Token.TILDE
  | '!', _ -> one Token.BANG
  | '<', _ -> one Token.LT
  | '>', _ -> one Token.GT
  | '=', _ -> one Token.ASSIGN
  | '?', _ -> one Token.QUESTION
  | ':', _ -> one Token.COLON
  | _ -> error st (Printf.sprintf "unexpected character %C" c)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let out = ref [] in
  let rec go () =
    skip_ws_and_comments st;
    let l = loc st in
    match peek st with
    | None -> out := { Token.tok = Token.EOF; loc = l } :: !out
    | Some c ->
        let tok =
          if is_ident_start c then lex_ident st
          else if is_digit c then lex_number st
          else if c = '"' then lex_string st
          else if c = '\'' then lex_char st
          else lex_punct st
        in
        out := { Token.tok; loc = l } :: !out;
        go ()
  in
  go ();
  List.rev !out
