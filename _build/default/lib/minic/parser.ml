exception Parse_error of string * Token.loc

type state = { toks : Token.spanned array; mutable pos : int }

let cur st = st.toks.(st.pos).Token.tok
let cur_loc st = st.toks.(st.pos).Token.loc

let peek_at st n =
  if st.pos + n < Array.length st.toks then st.toks.(st.pos + n).Token.tok
  else Token.EOF

let err st msg =
  raise
    (Parse_error
       (Printf.sprintf "%s (found '%s')" msg (Token.to_string (cur st)), cur_loc st))

let advance st = if st.pos + 1 < Array.length st.toks then st.pos <- st.pos + 1

let eat st tok =
  if cur st = tok then advance st
  else err st (Printf.sprintf "expected '%s'" (Token.to_string tok))

let eat_ident st =
  match cur st with
  | Token.IDENT s ->
      advance st;
      s
  | _ -> err st "expected identifier"

(* ---------- types ---------- *)

let starts_type = function
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT
  | Token.KW_LONG | Token.KW_UNSIGNED | Token.KW_SIGNED | Token.KW_STRUCT
  | Token.KW_UNION | Token.KW_CONST ->
      true
  | _ -> false

(* base-type := const? (unsigned|signed)? (void|char|short|int|long|struct id) *)
let parse_base_type st : Ast.mty =
  if cur st = Token.KW_CONST then advance st;
  let signed =
    match cur st with
    | Token.KW_UNSIGNED ->
        advance st;
        false
    | Token.KW_SIGNED ->
        advance st;
        true
    | _ -> true
  in
  match cur st with
  | Token.KW_VOID ->
      advance st;
      Ast.Mvoid
  | Token.KW_CHAR ->
      advance st;
      Ast.Mint (8, signed)
  | Token.KW_SHORT ->
      advance st;
      if cur st = Token.KW_INT then advance st;
      Ast.Mint (16, signed)
  | Token.KW_INT ->
      advance st;
      Ast.Mint (32, signed)
  | Token.KW_LONG ->
      advance st;
      if cur st = Token.KW_LONG then advance st;
      if cur st = Token.KW_INT then advance st;
      Ast.Mint (64, signed)
  | Token.KW_UNION ->
      err st
        "unions are not supported: rewrite as an explicit struct (the \
         Section 6.3 porting change)"
  | Token.KW_STRUCT ->
      advance st;
      let name = eat_ident st in
      Ast.Mstruct name
  | _ ->
      if signed then err st "expected type"
      else (* bare 'unsigned' means unsigned int *) Ast.Mint (32, false)

let rec parse_stars st ty =
  if cur st = Token.STAR then begin
    advance st;
    (* const pointers: 'const' after '*' is accepted and ignored *)
    if cur st = Token.KW_CONST then advance st;
    parse_stars st (Ast.Mptr ty)
  end
  else ty

(* Type without declarator, e.g. in casts and sizeof: base stars,
   optionally an abstract function-pointer type. *)
let parse_type st =
  let base = parse_base_type st in
  let ty = parse_stars st base in
  if cur st = Token.LPAREN && peek_at st 1 = Token.STAR && peek_at st 2 = Token.RPAREN
  then begin
    (* ret ( * )(params) — abstract function-pointer type *)
    advance st;
    advance st;
    advance st;
    eat st Token.LPAREN;
    let params = ref [] in
    if cur st <> Token.RPAREN then begin
      let rec go () =
        let pty = parse_base_type st in
        let pty = parse_stars st pty in
        params := pty :: !params;
        if cur st = Token.COMMA then begin
          advance st;
          go ()
        end
      in
      go ()
    end;
    eat st Token.RPAREN;
    Ast.Mfunptr (ty, List.rev !params)
  end
  else ty

(* declarator := stars (name | ( * name )(params)) array-suffix*
   Returns (type, name). *)
let parse_declarator st base =
  let ty = parse_stars st base in
  if cur st = Token.LPAREN then begin
    (* function pointer declarator: ( * name )(param-types) *)
    advance st;
    eat st Token.STAR;
    let name = eat_ident st in
    eat st Token.RPAREN;
    eat st Token.LPAREN;
    let params = ref [] in
    if cur st <> Token.RPAREN then begin
      let rec go () =
        let pty = parse_base_type st in
        let pty = parse_stars st pty in
        (* parameter name is optional in a function-pointer type *)
        (match cur st with Token.IDENT _ -> advance st | _ -> ());
        params := pty :: !params;
        if cur st = Token.COMMA then begin
          advance st;
          go ()
        end
      in
      go ()
    end;
    eat st Token.RPAREN;
    (Ast.Mfunptr (ty, List.rev !params), name)
  end
  else begin
    let name = eat_ident st in
    let rec arrays ty =
      if cur st = Token.LBRACKET then begin
        advance st;
        let n =
          match cur st with
          | Token.INT_LIT n ->
              advance st;
              Int64.to_int n
          | _ -> err st "expected array size"
        in
        eat st Token.RBRACKET;
        Ast.Marr (arrays ty, n)
      end
      else ty
    in
    (arrays ty, name)
  end

(* ---------- expressions ---------- *)

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  match cur st with
  | Token.ASSIGN ->
      advance st;
      Ast.Eassign (lhs, parse_assign st)
  | Token.PLUSEQ ->
      advance st;
      Ast.Eassign_op (Ast.Badd, lhs, parse_assign st)
  | Token.MINUSEQ ->
      advance st;
      Ast.Eassign_op (Ast.Bsub, lhs, parse_assign st)
  | Token.STAREQ ->
      advance st;
      Ast.Eassign_op (Ast.Bmul, lhs, parse_assign st)
  | Token.SLASHEQ ->
      advance st;
      Ast.Eassign_op (Ast.Bdiv, lhs, parse_assign st)
  | Token.AMPEQ ->
      advance st;
      Ast.Eassign_op (Ast.Band, lhs, parse_assign st)
  | Token.PIPEEQ ->
      advance st;
      Ast.Eassign_op (Ast.Bor, lhs, parse_assign st)
  | Token.CARETEQ ->
      advance st;
      Ast.Eassign_op (Ast.Bxor, lhs, parse_assign st)
  | Token.LSHIFTEQ ->
      advance st;
      Ast.Eassign_op (Ast.Bshl, lhs, parse_assign st)
  | Token.RSHIFTEQ ->
      advance st;
      Ast.Eassign_op (Ast.Bshr, lhs, parse_assign st)
  | _ -> lhs

and parse_cond st =
  let c = parse_binary st 0 in
  if cur st = Token.QUESTION then begin
    advance st;
    let a = parse_expr st in
    eat st Token.COLON;
    let b = parse_cond st in
    Ast.Econd (c, a, b)
  end
  else c

and binop_levels : (Token.t * Ast.binop) list list =
  [
    [ (Token.PIPEPIPE, Ast.Blor) ];
    [ (Token.AMPAMP, Ast.Bland) ];
    [ (Token.PIPE, Ast.Bor) ];
    [ (Token.CARET, Ast.Bxor) ];
    [ (Token.AMP, Ast.Band) ];
    [ (Token.EQEQ, Ast.Beq); (Token.NEQ, Ast.Bne) ];
    [ (Token.LT, Ast.Blt); (Token.LE, Ast.Ble); (Token.GT, Ast.Bgt); (Token.GE, Ast.Bge) ];
    [ (Token.LSHIFT, Ast.Bshl); (Token.RSHIFT, Ast.Bshr) ];
    [ (Token.PLUS, Ast.Badd); (Token.MINUS, Ast.Bsub) ];
    [ (Token.STAR, Ast.Bmul); (Token.SLASH, Ast.Bdiv); (Token.PERCENT, Ast.Bmod) ];
  ]

and parse_binary st level =
  if level >= List.length binop_levels then parse_unary st
  else begin
    let ops = List.nth binop_levels level in
    let lhs = ref (parse_binary st (level + 1)) in
    let rec go () =
      match List.assoc_opt (cur st) ops with
      | Some op ->
          advance st;
          let rhs = parse_binary st (level + 1) in
          lhs := Ast.Ebin (op, !lhs, rhs);
          go ()
      | None -> ()
    in
    go ();
    !lhs
  end

and parse_unary st =
  match cur st with
  | Token.MINUS ->
      advance st;
      Ast.Eun (Ast.Uneg, parse_unary st)
  | Token.BANG ->
      advance st;
      Ast.Eun (Ast.Unot, parse_unary st)
  | Token.TILDE ->
      advance st;
      Ast.Eun (Ast.Ubnot, parse_unary st)
  | Token.STAR ->
      advance st;
      Ast.Ederef (parse_unary st)
  | Token.AMP ->
      advance st;
      Ast.Eaddr (parse_unary st)
  | Token.PLUSPLUS ->
      advance st;
      Ast.Epreincr (1, parse_unary st)
  | Token.MINUSMINUS ->
      advance st;
      Ast.Epreincr (-1, parse_unary st)
  | Token.KW_SIZEOF ->
      advance st;
      eat st Token.LPAREN;
      if starts_type (cur st) then begin
        let ty = parse_type st in
        eat st Token.RPAREN;
        Ast.Esizeof_ty ty
      end
      else begin
        let e = parse_expr st in
        eat st Token.RPAREN;
        Ast.Esizeof_expr e
      end
  | Token.LPAREN when starts_type (peek_at st 1) ->
      advance st;
      let ty = parse_type st in
      eat st Token.RPAREN;
      Ast.Ecast (ty, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let rec go () =
    match cur st with
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        eat st Token.RBRACKET;
        e := Ast.Eindex (!e, idx);
        go ()
    | Token.DOT ->
        advance st;
        let f = eat_ident st in
        e := Ast.Efield (!e, f);
        go ()
    | Token.ARROW ->
        advance st;
        let f = eat_ident st in
        e := Ast.Earrow (!e, f);
        go ()
    | Token.LPAREN ->
        advance st;
        let args = ref [] in
        if cur st <> Token.RPAREN then begin
          let rec args_go () =
            args := parse_assign st :: !args;
            if cur st = Token.COMMA then begin
              advance st;
              args_go ()
            end
          in
          args_go ()
        end;
        eat st Token.RPAREN;
        (e :=
           match !e with
           | Ast.Eid name -> Ast.Ecall (name, List.rev !args)
           | callee -> Ast.Ecallptr (callee, List.rev !args));
        go ()
    | Token.PLUSPLUS ->
        advance st;
        e := Ast.Epostincr (1, !e);
        go ()
    | Token.MINUSMINUS ->
        advance st;
        e := Ast.Epostincr (-1, !e);
        go ()
    | _ -> ()
  in
  go ();
  !e

and parse_primary st =
  match cur st with
  | Token.INT_LIT n ->
      advance st;
      Ast.Eint n
  | Token.CHAR_LIT c ->
      advance st;
      Ast.Eint (Int64.of_int (Char.code c))
  | Token.STR_LIT s ->
      advance st;
      Ast.Estr s
  | Token.IDENT name ->
      advance st;
      Ast.Eid name
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      eat st Token.RPAREN;
      e
  | _ -> err st "expected expression"

(* ---------- statements ---------- *)

let rec parse_stmt st : Ast.stmt =
  match cur st with
  | Token.LBRACE ->
      advance st;
      let body = parse_stmts st in
      eat st Token.RBRACE;
      Ast.Sblock body
  | Token.KW_IF ->
      advance st;
      eat st Token.LPAREN;
      let c = parse_expr st in
      eat st Token.RPAREN;
      let then_s = parse_stmt_as_list st in
      let else_s =
        if cur st = Token.KW_ELSE then begin
          advance st;
          parse_stmt_as_list st
        end
        else []
      in
      Ast.Sif (c, then_s, else_s)
  | Token.KW_WHILE ->
      advance st;
      eat st Token.LPAREN;
      let c = parse_expr st in
      eat st Token.RPAREN;
      Ast.Swhile (c, parse_stmt_as_list st)
  | Token.KW_DO ->
      advance st;
      let body = parse_stmt_as_list st in
      eat st Token.KW_WHILE;
      eat st Token.LPAREN;
      let c = parse_expr st in
      eat st Token.RPAREN;
      eat st Token.SEMI;
      Ast.Sdo (body, c)
  | Token.KW_FOR ->
      advance st;
      eat st Token.LPAREN;
      let init =
        if cur st = Token.SEMI then None
        else if starts_type (cur st) then Some (parse_decl_stmt st ~consume_semi:false)
        else Some (Ast.Sexpr (parse_expr st))
      in
      eat st Token.SEMI;
      let cond = if cur st = Token.SEMI then None else Some (parse_expr st) in
      eat st Token.SEMI;
      let step = if cur st = Token.RPAREN then None else Some (parse_expr st) in
      eat st Token.RPAREN;
      Ast.Sfor (init, cond, step, parse_stmt_as_list st)
  | Token.KW_RETURN ->
      advance st;
      if cur st = Token.SEMI then begin
        advance st;
        Ast.Sreturn None
      end
      else begin
        let e = parse_expr st in
        eat st Token.SEMI;
        Ast.Sreturn (Some e)
      end
  | Token.KW_BREAK ->
      advance st;
      eat st Token.SEMI;
      Ast.Sbreak
  | Token.KW_CONTINUE ->
      advance st;
      eat st Token.SEMI;
      Ast.Scontinue
  | t when starts_type t -> parse_decl_stmt st ~consume_semi:true
  | _ ->
      let e = parse_expr st in
      eat st Token.SEMI;
      Ast.Sexpr e

and parse_decl_stmt st ~consume_semi =
  let base = parse_base_type st in
  let ty, name = parse_declarator st base in
  let init =
    if cur st = Token.ASSIGN then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  if consume_semi then eat st Token.SEMI;
  Ast.Sdecl (ty, name, init)

and parse_stmt_as_list st =
  match parse_stmt st with Ast.Sblock body -> body | s -> [ s ]

and parse_stmts st =
  let out = ref [] in
  while cur st <> Token.RBRACE && cur st <> Token.EOF do
    out := parse_stmt st :: !out
  done;
  List.rev !out

(* ---------- top level ---------- *)

let parse_params st =
  eat st Token.LPAREN;
  if cur st = Token.KW_VOID && peek_at st 1 = Token.RPAREN then begin
    advance st;
    advance st;
    ([], false)
  end
  else begin
    let params = ref [] and varargs = ref false in
    if cur st <> Token.RPAREN then begin
      let rec go () =
        if cur st = Token.ELLIPSIS then begin
          advance st;
          varargs := true
        end
        else begin
          let base = parse_base_type st in
          let ty, name = parse_declarator st base in
          params := (ty, name) :: !params;
          if cur st = Token.COMMA then begin
            advance st;
            go ()
          end
        end
      in
      go ()
    end;
    eat st Token.RPAREN;
    (List.rev !params, !varargs)
  end

let parse_global_init st : Ast.ginit_ast =
  if cur st <> Token.ASSIGN then Ast.Gnone
  else begin
    advance st;
    match cur st with
    | Token.INT_LIT n ->
        advance st;
        Ast.Gint n
    | Token.MINUS -> (
        advance st;
        match cur st with
        | Token.INT_LIT n ->
            advance st;
            Ast.Gint (Int64.neg n)
        | _ -> err st "expected integer after '-'")
    | Token.CHAR_LIT c ->
        advance st;
        Ast.Gint (Int64.of_int (Char.code c))
    | Token.STR_LIT s ->
        advance st;
        Ast.Gstr s
    | Token.LBRACE ->
        advance st;
        let ints = ref [] and syms = ref [] in
        let rec go () =
          (match cur st with
          | Token.INT_LIT n ->
              advance st;
              ints := n :: !ints
          | Token.MINUS -> (
              advance st;
              match cur st with
              | Token.INT_LIT n ->
                  advance st;
                  ints := Int64.neg n :: !ints
              | _ -> err st "expected integer after '-'")
          | Token.IDENT s ->
              advance st;
              syms := s :: !syms
          | Token.AMP ->
              advance st;
              let s = eat_ident st in
              syms := s :: !syms
          | _ -> err st "unsupported global initializer element");
          if cur st = Token.COMMA then begin
            advance st;
            if cur st <> Token.RBRACE then go ()
          end
        in
        if cur st <> Token.RBRACE then go ();
        eat st Token.RBRACE;
        if !syms <> [] then begin
          if !ints <> [] then err st "mixed symbol/integer initializer";
          Ast.Gsyms (List.rev !syms)
        end
        else Ast.Gints (List.rev !ints)
    | _ -> err st "unsupported global initializer"
  end

let parse_top st : Ast.top option =
  match cur st with
  | Token.EOF -> None
  | Token.KW_STRUCT when peek_at st 2 = Token.LBRACE ->
      advance st;
      let name = eat_ident st in
      eat st Token.LBRACE;
      let fields = ref [] in
      while cur st <> Token.RBRACE do
        let base = parse_base_type st in
        let fty, fname = parse_declarator st base in
        eat st Token.SEMI;
        fields := (fty, fname) :: !fields
      done;
      eat st Token.RBRACE;
      eat st Token.SEMI;
      Some (Ast.Tstruct (name, List.rev !fields))
  | Token.KW_EXTERN ->
      advance st;
      let base = parse_base_type st in
      let ty = parse_stars st base in
      let name = eat_ident st in
      if cur st = Token.LPAREN then begin
        let params, varargs = parse_params st in
        eat st Token.SEMI;
        Some
          (Ast.Textern
             {
               ename = name;
               eret = ty;
               eparams = List.map fst params;
               evarargs = varargs;
             })
      end
      else begin
        (* extern global: declared elsewhere; treat as zero-init global. *)
        eat st Token.SEMI;
        Some (Ast.Tglobal { gty = ty; gname = name; ginit = Ast.Gnone; gconst = false })
      end
  | _ ->
      let attrs = ref [] and static = ref false in
      let rec markers () =
        match cur st with
        | Token.KW_NOANALYZE ->
            advance st;
            attrs := Ast.Anoanalyze :: !attrs;
            markers ()
        | Token.KW_CALLSIG ->
            advance st;
            attrs := Ast.Acallsig :: !attrs;
            markers ()
        | Token.KW_KERNEL_ENTRY ->
            advance st;
            attrs := Ast.Akernel_entry :: !attrs;
            markers ()
        | Token.KW_STATIC ->
            advance st;
            static := true;
            markers ()
        | _ -> ()
      in
      markers ();
      let gconst = cur st = Token.KW_CONST in
      let base = parse_base_type st in
      let ty, name = parse_declarator st base in
      if cur st = Token.LPAREN then begin
        let params, _varargs = parse_params st in
        eat st Token.LBRACE;
        let body = parse_stmts st in
        eat st Token.RBRACE;
        Some
          (Ast.Tfunc
             {
               fn_name = name;
               fn_ret = ty;
               fn_params = params;
               fn_body = body;
               fn_attrs = List.rev !attrs;
               fn_static = !static;
             })
      end
      else begin
        let init = parse_global_init st in
        eat st Token.SEMI;
        Some (Ast.Tglobal { gty = ty; gname = name; ginit = init; gconst })
      end

let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let out = ref [] in
  let rec go () =
    match parse_top st with
    | Some top ->
        out := top :: !out;
        go ()
    | None -> ()
  in
  go ();
  List.rev !out
