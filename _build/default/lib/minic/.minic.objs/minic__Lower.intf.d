lib/minic/lower.mli: Ast Sva_ir
