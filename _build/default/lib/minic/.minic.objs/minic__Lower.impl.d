lib/minic/lower.ml: Ast Builder Func Hashtbl Instr Int64 Irmod List Parser Printf String Sva_ir Ty Value Verify
