lib/minic/parser.mli: Ast Token
