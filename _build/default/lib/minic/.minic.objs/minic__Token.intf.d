lib/minic/token.mli:
