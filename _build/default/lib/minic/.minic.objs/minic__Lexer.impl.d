lib/minic/lexer.ml: Buffer Int64 List Printf String Token
