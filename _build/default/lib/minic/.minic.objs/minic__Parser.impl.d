lib/minic/parser.ml: Array Ast Char Int64 Lexer List Printf Token
