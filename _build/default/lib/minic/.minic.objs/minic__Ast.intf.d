lib/minic/ast.mli:
