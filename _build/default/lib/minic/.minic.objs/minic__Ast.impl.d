lib/minic/ast.ml:
