lib/minic/lexer.mli: Token
