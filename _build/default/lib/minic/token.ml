type t =
  | INT_LIT of int64
  | STR_LIT of string
  | CHAR_LIT of char
  | IDENT of string
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_UNSIGNED | KW_SIGNED
  | KW_STRUCT | KW_UNION
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_DO
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_SIZEOF | KW_EXTERN | KW_STATIC | KW_CONST
  | KW_NOANALYZE
  | KW_CALLSIG
  | KW_KERNEL_ENTRY
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW | ELLIPSIS
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LSHIFT | RSHIFT
  | LT | GT | LE | GE | EQEQ | NEQ
  | AMPAMP | PIPEPIPE
  | ASSIGN | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | AMPEQ | PIPEEQ | CARETEQ
  | LSHIFTEQ | RSHIFTEQ
  | QUESTION | COLON
  | PLUSPLUS | MINUSMINUS
  | EOF

type loc = { line : int; col : int }

type spanned = { tok : t; loc : loc }

let to_string = function
  | INT_LIT n -> Printf.sprintf "%Ld" n
  | STR_LIT s -> Printf.sprintf "%S" s
  | CHAR_LIT c -> Printf.sprintf "%C" c
  | IDENT s -> s
  | KW_VOID -> "void" | KW_CHAR -> "char" | KW_SHORT -> "short"
  | KW_INT -> "int" | KW_LONG -> "long" | KW_UNSIGNED -> "unsigned"
  | KW_SIGNED -> "signed" | KW_STRUCT -> "struct" | KW_UNION -> "union"
  | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while"
  | KW_FOR -> "for" | KW_DO -> "do" | KW_RETURN -> "return"
  | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | KW_SIZEOF -> "sizeof" | KW_EXTERN -> "extern" | KW_STATIC -> "static"
  | KW_CONST -> "const"
  | KW_NOANALYZE -> "__noanalyze" | KW_CALLSIG -> "__callsig_assert"
  | KW_KERNEL_ENTRY -> "__kernel_entry"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | SEMI -> ";" | COMMA -> "," | DOT -> "." | ARROW -> "->" | ELLIPSIS -> "..."
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | LSHIFT -> "<<" | RSHIFT -> ">>"
  | LT -> "<" | GT -> ">" | LE -> "<=" | GE -> ">=" | EQEQ -> "==" | NEQ -> "!="
  | AMPAMP -> "&&" | PIPEPIPE -> "||"
  | ASSIGN -> "=" | PLUSEQ -> "+=" | MINUSEQ -> "-=" | STAREQ -> "*="
  | SLASHEQ -> "/=" | AMPEQ -> "&=" | PIPEEQ -> "|=" | CARETEQ -> "^="
  | LSHIFTEQ -> "<<=" | RSHIFTEQ -> ">>="
  | QUESTION -> "?" | COLON -> ":"
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | EOF -> "<eof>"
