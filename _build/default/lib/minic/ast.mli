(** MiniC abstract syntax. *)

(** MiniC types.  Signedness is tracked here (the IR erases it into
    operation choice: sdiv/udiv, slt/ult, sext/zext...). *)
type mty =
  | Mvoid
  | Mint of int * bool  (** bit width (8/16/32/64), signed? *)
  | Mptr of mty
  | Marr of mty * int
  | Mstruct of string
  | Mfunptr of mty * mty list  (** return type, parameter types *)

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Band | Bor | Bxor | Bshl | Bshr
  | Blt | Ble | Bgt | Bge | Beq | Bne
  | Bland | Blor  (** short-circuit && and || *)

type unop = Uneg | Unot | Ubnot  (** -, !, ~ *)

type expr =
  | Eint of int64
  | Estr of string
  | Eid of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Eassign of expr * expr  (** lvalue = rvalue *)
  | Eassign_op of binop * expr * expr  (** lvalue op= rvalue *)
  | Ecall of string * expr list
  | Ecallptr of expr * expr list  (** call through a function pointer *)
  | Eindex of expr * expr  (** a[i] *)
  | Efield of expr * string  (** s.f *)
  | Earrow of expr * string  (** p->f *)
  | Ederef of expr  (** *p *)
  | Eaddr of expr  (** &lv *)
  | Ecast of mty * expr
  | Esizeof_ty of mty
  | Esizeof_expr of expr
  | Econd of expr * expr * expr  (** c ? a : b *)
  | Epreincr of int * expr  (** ++x / --x: delta is +1 or -1 *)
  | Epostincr of int * expr  (** x++ / x-- *)

type stmt =
  | Sexpr of expr
  | Sdecl of mty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

(** Function attributes, written as markers before the definition. *)
type fattr = Anoanalyze | Acallsig | Akernel_entry

type func = {
  fn_name : string;
  fn_ret : mty;
  fn_params : (mty * string) list;
  fn_body : stmt list;
  fn_attrs : fattr list;
  fn_static : bool;
}

type ginit_ast =
  | Gnone  (** zero-initialized *)
  | Gint of int64
  | Gstr of string
  | Gints of int64 list  (** array initializer of integers *)
  | Gsyms of string list  (** array initializer of function/global names *)

type top =
  | Tstruct of string * (mty * string) list
  | Tglobal of { gty : mty; gname : string; ginit : ginit_ast; gconst : bool }
  | Textern of { ename : string; eret : mty; eparams : mty list; evarargs : bool }
  | Tfunc of func

type program = top list
