(** Lowering MiniC to SVA IR.

    This is the "front-end compiler translates source code to SVA bytecode"
    step of Section 2.  Lowering is deliberately naive — every local lives
    in an [alloca]'d stack slot and every access goes through loads and
    stores — because SSA construction belongs to {!Sva_ir.Mem2reg}, exactly
    as a production C front end leaves SSA to the optimizer.

    Calls to functions whose names begin with ["llva."], ["sva."] or
    ["pchk."] lower to {!Sva_ir.Instr.kind.Intrinsic} operations; their
    signatures must be introduced by [extern] declarations. *)

exception Lower_error of string

val compile_program : name:string -> Ast.program list -> Sva_ir.Irmod.t
(** Lower one or more parsed translation units into a single SVA module
    (signatures are collected across all units first, so definition order
    does not matter).  The result is verified with {!Sva_ir.Verify.check}.
    @raise Lower_error on type errors. *)

val compile_string : name:string -> string -> Sva_ir.Irmod.t
(** Parse and lower a single source string. *)

val compile_strings : name:string -> string list -> Sva_ir.Irmod.t
(** Parse and lower several source strings as one program. *)
