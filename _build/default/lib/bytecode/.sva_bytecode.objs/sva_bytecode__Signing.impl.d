lib/bytecode/signing.ml: Bytes Char Codec Irmod Printf Sha256 String Sva_ir
