lib/bytecode/codec.ml: Buffer Char Func Instr Int64 Irmod List Printf String Sva_ir Ty Value
