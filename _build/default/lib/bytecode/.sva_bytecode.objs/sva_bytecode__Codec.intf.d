lib/bytecode/codec.mli: Irmod Sva_ir
