lib/bytecode/sha256.ml: Array Bytes Char List Printf String
