lib/bytecode/signing.mli: Irmod Sva_ir
