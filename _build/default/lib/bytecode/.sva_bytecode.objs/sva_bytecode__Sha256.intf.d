lib/bytecode/sha256.mli:
