(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used to sign cached native-code translations together with their
    bytecode "to ensure integrity and safety of the native code"
    (Section 2/3.4).  No external crypto dependency is available in the
    sealed build environment, so the hash is implemented here and
    validated against the FIPS test vectors in the test suite. *)

val digest : string -> string
(** Raw 32-byte digest. *)

val hex : string -> string
(** Lowercase hex digest (64 characters). *)

val hmac : key:string -> string -> string
(** HMAC-SHA256 (RFC 2104), used as the SVM's signing primitive. *)

val hmac_hex : key:string -> string -> string
