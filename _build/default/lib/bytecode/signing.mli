(** Signed translation cache (Sections 2 and 3.4).

    "When translation is done offline, the translated native code is
    cached on disk together with the bytecode, and the pair is digitally
    signed together to ensure integrity and safety of the native code."
    A cache entry here pairs the bytecode with the "native translation"
    (in this implementation, the translator's deterministic image digest),
    signed with the SVM's key.  Loading verifies the signature and the
    bytecode hash before the module may execute. *)

open Sva_ir

type entry = {
  ce_module_name : string;
  ce_bytecode : string;  (** serialized module *)
  ce_native : string;  (** cached translation artifact *)
  ce_signature : string;  (** HMAC-SHA256 over name, bytecode and native *)
}

exception Tampered of string

val svm_key : string ref
(** The SVM signing key (a deployment would keep this sealed). *)

val translate : Irmod.t -> string
(** The deterministic "native code" artifact for a module.  The
    interpreter executes bytecode directly, so the artifact is the
    translation fingerprint the SVM caches and re-checks. *)

val sign : Irmod.t -> entry
(** Encode, translate and sign a module. *)

val verify : entry -> Irmod.t
(** Check the signature and decode the bytecode.
    @raise Tampered if the signature, bytecode or native artifact was
    modified. *)

val tamper_bytecode : entry -> entry
(** Flip a byte in the bytecode (for tests and demos). *)

val tamper_native : entry -> entry
