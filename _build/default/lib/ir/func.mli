(** Basic blocks and functions.

    A function owns its blocks (the first block is the entry), a register
    counter for SSA id allocation, and a set of attributes used by the
    safety-checking compiler, e.g. the call-signature assertions of
    Section 4.8 and the "do not analyze" marker used to model kernel
    libraries left out of the safety-checking compilation (Section 7.2). *)

type block = {
  label : string;
  mutable insns : Instr.t list;  (** in execution order; phis first *)
  mutable term : Instr.term;
}

type attr =
  | Noanalyze
      (** function was not run through the safety-checking compiler; its
          memory behaviour is unknown to the pointer analysis *)
  | Callsig_assert
      (** programmer asserts that indirect calls inside this function only
          target signature-compatible callees (Section 4.8) *)
  | Kernel_entry  (** boot / syscall entry point: globals registered here *)

type t = {
  f_name : string;
  f_ret : Ty.t;
  f_params : (string * Ty.t) list;
  f_varargs : bool;
  mutable f_blocks : block list;  (** entry block first *)
  mutable f_next_reg : int;
  mutable f_attrs : attr list;
}

val create :
  ?varargs:bool -> ?attrs:attr list -> string -> Ty.t -> (string * Ty.t) list -> t
(** [create name ret params] is a new function with no blocks.  Parameter
    registers take ids [0 .. n-1] in declaration order. *)

val param_value : t -> int -> Value.t
(** The SSA register holding the [i]-th parameter. *)

val param_values : t -> Value.t list

val fresh_reg : t -> int
(** Allocate a fresh SSA register id. *)

val add_block : t -> string -> block
(** Append an empty block (terminator initially [Unreachable]).
    @raise Invalid_argument on duplicate label. *)

val find_block : t -> string -> block
(** @raise Not_found if no block has that label. *)

val entry : t -> block
(** @raise Invalid_argument if the function has no blocks. *)

val iter_instrs : t -> (block -> Instr.t -> unit) -> unit
(** Visit every instruction, block by block. *)

val fold_instrs : t -> ('a -> block -> Instr.t -> 'a) -> 'a -> 'a

val func_ty : t -> Ty.t
(** The [Ty.Func] type of the function. *)

val has_attr : t -> attr -> bool

val instr_count : t -> int
(** Number of instructions (terminators excluded). *)
