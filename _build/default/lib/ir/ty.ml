type t =
  | Void
  | Int of int
  | Float
  | Ptr of t
  | Array of t * int
  | Struct of string
  | Func of t * t list * bool

type struct_def = { s_name : string; s_fields : (string * t) list }

type ctx = (string, struct_def) Hashtbl.t

let create_ctx () : ctx = Hashtbl.create 32

let define_struct ctx name fields =
  (match Hashtbl.find_opt ctx name with
  | Some prev when prev.s_fields <> fields ->
      invalid_arg ("Ty.define_struct: redefinition of %" ^ name)
  | _ -> ());
  let def = { s_name = name; s_fields = fields } in
  Hashtbl.replace ctx name def;
  def

let find_struct ctx name =
  match Hashtbl.find_opt ctx name with
  | Some d -> d
  | None -> raise Not_found

let struct_names ctx =
  Hashtbl.fold (fun k _ acc -> k :: acc) ctx [] |> List.sort compare

let i1 = Int 1
let i8 = Int 8
let i16 = Int 16
let i32 = Int 32
let i64 = Int 64
let ptr_size = 8

let rec alignof ctx = function
  | Void -> invalid_arg "Ty.alignof: void"
  | Int 1 -> 1
  | Int w -> max 1 (w / 8)
  | Float -> 8
  | Ptr _ -> ptr_size
  | Array (e, _) -> alignof ctx e
  | Struct name ->
      let def = find_struct ctx name in
      List.fold_left (fun a (_, fty) -> max a (alignof ctx fty)) 1 def.s_fields
  | Func _ -> invalid_arg "Ty.alignof: function type"

let round_up n a = (n + a - 1) / a * a

(* Natural (C-like) struct layout: each field at the next multiple of its
   alignment; total size rounded to the struct alignment. *)
let rec layout ctx fields =
  let rec go off acc = function
    | [] -> (List.rev acc, off)
    | (fname, fty) :: rest ->
        let off = round_up off (alignof ctx fty) in
        go (off + sizeof ctx fty) ((fname, fty, off) :: acc) rest
  in
  go 0 [] fields

and sizeof ctx = function
  | Void -> invalid_arg "Ty.sizeof: void"
  | Int 1 -> 1
  | Int w -> max 1 (w / 8)
  | Float -> 8
  | Ptr _ -> ptr_size
  | Array (e, n) -> n * sizeof ctx e
  | Struct name ->
      let def = find_struct ctx name in
      let _, sz = layout ctx def.s_fields in
      round_up (max sz 1) (alignof ctx (Struct name))
  | Func _ -> invalid_arg "Ty.sizeof: function type"

let field_offset ctx sname fname =
  let def = find_struct ctx sname in
  let fields, _ = layout ctx def.s_fields in
  let rec find = function
    | [] -> raise Not_found
    | (n, fty, off) :: _ when n = fname -> (off, fty)
    | _ :: rest -> find rest
  in
  find fields

let field_index ctx sname fname =
  let def = find_struct ctx sname in
  let rec find i = function
    | [] -> raise Not_found
    | (n, _) :: _ when n = fname -> i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 def.s_fields

let field_at ctx sname i =
  let def = find_struct ctx sname in
  let fields, _ = layout ctx def.s_fields in
  match List.nth_opt fields i with
  | Some (_, fty, off) -> (off, fty)
  | None -> raise Not_found

let is_integer = function Int _ -> true | _ -> false
let is_pointer = function Ptr _ -> true | _ -> false
let is_float = function Float -> true | _ -> false
let is_aggregate = function Array _ | Struct _ -> true | _ -> false

let pointee = function
  | Ptr t -> t
  | _ -> invalid_arg "Ty.pointee: not a pointer"

let rec equal a b =
  match (a, b) with
  | Void, Void | Float, Float -> true
  | Int w1, Int w2 -> w1 = w2
  | Ptr a, Ptr b -> equal a b
  | Array (a, n), Array (b, m) -> n = m && equal a b
  | Struct s1, Struct s2 -> s1 = s2
  | Func (r1, p1, v1), Func (r2, p2, v2) ->
      v1 = v2
      && equal r1 r2
      && List.length p1 = List.length p2
      && List.for_all2 equal p1 p2
  | (Void | Int _ | Float | Ptr _ | Array _ | Struct _ | Func _), _ -> false

let rec to_string = function
  | Void -> "void"
  | Int w -> "i" ^ string_of_int w
  | Float -> "double"
  | Ptr t -> to_string t ^ "*"
  | Array (e, n) -> Printf.sprintf "[%d x %s]" n (to_string e)
  | Struct name -> "%" ^ name
  | Func (r, ps, va) ->
      let ps = List.map to_string ps in
      let ps = if va then ps @ [ "..." ] else ps in
      Printf.sprintf "%s (%s)" (to_string r) (String.concat ", " ps)

let pp fmt t = Format.pp_print_string fmt (to_string t)
