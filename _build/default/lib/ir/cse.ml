(* Hashable key for a pure computation.  Values are keyed structurally;
   registers by id. *)
let value_key (v : Value.t) =
  match v with
  | Value.Imm (t, n) -> Printf.sprintf "i:%s:%Ld" (Ty.to_string t) n
  | Value.Fimm f -> Printf.sprintf "f:%h" f
  | Value.Null t -> "n:" ^ Ty.to_string t
  | Value.Undef t -> "u:" ^ Ty.to_string t
  | Value.Global (n, _) -> "g:" ^ n
  | Value.Fn (n, _) -> "fn:" ^ n
  | Value.Reg (id, _, _) -> "r:" ^ string_of_int id

let key_of (i : Instr.t) : string option =
  let vs vals = String.concat "," (List.map value_key vals) in
  match i.Instr.kind with
  | Instr.Binop (op, a, b) ->
      Some (Printf.sprintf "b:%s:%s" (Pp.string_of_binop op) (vs [ a; b ]))
  | Instr.Icmp (op, a, b) ->
      Some (Printf.sprintf "c:%s:%s" (Pp.string_of_icmp op) (vs [ a; b ]))
  | Instr.Gep (base, idxs) -> Some (Printf.sprintf "g:%s" (vs (base :: idxs)))
  | Instr.Cast (op, x, t) ->
      Some
        (Printf.sprintf "x:%s:%s:%s" (Pp.string_of_cast op) (value_key x)
           (Ty.to_string t))
  | Instr.Select (c, a, b) -> Some (Printf.sprintf "s:%s" (vs [ c; a; b ]))
  | Instr.Load p -> Some (Printf.sprintf "l:%s" (value_key p))
  | _ -> None


let may_write_memory (k : Instr.kind) =
  match k with
  | Instr.Store _ | Instr.Call _ | Instr.Free _ | Instr.Atomic_cas _
  | Instr.Atomic_add _ | Instr.Membar | Instr.Intrinsic _ | Instr.Malloc _
  | Instr.Alloca _ ->
      true
  | _ -> false

let run_func (f : Func.t) =
  let eliminated = ref 0 in
  let replaced : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Func.block) ->
      let available : (string, Value.t) Hashtbl.t = Hashtbl.create 32 in
      let subst v =
        match v with
        | Value.Reg (id, _, _) -> (
            match Hashtbl.find_opt replaced id with Some v' -> v' | None -> v)
        | _ -> v
      in
      b.Func.insns <-
        List.filter_map
          (fun (i : Instr.t) ->
            let i =
              { i with Instr.kind = Instr.map_operands subst i.Instr.kind }
            in
            if may_write_memory i.Instr.kind then begin
              (* Invalidate loads: conservative, any write kills them. *)
              Hashtbl.iter
                (fun k _ ->
                  if String.length k > 0 && k.[0] = 'l' then
                    Hashtbl.remove available k)
                (Hashtbl.copy available);
              Some i
            end
            else
              match key_of i with
              | None -> Some i
              | Some key -> (
                  match Hashtbl.find_opt available key with
                  | Some v ->
                      Hashtbl.replace replaced i.Instr.id v;
                      incr eliminated;
                      None
                  | None ->
                      (match Instr.result i with
                      | Some r -> Hashtbl.replace available key r
                      | None -> ());
                      Some i))
          b.Func.insns;
      b.Func.term <- Instr.map_term_operands subst b.Func.term)
    f.Func.f_blocks;
  (* Uses in later blocks. *)
  if Hashtbl.length replaced > 0 then begin
    let subst v =
      match v with
      | Value.Reg (id, _, _) -> (
          match Hashtbl.find_opt replaced id with Some v' -> v' | None -> v)
      | _ -> v
    in
    List.iter
      (fun (b : Func.block) ->
        b.Func.insns <-
          List.map
            (fun (i : Instr.t) ->
              { i with Instr.kind = Instr.map_operands subst i.Instr.kind })
            b.Func.insns;
        b.Func.term <- Instr.map_term_operands subst b.Func.term)
      f.Func.f_blocks
  end;
  !eliminated

let run (m : Irmod.t) =
  List.fold_left (fun n f -> n + run_func f) 0 m.Irmod.m_funcs
