(** Instructions and terminators of the SVA-Core instruction set.

    SVA-Core is the LLVM-derived computational subset (Section 3.2):
    arithmetic and logic, comparisons, typed indexing ([getelementptr]),
    loads and stores, calls, explicit heap and stack allocation, the atomic
    extensions added for kernel support (compare-and-swap, atomic
    load-increment-store, write barrier), and intrinsics.  SVA-OS operations
    (Section 3.3) and the run-time checks inserted by the safety-checking
    compiler appear as {!kind.Intrinsic} calls whose names start with
    ["llva."], ["sva."] or ["pchk."]. *)

(** Binary operators.  [F]-prefixed operators act on [double]. *)
type binop =
  | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Fadd | Fsub | Fmul | Fdiv

(** Integer comparison predicates ([s] = signed, [u] = unsigned). *)
type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

(** Cast operators, as in LLVM.  [Inttoptr] is the "manufactured address"
    operation of Section 4.7. *)
type cast = Bitcast | Inttoptr | Ptrtoint | Trunc | Zext | Sext | Fptosi | Sitofp

type kind =
  | Binop of binop * Value.t * Value.t
  | Icmp of icmp * Value.t * Value.t
  | Alloca of Ty.t * Value.t  (** stack allocation: element type, count *)
  | Load of Value.t  (** load through a pointer; result is the pointee *)
  | Store of Value.t * Value.t  (** [Store (v, ptr)] writes [v] to [ptr] *)
  | Gep of Value.t * Value.t list
      (** typed indexing; all address arithmetic goes through here
          (Section 4.5: "all indexing calculations are performed by the
          getelementptr instruction") *)
  | Cast of cast * Value.t * Ty.t
  | Select of Value.t * Value.t * Value.t
  | Call of Value.t * Value.t list
      (** direct ([Fn]) or indirect (register) call *)
  | Phi of (string * Value.t) list  (** SSA phi: (predecessor label, value) *)
  | Malloc of Ty.t * Value.t  (** explicit heap allocation instruction *)
  | Free of Value.t  (** explicit heap deallocation instruction *)
  | Atomic_cas of Value.t * Value.t * Value.t
      (** [Atomic_cas (ptr, expected, repl)] — compare-and-swap; yields the
          previous value *)
  | Atomic_add of Value.t * Value.t
      (** atomic load-increment-store; yields the previous value *)
  | Membar  (** memory write barrier *)
  | Intrinsic of string * Value.t list
      (** SVA-OS operation or run-time check, by name *)

type t = {
  id : int;  (** unique register id of the result (unused if [ty = Void]) *)
  nm : string;  (** printing name hint for the result *)
  ty : Ty.t;  (** result type; [Void] for instructions producing no value *)
  kind : kind;
}

(** Block terminators.  Every function has an explicit control-flow graph
    with no computed branches (Section 3.1). *)
type term =
  | Ret of Value.t option
  | Br of Value.t * string * string  (** conditional: (i1 cond, then, else) *)
  | Jmp of string
  | Switch of Value.t * (int64 * string) list * string  (** value, cases, default *)
  | Unreachable

val result : t -> Value.t option
(** The SSA register defined by this instruction, if any. *)

val operands : kind -> Value.t list
(** All value operands of an instruction, in order. *)

val map_operands : (Value.t -> Value.t) -> kind -> kind
(** Rebuild an instruction with each operand rewritten. *)

val term_operands : term -> Value.t list
(** Value operands of a terminator. *)

val map_term_operands : (Value.t -> Value.t) -> term -> term

val successors : term -> string list
(** Labels a terminator may transfer control to. *)

val has_side_effect : kind -> bool
(** True if the instruction may write memory, trap, allocate or otherwise
    not be safely deletable when its result is unused. *)

val is_phi : t -> bool
