(** Types of the SVA-Core virtual instruction set.

    The type system mirrors the LLVM-derived design described in Section 3.1
    of the paper: a small set of first-class scalar types, pointers, arrays,
    named structures and function types.  All instructions are typed and the
    module verifier ({!Verify}) checks every instruction against these
    types. *)

type t =
  | Void  (** no value; the result type of [store], [free], etc. *)
  | Int of int  (** integer of the given bit width: 1, 8, 16, 32 or 64 *)
  | Float  (** 64-bit IEEE floating point *)
  | Ptr of t  (** pointer to a value of the carried type *)
  | Array of t * int  (** fixed-size array: element type and element count *)
  | Struct of string  (** named structure; resolved through a {!ctx} *)
  | Func of t * t list * bool
      (** function type: return type, parameter types, varargs flag *)

type struct_def = {
  s_name : string;  (** structure tag *)
  s_fields : (string * t) list;  (** field name and type, in layout order *)
}
(** A named structure definition registered in a type context. *)

type ctx
(** Type context: the set of named structure definitions of a module. *)

val create_ctx : unit -> ctx
(** [create_ctx ()] is an empty type context. *)

val define_struct : ctx -> string -> (string * t) list -> struct_def
(** [define_struct ctx name fields] registers structure [name].
    @raise Invalid_argument if [name] is already defined with other fields. *)

val find_struct : ctx -> string -> struct_def
(** [find_struct ctx name] looks up a structure definition.
    @raise Not_found if [name] has not been defined. *)

val struct_names : ctx -> string list
(** All structure tags defined in the context, sorted. *)

val i1 : t
val i8 : t
val i16 : t
val i32 : t
val i64 : t
(** Common integer type abbreviations. *)

val ptr_size : int
(** Size of a pointer in bytes (8; SVA addresses are 64-bit). *)

val sizeof : ctx -> t -> int
(** [sizeof ctx ty] is the size of [ty] in bytes using natural alignment.
    @raise Invalid_argument on [Void] or function types. *)

val alignof : ctx -> t -> int
(** Natural alignment of [ty] in bytes. *)

val field_offset : ctx -> string -> string -> int * t
(** [field_offset ctx sname fname] is the byte offset and type of field
    [fname] of structure [sname].  @raise Not_found if absent. *)

val field_index : ctx -> string -> string -> int
(** Index (position) of a field within its structure. *)

val field_at : ctx -> string -> int -> int * t
(** [field_at ctx sname i] is the byte offset and type of the [i]-th field. *)

val is_integer : t -> bool
val is_pointer : t -> bool
val is_float : t -> bool
val is_aggregate : t -> bool
(** Type classification predicates. *)

val pointee : t -> t
(** [pointee (Ptr t)] is [t].  @raise Invalid_argument on non-pointers. *)

val equal : t -> t -> bool
(** Structural type equality (struct types compare by name). *)

val to_string : t -> string
(** Render a type in SVA assembly syntax, e.g. ["i32*"] or
    ["[4 x %task]"]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer for {!to_string}. *)
