type pipeline = Gcc_like | Llvm_like

let pipeline_name = function Gcc_like -> "gcc-like" | Llvm_like -> "llvm-like"

let run_no_verify p (m : Irmod.t) =
  (* Unreachable-block removal must precede SSA construction: the front
     end parks dead statements in unreachable blocks, which the renaming
     walk (driven by the dominator tree) never visits. *)
  ignore (Dce.run m);
  ignore (Mem2reg.run m);
  (match p with
  | Gcc_like ->
      ignore (Constfold.run m);
      ignore (Dce.run m)
  | Llvm_like ->
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds < 8 do
        incr rounds;
        let n = Constfold.run m + Cse.run m + Dce.run m in
        changed := n > 0
      done)

let run p m =
  run_no_verify p m;
  Verify.check m
