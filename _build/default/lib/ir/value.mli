(** First-class SSA values of the SVA-Core instruction set.

    Every operand of an instruction is a {!t}: a constant, the address of a
    global or function, or a virtual register in SSA form (Section 3.1:
    "an 'infinite' virtual register set in Static Single Assignment
    form"). *)

type t =
  | Imm of Ty.t * int64  (** integer constant of the given integer type *)
  | Fimm of float  (** floating-point constant *)
  | Null of Ty.t  (** typed null pointer; [ty] is the full pointer type *)
  | Undef of Ty.t  (** undefined value of the given type *)
  | Global of string * Ty.t
      (** address of global [name]; carried type is the {e pointee} type, so
          the value's type is [Ptr ty] *)
  | Fn of string * Ty.t
      (** address of function [name]; carried type is its [Func] type, the
          value's type is [Ptr ty] *)
  | Reg of int * Ty.t * string
      (** virtual register: id, type, and a name hint for printing *)

val ty : t -> Ty.t
(** The type of a value ([Global]/[Fn] yield pointer types). *)

val imm : ?width:int -> int -> t
(** [imm n] is an [i32] constant; [~width] selects another integer width. *)

val imm64 : int64 -> t
(** A 64-bit integer constant. *)

val i1 : bool -> t
(** Boolean constant as [i1]. *)

val is_const : t -> bool
(** True for [Imm], [Fimm], [Null] and [Undef]. *)

val equal : t -> t -> bool
(** Structural equality of values. *)

val to_string : t -> string
(** Render in SVA assembly syntax, e.g. ["%x.3"] or ["i32 7"]. *)

val pp : Format.formatter -> t -> unit
