type block = {
  label : string;
  mutable insns : Instr.t list;
  mutable term : Instr.term;
}

type attr = Noanalyze | Callsig_assert | Kernel_entry

type t = {
  f_name : string;
  f_ret : Ty.t;
  f_params : (string * Ty.t) list;
  f_varargs : bool;
  mutable f_blocks : block list;
  mutable f_next_reg : int;
  mutable f_attrs : attr list;
}

let create ?(varargs = false) ?(attrs = []) name ret params =
  {
    f_name = name;
    f_ret = ret;
    f_params = params;
    f_varargs = varargs;
    f_blocks = [];
    f_next_reg = List.length params;
    f_attrs = attrs;
  }

let param_value f i =
  match List.nth_opt f.f_params i with
  | Some (name, ty) -> Value.Reg (i, ty, name)
  | None -> invalid_arg ("Func.param_value: " ^ f.f_name)

let param_values f = List.mapi (fun i _ -> param_value f i) f.f_params

let fresh_reg f =
  let r = f.f_next_reg in
  f.f_next_reg <- r + 1;
  r

let add_block f label =
  if List.exists (fun b -> b.label = label) f.f_blocks then
    invalid_arg ("Func.add_block: duplicate label " ^ label);
  let b = { label; insns = []; term = Instr.Unreachable } in
  f.f_blocks <- f.f_blocks @ [ b ];
  b

let find_block f label =
  match List.find_opt (fun b -> b.label = label) f.f_blocks with
  | Some b -> b
  | None -> raise Not_found

let entry f =
  match f.f_blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("Func.entry: empty function " ^ f.f_name)

let iter_instrs f g =
  List.iter (fun b -> List.iter (fun i -> g b i) b.insns) f.f_blocks

let fold_instrs f g init =
  List.fold_left
    (fun acc b -> List.fold_left (fun acc i -> g acc b i) acc b.insns)
    init f.f_blocks

let func_ty f = Ty.Func (f.f_ret, List.map snd f.f_params, f.f_varargs)

let has_attr f a = List.mem a f.f_attrs

let instr_count f = fold_instrs f (fun n _ _ -> n + 1) 0
