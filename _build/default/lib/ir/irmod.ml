type ginit = Zero | Str of string | Ints of Ty.t * int64 list | Ptrs of string list

type global = { g_name : string; g_ty : Ty.t; g_init : ginit; g_const : bool }

type t = {
  m_name : string;
  m_ctx : Ty.ctx;
  mutable m_globals : global list;
  mutable m_funcs : Func.t list;
  mutable m_externs : (string * Ty.t) list;
}

let create name =
  {
    m_name = name;
    m_ctx = Ty.create_ctx ();
    m_globals = [];
    m_funcs = [];
    m_externs = [];
  }

let add_global m g =
  if List.exists (fun g' -> g'.g_name = g.g_name) m.m_globals then
    invalid_arg ("Irmod.add_global: duplicate @" ^ g.g_name);
  m.m_globals <- m.m_globals @ [ g ]

let add_func m f =
  if List.exists (fun f' -> f'.Func.f_name = f.Func.f_name) m.m_funcs then
    invalid_arg ("Irmod.add_func: duplicate @" ^ f.Func.f_name);
  m.m_funcs <- m.m_funcs @ [ f ]

let declare_extern m name ty =
  match List.assoc_opt name m.m_externs with
  | Some prev when not (Ty.equal prev ty) ->
      invalid_arg ("Irmod.declare_extern: conflicting types for @" ^ name)
  | Some _ -> ()
  | None -> m.m_externs <- m.m_externs @ [ (name, ty) ]

let find_func m name = List.find_opt (fun f -> f.Func.f_name = name) m.m_funcs

let find_global m name = List.find_opt (fun g -> g.g_name = name) m.m_globals

let extern_ty m name = List.assoc_opt name m.m_externs

let symbol_ty m name =
  match find_func m name with
  | Some f -> Some (Func.func_ty f)
  | None -> extern_ty m name

let global_value g = Value.Global (g.g_name, g.g_ty)
let func_value f = Value.Fn (f.Func.f_name, Func.func_ty f)

let merge dst src =
  List.iter
    (fun name ->
      let def = Ty.find_struct src.m_ctx name in
      ignore (Ty.define_struct dst.m_ctx name def.Ty.s_fields))
    (Ty.struct_names src.m_ctx);
  List.iter (fun g -> add_global dst g) src.m_globals;
  List.iter (fun f -> add_func dst f) src.m_funcs;
  List.iter
    (fun (name, ty) ->
      match find_func dst name with
      | Some f ->
          if not (Ty.equal (Func.func_ty f) ty) then
            invalid_arg ("Irmod.merge: extern/def type clash for @" ^ name)
      | None -> declare_extern dst name ty)
    src.m_externs;
  (* Externs of dst now resolved by definitions from src stay harmless. *)
  ()

let instr_count m =
  List.fold_left (fun n f -> n + Func.instr_count f) 0 m.m_funcs
