type t = {
  bmod : Irmod.t;
  bfunc : Func.t;
  mutable cur : Func.block option;
}

let create m f = { bmod = m; bfunc = f; cur = None }
let irmod b = b.bmod
let func b = b.bfunc
let position b blk = b.cur <- Some blk

let start_block b label =
  let blk = Func.add_block b.bfunc label in
  b.cur <- Some blk;
  blk

let current_block b =
  match b.cur with
  | Some blk -> blk
  | None -> invalid_arg "Builder: not positioned at a block"

let insert b ?(name = "") ty kind =
  let blk = current_block b in
  let id = Func.fresh_reg b.bfunc in
  let i = { Instr.id; nm = name; ty; kind } in
  blk.Func.insns <- blk.Func.insns @ [ i ];
  Instr.result i

let require v = match v with Some v -> v | None -> invalid_arg "Builder: void result"

let binop_ty op (a : Value.t) =
  match op with
  | Instr.Fadd | Fsub | Fmul | Fdiv -> Ty.Float
  | _ -> Value.ty a

let gep_result_ty ctx base_ty idxs =
  match base_ty with
  | Ty.Ptr pointee ->
      let rec descend ty = function
        | [] -> Ty.Ptr ty
        | idx :: rest -> (
            match ty with
            | Ty.Array (e, _) -> descend e rest
            | Ty.Struct sname -> (
                match idx with
                | Value.Imm (_, n) ->
                    let _, fty = Ty.field_at ctx sname (Int64.to_int n) in
                    descend fty rest
                | _ -> invalid_arg "gep: non-constant struct index")
            | _ -> invalid_arg "gep: indexing into a scalar")
      in
      (* The first index steps over the pointer itself. *)
      (match idxs with
      | [] -> invalid_arg "gep: empty index list"
      | _ :: rest -> descend pointee rest)
  | _ -> invalid_arg "gep: base is not a pointer"

let b_binop b ?name op x y = require (insert b ?name (binop_ty op x) (Binop (op, x, y)))
let b_icmp b ?name op x y = require (insert b ?name Ty.i1 (Icmp (op, x, y)))

let b_alloca b ?name ?(count = Value.imm 1) ty =
  require (insert b ?name (Ty.Ptr ty) (Alloca (ty, count)))

let b_load b ?name ptr =
  require (insert b ?name (Ty.pointee (Value.ty ptr)) (Load ptr))

let b_store b v ptr = ignore (insert b Ty.Void (Store (v, ptr)))

let b_gep b ?name base idxs =
  let ty = gep_result_ty b.bmod.Irmod.m_ctx (Value.ty base) idxs in
  require (insert b ?name ty (Gep (base, idxs)))

let b_struct_gep b ?name base field =
  match Value.ty base with
  | Ty.Ptr (Ty.Struct sname) ->
      let i = Ty.field_index b.bmod.Irmod.m_ctx sname field in
      b_gep b ?name base [ Value.imm 0; Value.imm i ]
  | _ -> invalid_arg "b_struct_gep: base is not a struct pointer"

let b_cast b ?name op v ty = require (insert b ?name ty (Cast (op, v, ty)))

let b_select b ?name c x y =
  require (insert b ?name (Value.ty x) (Select (c, x, y)))

let callee_ret callee =
  match Value.ty callee with
  | Ty.Ptr (Ty.Func (ret, _, _)) -> ret
  | _ -> invalid_arg "b_call: callee is not a function pointer"

let b_call b ?name callee args =
  insert b ?name (callee_ret callee) (Call (callee, args))

let b_call_named b ?name fname args =
  match Irmod.symbol_ty b.bmod fname with
  | Some fty -> b_call b ?name (Value.Fn (fname, fty)) args
  | None -> invalid_arg ("b_call_named: unknown function @" ^ fname)

let b_phi b ?name ty incoming = require (insert b ?name ty (Phi incoming))

let b_malloc b ?name ?(count = Value.imm 1) ty =
  require (insert b ?name (Ty.Ptr ty) (Malloc (ty, count)))

let b_free b ptr = ignore (insert b Ty.Void (Free ptr))

let b_cas b ?name ptr expected repl =
  require (insert b ?name (Value.ty expected) (Atomic_cas (ptr, expected, repl)))

let b_atomic_add b ?name ptr delta =
  require (insert b ?name (Value.ty delta) (Atomic_add (ptr, delta)))

let b_membar b = ignore (insert b Ty.Void Membar)

let b_intrinsic b ?name ty iname args = insert b ?name ty (Intrinsic (iname, args))

let set_term b t =
  let blk = current_block b in
  blk.Func.term <- t

let b_ret b v = set_term b (Ret v)
let b_br b c then_l else_l = set_term b (Br (c, then_l, else_l))
let b_jmp b l = set_term b (Jmp l)
let b_switch b v cases default = set_term b (Switch (v, cases, default))
let b_unreachable b = set_term b Unreachable
