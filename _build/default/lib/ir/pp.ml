let string_of_binop : Instr.binop -> string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul"
  | Sdiv -> "sdiv" | Udiv -> "udiv" | Srem -> "srem" | Urem -> "urem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let string_of_icmp : Instr.icmp -> string = function
  | Eq -> "eq" | Ne -> "ne"
  | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"
  | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"

let string_of_cast : Instr.cast -> string = function
  | Bitcast -> "bitcast" | Inttoptr -> "inttoptr" | Ptrtoint -> "ptrtoint"
  | Trunc -> "trunc" | Zext -> "zext" | Sext -> "sext"
  | Fptosi -> "fptosi" | Sitofp -> "sitofp"

let v = Value.to_string

let args_str vs = String.concat ", " (List.map v vs)

let string_of_kind ty (k : Instr.kind) =
  match k with
  | Binop (op, a, b) -> Printf.sprintf "%s %s, %s" (string_of_binop op) (v a) (v b)
  | Icmp (op, a, b) -> Printf.sprintf "icmp %s %s, %s" (string_of_icmp op) (v a) (v b)
  | Alloca (t, n) -> Printf.sprintf "alloca %s, %s" (Ty.to_string t) (v n)
  | Load p -> Printf.sprintf "load %s" (v p)
  | Store (x, p) -> Printf.sprintf "store %s, %s" (v x) (v p)
  | Gep (base, idxs) -> Printf.sprintf "getelementptr %s [%s]" (v base) (args_str idxs)
  | Cast (op, x, t) ->
      Printf.sprintf "%s %s to %s" (string_of_cast op) (v x) (Ty.to_string t)
  | Select (c, a, b) -> Printf.sprintf "select %s, %s, %s" (v c) (v a) (v b)
  | Call (f, args) ->
      Printf.sprintf "call %s %s(%s)" (Ty.to_string ty) (v f) (args_str args)
  | Phi incoming ->
      let inc =
        List.map (fun (l, x) -> Printf.sprintf "[%s, %%%s]" (v x) l) incoming
      in
      Printf.sprintf "phi %s %s" (Ty.to_string ty) (String.concat ", " inc)
  | Malloc (t, n) -> Printf.sprintf "malloc %s, %s" (Ty.to_string t) (v n)
  | Free p -> Printf.sprintf "free %s" (v p)
  | Atomic_cas (p, e, r) -> Printf.sprintf "cas %s, %s, %s" (v p) (v e) (v r)
  | Atomic_add (p, d) -> Printf.sprintf "atomicadd %s, %s" (v p) (v d)
  | Membar -> "membar"
  | Intrinsic (name, args) ->
      Printf.sprintf "intrinsic %s @%s(%s)" (Ty.to_string ty) name (args_str args)

let string_of_instr (i : Instr.t) =
  match Instr.result i with
  | Some r -> Printf.sprintf "%s = %s" (Value.to_string r) (string_of_kind i.ty i.kind)
  | None -> string_of_kind i.ty i.kind

let string_of_term : Instr.term -> string = function
  | Ret None -> "ret void"
  | Ret (Some x) -> Printf.sprintf "ret %s" (v x)
  | Br (c, t, e) -> Printf.sprintf "br %s, %%%s, %%%s" (v c) t e
  | Jmp l -> Printf.sprintf "br %%%s" l
  | Switch (x, cases, d) ->
      let cs = List.map (fun (n, l) -> Printf.sprintf "%Ld -> %%%s" n l) cases in
      Printf.sprintf "switch %s [%s] default %%%s" (v x) (String.concat "; " cs) d
  | Unreachable -> "unreachable"

let string_of_block (b : Func.block) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (b.label ^ ":\n");
  List.iter
    (fun i -> Buffer.add_string buf ("  " ^ string_of_instr i ^ "\n"))
    b.insns;
  Buffer.add_string buf ("  " ^ string_of_term b.term ^ "\n");
  Buffer.contents buf

let string_of_func (f : Func.t) =
  let buf = Buffer.create 1024 in
  let params =
    List.mapi
      (fun i (name, ty) ->
        Printf.sprintf "%s %s" (Ty.to_string ty)
          (Value.to_string (Value.Reg (i, ty, name))))
      f.Func.f_params
  in
  let params = if f.Func.f_varargs then params @ [ "..." ] else params in
  Buffer.add_string buf
    (Printf.sprintf "define %s @%s(%s) {\n" (Ty.to_string f.Func.f_ret)
       f.Func.f_name (String.concat ", " params));
  List.iter (fun b -> Buffer.add_string buf (string_of_block b)) f.Func.f_blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let string_of_ginit : Irmod.ginit -> string = function
  | Zero -> "zeroinitializer"
  | Str s -> Printf.sprintf "c%S" s
  | Ints (t, ns) ->
      Printf.sprintf "[%s]"
        (String.concat ", "
           (List.map (fun n -> Printf.sprintf "%s %Ld" (Ty.to_string t) n) ns))
  | Ptrs syms -> Printf.sprintf "[%s]" (String.concat ", " (List.map (( ^ ) "@") syms))

let string_of_module (m : Irmod.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "; module %s\n" m.Irmod.m_name);
  List.iter
    (fun name ->
      let def = Ty.find_struct m.Irmod.m_ctx name in
      let fields =
        List.map
          (fun (fn, ft) -> Printf.sprintf "%s %s" (Ty.to_string ft) fn)
          def.Ty.s_fields
      in
      Buffer.add_string buf
        (Printf.sprintf "%%%s = type { %s }\n" name (String.concat ", " fields)))
    (Ty.struct_names m.Irmod.m_ctx);
  List.iter
    (fun (g : Irmod.global) ->
      Buffer.add_string buf
        (Printf.sprintf "@%s = %s %s %s\n" g.g_name
           (if g.g_const then "constant" else "global")
           (Ty.to_string g.g_ty) (string_of_ginit g.g_init)))
    m.Irmod.m_globals;
  List.iter
    (fun (name, ty) ->
      Buffer.add_string buf (Printf.sprintf "declare @%s : %s\n" name (Ty.to_string ty)))
    m.Irmod.m_externs;
  List.iter
    (fun f -> Buffer.add_string buf ("\n" ^ string_of_func f))
    m.Irmod.m_funcs;
  Buffer.contents buf

let pp_func fmt f = Format.pp_print_string fmt (string_of_func f)
let pp_module fmt m = Format.pp_print_string fmt (string_of_module m)
