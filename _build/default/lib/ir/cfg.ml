type t = {
  entry : string;
  succ : (string, string list) Hashtbl.t;
  pred : (string, string list) Hashtbl.t;
  rpo : string list;
  rpo_idx : (string, int) Hashtbl.t;
  idoms : (string, string) Hashtbl.t;
}

let compute_rpo entry succ =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.add visited label ();
      List.iter dfs (try Hashtbl.find succ label with Not_found -> []);
      order := label :: !order
    end
  in
  dfs entry;
  !order

(* Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm". *)
let compute_idoms entry rpo rpo_idx pred =
  let idoms = Hashtbl.create 16 in
  Hashtbl.replace idoms entry entry;
  let intersect a b =
    let rec go a b =
      if a = b then a
      else
        let ia = Hashtbl.find rpo_idx a and ib = Hashtbl.find rpo_idx b in
        if ia > ib then go (Hashtbl.find idoms a) b else go a (Hashtbl.find idoms b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun label ->
        if label <> entry then begin
          let preds =
            (try Hashtbl.find pred label with Not_found -> [])
            |> List.filter (fun p -> Hashtbl.mem rpo_idx p)
          in
          let processed = List.filter (fun p -> Hashtbl.mem idoms p) preds in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if Hashtbl.find_opt idoms label <> Some new_idom then begin
                Hashtbl.replace idoms label new_idom;
                changed := true
              end
        end)
      rpo
  done;
  idoms

let build (f : Func.t) =
  let entry = (Func.entry f).Func.label in
  let succ = Hashtbl.create 16 and pred = Hashtbl.create 16 in
  List.iter
    (fun (b : Func.block) ->
      let ss = Instr.successors b.Func.term in
      Hashtbl.replace succ b.Func.label ss;
      List.iter
        (fun s ->
          let ps = try Hashtbl.find pred s with Not_found -> [] in
          if not (List.mem b.Func.label ps) then
            Hashtbl.replace pred s (ps @ [ b.Func.label ]))
        ss)
    f.Func.f_blocks;
  let rpo = compute_rpo entry succ in
  let rpo_idx = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace rpo_idx l i) rpo;
  let idoms = compute_idoms entry rpo rpo_idx pred in
  { entry; succ; pred; rpo; rpo_idx; idoms }

let successors t label = try Hashtbl.find t.succ label with Not_found -> []
let predecessors t label = try Hashtbl.find t.pred label with Not_found -> []
let reachable t = t.rpo
let is_reachable t label = Hashtbl.mem t.rpo_idx label

let rpo_index t label =
  match Hashtbl.find_opt t.rpo_idx label with
  | Some i -> i
  | None -> raise Not_found

let idom t label =
  if label = t.entry then None
  else
    match Hashtbl.find_opt t.idoms label with
    | Some d -> Some d
    | None -> None

let dominates t a b =
  let rec climb cur =
    if cur = a then true
    else if cur = t.entry then a = t.entry
    else
      match Hashtbl.find_opt t.idoms cur with
      | Some d when d <> cur -> climb d
      | _ -> false
  in
  is_reachable t a && is_reachable t b && climb b

let back_edges t =
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst -> if dominates t dst src then Some (src, dst) else None)
        (successors t src))
    t.rpo

let natural_loop t (src, header) =
  let body = Hashtbl.create 8 in
  Hashtbl.replace body header ();
  let rec climb label =
    if not (Hashtbl.mem body label) then begin
      Hashtbl.replace body label ();
      List.iter climb (predecessors t label)
    end
  in
  climb src;
  Hashtbl.fold (fun k () acc -> k :: acc) body []
  |> List.filter (is_reachable t)
  |> List.sort (fun a b -> compare (rpo_index t a) (rpo_index t b))
