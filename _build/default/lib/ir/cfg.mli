(** Control-flow graph utilities: successor/predecessor maps, reachability,
    reverse postorder, dominator tree (Cooper-Harvey-Kennedy), and natural
    loop detection used by the check-hoisting optimization (Section 7.1.3). *)

type t

val build : Func.t -> t
(** Compute the CFG of a function.  The function is not mutated; rebuild
    after transforming. *)

val successors : t -> string -> string list
val predecessors : t -> string -> string list

val reachable : t -> string list
(** Labels reachable from the entry, in reverse postorder. *)

val is_reachable : t -> string -> bool

val rpo_index : t -> string -> int
(** Position of a reachable block in reverse postorder.
    @raise Not_found for unreachable blocks. *)

val idom : t -> string -> string option
(** Immediate dominator; [None] for the entry block. *)

val dominates : t -> string -> string -> bool
(** [dominates cfg a b] — does block [a] dominate block [b]?  Reflexive. *)

val back_edges : t -> (string * string) list
(** Edges [(src, dst)] where [dst] dominates [src] — loop back edges. *)

val natural_loop : t -> string * string -> string list
(** Blocks of the natural loop of a back edge (header included). *)
