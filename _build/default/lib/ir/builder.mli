(** Imperative IR construction, in the style of LLVM's IRBuilder.

    A builder is positioned at the end of a block of a function inside a
    module; every [b_*] helper appends an instruction there and returns the
    SSA value it defines.  The MiniC front end, the safety-checking compiler
    and hand-written tests all construct IR through this interface. *)

type t

val create : Irmod.t -> Func.t -> t
(** A builder for [f]; initially positioned nowhere — call {!position} or
    {!start_block} before inserting. *)

val irmod : t -> Irmod.t
val func : t -> Func.t

val position : t -> Func.block -> unit
(** Subsequent instructions are appended to [block]. *)

val start_block : t -> string -> Func.block
(** Create a block with the given label and position the builder there. *)

val current_block : t -> Func.block
(** @raise Invalid_argument if the builder is unpositioned. *)

val insert : t -> ?name:string -> Ty.t -> Instr.kind -> Value.t option
(** Low-level append; returns the result register if the type is non-void. *)

val gep_result_ty : Ty.ctx -> Ty.t -> Value.t list -> Ty.t
(** Result type of a [getelementptr] with the given base pointer type and
    index list.  @raise Invalid_argument on invalid indexing. *)

(** {2 Typed helpers} — each returns the defined SSA value. *)

val b_binop : t -> ?name:string -> Instr.binop -> Value.t -> Value.t -> Value.t
val b_icmp : t -> ?name:string -> Instr.icmp -> Value.t -> Value.t -> Value.t
val b_alloca : t -> ?name:string -> ?count:Value.t -> Ty.t -> Value.t
val b_load : t -> ?name:string -> Value.t -> Value.t
val b_store : t -> Value.t -> Value.t -> unit
val b_gep : t -> ?name:string -> Value.t -> Value.t list -> Value.t
val b_struct_gep : t -> ?name:string -> Value.t -> string -> Value.t
(** Index a struct pointer by field name. *)

val b_cast : t -> ?name:string -> Instr.cast -> Value.t -> Ty.t -> Value.t
val b_select : t -> ?name:string -> Value.t -> Value.t -> Value.t -> Value.t
val b_call : t -> ?name:string -> Value.t -> Value.t list -> Value.t option
(** [b_call b callee args]: result is [None] for void-returning callees.
    The callee must be an [Fn] value or a register of function-pointer
    type. *)

val b_call_named : t -> ?name:string -> string -> Value.t list -> Value.t option
(** Call a function defined or declared in the module, by name.
    @raise Invalid_argument if the symbol is unknown. *)

val b_phi : t -> ?name:string -> Ty.t -> (string * Value.t) list -> Value.t
val b_malloc : t -> ?name:string -> ?count:Value.t -> Ty.t -> Value.t
val b_free : t -> Value.t -> unit
val b_cas : t -> ?name:string -> Value.t -> Value.t -> Value.t -> Value.t
val b_atomic_add : t -> ?name:string -> Value.t -> Value.t -> Value.t
val b_membar : t -> unit
val b_intrinsic : t -> ?name:string -> Ty.t -> string -> Value.t list -> Value.t option
(** Emit an intrinsic with an explicit result type ([Ty.Void] for none). *)

(** {2 Terminators} *)

val b_ret : t -> Value.t option -> unit
val b_br : t -> Value.t -> string -> string -> unit
val b_jmp : t -> string -> unit
val b_switch : t -> Value.t -> (int64 * string) list -> string -> unit
val b_unreachable : t -> unit
