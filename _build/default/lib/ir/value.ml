type t =
  | Imm of Ty.t * int64
  | Fimm of float
  | Null of Ty.t
  | Undef of Ty.t
  | Global of string * Ty.t
  | Fn of string * Ty.t
  | Reg of int * Ty.t * string

let ty = function
  | Imm (t, _) -> t
  | Fimm _ -> Ty.Float
  | Null t -> t
  | Undef t -> t
  | Global (_, t) -> Ty.Ptr t
  | Fn (_, t) -> Ty.Ptr t
  | Reg (_, t, _) -> t

let imm ?(width = 32) n = Imm (Ty.Int width, Int64.of_int n)
let imm64 n = Imm (Ty.Int 64, n)
let i1 b = Imm (Ty.Int 1, if b then 1L else 0L)

let is_const = function
  | Imm _ | Fimm _ | Null _ | Undef _ -> true
  | Global _ | Fn _ | Reg _ -> false

let equal a b =
  match (a, b) with
  | Imm (t1, n1), Imm (t2, n2) -> Ty.equal t1 t2 && Int64.equal n1 n2
  | Fimm f1, Fimm f2 -> f1 = f2
  | Null t1, Null t2 | Undef t1, Undef t2 -> Ty.equal t1 t2
  | Global (n1, _), Global (n2, _) | Fn (n1, _), Fn (n2, _) -> n1 = n2
  | Reg (i1, _, _), Reg (i2, _, _) -> i1 = i2
  | (Imm _ | Fimm _ | Null _ | Undef _ | Global _ | Fn _ | Reg _), _ -> false

let to_string = function
  | Imm (t, n) -> Printf.sprintf "%s %Ld" (Ty.to_string t) n
  | Fimm f -> Printf.sprintf "double %g" f
  | Null t -> Printf.sprintf "%s null" (Ty.to_string t)
  | Undef t -> Printf.sprintf "%s undef" (Ty.to_string t)
  | Global (n, _) -> "@" ^ n
  | Fn (n, _) -> "@" ^ n
  | Reg (i, _, name) ->
      if name = "" then Printf.sprintf "%%r%d" i
      else Printf.sprintf "%%%s.%d" name i

let pp fmt v = Format.pp_print_string fmt (to_string v)
