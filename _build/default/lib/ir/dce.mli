(** Dead code elimination.

    Removes blocks unreachable from the entry (pruning phi entries for
    deleted incoming edges) and then iteratively deletes side-effect-free
    instructions whose results are never used. *)

val run_func : Func.t -> int
(** Returns the number of instructions and blocks removed. *)

val run : Irmod.t -> int
