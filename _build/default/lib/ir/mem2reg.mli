(** Promotion of stack slots to SSA registers.

    The MiniC front end lowers every local variable to an [alloca] plus
    loads and stores; this pass rewrites promotable slots into pure SSA
    form (phi placement at iterated dominance frontiers followed by
    renaming over the dominator tree).  Running it gives the analyses the
    "infinite virtual register set in SSA form" the paper relies on
    (Section 3.1) and removes spurious memory objects from the points-to
    graph.

    An alloca is promotable when it allocates a single scalar (integer,
    float or pointer) and its address is used only as the pointer operand
    of loads and stores — never stored itself, passed to a call, indexed,
    or cast. *)

val promotable : Func.t -> Instr.t -> bool
(** Whether this [alloca] instruction can be promoted. *)

val run_func : Func.t -> int
(** Promote all promotable allocas of a function; returns the number of
    slots promoted. *)

val run : Irmod.t -> int
(** Run over every defined function; returns total promotions. *)
