let is_scalar = function
  | Ty.Int _ | Ty.Float | Ty.Ptr _ -> true
  | Ty.Void | Ty.Array _ | Ty.Struct _ | Ty.Func _ -> false

(* The address of a promotable slot may appear only as the pointer operand of
   loads and stores. *)
let address_escapes (f : Func.t) alloca_id =
  let uses_addr v =
    match v with Value.Reg (id, _, _) -> id = alloca_id | _ -> false
  in
  Func.fold_instrs f
    (fun escapes _ (i : Instr.t) ->
      escapes
      ||
      match i.kind with
      | Instr.Load p -> (not (uses_addr p)) && List.exists uses_addr (Instr.operands i.kind)
      | Instr.Store (v, _) -> uses_addr v
      | _ -> List.exists uses_addr (Instr.operands i.kind))
    false
  || List.exists
       (fun (b : Func.block) ->
         List.exists uses_addr (Instr.term_operands b.Func.term))
       f.Func.f_blocks

let promotable f (i : Instr.t) =
  match i.kind with
  | Instr.Alloca (ty, Value.Imm (_, 1L)) ->
      is_scalar ty && not (address_escapes f i.Instr.id)
  | _ -> false

(* Dominance frontiers from immediate dominators (Cooper-Harvey-Kennedy). *)
let dominance_frontiers cfg blocks =
  let df = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace df l []) blocks;
  List.iter
    (fun b ->
      let preds = Cfg.predecessors cfg b |> List.filter (Cfg.is_reachable cfg) in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            (* Walk from the predecessor up to (but excluding) idom(b),
               adding b to each frontier.  Note a loop header is in its own
               frontier: the walk from the back edge's source reaches b
               itself before idom(b). *)
            let rec runner r =
              if Some r <> Cfg.idom cfg b then begin
                let cur = try Hashtbl.find df r with Not_found -> [] in
                if not (List.mem b cur) then Hashtbl.replace df r (b :: cur);
                match Cfg.idom cfg r with Some d when d <> r -> runner d | _ -> ()
              end
            in
            runner p)
          preds)
    blocks;
  df

let run_func (f : Func.t) =
  if f.Func.f_blocks = [] then 0
  else begin
    let cfg = Cfg.build f in
    let blocks = Cfg.reachable cfg in
    let slots =
      Func.fold_instrs f
        (fun acc _ i -> if promotable f i then i :: acc else acc)
        []
      |> List.rev
    in
    if slots = [] then 0
    else begin
      let slot_ids = List.map (fun (i : Instr.t) -> i.Instr.id) slots in
      let slot_ty =
        List.map
          (fun (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Alloca (ty, _) -> (i.Instr.id, ty)
            | _ -> assert false)
          slots
      in
      let is_slot id = List.mem id slot_ids in
      let df = dominance_frontiers cfg blocks in
      (* Blocks storing to each slot. *)
      let def_blocks = Hashtbl.create 16 in
      List.iter
        (fun (b : Func.block) ->
          List.iter
            (fun (i : Instr.t) ->
              match i.Instr.kind with
              | Instr.Store (_, Value.Reg (id, _, _)) when is_slot id ->
                  let cur = try Hashtbl.find def_blocks id with Not_found -> [] in
                  if not (List.mem b.Func.label cur) then
                    Hashtbl.replace def_blocks id (b.Func.label :: cur)
              | _ -> ())
            b.Func.insns)
        f.Func.f_blocks;
      (* Iterated dominance frontier phi placement.
         phi_for.(label) : (slot_id -> phi instr) *)
      let phis : (string, (int, Instr.t) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
      let phi_table label =
        match Hashtbl.find_opt phis label with
        | Some t -> t
        | None ->
            let t = Hashtbl.create 4 in
            Hashtbl.replace phis label t;
            t
      in
      List.iter
        (fun slot ->
          let ty = List.assoc slot slot_ty in
          let worklist = ref (try Hashtbl.find def_blocks slot with Not_found -> []) in
          let placed = Hashtbl.create 8 in
          while !worklist <> [] do
            match !worklist with
            | [] -> ()
            | b :: rest ->
                worklist := rest;
                List.iter
                  (fun d ->
                    if not (Hashtbl.mem placed d) then begin
                      Hashtbl.replace placed d ();
                      let id = Func.fresh_reg f in
                      let phi =
                        { Instr.id; nm = "m2r"; ty; kind = Instr.Phi [] }
                      in
                      Hashtbl.replace (phi_table d) slot phi;
                      worklist := d :: !worklist
                    end)
                  (try Hashtbl.find df b with Not_found -> [])
          done)
        slot_ids;
      (* Renaming over the dominator tree. *)
      let children = Hashtbl.create 16 in
      List.iter
        (fun b ->
          match Cfg.idom cfg b with
          | Some d when d <> b ->
              let cur = try Hashtbl.find children d with Not_found -> [] in
              Hashtbl.replace children d (cur @ [ b ])
          | _ -> ())
        blocks;
      let stacks : (int, Value.t list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter (fun s -> Hashtbl.replace stacks s (ref [])) slot_ids;
      let current slot ty =
        match !(Hashtbl.find stacks slot) with
        | v :: _ -> v
        | [] -> Value.Undef ty
      in
      let replaced : (int, Value.t) Hashtbl.t = Hashtbl.create 32 in
      let subst v =
        match v with
        | Value.Reg (id, _, _) -> (
            match Hashtbl.find_opt replaced id with Some v' -> v' | None -> v)
        | _ -> v
      in
      let entry_label = (Func.entry f).Func.label in
      let rec rename label =
        let b = Func.find_block f label in
        let pushed = ref [] in
        (* Phi results become the current definitions. *)
        Hashtbl.iter
          (fun slot (phi : Instr.t) ->
            let v = Value.Reg (phi.Instr.id, phi.Instr.ty, phi.Instr.nm) in
            let st = Hashtbl.find stacks slot in
            st := v :: !st;
            pushed := slot :: !pushed)
          (phi_table label);
        let new_insns = ref [] in
        List.iter
          (fun (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Alloca _ when is_slot i.Instr.id -> ()
            | Instr.Load (Value.Reg (id, _, _)) when is_slot id ->
                let ty = List.assoc id slot_ty in
                Hashtbl.replace replaced i.Instr.id (subst (current id ty))
            | Instr.Store (v, Value.Reg (id, _, _)) when is_slot id ->
                let st = Hashtbl.find stacks id in
                st := subst v :: !st;
                pushed := id :: !pushed
            | kind ->
                new_insns :=
                  { i with Instr.kind = Instr.map_operands subst kind } :: !new_insns)
          b.Func.insns;
        b.Func.insns <- List.rev !new_insns;
        b.Func.term <- Instr.map_term_operands subst b.Func.term;
        (* Fill phi operands of CFG successors. *)
        List.iter
          (fun succ ->
            Hashtbl.iter
              (fun slot (phi : Instr.t) ->
                let ty = List.assoc slot slot_ty in
                let v = subst (current slot ty) in
                match phi.Instr.kind with
                | Instr.Phi incoming ->
                    let phi' =
                      { phi with Instr.kind = Instr.Phi ((label, v) :: incoming) }
                    in
                    Hashtbl.replace (phi_table succ) slot phi'
                | _ -> assert false)
              (phi_table succ))
          (Cfg.successors cfg label);
        List.iter rename (try Hashtbl.find children label with Not_found -> []);
        List.iter
          (fun slot ->
            let st = Hashtbl.find stacks slot in
            match !st with _ :: rest -> st := rest | [] -> ())
          !pushed
      in
      rename entry_label;
      (* Splice the (now complete) phis at block heads. *)
      List.iter
        (fun label ->
          let t = phi_table label in
          if Hashtbl.length t > 0 then begin
            let b = Func.find_block f label in
            let new_phis =
              Hashtbl.fold (fun _ phi acc -> phi :: acc) t []
              |> List.sort (fun (a : Instr.t) b -> compare a.Instr.id b.Instr.id)
            in
            b.Func.insns <- new_phis @ b.Func.insns
          end)
        blocks;
      (* A second substitution pass: loads replaced late may still be
         referenced by instructions processed before their replacement was
         recorded in a different dominator subtree order.  One fixpoint sweep
         is enough because [replaced] maps to fully-substituted values. *)
      let rec final v =
        match v with
        | Value.Reg (id, _, _) -> (
            match Hashtbl.find_opt replaced id with Some v' -> final v' | None -> v)
        | _ -> v
      in
      List.iter
        (fun (b : Func.block) ->
          b.Func.insns <-
            List.map
              (fun (i : Instr.t) ->
                { i with Instr.kind = Instr.map_operands final i.Instr.kind })
              b.Func.insns;
          b.Func.term <- Instr.map_term_operands final b.Func.term)
        f.Func.f_blocks;
      List.length slots
    end
  end

let run (m : Irmod.t) =
  List.fold_left (fun n f -> n + run_func f) 0 m.Irmod.m_funcs
