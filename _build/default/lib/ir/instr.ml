type binop =
  | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Fadd | Fsub | Fmul | Fdiv

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type cast = Bitcast | Inttoptr | Ptrtoint | Trunc | Zext | Sext | Fptosi | Sitofp

type kind =
  | Binop of binop * Value.t * Value.t
  | Icmp of icmp * Value.t * Value.t
  | Alloca of Ty.t * Value.t
  | Load of Value.t
  | Store of Value.t * Value.t
  | Gep of Value.t * Value.t list
  | Cast of cast * Value.t * Ty.t
  | Select of Value.t * Value.t * Value.t
  | Call of Value.t * Value.t list
  | Phi of (string * Value.t) list
  | Malloc of Ty.t * Value.t
  | Free of Value.t
  | Atomic_cas of Value.t * Value.t * Value.t
  | Atomic_add of Value.t * Value.t
  | Membar
  | Intrinsic of string * Value.t list

type t = { id : int; nm : string; ty : Ty.t; kind : kind }

type term =
  | Ret of Value.t option
  | Br of Value.t * string * string
  | Jmp of string
  | Switch of Value.t * (int64 * string) list * string
  | Unreachable

let result i =
  match i.ty with Ty.Void -> None | t -> Some (Value.Reg (i.id, t, i.nm))

let operands = function
  | Binop (_, a, b) | Icmp (_, a, b) | Atomic_add (a, b) -> [ a; b ]
  | Alloca (_, n) | Malloc (_, n) -> [ n ]
  | Load p | Free p -> [ p ]
  | Store (v, p) -> [ v; p ]
  | Gep (base, idxs) -> base :: idxs
  | Cast (_, v, _) -> [ v ]
  | Select (c, a, b) | Atomic_cas (c, a, b) -> [ c; a; b ]
  | Call (f, args) -> f :: args
  | Phi incoming -> List.map snd incoming
  | Membar -> []
  | Intrinsic (_, args) -> args

let map_operands f = function
  | Binop (op, a, b) -> Binop (op, f a, f b)
  | Icmp (op, a, b) -> Icmp (op, f a, f b)
  | Alloca (t, n) -> Alloca (t, f n)
  | Load p -> Load (f p)
  | Store (v, p) -> Store (f v, f p)
  | Gep (base, idxs) -> Gep (f base, List.map f idxs)
  | Cast (op, v, t) -> Cast (op, f v, t)
  | Select (c, a, b) -> Select (f c, f a, f b)
  | Call (g, args) -> Call (f g, List.map f args)
  | Phi incoming -> Phi (List.map (fun (l, v) -> (l, f v)) incoming)
  | Malloc (t, n) -> Malloc (t, f n)
  | Free p -> Free (f p)
  | Atomic_cas (p, e, r) -> Atomic_cas (f p, f e, f r)
  | Atomic_add (p, d) -> Atomic_add (f p, f d)
  | Membar -> Membar
  | Intrinsic (name, args) -> Intrinsic (name, List.map f args)

let term_operands = function
  | Ret (Some v) -> [ v ]
  | Ret None | Jmp _ | Unreachable -> []
  | Br (c, _, _) -> [ c ]
  | Switch (v, _, _) -> [ v ]

let map_term_operands f = function
  | Ret (Some v) -> Ret (Some (f v))
  | Ret None -> Ret None
  | Br (c, t, e) -> Br (f c, t, e)
  | Jmp l -> Jmp l
  | Switch (v, cases, d) -> Switch (f v, cases, d)
  | Unreachable -> Unreachable

let successors = function
  | Ret _ | Unreachable -> []
  | Br (_, t, e) -> [ t; e ]
  | Jmp l -> [ l ]
  | Switch (_, cases, d) -> List.map snd cases @ [ d ]

let has_side_effect = function
  | Store _ | Call _ | Malloc _ | Free _ | Atomic_cas _ | Atomic_add _
  | Membar | Intrinsic _ | Alloca _ ->
      true
  (* Division may trap on zero; keep it. *)
  | Binop ((Sdiv | Udiv | Srem | Urem), _, _) -> true
  | Binop _ | Icmp _ | Load _ | Gep _ | Cast _ | Select _ | Phi _ -> false

let is_phi i = match i.kind with Phi _ -> true | _ -> false
