let truncate_to_width w v =
  if w >= 64 then v
  else if w = 1 then Int64.logand v 1L (* booleans are canonically 0/1 *)
  else
    let shift = 64 - w in
    Int64.shift_right (Int64.shift_left v shift) shift

let zext_of_width w v =
  if w >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)

let eval_binop (op : Instr.binop) w a b =
  let wrap v = truncate_to_width w v in
  let ua = zext_of_width w a and ub = zext_of_width w b in
  match op with
  | Add -> Some (wrap (Int64.add a b))
  | Sub -> Some (wrap (Int64.sub a b))
  | Mul -> Some (wrap (Int64.mul a b))
  | Sdiv -> if b = 0L then None else Some (wrap (Int64.div a b))
  | Udiv -> if b = 0L then None else Some (wrap (Int64.unsigned_div ua ub))
  | Srem -> if b = 0L then None else Some (wrap (Int64.rem a b))
  | Urem -> if b = 0L then None else Some (wrap (Int64.unsigned_rem ua ub))
  | And -> Some (wrap (Int64.logand a b))
  | Or -> Some (wrap (Int64.logor a b))
  | Xor -> Some (wrap (Int64.logxor a b))
  | Shl -> Some (wrap (Int64.shift_left a (Int64.to_int (Int64.logand b 63L))))
  | Lshr -> Some (wrap (Int64.shift_right_logical ua (Int64.to_int (Int64.logand b 63L))))
  | Ashr -> Some (wrap (Int64.shift_right a (Int64.to_int (Int64.logand b 63L))))
  | Fadd | Fsub | Fmul | Fdiv -> None

let eval_icmp (op : Instr.icmp) w a b =
  let ua = zext_of_width w a and ub = zext_of_width w b in
  match op with
  | Eq -> Int64.equal a b
  | Ne -> not (Int64.equal a b)
  | Slt -> Int64.compare a b < 0
  | Sle -> Int64.compare a b <= 0
  | Sgt -> Int64.compare a b > 0
  | Sge -> Int64.compare a b >= 0
  | Ult -> Int64.unsigned_compare ua ub < 0
  | Ule -> Int64.unsigned_compare ua ub <= 0
  | Ugt -> Int64.unsigned_compare ua ub > 0
  | Uge -> Int64.unsigned_compare ua ub >= 0

let width = function Ty.Int w -> Some w | _ -> None

(* Attempt to fold one instruction to a value. *)
let fold_instr (i : Instr.t) : Value.t option =
  match i.Instr.kind with
  | Instr.Binop (op, Value.Imm (t, a), Value.Imm (_, b)) -> (
      match width t with
      | Some w -> (
          match eval_binop op w a b with
          | Some v -> Some (Value.Imm (t, v))
          | None -> None)
      | None -> None)
  (* Algebraic identities. *)
  | Instr.Binop ((Add | Or | Xor), x, Value.Imm (_, 0L))
  | Instr.Binop (Add, Value.Imm (_, 0L), x)
  | Instr.Binop (Sub, x, Value.Imm (_, 0L))
  | Instr.Binop (Mul, x, Value.Imm (_, 1L))
  | Instr.Binop (Mul, Value.Imm (_, 1L), x)
  | Instr.Binop ((Shl | Lshr | Ashr), x, Value.Imm (_, 0L)) ->
      Some x
  | Instr.Binop (Mul, _, (Value.Imm (t, 0L) as z))
  | Instr.Binop (Mul, (Value.Imm (t, 0L) as z), _)
  | Instr.Binop (And, _, (Value.Imm (t, 0L) as z))
  | Instr.Binop (And, (Value.Imm (t, 0L) as z), _) ->
      ignore t;
      Some z
  | Instr.Binop (And, x, y) when Value.equal x y -> Some x
  | Instr.Binop (Or, x, y) when Value.equal x y -> Some x
  | Instr.Binop (Sub, x, y) when Value.equal x y && Ty.is_integer (Value.ty x) ->
      Some (Value.Imm (Value.ty x, 0L))
  | Instr.Binop (Xor, x, y) when Value.equal x y && Ty.is_integer (Value.ty x) ->
      Some (Value.Imm (Value.ty x, 0L))
  | Instr.Icmp (op, Value.Imm (t, a), Value.Imm (_, b)) -> (
      match width t with
      | Some w -> Some (Value.i1 (eval_icmp op w a b))
      | None -> None)
  | Instr.Icmp (Instr.Eq, Value.Null _, Value.Null _) -> Some (Value.i1 true)
  | Instr.Icmp (Instr.Ne, Value.Null _, Value.Null _) -> Some (Value.i1 false)
  | Instr.Cast (Instr.Trunc, Value.Imm (_, v), Ty.Int w) ->
      Some (Value.Imm (Ty.Int w, truncate_to_width w v))
  | Instr.Cast (Instr.Zext, Value.Imm (Ty.Int sw, v), Ty.Int w) ->
      Some (Value.Imm (Ty.Int w, zext_of_width sw v))
  | Instr.Cast (Instr.Sext, Value.Imm (_, v), Ty.Int w) ->
      Some (Value.Imm (Ty.Int w, v))
  | Instr.Cast (Instr.Bitcast, v, t) when Ty.equal (Value.ty v) t -> Some v
  | Instr.Select (Value.Imm (_, c), a, b) -> Some (if c <> 0L then a else b)
  | Instr.Select (_, a, b) when Value.equal a b -> Some a
  | Instr.Phi incoming -> (
      (* A phi whose incoming values are all equal (ignoring self-references
         through a loop) is that value. *)
      let is_self v =
        match v with Value.Reg (id, _, _) -> id = i.Instr.id | _ -> false
      in
      let others =
        List.filter_map
          (fun (_, v) -> if is_self v then None else Some v)
          incoming
      in
      match others with
      | v :: rest when List.for_all (Value.equal v) rest -> Some v
      | _ -> None)
  | _ -> None

let run_func (f : Func.t) =
  let folded = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let replaced : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (b : Func.block) ->
        b.Func.insns <-
          List.filter
            (fun (i : Instr.t) ->
              match fold_instr i with
              | Some v ->
                  Hashtbl.replace replaced i.Instr.id v;
                  incr folded;
                  changed := true;
                  false
              | None -> true)
            b.Func.insns)
      f.Func.f_blocks;
    if Hashtbl.length replaced > 0 then begin
      (* Follow replacement chains: a fold may map to a register that was
         itself folded later in the same sweep.  Fuelled against the
         (pathological, phi-cycle) case of mutually-referring folds. *)
      let rec subst_fuel fuel v =
        match v with
        | Value.Reg (id, _, _) when fuel > 0 -> (
            match Hashtbl.find_opt replaced id with
            | Some v' -> subst_fuel (fuel - 1) v'
            | None -> v)
        | _ -> v
      in
      let subst v = subst_fuel (Hashtbl.length replaced + 1) v in
      List.iter
        (fun (b : Func.block) ->
          b.Func.insns <-
            List.map
              (fun (i : Instr.t) ->
                { i with Instr.kind = Instr.map_operands subst i.Instr.kind })
              b.Func.insns;
          b.Func.term <- Instr.map_term_operands subst b.Func.term)
        f.Func.f_blocks
    end;
    (* Fold conditional branches on constants into unconditional jumps,
       pruning phi incoming entries for the removed edges. *)
    let remove_edge src dst =
      match List.find_opt (fun b -> b.Func.label = dst) f.Func.f_blocks with
      | None -> ()
      | Some b ->
          b.Func.insns <-
            List.map
              (fun (i : Instr.t) ->
                match i.Instr.kind with
                | Instr.Phi incoming ->
                    { i with
                      Instr.kind =
                        Instr.Phi (List.filter (fun (l, _) -> l <> src) incoming)
                    }
                | _ -> i)
              b.Func.insns
    in
    List.iter
      (fun (b : Func.block) ->
        match b.Func.term with
        | Instr.Br (Value.Imm (_, c), t, e) ->
            let taken, dead = if c <> 0L then (t, e) else (e, t) in
            b.Func.term <- Instr.Jmp taken;
            if dead <> taken then remove_edge b.Func.label dead;
            changed := true
        | Instr.Switch (Value.Imm (_, v), cases, d) ->
            let target =
              match List.assoc_opt v cases with Some l -> l | None -> d
            in
            b.Func.term <- Instr.Jmp target;
            List.iter
              (fun dst -> if dst <> target then remove_edge b.Func.label dst)
              (List.sort_uniq compare (d :: List.map snd cases));
            changed := true
        | _ -> ())
      f.Func.f_blocks
  done;
  !folded

let run (m : Irmod.t) =
  List.fold_left (fun n f -> n + run_func f) 0 m.Irmod.m_funcs
