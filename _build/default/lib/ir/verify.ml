type error = { ve_func : string; ve_block : string; ve_msg : string }

let string_of_error e =
  Printf.sprintf "@%s/%%%s: %s" e.ve_func e.ve_block e.ve_msg

(* Type-check one instruction; returns error messages. *)
let check_instr ctx (m : Irmod.t) (i : Instr.t) : string list =
  let vty = Value.ty in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let expect want got what =
    if not (Ty.equal want got) then
      err "%s: expected %s, got %s" what (Ty.to_string want) (Ty.to_string got)
  in
  (match i.kind with
  | Binop (op, a, b) ->
      expect (vty a) (vty b) "binop operand types";
      (match op with
      | Fadd | Fsub | Fmul | Fdiv ->
          expect Ty.Float (vty a) "float binop operand";
          expect Ty.Float i.ty "float binop result"
      | _ ->
          if not (Ty.is_integer (vty a)) then err "integer binop on %s" (Ty.to_string (vty a));
          expect (vty a) i.ty "binop result")
  | Icmp (_, a, b) ->
      expect (vty a) (vty b) "icmp operand types";
      if not (Ty.is_integer (vty a) || Ty.is_pointer (vty a)) then
        err "icmp on non-integer/pointer %s" (Ty.to_string (vty a));
      expect Ty.i1 i.ty "icmp result"
  | Alloca (t, n) ->
      if not (Ty.is_integer (vty n)) then err "alloca count must be integer";
      expect (Ty.Ptr t) i.ty "alloca result"
  | Load p -> (
      match vty p with
      | Ty.Ptr pointee -> expect pointee i.ty "load result"
      | t -> err "load through non-pointer %s" (Ty.to_string t))
  | Store (x, p) -> (
      match vty p with
      | Ty.Ptr pointee -> expect pointee (vty x) "store value"
      | t -> err "store through non-pointer %s" (Ty.to_string t))
  | Gep (base, idxs) -> (
      List.iter
        (fun idx ->
          if not (Ty.is_integer (vty idx)) then err "gep index must be integer")
        idxs;
      try expect (Builder.gep_result_ty ctx (vty base) idxs) i.ty "gep result"
      with Invalid_argument msg -> err "%s" msg)
  | Cast (op, x, t) -> (
      expect t i.ty "cast result";
      let src = vty x in
      match op with
      | Bitcast ->
          if not ((Ty.is_pointer src && Ty.is_pointer t)
                 || (Ty.is_integer src && Ty.is_integer t))
          then err "bitcast %s to %s" (Ty.to_string src) (Ty.to_string t)
      | Inttoptr ->
          if not (Ty.is_integer src && Ty.is_pointer t) then
            err "inttoptr %s to %s" (Ty.to_string src) (Ty.to_string t)
      | Ptrtoint ->
          if not (Ty.is_pointer src && Ty.is_integer t) then
            err "ptrtoint %s to %s" (Ty.to_string src) (Ty.to_string t)
      | Trunc | Zext | Sext ->
          if not (Ty.is_integer src && Ty.is_integer t) then
            err "int cast %s to %s" (Ty.to_string src) (Ty.to_string t)
      | Fptosi ->
          if not (Ty.is_float src && Ty.is_integer t) then err "fptosi misuse"
      | Sitofp ->
          if not (Ty.is_integer src && Ty.is_float t) then err "sitofp misuse")
  | Select (c, a, b) ->
      expect Ty.i1 (vty c) "select condition";
      expect (vty a) (vty b) "select arms";
      expect (vty a) i.ty "select result"
  | Call (callee, args) -> (
      match vty callee with
      | Ty.Ptr (Ty.Func (ret, params, varargs)) ->
          expect ret i.ty "call result";
          let nargs = List.length args and nparams = List.length params in
          if nargs < nparams || ((not varargs) && nargs > nparams) then
            err "call arity: %d args for %d params" nargs nparams
          else
            List.iteri
              (fun k p ->
                match List.nth_opt args k with
                | Some a -> expect p (vty a) (Printf.sprintf "call arg %d" k)
                | None -> ())
              params;
          (* Direct calls must reference a known symbol. *)
          (match callee with
          | Value.Fn (name, _) ->
              if Irmod.symbol_ty m name = None then err "call of unknown @%s" name
          | _ -> ())
      | t -> err "call through non-function %s" (Ty.to_string t))
  | Phi incoming ->
      if incoming = [] then err "empty phi";
      List.iter
        (fun (_, x) -> expect i.ty (vty x) "phi incoming value")
        incoming
  | Malloc (t, n) ->
      if not (Ty.is_integer (vty n)) then err "malloc count must be integer";
      expect (Ty.Ptr t) i.ty "malloc result"
  | Free p -> if not (Ty.is_pointer (vty p)) then err "free of non-pointer"
  | Atomic_cas (p, e, r) -> (
      match vty p with
      | Ty.Ptr pointee ->
          expect pointee (vty e) "cas expected";
          expect pointee (vty r) "cas replacement";
          expect pointee i.ty "cas result"
      | t -> err "cas through non-pointer %s" (Ty.to_string t))
  | Atomic_add (p, d) -> (
      match vty p with
      | Ty.Ptr pointee ->
          expect pointee (vty d) "atomicadd delta";
          expect pointee i.ty "atomicadd result"
      | t -> err "atomicadd through non-pointer %s" (Ty.to_string t))
  | Membar -> ()
  | Intrinsic (_, _) -> ());
  !errs

let verify_func ctx m (f : Func.t) : error list =
  let errors = ref [] in
  let add block msg =
    errors := { ve_func = f.Func.f_name; ve_block = block; ve_msg = msg } :: !errors
  in
  if f.Func.f_blocks = [] then begin
    add "" "function has no blocks";
    List.rev !errors
  end
  else begin
    let labels = Hashtbl.create 16 in
    List.iter
      (fun (b : Func.block) ->
        if Hashtbl.mem labels b.Func.label then
          add b.Func.label "duplicate block label"
        else Hashtbl.replace labels b.Func.label ())
      f.Func.f_blocks;
    (* Definition map: register id -> defining block; params live at entry. *)
    let defs = Hashtbl.create 64 in
    List.iteri (fun idx _ -> Hashtbl.replace defs idx "") f.Func.f_params;
    List.iter
      (fun (b : Func.block) ->
        List.iter
          (fun (i : Instr.t) ->
            match Instr.result i with
            | Some (Value.Reg (id, _, _)) ->
                if Hashtbl.mem defs id then
                  add b.Func.label
                    (Printf.sprintf "register %%r%d defined twice (SSA violation)" id)
                else Hashtbl.replace defs id b.Func.label
            | _ -> ())
          b.Func.insns)
      f.Func.f_blocks;
    let cfg = Cfg.build f in
    (* Per-block: instruction typing, phi placement, use-before-def. *)
    List.iter
      (fun (b : Func.block) ->
        let seen_nonphi = ref false in
        let local_defined = Hashtbl.create 16 in
        let check_use (i : Instr.t) (v : Value.t) =
          match v with
          | Value.Reg (id, _, _) -> (
              match Hashtbl.find_opt defs id with
              | None ->
                  add b.Func.label (Printf.sprintf "use of undefined register %%r%d" id)
              | Some "" -> () (* parameter *)
              | Some def_block ->
                  if Instr.is_phi i then () (* checked against predecessor below *)
                  else if def_block = b.Func.label then begin
                    if not (Hashtbl.mem local_defined id) then
                      add b.Func.label
                        (Printf.sprintf "register %%r%d used before its definition" id)
                  end
                  else if
                    Cfg.is_reachable cfg b.Func.label
                    && Cfg.is_reachable cfg def_block
                    && not (Cfg.dominates cfg def_block b.Func.label)
                  then
                    add b.Func.label
                      (Printf.sprintf "use of %%r%d not dominated by its definition" id))
          | Value.Global (name, _) ->
              if Irmod.find_global m name = None then
                add b.Func.label ("reference to unknown global @" ^ name)
          | Value.Fn (name, _) ->
              if Irmod.symbol_ty m name = None then
                add b.Func.label ("reference to unknown function @" ^ name)
          | Value.Imm _ | Value.Fimm _ | Value.Null _ | Value.Undef _ -> ()
        in
        List.iter
          (fun (i : Instr.t) ->
            if Instr.is_phi i then begin
              if !seen_nonphi then add b.Func.label "phi after non-phi instruction";
              (match i.kind with
              | Instr.Phi incoming ->
                  let preds = Cfg.predecessors cfg b.Func.label in
                  List.iter
                    (fun (l, _) ->
                      if not (List.mem l preds) then
                        add b.Func.label
                          (Printf.sprintf "phi incoming from non-predecessor %%%s" l))
                    incoming;
                  List.iter
                    (fun p ->
                      if not (List.mem_assoc p incoming) then
                        add b.Func.label
                          (Printf.sprintf "phi missing incoming for predecessor %%%s" p))
                    preds
              | _ -> ())
            end
            else seen_nonphi := true;
            List.iter (check_use i) (Instr.operands i.kind);
            List.iter (fun msg -> add b.Func.label msg) (check_instr ctx m i);
            (match Instr.result i with
            | Some (Value.Reg (id, _, _)) -> Hashtbl.replace local_defined id ()
            | _ -> ()))
          b.Func.insns;
        List.iter (check_use { Instr.id = -1; nm = ""; ty = Ty.Void; kind = Instr.Membar })
          (Instr.term_operands b.Func.term);
        (match b.Func.term with
        | Instr.Ret None ->
            if not (Ty.equal f.Func.f_ret Ty.Void) then
              add b.Func.label "ret void from non-void function"
        | Instr.Ret (Some x) ->
            if not (Ty.equal f.Func.f_ret (Value.ty x)) then
              add b.Func.label
                (Printf.sprintf "ret %s from %s function"
                   (Ty.to_string (Value.ty x))
                   (Ty.to_string f.Func.f_ret))
        | Instr.Br (c, _, _) ->
            if not (Ty.equal (Value.ty c) Ty.i1) then
              add b.Func.label "br condition is not i1"
        | Instr.Jmp _ | Instr.Switch _ | Instr.Unreachable -> ());
        List.iter
          (fun target ->
            if not (Hashtbl.mem labels target) then
              add b.Func.label ("branch to unknown label %" ^ target))
          (Instr.successors b.Func.term))
      f.Func.f_blocks;
    List.rev !errors
  end

let verify_module (m : Irmod.t) : error list =
  let dup_errs = ref [] in
  let seen = Hashtbl.create 64 in
  let check_symbol kind name =
    if Hashtbl.mem seen name then
      dup_errs :=
        { ve_func = name; ve_block = ""; ve_msg = "duplicate " ^ kind ^ " symbol" }
        :: !dup_errs
    else Hashtbl.replace seen name ()
  in
  List.iter (fun (g : Irmod.global) -> check_symbol "global" g.g_name) m.m_globals;
  List.iter (fun (f : Func.t) -> check_symbol "function" f.Func.f_name) m.m_funcs;
  List.iter
    (fun (name, ty) ->
      match Irmod.find_func m name with
      | Some f when not (Ty.equal (Func.func_ty f) ty) ->
          dup_errs :=
            { ve_func = name; ve_block = ""; ve_msg = "extern type mismatch" }
            :: !dup_errs
      | _ -> ())
    m.m_externs;
  List.rev !dup_errs
  @ List.concat_map (fun f -> verify_func m.m_ctx m f) m.m_funcs

let check m =
  match verify_module m with
  | [] -> ()
  | errs ->
      failwith
        ("IR verification failed:\n"
        ^ String.concat "\n" (List.map string_of_error errs))
