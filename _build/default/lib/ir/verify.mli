(** Module and SSA verifier.

    Checks the structural well-formedness that the SVM relies on before
    translating bytecode (Section 3.4): unique SSA definitions, uses
    dominated by definitions, type-correct instructions, branch targets
    that exist, calls that match their callee signatures, and phi nodes
    consistent with the CFG.  This is distinct from — and a prerequisite
    of — the safety type checker of Section 5 ({!Sva_tyck}). *)

type error = { ve_func : string; ve_block : string; ve_msg : string }

val string_of_error : error -> string

val verify_func : Ty.ctx -> Irmod.t -> Func.t -> error list
(** All well-formedness violations found in a function (empty = OK). *)

val verify_module : Irmod.t -> error list
(** Verify every defined function plus module-level invariants (no
    duplicate symbols, extern/definition type agreement). *)

val check : Irmod.t -> unit
(** @raise Failure with a readable report if {!verify_module} finds
    errors. *)
