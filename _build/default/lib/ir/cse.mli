(** Local common-subexpression elimination.

    Within each basic block, pure instructions (arithmetic, comparisons,
    [getelementptr], casts, selects) that recompute an expression already
    available are replaced by the earlier result.  Loads participate too,
    but the available-load set is invalidated by any instruction that may
    write memory.  This pass is part of the "llvm-like" code generator
    configuration (Section 7.1: the LLVM/GCC code generator difference
    accounts for at most 13% overhead). *)

val run_func : Func.t -> int
(** Number of instructions eliminated. *)

val run : Irmod.t -> int
