lib/ir/func.ml: Instr List Ty Value
