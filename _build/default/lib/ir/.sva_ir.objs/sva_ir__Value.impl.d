lib/ir/value.ml: Format Int64 Printf Ty
