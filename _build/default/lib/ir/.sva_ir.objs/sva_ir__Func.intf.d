lib/ir/func.mli: Instr Ty Value
