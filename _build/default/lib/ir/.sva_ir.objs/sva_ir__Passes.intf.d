lib/ir/passes.mli: Irmod
