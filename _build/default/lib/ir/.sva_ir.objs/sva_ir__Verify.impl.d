lib/ir/verify.ml: Builder Cfg Func Hashtbl Instr Irmod List Printf String Ty Value
