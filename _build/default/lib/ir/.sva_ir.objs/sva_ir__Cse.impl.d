lib/ir/cse.ml: Func Hashtbl Instr Irmod List Pp Printf String Ty Value
