lib/ir/ty.ml: Format Hashtbl List Printf String
