lib/ir/cfg.mli: Func
