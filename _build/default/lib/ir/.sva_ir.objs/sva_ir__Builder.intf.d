lib/ir/builder.mli: Func Instr Irmod Ty Value
