lib/ir/verify.mli: Func Irmod Ty
