lib/ir/mem2reg.ml: Cfg Func Hashtbl Instr Irmod List Ty Value
