lib/ir/builder.ml: Func Instr Int64 Irmod Ty Value
