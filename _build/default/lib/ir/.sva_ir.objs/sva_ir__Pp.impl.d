lib/ir/pp.ml: Buffer Format Func Instr Irmod List Printf String Ty Value
