lib/ir/constfold.ml: Func Hashtbl Instr Int64 Irmod List Ty Value
