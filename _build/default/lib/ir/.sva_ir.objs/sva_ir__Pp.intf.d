lib/ir/pp.mli: Format Func Instr Irmod
