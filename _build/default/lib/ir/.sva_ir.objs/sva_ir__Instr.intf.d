lib/ir/instr.mli: Ty Value
