lib/ir/passes.ml: Constfold Cse Dce Irmod Mem2reg Verify
