lib/ir/irmod.ml: Func List Ty Value
