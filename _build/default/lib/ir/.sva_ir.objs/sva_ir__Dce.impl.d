lib/ir/dce.ml: Cfg Func Hashtbl Instr Irmod List Value
