lib/ir/instr.ml: List Ty Value
