lib/ir/constfold.mli: Func Instr Irmod
