lib/ir/dce.mli: Func Irmod
