lib/ir/irmod.mli: Func Ty Value
