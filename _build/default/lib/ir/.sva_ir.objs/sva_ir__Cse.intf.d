lib/ir/cse.mli: Func Irmod
