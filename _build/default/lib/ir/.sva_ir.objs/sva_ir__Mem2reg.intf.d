lib/ir/mem2reg.mli: Func Instr Irmod
