lib/ir/cfg.ml: Func Hashtbl Instr List
