let remove_unreachable (f : Func.t) =
  if f.Func.f_blocks = [] then 0
  else begin
    let cfg = Cfg.build f in
    let dead, live =
      List.partition
        (fun (b : Func.block) -> not (Cfg.is_reachable cfg b.Func.label))
        f.Func.f_blocks
    in
    if dead = [] then 0
    else begin
      let dead_labels = List.map (fun (b : Func.block) -> b.Func.label) dead in
      f.Func.f_blocks <- live;
      List.iter
        (fun (b : Func.block) ->
          b.Func.insns <-
            List.map
              (fun (i : Instr.t) ->
                match i.Instr.kind with
                | Instr.Phi incoming ->
                    { i with
                      Instr.kind =
                        Instr.Phi
                          (List.filter
                             (fun (l, _) -> not (List.mem l dead_labels))
                             incoming)
                    }
                | _ -> i)
              b.Func.insns)
        f.Func.f_blocks;
      List.length dead
    end
  end

let remove_dead_instrs (f : Func.t) =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let used : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let mark v =
      match v with
      | Value.Reg (id, _, _) -> Hashtbl.replace used id ()
      | _ -> ()
    in
    List.iter
      (fun (b : Func.block) ->
        List.iter
          (fun (i : Instr.t) -> List.iter mark (Instr.operands i.Instr.kind))
          b.Func.insns;
        List.iter mark (Instr.term_operands b.Func.term))
      f.Func.f_blocks;
    List.iter
      (fun (b : Func.block) ->
        b.Func.insns <-
          List.filter
            (fun (i : Instr.t) ->
              let dead =
                (not (Instr.has_side_effect i.Instr.kind))
                && (match Instr.result i with
                   | Some (Value.Reg (id, _, _)) -> not (Hashtbl.mem used id)
                   | _ -> true)
              in
              if dead then begin
                incr removed;
                changed := true
              end;
              not dead)
            b.Func.insns)
      f.Func.f_blocks
  done;
  !removed

let run_func f = remove_unreachable f + remove_dead_instrs f

let run (m : Irmod.t) =
  List.fold_left (fun n f -> n + run_func f) 0 m.Irmod.m_funcs
