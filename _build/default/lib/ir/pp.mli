(** Textual rendering of SVA IR ("SVA assembly"), used for dumps, golden
    tests and the Figure 2 reproduction. *)

val string_of_binop : Instr.binop -> string
val string_of_icmp : Instr.icmp -> string
val string_of_cast : Instr.cast -> string

val string_of_instr : Instr.t -> string
(** One instruction, without trailing newline. *)

val string_of_term : Instr.term -> string

val string_of_block : Func.block -> string
(** Label line plus indented instructions and terminator. *)

val string_of_func : Func.t -> string

val string_of_module : Irmod.t -> string
(** Struct definitions, globals, externs and functions. *)

val pp_func : Format.formatter -> Func.t -> unit
val pp_module : Format.formatter -> Irmod.t -> unit
