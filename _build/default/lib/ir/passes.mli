(** Pass pipelines modelling the code generators compared in Section 7.1.

    The paper measures four kernels; two of the axes are the C compiler
    used (GCC vs the LLVM C compiler) and whether the safety-checking
    passes run.  Here the compiler axis is modelled by two optimization
    pipelines over SVA IR; the safety axis lives in {!Sva_safety}. *)

type pipeline =
  | Gcc_like  (** mem2reg + constant folding + DCE *)
  | Llvm_like  (** mem2reg + constant folding + local CSE + DCE, to fixpoint *)

val pipeline_name : pipeline -> string

val run : pipeline -> Irmod.t -> unit
(** Run the pipeline over the module and re-verify the result.
    @raise Failure if a pass breaks IR well-formedness (a compiler bug). *)

val run_no_verify : pipeline -> Irmod.t -> unit
(** As {!run} without the re-verification (used inside benchmarks). *)
