(** SVA modules — the unit of compilation, verification and translation.

    An SVA object file ("Module", Section 3.1) includes functions, global
    variables, type and external function declarations, and symbol table
    entries.  Both the safety-checking compiler and the bytecode verifier
    operate on this same representation. *)

(** Initializer of a global variable. *)
type ginit =
  | Zero  (** zero-initialized *)
  | Str of string  (** C string contents (a trailing NUL is layout's job) *)
  | Ints of Ty.t * int64 list  (** array of integer constants *)
  | Ptrs of string list  (** array of function/global symbol addresses *)

type global = {
  g_name : string;
  g_ty : Ty.t;  (** pointee type: the global's value has type [Ptr g_ty] *)
  g_init : ginit;
  g_const : bool;  (** read-only (placed in a write-protected region) *)
}

type t = {
  m_name : string;
  m_ctx : Ty.ctx;  (** named structure definitions *)
  mutable m_globals : global list;
  mutable m_funcs : Func.t list;
  mutable m_externs : (string * Ty.t) list;
      (** declared-but-not-defined functions: (name, [Ty.Func] type) *)
}

val create : string -> t

val add_global : t -> global -> unit
(** @raise Invalid_argument on duplicate global name. *)

val add_func : t -> Func.t -> unit
(** @raise Invalid_argument on duplicate function name. *)

val declare_extern : t -> string -> Ty.t -> unit
(** Idempotent external declaration.
    @raise Invalid_argument if redeclared at a different type. *)

val find_func : t -> string -> Func.t option
val find_global : t -> string -> global option

val extern_ty : t -> string -> Ty.t option
(** Type of an external declaration, if present. *)

val symbol_ty : t -> string -> Ty.t option
(** Function type of [name] whether defined or external. *)

val global_value : global -> Value.t
val func_value : Func.t -> Value.t

val merge : t -> t -> unit
(** [merge dst src] links [src] into [dst] (module-level linking as used for
    loadable kernel modules).  Struct definitions must agree; an external
    declaration in one module may be resolved by a definition in the
    other.  @raise Invalid_argument on clashing definitions. *)

val instr_count : t -> int
(** Total instruction count over all defined functions. *)
