(** Constant folding and algebraic simplification.

    Evaluates integer arithmetic, comparisons, casts and selects whose
    operands are constants, respecting the operand bit width (wrap-around
    semantics as executed by the SVM), plus simple identities
    ([x + 0], [x * 1], [x & 0], ...).  Folding is performed to a fixpoint
    within each function. *)

val eval_binop : Instr.binop -> int -> int64 -> int64 -> int64 option
(** [eval_binop op width a b] — integer evaluation at [width] bits;
    [None] for division by zero (which must trap at run time). *)

val eval_icmp : Instr.icmp -> int -> int64 -> int64 -> bool
(** Comparison at the given bit width (signed or unsigned per predicate). *)

val truncate_to_width : int -> int64 -> int64
(** Wrap a 64-bit value to a w-bit two's-complement value, sign-extended
    back to 64 bits (the SVM's canonical register representation). *)

val zext_of_width : int -> int64 -> int64
(** The unsigned reading of a canonical w-bit value. *)

val run_func : Func.t -> int
(** Fold until fixpoint; returns the number of instructions folded. *)

val run : Irmod.t -> int
