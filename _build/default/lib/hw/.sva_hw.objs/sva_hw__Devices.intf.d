lib/hw/devices.mli: Buffer Bytes
