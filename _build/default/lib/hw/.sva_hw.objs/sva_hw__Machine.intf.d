lib/hw/machine.mli: Bytes
