lib/hw/mmu.mli:
