lib/hw/mmu.ml: Hashtbl List Machine
