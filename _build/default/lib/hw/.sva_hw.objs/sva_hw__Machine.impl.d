lib/hw/machine.ml: Bytes Char Fun Int64 Printf
