lib/hw/cpu.ml: Array Int64 Machine
