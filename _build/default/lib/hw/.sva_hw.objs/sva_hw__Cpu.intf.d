lib/hw/cpu.mli: Machine
