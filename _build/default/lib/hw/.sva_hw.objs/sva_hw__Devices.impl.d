lib/hw/devices.ml: Buffer Bytes Int64 List Printf
