(** Simulated devices reached through SVA-OS I/O operations: a console, a
    ram-disk, a timer, and a loopback NIC.  Device drivers in the kernel
    were among the code the paper required I/O instruction changes for
    (Section 6.1); here every driver access goes through [sva.io.*]
    operations implemented over these models. *)

type console = { mutable out : Buffer.t }

type ramdisk = {
  rd_blocks : Bytes.t;
  rd_block_size : int;
  mutable rd_reads : int;
  mutable rd_writes : int;
}

(** A network frame on the simulated wire. *)
type frame = { fr_proto : int; fr_payload : Bytes.t }

type nic = {
  mutable rx : frame list;  (** frames awaiting kernel receive *)
  mutable tx : frame list;  (** frames sent by the kernel (newest first) *)
  mutable rx_dropped : int;
}

type timer = { mutable ticks : int64 }

type t = {
  console : console;
  disk : ramdisk;
  nic : nic;
  timer : timer;
}

val create : ?disk_blocks:int -> ?block_size:int -> unit -> t

val console_write : t -> Bytes.t -> unit
val console_output : t -> string
val console_clear : t -> unit

val disk_read : t -> block:int -> Bytes.t
(** @raise Invalid_argument on out-of-range block numbers. *)

val disk_write : t -> block:int -> Bytes.t -> unit

val nic_inject : t -> frame -> unit
(** Host side: put a frame on the wire for the kernel to receive. *)

val nic_recv : t -> frame option
(** Kernel side: take the next received frame. *)

val nic_send : t -> frame -> unit
(** Kernel side: transmit a frame. *)

val nic_take_tx : t -> frame list
(** Host side: drain transmitted frames (oldest first). *)

val timer_read : t -> int64
val timer_tick : t -> unit
