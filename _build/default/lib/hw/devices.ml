type console = { mutable out : Buffer.t }

type ramdisk = {
  rd_blocks : Bytes.t;
  rd_block_size : int;
  mutable rd_reads : int;
  mutable rd_writes : int;
}

type frame = { fr_proto : int; fr_payload : Bytes.t }

type nic = {
  mutable rx : frame list;
  mutable tx : frame list;
  mutable rx_dropped : int;
}

type timer = { mutable ticks : int64 }

type t = { console : console; disk : ramdisk; nic : nic; timer : timer }

let create ?(disk_blocks = 4096) ?(block_size = 512) () =
  {
    console = { out = Buffer.create 256 };
    disk =
      {
        rd_blocks = Bytes.make (disk_blocks * block_size) '\000';
        rd_block_size = block_size;
        rd_reads = 0;
        rd_writes = 0;
      };
    nic = { rx = []; tx = []; rx_dropped = 0 };
    timer = { ticks = 0L };
  }

let console_write t b = Buffer.add_bytes t.console.out b
let console_output t = Buffer.contents t.console.out
let console_clear t = Buffer.clear t.console.out

let check_block t block =
  let nblocks = Bytes.length t.disk.rd_blocks / t.disk.rd_block_size in
  if block < 0 || block >= nblocks then
    invalid_arg (Printf.sprintf "ramdisk: block %d out of range" block)

let disk_read t ~block =
  check_block t block;
  t.disk.rd_reads <- t.disk.rd_reads + 1;
  Bytes.sub t.disk.rd_blocks (block * t.disk.rd_block_size) t.disk.rd_block_size

let disk_write t ~block b =
  check_block t block;
  t.disk.rd_writes <- t.disk.rd_writes + 1;
  let len = min (Bytes.length b) t.disk.rd_block_size in
  Bytes.blit b 0 t.disk.rd_blocks (block * t.disk.rd_block_size) len

let nic_inject t fr = t.nic.rx <- t.nic.rx @ [ fr ]

let nic_recv t =
  match t.nic.rx with
  | [] -> None
  | fr :: rest ->
      t.nic.rx <- rest;
      Some fr

let nic_send t fr = t.nic.tx <- fr :: t.nic.tx

let nic_take_tx t =
  let frames = List.rev t.nic.tx in
  t.nic.tx <- [];
  frames

let timer_read t = t.timer.ticks
let timer_tick t = t.timer.ticks <- Int64.add t.timer.ticks 1L
