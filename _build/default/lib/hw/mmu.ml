exception Mmu_fault of int * string

type prot = { p_read : bool; p_write : bool; p_user : bool }

type space = {
  sp_id : int;
  sp_pages : (int, int * prot) Hashtbl.t; (* vpn -> (ppn, prot) *)
}

type t = { mutable spaces : space list; mutable cur : space option; mutable next : int }

let create () = { spaces = []; cur = None; next = 1 }

let new_space t =
  let sp = { sp_id = t.next; sp_pages = Hashtbl.create 64 } in
  t.next <- t.next + 1;
  t.spaces <- sp :: t.spaces;
  sp

let clone_space t src =
  let sp = new_space t in
  Hashtbl.iter (fun vpn m -> Hashtbl.replace sp.sp_pages vpn m) src.sp_pages;
  sp

let destroy_space t sp =
  t.spaces <- List.filter (fun s -> s.sp_id <> sp.sp_id) t.spaces;
  if t.cur = Some sp then t.cur <- None

let activate t sp = t.cur <- Some sp

let current t = t.cur

let space_id sp = sp.sp_id

let svm_first_ppn = Machine.svm_base / Machine.page_size
let svm_last_ppn = (Machine.svm_base + Machine.svm_size - 1) / Machine.page_size

let map_page sp ~vpn ~ppn ~prot =
  if ppn >= svm_first_ppn && ppn <= svm_last_ppn then
    raise (Mmu_fault (ppn * Machine.page_size, "mapping SVM-reserved frame"));
  Hashtbl.replace sp.sp_pages vpn (ppn, prot)

let unmap_page sp ~vpn = Hashtbl.remove sp.sp_pages vpn

let translate t ~addr ~write =
  if Machine.in_kernel_range ~addr then addr
  else
    match t.cur with
    | None -> raise (Mmu_fault (addr, "no active address space"))
    | Some sp -> (
        let vpn = addr / Machine.page_size in
        match Hashtbl.find_opt sp.sp_pages vpn with
        | None -> raise (Mmu_fault (addr, "page not mapped"))
        | Some (ppn, prot) ->
            if write && not prot.p_write then
              raise (Mmu_fault (addr, "write to read-only page"));
            (ppn * Machine.page_size) + (addr mod Machine.page_size))

let mapped_pages sp =
  Hashtbl.fold (fun vpn (ppn, _) acc -> (vpn, ppn) :: acc) sp.sp_pages []
  |> List.sort compare

let page_count sp = Hashtbl.length sp.sp_pages
