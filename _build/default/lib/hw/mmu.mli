(** Simulated MMU: per-address-space page tables for the userspace window.

    Kernel addresses are identity-mapped (the classic lowmem direct map);
    only userspace virtual pages are translated.  The SVM mediates every
    page-table update through the SVA-OS MMU operations, which lets it
    refuse mappings that would expose SVM-reserved memory to the kernel or
    to user programs (Section 3.4). *)

exception Mmu_fault of int * string

type prot = { p_read : bool; p_write : bool; p_user : bool }

type space
(** One address space (one process's user mappings). *)

type t
(** The MMU: a set of address spaces and the currently active one. *)

val create : unit -> t

val new_space : t -> space
(** Create an empty address space. *)

val clone_space : t -> space -> space
(** Duplicate all mappings (fork).  Returns the copy. *)

val destroy_space : t -> space -> unit

val activate : t -> space -> unit
(** Load the "page table base register". *)

val current : t -> space option

val space_id : space -> int

val map_page : space -> vpn:int -> ppn:int -> prot:prot -> unit
(** Install a translation for user virtual page [vpn].
    @raise Mmu_fault if [ppn] would alias SVM-reserved memory. *)

val unmap_page : space -> vpn:int -> unit

val translate : t -> addr:int -> write:bool -> int
(** Translate a user virtual address through the active space.
    Kernel addresses return unchanged.  @raise Mmu_fault on missing
    mapping or protection violation. *)

val mapped_pages : space -> (int * int) list
(** All (vpn, ppn) pairs — used by fork to copy page tables. *)

val page_count : space -> int
