(** Simulated processor state.

    SVA divides the opaque native state into {e control state} (general
    purpose + privileged registers) and {e floating point state}
    (Section 3.3).  The SVA-OS state-saving operations (Table 1) copy
    these blobs to and from kernel memory; lazy FP saving is supported by
    the dirty bit. *)

type t = {
  mutable gpr : int64 array;  (** 16 general-purpose registers *)
  mutable pc : int64;  (** program counter cookie *)
  mutable flags : int64;  (** condition/priv flags word *)
  mutable privileged : bool;  (** current privilege level *)
  mutable interrupts_enabled : bool;
  mutable fpr : float array;  (** 8 floating point registers *)
  mutable fp_dirty : bool;  (** FP state touched since last load *)
}

val create : unit -> t

val integer_state_size : int
(** Bytes needed by {!save_integer}: 16 GPRs + pc + flags = 144. *)

val fp_state_size : int
(** Bytes needed by {!save_fp}: 8 doubles = 64. *)

val save_integer : t -> Machine.t -> addr:int -> unit
(** Serialize the control state to memory (llva.save.integer). *)

val load_integer : t -> Machine.t -> addr:int -> unit
(** Restore the control state from memory (llva.load.integer). *)

val save_fp : t -> Machine.t -> addr:int -> always:bool -> bool
(** llva.save.fp: saves if [always] or the FP state is dirty; returns
    whether a save actually happened (the lazy-FP optimization). *)

val load_fp : t -> Machine.t -> addr:int -> unit

val scramble : t -> seed:int -> unit
(** Perturb the register state deterministically (used by tests and by
    the interrupt machinery to model clobbered scratch registers). *)

val equal_integer : t -> t -> bool
(** Control-state equality (for save/restore round-trip tests). *)
