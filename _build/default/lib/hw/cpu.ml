type t = {
  mutable gpr : int64 array;
  mutable pc : int64;
  mutable flags : int64;
  mutable privileged : bool;
  mutable interrupts_enabled : bool;
  mutable fpr : float array;
  mutable fp_dirty : bool;
}

let create () =
  {
    gpr = Array.make 16 0L;
    pc = 0L;
    flags = 0L;
    privileged = true;
    interrupts_enabled = true;
    fpr = Array.make 8 0.0;
    fp_dirty = false;
  }

let integer_state_size = (16 * 8) + 8 + 8
let fp_state_size = 8 * 8

let save_integer t mem ~addr =
  Array.iteri
    (fun i v -> Machine.write_int mem ~addr:(addr + (i * 8)) ~width:8 v)
    t.gpr;
  Machine.write_int mem ~addr:(addr + 128) ~width:8 t.pc;
  let f =
    Int64.logor t.flags
      (Int64.logor
         (if t.privileged then 0x100L else 0L)
         (if t.interrupts_enabled then 0x200L else 0L))
  in
  Machine.write_int mem ~addr:(addr + 136) ~width:8 f

let load_integer t mem ~addr =
  for i = 0 to 15 do
    t.gpr.(i) <- Machine.read_int mem ~addr:(addr + (i * 8)) ~width:8
  done;
  t.pc <- Machine.read_int mem ~addr:(addr + 128) ~width:8;
  let f = Machine.read_int mem ~addr:(addr + 136) ~width:8 in
  t.privileged <- Int64.logand f 0x100L <> 0L;
  t.interrupts_enabled <- Int64.logand f 0x200L <> 0L;
  t.flags <- Int64.logand f 0xffL

let save_fp t mem ~addr ~always =
  if always || t.fp_dirty then begin
    Array.iteri
      (fun i v ->
        Machine.write_int mem ~addr:(addr + (i * 8)) ~width:8
          (Int64.bits_of_float v))
      t.fpr;
    t.fp_dirty <- false;
    true
  end
  else false

let load_fp t mem ~addr =
  for i = 0 to 7 do
    t.fpr.(i) <-
      Int64.float_of_bits (Machine.read_int mem ~addr:(addr + (i * 8)) ~width:8)
  done;
  t.fp_dirty <- false

let scramble t ~seed =
  let s = ref (Int64.of_int (seed * 2654435761)) in
  let next () =
    s := Int64.mul (Int64.add !s 0x9E3779B97F4A7C15L) 0xBF58476D1CE4E5B9L;
    !s
  in
  Array.iteri (fun i _ -> t.gpr.(i) <- next ()) t.gpr;
  t.pc <- next ();
  t.flags <- Int64.logand (next ()) 0xffL

let equal_integer a b =
  a.gpr = b.gpr && a.pc = b.pc && a.flags = b.flags
  && a.privileged = b.privileged
  && a.interrupts_enabled = b.interrupts_enabled
