(** Safety violations detected by the SVA run-time checks.

    A violation corresponds to a run-time check failing (Section 4.5) or an
    allocator-contract breach (Section 4.4).  Under SVM execution a
    violation raises {!Safety_violation}, which the virtual machine turns
    into a kernel trap — the hook where recovery mechanisms (Vino, Nooks,
    SafeDrive) would attach per Section 2. *)

type kind =
  | Bounds  (** [boundscheck] failed: indexing escaped the object *)
  | Load_store  (** [lscheck] failed: pointer outside every registered object *)
  | Indirect_call  (** call target not in the compiler's call graph set *)
  | Double_free  (** deallocating an object that is not live *)
  | Illegal_free  (** deallocating via a pointer not at an object start *)
  | Uninit_pointer  (** dereferencing an uninitialized/null pointer *)
  | Userspace_escape
      (** a userspace-supplied range crossing into kernel space (Section
          4.6's attack: "a buffer that starts in userspace but ends in
          kernel space") *)

type t = {
  v_kind : kind;
  v_metapool : string;  (** name of the metapool whose check fired ("" if none) *)
  v_addr : int;  (** offending address *)
  v_msg : string;  (** human-readable detail *)
}

exception Safety_violation of t

val violation : kind -> metapool:string -> addr:int -> string -> 'a
(** Raise {!Safety_violation}. *)

val kind_to_string : kind -> string
val to_string : t -> string
