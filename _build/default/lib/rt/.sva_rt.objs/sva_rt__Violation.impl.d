lib/rt/violation.ml: Printf
