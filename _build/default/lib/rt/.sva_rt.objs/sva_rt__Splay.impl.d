lib/rt/splay.ml: List Printf
