lib/rt/metapool_rt.mli: Splay
