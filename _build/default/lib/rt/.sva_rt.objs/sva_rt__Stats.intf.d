lib/rt/stats.mli:
