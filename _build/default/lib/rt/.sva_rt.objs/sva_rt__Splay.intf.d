lib/rt/splay.mli:
