lib/rt/metapool_rt.ml: List Printf Splay Stats String Violation
