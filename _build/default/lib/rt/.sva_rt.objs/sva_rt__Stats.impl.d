lib/rt/stats.ml: Printf
