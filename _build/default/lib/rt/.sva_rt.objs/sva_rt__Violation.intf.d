lib/rt/violation.mli:
