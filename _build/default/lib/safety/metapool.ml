open Sva_ir
open Sva_analysis

type decl = {
  mp_id : int;
  mp_name : string;
  mp_node : Pointsto.node;
  mp_th : bool;
  mp_complete : bool;
  mp_elem_size : int;
  mp_userspace : bool;
}

type t = {
  mp_decls : decl list;
  by_node : (int, decl) Hashtbl.t;
  merges : int;
}

(* Unify all nodes within each group; returns the number of unifications
   that actually merged distinct partitions. *)
let unify_groups pa groups =
  let merges = ref 0 in
  Hashtbl.iter
    (fun _ nodes ->
      match nodes with
      | [] | [ _ ] -> ()
      | first :: rest ->
          List.iter
            (fun n ->
              if not (Pointsto.same_node first n) then begin
                incr merges;
                Pointsto.unify_nodes pa first n
              end)
            rest)
    groups;
  !merges

let group_pool_sites pa =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (al : Pointsto.alloc_site) ->
      match al.Pointsto.al_pool_node with
      | Some pool ->
          let key = Pointsto.node_id pool in
          let cur = try Hashtbl.find groups key with Not_found -> [] in
          Hashtbl.replace groups key (al.Pointsto.al_node :: cur)
      | None -> ())
    (Pointsto.alloc_sites pa);
  groups

let group_ordinary_sites pa (decls : Allocdecl.t list) =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (al : Pointsto.alloc_site) ->
      match Allocdecl.find decls al.Pointsto.al_alloc with
      | Some { Allocdecl.a_kind = Allocdecl.Ordinary; _ } ->
          let key =
            match al.Pointsto.al_size_class with
            | Some c -> Printf.sprintf "%s#%d" al.Pointsto.al_alloc c
            | None -> al.Pointsto.al_alloc ^ "#var"
          in
          let cur = try Hashtbl.find groups key with Not_found -> [] in
          Hashtbl.replace groups key (al.Pointsto.al_node :: cur)
      | _ -> ())
    (Pointsto.alloc_sites pa);
  groups

let infer (m : Irmod.t) (pa : Pointsto.result) (decls : Allocdecl.t list) =
  let merges = ref 0 in
  merges := !merges + unify_groups pa (group_pool_sites pa);
  merges := !merges + unify_groups pa (group_ordinary_sites pa decls);
  (* Assign ids to the surviving representatives. *)
  let by_node = Hashtbl.create 64 in
  let out = ref [] in
  let next = ref 0 in
  List.iter
    (fun node ->
      let id = !next in
      incr next;
      let th = Pointsto.is_type_homog node in
      let elem_size =
        if th then
          match Pointsto.node_ty node with
          | Some ty -> (
              try Ty.sizeof m.Irmod.m_ctx ty with Invalid_argument _ -> 0)
          | None -> 0
        else 0
      in
      let d =
        {
          mp_id = id;
          mp_name = Printf.sprintf "MP%d" id;
          mp_node = node;
          mp_th = th;
          mp_complete = Pointsto.is_complete node;
          mp_elem_size = elem_size;
          mp_userspace = Pointsto.has_flag node Pointsto.Userspace;
        }
      in
      Hashtbl.replace by_node (Pointsto.node_id node) d;
      out := d :: !out)
    (Pointsto.nodes pa);
  { mp_decls = List.rev !out; by_node; merges = !merges }

let decls t = t.mp_decls

let of_node t node = Hashtbl.find_opt t.by_node (Pointsto.node_id node)

let of_value t pa ~fname v =
  match Pointsto.value_node pa ~fname v with
  | Some n -> of_node t n
  | None -> None

let merged_pool_partitions t = t.merges

let to_string t =
  String.concat "\n"
    (List.map
       (fun d ->
         Printf.sprintf "%s: node %d%s%s%s elem=%d" d.mp_name
           (Pointsto.node_id d.mp_node)
           (if d.mp_th then " TH" else "")
           (if d.mp_complete then " complete" else " INCOMPLETE")
           (if d.mp_userspace then " userspace" else "")
           d.mp_elem_size)
       t.mp_decls)
