lib/safety/metapool.ml: Allocdecl Hashtbl Irmod List Pointsto Printf String Sva_analysis Sva_ir Ty
