lib/safety/devirt.mli: Irmod Pointsto Sva_analysis Sva_ir
