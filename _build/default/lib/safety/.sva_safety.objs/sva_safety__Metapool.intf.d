lib/safety/metapool.mli: Allocdecl Irmod Pointsto Sva_analysis Sva_ir Value
