lib/safety/devirt.ml: Func Hashtbl Instr Irmod List Option Pointsto Printf Sva_analysis Sva_ir Ty Value Verify
