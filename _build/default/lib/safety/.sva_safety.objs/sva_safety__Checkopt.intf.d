lib/safety/checkopt.mli: Func Irmod Sva_ir
