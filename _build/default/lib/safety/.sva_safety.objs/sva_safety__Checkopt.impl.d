lib/safety/checkopt.ml: Cfg Func Hashtbl Instr Int64 Irmod List Option Printf Sva_ir Ty Value Verify
