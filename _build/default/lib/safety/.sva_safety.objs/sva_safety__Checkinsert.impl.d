lib/safety/checkinsert.ml: Allocdecl Builder Func Hashtbl Instr Int64 Irmod List Metapool Option Pointsto Sva_analysis Sva_ir Sva_rt Ty Value Verify
