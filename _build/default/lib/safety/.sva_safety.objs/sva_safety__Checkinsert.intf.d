lib/safety/checkinsert.mli: Allocdecl Irmod Metapool Pointsto Sva_analysis Sva_ir Sva_rt
