(** Metapool inference (Section 4.3).

    A {e metapool} is the run-time representation of one points-to graph
    partition.  Inference correlates the kernel's own pools with the
    partitions:

    - all allocation sites drawing from one kernel pool (one
      [kmem_cache_t]) must land in one metapool — if they map to several
      partitions, those partitions are merged (losing precision but
      staying correct);
    - an ordinary allocator ([kmalloc]) has full internal reuse, so all of
      its allocation sites share one metapool — unless the allocator's
      internal size classes are exposed (Section 6.2), in which case sites
      are grouped by the class their constant size falls into (sites with
      a non-constant size share a single variable-size group);
    - every remaining partition gets its own metapool.

    Each metapool records whether its partition is type-homogeneous and
    complete, which decides the checks the verifier inserts
    ({!Checkinsert}) and elides. *)

open Sva_ir
open Sva_analysis

type decl = {
  mp_id : int;
  mp_name : string;  (** "MP<n>", as in Figure 2 *)
  mp_node : Pointsto.node;  (** representative partition *)
  mp_th : bool;  (** type-homogeneous *)
  mp_complete : bool;
  mp_elem_size : int;  (** object size for TH pools; 0 when unknown *)
  mp_userspace : bool;
      (** userspace must be registered as one object in this pool (§4.6) *)
}

type t

val infer : Irmod.t -> Pointsto.result -> Allocdecl.t list -> t
(** Perform the merging steps above (mutating the points-to graph) and
    assign metapool ids. *)

val decls : t -> decl list

val of_node : t -> Pointsto.node -> decl option
(** The metapool of a partition ([None] for partitions that ended up with
    no memory role, e.g. pure function sets). *)

val of_value : t -> Pointsto.result -> fname:string -> Value.t -> decl option
(** Metapool targeted by a pointer value. *)

val merged_pool_partitions : t -> int
(** How many partition merges step 1 and 2 performed (a precision-loss
    metric). *)

val to_string : t -> string
