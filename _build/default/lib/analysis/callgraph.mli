(** Call graph construction over the points-to results.

    The control-flow-integrity guarantee (T1) requires that indirect calls
    only reach functions in the compiler-computed call graph; the verifier
    inserts indirect call checks against exactly these target sets
    (Section 4.5).  Direct calls are trivially resolved; indirect-call
    targets come from the function sets of the callee's points-to node,
    optionally narrowed by the call-signature assertions of Section 4.8. *)

open Sva_ir

type t

type callsite = {
  cs_func : string;  (** calling function *)
  cs_instr : int;  (** call instruction id *)
  cs_direct : string option;  (** [Some callee] for direct calls *)
  cs_targets : string list;  (** possible callees (singleton for direct) *)
}

val build : Irmod.t -> Pointsto.result -> t

val callsites : t -> callsite list
val callsites_of : t -> string -> callsite list
(** Call sites within one function. *)

val callees : t -> string -> string list
(** All functions possibly called (directly or indirectly) by [fname]. *)

val callers : t -> string -> string list
(** All functions that may call [fname]. *)

val indirect_fanout : t -> (callsite * int) list
(** Indirect call sites with their target-set sizes — the metric the
    devirtualization discussion of Section 4.8 reports (1189 callees
    falling to 3-61 with signature assertions). *)

val reachable_from : t -> string list -> string list
(** Functions reachable from the given roots (for dead-function metrics). *)
