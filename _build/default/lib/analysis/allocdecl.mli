(** Kernel allocator declarations (Section 4.4).

    Porting a kernel to SVA requires identifying its allocation routines to
    the compiler and specifying which ones are {e pool allocators}
    (e.g. Linux's [kmem_cache_alloc]) versus {e ordinary allocators}
    ([kmalloc], [vmalloc], [_alloc_bootmem]).  The existing allocator
    interfaces are not modified; the declarations only tell the
    safety-checking compiler where to insert [pchk.reg.obj] /
    [pchk.drop.obj] and how to correlate kernel pools with points-to
    partitions. *)

type kind =
  | Pool
      (** a pool allocator: one argument designates the kernel pool
          (cache); objects from one pool must live in one metapool *)
  | Ordinary
      (** an ordinary allocator with full internal reuse: all its memory
          must be treated as a single metapool — unless size classes are
          exposed (Section 6.2 exposes [kmalloc]'s caches) *)

type t = {
  a_alloc : string;  (** allocation function name *)
  a_free : string option;  (** matching deallocation function *)
  a_kind : kind;
  a_size_arg : int option;
      (** argument index carrying the object size in bytes; [None] when
          the size is the pool's fixed object size *)
  a_pool_arg : int option;  (** argument index of the pool descriptor *)
  a_size_fn : string option;
      (** name of a kernel function that, given the same arguments as the
          allocation function, returns the allocation size in bytes
          (Section 4.4: "Each allocator must provide a function that
          returns the size of an allocation given the arguments").  Used
          when the size is not directly an argument. *)
  a_size_classes : int list;
      (** for an [Ordinary] allocator whose internal implementation is a
          set of per-size caches (Section 6.2): the exposed class sizes.
          Allocation sites are grouped by the class their (constant) size
          falls into, reducing unnecessary metapool merging.  Empty list =
          no classes exposed. *)
}

val pool : ?free:string -> ?size_fn:string -> pool_arg:int -> string -> t
(** Declare a pool allocator. *)

val ordinary : ?free:string -> ?size_classes:int list -> size_arg:int -> string -> t
(** Declare an ordinary allocator. *)

val find : t list -> string -> t option
(** Look up a declaration by allocation-function name. *)

val find_free : t list -> string -> t option
(** Look up the declaration whose deallocation function is [name]. *)

val size_class : t -> int -> int option
(** [size_class decl size] is the exposed size class that [size] falls
    into ([None] when no classes are exposed or size exceeds them all). *)
