open Sva_ir

(* Instructions are immutable; blocks are not. *)
let clone_function (m : Irmod.t) (f : Func.t) name =
  let g = Func.create ~varargs:f.Func.f_varargs ~attrs:f.Func.f_attrs name
      f.Func.f_ret f.Func.f_params in
  g.Func.f_next_reg <- f.Func.f_next_reg;
  g.Func.f_blocks <-
    List.map
      (fun (b : Func.block) ->
        { Func.label = b.Func.label; insns = b.Func.insns; term = b.Func.term })
      f.Func.f_blocks;
  Irmod.add_func m g;
  g

let is_recursive (f : Func.t) =
  Func.fold_instrs f
    (fun acc _ (i : Instr.t) ->
      acc
      ||
      match i.Instr.kind with
      | Instr.Call (Value.Fn (n, _), _) -> n = f.Func.f_name
      | _ -> false)
    false

let has_pointer_param (f : Func.t) =
  List.exists (fun (_, t) -> Ty.is_pointer t) f.Func.f_params

(* All direct call sites of [name]: (caller, block, instr). *)
let call_sites (m : Irmod.t) name =
  List.concat_map
    (fun (caller : Func.t) ->
      Func.fold_instrs caller
        (fun acc b (i : Instr.t) ->
          match i.Instr.kind with
          | Instr.Call (Value.Fn (n, _), _) when n = name -> (caller, b, i) :: acc
          | _ -> acc)
        [])
    m.Irmod.m_funcs

let retarget (b : Func.block) (site : Instr.t) new_name =
  b.Func.insns <-
    List.map
      (fun (i : Instr.t) ->
        if i.Instr.id = site.Instr.id then
          match i.Instr.kind with
          | Instr.Call (Value.Fn (_, fty), args) ->
              { i with Instr.kind = Instr.Call (Value.Fn (new_name, fty), args) }
          | _ -> i
        else i)
      b.Func.insns

let run ?(max_size = 40) ?(max_sites = 4) (m : Irmod.t) =
  let cloned = ref 0 in
  (* Snapshot the candidate list first: cloning adds functions. *)
  let candidates =
    List.filter
      (fun (f : Func.t) ->
        (not (Func.has_attr f Func.Noanalyze))
        && has_pointer_param f
        && (not (is_recursive f))
        && Func.instr_count f <= max_size)
      m.Irmod.m_funcs
  in
  List.iter
    (fun (f : Func.t) ->
      (* Only clone when the function's address is never taken: an
         indirect call must keep reaching the original. *)
      let address_taken =
        List.exists
          (fun (g : Func.t) ->
            Func.fold_instrs g
              (fun acc _ (i : Instr.t) ->
                acc
                ||
                match i.Instr.kind with
                | Instr.Call (Value.Fn (_, _), args) ->
                    List.exists
                      (fun a ->
                        match a with
                        | Value.Fn (n, _) -> n = f.Func.f_name
                        | _ -> false)
                      args
                | k ->
                    List.exists
                      (fun a ->
                        match a with
                        | Value.Fn (n, _) -> n = f.Func.f_name
                        | _ -> false)
                      (Instr.operands k))
              false)
          m.Irmod.m_funcs
      in
      if not address_taken then begin
        let sites = call_sites m f.Func.f_name in
        let n = List.length sites in
        if n >= 2 && n <= max_sites then
          (* the first site keeps the original; each further site gets a
             private copy *)
          List.iteri
            (fun k (_, b, site) ->
              if k > 0 then begin
                let cname = Printf.sprintf "%s.clone%d" f.Func.f_name k in
                if Irmod.find_func m cname = None then begin
                  ignore (clone_function m f cname);
                  retarget b site cname;
                  incr cloned
                end
              end)
            sites
      end)
    candidates;
  if !cloned > 0 then Verify.check m;
  !cloned
