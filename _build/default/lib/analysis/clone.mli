(** Function cloning to reduce spurious points-to merging (Section 4.8).

    "Different objects passed into the same function parameter from
    different call sites appear aliased and are therefore merged into a
    single partition... Cloning the function so that different copies are
    called for the different call sites eliminates this merging.  Of
    course, cloning must be done carefully to avoid a large code blowup."

    Heuristic (as in the paper, "chosen intuitively"): clone a defined,
    non-recursive function that has at least one pointer parameter, at
    most [max_size] instructions, and between 2 and [max_sites] direct
    call sites; every call site after the first calls its own copy.
    Applied {e before} the points-to analysis. *)

open Sva_ir

val run : ?max_size:int -> ?max_sites:int -> Irmod.t -> int
(** Clone per the heuristic; returns the number of clones created.
    Re-verifies the module. *)

val clone_function : Irmod.t -> Func.t -> string -> Func.t
(** [clone_function m f name] — a deep copy of [f] under a new name,
    added to the module.  @raise Invalid_argument on duplicate name. *)
