lib/analysis/pointsto.ml: Allocdecl Buffer Func Hashtbl Instr Int64 Irmod List Option Printf String Sva_ir Ty Value
