lib/analysis/allocdecl.ml: List
