lib/analysis/callgraph.ml: Func Hashtbl Instr Irmod List Pointsto Sva_ir Value
