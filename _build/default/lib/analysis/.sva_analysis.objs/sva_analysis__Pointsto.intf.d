lib/analysis/pointsto.mli: Allocdecl Irmod Sva_ir Ty Value
