lib/analysis/clone.ml: Func Instr Irmod List Printf Sva_ir Ty Value Verify
