lib/analysis/allocdecl.mli:
