lib/analysis/callgraph.mli: Irmod Pointsto Sva_ir
