lib/analysis/clone.mli: Func Irmod Sva_ir
