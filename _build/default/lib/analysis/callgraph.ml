open Sva_ir

type callsite = {
  cs_func : string;
  cs_instr : int;
  cs_direct : string option;
  cs_targets : string list;
}

type t = {
  sites : callsite list;
  by_caller : (string, callsite list) Hashtbl.t;
  caller_of : (string, string list) Hashtbl.t;
}

let build (m : Irmod.t) (pa : Pointsto.result) =
  let sites = ref [] in
  List.iter
    (fun (f : Func.t) ->
      if not (Func.has_attr f Func.Noanalyze) then
        Func.iter_instrs f (fun _ (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Call (Value.Fn (name, _), _) ->
                sites :=
                  {
                    cs_func = f.Func.f_name;
                    cs_instr = i.Instr.id;
                    cs_direct = Some name;
                    cs_targets = [ name ];
                  }
                  :: !sites
            | Instr.Call (_, _) ->
                let targets =
                  Pointsto.callsite_targets pa ~fname:f.Func.f_name i.Instr.id
                in
                sites :=
                  {
                    cs_func = f.Func.f_name;
                    cs_instr = i.Instr.id;
                    cs_direct = None;
                    cs_targets = targets;
                  }
                  :: !sites
            | _ -> ()))
    m.Irmod.m_funcs;
  let sites = List.rev !sites in
  let by_caller = Hashtbl.create 64 and caller_of = Hashtbl.create 64 in
  List.iter
    (fun cs ->
      let cur = try Hashtbl.find by_caller cs.cs_func with Not_found -> [] in
      Hashtbl.replace by_caller cs.cs_func (cur @ [ cs ]);
      List.iter
        (fun callee ->
          let cur = try Hashtbl.find caller_of callee with Not_found -> [] in
          if not (List.mem cs.cs_func cur) then
            Hashtbl.replace caller_of callee (cs.cs_func :: cur))
        cs.cs_targets)
    sites;
  { sites; by_caller; caller_of }

let callsites t = t.sites

let callsites_of t fname =
  try Hashtbl.find t.by_caller fname with Not_found -> []

let callees t fname =
  callsites_of t fname
  |> List.concat_map (fun cs -> cs.cs_targets)
  |> List.sort_uniq compare

let callers t fname = try Hashtbl.find t.caller_of fname with Not_found -> []

let indirect_fanout t =
  List.filter_map
    (fun cs ->
      match cs.cs_direct with
      | None -> Some (cs, List.length cs.cs_targets)
      | Some _ -> None)
    t.sites

let reachable_from t roots =
  let seen = Hashtbl.create 64 in
  let rec go fn =
    if not (Hashtbl.mem seen fn) then begin
      Hashtbl.replace seen fn ();
      List.iter go (callees t fn)
    end
  in
  List.iter go roots;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare
