type kind = Pool | Ordinary

type t = {
  a_alloc : string;
  a_free : string option;
  a_kind : kind;
  a_size_arg : int option;
  a_pool_arg : int option;
  a_size_fn : string option;
  a_size_classes : int list;
}

let pool ?free ?size_fn ~pool_arg name =
  {
    a_alloc = name;
    a_free = free;
    a_kind = Pool;
    a_size_arg = None;
    a_pool_arg = Some pool_arg;
    a_size_fn = size_fn;
    a_size_classes = [];
  }

let ordinary ?free ?(size_classes = []) ~size_arg name =
  {
    a_alloc = name;
    a_free = free;
    a_kind = Ordinary;
    a_size_arg = Some size_arg;
    a_pool_arg = None;
    a_size_fn = None;
    a_size_classes = List.sort compare size_classes;
  }

let find decls name = List.find_opt (fun d -> d.a_alloc = name) decls

let find_free decls name =
  List.find_opt (fun d -> d.a_free = Some name) decls

let size_class d size =
  List.find_opt (fun c -> size <= c) d.a_size_classes
