(** The bluetooth-ish protocol module in MiniC, reproducing BID 12911
    ("Linux kernel bluetooth signed buffer index vulnerability"): a
    signed one-byte channel identifier from the packet indexes a global
    connection table, so a negative byte reaches memory {e before} the
    table.  The adjacent [bt_privileged_mode] global is the corruption
    target the exploit flips. *)

let source =
  {|
/* ================= bluetooth-ish module ================= */

/* deliberately adjacent to the table the exploit indexes backwards */
int bt_privileged_mode = 0;
int bt_conn_state[16];
long bt_packets = 0;

long bt_rcv(char *data, long len) {
  if (len < 2) return -22;
  bt_packets = bt_packets + 1;
  /* VULN(BID-12911): the channel byte is signed; a value >= 0x80 becomes
     a negative index into bt_conn_state. */
  int channel = (int)data[0];
  int newstate = (int)(unsigned char)data[1];
  if (channel >= 16) return -22;
  bt_conn_state[channel] = newstate;
  return 0;
}

long bt_state(int channel) {
  if (channel < 0 || channel >= 16) return -22;
  return bt_conn_state[channel];
}
|}
