(** A small block filesystem over the simulated ram-disk, in MiniC: the
    disk-driver layer of the kernel (the paper's port touched drivers only
    to route I/O through SVA-OS operations, Section 6.1 — every device
    access below goes through [sva_io_disk_read]/[sva_io_disk_write]).

    Layout (512-byte blocks):
    - block 0: superblock [magic "UBFS"][nfiles:4]
    - block 1: directory — 16 entries of 32 bytes
      [name:24][size:4][start block:4]
    - blocks 16+: file data, allocated linearly.

    Syscalls: mount (read or format), sync (write back metadata),
    bsave (archive a ramfs file to disk), bload (restore to ramfs). *)

let source =
  {|
/* ================= block filesystem ================= */

struct bfs_dirent {
  char de_name[24];
  int de_size;
  int de_start;
};

struct bfs_sb { int magic; int nfiles; int next_data; int pad; };

struct bfs_sb bfs_super;
struct bfs_dirent bfs_dir[16];
int bfs_mounted = 0;
long bfs_disk_reads = 0;
long bfs_disk_writes = 0;

void bfs_read_block(long block, char *buf) {
  sva_io_disk_read(block, buf);                               /* SVA-PORT */
  bfs_disk_reads = bfs_disk_reads + 1;
}

void bfs_write_block(long block, char *buf) {
  sva_io_disk_write(block, buf);                              /* SVA-PORT */
  bfs_disk_writes = bfs_disk_writes + 1;
}

void bfs_format(void) {
  bfs_super.magic = 0x55424653;  /* "UBFS" */
  bfs_super.nfiles = 0;
  bfs_super.next_data = 16;
  bfs_super.pad = 0;
  for (int i = 0; i < 16; i++) {
    bfs_dir[i].de_name[0] = 0;
    bfs_dir[i].de_size = 0;
    bfs_dir[i].de_start = 0;
  }
}

long bfs_sync_meta(void) {
  char block[512];
  memset(block, 0, 512);
  kcopy(block, (char*)&bfs_super, sizeof(struct bfs_sb));
  bfs_write_block(0, block);
  memset(block, 0, 512);
  kcopy(block, (char*)bfs_dir, 16 * sizeof(struct bfs_dirent));
  bfs_write_block(1, block);
  return 0;
}

long sys_mount(long a0, long a1, long a2, long a3) {
  char block[512];
  bfs_read_block(0, block);
  kcopy((char*)&bfs_super, block, sizeof(struct bfs_sb));
  if (bfs_super.magic != 0x55424653) {
    /* fresh disk: format it */
    bfs_format();
    bfs_sync_meta();
  } else {
    bfs_read_block(1, block);
    kcopy((char*)bfs_dir, block, 16 * sizeof(struct bfs_dirent));
  }
  bfs_mounted = 1;
  return bfs_super.nfiles;
}

long sys_sync(long a0, long a1, long a2, long a3) {
  if (!bfs_mounted) return -19;
  return bfs_sync_meta();
}

struct bfs_dirent *bfs_lookup(char *name) {
  for (int i = 0; i < 16; i++) {
    if (bfs_dir[i].de_name[0] != 0 && strcmp(bfs_dir[i].de_name, name) == 0)
      return &bfs_dir[i];
  }
  return (struct bfs_dirent*)0;
}

struct bfs_dirent *bfs_create_entry(char *name) {
  for (int i = 0; i < 16; i++) {
    if (bfs_dir[i].de_name[0] == 0) {
      long n = strlen(name);
      if (n > 23) n = 23;
      kcopy(bfs_dir[i].de_name, name, n);
      bfs_dir[i].de_name[n] = 0;
      bfs_super.nfiles = bfs_super.nfiles + 1;
      return &bfs_dir[i];
    }
  }
  return (struct bfs_dirent*)0;
}

/* Archive a ramfs file to the disk. */
long sys_bsave(long upath, long a1, long a2, long a3) {
  if (!bfs_mounted) return -19;
  char path[32];
  if (strncpy_from_user(path, upath, 32) < 0) return -14;
  struct inode *ino = ramfs_lookup(path);
  if (!ino) return -2;
  struct bfs_dirent *de = bfs_lookup(path);
  if (!de) de = bfs_create_entry(path);
  if (!de) return -28;
  long blocks = (ino->size + 511) / 512;
  if (blocks == 0) blocks = 1;
  de->de_size = (int)ino->size;
  de->de_start = bfs_super.next_data;
  bfs_super.next_data = bfs_super.next_data + (int)blocks;
  char block[512];
  for (long i = 0; i < blocks; i++) {
    memset(block, 0, 512);
    long chunk = ino->size - i * 512;
    if (chunk > 512) chunk = 512;
    if (chunk > 0) kcopy(block, ino->data + i * 512, chunk);
    bfs_write_block(de->de_start + i, block);
  }
  bfs_sync_meta();
  return blocks;
}

/* Restore a disk file into ramfs. */
long sys_bload(long upath, long a1, long a2, long a3) {
  if (!bfs_mounted) return -19;
  char path[32];
  if (strncpy_from_user(path, upath, 32) < 0) return -14;
  struct bfs_dirent *de = bfs_lookup(path);
  if (!de) return -2;
  struct inode *ino = ramfs_lookup(path);
  if (!ino) ino = ramfs_create(path);
  if (!ino) return -28;
  if (inode_grow(ino, de->de_size) < 0) return -28;
  long blocks = ((long)de->de_size + 511) / 512;
  char block[512];
  for (long i = 0; i < blocks; i++) {
    bfs_read_block(de->de_start + i, block);
    long chunk = (long)de->de_size - i * 512;
    if (chunk > 512) chunk = 512;
    if (chunk > 0) kcopy(ino->data + i * 512, block, chunk);
  }
  ino->size = de->de_size;
  return de->de_size;
}
|}
