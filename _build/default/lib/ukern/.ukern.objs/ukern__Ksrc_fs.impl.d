lib/ukern/ksrc_fs.ml:
