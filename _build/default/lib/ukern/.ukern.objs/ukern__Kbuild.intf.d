lib/ukern/kbuild.mli: Allocdecl Pointsto Sva_analysis Sva_pipeline
