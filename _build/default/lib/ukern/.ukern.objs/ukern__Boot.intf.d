lib/ukern/boot.mli: Kbuild Sva_interp Sva_os Sva_pipeline
