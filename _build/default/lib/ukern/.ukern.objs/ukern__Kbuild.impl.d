lib/ukern/kbuild.ml: Allocdecl Ksrc_bfs Ksrc_bt Ksrc_core Ksrc_decls Ksrc_fs Ksrc_init Ksrc_mm Ksrc_net List Pointsto Sva_analysis Sva_pipeline
