lib/ukern/ksrc_core.ml: Buffer String
