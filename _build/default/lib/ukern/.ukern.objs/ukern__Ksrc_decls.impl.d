lib/ukern/ksrc_decls.ml:
