lib/ukern/ksrc_bfs.ml:
