lib/ukern/ksrc_init.ml:
