lib/ukern/ksrc_net.ml:
