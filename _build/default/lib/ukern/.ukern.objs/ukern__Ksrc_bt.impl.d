lib/ukern/ksrc_bt.ml:
