lib/ukern/ksrc_mm.ml: Buffer String
