lib/ukern/boot.ml: Array Bytes Fun Int64 Kbuild List Option Printexc Sva_hw Sva_interp Sva_os Sva_pipeline
