(** The kernel memory subsystem in MiniC: bootmem, the page allocator, the
    slab allocator ([kmem_cache_*]), [kmalloc] (implemented as size-class
    caches over the slab allocator, the relationship Section 6.2 exposes
    to the compiler) and [vmalloc].

    The [@NA@] marker expands to [__noanalyze] in the "as tested" build —
    the paper's configuration where the memory subsystem (mm/mm.o) was not
    processed by the safety checking compiler — and to nothing in the
    "entire kernel" build used for the Table 9 static metrics.

    SVA-ALLOC markers flag the allocator changes Section 4.4/6.2 requires:
    object spacing at type-size multiples, SLAB_NO_REAP (pools never
    release page frames), the per-allocator size functions, and the
    boot-to-runtime ordinary allocation interface for stack promotion. *)

let raw =
  {|
/* ================= kernel memory subsystem ================= */

long mm_heap_base = 0;
long mm_heap_end = 0;
long mm_next_page = 0;
long mm_free_page_head = 0;
long mm_pages_allocated = 0;
long bootmem_cursor = 0;
long bootmem_end = 0;
int  mm_ready = 0;

/* page index -> owning kmalloc cache id + 1 (0 = not a kmalloc page) */
int page_cache_map[8192];

@NA@ void mm_init(void) {
  mm_heap_base = sva_heap_base();
  mm_heap_end = mm_heap_base + sva_heap_size();
  /* first 256 KB reserved for bootmem */
  bootmem_cursor = mm_heap_base;
  bootmem_end = mm_heap_base + 262144;
  mm_next_page = bootmem_end;
  mm_free_page_head = 0;
  mm_ready = 1;
}

/* Early allocations, before the buddy/page allocator is up. */
@NA@ char *_alloc_bootmem(long size) {
  if (size <= 0) return (char*)0;
  long p = (bootmem_cursor + 15) / 16 * 16;
  if (p + size > bootmem_end) { sva_panic(101); }
  bootmem_cursor = p + size;
  return (char*)p;
}

@NA@ char *alloc_page(void) {
  if (mm_free_page_head != 0) {
    long p = mm_free_page_head;
    mm_free_page_head = *(long*)(char*)p;
    mm_pages_allocated++;
    return (char*)p;
  }
  if (mm_next_page + 4096 > mm_heap_end) { sva_panic(102); }
  long p = mm_next_page;
  mm_next_page = mm_next_page + 4096;
  mm_pages_allocated++;
  return (char*)p;
}

@NA@ void free_page(char *page) {
  long p = (long)page;
  *(long*)(char*)p = mm_free_page_head;
  mm_free_page_head = p;
  mm_pages_allocated--;
}

@NA@ long mm_page_index(long addr) {
  return (addr - mm_heap_base) / 4096;
}

/* ================= slab allocator ================= */

struct kmem_cache {
  long objsize;      /* object spacing: multiples of the type size (SVA-ALLOC) */
  long free_head;
  long cur_page;
  long cur_off;
  long no_reap;      /* SLAB_NO_REAP: never give frames back (SVA-ALLOC) */
  long total_objs;
  long cache_id;
};

struct kmem_cache cache_table[32];
int cache_count = 0;

@NA@ struct kmem_cache *kmem_cache_create(long objsize) {
  if (cache_count >= 32) { sva_panic(103); }
  struct kmem_cache *c = &cache_table[cache_count];
  c->cache_id = cache_count;
  cache_count++;
  /* SVA-ALLOC: objects must be spaced at type-size multiples so a
     dangling pointer can never see a differently-typed overlap. */
  if (objsize < 8) objsize = 8;
  c->objsize = (objsize + 7) / 8 * 8;
  c->free_head = 0;
  c->cur_page = 0;
  c->cur_off = 0;
  c->no_reap = 1;    /* SVA-ALLOC: SLAB_NO_REAP on every cache */
  c->total_objs = 0;
  return c;
}

/* SVA-ALLOC: the allocation-size function the compiler uses to insert
   pchk_reg_obj with the correct length (Section 4.4). */
@NA@ long kmem_cache_objsize(struct kmem_cache *c) {
  return c->objsize;
}

@NA@ char *kmem_cache_alloc(struct kmem_cache *c) {
  if (c->free_head != 0) {
    long obj = c->free_head;
    c->free_head = *(long*)(char*)obj;
    return (char*)obj;
  }
  if (c->cur_page == 0 || c->cur_off + c->objsize > 4096) {
    c->cur_page = (long)alloc_page();
    c->cur_off = 0;
    page_cache_map[mm_page_index(c->cur_page)] = (int)(c->cache_id + 1);
  }
  long obj = c->cur_page + c->cur_off;
  c->cur_off = c->cur_off + c->objsize;
  c->total_objs++;
  return (char*)obj;
}

@NA@ void kmem_cache_free(struct kmem_cache *c, char *obj) {
  /* reuse stays inside this cache: memory never migrates to another
     pool while the metapool lives (SVA-ALLOC) */
  *(long*)obj = c->free_head;
  c->free_head = (long)obj;
}

/* ================= kmalloc: size-class caches ================= */

/* The relationship between kmalloc and kmem_cache_alloc is exposed to
   the safety compiler (Section 6.2): each size class is its own pool. */
long kmalloc_classes[8] = {32, 64, 128, 256, 512, 1024, 2048, 4096};
struct kmem_cache *kmalloc_caches[8];
int kmalloc_ready = 0;

@NA@ void kmalloc_init(void) {
  for (int i = 0; i < 8; i++)
    kmalloc_caches[i] = kmem_cache_create(kmalloc_classes[i]);
  kmalloc_ready = 1;
}

@NA@ char *kmalloc(long size) {
  if (size <= 0) return (char*)0;
  if (size > 4096) return (char*)0;
  for (int i = 0; i < 8; i++) {
    if (size <= kmalloc_classes[i])
      return kmem_cache_alloc(kmalloc_caches[i]);
  }
  return (char*)0;
}

@NA@ void kfree(char *p) {
  if (!p) return;
  long idx = mm_page_index((long)p);
  if (idx < 0 || idx >= 8192) { sva_panic(104); }
  int owner = page_cache_map[idx];
  if (owner == 0) { sva_panic(105); }
  kmem_cache_free(&cache_table[owner - 1], p);
}

/* ================= vmalloc ================= */

long vmalloc_bytes = 0;

@NA@ char *vmalloc(long size) {
  if (size <= 0) return (char*)0;
  long pages = (size + 4095) / 4096;
  /* contiguous page run from the bump cursor */
  if (mm_next_page + pages * 4096 > mm_heap_end) { sva_panic(106); }
  long p = mm_next_page;
  mm_next_page = mm_next_page + pages * 4096;
  vmalloc_bytes = vmalloc_bytes + pages * 4096;
  return (char*)p;
}

@NA@ void vfree(char *p) {
  /* Frames are not returned while the metapool is live (SVA-ALLOC);
     Section 6.2: "We are still working on providing similar
     functionality for memory allocated by vmalloc." */
}

/* SVA-ALLOC: the ordinary allocation interface available throughout the
   kernel's lifetime, used for stack-to-heap promotion: bootmem early,
   kmalloc afterwards. */
@NA@ char *kernel_lifetime_alloc(long size) {
  if (kmalloc_ready) return kmalloc(size);
  return _alloc_bootmem(size);
}
|}

(* Expand the [@NA@ ] marker into [__noanalyze ] ("as tested") or nothing
   ("entire kernel"). *)
let source ~analyzed =
  let attr = if analyzed then "" else "__noanalyze " in
  let marker = "@NA@ " in
  let mlen = String.length marker in
  let n = String.length raw in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + mlen <= n && String.sub raw !i mlen = marker then begin
      Buffer.add_string buf attr;
      i := !i + mlen
    end
    else begin
      Buffer.add_char buf raw.[!i];
      incr i
    end
  done;
  Buffer.contents buf
