lib/svaos/svaos.mli: Cpu Devices Hashtbl Machine Mmu Sva_hw
