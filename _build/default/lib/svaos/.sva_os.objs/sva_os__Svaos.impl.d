lib/svaos/svaos.ml: Array Bytes Cpu Devices Hashtbl Int64 Machine Mmu Printf Sva_hw
