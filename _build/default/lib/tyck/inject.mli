(** Analysis-bug injection — the Section 5 experiment.

    "We evaluated the effectiveness of the bytecode verifier in detecting
    bugs in the safety checking compiler, by injecting 20 different bugs
    (5 instances each of 4 different kinds) in the pointer analysis
    results. ... The verifier was able to detect all 20 bugs."

    Each injector perturbs a {e copy} of the annotations at a concrete
    program site (so the bug is guaranteed to be semantically meaningful),
    deterministically selected by [seed]. *)

open Sva_ir

type kind =
  | Wrong_var_mp  (** incorrect variable aliasing: a value's pool changed *)
  | Wrong_edge  (** incorrect inter-node edge: a pool's target rewired *)
  | False_th  (** incorrect claim of type homogeneity *)
  | Split_mp  (** insufficient merging: one pool split in two *)

val kind_name : kind -> string
val all_kinds : kind list

val copy_annot : Tyck.annot -> Tyck.annot
(** Deep copy (injection never mutates the original annotations). *)

val inject : Irmod.t -> Tyck.annot -> kind -> seed:int -> (Tyck.annot * string) option
(** Produce a buggy annotation copy and a description of the injected bug,
    or [None] if no suitable site exists for this seed (the experiment
    driver then tries the next seed). *)

val experiment :
  Irmod.t -> Tyck.annot -> instances:int -> (kind * string * bool) list
(** Run the paper's experiment: for each bug kind, inject [instances]
    distinct bugs and report, per injection, whether the checker caught
    it.  All entries should be [true]. *)
