open Sva_ir
open Sva_analysis
open Sva_safety

type annot = {
  an_value_mp : (string * int, int) Hashtbl.t;
  an_global_mp : (string, int) Hashtbl.t;
  an_fn_mp : (string, int) Hashtbl.t;
  an_ret_mp : (string, int) Hashtbl.t;
  an_succ : (int, int) Hashtbl.t;
  an_th : (int, Ty.t) Hashtbl.t;
}

type error = { te_func : string; te_instr : int; te_msg : string }

let string_of_error e =
  Printf.sprintf "@%s:%d: %s" e.te_func e.te_instr e.te_msg

(* ---------- proof producer ---------- *)

let extract (m : Irmod.t) (pa : Pointsto.result) (mps : Metapool.t) : annot =
  let an =
    {
      an_value_mp = Hashtbl.create 256;
      an_global_mp = Hashtbl.create 64;
      an_fn_mp = Hashtbl.create 64;
      an_ret_mp = Hashtbl.create 64;
      an_succ = Hashtbl.create 64;
      an_th = Hashtbl.create 64;
    }
  in
  let mp_of_node node = Metapool.of_node mps node in
  (* Per-metapool facts. *)
  List.iter
    (fun (d : Metapool.decl) ->
      (match Pointsto.node_succ d.Metapool.mp_node with
      | Some s -> (
          match mp_of_node s with
          | Some sd -> Hashtbl.replace an.an_succ d.Metapool.mp_id sd.Metapool.mp_id
          | None -> ())
      | None -> ());
      if d.Metapool.mp_th then
        match Pointsto.node_ty d.Metapool.mp_node with
        | Some ty -> Hashtbl.replace an.an_th d.Metapool.mp_id ty
        | None -> ())
    (Metapool.decls mps);
  (* Per-value qualifiers. *)
  List.iter
    (fun (g : Irmod.global) ->
      match Pointsto.global_node pa g.Irmod.g_name with
      | Some n -> (
          match mp_of_node n with
          | Some d -> Hashtbl.replace an.an_global_mp g.Irmod.g_name d.Metapool.mp_id
          | None -> ())
      | None -> ())
    m.Irmod.m_globals;
  List.iter
    (fun (f : Func.t) ->
      if not (Func.has_attr f Func.Noanalyze) then begin
        let fname = f.Func.f_name in
        let note_reg id =
          match Pointsto.reg_node pa ~fname id with
          | Some n -> (
              match mp_of_node n with
              | Some d ->
                  Hashtbl.replace an.an_value_mp (fname, id) d.Metapool.mp_id
              | None -> ())
          | None -> ()
        in
        List.iteri (fun i _ -> note_reg i) f.Func.f_params;
        Func.iter_instrs f (fun _ (i : Instr.t) ->
            match Instr.result i with
            | Some (Value.Reg (id, _, _)) -> note_reg id
            | _ -> ());
        (match Pointsto.ret_node pa fname with
        | Some n -> (
            match mp_of_node n with
            | Some d -> Hashtbl.replace an.an_ret_mp fname d.Metapool.mp_id
            | None -> ())
        | None -> ());
        match Pointsto.value_node pa ~fname (Value.Fn (fname, Func.func_ty f)) with
        | Some n -> (
            match mp_of_node n with
            | Some d -> Hashtbl.replace an.an_fn_mp fname d.Metapool.mp_id
            | None -> ())
        | None -> ()
      end)
    m.Irmod.m_funcs;
  an

(* ---------- the trusted checker ---------- *)

let check ?(trusted = []) (m : Irmod.t) (an : annot) : error list =
  let errors = ref [] in
  let mp_of_value fname (v : Value.t) =
    match v with
    | Value.Reg (id, _, _) -> Hashtbl.find_opt an.an_value_mp (fname, id)
    | Value.Global (g, _) -> Hashtbl.find_opt an.an_global_mp g
    | Value.Fn (f, _) -> Hashtbl.find_opt an.an_fn_mp f
    | Value.Imm _ | Value.Fimm _ | Value.Null _ | Value.Undef _ -> None
  in
  List.iter
    (fun (f : Func.t) ->
      if Func.has_attr f Func.Noanalyze then ()
      else begin
        let fname = f.Func.f_name in
        let err instr fmt =
          Printf.ksprintf
            (fun s ->
              errors := { te_func = fname; te_instr = instr; te_msg = s } :: !errors)
            fmt
        in
        let mp = mp_of_value fname in
        (* The checker recomputes "interior pointer" locally: results of
           multi-index geps do not constrain the pool's homogeneous type. *)
        let interior = Hashtbl.create 16 in
        let is_interior v =
          match v with
          | Value.Reg (id, _, _) -> Hashtbl.mem interior id
          | _ -> false
        in
        let require_equal instr what ma mb =
          match (ma, mb) with
          | Some a, Some b when a <> b ->
              err instr "%s: metapool M%d but expected M%d" what a b
          | Some _, None | None, Some _ ->
              err instr "%s: missing metapool qualifier on one side" what
          | _ -> ()
        in
        let th_access instr ptr =
          if not (is_interior ptr) then
            match mp ptr with
            | Some mpi -> (
                match Hashtbl.find_opt an.an_th mpi with
                | Some claimed ->
                    let reduce = function Ty.Array (e, _) -> e | t -> t in
                    let accessed = reduce (Ty.pointee (Value.ty ptr)) in
                    if not (Ty.equal claimed accessed) then
                      err instr
                        "type-homogeneity claim on M%d is %s but access type \
                         is %s"
                        mpi (Ty.to_string claimed) (Ty.to_string accessed)
                | None -> ())
            | None -> ()
        in
        Func.iter_instrs f (fun _ (i : Instr.t) ->
            let res_mp =
              match Instr.result i with Some r -> mp r | None -> None
            in
            match i.Instr.kind with
            | Instr.Gep (base, idxs) ->
                if
                  Pointsto.gep_enters_struct m.Irmod.m_ctx (Value.ty base) idxs
                  || is_interior base
                then Hashtbl.replace interior i.Instr.id ();
                th_access i.Instr.id base;
                require_equal i.Instr.id "getelementptr preserves pool" res_mp
                  (mp base)
            | Instr.Cast ((Instr.Bitcast | Instr.Ptrtoint | Instr.Inttoptr), x, _)
              -> (
                match (res_mp, mp x) with
                | Some a, Some b when a <> b ->
                    err i.Instr.id "cast changes metapool M%d -> M%d" b a
                | _ -> ())
            | Instr.Phi incoming ->
                List.iter
                  (fun (_, v) ->
                    match (res_mp, mp v) with
                    | Some a, Some b when a <> b ->
                        err i.Instr.id "phi mixes metapools M%d and M%d" a b
                    | _ -> ())
                  incoming
            | Instr.Select (_, x, y) ->
                List.iter
                  (fun v ->
                    match (res_mp, mp v) with
                    | Some a, Some b when a <> b ->
                        err i.Instr.id "select mixes metapools M%d and M%d" a b
                    | _ -> ())
                  [ x; y ]
            | Instr.Load p -> (
                th_access i.Instr.id p;
                match (res_mp, mp p) with
                | Some rm, Some pm -> (
                    match Hashtbl.find_opt an.an_succ pm with
                    | Some s when s <> rm ->
                        err i.Instr.id
                          "load result in M%d but M%d's cells target M%d" rm pm s
                    | Some _ -> ()
                    | None ->
                        err i.Instr.id
                          "load of a pointer from M%d which has no target pool"
                          pm)
                | _ -> ())
            | Instr.Store (v, p) -> (
                th_access i.Instr.id p;
                match (mp v, mp p) with
                | Some vm, Some pm -> (
                    match Hashtbl.find_opt an.an_succ pm with
                    | Some s when s <> vm ->
                        err i.Instr.id
                          "store of M%d pointer into M%d whose cells target M%d"
                          vm pm s
                    | Some _ -> ()
                    | None ->
                        err i.Instr.id
                          "store of a pointer into M%d which has no target pool"
                          pm)
                | _ -> ())
            | Instr.Call (Value.Fn (callee, _), args)
              when not (List.mem callee trusted) -> (
                (* Direct call: argument qualifiers must match the callee's
                   parameter qualifiers (still a local rule: it reads only
                   the annotation tables). *)
                match Irmod.find_func m callee with
                | Some cf when not (Func.has_attr cf Func.Noanalyze) ->
                    List.iteri
                      (fun k arg ->
                        match
                          (mp arg, Hashtbl.find_opt an.an_value_mp (callee, k))
                        with
                        | Some a, Some b when a <> b ->
                            err i.Instr.id
                              "argument %d in M%d but @%s expects M%d" k a
                              callee b
                        | _ -> ())
                      args;
                    (match (res_mp, Hashtbl.find_opt an.an_ret_mp callee) with
                    | Some a, Some b when a <> b ->
                        err i.Instr.id "result in M%d but @%s returns M%d" a
                          callee b
                    | _ -> ())
                | _ -> ())
            | _ -> ())
      end)
    m.Irmod.m_funcs;
  List.rev !errors

let check_ok ?trusted m an = check ?trusted m an = []

let trusted_of_config (cfg : Pointsto.config) =
  let allocs =
    List.concat_map
      (fun (a : Allocdecl.t) ->
        a.Allocdecl.a_alloc
        :: (Option.to_list a.Allocdecl.a_free @ Option.to_list a.Allocdecl.a_size_fn))
      cfg.Pointsto.allocators
  in
  allocs @ cfg.Pointsto.copy_functions @ cfg.Pointsto.user_copy_functions
  @ Option.to_list cfg.Pointsto.syscall_register
  @ Option.to_list cfg.Pointsto.syscall_invoke
