open Sva_ir

type kind = Wrong_var_mp | Wrong_edge | False_th | Split_mp

let kind_name = function
  | Wrong_var_mp -> "incorrect variable aliasing"
  | Wrong_edge -> "incorrect inter-node edge"
  | False_th -> "incorrect type-homogeneity claim"
  | Split_mp -> "insufficient node merging"

let all_kinds = [ Wrong_var_mp; Wrong_edge; False_th; Split_mp ]

let copy_annot (an : Tyck.annot) : Tyck.annot =
  {
    Tyck.an_value_mp = Hashtbl.copy an.Tyck.an_value_mp;
    an_global_mp = Hashtbl.copy an.Tyck.an_global_mp;
    an_fn_mp = Hashtbl.copy an.Tyck.an_fn_mp;
    an_ret_mp = Hashtbl.copy an.Tyck.an_ret_mp;
    an_succ = Hashtbl.copy an.Tyck.an_succ;
    an_th = Hashtbl.copy an.Tyck.an_th;
  }

let max_mp (an : Tyck.annot) =
  let m = ref 0 in
  Hashtbl.iter (fun _ v -> if v > !m then m := v) an.Tyck.an_value_mp;
  Hashtbl.iter (fun _ v -> if v > !m then m := v) an.Tyck.an_succ;
  Hashtbl.iter (fun v s -> m := max !m (max v s)) an.Tyck.an_succ;
  !m

(* Sites where a value's metapool qualifier is actually constrained by a
   local rule: gep bases (their result must match).  Deterministic order. *)
let gep_sites (m : Irmod.t) (an : Tyck.annot) =
  List.concat_map
    (fun (f : Func.t) ->
      if Func.has_attr f Func.Noanalyze then []
      else
        Func.fold_instrs f
          (fun acc _ (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Gep (Value.Reg (bid, _, _), _)
              when Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, bid)
                   && Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, i.Instr.id)
              ->
                (f.Func.f_name, bid, i.Instr.id) :: acc
            | _ -> acc)
          []
        |> List.rev)
    m.Irmod.m_funcs

(* Loads of pointers: both the pointer and the result are annotated, so the
   succ edge is checked. *)
let load_sites (m : Irmod.t) (an : Tyck.annot) =
  List.concat_map
    (fun (f : Func.t) ->
      if Func.has_attr f Func.Noanalyze then []
      else
        Func.fold_instrs f
          (fun acc _ (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Load (Value.Reg (pid, _, _))
              when Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, pid)
                   && Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, i.Instr.id)
              ->
                (f.Func.f_name, pid, i.Instr.id) :: acc
            | _ -> acc)
          []
        |> List.rev)
    m.Irmod.m_funcs

(* Loads/stores through a whole-object (non-interior) pointer: a false TH
   claim on the pointer's pool is checkable there. *)
let access_sites (m : Irmod.t) (an : Tyck.annot) =
  List.concat_map
    (fun (f : Func.t) ->
      if Func.has_attr f Func.Noanalyze then []
      else begin
        let interior = Hashtbl.create 16 in
        Func.fold_instrs f
          (fun acc _ (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Gep (base, idxs) ->
                let base_interior =
                  match base with
                  | Value.Reg (id, _, _) -> Hashtbl.mem interior id
                  | _ -> false
                in
                if
                  Sva_analysis.Pointsto.gep_enters_struct m.Irmod.m_ctx
                    (Value.ty base) idxs
                  || base_interior
                then Hashtbl.replace interior i.Instr.id ();
                (* A gep through a whole-object pointer also constrains the
                   pool's homogeneous type (the checker's th_access rule). *)
                (match base with
                | Value.Reg (bid, bty, _)
                  when (not base_interior)
                       && Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, bid) ->
                    (f.Func.f_name, bid, Ty.pointee bty) :: acc
                | _ -> acc)
            | Instr.Load (Value.Reg (pid, pty, _))
              when (not (Hashtbl.mem interior pid))
                   && Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, pid) ->
                (f.Func.f_name, pid, Ty.pointee pty) :: acc
            | Instr.Store (_, Value.Reg (pid, pty, _))
              when (not (Hashtbl.mem interior pid))
                   && Hashtbl.mem an.Tyck.an_value_mp (f.Func.f_name, pid) ->
                (f.Func.f_name, pid, Ty.pointee pty) :: acc
            | _ -> acc)
          []
        |> List.rev
      end)
    m.Irmod.m_funcs

let nth_opt l n = List.nth_opt l n

let inject (m : Irmod.t) (an : Tyck.annot) kind ~seed =
  let an' = copy_annot an in
  let fresh = max_mp an + 1 + seed in
  match kind with
  | Wrong_var_mp -> (
      match nth_opt (gep_sites m an) seed with
      | Some (fname, _base, res) ->
          let old = Hashtbl.find an'.Tyck.an_value_mp (fname, res) in
          Hashtbl.replace an'.Tyck.an_value_mp (fname, res) (old + 1 + fresh);
          Some
            ( an',
              Printf.sprintf
                "@%s: register r%d moved from M%d to bogus pool" fname res old )
      | None -> None)
  | Wrong_edge -> (
      match nth_opt (load_sites m an) seed with
      | Some (fname, pid, _res) ->
          let pm = Hashtbl.find an'.Tyck.an_value_mp (fname, pid) in
          Hashtbl.replace an'.Tyck.an_succ pm fresh;
          Some
            ( an',
              Printf.sprintf "@%s: M%d's points-to edge rewired to bogus pool"
                fname pm )
      | None -> None)
  | False_th -> (
      match nth_opt (access_sites m an) seed with
      | Some (fname, pid, accessed) ->
          let pm = Hashtbl.find an'.Tyck.an_value_mp (fname, pid) in
          (* Claim a homogeneous type that differs from this access (after
             the same array reduction the checker applies). *)
          let accessed =
            match accessed with Ty.Array (e, _) -> e | t -> t
          in
          let bogus = if Ty.equal accessed Ty.i64 then Ty.i32 else Ty.i64 in
          Hashtbl.replace an'.Tyck.an_th pm bogus;
          Some
            ( an',
              Printf.sprintf
                "@%s: M%d falsely claimed homogeneous of type %s (accessed as \
                 %s)"
                fname pm (Ty.to_string bogus) (Ty.to_string accessed) )
      | None -> None)
  | Split_mp -> (
      match nth_opt (gep_sites m an) seed with
      | Some (fname, base, res) ->
          let old = Hashtbl.find an'.Tyck.an_value_mp (fname, base) in
          (* Clone the pool's facts under a fresh id and move only the base
             there: the gep rule sees two different pools. *)
          (match Hashtbl.find_opt an'.Tyck.an_succ old with
          | Some s -> Hashtbl.replace an'.Tyck.an_succ fresh s
          | None -> ());
          (match Hashtbl.find_opt an'.Tyck.an_th old with
          | Some t -> Hashtbl.replace an'.Tyck.an_th fresh t
          | None -> ());
          Hashtbl.replace an'.Tyck.an_value_mp (fname, base) fresh;
          Some
            ( an',
              Printf.sprintf
                "@%s: M%d split — r%d left behind in a clone pool (gep at r%d)"
                fname old base res )
      | None -> None)

let experiment m an ~instances =
  List.concat_map
    (fun kind ->
      let rec collect seed found acc =
        if found >= instances || seed > 200 then List.rev acc
        else
          match inject m an kind ~seed with
          | Some (buggy, desc) ->
              let caught = not (Tyck.check_ok m buggy) in
              collect (seed + 1) (found + 1) ((kind, desc, caught) :: acc)
          | None -> collect (seed + 1) found acc
      in
      collect 0 0 [])
    all_kinds
