lib/tyck/tyck.ml: Allocdecl Func Hashtbl Instr Irmod List Metapool Option Pointsto Printf Sva_analysis Sva_ir Sva_safety Ty Value
