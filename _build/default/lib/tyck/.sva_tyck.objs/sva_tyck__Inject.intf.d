lib/tyck/inject.mli: Irmod Sva_ir Tyck
