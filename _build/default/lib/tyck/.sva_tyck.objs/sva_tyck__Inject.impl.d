lib/tyck/inject.ml: Func Hashtbl Instr Irmod List Printf Sva_analysis Sva_ir Ty Tyck Value
