lib/tyck/tyck.mli: Hashtbl Irmod Metapool Pointsto Sva_analysis Sva_ir Sva_safety Ty
