(** The SVA safety type system and its checker (Section 5).

    The safety-checking compiler's results are encoded as {e metapool
    qualifiers} on pointer values: a pointer [int *M1 Q] targets objects
    in metapool [M1]; a pointer [int *M2 *M3 P] targets objects in [M3]
    whose pointer fields target [M2].  The full annotation is therefore a
    per-value metapool assignment plus a points-to edge [succ] per
    metapool, plus type-homogeneity claims.

    The {e proof producer} ({!extract}) derives the annotations from the
    (complex, interprocedural, untrusted) points-to analysis.  The
    {e checker} ({!check}) verifies them with purely local rules — just
    the operands of each instruction — so only the checker is in the
    trusted computing base.  The rules, following the paper's example: if
    [Q : int *M1] is assigned [*P] where [P : int *M2 *M3], the checker
    requires [succ(M3) = M2 = M1].

    {!Inject} perturbs annotations with the four bug kinds of the
    Section 5 experiment; {!check} must reject all of them. *)

open Sva_ir
open Sva_analysis
open Sva_safety

type annot = {
  an_value_mp : (string * int, int) Hashtbl.t;
      (** (function, register id) -> metapool qualifier *)
  an_global_mp : (string, int) Hashtbl.t;  (** global symbol -> metapool *)
  an_fn_mp : (string, int) Hashtbl.t;  (** function symbol -> metapool *)
  an_ret_mp : (string, int) Hashtbl.t;  (** function -> metapool of result *)
  an_succ : (int, int) Hashtbl.t;  (** metapool -> metapool its cells target *)
  an_th : (int, Ty.t) Hashtbl.t;  (** type-homogeneity claims *)
}

val extract : Irmod.t -> Pointsto.result -> Metapool.t -> annot
(** The proof producer: encode the analysis results as annotations. *)

type error = {
  te_func : string;
  te_instr : int;  (** instruction id; -1 for non-instruction errors *)
  te_msg : string;
}

val string_of_error : error -> string

val check : ?trusted:string list -> Irmod.t -> annot -> error list
(** The trusted checker.  Purely intraprocedural and local; empty result
    means the annotations are consistent.

    [trusted] names the functions declared to the compiler during porting
    (allocators and their size/free functions, the memcpy-style and
    user-copy functions, the SVA-OS registration operations): calls to
    them are governed by those declarations rather than by the
    argument-qualifier rule, exactly as the paper places the allocator
    declarations inside the trusted porting step (Section 4.4). *)

val check_ok : ?trusted:string list -> Irmod.t -> annot -> bool

val trusted_of_config : Sva_analysis.Pointsto.config -> string list
(** The trusted-interface set implied by an analysis configuration. *)
