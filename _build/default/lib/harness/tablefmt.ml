type align = L | R

let render ~title ?note aligns header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun w row ->
        match List.nth_opt row c with
        | Some cell -> max w (String.length cell)
        | None -> w)
      0 all
  in
  let widths = List.init ncols width in
  let pad align w s =
    let fill = String.make (max 0 (w - String.length s)) ' ' in
    match align with L -> s ^ fill | R -> fill ^ s
  in
  let line row =
    let cells =
      List.mapi
        (fun c cell ->
          let a = try List.nth aligns c with _ -> L in
          pad a (List.nth widths c) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  (match note with
  | Some n -> Buffer.add_string buf (n ^ "\n")
  | None -> ());
  Buffer.add_string buf (sep ^ "\n" ^ line header ^ "\n" ^ sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.add_string buf (sep ^ "\n");
  Buffer.contents buf

let pct v = Printf.sprintf "%.1f%%" v

let pct_paper v = Printf.sprintf "(%.1f%%)" v

let ns v =
  if v >= 1e9 then Printf.sprintf "%.2fs" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2fms" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fus" (v /. 1e3)
  else Printf.sprintf "%.0fns" v

let mb_s v = Printf.sprintf "%.1fMB/s" v
