(** Plain-text table rendering for the experiment reports: every table
    prints the paper's numbers alongside the measured ones so the shape
    comparison is immediate. *)

type align = L | R

val render :
  title:string -> ?note:string -> align list -> string list -> string list list
  -> string
(** [render ~title aligns header rows] — a boxed, column-aligned table. *)

val pct : float -> string
(** Format a percentage with one decimal, e.g. ["38.5%"]. *)

val pct_paper : float -> string
(** Paper reference values, marked, e.g. ["(21.1%)"]. *)

val ns : float -> string
(** Human time formatting from nanoseconds. *)

val mb_s : float -> string
