(** Wall-clock measurement for the performance tables.

    Each measurement runs the operation in batches and reports the median
    batch, which is robust against GC pauses and scheduler noise — the
    same role HBench-OS's 50-iteration design plays in the paper
    (Section 7.1.2). *)

type sample = {
  s_per_op_ns : float;  (** median seconds-per-operation, in nanoseconds *)
  s_batches : int;
  s_reps : int;
}

val measure : ?batches:int -> ?reps:int -> (unit -> unit) -> sample
(** [measure f] — run [f] [reps] times per batch, [batches] times; the
    per-op time of the median batch is reported. *)

val overhead_pct : baseline:sample -> sample -> float
(** Percentage increase over [baseline] (the paper's
    [100 * (T - Tnative) / Tnative]). *)

val bandwidth_mb_s : bytes_per_op:int -> sample -> float
