lib/harness/tablefmt.ml: Buffer List Printf String
