lib/harness/workloads.mli: Ukern
