lib/harness/timing.ml: List Unix
