lib/harness/tables.mli:
