lib/harness/tables.ml: Array Buffer Exploits Hashtbl List Minic Option Printf String Sva_analysis Sva_ir Sva_pipeline Sva_rt Sva_safety Sva_tyck Tablefmt Ukern Workloads
