lib/harness/timing.mli:
