lib/harness/tablefmt.mli:
