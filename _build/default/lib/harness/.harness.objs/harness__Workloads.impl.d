lib/harness/workloads.ml: Bytes Char Int32 Int64 List Printf String Ukern
