type sample = { s_per_op_ns : float; s_batches : int; s_reps : int }

let now () = Unix.gettimeofday ()

let measure ?(batches = 7) ?(reps = 50) f =
  (* Warm up caches and the allocator paths. *)
  f ();
  let times =
    List.init batches (fun _ ->
        let t0 = now () in
        for _ = 1 to reps do
          f ()
        done;
        (now () -. t0) /. float_of_int reps)
  in
  let sorted = List.sort compare times in
  let median = List.nth sorted (batches / 2) in
  { s_per_op_ns = median *. 1e9; s_batches = batches; s_reps = reps }

let overhead_pct ~baseline s =
  (s.s_per_op_ns -. baseline.s_per_op_ns) /. baseline.s_per_op_ns *. 100.0

let bandwidth_mb_s ~bytes_per_op s =
  float_of_int bytes_per_op /. (s.s_per_op_ns /. 1e9) /. (1024.0 *. 1024.0)
