test/test_safety.ml: Alcotest Int64 List Pipeline Sva_analysis Sva_interp Sva_pipeline Sva_rt Sva_safety
