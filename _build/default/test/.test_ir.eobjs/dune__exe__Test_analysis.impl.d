test/test_analysis.ml: Alcotest List Minic Option Sva_analysis Sva_ir Sva_safety
