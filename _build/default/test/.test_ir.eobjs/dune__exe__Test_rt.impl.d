test/test_rt.ml: Alcotest List Metapool_rt QCheck2 QCheck_alcotest Splay Stats Sva_rt Violation
