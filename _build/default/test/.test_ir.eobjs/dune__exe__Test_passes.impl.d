test/test_passes.ml: Alcotest Builder Constfold Cse Dce Func Instr Irmod List Mem2reg Passes Pp Sva_ir Ty Value Verify
