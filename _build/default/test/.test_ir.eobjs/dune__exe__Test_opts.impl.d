test/test_opts.ml: Alcotest Int64 List Minic Option Pipeline Printf Sva_analysis Sva_interp Sva_ir Sva_pipeline Sva_rt Sva_safety
