test/test_interp.ml: Alcotest Builder Bytes Func Instr Int64 Irmod List Printf String Sva_hw Sva_interp Sva_ir Sva_os Ty Value Verify
