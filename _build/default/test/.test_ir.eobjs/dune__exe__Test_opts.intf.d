test/test_opts.mli:
