test/test_tyck.ml: Alcotest Hashtbl List Minic Pipeline Sva_analysis Sva_interp Sva_ir Sva_pipeline Sva_safety Sva_tyck
