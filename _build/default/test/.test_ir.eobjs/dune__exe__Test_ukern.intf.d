test/test_ukern.mli:
