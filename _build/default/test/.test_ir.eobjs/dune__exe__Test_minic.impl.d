test/test_minic.ml: Alcotest Int64 List Minic String Sva_interp Sva_ir
