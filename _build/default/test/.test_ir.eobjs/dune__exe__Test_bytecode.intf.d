test/test_bytecode.mli:
