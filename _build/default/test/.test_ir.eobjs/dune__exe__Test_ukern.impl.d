test/test_ukern.ml: Alcotest Bytes Char Hashtbl Int64 List Minic Option String Sva_bytecode Sva_hw Sva_interp Sva_ir Sva_pipeline Sva_rt Ukern
