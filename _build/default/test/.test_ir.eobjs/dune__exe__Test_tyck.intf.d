test/test_tyck.mli:
