test/test_hw.ml: Alcotest Array Bytes Cpu Devices List Machine Mmu Sva_hw Sva_os
