test/test_diff.ml: Alcotest Builder Constfold Func Instr Int64 Irmod List Minic Passes Printf QCheck2 QCheck_alcotest Random Sva_interp Sva_ir Sva_pipeline Ty Verify
