test/test_ir.ml: Alcotest Builder Cfg Func Instr Irmod List Pp String Sva_ir Ty Value Verify
