test/test_bytecode.ml: Alcotest Codec List Minic Printf QCheck2 QCheck_alcotest Random Sha256 Signing String Sva_bytecode Sva_interp Sva_ir Sva_pipeline Ukern
