(* Tests for the simulated hardware: machine memory regions, CPU state
   save/restore (Table 1 semantics), the MMU, devices, and the SVA-OS
   layer including interrupt contexts (Table 2). *)

open Sva_hw
module Svaos = Sva_os.Svaos

(* ---------- machine ---------- *)

let test_machine_rw () =
  let m = Machine.create () in
  Machine.write_int m ~addr:Machine.heap_base ~width:8 0x1122334455667788L;
  Alcotest.(check int64) "read back" 0x1122334455667788L
    (Machine.read_int m ~addr:Machine.heap_base ~width:8);
  (* little-endian byte order; narrow reads are canonically sign-extended *)
  Alcotest.(check int64) "low byte (sext 0x88)" (-0x78L)
    (Machine.read_int m ~addr:Machine.heap_base ~width:1);
  (* sign extension of narrow reads *)
  Machine.write_int m ~addr:Machine.heap_base ~width:1 0xffL;
  Alcotest.(check int64) "sext i8" (-1L)
    (Machine.read_int m ~addr:Machine.heap_base ~width:1)

let test_machine_fault_unmapped () =
  let m = Machine.create () in
  List.iter
    (fun addr ->
      match Machine.read m ~addr ~len:4 with
      | _ -> Alcotest.failf "read at 0x%x should fault" addr
      | exception Machine.Hw_fault _ -> ())
    [ 0; 4096; 0xDEADBEEF; Machine.heap_base + Machine.heap_size ]

let test_machine_region_straddle () =
  let m = Machine.create () in
  (* A range crossing out of a region faults even if it starts mapped. *)
  match Machine.read m ~addr:(Machine.bios_base + Machine.bios_size - 2) ~len:8 with
  | _ -> Alcotest.fail "straddling read should fault"
  | exception Machine.Hw_fault _ -> ()

let test_svm_region_protected () =
  let m = Machine.create () in
  (match Machine.write_int m ~addr:Machine.svm_base ~width:8 1L with
  | _ -> Alcotest.fail "kernel store into SVM memory should fault"
  | exception Machine.Hw_fault _ -> ());
  (* ...but the SVM itself may write it. *)
  Machine.with_svm_mode m (fun () ->
      Machine.write_int m ~addr:Machine.svm_base ~width:8 42L);
  Alcotest.(check int64) "svm wrote" 42L
    (Machine.read_int m ~addr:Machine.svm_base ~width:8)

let test_blit_and_fill () =
  let m = Machine.create () in
  Machine.write m ~addr:Machine.heap_base (Bytes.of_string "hello world");
  Machine.blit m ~src:Machine.heap_base ~dst:(Machine.heap_base + 100) ~len:11;
  Alcotest.(check string) "blit" "hello world"
    (Bytes.to_string (Machine.read m ~addr:(Machine.heap_base + 100) ~len:11));
  Machine.fill m ~addr:(Machine.heap_base + 100) ~len:5 'x';
  Alcotest.(check string) "fill" "xxxxx world"
    (Bytes.to_string (Machine.read m ~addr:(Machine.heap_base + 100) ~len:11))

(* ---------- CPU state (Table 1) ---------- *)

let test_cpu_save_restore () =
  let m = Machine.create () in
  let cpu = Cpu.create () in
  Cpu.scramble cpu ~seed:7;
  let saved = Cpu.create () in
  saved.Cpu.gpr <- Array.copy cpu.Cpu.gpr;
  saved.Cpu.pc <- cpu.Cpu.pc;
  saved.Cpu.flags <- cpu.Cpu.flags;
  Cpu.save_integer cpu m ~addr:Machine.heap_base;
  Cpu.scramble cpu ~seed:99;
  Alcotest.(check bool) "scrambled differs" false (Cpu.equal_integer cpu saved);
  Cpu.load_integer cpu m ~addr:Machine.heap_base;
  Alcotest.(check bool) "restored" true (Cpu.equal_integer cpu saved)

let test_fp_lazy_save () =
  let m = Machine.create () in
  let cpu = Cpu.create () in
  cpu.Cpu.fp_dirty <- false;
  Alcotest.(check bool) "clean fp not saved" false
    (Cpu.save_fp cpu m ~addr:Machine.heap_base ~always:false);
  Alcotest.(check bool) "always saves" true
    (Cpu.save_fp cpu m ~addr:Machine.heap_base ~always:true);
  cpu.Cpu.fpr.(3) <- 2.5;
  cpu.Cpu.fp_dirty <- true;
  Alcotest.(check bool) "dirty fp saved" true
    (Cpu.save_fp cpu m ~addr:Machine.heap_base ~always:false);
  cpu.Cpu.fpr.(3) <- 0.0;
  Cpu.load_fp cpu m ~addr:Machine.heap_base;
  Alcotest.(check (float 0.0)) "fp restored" 2.5 cpu.Cpu.fpr.(3)

(* ---------- MMU ---------- *)

let test_mmu_translate () =
  let mmu = Mmu.create () in
  let sp = Mmu.new_space mmu in
  Mmu.activate mmu sp;
  let vpn = Machine.user_base / Machine.page_size in
  let ppn = vpn + 4 in
  Mmu.map_page sp ~vpn ~ppn ~prot:{ Mmu.p_read = true; p_write = false; p_user = true };
  let va = Machine.user_base + 12 in
  Alcotest.(check int) "translated" ((ppn * Machine.page_size) + 12)
    (Mmu.translate mmu ~addr:va ~write:false);
  (* kernel addresses pass through *)
  Alcotest.(check int) "kernel identity" Machine.heap_base
    (Mmu.translate mmu ~addr:Machine.heap_base ~write:true);
  (* write to read-only page *)
  (match Mmu.translate mmu ~addr:va ~write:true with
  | _ -> Alcotest.fail "write to RO page should fault"
  | exception Mmu.Mmu_fault _ -> ());
  (* unmapped page *)
  match Mmu.translate mmu ~addr:(va + Machine.page_size) ~write:false with
  | _ -> Alcotest.fail "unmapped page should fault"
  | exception Mmu.Mmu_fault _ -> ()

let test_mmu_svm_frame_refused () =
  let mmu = Mmu.create () in
  let sp = Mmu.new_space mmu in
  match
    Mmu.map_page sp
      ~vpn:(Machine.user_base / Machine.page_size)
      ~ppn:(Machine.svm_base / Machine.page_size)
      ~prot:{ Mmu.p_read = true; p_write = true; p_user = true }
  with
  | () -> Alcotest.fail "mapping an SVM frame must be refused"
  | exception Mmu.Mmu_fault _ -> ()

let test_mmu_clone () =
  let mmu = Mmu.create () in
  let sp = Mmu.new_space mmu in
  let vpn = Machine.user_base / Machine.page_size in
  for i = 0 to 9 do
    Mmu.map_page sp ~vpn:(vpn + i) ~ppn:(vpn + i)
      ~prot:{ Mmu.p_read = true; p_write = true; p_user = true }
  done;
  let copy = Mmu.clone_space mmu sp in
  Alcotest.(check int) "pages copied" 10 (Mmu.page_count copy);
  Mmu.unmap_page copy ~vpn;
  Alcotest.(check int) "copy mutated" 9 (Mmu.page_count copy);
  Alcotest.(check int) "original intact" 10 (Mmu.page_count sp)

(* ---------- devices ---------- *)

let test_disk () =
  let d = Devices.create () in
  let block = Bytes.make 512 'z' in
  Devices.disk_write d ~block:5 block;
  Alcotest.(check bytes) "roundtrip" block (Devices.disk_read d ~block:5);
  match Devices.disk_read d ~block:999999 with
  | _ -> Alcotest.fail "oob block"
  | exception Invalid_argument _ -> ()

let test_nic_queues () =
  let d = Devices.create () in
  Devices.nic_inject d { Devices.fr_proto = 17; fr_payload = Bytes.of_string "a" };
  Devices.nic_inject d { Devices.fr_proto = 2; fr_payload = Bytes.of_string "b" };
  (match Devices.nic_recv d with
  | Some fr -> Alcotest.(check int) "fifo order" 17 fr.Devices.fr_proto
  | None -> Alcotest.fail "no frame");
  Devices.nic_send d { Devices.fr_proto = 17; fr_payload = Bytes.of_string "x" };
  Devices.nic_send d { Devices.fr_proto = 17; fr_payload = Bytes.of_string "y" };
  let tx = Devices.nic_take_tx d in
  Alcotest.(check int) "two sent" 2 (List.length tx);
  Alcotest.(check string) "oldest first" "x"
    (Bytes.to_string (List.hd tx).Devices.fr_payload);
  Alcotest.(check int) "drained" 0 (List.length (Devices.nic_take_tx d))

(* ---------- SVA-OS ---------- *)

let test_svaos_icontext_roundtrip () =
  let sys = Svaos.create () in
  Cpu.scramble sys.Svaos.cpu ~seed:3;
  let sp = Machine.stack_base + 1024 in
  let icp = Svaos.icontext_create sys ~sp ~was_privileged:true in
  Alcotest.(check bool) "privileged" true (Svaos.was_privileged sys ~icp);
  (* save the context as integer state, load it back *)
  let isp = Machine.stack_base + 8192 in
  Svaos.icontext_save sys ~icp ~isp;
  Svaos.icontext_load sys ~icp ~isp;
  Svaos.icontext_destroy sys ~icp;
  Alcotest.(check pass) "balanced" () ()

let test_svaos_icontext_tamper_detected () =
  let sys = Svaos.create () in
  let sp = Machine.stack_base + 1024 in
  let icp = Svaos.icontext_create sys ~sp ~was_privileged:false in
  (* the kernel scribbles over the integrity tag *)
  Machine.with_svm_mode sys.Svaos.machine (fun () ->
      Machine.write_int sys.Svaos.machine ~addr:icp ~width:8 0L);
  match Svaos.was_privileged sys ~icp with
  | _ -> Alcotest.fail "tampered icontext accepted"
  | exception Failure _ -> ()

let test_svaos_state_buffer_validated () =
  let sys = Svaos.create () in
  (* mediated mode refuses to spill processor state into userspace *)
  match Svaos.save_integer sys ~buffer:Machine.user_base with
  | _ -> Alcotest.fail "state spill into userspace accepted"
  | exception Failure _ -> ()

let test_svaos_ipush () =
  let sys = Svaos.create () in
  let icp =
    Svaos.icontext_create sys ~sp:(Machine.stack_base + 512) ~was_privileged:false
  in
  Alcotest.(check bool) "no pending" true (Svaos.ipush_pending sys ~icp = None);
  Svaos.ipush_function sys ~icp ~fn:0xB00040 ~arg:9L;
  (match Svaos.ipush_pending sys ~icp with
  | Some (fn, arg) ->
      Alcotest.(check int) "fn" 0xB00040 fn;
      Alcotest.(check int64) "arg" 9L arg
  | None -> Alcotest.fail "pending lost");
  Alcotest.(check bool) "consumed" true (Svaos.ipush_pending sys ~icp = None);
  Svaos.icontext_destroy sys ~icp

let test_svaos_modes () =
  let sys = Svaos.create ~mode:Svaos.Native_inline () in
  (* native mode skips buffer validation *)
  Svaos.save_integer sys ~buffer:(Machine.heap_base + 64);
  Svaos.set_mode sys Svaos.Sva_mediated;
  Svaos.save_integer sys ~buffer:(Machine.heap_base + 64);
  Alcotest.(check bool) "ops counted" true (sys.Svaos.ops_count >= 2)

let () =
  Alcotest.run "sva_hw"
    [
      ( "machine",
        [
          Alcotest.test_case "read/write" `Quick test_machine_rw;
          Alcotest.test_case "unmapped faults" `Quick test_machine_fault_unmapped;
          Alcotest.test_case "region straddle" `Quick test_machine_region_straddle;
          Alcotest.test_case "SVM region protected" `Quick test_svm_region_protected;
          Alcotest.test_case "blit/fill" `Quick test_blit_and_fill;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "integer save/restore" `Quick test_cpu_save_restore;
          Alcotest.test_case "lazy FP save" `Quick test_fp_lazy_save;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "translate" `Quick test_mmu_translate;
          Alcotest.test_case "SVM frame refused" `Quick test_mmu_svm_frame_refused;
          Alcotest.test_case "clone" `Quick test_mmu_clone;
        ] );
      ( "devices",
        [
          Alcotest.test_case "disk" `Quick test_disk;
          Alcotest.test_case "nic queues" `Quick test_nic_queues;
        ] );
      ( "svaos",
        [
          Alcotest.test_case "icontext roundtrip" `Quick test_svaos_icontext_roundtrip;
          Alcotest.test_case "icontext tamper" `Quick test_svaos_icontext_tamper_detected;
          Alcotest.test_case "state buffer validated" `Quick
            test_svaos_state_buffer_validated;
          Alcotest.test_case "ipush" `Quick test_svaos_ipush;
          Alcotest.test_case "modes" `Quick test_svaos_modes;
        ] );
    ]
