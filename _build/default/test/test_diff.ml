(* Differential property tests: the optimizer pipelines must preserve the
   semantics the interpreter implements, and the constant folder must
   agree with the executor on every operation — checked over randomly
   generated programs. *)

open Sva_ir

(* ---------- constant folder vs executor, per operation ---------- *)

let int_binops =
  [
    Instr.Add; Instr.Sub; Instr.Mul; Instr.Sdiv; Instr.Udiv; Instr.Srem;
    Instr.Urem; Instr.And; Instr.Or; Instr.Xor; Instr.Shl; Instr.Lshr;
    Instr.Ashr;
  ]

let widths = [ 8; 16; 32; 64 ]

(* Build `wN f(wN a, wN b) { return a OP b; }`, run it on the SVM, and
   compare with Constfold.eval_binop. *)
let run_binop op w a b =
  let m = Irmod.create "diff" in
  let ty = Ty.Int w in
  let f = Func.create "f" ty [ ("a", ty); ("b", ty) ] in
  Irmod.add_func m f;
  let bld = Builder.create m f in
  ignore (Builder.start_block bld "entry");
  let r = Builder.b_binop bld op (Func.param_value f 0) (Func.param_value f 1) in
  Builder.b_ret bld (Some r);
  Verify.check m;
  let t = Sva_interp.Interp.load m in
  let canon v = Constfold.truncate_to_width w v in
  match Sva_interp.Interp.call t "f" [ canon a; canon b ] with
  | Some v -> Some v
  | None -> None
  | exception Sva_interp.Interp.Vm_error _ -> None (* division by zero *)

let prop_constfold_matches_interp =
  let gen =
    QCheck2.Gen.(
      tup4 (int_range 0 (List.length int_binops - 1)) (oneofl widths)
        (map Int64.of_int int) (map Int64.of_int int))
  in
  QCheck2.Test.make ~name:"constant folder agrees with the executor" ~count:250
    gen
    (fun (opi, w, a, b) ->
      let op = List.nth int_binops opi in
      let ca = Constfold.truncate_to_width w a
      and cb = Constfold.truncate_to_width w b in
      let folded = Constfold.eval_binop op w ca cb in
      let executed = run_binop op w a b in
      match (folded, executed) with
      | Some x, Some y -> Int64.equal x y
      | None, None -> true (* both report division by zero *)
      | Some _, None | None, Some _ -> false)

let prop_icmp_matches_interp =
  let preds =
    [ Instr.Eq; Instr.Ne; Instr.Slt; Instr.Sle; Instr.Sgt; Instr.Sge;
      Instr.Ult; Instr.Ule; Instr.Ugt; Instr.Uge ]
  in
  let gen =
    QCheck2.Gen.(
      tup4 (int_range 0 (List.length preds - 1)) (oneofl widths)
        (map Int64.of_int int) (map Int64.of_int int))
  in
  QCheck2.Test.make ~name:"icmp folding agrees with the executor" ~count:250 gen
    (fun (pi, w, a, b) ->
      let pred = List.nth preds pi in
      let ca = Constfold.truncate_to_width w a
      and cb = Constfold.truncate_to_width w b in
      let m = Irmod.create "diff" in
      let ty = Ty.Int w in
      let f = Func.create "f" Ty.i32 [ ("a", ty); ("b", ty) ] in
      Irmod.add_func m f;
      let bld = Builder.create m f in
      ignore (Builder.start_block bld "entry");
      let c = Builder.b_icmp bld pred (Func.param_value f 0) (Func.param_value f 1) in
      let z = Builder.b_cast bld Instr.Zext c Ty.i32 in
      Builder.b_ret bld (Some z);
      let t = Sva_interp.Interp.load m in
      let run = Sva_interp.Interp.call t "f" [ ca; cb ] in
      let folded = Constfold.eval_icmp pred w ca cb in
      run = Some (if folded then 1L else 0L))

(* ---------- random MiniC programs: pipelines agree ---------- *)

(* Generate a random arithmetic expression over variables a, b, c using
   operators that cannot trap (no division). *)
let rec gen_expr rng depth =
  if depth = 0 then
    match Random.State.int rng 4 with
    | 0 -> "a"
    | 1 -> "b"
    | 2 -> "c"
    | _ -> string_of_int (Random.State.int rng 2000 - 1000)
  else
    let l = gen_expr rng (depth - 1) and r = gen_expr rng (depth - 1) in
    match Random.State.int rng 9 with
    | 0 -> Printf.sprintf "(%s + %s)" l r
    | 1 -> Printf.sprintf "(%s - %s)" l r
    | 2 -> Printf.sprintf "(%s * %s)" l r
    | 3 -> Printf.sprintf "(%s & %s)" l r
    | 4 -> Printf.sprintf "(%s | %s)" l r
    | 5 -> Printf.sprintf "(%s ^ %s)" l r
    | 6 -> Printf.sprintf "(%s << %d)" l (Random.State.int rng 8)
    | 7 -> Printf.sprintf "(%s >> %d)" l (Random.State.int rng 8)
    | _ -> Printf.sprintf "(%s < %s ? %s : %s)" l r l r

let gen_program seed =
  let rng = Random.State.make [| seed |] in
  let e1 = gen_expr rng 3 in
  let e2 = gen_expr rng 3 in
  let e3 = gen_expr rng 2 in
  Printf.sprintf
    "int f(int a, int b) {\n\
    \  int c = %s;\n\
    \  int acc = 0;\n\
    \  for (int i = 0; i < 8; i++) {\n\
    \    if ((%s) > acc) acc += c; else acc ^= (%s);\n\
    \    c = c + i;\n\
    \  }\n\
    \  return acc;\n\
     }"
    e1 e2 e3

let run_program pipeline src (a, b) =
  let m = Minic.Lower.compile_string ~name:"rand" src in
  (match pipeline with
  | Some p -> Passes.run p m
  | None -> Verify.check m);
  let t = Sva_interp.Interp.load m in
  Sva_interp.Interp.call t "f" [ Int64.of_int a; Int64.of_int b ]

let prop_pipelines_agree =
  let gen = QCheck2.Gen.(tup3 (int_range 0 5000) small_signed_int small_signed_int) in
  QCheck2.Test.make ~name:"optimizer pipelines preserve semantics" ~count:40 gen
    (fun (seed, a, b) ->
      let src = gen_program seed in
      let unopt = run_program None src (a, b) in
      let gcc = run_program (Some Passes.Gcc_like) src (a, b) in
      let llvm = run_program (Some Passes.Llvm_like) src (a, b) in
      unopt = gcc && gcc = llvm)

(* ---------- random programs survive the full safety pipeline ---------- *)

let prop_safety_pipeline_preserves =
  let gen = QCheck2.Gen.(tup3 (int_range 0 5000) small_signed_int small_signed_int) in
  QCheck2.Test.make
    ~name:"safety instrumentation preserves pure computations" ~count:40 gen
    (fun (seed, a, b) ->
      let src = gen_program seed in
      let plain = run_program (Some Passes.Llvm_like) src (a, b) in
      let built =
        Sva_pipeline.Pipeline.build ~conf:Sva_pipeline.Pipeline.Sva_safe
          ~name:"rand" [ src ]
      in
      let t = Sva_pipeline.Pipeline.instantiate built in
      let safe =
        Sva_interp.Interp.call t "f" [ Int64.of_int a; Int64.of_int b ]
      in
      plain = safe)

let () =
  Alcotest.run "sva_diff"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_constfold_matches_interp;
          QCheck_alcotest.to_alcotest prop_icmp_matches_interp;
          QCheck_alcotest.to_alcotest prop_pipelines_agree;
          QCheck_alcotest.to_alcotest prop_safety_pipeline_preserves;
        ] );
    ]
