(* Tests for the SVM executor itself: memory semantics, atomics, traps,
   step limits, heap reuse, user-address translation, code addresses and
   global layout. *)

open Sva_ir
module Interp = Sva_interp.Interp
module Machine = Sva_hw.Machine
module Svaos = Sva_os.Svaos

let build_module f =
  let m = Irmod.create "t" in
  f m;
  Verify.check m;
  m

let simple_fn m ?(params = []) ?(ret = Ty.i64) name body =
  let f = Func.create name ret params in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  body f b

(* ---------- memory and layout ---------- *)

let test_global_layout_and_init () =
  let m =
    build_module (fun m ->
        Irmod.add_global m
          { Irmod.g_name = "tbl"; g_ty = Ty.Array (Ty.i32, 4);
            g_init = Irmod.Ints (Ty.i32, [ 10L; 20L; 30L; 40L ]); g_const = false };
        Irmod.add_global m
          { Irmod.g_name = "msg"; g_ty = Ty.Array (Ty.i8, 6);
            g_init = Irmod.Str "hello\000"; g_const = true };
        simple_fn m ~ret:Ty.i32 "third" (fun _ b ->
            let addr =
              Builder.b_gep b
                (Value.Global ("tbl", Ty.Array (Ty.i32, 4)))
                [ Value.imm 0; Value.imm 2 ]
            in
            let v = Builder.b_load b addr in
            Builder.b_ret b (Some v)))
  in
  let t = Interp.load m in
  Alcotest.(check (option int64)) "tbl[2]" (Some 30L) (Interp.call t "third" []);
  (* the string initializer landed in machine memory *)
  let addr = Interp.global_addr t "msg" in
  Alcotest.(check string) "string bytes" "hello"
    (Bytes.to_string (Machine.read (Interp.sys t).Svaos.machine ~addr ~len:5));
  Alcotest.(check int) "sizes" 16 (Interp.global_size t "tbl")

let test_gep_struct_addressing () =
  let m =
    build_module (fun m ->
        ignore
          (Ty.define_struct m.Irmod.m_ctx "task"
             [ ("pid", Ty.i32); ("state", Ty.i8); ("next", Ty.Ptr (Ty.Struct "task")) ]);
        Irmod.add_global m
          { Irmod.g_name = "t0"; g_ty = Ty.Struct "task"; g_init = Irmod.Zero;
            g_const = false };
        simple_fn m "field_addr_delta" (fun _ b ->
            let base = Value.Global ("t0", Ty.Struct "task") in
            let next = Builder.b_struct_gep b base "next" in
            let pid = Builder.b_struct_gep b base "pid" in
            let ni = Builder.b_cast b Instr.Ptrtoint next Ty.i64 in
            let pi = Builder.b_cast b Instr.Ptrtoint pid Ty.i64 in
            let d = Builder.b_binop b Instr.Sub ni pi in
            Builder.b_ret b (Some d)))
  in
  let t = Interp.load m in
  (* next is at offset 8 (i32 pid, i8 state, padding) *)
  Alcotest.(check (option int64)) "field offset" (Some 8L)
    (Interp.call t "field_addr_delta" [])

let test_wild_store_faults () =
  let m =
    build_module (fun m ->
        simple_fn m ~ret:Ty.Void "wild" (fun _ b ->
            let p =
              Builder.b_cast b Instr.Inttoptr (Value.imm64 0x150000L (* unmapped gap between SVM and globals regions *))
                (Ty.Ptr Ty.i64)
            in
            Builder.b_store b (Value.imm64 1L) p;
            Builder.b_ret b None))
  in
  let t = Interp.load m in
  match Interp.call t "wild" [] with
  | _ -> Alcotest.fail "wild store must fault"
  | exception Machine.Hw_fault _ -> ()

let test_null_deref_faults () =
  let m =
    build_module (fun m ->
        simple_fn m "nullread" (fun _ b ->
            let v = Builder.b_load b (Value.Null (Ty.Ptr Ty.i64)) in
            Builder.b_ret b (Some v)))
  in
  let t = Interp.load m in
  match Interp.call t "nullread" [] with
  | _ -> Alcotest.fail "null deref must fault"
  | exception Machine.Hw_fault _ -> ()

(* ---------- arithmetic traps and limits ---------- *)

let test_division_by_zero_traps () =
  let m =
    build_module (fun m ->
        simple_fn m ~params:[ ("a", Ty.i64); ("b", Ty.i64) ] "div" (fun f b ->
            let q =
              Builder.b_binop b Instr.Sdiv (Func.param_value f 0)
                (Func.param_value f 1)
            in
            Builder.b_ret b (Some q)))
  in
  let t = Interp.load m in
  Alcotest.(check (option int64)) "7/2" (Some 3L) (Interp.call t "div" [ 7L; 2L ]);
  match Interp.call t "div" [ 7L; 0L ] with
  | _ -> Alcotest.fail "division by zero must trap"
  | exception Interp.Vm_error _ -> ()

let test_step_limit () =
  let m =
    build_module (fun m ->
        simple_fn m ~ret:Ty.Void "spin" (fun _ b ->
            Builder.b_jmp b "loop";
            ignore (Builder.start_block b "loop");
            Builder.b_jmp b "loop"))
  in
  let t = Interp.load m in
  Interp.set_step_limit t (Some 10_000);
  match Interp.call t "spin" [] with
  | _ -> Alcotest.fail "must hit the step limit"
  | exception Interp.Vm_error msg ->
      Alcotest.(check bool) "limit message" true
        (String.length msg > 0 && msg.[0] = 's')

(* ---------- atomics ---------- *)

let test_atomics () =
  let m =
    build_module (fun m ->
        Irmod.add_global m
          { Irmod.g_name = "ctr"; g_ty = Ty.i64; g_init = Irmod.Ints (Ty.i64, [ 5L ]);
            g_const = false };
        simple_fn m "bump" (fun _ b ->
            let g = Value.Global ("ctr", Ty.i64) in
            let old = Builder.b_atomic_add b g (Value.imm64 3L) in
            Builder.b_ret b (Some old));
        simple_fn m ~params:[ ("expect", Ty.i64); ("repl", Ty.i64) ] "swap"
          (fun f b ->
            let g = Value.Global ("ctr", Ty.i64) in
            let old =
              Builder.b_cas b g (Func.param_value f 0) (Func.param_value f 1)
            in
            Builder.b_ret b (Some old)))
  in
  let t = Interp.load m in
  Alcotest.(check (option int64)) "add returns old" (Some 5L)
    (Interp.call t "bump" []);
  Alcotest.(check (option int64)) "cas mismatch returns current" (Some 8L)
    (Interp.call t "swap" [ 0L; 99L ]);
  Alcotest.(check (option int64)) "cas match swaps" (Some 8L)
    (Interp.call t "swap" [ 8L; 99L ]);
  Alcotest.(check (option int64)) "swapped" (Some 99L)
    (Interp.call t "swap" [ 0L; 0L ])

(* ---------- heap ---------- *)

let test_malloc_free_reuse () =
  let m =
    build_module (fun m ->
        simple_fn m "churn" (fun _ b ->
            let p1 = Builder.b_malloc b ~count:(Value.imm 4) Ty.i64 in
            Builder.b_free b p1;
            let p2 = Builder.b_malloc b ~count:(Value.imm 4) Ty.i64 in
            let i1 = Builder.b_cast b Instr.Ptrtoint p1 Ty.i64 in
            let i2 = Builder.b_cast b Instr.Ptrtoint p2 Ty.i64 in
            let same = Builder.b_icmp b Instr.Eq i1 i2 in
            let z = Builder.b_cast b Instr.Zext same Ty.i64 in
            Builder.b_free b p2;
            Builder.b_ret b (Some z)))
  in
  let t = Interp.load m in
  Alcotest.(check (option int64)) "freed block reused" (Some 1L)
    (Interp.call t "churn" []);
  Alcotest.(check int) "no live bytes" 0 (Interp.heap_live_bytes t)

let test_double_free_is_vm_error () =
  let m =
    build_module (fun m ->
        simple_fn m ~ret:Ty.Void "df" (fun _ b ->
            let p = Builder.b_malloc b Ty.i64 in
            Builder.b_free b p;
            Builder.b_free b p;
            Builder.b_ret b None))
  in
  let t = Interp.load m in
  match Interp.call t "df" [] with
  | _ -> Alcotest.fail "double free must error"
  | exception Interp.Vm_error _ -> ()

(* ---------- code addresses and indirect calls ---------- *)

let test_function_addresses () =
  let m =
    build_module (fun m ->
        simple_fn m ~ret:Ty.i32 "aa" (fun _ b -> Builder.b_ret b (Some (Value.imm 1)));
        simple_fn m ~ret:Ty.i32 "bb" (fun _ b -> Builder.b_ret b (Some (Value.imm 2))))
  in
  let t = Interp.load m in
  let a = Interp.func_addr t "aa" and b = Interp.func_addr t "bb" in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check (option string)) "reverse" (Some "aa") (Interp.func_name t a);
  Alcotest.(check (option int64)) "call_addr" (Some 2L) (Interp.call_addr t b []);
  match Interp.call_addr t (a + 1) [] with
  | _ -> Alcotest.fail "bad code address must error"
  | exception Interp.Vm_error _ -> ()

let test_indirect_call_through_memory () =
  let m =
    build_module (fun m ->
        Irmod.add_global m
          { Irmod.g_name = "fptr"; g_ty = Ty.Ptr (Ty.Func (Ty.i32, [], false));
            g_init = Irmod.Ptrs [ "target" ]; g_const = false };
        simple_fn m ~ret:Ty.i32 "target" (fun _ b ->
            Builder.b_ret b (Some (Value.imm 77)));
        simple_fn m ~ret:Ty.i32 "dispatch" (fun _ b ->
            let cell =
              Value.Global ("fptr", Ty.Ptr (Ty.Func (Ty.i32, [], false)))
            in
            let fp = Builder.b_load b cell in
            let r = Builder.b_call b fp [] in
            Builder.b_ret b r))
  in
  let t = Interp.load m in
  Alcotest.(check (option int64)) "via table" (Some 77L)
    (Interp.call t "dispatch" [])

(* ---------- user-address translation ---------- *)

let test_user_translation () =
  let m =
    build_module (fun m ->
        simple_fn m ~params:[ ("p", Ty.Ptr Ty.i64) ] "peek" (fun f b ->
            let v = Builder.b_load b (Func.param_value f 0) in
            Builder.b_ret b (Some v)))
  in
  let sys = Svaos.create () in
  let t = Interp.load ~sys m in
  (* no active space: user access faults *)
  (match Interp.call t "peek" [ Int64.of_int Machine.user_base ] with
  | _ -> Alcotest.fail "untranslatable access must fault"
  | exception Sva_hw.Mmu.Mmu_fault _ -> ());
  (* map user page 0 to a shifted frame and verify the translation *)
  let sid = Svaos.mmu_new_space sys in
  Svaos.mmu_activate sys ~sid;
  let vpn = Machine.user_base / Machine.page_size in
  Svaos.mmu_map_page sys ~sid ~vpn ~ppn:(vpn + 3) ~writable:true;
  Machine.write_int sys.Svaos.machine
    ~addr:(Machine.user_base + (3 * Machine.page_size))
    ~width:8 424242L;
  Alcotest.(check (option int64)) "translated read" (Some 424242L)
    (Interp.call t "peek" [ Int64.of_int Machine.user_base ])

let test_cycle_model_monotone () =
  let m =
    build_module (fun m ->
        simple_fn m ~params:[ ("n", Ty.i64) ] "loop" (fun f b ->
            Builder.b_jmp b "head";
            ignore (Builder.start_block b "head");
            let i =
              Builder.b_phi b Ty.i64
                [ ("entry", Value.imm64 0L); ("head", Value.Reg (99, Ty.i64, "")) ]
            in
            let i' = Builder.b_binop b Instr.Add i (Value.imm64 1L) in
            (* patch the placeholder *)
            (match i' with
            | Value.Reg (id, _, _) ->
                let blk = Func.find_block f "head" in
                blk.Func.insns <-
                  List.map
                    (fun (ins : Instr.t) ->
                      match ins.Instr.kind with
                      | Instr.Phi inc ->
                          { ins with
                            Instr.kind =
                              Instr.Phi
                                (List.map
                                   (fun (l, v) ->
                                     if l = "head" then (l, Value.Reg (id, Ty.i64, ""))
                                     else (l, v))
                                   inc) }
                      | _ -> ins)
                    blk.Func.insns
            | _ -> ());
            let c = Builder.b_icmp b Instr.Slt i' (Func.param_value f 0) in
            Builder.b_br b c "head" "out";
            ignore (Builder.start_block b "out");
            Builder.b_ret b (Some i')))
  in
  let t = Interp.load m in
  Interp.reset_cycles t;
  ignore (Interp.call t "loop" [ 10L ]);
  let c10 = Interp.cycles t in
  Interp.reset_cycles t;
  ignore (Interp.call t "loop" [ 100L ]);
  let c100 = Interp.cycles t in
  Alcotest.(check bool)
    (Printf.sprintf "cycles scale with work (%d < %d)" c10 c100)
    true
    (c10 * 5 < c100)

let () =
  Alcotest.run "sva_interp"
    [
      ( "memory",
        [
          Alcotest.test_case "globals" `Quick test_global_layout_and_init;
          Alcotest.test_case "struct gep" `Quick test_gep_struct_addressing;
          Alcotest.test_case "wild store faults" `Quick test_wild_store_faults;
          Alcotest.test_case "null deref faults" `Quick test_null_deref_faults;
        ] );
      ( "execution",
        [
          Alcotest.test_case "div by zero" `Quick test_division_by_zero_traps;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "atomics" `Quick test_atomics;
          Alcotest.test_case "cycle model" `Quick test_cycle_model_monotone;
        ] );
      ( "heap",
        [
          Alcotest.test_case "malloc/free reuse" `Quick test_malloc_free_reuse;
          Alcotest.test_case "double free" `Quick test_double_free_is_vm_error;
        ] );
      ( "code",
        [
          Alcotest.test_case "function addresses" `Quick test_function_addresses;
          Alcotest.test_case "indirect via memory" `Quick
            test_indirect_call_through_memory;
        ] );
      ( "mmu", [ Alcotest.test_case "user translation" `Quick test_user_translation ] );
    ]
