(* Unit tests for the SVA-Core IR: type layout, builder, verifier, CFG. *)

open Sva_ir

let ctx_with_structs () =
  let ctx = Ty.create_ctx () in
  ignore (Ty.define_struct ctx "pair" [ ("a", Ty.i32); ("b", Ty.i32) ]);
  ignore
    (Ty.define_struct ctx "task"
       [ ("pid", Ty.i32); ("state", Ty.i8); ("next", Ty.Ptr (Ty.Struct "task")) ]);
  ignore
    (Ty.define_struct ctx "fib_nh" [ ("oif", Ty.i32); ("gw", Ty.i32); ("weight", Ty.i32) ]);
  ctx

(* ---------- Ty ---------- *)

let test_sizeof_scalars () =
  let ctx = Ty.create_ctx () in
  Alcotest.(check int) "i1" 1 (Ty.sizeof ctx Ty.i1);
  Alcotest.(check int) "i8" 1 (Ty.sizeof ctx Ty.i8);
  Alcotest.(check int) "i16" 2 (Ty.sizeof ctx Ty.i16);
  Alcotest.(check int) "i32" 4 (Ty.sizeof ctx Ty.i32);
  Alcotest.(check int) "i64" 8 (Ty.sizeof ctx Ty.i64);
  Alcotest.(check int) "double" 8 (Ty.sizeof ctx Ty.Float);
  Alcotest.(check int) "ptr" 8 (Ty.sizeof ctx (Ty.Ptr Ty.i8))

let test_sizeof_aggregates () =
  let ctx = ctx_with_structs () in
  Alcotest.(check int) "pair" 8 (Ty.sizeof ctx (Ty.Struct "pair"));
  (* task: i32 @0, i8 @4, padding, ptr @8 -> 16 bytes *)
  Alcotest.(check int) "task" 16 (Ty.sizeof ctx (Ty.Struct "task"));
  Alcotest.(check int) "array" 40 (Ty.sizeof ctx (Ty.Array (Ty.i32, 10)));
  Alcotest.(check int) "array of task" 160 (Ty.sizeof ctx (Ty.Array (Ty.Struct "task", 10)))

let test_field_offsets () =
  let ctx = ctx_with_structs () in
  let off, ty = Ty.field_offset ctx "task" "next" in
  Alcotest.(check int) "next offset" 8 off;
  Alcotest.(check bool) "next type" true (Ty.equal ty (Ty.Ptr (Ty.Struct "task")));
  let off, _ = Ty.field_offset ctx "task" "state" in
  Alcotest.(check int) "state offset" 4 off;
  Alcotest.(check int) "field_index" 2 (Ty.field_index ctx "task" "next")

let test_struct_redefinition () =
  let ctx = ctx_with_structs () in
  (* Same fields: idempotent. *)
  ignore (Ty.define_struct ctx "pair" [ ("a", Ty.i32); ("b", Ty.i32) ]);
  Alcotest.check_raises "conflicting redefinition"
    (Invalid_argument "Ty.define_struct: redefinition of %pair") (fun () ->
      ignore (Ty.define_struct ctx "pair" [ ("a", Ty.i64) ]))

let test_ty_to_string () =
  Alcotest.(check string) "ptr" "i32*" (Ty.to_string (Ty.Ptr Ty.i32));
  Alcotest.(check string) "array" "[4 x i8]" (Ty.to_string (Ty.Array (Ty.i8, 4)));
  Alcotest.(check string)
    "func" "void (i32, i8*)"
    (Ty.to_string (Ty.Func (Ty.Void, [ Ty.i32; Ty.Ptr Ty.i8 ], false)))

(* ---------- Builder & Verify ---------- *)

let simple_module () =
  let m = Irmod.create "t" in
  ignore (Ty.define_struct m.Irmod.m_ctx "pair" [ ("a", Ty.i32); ("b", Ty.i32) ]);
  m

let test_builder_add_function () =
  let m = simple_module () in
  let f = Func.create "add" Ty.i32 [ ("x", Ty.i32); ("y", Ty.i32) ] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  let s = Builder.b_binop b Instr.Add (Func.param_value f 0) (Func.param_value f 1) in
  Builder.b_ret b (Some s);
  Alcotest.(check (list string)) "verifies" []
    (List.map Verify.string_of_error (Verify.verify_module m))

let test_builder_gep_struct () =
  let m = simple_module () in
  let f = Func.create "getb" Ty.i32 [ ("p", Ty.Ptr (Ty.Struct "pair")) ] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  let addr = Builder.b_struct_gep b (Func.param_value f 0) "b" in
  Alcotest.(check bool) "gep type" true (Ty.equal (Value.ty addr) (Ty.Ptr Ty.i32));
  let v = Builder.b_load b addr in
  Builder.b_ret b (Some v);
  Alcotest.(check int) "no errors" 0 (List.length (Verify.verify_module m))

let test_verify_catches_type_error () =
  let m = simple_module () in
  let f = Func.create "bad" Ty.i32 [ ("x", Ty.i32) ] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  (* Return an i64 from an i32 function. *)
  Builder.b_ret b (Some (Value.imm64 3L));
  Alcotest.(check bool) "caught" true (Verify.verify_module m <> [])

let test_verify_catches_bad_branch () =
  let m = simple_module () in
  let f = Func.create "badbr" Ty.Void [] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  Builder.b_jmp b "nowhere";
  Alcotest.(check bool) "caught" true (Verify.verify_module m <> [])

let test_verify_catches_double_def () =
  let m = simple_module () in
  let f = Func.create "dd" Ty.i32 [] in
  Irmod.add_func m f;
  let blk = Func.add_block f "entry" in
  let i1 = { Instr.id = 5; nm = ""; ty = Ty.i32; kind = Instr.Binop (Instr.Add, Value.imm 1, Value.imm 2) } in
  let i2 = { Instr.id = 5; nm = ""; ty = Ty.i32; kind = Instr.Binop (Instr.Add, Value.imm 3, Value.imm 4) } in
  blk.Func.insns <- [ i1; i2 ];
  blk.Func.term <- Instr.Ret (Some (Value.Reg (5, Ty.i32, "")));
  Alcotest.(check bool) "caught SSA violation" true
    (List.exists
       (fun e -> e.Verify.ve_msg = "register %r5 defined twice (SSA violation)")
       (Verify.verify_module m))

let test_verify_use_before_def () =
  let m = simple_module () in
  let f = Func.create "ubd" Ty.i32 [] in
  Irmod.add_func m f;
  let blk = Func.add_block f "entry" in
  let use = { Instr.id = 1; nm = ""; ty = Ty.i32; kind = Instr.Binop (Instr.Add, Value.Reg (2, Ty.i32, ""), Value.imm 1) } in
  let def = { Instr.id = 2; nm = ""; ty = Ty.i32; kind = Instr.Binop (Instr.Add, Value.imm 1, Value.imm 1) } in
  blk.Func.insns <- [ use; def ];
  blk.Func.term <- Instr.Ret (Some (Value.Reg (1, Ty.i32, "")));
  Alcotest.(check bool) "caught use-before-def" true
    (List.exists
       (fun e -> e.Verify.ve_msg = "register %r2 used before its definition")
       (Verify.verify_module m))

let test_call_arity_checked () =
  let m = simple_module () in
  let callee = Func.create "callee" Ty.i32 [ ("x", Ty.i32) ] in
  Irmod.add_func m callee;
  let cb = Builder.create m callee in
  ignore (Builder.start_block cb "entry");
  Builder.b_ret cb (Some (Func.param_value callee 0));
  let f = Func.create "caller" Ty.i32 [] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  let r = Builder.b_call_named b "callee" [] in
  Builder.b_ret b r;
  Alcotest.(check bool) "arity caught" true
    (List.exists
       (fun e -> e.Verify.ve_msg = "call arity: 0 args for 1 params")
       (Verify.verify_module m))

(* ---------- CFG / dominators ---------- *)

(* A diamond:      entry -> a, b; a -> exit; b -> exit *)
let diamond () =
  let m = simple_module () in
  let f = Func.create "diamond" Ty.i32 [ ("c", Ty.i1) ] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  Builder.b_br b (Func.param_value f 0) "a" "bb";
  ignore (Builder.start_block b "a");
  Builder.b_jmp b "exit";
  ignore (Builder.start_block b "bb");
  Builder.b_jmp b "exit";
  ignore (Builder.start_block b "exit");
  let phi = Builder.b_phi b Ty.i32 [ ("a", Value.imm 1); ("bb", Value.imm 2) ] in
  Builder.b_ret b (Some phi);
  (m, f)

let test_cfg_diamond () =
  let m, f = diamond () in
  Alcotest.(check int) "verifies" 0 (List.length (Verify.verify_module m));
  let cfg = Cfg.build f in
  Alcotest.(check (list string)) "succ entry" [ "a"; "bb" ] (Cfg.successors cfg "entry");
  Alcotest.(check (list string)) "pred exit" [ "a"; "bb" ]
    (List.sort compare (Cfg.predecessors cfg "exit"));
  Alcotest.(check (option string)) "idom exit" (Some "entry") (Cfg.idom cfg "exit");
  Alcotest.(check bool) "entry dom all" true (Cfg.dominates cfg "entry" "exit");
  Alcotest.(check bool) "a !dom exit" false (Cfg.dominates cfg "a" "exit");
  Alcotest.(check bool) "reflexive" true (Cfg.dominates cfg "a" "a")

let test_cfg_loop_backedge () =
  let m = simple_module () in
  let f = Func.create "loopy" Ty.Void [ ("n", Ty.i32) ] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  Builder.b_jmp b "head";
  ignore (Builder.start_block b "head");
  let i = Builder.b_phi b Ty.i32 [ ("entry", Value.imm 0); ("body", Value.Reg (99, Ty.i32, "i2")) ] in
  let c = Builder.b_icmp b Instr.Slt i (Func.param_value f 0) in
  Builder.b_br b c "body" "done";
  ignore (Builder.start_block b "body");
  let i2 = Builder.b_binop b Instr.Add i (Value.imm 1) in
  (* Patch the phi to reference the real increment register. *)
  (match i2 with
  | Value.Reg (id, _, _) ->
      let head = Func.find_block f "head" in
      head.Func.insns <-
        List.map
          (fun (ins : Instr.t) ->
            match ins.Instr.kind with
            | Instr.Phi inc ->
                { ins with
                  Instr.kind =
                    Instr.Phi
                      (List.map
                         (fun (l, v) ->
                           if l = "body" then (l, Value.Reg (id, Ty.i32, "i2"))
                           else (l, v))
                         inc)
                }
            | _ -> ins)
          head.Func.insns
  | _ -> ());
  Builder.b_jmp b "head";
  ignore (Builder.start_block b "done");
  Builder.b_ret b None;
  Alcotest.(check int) "verifies" 0 (List.length (Verify.verify_module m));
  let cfg = Cfg.build f in
  Alcotest.(check (list (pair string string))) "back edge" [ ("body", "head") ]
    (Cfg.back_edges cfg);
  let body = Cfg.natural_loop cfg ("body", "head") in
  Alcotest.(check (list string)) "loop body" [ "head"; "body" ] body

(* ---------- Pretty printer ---------- *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_pp_roundtrip_content () =
  let _, f = diamond () in
  let text = Pp.string_of_func f in
  Alcotest.(check bool) "has define" true (contains text "define i32 @diamond");
  Alcotest.(check bool) "mentions phi" true (contains text "phi i32");
  Alcotest.(check bool) "mentions br" true (contains text "br %c.0, %a, %bb")

(* ---------- Irmod.merge ---------- *)

let test_merge_modules () =
  let m1 = simple_module () in
  let f1 = Func.create "f1" Ty.Void [] in
  Irmod.add_func m1 f1;
  let b1 = Builder.create m1 f1 in
  ignore (Builder.start_block b1 "entry");
  Builder.b_ret b1 None;
  Irmod.declare_extern m1 "f2" (Ty.Func (Ty.Void, [], false));
  let m2 = Irmod.create "mod2" in
  let f2 = Func.create "f2" Ty.Void [] in
  Irmod.add_func m2 f2;
  let b2 = Builder.create m2 f2 in
  ignore (Builder.start_block b2 "entry");
  Builder.b_ret b2 None;
  Irmod.merge m1 m2;
  Alcotest.(check bool) "f2 now defined" true (Irmod.find_func m1 "f2" <> None);
  Alcotest.(check int) "verifies" 0 (List.length (Verify.verify_module m1))

let () =
  Alcotest.run "sva_ir"
    [
      ( "ty",
        [
          Alcotest.test_case "sizeof scalars" `Quick test_sizeof_scalars;
          Alcotest.test_case "sizeof aggregates" `Quick test_sizeof_aggregates;
          Alcotest.test_case "field offsets" `Quick test_field_offsets;
          Alcotest.test_case "struct redefinition" `Quick test_struct_redefinition;
          Alcotest.test_case "to_string" `Quick test_ty_to_string;
        ] );
      ( "builder-verify",
        [
          Alcotest.test_case "add function" `Quick test_builder_add_function;
          Alcotest.test_case "struct gep" `Quick test_builder_gep_struct;
          Alcotest.test_case "type error caught" `Quick test_verify_catches_type_error;
          Alcotest.test_case "bad branch caught" `Quick test_verify_catches_bad_branch;
          Alcotest.test_case "double def caught" `Quick test_verify_catches_double_def;
          Alcotest.test_case "use before def caught" `Quick test_verify_use_before_def;
          Alcotest.test_case "call arity" `Quick test_call_arity_checked;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "diamond" `Quick test_cfg_diamond;
          Alcotest.test_case "loop back edge" `Quick test_cfg_loop_backedge;
        ] );
      ( "pp",
        [ Alcotest.test_case "function text" `Quick test_pp_roundtrip_content ] );
      ( "irmod",
        [ Alcotest.test_case "merge" `Quick test_merge_modules ] );
    ]
