(* End-to-end kernel tests: boot under every configuration and exercise
   the system-call surface.  The same MiniC kernel runs natively and under
   the full safety pipeline; behaviour must agree. *)

module Boot = Ukern.Boot
module Pipeline = Sva_pipeline.Pipeline

(* Compile each configuration once; boot fresh per test. *)
let built = Hashtbl.create 4

let kernel conf =
  let b =
    match Hashtbl.find_opt built conf with
    | Some b -> b
    | None ->
        let b = Ukern.Kbuild.build ~conf Ukern.Kbuild.as_tested in
        Hashtbl.replace built conf b;
        b
  in
  Boot.boot_built b ~variant:Ukern.Kbuild.as_tested

let both_confs = [ Pipeline.Native; Pipeline.Sva_safe ]

let for_both f = List.iter (fun conf -> f (kernel conf)) both_confs

(* syscalls *)
let n_getpid = 1
let n_getrusage = 2
let n_gettimeofday = 3
let n_open = 4
let n_close = 5
let n_read = 6
let n_write = 7
let n_pipe = 8
let n_fork = 9
let n_execve = 10
let n_sbrk = 11
let n_sigaction = 12
let n_kill = 13
let n_socket = 14
let n_bind = 15
let n_sendto = 16
let n_recvfrom = 17
let n_lseek = 20
let n_netpoll = 22

let check64 name expected actual = Alcotest.(check int64) name expected actual

let test_boot_all_confs () =
  List.iter
    (fun conf ->
      let t = kernel conf in
      check64 (Pipeline.conf_name conf ^ " booted") 1L
        (Boot.kernel_global t "kernel_booted"))
    Pipeline.all_confs

let test_boot_variants () =
  List.iter
    (fun v ->
      let t =
        Boot.boot_built (Ukern.Kbuild.build ~conf:Pipeline.Sva_safe v) ~variant:v
      in
      check64 (v.Ukern.Kbuild.v_name ^ " booted") 1L
        (Boot.kernel_global t "kernel_booted"))
    [ Ukern.Kbuild.with_usercopy; Ukern.Kbuild.entire_kernel ]

let test_getpid () =
  for_both (fun t -> check64 "init pid" 1L (Boot.syscall t n_getpid []))

let test_file_lifecycle () =
  for_both (fun t ->
      Boot.write_user t 0 "notes.txt\000";
      let fd = Boot.syscall t n_open [ Boot.user_addr t 0; 1L ] in
      Alcotest.(check bool) "fd >= 0" true (Int64.compare fd 0L >= 0);
      Boot.write_user t 1024 "The quick brown fox";
      check64 "write" 19L
        (Boot.syscall t n_write [ fd; Boot.user_addr t 1024; 19L ]);
      check64 "lseek" 4L (Boot.syscall t n_lseek [ fd; 4L; 0L ]);
      check64 "read" 15L (Boot.syscall t n_read [ fd; Boot.user_addr t 2048; 32L ]);
      Alcotest.(check string) "content" "quick brown fox"
        (Boot.read_user t 2048 15);
      check64 "close" 0L (Boot.syscall t n_close [ fd ]);
      check64 "read on closed fd" (-9L)
        (Boot.syscall t n_read [ fd; Boot.user_addr t 2048; 4L ]);
      (* reopening finds the same file *)
      let fd2 = Boot.syscall t n_open [ Boot.user_addr t 0; 0L ] in
      check64 "reopen read" 19L
        (Boot.syscall t n_read [ fd2; Boot.user_addr t 2048; 32L ]))

let test_open_missing () =
  for_both (fun t ->
      Boot.write_user t 0 "nope\000";
      check64 "ENOENT" (-2L) (Boot.syscall t n_open [ Boot.user_addr t 0; 0L ]))

let test_pipe_roundtrip () =
  for_both (fun t ->
      check64 "pipe" 0L (Boot.syscall t n_pipe [ Boot.user_addr t 512 ]);
      let fds = Boot.read_user t 512 8 in
      let rfd = Int64.of_int (Char.code fds.[0])
      and wfd = Int64.of_int (Char.code fds.[4]) in
      Boot.write_user t 1024 "pipe data!";
      check64 "write" 10L (Boot.syscall t n_write [ wfd; Boot.user_addr t 1024; 10L ]);
      check64 "read" 10L (Boot.syscall t n_read [ rfd; Boot.user_addr t 2048; 64L ]);
      Alcotest.(check string) "through the pipe" "pipe data!"
        (Boot.read_user t 2048 10);
      (* empty pipe reads zero *)
      check64 "drained" 0L (Boot.syscall t n_read [ rfd; Boot.user_addr t 2048; 8L ]))

let test_pipe_wraparound () =
  for_both (fun t ->
      check64 "pipe" 0L (Boot.syscall t n_pipe [ Boot.user_addr t 512 ]);
      let fds = Boot.read_user t 512 8 in
      let rfd = Int64.of_int (Char.code fds.[0])
      and wfd = Int64.of_int (Char.code fds.[4]) in
      (* push more than the ring size in total, interleaved *)
      Boot.write_user t 1024 (String.init 1500 (fun i -> Char.chr (33 + (i mod 90))));
      for _ = 1 to 4 do
        check64 "w" 1500L (Boot.syscall t n_write [ wfd; Boot.user_addr t 1024; 1500L ]);
        check64 "r" 1500L (Boot.syscall t n_read [ rfd; Boot.user_addr t 4096; 1500L ])
      done;
      Alcotest.(check string) "data intact after wrap"
        (Boot.read_user t 1024 1500) (Boot.read_user t 4096 1500))

let test_fork () =
  for_both (fun t ->
      let pid1 = Boot.syscall t n_fork [] in
      let pid2 = Boot.syscall t n_fork [] in
      Alcotest.(check bool) "pids grow" true (Int64.compare pid2 pid1 > 0);
      check64 "forks counted" 2L (Boot.kernel_global t "total_forks"))

let test_execve () =
  for_both (fun t ->
      (* install an image *)
      Boot.write_user t 0 "prog\000";
      let fd = Boot.syscall t n_open [ Boot.user_addr t 0; 1L ] in
      let hdr = Bytes.create 16 in
      Bytes.set_int32_le hdr 0 0x554b4558l;
      Bytes.set_int32_le hdr 4 8l;
      Bytes.set_int32_le hdr 8 2l;
      Bytes.set_int32_le hdr 12 0l;
      Boot.write_user t 1024 (Bytes.to_string hdr ^ String.make 100 'P');
      check64 "image written" 116L
        (Boot.syscall t n_write [ fd; Boot.user_addr t 1024; 116L ]);
      check64 "close" 0L (Boot.syscall t n_close [ fd ]);
      check64 "execve" 0L (Boot.syscall t n_execve [ Boot.user_addr t 0 ]);
      (* the kernel still works after the address-space switch *)
      check64 "still alive" 1L (Boot.syscall t n_getpid []))

let test_sbrk () =
  for_both (fun t ->
      let base = Boot.syscall t n_sbrk [ 0L ] in
      let old = Boot.syscall t n_sbrk [ 8192L ] in
      check64 "sbrk returns old brk" base old;
      let now = Boot.syscall t n_sbrk [ 0L ] in
      check64 "brk moved" (Int64.add base 8192L) now)

let test_signals () =
  for_both (fun t ->
      (* install a handler: use a real kernel function's address so the
         SVM can dispatch it *)
      let haddr =
        Int64.of_int (Sva_interp.Interp.func_addr t.Boot.vm "sys_getpid")
      in
      check64 "sigaction" 0L (Boot.syscall t n_sigaction [ 5L; haddr ]);
      check64 "kill" 0L (Boot.syscall t n_kill [ 1L; 5L ]);
      (* the handler fires on the way out of the kill syscall *)
      Alcotest.(check bool) "signal dispatched" true
        (List.exists
           (fun (fn, arg) -> Int64.of_int fn = haddr && arg = 5L)
           t.Boot.signal_fired))

let test_yield_context_switch () =
  (* fork then yield: the scheduler switches current_task through the
     Table 1 state save/restore operations and activates the child's
     address space *)
  for_both (fun t ->
      let child = Boot.syscall t n_fork [] in
      check64 "parent runs" 1L (Boot.syscall t n_getpid []);
      check64 "yield" 0L (Boot.syscall t 23 []);
      check64 "child runs after switch" child (Boot.syscall t n_getpid []);
      check64 "yield back" 0L (Boot.syscall t 23 []);
      check64 "parent again" 1L (Boot.syscall t n_getpid []))

let test_rusage_counts_syscalls () =
  for_both (fun t ->
      for _ = 1 to 5 do
        ignore (Boot.syscall t n_getpid [])
      done;
      check64 "getrusage" 0L (Boot.syscall t n_getrusage [ Boot.user_addr t 512 ]);
      let ru = Boot.read_user t 512 24 in
      let nsys = Bytes.get_int64_le (Bytes.of_string ru) 16 in
      Alcotest.(check bool) "syscalls counted" true (Int64.compare nsys 5L >= 0))

let test_gettimeofday_monotone () =
  for_both (fun t ->
      let read_tv () =
        ignore (Boot.syscall t n_gettimeofday [ Boot.user_addr t 512 ]);
        Bytes.get_int64_le (Bytes.of_string (Boot.read_user t 512 16)) 8
      in
      let a = read_tv () in
      let b = read_tv () in
      Alcotest.(check bool) "time advances" true (Int64.compare b a > 0))

let test_sockets_loopback () =
  for_both (fun t ->
      let sd = Boot.syscall t n_socket [ 17L ] in
      check64 "bind" 0L (Boot.syscall t n_bind [ sd; 7777L ]);
      (* send: the frame appears on the wire *)
      Boot.write_user t 1024 "ping";
      check64 "sendto" 4L
        (Boot.syscall t n_sendto [ sd; Boot.user_addr t 1024; 4L; 7777L ]);
      (match Boot.sent_frames t with
      | [ (17, payload) ] ->
          (* wire frame: [dst port:4][payload] *)
          Alcotest.(check string) "wire format" "ping"
            (String.sub payload 4 4)
      | frames -> Alcotest.failf "unexpected tx: %d frames" (List.length frames));
      (* receive: inject a frame addressed to our port *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_le hdr 0 7777l;
      Boot.inject_frame t ~proto:17 (Bytes.to_string hdr ^ "pong!");
      check64 "netpoll" 1L (Boot.syscall t n_netpoll []);
      check64 "recvfrom" 5L
        (Boot.syscall t n_recvfrom [ sd; Boot.user_addr t 2048; 64L ]);
      Alcotest.(check string) "payload" "pong!" (Boot.read_user t 2048 5);
      (* empty queue: EAGAIN *)
      check64 "EAGAIN" (-11L)
        (Boot.syscall t n_recvfrom [ sd; Boot.user_addr t 2048; 64L ]))

let test_fib_route_control () =
  for_both (fun t ->
      let msg = Bytes.create 16 in
      Bytes.set_int32_le msg 0 3l (* rtm_type *);
      Bytes.set_int32_le msg 4 5l (* rtm_scope *);
      Bytes.set_int32_le msg 8 2l (* nhs *);
      Bytes.set_int32_le msg 12 1l (* prio *);
      Boot.inject_frame t ~proto:254 (Bytes.to_string msg);
      check64 "netpoll" 1L (Boot.syscall t n_netpoll []);
      check64 "route added" 1L (Boot.kernel_global t "fib_entries"))

let test_user_buffer_escape_rejected () =
  (* a read into a buffer extending past the end of userspace must be
     refused by access_ok (the Section 4.6 property at the kernel level) *)
  for_both (fun t ->
      Boot.write_user t 0 "bench.data2\000";
      let fd = Boot.syscall t n_open [ Boot.user_addr t 0; 1L ] in
      Boot.write_user t 1024 "data";
      ignore (Boot.syscall t n_write [ fd; Boot.user_addr t 1024; 4L ]);
      ignore (Boot.syscall t n_lseek [ fd; 0L; 0L ]);
      let evil = Int64.of_int (Sva_hw.Machine.user_base + Sva_hw.Machine.user_size - 2) in
      check64 "EFAULT" (-14L) (Boot.syscall t n_read [ fd; evil; 4L ]))

let test_stat_unlink () =
  for_both (fun t ->
      Boot.write_user t 0 "doc.txt\000";
      let fd = Boot.syscall t n_open [ Boot.user_addr t 0; 1L ] in
      Boot.write_user t 1024 (String.make 100 'q');
      ignore (Boot.syscall t n_write [ fd; Boot.user_addr t 1024; 100L ]);
      ignore (Boot.syscall t n_close [ fd ]);
      check64 "stat" 0L (Boot.syscall t 26 [ Boot.user_addr t 0; Boot.user_addr t 512 ]);
      let sb = Bytes.of_string (Boot.read_user t 512 24) in
      check64 "st_size" 100L (Bytes.get_int64_le sb 0);
      check64 "unlink" 0L (Boot.syscall t 27 [ Boot.user_addr t 0 ]);
      check64 "stat after unlink" (-2L)
        (Boot.syscall t 26 [ Boot.user_addr t 0; Boot.user_addr t 512 ]))

let test_block_fs_roundtrip () =
  for_both (fun t ->
      check64 "mount formats fresh disk" 0L (Boot.syscall t 28 []);
      (* create a ramfs file, archive it, destroy it, restore it *)
      Boot.write_user t 0 "save.me\000";
      let fd = Boot.syscall t n_open [ Boot.user_addr t 0; 1L ] in
      let payload = String.init 1000 (fun i -> Char.chr (33 + (i mod 90))) in
      Boot.write_user t 1024 payload;
      check64 "write" 1000L
        (Boot.syscall t n_write [ fd; Boot.user_addr t 1024; 1000L ]);
      ignore (Boot.syscall t n_close [ fd ]);
      check64 "bsave blocks" 2L (Boot.syscall t 30 [ Boot.user_addr t 0 ]);
      check64 "unlink" 0L (Boot.syscall t 27 [ Boot.user_addr t 0 ]);
      check64 "bload" 1000L (Boot.syscall t 31 [ Boot.user_addr t 0 ]);
      let fd = Boot.syscall t n_open [ Boot.user_addr t 0; 0L ] in
      check64 "read restored" 1000L
        (Boot.syscall t n_read [ fd; Boot.user_addr t 8192; 1000L ]);
      Alcotest.(check string) "content survives the disk" payload
        (Boot.read_user t 8192 1000);
      (* second mount sees the archived file *)
      check64 "sync" 0L (Boot.syscall t 29 []);
      check64 "remount sees 1 file" 1L (Boot.syscall t 28 []);
      check64 "bload missing" (-2L) (Boot.syscall t 31 [ Boot.user_addr t 2048 ]))

let test_timer_interrupts () =
  for_both (fun t ->
      check64 "no ticks yet" 0L (Boot.kernel_global t "jiffies");
      for _ = 1 to 5 do
        ignore (Boot.interrupt t 0)
      done;
      check64 "5 ticks" 5L (Boot.kernel_global t "jiffies");
      check64 "spurious counted" 0L (Boot.interrupt t 7);
      check64 "spurious global" 1L (Boot.kernel_global t "spurious_interrupts");
      (* unregistered vector *)
      check64 "no handler" (-1L) (Boot.interrupt t 3))

(* Section 3.4: dynamically load a kernel module into a running kernel.
   The module declares the kernel symbols it uses as externs, registers a
   new system call at init, and works through the normal trap path. *)
let module_source =
  "extern void sva_register_syscall(long num, ...);\n\
   extern void register_syscall_handler(long num, long handler);\n\
   extern char *kmalloc(long n);\n\
   extern void kfree(char *p);\n\
   long hellomod_calls = 0;\n\
   long sys_hellomod(long a0, long a1, long a2, long a3) {\n\
  \  hellomod_calls = hellomod_calls + 1;\n\
  \  char *scratch = kmalloc(64);\n\
  \  if (!scratch) return -12;\n\
  \  scratch[0] = 42;\n\
  \  long v = scratch[0];\n\
  \  kfree(scratch);\n\
  \  return 4200 + v + a0;\n\
   }\n\
   long hellomod_init(void) {\n\
  \  sva_register_syscall(40, sys_hellomod);\n\
  \  register_syscall_handler(40, (long)sys_hellomod);\n\
  \  return 0;\n\
   }"

let link_hellomod t =
  (* compile the module alone, ship as signed bytecode, verify, link *)
  let m = Minic.Lower.compile_string ~name:"hellomod" module_source in
  Sva_ir.Passes.run Sva_ir.Passes.Llvm_like m;
  let entry = Sva_bytecode.Signing.sign m in
  let m = Sva_bytecode.Signing.verify entry in
  Sva_interp.Interp.link_module t.Boot.vm m;
  check64 "module init" 0L
    (Option.value
       (Sva_interp.Interp.call t.Boot.vm "hellomod_init" [])
       ~default:(-1L))

let test_dynamic_module_load_native () =
  let t = kernel Pipeline.Native in
  check64 "ENOSYS before" (-38L) (Boot.syscall t 40 []);
  link_hellomod t;
  check64 "new syscall" 4243L (Boot.syscall t 40 [ 1L ]);
  check64 "again" 4245L (Boot.syscall t 40 [ 3L ]);
  check64 "module global" 2L (Boot.kernel_global t "hellomod_calls");
  check64 "old syscalls fine" 1L (Boot.syscall t 1 [])

let test_dynamic_module_cfi_on_safe_kernel () =
  (* An unknown-code module's handler is NOT in the dispatcher's
     compile-time call graph: the indirect-call check refuses to jump to
     it (control-flow integrity, guarantee T1).  The blessed path is to
     include the module in the safety-checking compile. *)
  let t = kernel Pipeline.Sva_safe in
  link_hellomod t;
  (match Boot.syscall t 40 [ 1L ] with
  | _ -> Alcotest.fail "unknown module handler must fail CFI"
  | exception Sva_rt.Violation.Safety_violation v ->
      Alcotest.(check string) "indirect-call violation" "indirect-call"
        (Sva_rt.Violation.kind_to_string v.Sva_rt.Violation.v_kind));
  (* the kernel survives and still serves *)
  check64 "kernel alive" 1L (Boot.syscall t 1 []);
  (* whole-program path: compile the module with the kernel *)
  let v = Ukern.Kbuild.as_tested in
  let built =
    Sva_pipeline.Pipeline.build ~conf:Pipeline.Sva_safe
      ~aconfig:(Ukern.Kbuild.aconfig v) ~name:"ukern+mod"
      (Ukern.Kbuild.sources v @ [ module_source ])
  in
  let t2 = Boot.boot_built built ~variant:v in
  check64 "module init (compiled in)" 0L
    (Option.value
       (Sva_interp.Interp.call t2.Boot.vm "hellomod_init" [])
       ~default:(-1L));
  check64 "checked module syscall" 4243L (Boot.syscall t2 40 [ 1L ])

let test_safe_kernel_stats_move () =
  (* under Sva_safe, syscalls actually exercise run-time checks *)
  let t = kernel Pipeline.Sva_safe in
  Sva_rt.Stats.reset ();
  Boot.write_user t 0 "bench.x\000";
  let fd = Boot.syscall t n_open [ Boot.user_addr t 0; 1L ] in
  ignore (Boot.syscall t n_close [ fd ]);
  let s = Sva_rt.Stats.read () in
  Alcotest.(check bool) "bounds checks ran" true (s.Sva_rt.Stats.bounds_checks > 0);
  Alcotest.(check bool) "funcchecks ran" true (s.Sva_rt.Stats.funcchecks > 0);
  Alcotest.(check bool) "no violations" true (s.Sva_rt.Stats.violations = 0)

let test_confs_agree_on_results () =
  (* the native and checked kernels must compute the same answers *)
  let run conf =
    let t = kernel conf in
    Boot.write_user t 0 "agree.txt\000";
    let fd = Boot.syscall t n_open [ Boot.user_addr t 0; 1L ] in
    Boot.write_user t 1024 (String.init 100 (fun i -> Char.chr (65 + (i mod 26))));
    ignore (Boot.syscall t n_write [ fd; Boot.user_addr t 1024; 100L ]);
    ignore (Boot.syscall t n_lseek [ fd; 50L; 0L ]);
    ignore (Boot.syscall t n_read [ fd; Boot.user_addr t 4096; 10L ]);
    Boot.read_user t 4096 10
  in
  Alcotest.(check string) "native = safe" (run Pipeline.Native)
    (run Pipeline.Sva_safe)

let () =
  Alcotest.run "ukern"
    [
      ( "boot",
        [
          Alcotest.test_case "all configurations" `Quick test_boot_all_confs;
          Alcotest.test_case "variants" `Quick test_boot_variants;
        ] );
      ( "process",
        [
          Alcotest.test_case "getpid" `Quick test_getpid;
          Alcotest.test_case "fork" `Quick test_fork;
          Alcotest.test_case "execve" `Quick test_execve;
          Alcotest.test_case "sbrk" `Quick test_sbrk;
          Alcotest.test_case "signals via icontext" `Quick test_signals;
          Alcotest.test_case "yield context switch" `Quick
            test_yield_context_switch;
          Alcotest.test_case "rusage" `Quick test_rusage_counts_syscalls;
          Alcotest.test_case "gettimeofday" `Quick test_gettimeofday_monotone;
        ] );
      ( "fs",
        [
          Alcotest.test_case "file lifecycle" `Quick test_file_lifecycle;
          Alcotest.test_case "open missing" `Quick test_open_missing;
          Alcotest.test_case "pipe roundtrip" `Quick test_pipe_roundtrip;
          Alcotest.test_case "pipe wraparound" `Quick test_pipe_wraparound;
          Alcotest.test_case "user buffer escape" `Quick
            test_user_buffer_escape_rejected;
          Alcotest.test_case "stat/unlink" `Quick test_stat_unlink;
          Alcotest.test_case "block fs roundtrip" `Quick test_block_fs_roundtrip;
        ] );
      ( "interrupts",
        [ Alcotest.test_case "timer via icontext" `Quick test_timer_interrupts ] );
      ( "modules",
        [
          Alcotest.test_case "dynamic load (Sec 3.4)" `Quick
            test_dynamic_module_load_native;
          Alcotest.test_case "CFI vs unknown module" `Quick
            test_dynamic_module_cfi_on_safe_kernel;
        ] );
      ( "net",
        [
          Alcotest.test_case "sockets loopback" `Quick test_sockets_loopback;
          Alcotest.test_case "fib control" `Quick test_fib_route_control;
        ] );
      ( "safety",
        [
          Alcotest.test_case "checks exercised" `Quick test_safe_kernel_stats_move;
          Alcotest.test_case "configs agree" `Quick test_confs_agree_on_results;
        ] );
    ]
