(* Tests for the IR transformation passes: mem2reg, constant folding, DCE,
   local CSE, and the pipeline driver. *)

open Sva_ir

let new_module () = Irmod.create "p"

let count_kind f pred = Func.fold_instrs f (fun n _ i -> if pred i then n + 1 else n) 0

let is_alloca (i : Instr.t) = match i.Instr.kind with Instr.Alloca _ -> true | _ -> false
let is_load (i : Instr.t) = match i.Instr.kind with Instr.Load _ -> true | _ -> false
let is_store (i : Instr.t) = match i.Instr.kind with Instr.Store _ -> true | _ -> false
let is_phi = Instr.is_phi

(* A function written the way the MiniC front end lowers code:
     int f(int c) { int x; if (c) x = 1; else x = 2; return x; } *)
let if_else_slot_func m =
  let f = Func.create "f" Ty.i32 [ ("c", Ty.i32) ] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  let x = Builder.b_alloca b ~name:"x" Ty.i32 in
  let cond = Builder.b_icmp b Instr.Ne (Func.param_value f 0) (Value.imm 0) in
  Builder.b_br b cond "then" "else";
  ignore (Builder.start_block b "then");
  Builder.b_store b (Value.imm 1) x;
  Builder.b_jmp b "join";
  ignore (Builder.start_block b "else");
  Builder.b_store b (Value.imm 2) x;
  Builder.b_jmp b "join";
  ignore (Builder.start_block b "join");
  let v = Builder.b_load b x in
  Builder.b_ret b (Some v);
  f

let test_mem2reg_inserts_phi () =
  let m = new_module () in
  let f = if_else_slot_func m in
  Verify.check m;
  let promoted = Mem2reg.run_func f in
  Alcotest.(check int) "one slot promoted" 1 promoted;
  Verify.check m;
  Alcotest.(check int) "allocas gone" 0 (count_kind f is_alloca);
  Alcotest.(check int) "loads gone" 0 (count_kind f is_load);
  Alcotest.(check int) "stores gone" 0 (count_kind f is_store);
  Alcotest.(check int) "one phi" 1 (count_kind f is_phi)

let test_mem2reg_loop () =
  (* int g(int n) { int i = 0; while (i < n) i = i + 1; return i; } *)
  let m = new_module () in
  let f = Func.create "g" Ty.i32 [ ("n", Ty.i32) ] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  let i = Builder.b_alloca b ~name:"i" Ty.i32 in
  Builder.b_store b (Value.imm 0) i;
  Builder.b_jmp b "head";
  ignore (Builder.start_block b "head");
  let iv = Builder.b_load b i in
  let c = Builder.b_icmp b Instr.Slt iv (Func.param_value f 0) in
  Builder.b_br b c "body" "done";
  ignore (Builder.start_block b "body");
  let iv2 = Builder.b_load b i in
  let inc = Builder.b_binop b Instr.Add iv2 (Value.imm 1) in
  Builder.b_store b inc i;
  Builder.b_jmp b "head";
  ignore (Builder.start_block b "done");
  let out = Builder.b_load b i in
  Builder.b_ret b (Some out);
  Verify.check m;
  ignore (Mem2reg.run_func f);
  Verify.check m;
  Alcotest.(check int) "allocas gone" 0 (count_kind f is_alloca);
  Alcotest.(check bool) "phi at loop head" true (count_kind f is_phi >= 1)

let test_mem2reg_skips_escaping () =
  (* The address of the slot is passed to a call: not promotable. *)
  let m = new_module () in
  Irmod.declare_extern m "sink" (Ty.Func (Ty.Void, [ Ty.Ptr Ty.i32 ], false));
  let f = Func.create "h" Ty.Void [] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  let x = Builder.b_alloca b Ty.i32 in
  ignore (Builder.b_call_named b "sink" [ x ]);
  Builder.b_ret b None;
  Verify.check m;
  Alcotest.(check int) "nothing promoted" 0 (Mem2reg.run_func f);
  Alcotest.(check int) "alloca kept" 1 (count_kind f is_alloca)

let test_mem2reg_undef_on_no_store () =
  let m = new_module () in
  let f = Func.create "u" Ty.i32 [] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  let x = Builder.b_alloca b Ty.i32 in
  let v = Builder.b_load b x in
  Builder.b_ret b (Some v);
  ignore (Mem2reg.run_func f);
  Verify.check m;
  match (Func.entry f).Func.term with
  | Instr.Ret (Some (Value.Undef _)) -> ()
  | t -> Alcotest.failf "expected ret undef, got %s" (Pp.string_of_term t)

let test_constfold_arith () =
  Alcotest.(check (option int64)) "add" (Some 7L) (Constfold.eval_binop Instr.Add 32 3L 4L);
  Alcotest.(check (option int64)) "wrap i8" (Some (-128L)) (Constfold.eval_binop Instr.Add 8 127L 1L);
  Alcotest.(check (option int64)) "udiv" (Some 2L) (Constfold.eval_binop Instr.Udiv 32 7L 3L);
  Alcotest.(check (option int64)) "div0" None (Constfold.eval_binop Instr.Sdiv 32 7L 0L);
  (* Unsigned comparison of a negative number: the MCAST_MSFILTER-style bug. *)
  Alcotest.(check bool) "-1 >u 100" true (Constfold.eval_icmp Instr.Ugt 32 (-1L) 100L);
  Alcotest.(check bool) "-1 <s 100" true (Constfold.eval_icmp Instr.Slt 32 (-1L) 100L)

let test_constfold_folds_function () =
  let m = new_module () in
  let f = Func.create "cf" Ty.i32 [] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  let x = Builder.b_binop b Instr.Add (Value.imm 2) (Value.imm 3) in
  let y = Builder.b_binop b Instr.Mul x (Value.imm 4) in
  Builder.b_ret b (Some y);
  ignore (Constfold.run_func f);
  Verify.check m;
  match (Func.entry f).Func.term with
  | Instr.Ret (Some (Value.Imm (_, 20L))) -> ()
  | t -> Alcotest.failf "expected ret 20, got %s" (Pp.string_of_term t)

let test_constfold_branch_and_phi_pruning () =
  let m = new_module () in
  let f = Func.create "cb" Ty.i32 [] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  let c = Builder.b_icmp b Instr.Slt (Value.imm 1) (Value.imm 2) in
  Builder.b_br b c "then" "else";
  ignore (Builder.start_block b "then");
  Builder.b_jmp b "join";
  ignore (Builder.start_block b "else");
  Builder.b_jmp b "join";
  ignore (Builder.start_block b "join");
  let phi = Builder.b_phi b Ty.i32 [ ("then", Value.imm 10); ("else", Value.imm 20) ] in
  Builder.b_ret b (Some phi);
  Verify.check m;
  (* One fixpoint round as the pipeline does: fold the branch, remove the
     dead block (pruning the phi edge), then fold the now-trivial phi. *)
  ignore (Constfold.run_func f);
  ignore (Dce.run_func f);
  ignore (Constfold.run_func f);
  Verify.check m;
  match (Func.find_block f "join").Func.term with
  | Instr.Ret (Some (Value.Imm (_, 10L))) -> ()
  | t -> Alcotest.failf "expected ret 10, got %s" (Pp.string_of_term t)

let test_dce_removes_unreachable () =
  let m = new_module () in
  let f = Func.create "dead" Ty.Void [] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  Builder.b_ret b None;
  ignore (Builder.start_block b "island");
  Builder.b_jmp b "island";
  Alcotest.(check bool) "removed something" true (Dce.run_func f > 0);
  Alcotest.(check int) "one block left" 1 (List.length f.Func.f_blocks);
  Verify.check m

let test_dce_keeps_side_effects () =
  let m = new_module () in
  Irmod.declare_extern m "effect" (Ty.Func (Ty.i32, [], false));
  let f = Func.create "keep" Ty.Void [] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  ignore (Builder.b_call_named b "effect" []);
  let dead = Builder.b_binop b Instr.Add (Value.imm 1) (Value.imm 2) in
  ignore dead;
  Builder.b_ret b None;
  ignore (Dce.run_func f);
  Alcotest.(check int) "call survives, add dies" 1 (Func.instr_count f)

let test_cse_dedups () =
  let m = new_module () in
  let f = Func.create "cse" Ty.i32 [ ("x", Ty.i32) ] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  let p = Func.param_value f 0 in
  let a = Builder.b_binop b Instr.Mul p p in
  let a' = Builder.b_binop b Instr.Mul p p in
  let s = Builder.b_binop b Instr.Add a a' in
  Builder.b_ret b (Some s);
  Alcotest.(check int) "one eliminated" 1 (Cse.run_func f);
  Verify.check m;
  Alcotest.(check int) "two instrs left" 2 (Func.instr_count f)

let test_cse_load_invalidation () =
  let m = new_module () in
  let f = Func.create "csel" Ty.i32 [ ("p", Ty.Ptr Ty.i32) ] in
  Irmod.add_func m f;
  let b = Builder.create m f in
  ignore (Builder.start_block b "entry");
  let p = Func.param_value f 0 in
  let l1 = Builder.b_load b p in
  Builder.b_store b (Value.imm 9) p;
  let l2 = Builder.b_load b p in
  let s = Builder.b_binop b Instr.Add l1 l2 in
  Builder.b_ret b (Some s);
  Alcotest.(check int) "store kills available load" 0 (Cse.run_func f);
  Verify.check m

let test_pipeline_llvm_like () =
  let m = new_module () in
  let f = if_else_slot_func m in
  ignore f;
  Passes.run Passes.Llvm_like m;
  (* After the pipeline: no allocas remain anywhere. *)
  List.iter
    (fun f -> Alcotest.(check int) "no allocas" 0 (count_kind f is_alloca))
    m.Irmod.m_funcs

let () =
  Alcotest.run "sva_passes"
    [
      ( "mem2reg",
        [
          Alcotest.test_case "if/else phi" `Quick test_mem2reg_inserts_phi;
          Alcotest.test_case "loop" `Quick test_mem2reg_loop;
          Alcotest.test_case "escaping slot kept" `Quick test_mem2reg_skips_escaping;
          Alcotest.test_case "undef when never stored" `Quick test_mem2reg_undef_on_no_store;
        ] );
      ( "constfold",
        [
          Alcotest.test_case "arith eval" `Quick test_constfold_arith;
          Alcotest.test_case "function folding" `Quick test_constfold_folds_function;
          Alcotest.test_case "branch folding prunes phis" `Quick
            test_constfold_branch_and_phi_pruning;
        ] );
      ( "dce",
        [
          Alcotest.test_case "unreachable blocks" `Quick test_dce_removes_unreachable;
          Alcotest.test_case "side effects kept" `Quick test_dce_keeps_side_effects;
        ] );
      ( "cse",
        [
          Alcotest.test_case "dedup" `Quick test_cse_dedups;
          Alcotest.test_case "load invalidation" `Quick test_cse_load_invalidation;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "llvm-like" `Quick test_pipeline_llvm_like ] );
    ]
