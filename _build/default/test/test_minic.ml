(* End-to-end MiniC tests: parse -> lower -> optimize -> verify -> execute
   on the SVM interpreter. *)

let compile ?(pipeline = Sva_ir.Passes.Llvm_like) src =
  let m = Minic.Lower.compile_string ~name:"test" src in
  Sva_ir.Passes.run pipeline m;
  Sva_interp.Interp.load m

let run ?pipeline src fn args =
  let t = compile ?pipeline src in
  Sva_interp.Interp.call t fn (List.map Int64.of_int args)

let check_int name expected actual =
  match actual with
  | Some v -> Alcotest.(check int64) name (Int64.of_int expected) v
  | None -> Alcotest.failf "%s: expected a value, got void" name

let test_arith () =
  check_int "42" 42 (run "int main(void) { return 6 * 7; }" "main" []);
  check_int "prec" 14 (run "int main(void) { return 2 + 3 * 4; }" "main" []);
  check_int "parens" 20 (run "int main(void) { return (2 + 3) * 4; }" "main" []);
  check_int "mod" 2 (run "int main(void) { return 17 % 5; }" "main" []);
  check_int "neg" (-5) (run "int main(void) { return -5; }" "main" []);
  check_int "bits" 0x0c (run "int main(void) { return (0xf & 0x3c) | (1 ^ 1); }" "main" []);
  check_int "shift" 40 (run "int main(void) { return (5 << 3); }" "main" [])

let test_unsigned_comparison () =
  (* The idiom behind the MCAST_MSFILTER exploit: a negative int compared
     as unsigned is huge. *)
  check_int "signed" 1
    (run "int main(void) { int x = -1; if (x < 100) return 1; return 0; }" "main" []);
  check_int "unsigned" 0
    (run
       "int main(void) { unsigned int x = -1; if (x < 100) return 1; return 0; }"
       "main" [])

let test_params_and_calls () =
  let src =
    "int add(int a, int b) { return a + b; }\n\
     int twice(int x) { return add(x, x); }\n\
     int main(int n) { return twice(n) + add(1, 2); }"
  in
  check_int "calls" 23 (run src "main" [ 10 ])

let test_recursion () =
  let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }" in
  check_int "fib" 55 (run src "fib" [ 10 ])

let test_while_loop () =
  let src =
    "int sum(int n) { int s = 0; int i = 1; while (i <= n) { s += i; i++; } \
     return s; }"
  in
  check_int "sum" 5050 (run src "sum" [ 100 ])

let test_for_loop () =
  let src =
    "int squares(int n) { int s = 0; for (int i = 0; i < n; i++) s = s + i*i; \
     return s; }"
  in
  check_int "squares" 285 (run src "squares" [ 10 ])

let test_do_while_break_continue () =
  let src =
    "int f(void) {\n\
    \  int s = 0; int i = 0;\n\
    \  do { i++; if (i == 3) continue; if (i > 6) break; s += i; } while (1);\n\
    \  return s;\n\
     }"
  in
  (* 1+2+4+5+6 = 18 *)
  check_int "do/while" 18 (run src "f" [])

let test_pointers () =
  let src =
    "void setp(int *p, int v) { *p = v; }\n\
     int main(void) { int x = 1; setp(&x, 99); return x; }"
  in
  check_int "through pointer" 99 (run src "main" [])

let test_arrays () =
  let src =
    "int main(void) {\n\
    \  int a[8];\n\
    \  for (int i = 0; i < 8; i++) a[i] = i * 2;\n\
    \  int s = 0;\n\
    \  for (int i = 0; i < 8; i++) s += a[i];\n\
    \  return s;\n\
     }"
  in
  check_int "array sum" 56 (run src "main" [])

let test_global_array () =
  let src =
    "int table[5] = {10, 20, 30, 40, 50};\n\
     int lookup(int i) { return table[i]; }"
  in
  check_int "global array" 40 (run src "lookup" [ 3 ])

let test_structs () =
  let src =
    "struct point { int x; int y; };\n\
     struct rect { struct point a; struct point b; };\n\
     int area(void) {\n\
    \  struct rect r;\n\
    \  r.a.x = 1; r.a.y = 2; r.b.x = 11; r.b.y = 22;\n\
    \  return (r.b.x - r.a.x) * (r.b.y - r.a.y);\n\
     }"
  in
  check_int "struct area" 200 (run src "area" [])

let test_struct_pointers_and_arrow () =
  let src =
    "struct node { int value; struct node *next; };\n\
     int sum_list(struct node *head) {\n\
    \  int s = 0;\n\
    \  while (head) { s += head->value; head = head->next; }\n\
    \  return s;\n\
     }\n\
     int main(void) {\n\
    \  struct node a; struct node b; struct node c;\n\
    \  a.value = 1; b.value = 2; c.value = 4;\n\
    \  a.next = &b; b.next = &c; c.next = (struct node*)0;\n\
    \  return sum_list(&a);\n\
     }"
  in
  check_int "linked list" 7 (run src "main" [])

let test_sizeof () =
  let src =
    "struct task { int pid; char state; struct task *next; };\n\
     long szs(void) { return sizeof(struct task) + sizeof(int) + sizeof(char*); }\n\
     long sze(void) { struct task t; return sizeof(t); }"
  in
  check_int "sizeof types" (16 + 4 + 8) (run src "szs" []);
  check_int "sizeof expr" 16 (run src "sze" [])

let test_shortcircuit () =
  let src =
    "int counter = 0;\n\
     int bump(void) { counter++; return 1; }\n\
     int main(void) {\n\
    \  counter = 0;\n\
    \  if (0 && bump()) { }\n\
    \  if (1 || bump()) { }\n\
    \  if (1 && bump()) { }\n\
    \  return counter;\n\
     }"
  in
  check_int "short circuit" 1 (run src "main" [])

let test_ternary () =
  let src = "int mx(int a, int b) { return a > b ? a : b; }" in
  check_int "max1" 7 (run src "mx" [ 7; 3 ]);
  check_int "max2" 9 (run src "mx" [ 2; 9 ])

let test_function_pointers () =
  let src =
    "int double_it(int x) { return 2 * x; }\n\
     int triple_it(int x) { return 3 * x; }\n\
     int apply(int (*f)(int), int x) { return f(x); }\n\
     int main(int which) {\n\
    \  int (*f)(int);\n\
    \  if (which) f = double_it; else f = triple_it;\n\
    \  return apply(f, 10);\n\
     }"
  in
  check_int "fp double" 20 (run src "main" [ 1 ]);
  check_int "fp triple" 30 (run src "main" [ 0 ])

let test_strings_and_builtins () =
  let src =
    "extern long strlen(char *s);\n\
     extern void *memset(char *p, int c, long n);\n\
     extern void *memcpy(char *d, char *s, long n);\n\
     int main(void) {\n\
    \  char buf[32];\n\
    \  memset(buf, 0, 32);\n\
    \  memcpy(buf, \"hello world\", 11);\n\
    \  return (int)strlen(buf);\n\
     }"
  in
  check_int "strlen" 11 (run src "main" [])

let test_char_arithmetic () =
  let src =
    "int count_upper(char *s, long n) {\n\
    \  int c = 0;\n\
    \  for (long i = 0; i < n; i++) if (s[i] >= 'A' && s[i] <= 'Z') c++;\n\
    \  return c;\n\
     }\n\
     int main(void) { return count_upper(\"Hello World X\", 13); }"
  in
  check_int "chars" 3 (run src "main" [])

let test_casts_and_int_widths () =
  let src =
    "int main(void) {\n\
    \  long big = 0x1234567890L;\n\
    \  int lo = (int)big;\n\
    \  char c = (char)255;\n\
    \  short s = (short)0x12345;\n\
    \  return (lo == 0x34567890) + (c == -1) + (s == 0x2345);\n\
     }"
  in
  check_int "casts" 3 (run src "main" [])

let test_pointer_casts () =
  let src =
    "int main(void) {\n\
    \  long x = 0;\n\
    \  char *p = (char*)&x;\n\
    \  p[0] = 1; p[1] = 2;\n\
    \  int *ip = (int*)&x;\n\
    \  return *ip;\n\
     }"
  in
  check_int "aliasing" 0x0201 (run src "main" [])

let test_malloc_free () =
  let src =
    "extern char *malloc(long n);\n\
     extern void free(char *p);\n\
     int main(void) {\n\
    \  int *a = (int*)malloc(10 * sizeof(int));\n\
    \  for (int i = 0; i < 10; i++) a[i] = i;\n\
    \  int s = 0;\n\
    \  for (int i = 0; i < 10; i++) s += a[i];\n\
    \  free((char*)a);\n\
    \  return s;\n\
     }"
  in
  (* malloc/free lower to calls; map them onto the heap instructions by
     name in the interpreter?  They are unknown externs here, so use the
     builtin path: skip if unsupported. *)
  match run src "main" [] with
  | exception Sva_interp.Interp.Vm_error _ -> () (* documented: use kernel allocators *)
  | r -> check_int "malloc sum" 45 r

let test_globals_mutation () =
  let src =
    "int counter = 5;\n\
     void bump(int by) { counter += by; }\n\
     int get(void) { return counter; }"
  in
  let t = compile src in
  ignore (Sva_interp.Interp.call t "bump" [ 3L ]);
  ignore (Sva_interp.Interp.call t "bump" [ 4L ]);
  check_int "global mutated" 12 (Sva_interp.Interp.call t "get" [])

let test_gcc_vs_llvm_pipelines_agree () =
  let src =
    "int work(int n) {\n\
    \  int s = 0;\n\
    \  for (int i = 0; i < n; i++) { s += i * i; s ^= (s >> 3); }\n\
    \  return s;\n\
     }"
  in
  let a = run ~pipeline:Sva_ir.Passes.Gcc_like src "work" [ 50 ] in
  let b = run ~pipeline:Sva_ir.Passes.Llvm_like src "work" [ 50 ] in
  Alcotest.(check (option int64)) "same result" a b

let test_2d_arrays () =
  let src =
    "int grid[3][4];\n\
     int fill(void) {\n\
    \  for (int r = 0; r < 3; r++)\n\
    \    for (int c = 0; c < 4; c++)\n\
    \      grid[r][c] = r * 10 + c;\n\
    \  return grid[2][3];\n\
     }\n\
     int local2d(void) {\n\
    \  int m[2][2];\n\
    \  m[0][0] = 1; m[0][1] = 2; m[1][0] = 3; m[1][1] = 4;\n\
    \  return m[0][0] * 1000 + m[0][1] * 100 + m[1][0] * 10 + m[1][1];\n\
     }"
  in
  check_int "global 2d" 23 (run src "fill" []);
  check_int "local 2d" 1234 (run src "local2d" [])

let test_compound_assignments () =
  let src =
    "int f(int x) {\n\
    \  x += 3; x -= 1; x *= 2; x /= 3;\n\
    \  x &= 0xff; x |= 0x10; x ^= 0x3;\n\
    \  x <<= 2; x >>= 1;\n\
    \  return x;\n\
     }"
  in
  (* x=10: 13,12,24,8, 8,24,27, 108,54 *)
  check_int "compound ops" 54 (run src "f" [ 10 ])

let test_unsigned_div_mod () =
  let src =
    "int f(void) {\n\
    \  unsigned int x = -10;   /* 4294967286 */\n\
    \  unsigned int q = x / 3;\n\
    \  unsigned int r = x % 7;      \
    \  int sq = -10 / 3;        /* signed: -3 */\n\
    \  return (q == 1431655762) + (r == 1) + (sq == -3);\n\
     }"
  in
  check_int "unsigned division" 3 (run src "f" [])

let test_hex_char_escapes () =
  let src =
    "int f(void) {\n\
    \  /* block comment */ int a = 0x7fL; // line comment\n\
    \  char nl = '\\n';\n\
    \  char z = '\\0';\n\
    \  char bs = '\\\\';\n\
    \  return a + nl + z + bs;\n\
     }"
  in
  check_int "literals" (0x7f + 10 + 0 + 92) (run src "f" [])

let test_pointer_comparisons () =
  let src =
    "int f(void) {\n\
    \  int arr[4];\n\
    \  int *p = &arr[1];\n\
    \  int *q = &arr[3];\n\
    \  int count = 0;\n\
    \  if (p < q) count++;\n\
    \  if (q - p == 2) count++;\n\
    \  if (p + 2 == q) count++;\n\
    \  if (p != (int*)0) count++;\n\
    \  return count;\n\
     }"
  in
  check_int "pointer relational" 4 (run src "f" [])

let test_nested_struct_sizeof () =
  let src =
    "struct inner { char tag; long v; };\n\
     struct outer { struct inner a; struct inner b; int n; };\n\
     long f(void) {\n\
    \  struct outer o;\n\
    \  o.a.tag = 1; o.a.v = 100;\n\
    \  o.b.tag = 2; o.b.v = 200;\n\
    \  o.n = 7;\n\
    \  return sizeof(struct outer) * 1000 + o.a.v + o.b.v + o.n;\n\
     }"
  in
  (* inner = 16 (char + pad + long); outer = 16+16+4 -> pad to 40 *)
  check_int "nested structs" ((40 * 1000) + 307) (run src "f" [])

let test_while_with_break_in_condition_chain () =
  let src =
    "int f(int n) {\n\
    \  int s = 0;\n\
    \  int i = 0;\n\
    \  while (i < 100 && s < n) { s += i; i++; if (i == 50) break; }\n\
    \  return s;\n\
     }"
  in
  check_int "early exit by condition" 10 (run src "f" [ 10 ]);
  check_int "break cap" 1225 (run src "f" [ 100000 ])

let test_static_and_const () =
  let src =
    "const int limit = 42;\n\
     static int helper(int x) { return x * 2; }\n\
     int f(void) { return helper(limit); }"
  in
  check_int "static/const" 84 (run src "f" [])

let test_parse_error_reported () =
  match Minic.Lower.compile_string ~name:"bad" "int f( { return 0; }" with
  | exception Minic.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let test_union_rejected () =
  match
    Minic.Lower.compile_string ~name:"u" "union u { int a; char b; };"
  with
  | exception Minic.Parser.Parse_error (msg, _) ->
      Alcotest.(check bool) "mentions struct rewrite" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "unions must be rejected (Section 6.3)"

let test_type_error_reported () =
  match Minic.Lower.compile_string ~name:"bad" "int f(void) { return *3; }" with
  | exception Minic.Lower.Lower_error _ -> ()
  | _ -> Alcotest.fail "expected a lowering error"

let test_intrinsic_lowering () =
  let src =
    "extern long sva_timer_read(void);\n\
     long ticks(void) { return sva_timer_read(); }"
  in
  let m = Minic.Lower.compile_string ~name:"i" src in
  let has_intrinsic = ref false in
  List.iter
    (fun f ->
      Sva_ir.Func.iter_instrs f (fun _ i ->
          match i.Sva_ir.Instr.kind with
          | Sva_ir.Instr.Intrinsic ("sva_timer_read", _) -> has_intrinsic := true
          | _ -> ()))
    m.Sva_ir.Irmod.m_funcs;
  Alcotest.(check bool) "lowered as intrinsic" true !has_intrinsic;
  let t = compile src in
  match Sva_interp.Interp.call t "ticks" [] with
  | Some v -> Alcotest.(check bool) "timer ticks" true (Int64.compare v 0L > 0)
  | None -> Alcotest.fail "no timer value"

let () =
  Alcotest.run "minic"
    [
      ( "exec",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "unsigned comparison" `Quick test_unsigned_comparison;
          Alcotest.test_case "params and calls" `Quick test_params_and_calls;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "while" `Quick test_while_loop;
          Alcotest.test_case "for" `Quick test_for_loop;
          Alcotest.test_case "do/while break/continue" `Quick
            test_do_while_break_continue;
          Alcotest.test_case "pointers" `Quick test_pointers;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "global array" `Quick test_global_array;
          Alcotest.test_case "structs" `Quick test_structs;
          Alcotest.test_case "linked list" `Quick test_struct_pointers_and_arrow;
          Alcotest.test_case "sizeof" `Quick test_sizeof;
          Alcotest.test_case "short circuit" `Quick test_shortcircuit;
          Alcotest.test_case "ternary" `Quick test_ternary;
          Alcotest.test_case "function pointers" `Quick test_function_pointers;
          Alcotest.test_case "strings + builtins" `Quick test_strings_and_builtins;
          Alcotest.test_case "char arithmetic" `Quick test_char_arithmetic;
          Alcotest.test_case "casts and widths" `Quick test_casts_and_int_widths;
          Alcotest.test_case "pointer casts alias" `Quick test_pointer_casts;
          Alcotest.test_case "malloc/free" `Quick test_malloc_free;
          Alcotest.test_case "globals mutate" `Quick test_globals_mutation;
          Alcotest.test_case "pipelines agree" `Quick
            test_gcc_vs_llvm_pipelines_agree;
          Alcotest.test_case "2d arrays" `Quick test_2d_arrays;
          Alcotest.test_case "compound assignments" `Quick
            test_compound_assignments;
          Alcotest.test_case "unsigned div/mod" `Quick test_unsigned_div_mod;
          Alcotest.test_case "hex/char/comments" `Quick test_hex_char_escapes;
          Alcotest.test_case "pointer comparisons" `Quick test_pointer_comparisons;
          Alcotest.test_case "nested structs" `Quick test_nested_struct_sizeof;
          Alcotest.test_case "break in condition chain" `Quick
            test_while_with_break_in_condition_chain;
          Alcotest.test_case "static/const" `Quick test_static_and_const;
        ] );
      ( "errors",
        [
          Alcotest.test_case "parse error" `Quick test_parse_error_reported;
          Alcotest.test_case "union rejected" `Quick test_union_rejected;
          Alcotest.test_case "type error" `Quick test_type_error_reported;
          Alcotest.test_case "intrinsics" `Quick test_intrinsic_lowering;
        ] );
    ]
