bin/sva_verify.ml: In_channel List Printf Sva_bytecode Sva_ir Sys
