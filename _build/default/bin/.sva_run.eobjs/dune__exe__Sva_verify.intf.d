bin/sva_verify.mli:
