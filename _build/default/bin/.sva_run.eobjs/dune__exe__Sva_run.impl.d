bin/sva_run.ml: Arg Cmd Cmdliner Filename In_channel Int64 List Minic Out_channel Printf String Sva_bytecode Sva_interp Sva_ir Sva_pipeline Sva_rt Term
