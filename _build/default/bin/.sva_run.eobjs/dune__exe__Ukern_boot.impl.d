bin/ukern_boot.ml: Array Bytes Int64 Printf Sva_pipeline Sva_rt Sys Ukern
