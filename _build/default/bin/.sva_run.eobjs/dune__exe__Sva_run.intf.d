bin/sva_run.mli:
