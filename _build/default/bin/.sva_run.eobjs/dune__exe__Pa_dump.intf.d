bin/pa_dump.mli:
