bin/ukern_boot.mli:
