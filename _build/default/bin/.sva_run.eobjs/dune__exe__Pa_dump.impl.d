bin/pa_dump.ml: Filename In_channel Minic Printf Sva_analysis Sva_ir Sva_safety Sys
