(* Quickstart: compile a small C-like program through the complete SVA
   pipeline and watch the safety checks catch a memory error that the
   native build silently tolerates.

     dune exec examples/quickstart.exe

   The pipeline is: MiniC front end -> SVA-Core IR -> mem2reg/optimizer ->
   points-to analysis -> metapool inference -> metapool type checking ->
   run-time check insertion -> execution on the SVM. *)

module Pipeline = Sva_pipeline.Pipeline

let program =
  {|
    extern char *malloc(long n);
    extern void free(char *p);

    struct account { long id; long balance; };

    /* transfer with a subtle bug: `to` may be out of range */
    long transfer(int from_idx, int to_idx, long amount) {
      struct account *table =
        (struct account*)malloc(4 * sizeof(struct account));
      for (int i = 0; i < 4; i++) {
        table[i].id = i;
        table[i].balance = 1000;
      }
      table[from_idx].balance -= amount;
      table[to_idx].balance += amount;   /* no bounds validation! */
      long result = table[from_idx].balance;
      free((char*)table);
      return result;
    }
  |}

let run conf from_idx to_idx =
  let built = Pipeline.build ~conf ~name:"quickstart" [ program ] in
  let vm = Pipeline.instantiate built in
  match
    Sva_interp.Interp.call vm "transfer"
      [ Int64.of_int from_idx; Int64.of_int to_idx; 250L ]
  with
  | Some v -> Printf.printf "  transfer(%d, %d, 250) = %Ld\n" from_idx to_idx v
  | None -> print_endline "  (void)"
  | exception Sva_rt.Violation.Safety_violation v ->
      Printf.printf "  TRAPPED: %s\n" (Sva_rt.Violation.to_string v)

let () =
  print_endline "== 1. a correct call runs identically under every kernel ==";
  List.iter
    (fun conf ->
      Printf.printf "%s:\n" (Pipeline.conf_name conf);
      run conf 0 3)
    Pipeline.all_confs;

  print_endline "";
  print_endline "== 2. an out-of-bounds index: native corrupts, SVA traps ==";
  Printf.printf "%s:\n" (Pipeline.conf_name Pipeline.Native);
  run Pipeline.Native 0 7;
  Printf.printf "%s:\n" (Pipeline.conf_name Pipeline.Sva_safe);
  run Pipeline.Sva_safe 0 7;

  print_endline "";
  print_endline "== 3. what the safety-checking compiler did ==";
  let built = Pipeline.build ~conf:Pipeline.Sva_safe ~name:"quickstart" [ program ] in
  (match built.Pipeline.bl_summary with
  | Some s ->
      Printf.printf
        "  inserted %d bounds checks (%d geps proven safe statically),\n\
        \  %d object registrations, %d drops; %d load/store checks elided\n\
        \  because their pools are type-homogeneous.\n"
        s.Sva_safety.Checkinsert.bounds_inserted
        s.Sva_safety.Checkinsert.bounds_static
        s.Sva_safety.Checkinsert.regs_inserted
        s.Sva_safety.Checkinsert.drops_inserted
        s.Sva_safety.Checkinsert.ls_elided_th
  | None -> ());
  (match built.Pipeline.bl_pa with
  | Some pa ->
      print_endline "  points-to partitions:";
      List.iter
        (fun n ->
          if Sva_analysis.Pointsto.has_flag n Sva_analysis.Pointsto.Heap then
            Printf.printf "    heap node %d [%s]%s: %s\n"
              (Sva_analysis.Pointsto.node_id n)
              (Sva_analysis.Pointsto.flags_to_string n)
              (if Sva_analysis.Pointsto.is_type_homog n then " type-homogeneous"
               else "")
              (match Sva_analysis.Pointsto.node_ty n with
              | Some t -> Sva_ir.Ty.to_string t
              | None -> "<no single type>"))
        (Sva_analysis.Pointsto.nodes pa)
  | None -> ())
