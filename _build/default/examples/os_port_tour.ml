(* SVA-OS tour: the OS support operations of Section 3.3 (Tables 1 and 2)
   exercised directly against the simulated hardware, then from inside
   the booted kernel.

     dune exec examples/os_port_tour.exe *)

module Machine = Sva_hw.Machine
module Cpu = Sva_hw.Cpu
module Svaos = Sva_os.Svaos
module Boot = Ukern.Boot

let () =
  print_endline "== Table 1: saving and restoring native processor state ==";
  let sys = Svaos.create () in
  Cpu.scramble sys.Svaos.cpu ~seed:42;
  let buf = Machine.heap_base + 4096 in
  Svaos.save_integer sys ~buffer:buf;
  Printf.printf "  llva_save_integer: %d bytes of control state at 0x%x\n"
    Cpu.integer_state_size buf;
  let before = sys.Svaos.cpu.Cpu.gpr.(5) in
  Cpu.scramble sys.Svaos.cpu ~seed:1;
  Svaos.load_integer sys ~buffer:buf;
  Printf.printf "  llva_load_integer: gpr5 restored (%Ld = %Ld)\n" before
    sys.Svaos.cpu.Cpu.gpr.(5);
  (* lazy FP save *)
  sys.Svaos.cpu.Cpu.fp_dirty <- false;
  Printf.printf "  llva_save_fp (clean, always=0): saved=%b (the lazy-FP path)\n"
    (Svaos.save_fp sys ~buffer:(buf + 256) ~always:false);
  sys.Svaos.cpu.Cpu.fp_dirty <- true;
  Printf.printf "  llva_save_fp (dirty): saved=%b\n"
    (Svaos.save_fp sys ~buffer:(buf + 256) ~always:false);

  print_endline "";
  print_endline "== Table 2: interrupt contexts ==";
  let icp =
    Svaos.icontext_create sys ~sp:(Machine.stack_base + 65536) ~was_privileged:false
  in
  Printf.printf "  trap entry: interrupt context laid down at 0x%x\n" icp;
  Printf.printf "  llva_was_privileged -> %b\n" (Svaos.was_privileged sys ~icp);
  Svaos.icontext_save sys ~icp ~isp:(buf + 512);
  print_endline "  llva_icontext_save: context spilled as Integer State";
  Svaos.ipush_function sys ~icp ~fn:0xB00080 ~arg:11L;
  print_endline "  llva_ipush_function: signal handler pushed onto the context";
  (match Svaos.ipush_pending sys ~icp with
  | Some (fn, arg) ->
      Printf.printf "  resume: would call 0x%x(%Ld) - signal dispatch\n" fn arg
  | None -> ());
  Svaos.icontext_destroy sys ~icp;

  print_endline "";
  print_endline "== the SVM refuses unsafe privileged operations ==";
  (match Svaos.save_integer sys ~buffer:Machine.user_base with
  | () -> print_endline "  !! state spilled into userspace"
  | exception Failure msg -> Printf.printf "  state spill refused: %s\n" msg);
  (match
     Svaos.mmu_map_page sys ~sid:(Svaos.mmu_new_space sys)
       ~vpn:(Machine.user_base / Machine.page_size)
       ~ppn:(Machine.svm_base / Machine.page_size)
       ~writable:true
   with
  | () -> print_endline "  !! SVM frame mapped into userspace"
  | exception Sva_hw.Mmu.Mmu_fault (_, msg) ->
      Printf.printf "  MMU mapping refused: %s\n" msg);

  print_endline "";
  print_endline "== the same operations, driven from the ported kernel ==";
  let t = Boot.boot ~conf:Sva_pipeline.Pipeline.Sva_safe () in
  Printf.printf "  kernel booted; SVA-OS operations so far: %d\n"
    t.Boot.sys.Svaos.ops_count;
  ignore (Boot.syscall t 9 []) (* fork: save_integer + save_fp + clone_space *);
  Printf.printf "  after fork: %d (state save + fp save + space clone)\n"
    t.Boot.sys.Svaos.ops_count;
  let haddr = Int64.of_int (Sva_interp.Interp.func_addr t.Boot.vm "sys_getpid") in
  ignore (Boot.syscall t 12 [ 5L; haddr ]);
  ignore (Boot.syscall t 13 [ 1L; 5L ]);
  Printf.printf "  signal delivered through llva_ipush_function: %b\n"
    (t.Boot.signal_fired <> [])
