(* Module loading (Section 3.4): kernel modules ship as signed bytecode
   and link into a running kernel — "kernel modules and device drivers can
   be dynamically loaded ... because both the bytecode verifier and
   translator are intraprocedural and hence modular."

     dune exec examples/module_loading.exe

   The demo loads a tiny protocol-statistics module three ways:
   1. into the native kernel (works, unchecked);
   2. into the checked kernel as unknown code (the dispatcher's
      control-flow-integrity check refuses to jump to a handler that was
      not in the compile-time call graph);
   3. compiled together with the kernel by the safety-checking compiler
      (works, fully checked). *)

module Boot = Ukern.Boot
module Pipeline = Sva_pipeline.Pipeline

let module_source =
  {|
    extern void sva_register_syscall(long num, ...);
    extern void register_syscall_handler(long num, long handler);
    extern char *kmalloc(long n);
    extern void kfree(char *p);

    struct pstat { long packets; long bytes; };
    struct pstat modstats;

    long sys_modstats(long what, long a1, long a2, long a3) {
      modstats.packets = modstats.packets + 1;
      modstats.bytes = modstats.bytes + what;
      if (what == 0) return modstats.packets;
      return modstats.bytes;
    }

    long mod_init(void) {
      sva_register_syscall(41, sys_modstats);
      register_syscall_handler(41, (long)sys_modstats);
      return 0;
    }
  |}

let ship_and_link t =
  (* compile -> sign -> (simulated shipping) -> verify -> link *)
  let m = Minic.Lower.compile_string ~name:"protostats" module_source in
  Sva_ir.Passes.run Sva_ir.Passes.Llvm_like m;
  let entry = Sva_bytecode.Signing.sign m in
  Printf.printf "  module signed: %d bytes of bytecode, signature %s...\n"
    (String.length entry.Sva_bytecode.Signing.ce_bytecode)
    (String.sub (Sva_bytecode.Sha256.hex entry.Sva_bytecode.Signing.ce_signature) 0 12);
  let verified = Sva_bytecode.Signing.verify entry in
  Sva_interp.Interp.link_module t.Boot.vm verified;
  ignore (Sva_interp.Interp.call t.Boot.vm "mod_init" []);
  print_endline "  linked and initialized"

let () =
  print_endline "== 1. load into the native kernel ==";
  let tn = Boot.boot ~conf:Pipeline.Native () in
  ship_and_link tn;
  Printf.printf "  syscall 41 -> %Ld (packets counted: %Ld)\n"
    (Boot.syscall tn 41 [ 100L ])
    (Boot.syscall tn 41 [ 0L ]);

  print_endline "";
  print_endline "== 2. load into the checked kernel as unknown code ==";
  let ts = Boot.boot ~conf:Pipeline.Sva_safe () in
  ship_and_link ts;
  (match Boot.syscall ts 41 [ 100L ] with
  | v -> Printf.printf "  !! unexpected success: %Ld\n" v
  | exception Sva_rt.Violation.Safety_violation v ->
      Printf.printf "  CFI refused the unknown handler: %s\n"
        (Sva_rt.Violation.to_string v));
  Printf.printf "  kernel still serving: getpid -> %Ld\n" (Boot.syscall ts 1 []);

  print_endline "";
  print_endline "== 3. compile the module with the kernel (the blessed path) ==";
  let v = Ukern.Kbuild.as_tested in
  let built =
    Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig:(Ukern.Kbuild.aconfig v)
      ~name:"ukern+protostats"
      (Ukern.Kbuild.sources v @ [ module_source ])
  in
  let tc = Boot.boot_built built ~variant:v in
  ignore (Sva_interp.Interp.call tc.Boot.vm "mod_init" []);
  Printf.printf "  checked syscall 41 -> %Ld (fully instrumented module)\n"
    (Boot.syscall tc 41 [ 100L ])
