(* Verifier demo: keeping the safety-checking compiler out of the TCB
   (Section 5), plus the signed translation cache (Section 3.4).

     dune exec examples/verifier_demo.exe

   The interprocedural pointer analysis is complex and untrusted; its
   results are encoded as metapool type qualifiers that a simple,
   intraprocedural checker validates.  We inject each of the paper's four
   analysis-bug kinds and show the checker rejecting all of them; then we
   tamper with a signed bytecode cache entry and watch the SVM refuse to
   load it. *)

module Tyck = Sva_tyck.Tyck
module Inject = Sva_tyck.Inject
module Pointsto = Sva_analysis.Pointsto

let program =
  {|
    extern char *malloc(long n);
    struct item { long key; struct item *next; };
    struct item *head = 0;
    void push(long key) {
      struct item *it = (struct item*)malloc(sizeof(struct item));
      it->key = key;
      it->next = head;
      head = it;
    }
    long find(long key) {
      struct item *it = head;
      while (it) { if (it->key == key) return 1; it = it->next; }
      return 0;
    }
    long drive(void) {
      for (long k = 0; k < 10; k++) push(k * 3);
      return find(9) + find(10);
    }
  |}

let () =
  let m = Minic.Lower.compile_string ~name:"list" program in
  Sva_ir.Passes.run Sva_ir.Passes.Llvm_like m;
  let pa = Pointsto.run m in
  let mps = Sva_safety.Metapool.infer m pa [] in
  let an = Tyck.extract m pa mps in

  print_endline "== the honest proof passes the trusted checker ==";
  (match Tyck.check m an with
  | [] -> print_endline "  annotations consistent: module accepted"
  | errs -> List.iter (fun e -> print_endline ("  " ^ Tyck.string_of_error e)) errs);

  print_endline "";
  print_endline "== injecting the four analysis-bug kinds of Section 5 ==";
  List.iter
    (fun kind ->
      match Inject.inject m an kind ~seed:0 with
      | Some (buggy, desc) -> (
          Printf.printf "  %s\n    (%s)\n" (Inject.kind_name kind) desc;
          match Tyck.check m buggy with
          | [] -> print_endline "    !! NOT DETECTED"
          | e :: _ ->
              Printf.printf "    rejected: %s\n" (Tyck.string_of_error e))
      | None -> Printf.printf "  %s: no injection site\n" (Inject.kind_name kind))
    Inject.all_kinds;

  print_endline "";
  print_endline "== the full 4 x 5 experiment ==";
  let results = Inject.experiment m an ~instances:5 in
  let caught = List.length (List.filter (fun (_, _, c) -> c) results) in
  Printf.printf "  %d injected, %d detected (paper: 20/20)\n"
    (List.length results) caught;

  print_endline "";
  print_endline "== signed translation cache ==";
  let entry = Sva_bytecode.Signing.sign m in
  Printf.printf "  module signed: %d bytecode bytes, signature %s...\n"
    (String.length entry.Sva_bytecode.Signing.ce_bytecode)
    (String.sub
       (Sva_bytecode.Sha256.hex entry.Sva_bytecode.Signing.ce_signature)
       0 16);
  let m' = Sva_bytecode.Signing.verify entry in
  Printf.printf "  verification OK: module %s reloaded\n" m'.Sva_ir.Irmod.m_name;
  (match Sva_bytecode.Signing.verify (Sva_bytecode.Signing.tamper_bytecode entry) with
  | _ -> print_endline "  !! tampered bytecode accepted"
  | exception Sva_bytecode.Signing.Tampered msg ->
      Printf.printf "  tampered bytecode refused: %s\n" msg);
  (match Sva_bytecode.Signing.verify (Sva_bytecode.Signing.tamper_native entry) with
  | _ -> print_endline "  !! tampered native code accepted"
  | exception Sva_bytecode.Signing.Tampered msg ->
      Printf.printf "  tampered native code refused: %s\n" msg)
