(* Custom allocators: the heart of the SVA approach (Section 4.3).

     dune exec examples/custom_allocator.exe

   Kernels manage memory with their own pool allocators; SVA does NOT
   replace them.  Instead the porting step declares them to the compiler,
   which correlates each kernel pool with a points-to partition
   (metapool), inserts object registration at the allocation sites, and
   exploits type-homogeneity: objects from a single-type pool need no
   load/store checks, and dangling pointers into such pools are harmless
   because the allocator (a) spaces objects at type-size multiples and
   (b) never releases pool pages while the metapool lives. *)

module Pipeline = Sva_pipeline.Pipeline
module Pointsto = Sva_analysis.Pointsto
module Allocdecl = Sva_analysis.Allocdecl

(* A slab-style pool allocator plus two typed pools, in MiniC.  The
   allocator itself is "trusted allocator code" (declared, not analyzed),
   exactly like kmem_cache_alloc in the kernel port. *)
let program =
  {|
    extern long sva_heap_base(void);

    struct pool { long objsize; long cursor; long free_head; };

    long pool_objsize(struct pool *p) { return p->objsize; }

    __noanalyze char *pool_alloc(struct pool *p) {
      if (p->free_head != 0) {
        long obj = p->free_head;
        p->free_head = *(long*)(char*)obj;
        return (char*)obj;
      }
      long obj = p->cursor;
      p->cursor = p->cursor + p->objsize;   /* type-size spacing */
      return (char*)obj;
    }

    __noanalyze void pool_free(struct pool *p, char *obj) {
      *(long*)obj = p->free_head;           /* reuse stays in-pool */
      p->free_head = (long)obj;
    }

    struct request { long id; long state; long deadline; };
    struct reply   { long id; long status; };

    struct pool req_pool;
    struct pool rep_pool;

    void pools_init(void) {
      req_pool.objsize = sizeof(struct request);
      req_pool.cursor = sva_heap_base();
      req_pool.free_head = 0;
      rep_pool.objsize = sizeof(struct reply);
      rep_pool.cursor = sva_heap_base() + 1048576;
      rep_pool.free_head = 0;
    }

    long use_after_free_is_harmless(void) {
      struct request *r = (struct request*)pool_alloc(&req_pool);
      r->id = 7; r->state = 1; r->deadline = 99;
      pool_free(&req_pool, (char*)r);
      /* dangling read: the slot can only ever hold another request, so
         type safety survives (Section 4.1) */
      struct request *r2 = (struct request*)pool_alloc(&req_pool);
      r2->id = 8;
      return r->id;   /* dangling, harmless: sees the reused request */
    }

    long overrun_is_caught(void) {
      struct reply *rep = (struct reply*)pool_alloc(&rep_pool);
      long *words = (long*)rep;
      long acc = 0;
      for (int i = 0; i < 8; i++) acc += words[i];  /* 8 > 2 words! */
      return acc;
    }
  |}

let aconfig =
  {
    Pointsto.default_config with
    Pointsto.allocators =
      [
        Allocdecl.pool ~free:"pool_free" ~size_fn:"pool_objsize" ~pool_arg:0
          "pool_alloc";
      ];
  }

let () =
  let built = Pipeline.build ~conf:Pipeline.Sva_safe ~aconfig ~name:"pools" [ program ] in
  let vm = Pipeline.instantiate built in
  ignore (Sva_interp.Interp.call vm "pools_init" []);

  print_endline "== metapool inference over the declared pool allocator ==";
  (match built.Pipeline.bl_mps with
  | Some mps -> print_endline (Sva_safety.Metapool.to_string mps)
  | None -> ());

  print_endline "";
  print_endline "== dangling pointers into a type-homogeneous pool are harmless ==";
  (match Sva_interp.Interp.call vm "use_after_free_is_harmless" [] with
  | Some v ->
      Printf.printf
        "  returned %Ld: the dangling read saw the reused (same-typed) \
         object - a logical bug, but never a safety violation\n" v
  | None -> ());

  print_endline "";
  print_endline "== an overrun out of a pool object is still caught ==";
  (match Sva_interp.Interp.call vm "overrun_is_caught" [] with
  | Some v -> Printf.printf "  UNEXPECTED: returned %Ld\n" v
  | None -> ()
  | exception Sva_rt.Violation.Safety_violation v ->
      Printf.printf "  TRAPPED: %s\n" (Sva_rt.Violation.to_string v))
