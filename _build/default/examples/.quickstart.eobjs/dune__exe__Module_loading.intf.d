examples/module_loading.mli:
