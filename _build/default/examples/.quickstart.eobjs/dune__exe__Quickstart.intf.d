examples/quickstart.mli:
