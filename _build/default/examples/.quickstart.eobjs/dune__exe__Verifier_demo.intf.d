examples/verifier_demo.mli:
