examples/os_port_tour.ml: Array Int64 Printf Sva_hw Sva_interp Sva_os Sva_pipeline Ukern
