examples/custom_allocator.mli:
