examples/quickstart.ml: Int64 List Printf Sva_analysis Sva_interp Sva_ir Sva_pipeline Sva_rt Sva_safety
