examples/custom_allocator.ml: Printf Sva_analysis Sva_interp Sva_pipeline Sva_rt Sva_safety
