examples/module_loading.ml: Minic Printf String Sva_bytecode Sva_interp Sva_ir Sva_pipeline Sva_rt Ukern
