examples/os_port_tour.mli:
