examples/verifier_demo.ml: List Minic Printf String Sva_analysis Sva_bytecode Sva_ir Sva_safety Sva_tyck
