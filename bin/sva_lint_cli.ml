(* sva-lint: the static lint layer as a command-line sanitizer.

     sva_lint FILE            lint a MiniC source (or SVA bytecode) file
     sva_lint --ukern         lint the embedded kernel (expected clean)
     sva_lint --fixture       lint the kernel plus the seeded-bug fixture
     sva_lint --selftest      --ukern must be clean AND --fixture must
                              report exactly the seeded defects

   Findings print one per line in deterministic order; the exit code is
   non-zero when any finding is reported (or, under --selftest, when the
   results deviate from the expected set). *)

open Cmdliner
module Pipeline = Sva_pipeline.Pipeline
module Lint = Sva_lint.Lint
module Pointsto = Sva_analysis.Pointsto

let file_config =
  {
    Pointsto.default_config with
    Pointsto.syscall_register = Some "sva_register_syscall";
    syscall_invoke = Some "sva_syscall";
  }

(* Lint runs standalone — compile, analyze, check — without the metapool
   type checker or instrumentation, so even modules a full safe build
   would reject can be linted. *)
let range_oracle m pa =
  let res = Sva_analysis.Interval.run m pa in
  fun ~fname i ->
    Sva_analysis.Interval.elide res ~fname i Sva_analysis.Interval.Cls

let lint_sources ?(ranges = false) ~name ~aconfig ~config sources =
  let m = Pipeline.compile ~name sources in
  let pa = Pointsto.run ~config:aconfig m in
  if ranges then Lint.run ~config ~ranges:(range_oracle m pa) m pa
  else Lint.run ~config m pa

let lint_kernel ?ranges ~fixture () =
  let v = Ukern.Kbuild.as_tested in
  let sources =
    if fixture then Ukern.Kbuild.fixture_sources v else Ukern.Kbuild.sources v
  in
  let name = if fixture then "ukern-lint-fixture" else "ukern-lint" in
  lint_sources ?ranges ~name ~aconfig:(Ukern.Kbuild.aconfig v)
    ~config:(Ukern.Kbuild.lint_config v) sources

let print_result ?(quiet = false) (r : Lint.result) =
  print_string (Lint.render r);
  if not quiet then begin
    let counts =
      String.concat ", "
        (List.map (fun (c, n) -> Printf.sprintf "%s %d" c n) r.Lint.lr_counts)
    in
    let ranges =
      if r.Lint.lr_range_geps > 0 then
        Printf.sprintf " (%d via range certificates)" r.Lint.lr_range_geps
      else ""
    in
    Printf.printf
      "lint: %d findings (%s); %d accesses proved safe%s; %d functions, %d \
       dataflow iterations\n"
      (List.length r.Lint.lr_findings)
      counts r.Lint.lr_proof_count ranges r.Lint.lr_funcs r.Lint.lr_iterations
  end

let selftest () =
  let clean = lint_kernel ~fixture:false () in
  let dirty = lint_kernel ~fixture:true () in
  let got =
    List.map
      (fun (f : Sva_lint.Report.finding) ->
        (f.Sva_lint.Report.f_checker, f.Sva_lint.Report.f_func))
      dirty.Lint.lr_findings
    |> List.sort_uniq compare
  in
  let want = List.sort_uniq compare Ukern.Ksrc_lintbugs.expected in
  let show l =
    String.concat ", " (List.map (fun (c, fn) -> c ^ "@" ^ fn) l)
  in
  let ok = ref true in
  if clean.Lint.lr_findings <> [] then begin
    ok := false;
    Printf.printf "FAIL: clean kernel has findings:\n";
    print_string (Lint.render clean)
  end;
  if got <> want then begin
    ok := false;
    Printf.printf "FAIL: fixture findings mismatch\n  want: %s\n  got:  %s\n"
      (show want) (show got)
  end;
  if dirty.Lint.lr_proof_count = 0 then begin
    ok := false;
    Printf.printf "FAIL: safe-access prover proved nothing on the kernel\n"
  end;
  if !ok then begin
    Printf.printf
      "selftest OK: clean kernel 0 findings; fixture reports exactly [%s]; \
       %d accesses proved safe\n"
      (show want) dirty.Lint.lr_proof_count;
    0
  end
  else 1

let run file ukern fixture selftest_flag ranges quiet =
  try
    if selftest_flag then selftest ()
    else begin
      let r =
        if ukern then lint_kernel ~ranges ~fixture:false ()
        else if fixture then lint_kernel ~ranges ~fixture:true ()
        else
          match file with
          | Some path ->
              let m = Pipeline.load_file path in
              let pa = Pointsto.run ~config:file_config m in
              let config = Lint.config_of_aconfig file_config in
              if ranges then
                Lint.run ~config ~ranges:(range_oracle m pa) m pa
              else Lint.run ~config m pa
          | None ->
              prerr_endline
                "usage: sva_lint FILE | --ukern | --fixture | --selftest";
              exit 2
      in
      print_result ~quiet r;
      if r.Lint.lr_findings = [] then 0 else 1
    end
  with
  | Minic.Parser.Parse_error (msg, loc) ->
      Printf.eprintf "%d:%d: parse error: %s\n" loc.Minic.Token.line
        loc.Minic.Token.col msg;
      2
  | Minic.Lower.Lower_error msg ->
      Printf.eprintf "error: %s\n" msg;
      2
  | Sva_bytecode.Codec.Decode_error msg ->
      Printf.eprintf "undecodable bytecode: %s\n" msg;
      2

let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")

let ukern =
  Arg.(value & flag & info [ "ukern" ] ~doc:"Lint the embedded kernel.")

let fixture =
  Arg.(
    value & flag
    & info [ "fixture" ]
        ~doc:"Lint the embedded kernel plus the seeded-bug fixture.")

let selftest_flag =
  Arg.(
    value & flag
    & info [ "selftest" ]
        ~doc:
          "Check that the clean kernel lints clean and the fixture reports \
           exactly the seeded defects.")

let ranges =
  Arg.(
    value & flag
    & info [ "ranges" ]
        ~doc:
          "Feed value-range certificates ($(b,Sva_analysis.Interval)) to \
           the safe-access prover, widening proofs to variable-index geps \
           certified in extent.")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Findings only, no summary.")

let cmd =
  Cmd.v
    (Cmd.info "sva_lint"
       ~doc:"Static dataflow lint over the SVA safety pipeline")
    Term.(const run $ file $ ukern $ fixture $ selftest_flag $ ranges $ quiet)

let () = exit (Cmd.eval' cmd)
