(* sva-lint: the static lint layer as a command-line sanitizer.

     sva_lint FILE            lint a MiniC source (or SVA bytecode) file
     sva_lint --ukern         lint the embedded kernel (expected clean)
     sva_lint --fixture       lint the kernel plus the seeded-bug fixture
     sva_lint --selftest      --ukern must be clean AND --fixture must
                              report exactly the seeded defects

   With --races the concurrency-safety pass runs instead of the lint
   checkers: the interprocedural lockset analysis reports races,
   deadlocks and masking-discipline defects, and the trusted atomicity
   checker re-verifies the certificate bundle.  --races composes with
   FILE, --ukern, --fixture (the ksrc_racebugs module) and --selftest.

   Findings print one per line in deterministic order; the exit code is
   non-zero when any finding is reported (or, under --selftest, when the
   results deviate from the expected set). *)

open Cmdliner
module Pipeline = Sva_pipeline.Pipeline
module Lint = Sva_lint.Lint
module Pointsto = Sva_analysis.Pointsto
module Lockset = Sva_analysis.Lockset
module Atomcert = Sva_tyck.Atomcert

let file_config =
  {
    Pointsto.default_config with
    Pointsto.syscall_register = Some "sva_register_syscall";
    syscall_invoke = Some "sva_syscall";
  }

(* Lint runs standalone — compile, analyze, check — without the metapool
   type checker or instrumentation, so even modules a full safe build
   would reject can be linted. *)
let range_oracle m pa =
  let res = Sva_analysis.Interval.run m pa in
  fun ~fname i ->
    Sva_analysis.Interval.elide res ~fname i Sva_analysis.Interval.Cls

let lint_sources ?(ranges = false) ~name ~aconfig ~config sources =
  let m = Pipeline.compile ~name sources in
  let pa = Pointsto.run ~config:aconfig m in
  if ranges then Lint.run ~config ~ranges:(range_oracle m pa) m pa
  else Lint.run ~config m pa

let lint_kernel ?ranges ~fixture () =
  let v = Ukern.Kbuild.as_tested in
  let sources =
    if fixture then Ukern.Kbuild.fixture_sources v else Ukern.Kbuild.sources v
  in
  let name = if fixture then "ukern-lint-fixture" else "ukern-lint" in
  lint_sources ?ranges ~name ~aconfig:(Ukern.Kbuild.aconfig v)
    ~config:(Ukern.Kbuild.lint_config v) sources

let print_result ?(quiet = false) (r : Lint.result) =
  print_string (Lint.render r);
  if not quiet then begin
    let counts =
      String.concat ", "
        (List.map (fun (c, n) -> Printf.sprintf "%s %d" c n) r.Lint.lr_counts)
    in
    let ranges =
      if r.Lint.lr_range_geps > 0 then
        Printf.sprintf " (%d via range certificates)" r.Lint.lr_range_geps
      else ""
    in
    Printf.printf
      "lint: %d findings (%s); %d accesses proved safe%s; %d functions, %d \
       dataflow iterations\n"
      (List.length r.Lint.lr_findings)
      counts r.Lint.lr_proof_count ranges r.Lint.lr_funcs r.Lint.lr_iterations
  end

(* ---------- the concurrency-safety pass ---------- *)

let race_sources ~name ~aconfig sources =
  let m = Pipeline.compile ~name sources in
  let pa = Pointsto.run ~config:aconfig m in
  let r = Lockset.run m pa in
  let errs =
    Atomcert.check ~entries:(Lockset.entry_config r) m (Lockset.bundle r)
  in
  (r, errs)

let race_kernel ~fixture () =
  let v = Ukern.Kbuild.as_tested in
  let sources =
    if fixture then Ukern.Kbuild.race_fixture_sources v
    else Ukern.Kbuild.sources v
  in
  let name = if fixture then "ukern-races-fixture" else "ukern-races" in
  race_sources ~name ~aconfig:(Ukern.Kbuild.aconfig v) sources

let race_checkers =
  [ "race"; "deadlock"; "cli-imbalance"; "lock-imbalance"; "atomic-sleep" ]

let print_races ?(quiet = false) (r, errs) =
  List.iter
    (fun f -> print_endline (Lockset.render_finding f))
    (Lockset.findings r);
  List.iter
    (fun e -> Printf.printf "atomcert: %s\n" (Atomcert.string_of_error e))
    errs;
  if not quiet then begin
    let counts =
      String.concat ", "
        (List.map
           (fun c -> Printf.sprintf "%s %d" c (Lockset.count_findings r c))
           race_checkers)
    in
    Printf.printf
      "races: %d findings (%s); %d shared classes, %d accesses, %d certified \
       (%d certificate errors); %d functions, %d dataflow iterations\n"
      (List.length (Lockset.findings r))
      counts (Lockset.shared_count r) (Lockset.access_count r)
      (Lockset.cert_count r) (List.length errs) (Lockset.funcs_analyzed r)
      (Lockset.iterations r)
  end

let race_selftest () =
  let clean, clean_errs = race_kernel ~fixture:false () in
  let dirty, dirty_errs = race_kernel ~fixture:true () in
  let got =
    List.map
      (fun (f : Lockset.finding) -> (f.Lockset.lf_checker, f.Lockset.lf_func))
      (Lockset.findings dirty)
    |> List.sort_uniq compare
  in
  let want = List.sort_uniq compare Ukern.Ksrc_racebugs.expected in
  let show l =
    String.concat ", " (List.map (fun (c, fn) -> c ^ "@" ^ fn) l)
  in
  let ok = ref true in
  if Lockset.findings clean <> [] then begin
    ok := false;
    Printf.printf "FAIL: clean kernel has concurrency findings:\n";
    print_races ~quiet:true (clean, [])
  end;
  if got <> want then begin
    ok := false;
    Printf.printf "FAIL: race fixture findings mismatch\n  want: %s\n  got:  %s\n"
      (show want) (show got)
  end;
  if clean_errs <> [] || dirty_errs <> [] then begin
    ok := false;
    Printf.printf "FAIL: atomicity certificates rejected:\n";
    List.iter
      (fun e -> Printf.printf "  %s\n" (Atomcert.string_of_error e))
      (clean_errs @ dirty_errs)
  end;
  if Lockset.cert_count clean = 0 then begin
    ok := false;
    Printf.printf "FAIL: no access was certified on the clean kernel\n"
  end;
  if !ok then begin
    Printf.printf
      "races selftest OK: clean kernel 0 findings, %d certified accesses; \
       fixture reports exactly [%s]\n"
      (Lockset.cert_count clean) (show want);
    0
  end
  else 1

let selftest () =
  let clean = lint_kernel ~fixture:false () in
  let dirty = lint_kernel ~fixture:true () in
  let got =
    List.map
      (fun (f : Sva_lint.Report.finding) ->
        (f.Sva_lint.Report.f_checker, f.Sva_lint.Report.f_func))
      dirty.Lint.lr_findings
    |> List.sort_uniq compare
  in
  let want = List.sort_uniq compare Ukern.Ksrc_lintbugs.expected in
  let show l =
    String.concat ", " (List.map (fun (c, fn) -> c ^ "@" ^ fn) l)
  in
  let ok = ref true in
  if clean.Lint.lr_findings <> [] then begin
    ok := false;
    Printf.printf "FAIL: clean kernel has findings:\n";
    print_string (Lint.render clean)
  end;
  if got <> want then begin
    ok := false;
    Printf.printf "FAIL: fixture findings mismatch\n  want: %s\n  got:  %s\n"
      (show want) (show got)
  end;
  if dirty.Lint.lr_proof_count = 0 then begin
    ok := false;
    Printf.printf "FAIL: safe-access prover proved nothing on the kernel\n"
  end;
  if !ok then begin
    Printf.printf
      "selftest OK: clean kernel 0 findings; fixture reports exactly [%s]; \
       %d accesses proved safe\n"
      (show want) dirty.Lint.lr_proof_count;
    0
  end
  else 1

let run file ukern fixture selftest_flag ranges races quiet =
  try
    if races then begin
      if selftest_flag then race_selftest ()
      else begin
        let ((r, errs) as res) =
          if ukern then race_kernel ~fixture:false ()
          else if fixture then race_kernel ~fixture:true ()
          else
            match file with
            | Some path ->
                let m = Pipeline.load_file path in
                let pa = Pointsto.run ~config:file_config m in
                let r = Lockset.run m pa in
                let errs =
                  Atomcert.check ~entries:(Lockset.entry_config r) m
                    (Lockset.bundle r)
                in
                (r, errs)
            | None ->
                prerr_endline
                  "usage: sva_lint --races [FILE | --ukern | --fixture | \
                   --selftest]";
                exit 2
        in
        print_races ~quiet res;
        if Lockset.findings r = [] && errs = [] then 0 else 1
      end
    end
    else if selftest_flag then selftest ()
    else begin
      let r =
        if ukern then lint_kernel ~ranges ~fixture:false ()
        else if fixture then lint_kernel ~ranges ~fixture:true ()
        else
          match file with
          | Some path ->
              let m = Pipeline.load_file path in
              let pa = Pointsto.run ~config:file_config m in
              let config = Lint.config_of_aconfig file_config in
              if ranges then
                Lint.run ~config ~ranges:(range_oracle m pa) m pa
              else Lint.run ~config m pa
          | None ->
              prerr_endline
                "usage: sva_lint FILE | --ukern | --fixture | --selftest";
              exit 2
      in
      print_result ~quiet r;
      if r.Lint.lr_findings = [] then 0 else 1
    end
  with
  | Minic.Parser.Parse_error (msg, loc) ->
      Printf.eprintf "%d:%d: parse error: %s\n" loc.Minic.Token.line
        loc.Minic.Token.col msg;
      2
  | Minic.Lower.Lower_error msg ->
      Printf.eprintf "error: %s\n" msg;
      2
  | Sva_bytecode.Codec.Decode_error msg ->
      Printf.eprintf "undecodable bytecode: %s\n" msg;
      2

let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")

let ukern =
  Arg.(value & flag & info [ "ukern" ] ~doc:"Lint the embedded kernel.")

let fixture =
  Arg.(
    value & flag
    & info [ "fixture" ]
        ~doc:"Lint the embedded kernel plus the seeded-bug fixture.")

let selftest_flag =
  Arg.(
    value & flag
    & info [ "selftest" ]
        ~doc:
          "Check that the clean kernel lints clean and the fixture reports \
           exactly the seeded defects.")

let ranges =
  Arg.(
    value & flag
    & info [ "ranges" ]
        ~doc:
          "Feed value-range certificates ($(b,Sva_analysis.Interval)) to \
           the safe-access prover, widening proofs to variable-index geps \
           certified in extent.")

let races_flag =
  Arg.(
    value & flag
    & info [ "races" ]
        ~doc:
          "Run the concurrency-safety pass ($(b,Sva_analysis.Lockset)) \
           instead of the lint checkers: interprocedural lockset + \
           interrupt-mask dataflow, race/deadlock/masking-discipline \
           findings, and trusted re-verification of the atomicity \
           certificates.")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Findings only, no summary.")

let cmd =
  Cmd.v
    (Cmd.info "sva_lint"
       ~doc:"Static dataflow lint over the SVA safety pipeline")
    Term.(
      const run $ file $ ukern $ fixture $ selftest_flag $ ranges $ races_flag
      $ quiet)

(* Unknown flags must produce usage + exit 2 (parity with bench/main.ml);
   Cmdliner's default "term error" exit is 124, so pin it. *)
let () = exit (Cmd.eval' ~term_err:2 cmd)
