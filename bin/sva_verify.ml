(* sva-verify: the load-time half of the SVM (Section 3.4).

     sva_verify FILE
     sva_verify --rangecert FILE
     sva_verify --range-selftest
     sva_verify --atomcert
     sva_verify --poolcert [FILE]
     sva_verify --poolcert-selftest
     sva_verify --cert-selftest FILE

   Loads an SVA module (bytecode, or MiniC compiled on the fly), runs
   the IR well-formedness verifier, and reports module statistics.
   Exit code 0 = the module may be translated and executed;
   1 = rejected.

   --rangecert runs the value-range analysis over the module, has the
   trusted checker re-verify every certificate it can emit, and then
   runs the certificate-bug injection experiment: every injected bug
   must be rejected.  --range-selftest exercises the interval kernel
   against the concrete constant folder.

   --atomcert does the same for the concurrency pass: the lockset
   analysis runs over the embedded kernel plus the race fixture, the
   trusted atomicity checker re-verifies the certificate bundle, and the
   certificate-bug injection experiment corrupts it in every supported
   way — each corruption must be rejected.

   --poolcert does the same for the points-to layer: the module (the
   embedded kernel when no FILE is given) is built with pool-safety
   certification, the trusted checker re-verifies the membership maps
   and every TH/completeness/devirt certificate and elision record, and
   the pool-certificate bug injection experiment corrupts the bundle in
   every supported way — each corruption must be rejected.
   --poolcert-selftest is --poolcert over the embedded kernel through
   the full build pipeline (the shipped configuration).

   --cert-selftest runs every certificate self-test — rangecert over
   FILE, atomcert and poolcert over the embedded kernel — and prints one
   pass/fail table. *)

module Interval = Sva_analysis.Interval
module Rangecert = Sva_tyck.Rangecert
module Lockset = Sva_analysis.Lockset
module Atomcert = Sva_tyck.Atomcert
module Poolcert = Sva_tyck.Poolcert
module Inject = Sva_tyck.Inject
module Poolev = Sva_safety.Poolev

let load path =
  let data = In_channel.with_open_bin path In_channel.input_all in
  match Sva_pipeline.Pipeline.load_source ~name:path data with
  | exception Sva_bytecode.Codec.Decode_error msg ->
      Printf.eprintf "%s: undecodable bytecode: %s\n" path msg;
      exit 1
  | exception Minic.Parser.Parse_error (msg, loc) ->
      Printf.eprintf "%s:%d:%d: parse error: %s\n" path loc.Minic.Token.line
        loc.Minic.Token.col msg;
      exit 1
  | exception Minic.Lower.Lower_error msg ->
      Printf.eprintf "%s: error: %s\n" path msg;
      exit 1
  | m -> (m, data)

let range_selftest () =
  let n = Interval.selftest () in
  Printf.printf "interval kernel selftest: OK (%d checks against the \
                 constant folder)\n" n

(* Each certificate self-test prints its own detail and returns
   (caught, total) over the injection experiment; certificate rejection
   on the clean build is a hard failure (exit 1) in every mode. *)
let rangecert path =
  let m, _ = load path in
  let pa = Sva_analysis.Pointsto.run m in
  let res = Interval.run m pa in
  (* materialize every certificate the analysis can justify *)
  List.iter
    (fun (f : Sva_ir.Func.t) ->
      Sva_ir.Func.iter_instrs f (fun _ i ->
          if Interval.certifiable res ~fname:f.Sva_ir.Func.f_name i then
            ignore
              (Interval.elide res ~fname:f.Sva_ir.Func.f_name i
                 Interval.Cbounds)))
    m.Sva_ir.Irmod.m_funcs;
  let b = Interval.bundle res in
  let entries = Interval.entry_config res in
  let cb, cl = Interval.cert_counts res in
  (match Rangecert.check ~entries m b with
  | [] ->
      Printf.printf
        "%s: range certificates OK (%d facts, %d bounds + %d lscheck \
         certificates)\n"
        path (Interval.fact_count res) cb cl
  | errs ->
      Printf.eprintf "%s: range certificates REJECTED (%d errors)\n" path
        (List.length errs);
      List.iter
        (fun e -> Printf.eprintf "  %s\n" (Rangecert.string_of_error e))
        errs;
      exit 1);
  let results = Rangecert.experiment ~entries m b ~instances:3 in
  let caught = List.length (List.filter (fun (_, _, c) -> c) results) in
  Printf.printf "  injected certificate bugs: %d/%d caught\n" caught
    (List.length results);
  List.iter
    (fun (bug, desc, c) ->
      if not c then
        Printf.eprintf "  MISSED %s: %s\n" (Rangecert.bug_name bug) desc)
    results;
  (caught, List.length results)

let atomcert () =
  let v = Ukern.Kbuild.as_tested in
  let m =
    Sva_pipeline.Pipeline.compile ~name:"ukern-atomcert"
      (Ukern.Kbuild.race_fixture_sources v)
  in
  let pa = Sva_analysis.Pointsto.run ~config:(Ukern.Kbuild.aconfig v) m in
  let res = Lockset.run m pa in
  let b = Lockset.bundle res in
  let entries = Lockset.entry_config res in
  (match Atomcert.check ~entries m b with
  | [] ->
      Printf.printf
        "ukern+fixture: atomicity certificates OK (%d access certificates, \
         %d function claims, %d shared classes)\n"
        (Lockset.cert_count res) (Lockset.fact_count res)
        (Lockset.shared_count res)
  | errs ->
      Printf.eprintf "ukern+fixture: atomicity certificates REJECTED (%d \
                      errors)\n"
        (List.length errs);
      List.iter
        (fun e -> Printf.eprintf "  %s\n" (Atomcert.string_of_error e))
        errs;
      exit 1);
  let results = Atomcert.experiment ~entries m b ~instances:3 in
  let caught = List.length (List.filter (fun (_, _, c) -> c) results) in
  Printf.printf "  injected certificate bugs: %d/%d caught\n" caught
    (List.length results);
  List.iter
    (fun (bug, desc, c) ->
      if not c then
        Printf.eprintf "  MISSED %s: %s\n" (Atomcert.bug_name bug) desc)
    results;
  (caught, List.length results)

(* Shared poolcert reporting: verify a (module, bundle) pair the caller
   built, then run the pool-certificate bug injection experiment. *)
let poolcert_report label config m b =
  (match Poolcert.check ~config m b with
  | [] ->
      Printf.printf
        "%s: pool-safety certificates OK (%d TH + %d completeness + %d \
         devirt certificates, %d recorded elisions)\n"
        label
        (List.length b.Poolev.pb_th)
        (List.length b.Poolev.pb_comp)
        (List.length b.Poolev.pb_dv)
        (Poolev.elision_count b)
  | errs ->
      Printf.eprintf "%s: pool-safety certificates REJECTED (%d errors)\n"
        label (List.length errs);
      List.iter
        (fun e -> Printf.eprintf "  %s\n" (Poolcert.string_of_error e))
        errs;
      exit 1);
  let results = Inject.pool_experiment ~config m b ~instances:3 in
  let caught = List.length (List.filter (fun (_, _, c) -> c) results) in
  Printf.printf "  injected certificate bugs: %d/%d caught\n" caught
    (List.length results);
  List.iter
    (fun (bug, desc, c) ->
      if not c then
        Printf.eprintf "  MISSED %s: %s\n" (Inject.pool_bug_name bug) desc)
    results;
  (caught, List.length results)

(* --poolcert FILE: certify an arbitrary module under the default
   porting configuration (points-to, metapools, check insertion with
   evidence recording, then the trusted checker). *)
let poolcert_file path =
  let m, _ = load path in
  let config = Sva_analysis.Pointsto.default_config in
  let pa = Sva_analysis.Pointsto.run ~config m in
  let mps =
    Sva_safety.Metapool.infer m pa config.Sva_analysis.Pointsto.allocators
  in
  let b = Poolev.create m pa mps in
  ignore
    (Sva_safety.Checkinsert.run ~poolcert:b m pa mps
       config.Sva_analysis.Pointsto.allocators);
  poolcert_report path config m b

(* --poolcert-selftest: the embedded kernel through the full shipped
   pipeline with certification on — the pipeline gate already enforces
   acceptance; the report re-checks and then injects bugs. *)
let poolcert_selftest () =
  let v = Ukern.Kbuild.as_tested in
  let built = Ukern.Kbuild.build ~poolcert:true v in
  let b =
    match built.Sva_pipeline.Pipeline.bl_poolcert with
    | Some b -> b
    | None -> failwith "poolcert build carried no bundle"
  in
  poolcert_report "ukern" (Ukern.Kbuild.aconfig v)
    built.Sva_pipeline.Pipeline.bl_mod b

(* --cert-selftest FILE: all three certificate pipelines, one table. *)
let cert_selftest path =
  let rows =
    [
      ("rangecert", rangecert path);
      ("atomcert", atomcert ());
      ("poolcert", poolcert_selftest ());
    ]
  in
  print_newline ();
  Printf.printf "certificate self-test summary:\n";
  Printf.printf "  %-12s %-12s %s\n" "checker" "injections" "result";
  let ok =
    List.fold_left
      (fun ok (name, (caught, total)) ->
        let pass = caught = total in
        Printf.printf "  %-12s %2d/%-2d        %s\n" name caught total
          (if pass then "PASS" else "FAIL");
        ok && pass)
      true rows
  in
  if not ok then exit 1

let usage () =
  prerr_endline
    "usage: sva_verify FILE | sva_verify --rangecert FILE | sva_verify \
     --range-selftest | sva_verify --atomcert | sva_verify --poolcert \
     [FILE] | sva_verify --poolcert-selftest | sva_verify --cert-selftest \
     FILE";
  exit 2

let exit_if_missed (caught, total) = if caught <> total then exit 1

let () =
  match Sys.argv with
  | [| _; "--range-selftest" |] -> range_selftest ()
  | [| _; "--rangecert"; path |] -> exit_if_missed (rangecert path)
  | [| _; "--atomcert" |] -> exit_if_missed (atomcert ())
  | [| _; "--poolcert" |] | [| _; "--poolcert-selftest" |] ->
      exit_if_missed (poolcert_selftest ())
  | [| _; "--poolcert"; path |] -> exit_if_missed (poolcert_file path)
  | [| _; "--cert-selftest"; path |] -> cert_selftest path
  (* A flag we don't know is an error, not a file name. *)
  | [| _; flag |] when String.length flag > 0 && flag.[0] = '-' ->
      Printf.eprintf "sva_verify: unknown flag '%s'\n" flag;
      usage ()
  | [| _; path |] -> (
      let m, data = load path in
      match m with
      | m -> (
          match Sva_ir.Verify.verify_module m with
          | [] ->
              Printf.printf
                "%s: OK\n  module %s: %d functions, %d globals, %d externs, \
                 %d instructions\n  sha256 %s\n"
                path m.Sva_ir.Irmod.m_name
                (List.length m.Sva_ir.Irmod.m_funcs)
                (List.length m.Sva_ir.Irmod.m_globals)
                (List.length m.Sva_ir.Irmod.m_externs)
                (Sva_ir.Irmod.instr_count m)
                (Sva_bytecode.Sha256.hex data)
          | errs ->
              Printf.eprintf "%s: REJECTED (%d errors)\n" path (List.length errs);
              List.iter
                (fun e ->
                  Printf.eprintf "  %s\n" (Sva_ir.Verify.string_of_error e))
                errs;
              exit 1))
  | _ -> usage ()
