(* sva-verify: the load-time half of the SVM (Section 3.4).

     sva_verify FILE

   Loads an SVA module (bytecode, or MiniC compiled on the fly), runs
   the IR well-formedness verifier, and reports module statistics.
   Exit code 0 = the module may be translated and executed;
   1 = rejected. *)

let () =
  match Sys.argv with
  | [| _; path |] -> (
      let data = In_channel.with_open_bin path In_channel.input_all in
      match Sva_pipeline.Pipeline.load_source ~name:path data with
      | exception Sva_bytecode.Codec.Decode_error msg ->
          Printf.eprintf "%s: undecodable bytecode: %s\n" path msg;
          exit 1
      | exception Minic.Parser.Parse_error (msg, loc) ->
          Printf.eprintf "%s:%d:%d: parse error: %s\n" path
            loc.Minic.Token.line loc.Minic.Token.col msg;
          exit 1
      | exception Minic.Lower.Lower_error msg ->
          Printf.eprintf "%s: error: %s\n" path msg;
          exit 1
      | m -> (
          match Sva_ir.Verify.verify_module m with
          | [] ->
              Printf.printf
                "%s: OK\n  module %s: %d functions, %d globals, %d externs, \
                 %d instructions\n  sha256 %s\n"
                path m.Sva_ir.Irmod.m_name
                (List.length m.Sva_ir.Irmod.m_funcs)
                (List.length m.Sva_ir.Irmod.m_globals)
                (List.length m.Sva_ir.Irmod.m_externs)
                (Sva_ir.Irmod.instr_count m)
                (Sva_bytecode.Sha256.hex data)
          | errs ->
              Printf.eprintf "%s: REJECTED (%d errors)\n" path (List.length errs);
              List.iter
                (fun e ->
                  Printf.eprintf "  %s\n" (Sva_ir.Verify.string_of_error e))
                errs;
              exit 1))
  | _ ->
      prerr_endline "usage: sva_verify BYTECODE-FILE";
      exit 2
