(* sva-verify: the load-time half of the SVM (Section 3.4).

     sva_verify FILE
     sva_verify --rangecert FILE
     sva_verify --range-selftest
     sva_verify --atomcert

   Loads an SVA module (bytecode, or MiniC compiled on the fly), runs
   the IR well-formedness verifier, and reports module statistics.
   Exit code 0 = the module may be translated and executed;
   1 = rejected.

   --rangecert runs the value-range analysis over the module, has the
   trusted checker re-verify every certificate it can emit, and then
   runs the certificate-bug injection experiment: every injected bug
   must be rejected.  --range-selftest exercises the interval kernel
   against the concrete constant folder.

   --atomcert does the same for the concurrency pass: the lockset
   analysis runs over the embedded kernel plus the race fixture, the
   trusted atomicity checker re-verifies the certificate bundle, and the
   certificate-bug injection experiment corrupts it in every supported
   way — each corruption must be rejected. *)

module Interval = Sva_analysis.Interval
module Rangecert = Sva_tyck.Rangecert
module Lockset = Sva_analysis.Lockset
module Atomcert = Sva_tyck.Atomcert

let load path =
  let data = In_channel.with_open_bin path In_channel.input_all in
  match Sva_pipeline.Pipeline.load_source ~name:path data with
  | exception Sva_bytecode.Codec.Decode_error msg ->
      Printf.eprintf "%s: undecodable bytecode: %s\n" path msg;
      exit 1
  | exception Minic.Parser.Parse_error (msg, loc) ->
      Printf.eprintf "%s:%d:%d: parse error: %s\n" path loc.Minic.Token.line
        loc.Minic.Token.col msg;
      exit 1
  | exception Minic.Lower.Lower_error msg ->
      Printf.eprintf "%s: error: %s\n" path msg;
      exit 1
  | m -> (m, data)

let range_selftest () =
  let n = Interval.selftest () in
  Printf.printf "interval kernel selftest: OK (%d checks against the \
                 constant folder)\n" n

let rangecert path =
  let m, _ = load path in
  let pa = Sva_analysis.Pointsto.run m in
  let res = Interval.run m pa in
  (* materialize every certificate the analysis can justify *)
  List.iter
    (fun (f : Sva_ir.Func.t) ->
      Sva_ir.Func.iter_instrs f (fun _ i ->
          if Interval.certifiable res ~fname:f.Sva_ir.Func.f_name i then
            ignore
              (Interval.elide res ~fname:f.Sva_ir.Func.f_name i
                 Interval.Cbounds)))
    m.Sva_ir.Irmod.m_funcs;
  let b = Interval.bundle res in
  let entries = Interval.entry_config res in
  let cb, cl = Interval.cert_counts res in
  (match Rangecert.check ~entries m b with
  | [] ->
      Printf.printf
        "%s: range certificates OK (%d facts, %d bounds + %d lscheck \
         certificates)\n"
        path (Interval.fact_count res) cb cl
  | errs ->
      Printf.eprintf "%s: range certificates REJECTED (%d errors)\n" path
        (List.length errs);
      List.iter
        (fun e -> Printf.eprintf "  %s\n" (Rangecert.string_of_error e))
        errs;
      exit 1);
  let results = Rangecert.experiment ~entries m b ~instances:3 in
  let caught = List.length (List.filter (fun (_, _, c) -> c) results) in
  Printf.printf "  injected certificate bugs: %d/%d caught\n" caught
    (List.length results);
  List.iter
    (fun (bug, desc, c) ->
      if not c then
        Printf.eprintf "  MISSED %s: %s\n" (Rangecert.bug_name bug) desc)
    results;
  if caught <> List.length results then exit 1

let atomcert () =
  let v = Ukern.Kbuild.as_tested in
  let m =
    Sva_pipeline.Pipeline.compile ~name:"ukern-atomcert"
      (Ukern.Kbuild.race_fixture_sources v)
  in
  let pa = Sva_analysis.Pointsto.run ~config:(Ukern.Kbuild.aconfig v) m in
  let res = Lockset.run m pa in
  let b = Lockset.bundle res in
  let entries = Lockset.entry_config res in
  (match Atomcert.check ~entries m b with
  | [] ->
      Printf.printf
        "ukern+fixture: atomicity certificates OK (%d access certificates, \
         %d function claims, %d shared classes)\n"
        (Lockset.cert_count res) (Lockset.fact_count res)
        (Lockset.shared_count res)
  | errs ->
      Printf.eprintf "ukern+fixture: atomicity certificates REJECTED (%d \
                      errors)\n"
        (List.length errs);
      List.iter
        (fun e -> Printf.eprintf "  %s\n" (Atomcert.string_of_error e))
        errs;
      exit 1);
  let results = Atomcert.experiment ~entries m b ~instances:3 in
  let caught = List.length (List.filter (fun (_, _, c) -> c) results) in
  Printf.printf "  injected certificate bugs: %d/%d caught\n" caught
    (List.length results);
  List.iter
    (fun (bug, desc, c) ->
      if not c then
        Printf.eprintf "  MISSED %s: %s\n" (Atomcert.bug_name bug) desc)
    results;
  if caught <> List.length results then exit 1

let usage () =
  prerr_endline
    "usage: sva_verify FILE | sva_verify --rangecert FILE | sva_verify \
     --range-selftest | sva_verify --atomcert";
  exit 2

let () =
  match Sys.argv with
  | [| _; "--range-selftest" |] -> range_selftest ()
  | [| _; "--rangecert"; path |] -> rangecert path
  | [| _; "--atomcert" |] -> atomcert ()
  (* A flag we don't know is an error, not a file name. *)
  | [| _; flag |] when String.length flag > 0 && flag.[0] = '-' ->
      Printf.eprintf "sva_verify: unknown flag '%s'\n" flag;
      usage ()
  | [| _; path |] -> (
      let m, data = load path in
      match m with
      | m -> (
          match Sva_ir.Verify.verify_module m with
          | [] ->
              Printf.printf
                "%s: OK\n  module %s: %d functions, %d globals, %d externs, \
                 %d instructions\n  sha256 %s\n"
                path m.Sva_ir.Irmod.m_name
                (List.length m.Sva_ir.Irmod.m_funcs)
                (List.length m.Sva_ir.Irmod.m_globals)
                (List.length m.Sva_ir.Irmod.m_externs)
                (Sva_ir.Irmod.instr_count m)
                (Sva_bytecode.Sha256.hex data)
          | errs ->
              Printf.eprintf "%s: REJECTED (%d errors)\n" path (List.length errs);
              List.iter
                (fun e ->
                  Printf.eprintf "  %s\n" (Sva_ir.Verify.string_of_error e))
                errs;
              exit 1))
  | _ -> usage ()
