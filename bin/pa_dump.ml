(* pa-dump: run the safety-checking compiler's analysis on a MiniC (or
   SVA bytecode) file and dump the points-to graph, metapool assignment
   and instrumented IR — the Figure 2 view for arbitrary input.

     pa_dump FILE [FUNC]
     pa_dump --ranges FILE [FUNC]
     pa_dump --races FILE [FUNC]
     pa_dump --poolcert FILE [FUNC]

   With FUNC, only that function's IR (or range/lockset/certificate
   facts) is printed (the whole graph is always printed).  --ranges
   dumps the value-range analysis instead: per-function interval
   fixpoints, interprocedural summaries and the in-extent gep
   certificates, re-verified by the trusted checker.  --races dumps the
   concurrency pass: per-function entry protections, the lock-order
   graph, the atomicity certificates (re-verified by the trusted
   checker) and any findings.  --poolcert dumps the pool-safety
   evidence bundle: the TH, completeness and devirtualization
   certificates plus every recorded check elision, and the trusted
   checker's verdict over the whole bundle. *)

module Pointsto = Sva_analysis.Pointsto
module Interval = Sva_analysis.Interval
module Lockset = Sva_analysis.Lockset

let dump_ranges m config func =
  let pa = Pointsto.run ~config m in
  let res = Interval.run m pa in
  List.iter
    (fun (f : Sva_ir.Func.t) ->
      Sva_ir.Func.iter_instrs f (fun _ i ->
          if Interval.certifiable res ~fname:f.Sva_ir.Func.f_name i then
            ignore
              (Interval.elide res ~fname:f.Sva_ir.Func.f_name i
                 Interval.Cbounds)))
    m.Sva_ir.Irmod.m_funcs;
  let b = Interval.bundle res in
  let wanted fn = match func with Some f -> f = fn | None -> true in
  List.iter
    (fun fn ->
      if wanted fn then begin
        Printf.printf "== ranges @%s ==\n" fn;
        (match Interval.func_summary res fn with
        | Some (ps, ret) ->
            Printf.printf "  summary: (%s) -> %s\n"
              (String.concat ", "
                 (Array.to_list (Array.map Interval.ival_to_string ps)))
              (Interval.ival_to_string ret)
        | None -> ());
        List.iter
          (fun (r, iv) ->
            Printf.printf "  %%%d : %s\n" r (Interval.ival_to_string iv))
          (Interval.plain_facts res ~fname:fn)
      end)
    (Interval.analyzed_funcs res);
  print_endline "\n== range certificates ==";
  List.iter
    (fun (c : Interval.cert) ->
      if wanted c.Interval.ce_func then begin
        Printf.printf "  @%s %s: gep %%%d in %s [%s]\n" c.Interval.ce_func
          c.Interval.ce_block c.Interval.ce_gep
          (Interval.cert_kind_to_string c.Interval.ce_kind)
          (String.concat "; "
             (List.map
                (fun (pos, fi) ->
                  match Hashtbl.find_opt b.Interval.cb_facts c.Interval.ce_func with
                  | Some facts when fi >= 0 && fi < Array.length facts ->
                      let fa = facts.(fi) in
                      Printf.sprintf "op%d: %%%d %s via %s" pos
                        fa.Interval.fa_reg
                        (Interval.ival_to_string fa.Interval.fa_ival)
                        (Interval.just_to_string fa.Interval.fa_just)
                  | _ -> Printf.sprintf "op%d: fact #%d" pos fi)
                c.Interval.ce_idx))
      end)
    b.Interval.cb_certs;
  let cb, cl = Interval.cert_counts res in
  (match
     Sva_tyck.Rangecert.check ~entries:(Interval.entry_config res) m b
   with
  | [] ->
      Printf.printf
        "\nrange analysis: %d facts, %d bounds + %d lscheck certificates, \
         all re-verified by the trusted checker\n"
        (Interval.fact_count res) cb cl
  | errs ->
      Printf.printf "\nrange certificates REJECTED:\n";
      List.iter
        (fun e ->
          Printf.printf "  %s\n" (Sva_tyck.Rangecert.string_of_error e))
        errs;
      exit 1)

let dump_races m config func =
  let pa = Pointsto.run ~config m in
  let res = Lockset.run m pa in
  let wanted fn = match func with Some f -> f = fn | None -> true in
  print_endline "== entry protection ==";
  List.iter
    (fun (f : Sva_ir.Func.t) ->
      let fn = f.Sva_ir.Func.f_name in
      if wanted fn then
        match Lockset.entry_config res fn with
        | Some p -> Printf.printf "  @%s : %s\n" fn (Lockset.prot_to_string p)
        | None -> ())
    m.Sva_ir.Irmod.m_funcs;
  print_endline "\n== lock-order graph ==";
  List.iter
    (fun (l1, l2) -> Printf.printf "  %s -> %s\n" l1 l2)
    (Lockset.lock_edges res);
  print_endline "\n== atomicity certificates ==";
  let b = Lockset.bundle res in
  List.iter
    (fun (c : Lockset.acert) ->
      if wanted c.Lockset.ac_func then
        Printf.printf "  @%s %%%d: %s under %s\n" c.Lockset.ac_func
          c.Lockset.ac_instr c.Lockset.ac_global
          (Lockset.prot_to_string c.Lockset.ac_prot))
    b.Lockset.cb_acerts;
  List.iter
    (fun f -> Printf.printf "\n%s\n" (Lockset.render_finding f))
    (Lockset.findings res);
  match Sva_tyck.Atomcert.check ~entries:(Lockset.entry_config res) m b with
  | [] ->
      Printf.printf
        "\nconcurrency analysis: %d shared classes, %d accesses, %d \
         certificates, all re-verified by the trusted checker\n"
        (Lockset.shared_count res) (Lockset.access_count res)
        (Lockset.cert_count res)
  | errs ->
      Printf.printf "\natomicity certificates REJECTED:\n";
      List.iter
        (fun e -> Printf.printf "  %s\n" (Sva_tyck.Atomcert.string_of_error e))
        errs;
      exit 1

let dump_poolcert m config func =
  let module Poolev = Sva_safety.Poolev in
  let pa = Pointsto.run ~config m in
  let mps =
    Sva_safety.Metapool.infer m pa config.Pointsto.allocators
  in
  let b = Poolev.create m pa mps in
  ignore
    (Sva_safety.Checkinsert.run ~poolcert:b m pa mps
       config.Pointsto.allocators);
  let wanted fn = match func with Some f -> f = fn | None -> true in
  let site_str (s : Poolev.site) =
    Printf.sprintf "@%s %%%d" s.Poolev.s_func s.Poolev.s_instr
  in
  print_endline "== type-homogeneity certificates ==";
  List.iter
    (fun (c : Poolev.th_cert) ->
      Printf.printf "  MP%d : %s (%d member sites)\n" c.Poolev.tc_mp
        (Sva_ir.Ty.to_string c.Poolev.tc_ty)
        (List.length c.Poolev.tc_members))
    b.Poolev.pb_th;
  print_endline "\n== completeness certificates ==";
  List.iter
    (fun (c : Poolev.comp_cert) ->
      Printf.printf "  MP%d : %s%s\n" c.Poolev.cc_mp
        (if c.Poolev.cc_complete then "complete" else "incomplete")
        (match c.Poolev.cc_frontier with
        | [] -> ""
        | fr ->
            " ["
            ^ String.concat "; " (List.map site_str fr)
            ^ "]"))
    b.Poolev.pb_comp;
  print_endline "\n== devirtualization certificates ==";
  List.iter
    (fun (c : Poolev.dv_cert) ->
      if wanted c.Poolev.dc_func then
        Printf.printf "  @%s %%%d MP%d -> {%s}\n" c.Poolev.dc_func
          c.Poolev.dc_instr c.Poolev.dc_mp
          (String.concat ", " c.Poolev.dc_targets))
    b.Poolev.pb_dv;
  print_endline "\n== recorded elisions ==";
  List.iter
    (fun (e : Poolev.elision) ->
      match e with
      | Poolev.El_th (s, mp) when wanted s.Poolev.s_func ->
          Printf.printf "  %s : lscheck elided (MP%d type-homogeneous)\n"
            (site_str s) mp
      | Poolev.El_reduced (s, mp) when wanted s.Poolev.s_func ->
          Printf.printf "  %s : lscheck reduced (MP%d incomplete)\n"
            (site_str s) mp
      | Poolev.El_func (s, mp, j) when wanted s.Poolev.s_func ->
          Printf.printf "  %s : funccheck elided (MP%d %s)\n" (site_str s)
            mp
            (match j with
            | Poolev.Fc_th -> "type-homogeneous"
            | Poolev.Fc_incomplete -> "incomplete")
      | _ -> ())
    b.Poolev.pb_elisions;
  match Sva_tyck.Poolcert.check ~config m b with
  | [] ->
      Printf.printf
        "\npool-safety evidence: %d certificates, %d recorded elisions, \
         all re-verified by the trusted checker\n"
        (Poolev.cert_count b) (Poolev.elision_count b)
  | errs ->
      Printf.printf "\npool-safety certificates REJECTED:\n";
      List.iter
        (fun e -> Printf.printf "  %s\n" (Sva_tyck.Poolcert.string_of_error e))
        errs;
      exit 1

let () =
  let mode, file, func =
    match Sys.argv with
    | [| _; "--ranges"; f |] -> (`Ranges, f, None)
    | [| _; "--ranges"; f; fn |] -> (`Ranges, f, Some fn)
    | [| _; "--races"; f |] -> (`Races, f, None)
    | [| _; "--races"; f; fn |] -> (`Races, f, Some fn)
    | [| _; "--poolcert"; f |] -> (`Poolcert, f, None)
    | [| _; "--poolcert"; f; fn |] -> (`Poolcert, f, Some fn)
    | [| _; f |] -> (`Pa, f, None)
    | [| _; f; fn |] -> (`Pa, f, Some fn)
    | _ ->
        prerr_endline
          "usage: pa_dump [--ranges | --races | --poolcert] FILE [FUNC]";
        exit 2
  in
  let m = Sva_pipeline.Pipeline.load_file file in
  let config =
    {
      Pointsto.default_config with
      Pointsto.syscall_register = Some "sva_register_syscall";
      syscall_invoke = Some "sva_syscall";
    }
  in
  (match mode with
  | `Ranges ->
      dump_ranges m config func;
      exit 0
  | `Races ->
      dump_races m config func;
      exit 0
  | `Poolcert ->
      dump_poolcert m config func;
      exit 0
  | `Pa -> ());
  let pa = Pointsto.run ~config m in
  let mps = Sva_safety.Metapool.infer m pa [] in
  print_endline "== points-to graph ==";
  print_string (Pointsto.dump pa);
  print_endline "\n== metapools ==";
  print_endline (Sva_safety.Metapool.to_string mps);
  let summary = Sva_safety.Checkinsert.run m pa mps [] in
  Printf.printf
    "\n== instrumentation ==\nls=%d bounds=%d (static-safe=%d) funcchecks=%d \
     regs=%d drops=%d promoted=%d\n\n"
    summary.Sva_safety.Checkinsert.ls_inserted
    summary.Sva_safety.Checkinsert.bounds_inserted
    summary.Sva_safety.Checkinsert.bounds_static
    summary.Sva_safety.Checkinsert.funcchecks_inserted
    summary.Sva_safety.Checkinsert.regs_inserted
    summary.Sva_safety.Checkinsert.drops_inserted
    summary.Sva_safety.Checkinsert.stack_promoted;
  match func with
  | Some fn -> (
      match Sva_ir.Irmod.find_func m fn with
      | Some f -> print_string (Sva_ir.Pp.string_of_func f)
      | None -> Printf.eprintf "no function @%s\n" fn)
  | None -> print_string (Sva_ir.Pp.string_of_module m)
