(* pa-dump: run the safety-checking compiler's analysis on a MiniC (or
   SVA bytecode) file and dump the points-to graph, metapool assignment
   and instrumented IR — the Figure 2 view for arbitrary input.

     pa_dump FILE [FUNC]

   With FUNC, only that function's IR is printed (the whole graph is
   always printed). *)

module Pointsto = Sva_analysis.Pointsto

let () =
  let file, func =
    match Sys.argv with
    | [| _; f |] -> (f, None)
    | [| _; f; fn |] -> (f, Some fn)
    | _ ->
        prerr_endline "usage: pa_dump FILE [FUNC]";
        exit 2
  in
  let m = Sva_pipeline.Pipeline.load_file file in
  let config =
    {
      Pointsto.default_config with
      Pointsto.syscall_register = Some "sva_register_syscall";
      syscall_invoke = Some "sva_syscall";
    }
  in
  let pa = Pointsto.run ~config m in
  let mps = Sva_safety.Metapool.infer m pa [] in
  print_endline "== points-to graph ==";
  print_string (Pointsto.dump pa);
  print_endline "\n== metapools ==";
  print_endline (Sva_safety.Metapool.to_string mps);
  let summary = Sva_safety.Checkinsert.run m pa mps [] in
  Printf.printf
    "\n== instrumentation ==\nls=%d bounds=%d (static-safe=%d) funcchecks=%d \
     regs=%d drops=%d promoted=%d\n\n"
    summary.Sva_safety.Checkinsert.ls_inserted
    summary.Sva_safety.Checkinsert.bounds_inserted
    summary.Sva_safety.Checkinsert.bounds_static
    summary.Sva_safety.Checkinsert.funcchecks_inserted
    summary.Sva_safety.Checkinsert.regs_inserted
    summary.Sva_safety.Checkinsert.drops_inserted
    summary.Sva_safety.Checkinsert.stack_promoted;
  match func with
  | Some fn -> (
      match Sva_ir.Irmod.find_func m fn with
      | Some f -> print_string (Sva_ir.Pp.string_of_func f)
      | None -> Printf.eprintf "no function @%s\n" fn)
  | None -> print_string (Sva_ir.Pp.string_of_module m)
