(* ukern-boot: boot the MiniC kernel on the SVM and run a smoke workload.

     ukern_boot [native|gcc|llvm|safe] [--engine=interp|tiered|aot]
                [--jit-threshold=N] [--tcache-dir=DIR] [--cpus=N]
                [--smp-seed=S] [--ranges] [--races] [--poolcert]
                [--trace[=N]] [--trace-out=FILE] [--profile]
                (default: safe, interp, 1 cpu)

   Prints the boot transcript, runs a small syscall workload, and reports
   instruction/cycle counts plus run-time check statistics (and the tier
   counters when a compiling engine is selected).  With --cpus=N > 1 the
   smoke workload is followed by a parallel section: the same syscall
   burst scheduled over the modeled CPUs by the seeded work-stealing
   scheduler, reporting per-CPU clocks, steals and IPIs.  With
   --trace/--profile the event-trace summary, per-metapool metrics and
   hot-function/syscall attribution are appended; --trace-out exports
   the trace as Chrome trace-event JSON. *)

module Boot = Ukern.Boot
module Pipeline = Sva_pipeline.Pipeline

let usage = "usage: ukern_boot [native|gcc|llvm|safe] \
             [--engine=interp|tiered|aot] [--jit-threshold=N] \
             [--tcache-dir=DIR] [--cpus=N] [--smp-seed=S] [--ranges] \
             [--races] [--poolcert] [--trace[=N]] [--trace-out=FILE] \
             [--profile]"

let conf_of_string = function
  | "native" -> Some Pipeline.Native
  | "gcc" -> Some Pipeline.Sva_gcc
  | "llvm" -> Some Pipeline.Sva_llvm
  | "safe" -> Some Pipeline.Sva_safe
  | _ -> None

(* An argument that is neither a configuration name nor a recognized
   flag is an error, not silently the default configuration. *)
let reject msg =
  prerr_endline msg;
  prerr_endline usage;
  exit 2

let () =
  let conf = ref Pipeline.Sva_safe in
  let engine = ref Pipeline.default_engine in
  let obs = ref Pipeline.default_obs in
  let smp = ref Pipeline.default_smp in
  let ranges = ref false in
  let races = ref false in
  let poolcert = ref false in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        if arg = "--ranges" then ranges := true
        else if arg = "--races" then races := true
        else if arg = "--poolcert" then poolcert := true
        else
          match
            match Pipeline.engine_flag !engine arg with
            | Some cfg ->
                engine := cfg;
                true
            | None -> (
                match Pipeline.obs_flag !obs arg with
                | Some o ->
                    obs := o;
                    true
                | None -> (
                    match Pipeline.smp_flag !smp arg with
                    | Some s ->
                        smp := s;
                        true
                    | None -> (
                        match conf_of_string arg with
                        | Some c ->
                            conf := c;
                            true
                        | None -> false)))
          with
          | true -> ()
          | false -> reject ("ukern_boot: unknown argument '" ^ arg ^ "'")
          | exception Invalid_argument msg -> reject ("ukern_boot: " ^ msg))
    Sys.argv;
  let conf = !conf and engine = !engine and obs = !obs and smp = !smp in
  let ranges = !ranges and races = !races and poolcert = !poolcert in
  (* Observability goes live before the build so build-time events
     (range-certified elisions) and boot are captured too. *)
  Pipeline.install_obs obs;
  Printf.printf "building %s kernel (%s engine%s%s%s)...\n%!"
    (Pipeline.conf_name conf)
    (Pipeline.engine_name engine.Pipeline.eng_kind)
    (if ranges then ", range elision" else "")
    (if races then ", concurrency audit" else "")
    (if poolcert then ", pool certification" else "");
  let t = Boot.boot ~conf ~engine ~smp ~ranges ~races ~poolcert () in
  Printf.printf "booted: kernel_booted=%Ld (%d instructions)\n"
    (Boot.kernel_global t "kernel_booted")
    (Boot.steps t);
  (* Range counters are build-time facts — snapshot them before the
     measurement boundary, which resets every counter family at once.
     (A check-only Stats.reset here used to leave boot-time promotions
     in the workload tier report.)  The tier counters are snapshotted
     too and merged back into the final report: under AOT the whole
     translation story (disk hits included) happens at instantiate,
     before this boundary. *)
  let range_stats = Sva_rt.Stats.read_range () in
  (* Same boundary rule for the pool-certification audit: the counts are
     build-time facts, and reset_all below would zero them before the
     report prints. *)
  let pool_stats = Sva_rt.Stats.read_pool () in
  let tier_boot = Sva_rt.Stats.read_tier () in
  Sva_rt.Stats.reset_all ();
  Boot.reset_cycles t;
  (* smoke workload: files, pipes, fork, sockets *)
  Printf.printf "getpid -> %Ld\n" (Boot.syscall t 1 []);
  Boot.write_user t 0 "smoke.txt\000";
  let fd = Boot.syscall t 4 [ Boot.user_addr t 0; 1L ] in
  Boot.write_user t 1024 "secure virtual architecture";
  Printf.printf "open -> %Ld, write -> %Ld\n" fd
    (Boot.syscall t 7 [ fd; Boot.user_addr t 1024; 27L ]);
  ignore (Boot.syscall t 20 [ fd; 0L; 0L ]);
  let r = Boot.syscall t 6 [ fd; Boot.user_addr t 2048; 64L ] in
  Printf.printf "read -> %Ld: %S\n" r (Boot.read_user t 2048 (Int64.to_int r));
  Printf.printf "fork -> %Ld\n" (Boot.syscall t 9 []);
  let sd = Boot.syscall t 14 [ 17L ] in
  ignore (Boot.syscall t 15 [ sd; 4242L ]);
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 4242l;
  Boot.inject_frame t ~proto:17 (Bytes.to_string hdr ^ "hello");
  ignore (Boot.syscall t 22 []);
  let n = Boot.syscall t 17 [ sd; Boot.user_addr t 4096; 64L ] in
  Printf.printf "socket roundtrip -> %Ld: %S\n" n
    (Boot.read_user t 4096 (Int64.to_int n));
  Printf.printf "workload: %d cycles\n" (Boot.cycles t);
  Printf.printf "checks:   %s\n" (Sva_rt.Stats.to_string (Sva_rt.Stats.read ()));
  if smp.Pipeline.smp_cpus > 1 then begin
    (* Parallel section: one syscall burst per job, scheduled over the
       modeled CPUs by the seeded work-stealing scheduler. *)
    let cpus = smp.Pipeline.smp_cpus in
    let jobs =
      List.init (4 * cpus) (fun _ () ->
          ignore (Boot.syscall t 1 []);
          ignore (Boot.syscall t 11 [ 0L ]))
    in
    let st = Boot.run_smp t ~cpus ~seed:smp.Pipeline.smp_seed jobs in
    Printf.printf
      "smp:      %d cpus, %d jobs (seed %d): makespan %dcy, parallel \
       efficiency %.2fx, %d steals, ipi=%d/%d\n"
      st.Boot.ss_cpus st.Boot.ss_jobs smp.Pipeline.smp_seed
      st.Boot.ss_makespan
      (if st.Boot.ss_makespan > 0 then
         float_of_int st.Boot.ss_total /. float_of_int st.Boot.ss_makespan
       else 0.0)
      st.Boot.ss_steals st.Boot.ss_ipis_delivered st.Boot.ss_ipis_sent;
    Array.iteri
      (fun i c ->
        Printf.printf "          cpu%d: %dcy, %d jobs\n" i c
          st.Boot.ss_jobs_per.(i))
      st.Boot.ss_cycles
  end;
  if engine.Pipeline.eng_kind <> Pipeline.Interp then begin
    let b = tier_boot and w = Sva_rt.Stats.read_tier () in
    let tier =
      {
        Sva_rt.Stats.promotions = b.Sva_rt.Stats.promotions + w.Sva_rt.Stats.promotions;
        tcache_hits = b.Sva_rt.Stats.tcache_hits + w.Sva_rt.Stats.tcache_hits;
        tcache_misses = b.Sva_rt.Stats.tcache_misses + w.Sva_rt.Stats.tcache_misses;
        sig_verifications =
          b.Sva_rt.Stats.sig_verifications + w.Sva_rt.Stats.sig_verifications;
        tcache_disk_hits =
          b.Sva_rt.Stats.tcache_disk_hits + w.Sva_rt.Stats.tcache_disk_hits;
        tcache_disk_stale =
          b.Sva_rt.Stats.tcache_disk_stale + w.Sva_rt.Stats.tcache_disk_stale;
        tcache_disk_writes =
          b.Sva_rt.Stats.tcache_disk_writes + w.Sva_rt.Stats.tcache_disk_writes;
        superblocks = b.Sva_rt.Stats.superblocks + w.Sva_rt.Stats.superblocks;
      }
    in
    Printf.printf "tiered:   %s\n" (Sva_rt.Stats.tier_to_string tier)
  end;
  if ranges then
    Printf.printf "ranges:   %s\n" (Sva_rt.Stats.range_to_string range_stats);
  if poolcert then begin
    Printf.printf "poolcert: %s\n" (Sva_rt.Stats.pool_to_string pool_stats);
    match t.Boot.built.Pipeline.bl_poolcert with
    | Some b ->
        Printf.printf
          "          %d TH + %d completeness + %d devirt certificates, \
           all re-verified by the trusted checker\n"
          (List.length b.Sva_safety.Poolev.pb_th)
          (List.length b.Sva_safety.Poolev.pb_comp)
          (List.length b.Sva_safety.Poolev.pb_dv)
    | None -> ()
  end;
  if races then begin
    Printf.printf "conc:     %s\n"
      (Sva_rt.Stats.conc_to_string (Sva_rt.Stats.read_conc ()));
    match t.Boot.built.Pipeline.bl_races with
    | Some r ->
        Printf.printf
          "races:    %d findings; %d shared classes, %d certified accesses\n"
          (List.length (Sva_analysis.Lockset.findings r))
          (Sva_analysis.Lockset.shared_count r)
          (Sva_analysis.Lockset.cert_count r)
    | None -> ()
  end;
  if Sva_rt.Trace.enabled () then begin
    print_string (Harness.Traceout.summary_table ());
    print_string
      (Harness.Traceout.pool_metrics_table
         (List.filter
            (fun (m : Sva_rt.Metapool_rt.metrics) ->
              m.Sva_rt.Metapool_rt.m_regs > 0
              || m.Sva_rt.Metapool_rt.m_lookups > 0)
            (List.map
               (fun (_, mp) -> Sva_rt.Metapool_rt.metrics mp)
               (Sva_interp.Interp.metapools t.Boot.vm))));
    match obs.Pipeline.obs_trace_out with
    | Some path ->
        Harness.Traceout.write_chrome path;
        Printf.printf "trace:    %d events -> %s\n"
          (List.length (Sva_rt.Trace.events ()))
          path
    | None -> ()
  end;
  if !Sva_rt.Trace.profiling then
    print_string (Harness.Traceout.profile_table ())
