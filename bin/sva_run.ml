(* sva-run: compile a MiniC source file through the SVA pipeline and
   execute a function on the SVM.  SVA bytecode input (recognized by its
   magic) skips the front end; note that bytecode emitted from a safe
   build is already instrumented, so run such files under `--conf llvm`
   to avoid inserting a second set of checks.

     sva_run FILE [-f FUNC] [-a INT]... [--conf native|gcc|llvm|safe]
             [--engine interp|tiered|aot] [--jit-threshold N]
             [--tcache-dir DIR] [--ranges]
             [--trace[=N]] [--trace-out FILE] [--profile]
             [--dump-ir] [--emit-bytecode OUT]

   The default entry point is `main`.  Under `--conf safe` (the default)
   the full safety-checking pipeline runs: points-to analysis, metapool
   inference, metapool type checking, and run-time check insertion; a
   safety violation terminates with a diagnostic and exit code 2. *)

open Cmdliner
module Pipeline = Sva_pipeline.Pipeline

let conf_of_string = function
  | "native" -> Pipeline.Native
  | "gcc" -> Pipeline.Sva_gcc
  | "llvm" -> Pipeline.Sva_llvm
  | "safe" -> Pipeline.Sva_safe
  | s -> failwith ("unknown configuration " ^ s)

let engine_of_string = function
  | "interp" -> Pipeline.Interp
  | "tiered" -> Pipeline.Tiered
  | "aot" -> Pipeline.Aot
  | s -> failwith ("unknown engine " ^ s)

let run file func args conf_name engine_name jit_threshold tcache_dir ranges
    trace trace_out profile dump_ir emit_bytecode =
  let source = In_channel.with_open_bin file In_channel.input_all in
  let conf = conf_of_string conf_name in
  let engine =
    {
      Pipeline.eng_kind = engine_of_string engine_name;
      eng_threshold = jit_threshold;
      eng_tcache_dir = tcache_dir;
    }
  in
  let obs =
    {
      Pipeline.obs_trace =
        (match (trace, trace_out) with
        | Some cap, _ -> Some cap
        | None, Some _ -> Some Sva_rt.Trace.default_capacity
        | None, None -> None);
      obs_trace_out = trace_out;
      obs_profile = profile;
    }
  in
  Pipeline.install_obs obs;
  let name = Filename.basename file in
  match
    if Pipeline.is_bytecode source then
      Pipeline.build_module ~conf ~ranges ~name
        (Pipeline.load_source ~name source)
    else Pipeline.build ~conf ~ranges ~name [ source ]
  with
  | exception Minic.Parser.Parse_error (msg, loc) ->
      Printf.eprintf "%s:%d:%d: parse error: %s\n" file loc.Minic.Token.line
        loc.Minic.Token.col msg;
      exit 1
  | exception Minic.Lower.Lower_error msg ->
      Printf.eprintf "%s: error: %s\n" file msg;
      exit 1
  | built -> (
      if dump_ir then print_string (Sva_ir.Pp.string_of_module built.Pipeline.bl_mod);
      (match emit_bytecode with
      | Some out ->
          let entry = Sva_bytecode.Signing.sign built.Pipeline.bl_mod in
          Out_channel.with_open_bin out (fun oc ->
              Out_channel.output_string oc entry.Sva_bytecode.Signing.ce_bytecode);
          Printf.printf "bytecode: %s (%d bytes, sha256 %s)\n" out
            (String.length entry.Sva_bytecode.Signing.ce_bytecode)
            (Sva_bytecode.Sha256.hex entry.Sva_bytecode.Signing.ce_bytecode)
      | None -> ());
      let vm = Pipeline.instantiate ~engine built in
      let report_tier () =
        if engine.Pipeline.eng_kind <> Pipeline.Interp then
          Printf.printf "tiered:   %s\n"
            (Sva_rt.Stats.tier_to_string (Sva_rt.Stats.read_tier ()));
        if ranges then
          Printf.printf "ranges:   %s\n"
            (Sva_rt.Stats.range_to_string (Sva_rt.Stats.read_range ()))
      in
      (* Emitted on every outcome: the trace is most useful when the run
         ended in a violation. *)
      let report_obs () =
        if Sva_rt.Trace.enabled () then begin
          print_string (Harness.Traceout.summary_table ());
          match obs.Pipeline.obs_trace_out with
          | Some path ->
              Harness.Traceout.write_chrome path;
              Printf.printf "trace:    %d events -> %s\n"
                (List.length (Sva_rt.Trace.events ()))
                path
          | None -> ()
        end;
        if !Sva_rt.Trace.profiling then
          print_string (Harness.Traceout.profile_table ())
      in
      match Sva_interp.Interp.call vm func (List.map Int64.of_int args) with
      | Some v ->
          Printf.printf "%s(%s) = %Ld   [%d instructions, %d cycles]\n" func
            (String.concat ", " (List.map string_of_int args))
            v
            (Sva_interp.Interp.steps vm)
            (Sva_interp.Interp.cycles vm);
          report_tier ();
          report_obs ();
          exit 0
      | None ->
          Printf.printf "%s returned void\n" func;
          report_tier ();
          report_obs ();
          exit 0
      | exception Sva_rt.Violation.Safety_violation v ->
          Printf.eprintf "%s\n" (Sva_rt.Violation.to_string v);
          report_obs ();
          exit 2
      | exception Sva_interp.Interp.Vm_error msg ->
          Printf.eprintf "vm error: %s\n" msg;
          report_obs ();
          exit 3)

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let func =
  Arg.(value & opt string "main" & info [ "f"; "function" ] ~docv:"FUNC")

let args = Arg.(value & opt_all int [] & info [ "a"; "arg" ] ~docv:"INT")

let conf =
  Arg.(value & opt string "safe" & info [ "conf" ] ~docv:"CONF"
         ~doc:"Pipeline configuration: native, gcc, llvm or safe.")

let engine =
  Arg.(value & opt string "interp" & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Execution engine: interp (pre-decoded interpreter), \
               tiered (closure-compiled hot functions with a signed \
               translation cache) or aot (whole-kernel closure \
               compilation at instantiate time, no warmup).")

let jit_threshold =
  Arg.(value & opt int Pipeline.default_jit_threshold
       & info [ "jit-threshold" ] ~docv:"N"
           ~doc:"Calls before the tiered engine promotes a function.")

let tcache_dir =
  Arg.(value & opt (some string) None
       & info [ "tcache-dir" ] ~docv:"DIR"
           ~doc:"Persist signed translations in $(docv): entries are \
                 re-verified against the SVM key on load, so a second \
                 process starts with a hot translation cache while \
                 tampered or stale files merely re-translate.")

let ranges =
  Arg.(value & flag & info [ "ranges" ]
         ~doc:"Run the value-range analysis and elide checks on verified \
               interval certificates (safe configuration only).")

let trace =
  Arg.(value
       & opt ~vopt:(Some Sva_rt.Trace.default_capacity) (some int) None
       & info [ "trace" ] ~docv:"N"
           ~doc:"Record runtime events (checks, violations, object \
                 registration, SVA-OS operations, tier activity) into a \
                 ring buffer of $(docv) entries (default 4096) and print \
                 a summary.  Semantically invisible: results, verdicts \
                 and modeled cycles are unchanged.")

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the recorded trace as Chrome trace-event JSON to \
                 $(docv) (implies $(b,--trace)).")

let profile =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Attribute modeled cycles and check counts to functions \
                 and print a top-N hot report.")

let dump_ir = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the final IR.")

let emit_bytecode =
  Arg.(value & opt (some string) None & info [ "emit-bytecode" ] ~docv:"OUT")

let cmd =
  Cmd.v
    (Cmd.info "sva_run"
       ~doc:"Compile MiniC through the SVA safety pipeline and execute it")
    Term.(
      const run $ file $ func $ args $ conf $ engine $ jit_threshold
      $ tcache_dir $ ranges $ trace $ trace_out $ profile $ dump_ir
      $ emit_bytecode)

(* Unknown or malformed flags print usage and exit 2, like the other
   SVA binaries. *)
let () = exit (Cmd.eval ~term_err:2 cmd)
