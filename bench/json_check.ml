(* Consumes the bench --json output back through the harness JSON parser
   and checks each section's shape — the regression gate that keeps the
   machine-readable results file well-formed.

     json_check FILE [SECTION]...

   Every section present in FILE is validated; the SECTION arguments
   additionally require those sections to be present (a json run that
   silently dropped a section must not pass the gate). *)

module J = Harness.Jsonout

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let get name = function
  | Some v -> v
  | None -> fail "missing field %s" name

(* one summary fragment per validated section, printed at the end *)
let summaries : string list ref = ref []
let note fmt = Printf.ksprintf (fun s -> summaries := s :: !summaries) fmt

let check_lint path lint =
  let findings = get "lint.findings" (J.member "findings" lint) in
  (match findings with
  | J.Obj fields ->
      List.iter
        (fun (checker, v) ->
          if J.to_int v <> 0 then
            fail "%s: clean kernel has %d %s findings" path (J.to_int v) checker)
        fields
  | _ -> fail "%s: lint.findings is not an object" path);
  let proofs = J.to_int (get "lint.accesses-proved-safe" (J.member "accesses-proved-safe" lint)) in
  if proofs <= 0 then fail "%s: prover found no safe accesses" path;
  let ls = get "lint.ls-checks" (J.member "ls-checks" lint) in
  let field k = J.to_int (get ("lint.ls-checks." ^ k) (J.member k ls)) in
  let off = field "lint-off" and on = field "lint-on" and proved = field "proved-static" in
  if off - on <> proved then
    fail "%s: check reduction %d-%d does not match proved-static %d" path off on proved;
  note "%d accesses proved, %d checks elided" proofs proved

(* the second tier must be semantically invisible (the modeled numbers
   agree bit-for-bit across engines) and faster *)
let check_tiered path tiered =
  let pair section =
    let o = get ("tiered." ^ section) (J.member section tiered) in
    ( get (section ^ ".interp") (J.member "interp" o),
      get (section ^ ".tiered") (J.member "tiered" o) )
  in
  let ci, ct = pair "cycles-per-op" in
  if J.to_float ci <> J.to_float ct then
    fail "%s: tiered engine changed modeled cycles (%f vs %f)" path
      (J.to_float ci) (J.to_float ct);
  let ki, kt = pair "checks-per-op" in
  if J.to_int ki <> J.to_int kt then
    fail "%s: tiered engine changed check counts (%d vs %d)" path
      (J.to_int ki) (J.to_int kt);
  let speedup = J.to_float (get "tiered.host-speedup" (J.member "host-speedup" tiered)) in
  if speedup <= 0.0 then fail "%s: tiered host-speedup %f not positive" path speedup;
  let promos = J.to_int (get "tiered.promotions" (J.member "promotions" tiered)) in
  if promos <= 0 then fail "%s: tiered engine promoted no functions" path;
  note "tiered %.2fx" speedup

(* whole-kernel AOT against a warm persistent store: bit-identical to
   the interpreter, every translation reused from disk, none redone *)
let check_aot path aot =
  let triple section =
    let o = get ("aot." ^ section) (J.member section aot) in
    ( get (section ^ ".interp") (J.member "interp" o),
      get (section ^ ".aot") (J.member "aot" o) )
  in
  let ci, ca = triple "cycles-per-op" in
  if J.to_float ci <> J.to_float ca then
    fail "%s: aot engine changed modeled cycles (%f vs %f)" path
      (J.to_float ci) (J.to_float ca);
  let si, sa = triple "steps-per-op" in
  if J.to_float si <> J.to_float sa then
    fail "%s: aot engine changed step counts (%f vs %f)" path
      (J.to_float si) (J.to_float sa);
  let ki, ka = triple "checks-per-op" in
  if J.to_int ki <> J.to_int ka then
    fail "%s: aot engine changed check counts (%d vs %d)" path
      (J.to_int ki) (J.to_int ka);
  let speedup = J.to_float (get "aot.host-speedup" (J.member "host-speedup" aot)) in
  if speedup <= 0.0 then fail "%s: aot host-speedup %f not positive" path speedup;
  let compiled =
    J.to_int (get "aot.functions-compiled" (J.member "functions-compiled" aot))
  in
  if compiled <= 0 then fail "%s: aot engine compiled no functions" path;
  let disk = get "aot.disk-cache" (J.member "disk-cache" aot) in
  let dint k = J.to_int (get ("aot.disk-cache." ^ k) (J.member k disk)) in
  if dint "writes-cold" <= 0 then
    fail "%s: cold aot boot persisted no translations" path;
  let hits = dint "hits-warm" in
  if hits < 1 then fail "%s: warm aot boot reused no translations" path;
  let misses = dint "misses-warm" in
  if misses <> 0 then
    fail "%s: warm aot boot re-translated %d functions" path misses;
  let supers = J.to_int (get "aot.superblocks" (J.member "superblocks" aot)) in
  if supers <= 0 then fail "%s: aot translator formed no superblocks" path;
  note "aot %.2fx (%d fns, %d disk hits, %d superblocks)" speedup compiled
    hits supers

(* the SMP schedule must be deterministic and semantically invisible:
   1 CPU bit-identical to the sequential run, aggregate check counts
   identical at every CPU count, the same-seed rerun reproduced, and
   the 4-CPU makespan clearing the scaling floor *)
let check_smp path smp =
  let seq = get "smp.sequential" (J.member "sequential" smp) in
  let seq_checks =
    J.to_int (get "smp.sequential.checks" (J.member "checks" seq))
  in
  let points = J.to_list (get "smp.points" (J.member "points" smp)) in
  if points = [] then fail "%s: smp.points is empty" path;
  let speedup4 = ref 0.0 in
  List.iter
    (fun p ->
      let pint k = J.to_int (get ("smp.points[]." ^ k) (J.member k p)) in
      let cpus = pint "cpus" in
      if pint "checks" <> seq_checks then
        fail "%s: check count diverged at %d CPUs (%d vs %d)" path cpus
          (pint "checks") seq_checks;
      if pint "makespan-cycles" <= 0 then
        fail "%s: non-positive makespan at %d CPUs" path cpus;
      let sp =
        J.to_float (get "smp.points[].speedup" (J.member "speedup" p))
      in
      if cpus = 4 then speedup4 := sp)
    points;
  if !speedup4 < 3.0 then
    fail "%s: 4-CPU speedup %.2fx below the 3x floor" path !speedup4;
  let gate name =
    match get ("smp." ^ name) (J.member name smp) with
    | J.Bool true -> ()
    | J.Bool false -> fail "%s: smp gate %s failed" path name
    | _ -> fail "%s: smp.%s is not a bool" path name
  in
  gate "single-cpu-identical";
  gate "rerun-identical";
  note "smp %.2fx @ 4 cpus" !speedup4

(* certified elision must only ever remove checks, the bounds drop must
   equal the certified-gep count, and the build-time certificate gate
   must have re-verified the bundle *)
let check_ranges path ranges =
  let rint sec k =
    let o = get ("ranges." ^ sec) (J.member sec ranges) in
    J.to_int (get ("ranges." ^ sec ^ "." ^ k) (J.member k o))
  in
  let ls_off = rint "ls-checks" "ranges-off"
  and ls_on = rint "ls-checks" "ranges-on" in
  if ls_on >= ls_off then
    fail "%s: range elision did not reduce ls checks (%d -> %d)" path ls_off
      ls_on;
  let b_off = rint "bounds-checks" "ranges-off"
  and b_on = rint "bounds-checks" "ranges-on"
  and b_cert = rint "bounds-checks" "cert-elided" in
  if b_off - b_on <> b_cert then
    fail "%s: bounds reduction %d-%d does not match certified geps %d" path
      b_off b_on b_cert;
  let certs = get "ranges.certificates" (J.member "certificates" ranges) in
  (match J.member "verified" certs with
  | Some (J.Bool true) -> ()
  | _ -> fail "%s: range certificates not marked verified" path);
  if rint "certificates" "bounds" + rint "certificates" "lscheck" <= 0 then
    fail "%s: range analysis emitted no certificates" path;
  note "range ls %d->%d bounds %d->%d" ls_off ls_on b_off b_on

(* the shipped kernel must audit clean, every atomicity certificate must
   have re-verified, the seeded-bug fixture must match its ground truth
   exactly, the certificate-injection experiment must catch every
   corruption, and the workload must have exercised the spinlock ops
   (balanced with their releases) *)
let check_race path race =
  (match get "race.findings" (J.member "findings" race) with
  | J.Obj fields ->
      List.iter
        (fun (checker, v) ->
          if J.to_int v <> 0 then
            fail "%s: clean kernel has %d %s findings" path (J.to_int v)
              checker)
        fields
  | _ -> fail "%s: race.findings is not an object" path);
  let acerts = get "race.certificates" (J.member "certificates" race) in
  (match J.member "verified" acerts with
  | Some (J.Bool true) -> ()
  | _ -> fail "%s: atomicity certificates not marked verified" path);
  let n_acerts =
    J.to_int (get "race.certificates.access" (J.member "access" acerts))
  in
  if n_acerts <= 0 then
    fail "%s: concurrency pass certified no accesses" path;
  let fixture = get "race.fixture" (J.member "fixture" race) in
  (match J.member "exact-match" fixture with
  | Some (J.Bool true) -> ()
  | _ -> fail "%s: race fixture diverged from its seeded ground truth" path);
  let inj = get "race.injection" (J.member "injection" race) in
  let injected =
    J.to_int (get "race.injection.injected" (J.member "injected" inj))
  and inj_caught =
    J.to_int (get "race.injection.caught" (J.member "caught" inj))
  in
  if injected <= 0 || inj_caught <> injected then
    fail "%s: atomicity-certificate injection caught %d/%d bugs" path
      inj_caught injected;
  let conc = get "race.conc" (J.member "conc" race) in
  let cint k = J.to_int (get ("race.conc." ^ k) (J.member k conc)) in
  let acq = cint "lock-acquires" in
  if acq <= 0 then fail "%s: workload executed no sva_lock_acquire" path;
  if acq <> cint "lock-releases" || cint "cli" <> cint "sti" then
    fail "%s: workload conc ops are unbalanced" path;
  note "race %d certs %d/%d injections" n_acerts inj_caught injected

(* pool-safety certification must be pure observation (summary, cycles
   and check counters bit-identical with certification on), the trusted
   checker must have verified the clean-kernel bundle, at least one TH
   certificate and one elision must exist, and the certificate-injection
   experiment must catch every corruption *)
let check_poolcert path pc =
  let certs = get "poolcert.certificates" (J.member "certificates" pc) in
  (match J.member "verified" certs with
  | Some (J.Bool true) -> ()
  | _ -> fail "%s: pool-safety certificates not marked verified" path);
  let cint k = J.to_int (get ("poolcert.certificates." ^ k) (J.member k certs)) in
  if cint "errors" <> 0 then
    fail "%s: trusted checker rejected %d-error pool bundle" path
      (cint "errors");
  if cint "th" <= 0 then fail "%s: no pool was certified TH" path;
  let el = get "poolcert.elisions" (J.member "elisions" pc) in
  let eint k = J.to_int (get ("poolcert.elisions." ^ k) (J.member k el)) in
  let elided = eint "th" + eint "reduced" + eint "funccheck" in
  if elided <= 0 then fail "%s: no check elision was recorded" path;
  let bi = get "poolcert.bit-identity" (J.member "bit-identity" pc) in
  (match J.member "summary-match" bi with
  | Some (J.Bool true) -> ()
  | _ -> fail "%s: instrumentation summary diverges under certification" path);
  (match J.member "checks-match" bi with
  | Some (J.Bool true) -> ()
  | _ -> fail "%s: check counters diverge under certification" path);
  let pair k =
    let o = get ("poolcert.bit-identity." ^ k) (J.member k bi) in
    ( J.to_int (get (k ^ ".off") (J.member "off" o)),
      J.to_int (get (k ^ ".on") (J.member "on" o)) )
  in
  let b_off, b_on = pair "boot-cycles" in
  if b_off <> b_on then
    fail "%s: certification changed boot cycles (%d vs %d)" path b_off b_on;
  let w_off, w_on = pair "workload-cycles" in
  if w_off <> w_on then
    fail "%s: certification changed workload cycles (%d vs %d)" path w_off
      w_on;
  let inj = get "poolcert.injection" (J.member "injection" pc) in
  let injected =
    J.to_int (get "poolcert.injection.injected" (J.member "injected" inj))
  and inj_caught =
    J.to_int (get "poolcert.injection.caught" (J.member "caught" inj))
  in
  if injected <= 0 || inj_caught <> injected then
    fail "%s: pool-certificate injection caught %d/%d bugs" path inj_caught
      injected;
  note "poolcert %d TH certs %d elisions %d/%d injections" (cint "th") elided
    inj_caught injected

(* the observability layer must be semantically invisible (obs-on and
   obs-off agree bit-for-bit), must actually record events, must
   attribute >= 95% of modeled cycles to syscall scopes, and its Chrome
   export must be well-formed trace-event JSON *)
let check_trace path trace =
  let inv = get "trace.invariance" (J.member "invariance" trace) in
  let inv_pair k =
    let o = get ("trace.invariance." ^ k) (J.member k inv) in
    ( J.to_int (get (k ^ ".obs-off") (J.member "obs-off" o)),
      J.to_int (get (k ^ ".obs-on") (J.member "obs-on" o)) )
  in
  let cyc_off, cyc_on = inv_pair "cycles" in
  if cyc_off <> cyc_on then
    fail "%s: tracing changed modeled cycles (%d vs %d)" path cyc_off cyc_on;
  let chk_off, chk_on = inv_pair "checks" in
  if chk_off <> chk_on then
    fail "%s: tracing changed check counts (%d vs %d)" path chk_off chk_on;
  let tevents = get "trace.events" (J.member "events" trace) in
  let emitted =
    J.to_int (get "trace.events.emitted" (J.member "emitted" tevents))
  in
  let retained =
    J.to_int (get "trace.events.retained" (J.member "retained" tevents))
  in
  let dropped =
    J.to_int (get "trace.events.dropped" (J.member "dropped" tevents))
  in
  if emitted <= 0 then fail "%s: trace recorded no events" path;
  if retained + dropped <> emitted then
    fail "%s: trace accounting drift (%d retained + %d dropped <> %d emitted)"
      path retained dropped emitted;
  let attr =
    J.to_float (get "trace.attribution-pct" (J.member "attribution-pct" trace))
  in
  if attr < 95.0 then
    fail "%s: profiler attributed only %.1f%% of cycles to syscalls" path attr;
  let chrome = get "trace.chrome" (J.member "chrome" trace) in
  let tev =
    J.to_list (get "trace.chrome.traceEvents" (J.member "traceEvents" chrome))
  in
  if List.length tev <> retained then
    fail "%s: chrome export has %d events, trace retained %d" path
      (List.length tev) retained;
  let balance = ref 0 in
  List.iter
    (fun ev ->
      let s k = J.to_string (get ("traceEvents[]." ^ k) (J.member k ev)) in
      ignore (J.to_int (get "traceEvents[].ts" (J.member "ts" ev)));
      ignore (s "name");
      (match s "ph" with
      | "B" -> incr balance
      | "E" -> decr balance
      | "i" -> ()
      | ph -> fail "%s: unexpected trace-event phase %S" path ph);
      if !balance < 0 then
        fail "%s: trace-event E without matching B" path)
    tev;
  (* The ring may truncate the oldest events, so an unmatched trailing B
     is possible only under drop; with no drops the spans must pair. *)
  if dropped = 0 && !balance <> 0 then
    fail "%s: %d unmatched B trace-events" path !balance;
  note "trace %d events %.1f%% attributed" emitted attr

let checkers =
  [
    ("lint", check_lint);
    ("smp", check_smp);
    ("tiered", check_tiered);
    ("aot", check_aot);
    ("ranges", check_ranges);
    ("race", check_race);
    ("poolcert", check_poolcert);
    ("trace", check_trace);
  ]

let () =
  if Array.length Sys.argv < 2 then fail "usage: json_check FILE [SECTION]...";
  let path = Sys.argv.(1) in
  let required =
    Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
  in
  List.iter
    (fun s ->
      if not (List.mem_assoc s checkers) then
        fail "json_check: no validator for section '%s' (known: %s)" s
          (String.concat " " (List.map fst checkers)))
    required;
  let text = In_channel.with_open_bin path In_channel.input_all in
  let doc = try J.parse text with J.Parse_error m -> fail "%s: %s" path m in
  (* round-trip: emitting and re-parsing must reproduce the document *)
  if J.parse (J.emit doc) <> doc then fail "%s: emit/parse round-trip drifted" path;
  List.iter
    (fun s ->
      match J.member s doc with
      | Some _ -> ()
      | None -> fail "%s: required section '%s' missing" path s)
    required;
  let checked =
    List.filter_map
      (fun (name, check) ->
        match J.member name doc with
        | Some section ->
            check path section;
            Some name
        | None -> None)
      checkers
  in
  if checked = [] then fail "%s: no recognized sections to validate" path;
  Printf.printf "%s: OK [%s] (%s)\n" path
    (String.concat " " checked)
    (String.concat ", " (List.rev !summaries))
