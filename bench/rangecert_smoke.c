/* bench-smoke input for sva_verify --rangecert: loop-guarded and
   clamp-guarded variable indexing the interval analysis certifies. */
int tbl[64];
long clamp(long v) {
  if (v < 0) return 0;
  if (v > 63) return 63;
  return v;
}
int read_at(long v) { long j = clamp(v); return tbl[j]; }
int kmain(void) {
  long s = 0;
  for (long i = 0; i < 64; i = i + 1) tbl[i] = (int)i;
  for (long i = 0; i < 64; i = i + 1) s = s + tbl[i];
  s = s + read_at(5) + read_at(60);
  return (int)s;
}
