(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 7) against the MiniC kernel running on the
   SVM, and cross-checks the deterministic cycle model against wall-clock
   measurements taken with Bechamel.

   Usage:
     dune exec bench/main.exe            -- everything (a few minutes)
     dune exec bench/main.exe -- --quick -- reduced repetition counts
     dune exec bench/main.exe -- table7  -- a single experiment by name
     dune exec bench/main.exe -- --json out.json
                                         -- also write machine-readable
                                            numbers for the data-bearing
                                            sections (fastpath, smp,
                                            tiered, aot, table7, lint,
                                            ranges, race, poolcert,
                                            trace) that were run

   Unknown flags and unknown section names are errors (exit 2): a typo
   must not silently select nothing and report success.  A section that
   fails makes the run exit nonzero even without --strict; --strict
   additionally stops at the first failure. *)

module Tables = Harness.Tables
module Pipeline = Sva_pipeline.Pipeline
module Boot = Ukern.Boot

let quick = ref false
let strict = ref false
let json_out : string option ref = ref None
let only : string list ref = ref []

(* Every runnable section name; positional arguments are validated
   against this list.  Must match the [section] calls below. *)
let known_sections =
  [
    "table4"; "figure2"; "checks"; "lint"; "ranges"; "race"; "poolcert";
    "table7"; "table8"; "table5"; "table6"; "table9"; "ablation"; "fastpath";
    "smp"; "tiered"; "aot"; "trace"; "exploits"; "verifier"; "bechamel";
  ]

let usage () =
  Printf.eprintf
    "usage: bench [SECTION]... [--quick] [--strict] [--json FILE]\n\
     sections: %s\n"
    (String.concat " " known_sections)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench: %s\n" msg;
      usage ();
      exit 2)
    fmt

let () =
  let argc = Array.length Sys.argv in
  let i = ref 1 in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--quick" -> quick := true
    | "--strict" -> strict := true
    | "--json" ->
        if !i + 1 < argc then begin
          incr i;
          json_out := Some Sys.argv.(!i)
        end
        else die "--json requires a file argument"
    | s when String.length s > 0 && s.[0] = '-' -> die "unknown flag '%s'" s
    | s when List.mem s known_sections -> only := s :: !only
    | s -> die "unknown section '%s'" s);
    incr i
  done

let wanted name = !only = [] || List.mem name !only

(* Sections that printed a failure; a nonempty list means a nonzero exit
   even without --strict (which instead stops at the first failure). *)
let failed_sections : string list ref = ref []

let section name f =
  if wanted name then begin
    Printf.printf "\n";
    (* Measurement boundary: the closure-compiler's translation cache and
       tier counters are process globals, so a section that warmed the
       second tier must not hand the next section pre-promoted functions
       or inflated counters. *)
    Sva_interp.Closcomp.clear_cache ();
    Sva_rt.Stats.reset_tier ();
    (try print_string (f ())
     with e ->
       Printf.printf "!! %s failed: %s\n" name (Printexc.to_string e);
       failed_sections := name :: !failed_sections;
       if !strict then begin
         flush stdout;
         exit 1
       end);
    flush stdout
  end

(* ---------- Bechamel wall-clock cross-check ----------

   One Bechamel test per performance table: the representative operation
   of that table, on the native and fully-checked kernels.  The cycle
   model drives the tables; this verifies real elapsed time moves in the
   same direction. *)

let bechamel_crosscheck () =
  let open Bechamel in
  let mk_kernel conf =
    let b = Ukern.Kbuild.build ~conf Ukern.Kbuild.as_tested in
    let t = Boot.boot_built b ~variant:Ukern.Kbuild.as_tested in
    let ctx = Harness.Workloads.prepare t in
    Harness.Workloads.http_setup ctx;
    ctx
  in
  let native = mk_kernel Pipeline.Native in
  let safe = mk_kernel Pipeline.Sva_safe in
  let tests =
    [
      (* Table 7 representative: the open/close latency pair. *)
      Test.make ~name:"table7/open-close/native"
        (Staged.stage (fun () -> Harness.Workloads.op_open_close native));
      Test.make ~name:"table7/open-close/sva-safe"
        (Staged.stage (fun () -> Harness.Workloads.op_open_close safe));
      (* Table 8 representative: 32k pipe streaming. *)
      Test.make ~name:"table8/pipe-32k/native"
        (Staged.stage (fun () -> Harness.Workloads.op_pipe_stream native 32768));
      Test.make ~name:"table8/pipe-32k/sva-safe"
        (Staged.stage (fun () -> Harness.Workloads.op_pipe_stream safe 32768));
      (* Tables 5/6 representative: one small-file HTTP request. *)
      Test.make ~name:"table5-6/thttpd-311B/native"
        (Staged.stage (fun () ->
             ignore
               (Harness.Workloads.serve_http_request native ~file:"www.311"
                  ~cgi:false)));
      Test.make ~name:"table5-6/thttpd-311B/sva-safe"
        (Staged.stage (fun () ->
             ignore
               (Harness.Workloads.serve_http_request safe ~file:"www.311"
                  ~cgi:false)));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if !quick then 0.25 else 0.75))
      ~stabilize:false ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let analyze = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "== Wall-clock cross-check (Bechamel, monotonic clock) ==\n\
     The tables above use the deterministic cycle model; these are real\n\
     elapsed-time estimates for one representative operation per table.\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols = Analyze.all analyze Toolkit.Instance.monotonic_clock results in
      (* Hashtbl iteration order is unspecified — sort by test name so
         the report (and any diff against it) is deterministic. *)
      let rows =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) ols [])
      in
      List.iter
        (fun (name, o) ->
          match Analyze.OLS.estimates o with
          | Some (est :: _) ->
              Buffer.add_string buf
                (Printf.sprintf "  %-32s %12.0f ns/op (OLS)\n" name est)
          | _ ->
              Buffer.add_string buf
                (Printf.sprintf "  %-32s (no estimate)\n" name))
        rows)
    tests;
  (* independent median-of-batches measurement of the same headline pair *)
  let med name f =
    let s = Harness.Timing.measure ~batches:5 ~reps:(if !quick then 20 else 60) f in
    Buffer.add_string buf
      (Printf.sprintf "  %-32s %12.0f ns/op (median)\n" name
         s.Harness.Timing.s_per_op_ns)
  in
  med "open-close/native" (fun () -> Harness.Workloads.op_open_close native);
  med "open-close/sva-safe" (fun () -> Harness.Workloads.op_open_close safe);
  (* Fast-path A/B: the same checked kernel with the object-lookup cache
     off and on.  The cycle-model fastpath table covers both fast-path
     layers; this isolates the cache's real elapsed-time effect (the
     pre-decoded dispatch is always on). *)
  let with_cache on f =
    (* Caching is per-pool state (no process-global switch): flip the
       checked kernel's own pools and restore them afterwards. *)
    let pools =
      Sva_interp.Interp.metapools (Harness.Workloads.kernel safe).Boot.vm
    in
    let set b =
      List.iter (fun (_, mp) -> Sva_rt.Metapool_rt.set_cached mp b) pools
    in
    set on;
    Fun.protect ~finally:(fun () -> set true) f
  in
  med "open-close/sva-safe/cache-off" (fun () ->
      with_cache false (fun () -> Harness.Workloads.op_open_close safe));
  med "open-close/sva-safe/cache-on" (fun () ->
      with_cache true (fun () -> Harness.Workloads.op_open_close safe));
  (* Tiered-engine A/B: the same checked kernel image on the pre-decoded
     interpreter vs the closure-compiled second tier (warmed so the hot
     functions are already promoted). *)
  let tiered =
    let b = Ukern.Kbuild.build ~conf:Pipeline.Sva_safe Ukern.Kbuild.as_tested in
    let t =
      Boot.boot_built
        ~engine:{ Pipeline.default_engine with Pipeline.eng_kind = Pipeline.Tiered; eng_threshold = 2 }
        b ~variant:Ukern.Kbuild.as_tested
    in
    let ctx = Harness.Workloads.prepare t in
    for _ = 1 to 3 do
      Harness.Workloads.op_open_close ctx
    done;
    ctx
  in
  med "open-close/sva-safe/interp" (fun () ->
      Harness.Workloads.op_open_close safe);
  med "open-close/sva-safe/tiered" (fun () ->
      Harness.Workloads.op_open_close tiered);
  Buffer.contents buf

let () =
  Printf.printf
    "Secure Virtual Architecture (SOSP 2007) - evaluation reproduction\n";
  Printf.printf "================================================================\n";
  Printf.printf "Four kernels: %s.\n%s\n"
    (String.concat ", " (List.map Pipeline.conf_name Pipeline.all_confs))
    (if !quick then "(quick mode: reduced repetitions)" else "");
  section "table4" (fun () -> Tables.table4 ());
  section "figure2" (fun () -> Tables.figure2 ());
  section "checks" (fun () -> Tables.check_summary ());
  section "lint" (fun () -> Tables.lint_table ());
  section "ranges" (fun () -> Tables.ranges_table ());
  section "race" (fun () -> Tables.race_table ~strict:!strict ());
  section "poolcert" (fun () -> Tables.poolcert_table ~strict:!strict ());
  section "table7" (fun () -> Tables.table7 ~quick:!quick ());
  section "table8" (fun () -> Tables.table8 ~quick:!quick ());
  section "table5" (fun () -> Tables.table5 ~quick:!quick ());
  section "table6" (fun () -> Tables.table6 ~quick:!quick ());
  section "table9" (fun () -> Tables.table9 ());
  section "ablation" (fun () -> Tables.ablation ~quick:!quick ());
  section "fastpath" (fun () ->
      Tables.fastpath ~quick:!quick ~strict:!strict ());
  section "smp" (fun () -> Tables.smp ~quick:!quick ~strict:!strict ());
  section "tiered" (fun () -> Tables.tiered ~quick:!quick ~strict:!strict ());
  section "aot" (fun () -> Tables.aot ~quick:!quick ~strict:!strict ());
  section "trace" (fun () -> Tables.trace ~quick:!quick ~strict:!strict ());
  section "exploits" (fun () -> Tables.exploits_table ());
  section "verifier" (fun () -> Tables.verifier_experiment ());
  section "bechamel" (fun () -> bechamel_crosscheck ());
  (match !json_out with
  | None -> ()
  | Some path ->
      let module J = Harness.Jsonout in
      (* The measurements behind these payloads are memoized in Tables,
         so a section that already printed is not re-measured here. *)
      let parts =
        List.filter_map
          (fun (name, thunk) ->
            if wanted name then
              match thunk () with
              | j -> Some (name, j)
              | exception e ->
                  Printf.printf "!! json %s failed: %s\n" name
                    (Printexc.to_string e);
                  failed_sections := ("json:" ^ name) :: !failed_sections;
                  if !strict then exit 1;
                  None
            else None)
          [
            ("fastpath", fun () -> Tables.fastpath_json ~quick:!quick ());
            ("smp", fun () -> Tables.smp_json ~quick:!quick ());
            ("tiered", fun () -> Tables.tiered_json ~quick:!quick ());
            ("aot", fun () -> Tables.aot_json ~quick:!quick ());
            ("table7", fun () -> Tables.table7_json ~quick:!quick ());
            ("lint", fun () -> Tables.lint_json ());
            ("ranges", fun () -> Tables.ranges_json ());
            ("race", fun () -> Tables.race_json ());
            ("poolcert", fun () -> Tables.poolcert_json ());
            ("trace", fun () -> Tables.trace_json ~quick:!quick ());
          ]
      in
      let doc =
        J.Obj
          (("bench", J.Str "sva-eval")
          :: ("quick", J.Bool !quick)
          :: parts)
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (J.emit doc));
      Printf.printf "\njson: wrote %s (%d sections)\n" path (List.length parts));
  match List.rev !failed_sections with
  | [] -> Printf.printf "\nDone.\n"
  | fs ->
      Printf.printf "\nDone with FAILURES: %s\n" (String.concat ", " fs);
      exit 1
