(* Bounded ring-buffer event trace + cycle-attribution profiler.

   Observability for the SVA runtime: every interesting dynamic event
   (check executions, violations, object register/drop, syscall
   entry/exit, SVA-OS operations, tier promotions and translation-cache
   probes, build-time range elisions) can be recorded into a fixed-size
   ring buffer, and a separate profiling layer attributes modeled cycles
   and check counts to functions and syscalls.

   Both layers sit OUTSIDE the TCB: they observe the runtime, they never
   decide anything.  Disabling them must be semantically invisible — the
   hot-path contract is that an emission site costs one [bool ref] read
   and a conditional branch when tracing is off, allocates nothing, and
   never touches the modeled cycle or check counters either way. *)

type ekind =
  | Ev_check
  | Ev_violation
  | Ev_register
  | Ev_drop
  | Ev_syscall_enter
  | Ev_syscall_exit
  | Ev_svaos
  | Ev_tier_promote
  | Ev_tcache_hit
  | Ev_tcache_miss
  | Ev_tcache_disk_hit
  | Ev_tcache_disk_stale
  | Ev_tcache_disk_write
  | Ev_range_elide

let ekind_name = function
  | Ev_check -> "check"
  | Ev_violation -> "violation"
  | Ev_register -> "register"
  | Ev_drop -> "drop"
  | Ev_syscall_enter -> "syscall-enter"
  | Ev_syscall_exit -> "syscall-exit"
  | Ev_svaos -> "svaos"
  | Ev_tier_promote -> "tier-promote"
  | Ev_tcache_hit -> "tcache-hit"
  | Ev_tcache_miss -> "tcache-miss"
  | Ev_tcache_disk_hit -> "tcache-disk-hit"
  | Ev_tcache_disk_stale -> "tcache-disk-stale"
  | Ev_tcache_disk_write -> "tcache-disk-write"
  | Ev_range_elide -> "range-elide"

type event = {
  ev_seq : int;  (* global emission index, 0-based *)
  ev_ts : int;  (* modeled cycles at emission (the trace clock) *)
  ev_cpu : int;  (* modeled CPU executing at emission (0 off-SMP) *)
  ev_kind : ekind;
  ev_name : string;
  ev_pool : string;
  ev_a : int;
  ev_b : int;
}

(* Which modeled CPU subsequent events are attributed to.  The SMP
   scheduler flips it at CPU-switch points; everything else (including
   build-time emission) stays on CPU 0, preserving pre-SMP traces. *)
let cur_cpu = ref 0
let set_cpu i = cur_cpu := i
let current_cpu () = !cur_cpu

(* The timestamp source.  The SVM installs its modeled-cycle counter at
   load time; events emitted outside any VM (build-time range elisions)
   read 0. *)
let clock : (unit -> int) ref = ref (fun () -> 0)

(* [active] is the one flag every hot emission site reads.  It is only
   ever true between [enable]/[disable], when the ring buffer below is
   allocated. *)
let active = ref false

let default_capacity = 4096

let dummy =
  { ev_seq = 0; ev_ts = 0; ev_cpu = 0; ev_kind = Ev_check; ev_name = "";
    ev_pool = ""; ev_a = 0; ev_b = 0 }

let ring : event array ref = ref [||]
let cap = ref 0
let total = ref 0

let enabled () = !active
let capacity () = !cap
let emitted () = !total
let dropped () = if !total > !cap then !total - !cap else 0

let clear () = total := 0

let enable ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  ring := Array.make capacity dummy;
  cap := capacity;
  total := 0;
  active := true

let disable () =
  active := false;
  ring := [||];
  cap := 0;
  total := 0

(* The single store.  Callers are expected to have tested [!active]
   already (the functions below re-test so an unguarded call is still
   safe); when active, one record is allocated per event — acceptable,
   tracing is an explicitly-enabled diagnostic mode. *)
let emit kind ~name ~pool ~a ~b =
  if !active then begin
    let ev =
      { ev_seq = !total; ev_ts = !clock (); ev_cpu = !cur_cpu; ev_kind = kind;
        ev_name = name; ev_pool = pool; ev_a = a; ev_b = b }
    in
    !ring.(!total mod !cap) <- ev;
    incr total
  end

let emit_check name ~pool ~addr ~len =
  emit Ev_check ~name ~pool ~a:addr ~b:len

let emit_violation ~kind ~pool ~addr =
  emit Ev_violation ~name:kind ~pool ~a:addr ~b:0

let emit_register ~pool ~start ~len = emit Ev_register ~name:"" ~pool ~a:start ~b:len
let emit_drop ~pool ~start = emit Ev_drop ~name:"" ~pool ~a:start ~b:0
let emit_syscall_enter ~num = emit Ev_syscall_enter ~name:"" ~pool:"" ~a:num ~b:0
let emit_syscall_exit ~num = emit Ev_syscall_exit ~name:"" ~pool:"" ~a:num ~b:0
let emit_svaos name = emit Ev_svaos ~name ~pool:"" ~a:0 ~b:0
let emit_tier_promote name = emit Ev_tier_promote ~name ~pool:"" ~a:0 ~b:0
let emit_tcache_hit name = emit Ev_tcache_hit ~name ~pool:"" ~a:0 ~b:0
let emit_tcache_miss name = emit Ev_tcache_miss ~name ~pool:"" ~a:0 ~b:0

let emit_tcache_disk_hit name =
  emit Ev_tcache_disk_hit ~name ~pool:"" ~a:0 ~b:0

let emit_tcache_disk_stale name =
  emit Ev_tcache_disk_stale ~name ~pool:"" ~a:0 ~b:0

let emit_tcache_disk_write name =
  emit Ev_tcache_disk_write ~name ~pool:"" ~a:0 ~b:0

let emit_range_elide ~what ~count =
  emit Ev_range_elide ~name:what ~pool:"" ~a:count ~b:0

(* Retained events, oldest first.  When the ring wrapped, the oldest
   retained event is the one [total - cap] emissions back. *)
let events () =
  let n = min !total !cap in
  if n = 0 then []
  else begin
    let first = !total - n in
    List.init n (fun i -> !ring.((first + i) mod !cap))
  end

let count kind =
  List.length (List.filter (fun e -> e.ev_kind = kind) (events ()))

(* ---------- cycle-attribution profiler ----------

   Self-cycle accounting over an explicit shadow call stack: on entry a
   frame snapshots the cycle and check counters; on exit the frame's
   inclusive delta is split into self (delta minus callee time, which the
   callees already claimed) and propagated to the parent.  Self times of
   all frames partition the cycles spent inside profiled scopes exactly,
   which is what lets the bench gate ">= 95% of modeled cycles
   attributed" on the syscall mix.  Syscalls get the same treatment on a
   second stack keyed by syscall number, entered around the whole trap
   path (so the trap entry/exit surcharge is attributed too). *)

let profiling = ref false

type acct = {
  mutable ac_calls : int;
  mutable ac_self_cycles : int;
  mutable ac_total_cycles : int;  (* inclusive; recursion double-counts *)
  mutable ac_self_checks : int;
}

type pframe = {
  pf_key : string;
  pf_cycles0 : int;
  pf_checks0 : int;
  mutable pf_child_cycles : int;
  mutable pf_child_checks : int;
}

let fn_acct : (string, acct) Hashtbl.t = Hashtbl.create 64
let sys_acct : (int, acct) Hashtbl.t = Hashtbl.create 16
let fn_stack : pframe list ref = ref []
let sys_stack : pframe list ref = ref []

let reset_profile () =
  Hashtbl.reset fn_acct;
  Hashtbl.reset sys_acct;
  fn_stack := [];
  sys_stack := []

let enable_profile () =
  reset_profile ();
  profiling := true

let disable_profile () =
  profiling := false;
  reset_profile ()

let push stack key ~cycles ~checks =
  stack :=
    { pf_key = key; pf_cycles0 = cycles; pf_checks0 = checks;
      pf_child_cycles = 0; pf_child_checks = 0 }
    :: !stack

let acct_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some a -> a
  | None ->
      let a =
        { ac_calls = 0; ac_self_cycles = 0; ac_total_cycles = 0;
          ac_self_checks = 0 }
      in
      Hashtbl.add tbl key a;
      a

let pop stack tbl key ~cycles ~checks =
  match !stack with
  | [] -> () (* unbalanced exit: profiling was enabled mid-flight *)
  | fr :: rest ->
      stack := rest;
      let total = cycles - fr.pf_cycles0 in
      let tchecks = checks - fr.pf_checks0 in
      let a = acct_of tbl key in
      a.ac_calls <- a.ac_calls + 1;
      a.ac_total_cycles <- a.ac_total_cycles + total;
      a.ac_self_cycles <- a.ac_self_cycles + (total - fr.pf_child_cycles);
      a.ac_self_checks <- a.ac_self_checks + (tchecks - fr.pf_child_checks);
      (match rest with
      | parent :: _ ->
          parent.pf_child_cycles <- parent.pf_child_cycles + total;
          parent.pf_child_checks <- parent.pf_child_checks + tchecks
      | [] -> ())

let fn_enter name ~cycles ~checks =
  if !profiling then push fn_stack name ~cycles ~checks

let fn_exit name ~cycles ~checks =
  if !profiling then pop fn_stack fn_acct name ~cycles ~checks

let sys_enter num ~cycles ~checks =
  if !profiling then push sys_stack (string_of_int num) ~cycles ~checks

let sys_exit num ~cycles ~checks =
  if !profiling then pop sys_stack sys_acct num ~cycles ~checks

type prow = {
  p_name : string;
  p_calls : int;
  p_self_cycles : int;
  p_total_cycles : int;
  p_self_checks : int;
}

let rows_of tbl render_key =
  let rows =
    Hashtbl.fold
      (fun key a acc ->
        { p_name = render_key key; p_calls = a.ac_calls;
          p_self_cycles = a.ac_self_cycles;
          p_total_cycles = a.ac_total_cycles;
          p_self_checks = a.ac_self_checks }
        :: acc)
      tbl []
  in
  List.sort
    (fun x y ->
      match compare y.p_self_cycles x.p_self_cycles with
      | 0 -> compare x.p_name y.p_name
      | c -> c)
    rows

let fn_report () = rows_of fn_acct (fun k -> k)
let sys_report () = rows_of sys_acct (fun n -> "syscall " ^ string_of_int n)

let attributed_self_cycles tbl =
  Hashtbl.fold (fun _ a acc -> acc + a.ac_self_cycles) tbl 0

let fn_self_cycles () = attributed_self_cycles fn_acct
let sys_self_cycles () = attributed_self_cycles sys_acct
