(** Metapool run-time state and the SVA run-time checks (Section 4.5).

    A metapool is the run-time representation of one points-to graph
    partition: the set of memory objects that the safety-checking compiler
    proved may be reached through pointers of that partition.  Each
    metapool owns a splay tree of registered object ranges; the inserted
    checks consult it:

    - {!boundscheck} — getelementptr results must stay within the object
      of the source pointer (Jones-Kelly object bounds);
    - {!lscheck} — loads/stores through pointers of non-type-homogeneous
      pools must target a registered object;
    - {!funccheck} — indirect calls must hit a function in the
      compiler-computed target set.

    Incomplete metapools (partitions exposed to unanalyzed code,
    Section 4.5 "Reduced checks") silence load/store checks entirely and
    downgrade bounds checks to fire only when both pointers are found in
    registered objects.  This is the sole source of false negatives. *)

(** Memory class of a registered object. *)
type memclass =
  | Heap
  | Stack  (** stack objects registered/deregistered per function *)
  | Global
  | Userspace  (** all of userspace as one object (Section 4.6) *)
  | Bios  (** manufactured addresses registered via [pseudo_alloc] (§4.7) *)

type obj = { ob_class : memclass; ob_live : bool ref }

type t = {
  mp_name : string;
  mutable mp_type_homog : bool;
      (** all objects share one inferred type — enables check elision *)
  mutable mp_complete : bool;
      (** no unanalyzed code can put unregistered objects in this pool *)
  mutable mp_elem_size : int;
      (** inferred element size for TH pools (alignment contract, §4.4) *)
  mp_objects : obj Splay.t;
  mp_smp : Smp.t;  (** the owning SVM instance's CPU context *)
  mp_caches : obj Objcache.t array;
      (** per-CPU direct-mapped lookup cache shards consulted before the
          splay tree (one per modeled CPU of [mp_smp]) *)
  mutable mp_cached : bool;  (** whether this pool uses its caches at all *)
  mutable mp_epoch : int;
      (** coherence epoch: bumped on every object removal; a shard whose
          {!Objcache.epoch} lags is wholesale-flushed before use *)
  mutable mp_peak : int;  (** high-water mark of live objects *)
  mutable mp_regs : int;  (** registrations performed on this pool *)
  mutable mp_drops : int;  (** deregistrations performed on this pool *)
  mutable mp_lookups : int;  (** containment queries (checks + getbounds) *)
  mutable mp_hits : int;  (** lookups answered by this pool's cache *)
  mutable mp_flushes : int;  (** stale shards wholesale-cleared on access *)
}

val create :
  ?smp:Smp.t -> ?type_homog:bool -> ?complete:bool -> ?elem_size:int ->
  ?cached:bool -> string -> t
(** [cached] (default true) wires the per-pool object-lookup cache shards
    in front of the splay tree.  The caches are semantically invisible —
    an uncached pool gives byte-identical verdicts and bounds — and exist
    purely to short-circuit the splay lookup on repeated hits (the cheaper
    lookups Section 7.1.3 proposes).

    [smp] (default a fresh 1-CPU context) selects which shard a lookup
    consults and sizes the shard array.  Coherence is the ownership/epoch
    protocol (DESIGN.md §16): drops bump [mp_epoch], the dropping CPU
    repairs its own shard precisely (so a 1-CPU pool never
    wholesale-flushes and is bit-identical to the unsharded cache), and
    other CPUs lazily clear a lagging shard on next access. *)

val set_cached : t -> bool -> unit
(** Toggle cache use for this pool only (A/B measurement).  Replaces the
    old process-global [Objcache.enabled] switch, which silently coupled
    every SVM instance in the process.  Deterministic: only redirects
    lookups; an uncached pool bumps neither cache counter. *)

val register : t -> cls:memclass -> start:int -> len:int -> unit
(** [pchk.reg.obj]: record a live object.  Registering a range that
    overlaps a live object indicates a broken allocator contract and
    raises [Invalid_argument] (except for the whole-userspace object,
    which may enclose nothing else). *)

val drop : t -> start:int -> unit
(** [pchk.drop.obj]: remove an object.  Raises a {!Violation.Double_free}
    violation if no live object starts at [start]. *)

val drop_if_present : t -> start:int -> bool
(** Deregistration for pool destruction paths; never raises. *)

val getbounds : t -> int -> (int * int) option
(** [getbounds mp addr] is [Some (start, len)] of the registered object
    containing [addr] (splay lookup), or [None]. *)

val boundscheck : t -> src:int -> dst:int -> access_len:int -> unit
(** Verify [src] and the whole accessed range [dst .. dst+access_len-1]
    fall within one registered object.  For an incomplete pool where
    neither pointer is registered, the check is "reduced" and passes.
    @raise Violation.Safety_violation on failure. *)

val boundscheck_known : start:int -> len:int -> dst:int -> access_len:int ->
  pool:string -> unit
(** Bounds check with statically known object bounds — no splay lookup
    (the fast path at line 19 of Figure 2). *)

val lscheck : t -> addr:int -> access_len:int -> unit
(** Load/store check.  Elided (counted as reduced) if the pool is
    incomplete; otherwise the accessed range must be inside one live
    object.  A null/uninitialized address raises [Uninit_pointer]. *)

val funccheck : allowed:(int * string) list -> target:int -> unit
(** Indirect call check against the call-graph-derived target set
    [(address, name)].  @raise Violation.Safety_violation on miss. *)

val funccheck_hashed : allowed:(int, string) Hashtbl.t -> target:int -> unit
(** Same check against a pre-built address set — the interpreter's
    pre-decoded fast path builds the table once per call site instead of
    walking an assoc list per call. *)

val live_objects : t -> int
(** Number of currently registered objects. *)

(** {1 Per-metapool metrics}

    Observability counters maintained unconditionally — they are plain
    integer bumps on paths that already mutate pool state, never consulted
    by any check, and invisible to the cycle model.  The trace/profile
    layer reads them out; nothing in the TCB does. *)

type metrics = {
  m_name : string;
  m_live : int;  (** objects currently registered *)
  m_peak : int;  (** high-water mark of live objects *)
  m_regs : int;  (** total registrations *)
  m_drops : int;  (** total deregistrations *)
  m_depth : int;  (** current splay-tree height *)
  m_lookups : int;  (** containment queries issued *)
  m_cache_hits : int;  (** queries answered by this pool's cache *)
  m_flushes : int;
      (** stale cache shards wholesale-cleared on access (epoch lag);
          always 0 on a 1-CPU pool *)
}

val metrics : t -> metrics
(** Snapshot this pool's counters (live count and splay depth are read
    from the tree at call time). *)

val metrics_hit_rate : metrics -> float
(** Pool-local object-cache hit rate in percent (0 with no lookups). *)

val reset_metrics : t -> unit
(** Zero the cumulative counters; the peak restarts at the current live
    count.  Registered objects are untouched — measurement boundaries
    must not alter pool contents. *)

val reset : t -> unit
(** Drop all objects (pool destruction). *)
