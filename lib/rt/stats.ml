type snapshot = {
  bounds_checks : int;
  getbounds : int;
  ls_checks : int;
  funcchecks : int;
  registrations : int;
  drops : int;
  reduced_checks : int;
  violations : int;
  cache_hits : int;
  cache_misses : int;
}

let zero =
  {
    bounds_checks = 0;
    getbounds = 0;
    ls_checks = 0;
    funcchecks = 0;
    registrations = 0;
    drops = 0;
    reduced_checks = 0;
    violations = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

(* The dynamic-event counters (this snapshot family and the concurrency
   family below) live in per-CPU banks: every bump lands in the bank of
   the CPU the SMP scheduler last selected with [set_cpu], and the read
   accessors sum across banks.  Totals are therefore invariant under bank
   switching — an N-CPU run that executes the same work observes the same
   [read ()] as a 1-CPU run by construction, which is what the bench's
   check-count-identity gate leans on.  Bank 0 is the default, so code
   that never calls [set_cpu] behaves exactly as the old flat refs did.
   Tier/range/pool counters stay global: they are build-time or
   whole-process facts with no per-CPU attribution. *)

type bank = {
  mutable b_bounds : int;
  mutable b_gb : int;
  mutable b_ls : int;
  mutable b_fc : int;
  mutable b_regs : int;
  mutable b_drops : int;
  mutable b_reduced : int;
  mutable b_viols : int;
  mutable b_chits : int;
  mutable b_cmisses : int;
  (* concurrency family (read out further below) *)
  mutable b_cli : int;
  mutable b_sti : int;
  mutable b_lacq : int;
  mutable b_lrel : int;
  mutable b_ipis_sent : int;
  mutable b_ipis_delivered : int;
}

let make_bank () =
  {
    b_bounds = 0; b_gb = 0; b_ls = 0; b_fc = 0; b_regs = 0; b_drops = 0;
    b_reduced = 0; b_viols = 0; b_chits = 0; b_cmisses = 0; b_cli = 0;
    b_sti = 0; b_lacq = 0; b_lrel = 0; b_ipis_sent = 0; b_ipis_delivered = 0;
  }

let banks = ref [| make_bank () |]
let cur = ref !banks.(0)
let cur_cpu_ = ref 0

let set_cpu i =
  if i < 0 then invalid_arg "Stats.set_cpu: negative cpu";
  if i >= Array.length !banks then
    banks :=
      Array.init (i + 1) (fun j ->
          if j < Array.length !banks then !banks.(j) else make_bank ());
  cur_cpu_ := i;
  cur := !banks.(i)

let current_cpu () = !cur_cpu_
let cpu_banks () = Array.length !banks
let sum f = Array.fold_left (fun acc b -> acc + f b) 0 !banks

let bump_bounds () = let b = !cur in b.b_bounds <- b.b_bounds + 1
let bump_getbounds () = let b = !cur in b.b_gb <- b.b_gb + 1
let bump_ls () = let b = !cur in b.b_ls <- b.b_ls + 1
let bump_funccheck () = let b = !cur in b.b_fc <- b.b_fc + 1
let bump_reg () = let b = !cur in b.b_regs <- b.b_regs + 1
let bump_drop () = let b = !cur in b.b_drops <- b.b_drops + 1
let bump_reduced () = let b = !cur in b.b_reduced <- b.b_reduced + 1
let bump_violation () = let b = !cur in b.b_viols <- b.b_viols + 1
let bump_cache_hit () = let b = !cur in b.b_chits <- b.b_chits + 1
let bump_cache_miss () = let b = !cur in b.b_cmisses <- b.b_cmisses + 1

let cache_hits () = sum (fun b -> b.b_chits)
let cache_misses () = sum (fun b -> b.b_cmisses)
let checks_now () = sum (fun b -> b.b_bounds + b.b_ls + b.b_fc)

let snapshot_of_bank b =
  {
    bounds_checks = b.b_bounds;
    getbounds = b.b_gb;
    ls_checks = b.b_ls;
    funcchecks = b.b_fc;
    registrations = b.b_regs;
    drops = b.b_drops;
    reduced_checks = b.b_reduced;
    violations = b.b_viols;
    cache_hits = b.b_chits;
    cache_misses = b.b_cmisses;
  }

let read () =
  {
    bounds_checks = sum (fun b -> b.b_bounds);
    getbounds = sum (fun b -> b.b_gb);
    ls_checks = sum (fun b -> b.b_ls);
    funcchecks = sum (fun b -> b.b_fc);
    registrations = sum (fun b -> b.b_regs);
    drops = sum (fun b -> b.b_drops);
    reduced_checks = sum (fun b -> b.b_reduced);
    violations = sum (fun b -> b.b_viols);
    cache_hits = sum (fun b -> b.b_chits);
    cache_misses = sum (fun b -> b.b_cmisses);
  }

let read_cpu i =
  if i < 0 || i >= Array.length !banks then zero
  else snapshot_of_bank !banks.(i)

let reset () =
  Array.iter
    (fun b ->
      b.b_bounds <- 0;
      b.b_gb <- 0;
      b.b_ls <- 0;
      b.b_fc <- 0;
      b.b_regs <- 0;
      b.b_drops <- 0;
      b.b_reduced <- 0;
      b.b_viols <- 0;
      b.b_chits <- 0;
      b.b_cmisses <- 0)
    !banks

let diff a b =
  {
    bounds_checks = a.bounds_checks - b.bounds_checks;
    getbounds = a.getbounds - b.getbounds;
    ls_checks = a.ls_checks - b.ls_checks;
    funcchecks = a.funcchecks - b.funcchecks;
    registrations = a.registrations - b.registrations;
    drops = a.drops - b.drops;
    reduced_checks = a.reduced_checks - b.reduced_checks;
    violations = a.violations - b.violations;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
  }

let total_checks s = s.bounds_checks + s.ls_checks + s.funcchecks

let hit_rate s =
  let probes = s.cache_hits + s.cache_misses in
  if probes = 0 then 0.0
  else float_of_int s.cache_hits /. float_of_int probes *. 100.0

let to_string s =
  Printf.sprintf
    "bounds=%d getbounds=%d ls=%d funccheck=%d reg=%d drop=%d reduced=%d \
     violations=%d cache=%d/%d"
    s.bounds_checks s.getbounds s.ls_checks s.funcchecks s.registrations
    s.drops s.reduced_checks s.violations s.cache_hits
    (s.cache_hits + s.cache_misses)

(* ---------- execution-tier counters ----------

   Kept out of [snapshot] deliberately: the tiered engine must leave every
   check statistic identical to the interpreter's, and the differential
   tests compare [read ()] across engines while promotion counts differ
   by design. *)

type tier_snapshot = {
  promotions : int;
  tcache_hits : int;
  tcache_misses : int;
  sig_verifications : int;
  tcache_disk_hits : int;
  tcache_disk_stale : int;
  tcache_disk_writes : int;
  superblocks : int;
}

let tier_zero =
  {
    promotions = 0;
    tcache_hits = 0;
    tcache_misses = 0;
    sig_verifications = 0;
    tcache_disk_hits = 0;
    tcache_disk_stale = 0;
    tcache_disk_writes = 0;
    superblocks = 0;
  }

let promo = ref 0
let tc_hits = ref 0
let tc_misses = ref 0
let sig_verifies = ref 0
let tcd_hits = ref 0
let tcd_stale = ref 0
let tcd_writes = ref 0
let sblocks = ref 0

let bump_promotion () = incr promo
let bump_tcache_hit () = incr tc_hits
let bump_tcache_miss () = incr tc_misses
let bump_sig_verification () = incr sig_verifies
let bump_tcache_disk_hit () = incr tcd_hits
let bump_tcache_disk_stale () = incr tcd_stale
let bump_tcache_disk_write () = incr tcd_writes
let add_superblocks n = sblocks := !sblocks + n

let read_tier () =
  {
    promotions = !promo;
    tcache_hits = !tc_hits;
    tcache_misses = !tc_misses;
    sig_verifications = !sig_verifies;
    tcache_disk_hits = !tcd_hits;
    tcache_disk_stale = !tcd_stale;
    tcache_disk_writes = !tcd_writes;
    superblocks = !sblocks;
  }

let reset_tier () =
  promo := 0;
  tc_hits := 0;
  tc_misses := 0;
  sig_verifies := 0;
  tcd_hits := 0;
  tcd_stale := 0;
  tcd_writes := 0;
  sblocks := 0

let diff_tier a b =
  {
    promotions = a.promotions - b.promotions;
    tcache_hits = a.tcache_hits - b.tcache_hits;
    tcache_misses = a.tcache_misses - b.tcache_misses;
    sig_verifications = a.sig_verifications - b.sig_verifications;
    tcache_disk_hits = a.tcache_disk_hits - b.tcache_disk_hits;
    tcache_disk_stale = a.tcache_disk_stale - b.tcache_disk_stale;
    tcache_disk_writes = a.tcache_disk_writes - b.tcache_disk_writes;
    superblocks = a.superblocks - b.superblocks;
  }

let tier_to_string s =
  Printf.sprintf
    "promotions=%d tcache=%d/%d disk=%d/%d/%d sigverify=%d superblocks=%d"
    s.promotions s.tcache_hits
    (s.tcache_hits + s.tcache_misses)
    s.tcache_disk_hits s.tcache_disk_stale s.tcache_disk_writes
    s.sig_verifications s.superblocks

(* ---------- range-elision counters ----------

   Static accounting for the value-range certificate pipeline: how many
   checks the interval analysis elided at build time and how many
   certificates the trusted checker re-verified.  Kept out of [snapshot]
   for the same reason as the tier counters: the differential tests
   compare [read ()] between range-elision-on and -off builds, and these
   counters differ by design. *)

type range_snapshot = {
  range_bounds_elided : int;
  range_ls_elided : int;
  range_facts : int;
  range_cert_checks : int;
}

let range_zero =
  {
    range_bounds_elided = 0;
    range_ls_elided = 0;
    range_facts = 0;
    range_cert_checks = 0;
  }

let r_bounds = ref 0
let r_ls = ref 0
let r_facts = ref 0
let r_certs = ref 0

let add_range_bounds_elided n = r_bounds := !r_bounds + n
let add_range_ls_elided n = r_ls := !r_ls + n
let add_range_facts n = r_facts := !r_facts + n
let add_range_cert_checks n = r_certs := !r_certs + n

let read_range () =
  {
    range_bounds_elided = !r_bounds;
    range_ls_elided = !r_ls;
    range_facts = !r_facts;
    range_cert_checks = !r_certs;
  }

let reset_range () =
  r_bounds := 0;
  r_ls := 0;
  r_facts := 0;
  r_certs := 0

let diff_range a b =
  {
    range_bounds_elided = a.range_bounds_elided - b.range_bounds_elided;
    range_ls_elided = a.range_ls_elided - b.range_ls_elided;
    range_facts = a.range_facts - b.range_facts;
    range_cert_checks = a.range_cert_checks - b.range_cert_checks;
  }

let range_to_string s =
  Printf.sprintf "range-elided bounds=%d ls=%d facts=%d certs-verified=%d"
    s.range_bounds_elided s.range_ls_elided s.range_facts s.range_cert_checks

(* ---------- pool-safety certificate counters ----------

   Static accounting for the pool-safety (points-to) certificate
   pipeline: how many TH/completeness/devirt certificates the untrusted
   layer emitted at build time and how many the trusted checker verified
   or rejected, plus the check elisions they justify.  Kept out of
   [snapshot] like the range family: certification on/off builds must
   stay bit-identical in the dynamic counters while these differ by
   design. *)

type pool_snapshot = {
  pool_certs_emitted : int;
  pool_certs_verified : int;
  pool_certs_rejected : int;
  pool_elisions : int;
}

let pool_zero =
  {
    pool_certs_emitted = 0;
    pool_certs_verified = 0;
    pool_certs_rejected = 0;
    pool_elisions = 0;
  }

let p_emitted = ref 0
let p_verified = ref 0
let p_rejected = ref 0
let p_elisions = ref 0

let add_pool_certs_emitted n = p_emitted := !p_emitted + n
let add_pool_certs_verified n = p_verified := !p_verified + n
let add_pool_certs_rejected n = p_rejected := !p_rejected + n
let add_pool_elisions n = p_elisions := !p_elisions + n

let read_pool () =
  {
    pool_certs_emitted = !p_emitted;
    pool_certs_verified = !p_verified;
    pool_certs_rejected = !p_rejected;
    pool_elisions = !p_elisions;
  }

let reset_pool () =
  p_emitted := 0;
  p_verified := 0;
  p_rejected := 0;
  p_elisions := 0

let diff_pool a b =
  {
    pool_certs_emitted = a.pool_certs_emitted - b.pool_certs_emitted;
    pool_certs_verified = a.pool_certs_verified - b.pool_certs_verified;
    pool_certs_rejected = a.pool_certs_rejected - b.pool_certs_rejected;
    pool_elisions = a.pool_elisions - b.pool_elisions;
  }

let pool_to_string s =
  Printf.sprintf
    "pool-certs emitted=%d verified=%d rejected=%d elisions=%d"
    s.pool_certs_emitted s.pool_certs_verified s.pool_certs_rejected
    s.pool_elisions

(* ---------- concurrency counters ----------

   Dynamic accounting for the SVA-OS concurrency primitives: interrupt
   masking ([sva_cli]/[sva_sti]) and the spinlock operations.  Kept out
   of [snapshot] like the tier and range families: the differential
   tests compare [read ()] across configurations, and a build that adds
   explicit critical sections changes these counts by design while the
   check counts must stay comparable. *)

type conc_snapshot = {
  cli_count : int;
  sti_count : int;
  lock_acquires : int;
  lock_releases : int;
  ipis_sent : int;
  ipis_delivered : int;
}

let conc_zero =
  {
    cli_count = 0;
    sti_count = 0;
    lock_acquires = 0;
    lock_releases = 0;
    ipis_sent = 0;
    ipis_delivered = 0;
  }

(* Same per-CPU banks as the check counters above: these are dynamic
   events attributable to the executing CPU. *)
let bump_cli () = let b = !cur in b.b_cli <- b.b_cli + 1
let bump_sti () = let b = !cur in b.b_sti <- b.b_sti + 1
let bump_lock_acquire () = let b = !cur in b.b_lacq <- b.b_lacq + 1
let bump_lock_release () = let b = !cur in b.b_lrel <- b.b_lrel + 1
let bump_ipi_sent () = let b = !cur in b.b_ipis_sent <- b.b_ipis_sent + 1

let bump_ipi_delivered () =
  let b = !cur in
  b.b_ipis_delivered <- b.b_ipis_delivered + 1

let read_conc () =
  {
    cli_count = sum (fun b -> b.b_cli);
    sti_count = sum (fun b -> b.b_sti);
    lock_acquires = sum (fun b -> b.b_lacq);
    lock_releases = sum (fun b -> b.b_lrel);
    ipis_sent = sum (fun b -> b.b_ipis_sent);
    ipis_delivered = sum (fun b -> b.b_ipis_delivered);
  }

let reset_conc () =
  Array.iter
    (fun b ->
      b.b_cli <- 0;
      b.b_sti <- 0;
      b.b_lacq <- 0;
      b.b_lrel <- 0;
      b.b_ipis_sent <- 0;
      b.b_ipis_delivered <- 0)
    !banks

let diff_conc a b =
  {
    cli_count = a.cli_count - b.cli_count;
    sti_count = a.sti_count - b.sti_count;
    lock_acquires = a.lock_acquires - b.lock_acquires;
    lock_releases = a.lock_releases - b.lock_releases;
    ipis_sent = a.ipis_sent - b.ipis_sent;
    ipis_delivered = a.ipis_delivered - b.ipis_delivered;
  }

let conc_to_string s =
  Printf.sprintf "cli=%d sti=%d lock-acquire=%d lock-release=%d ipi=%d/%d"
    s.cli_count s.sti_count s.lock_acquires s.lock_releases s.ipis_delivered
    s.ipis_sent

(* Full reset across all five counter families.  The individual resets
   stay available for the measurements that deliberately reset one family
   (e.g. the tiered bench resets check counters per run but accumulates
   tier counters across warm-up and measurement).  Callers that want to
   report build-time certification numbers after a reset must snapshot
   [read_range]/[read_pool] first — the kernel boot driver does. *)
let reset_all () =
  reset ();
  reset_tier ();
  reset_range ();
  reset_pool ();
  reset_conc ()
