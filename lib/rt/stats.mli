(** Run-time check accounting.

    Global counters for every kind of dynamic event the SVA runtime
    performs.  The benchmark harness snapshots these to attribute overhead
    (Section 7.1.2 observes that cheap syscalls are dominated by SVA-OS
    cost while heavier ones are dominated by run-time checks), and the
    tests use them to assert that checks are actually exercised or
    correctly elided. *)

type snapshot = {
  bounds_checks : int;  (** [boundscheck] executions *)
  getbounds : int;  (** splay-tree bound fetches *)
  ls_checks : int;  (** [lscheck] executions *)
  funcchecks : int;  (** indirect call checks *)
  registrations : int;  (** [pchk.reg.obj] *)
  drops : int;  (** [pchk.drop.obj] *)
  reduced_checks : int;  (** checks skipped because the pool is incomplete *)
  violations : int;  (** safety violations raised *)
  cache_hits : int;  (** object lookups answered by the per-pool cache *)
  cache_misses : int;  (** object lookups that fell through to the splay *)
}

val zero : snapshot

(** {1 Per-CPU banks}

    The dynamic-event families ({!snapshot} and {!conc_snapshot}) are
    kept in per-CPU counter banks: each bump lands in the bank selected
    by {!set_cpu} (the simulated-SMP scheduler switches it at CPU-switch
    points), and the summing accessors ({!read}, {!cache_hits},
    {!checks_now}, {!read_conc}) report totals across all banks.  Totals
    are therefore invariant under bank switching, so an N-CPU schedule of
    the same work keeps every aggregate counter identical to the 1-CPU
    run.  Bank 0 is the default — code that never calls [set_cpu] is
    bit-compatible with the pre-SMP flat counters.  Build-time families
    (tier, range, pool) are not banked. *)

val set_cpu : int -> unit
(** Direct subsequent bumps at CPU [i]'s bank (grown on demand).
    @raise Invalid_argument on a negative index. *)

val current_cpu : unit -> int
(** The bank index currently receiving bumps (0 by default). *)

val cpu_banks : unit -> int
(** Number of banks allocated so far (>= 1). *)

val read_cpu : int -> snapshot
(** One CPU's bank alone ({!zero} for a never-selected index); {!read}
    is the sum of these over all banks. *)

val bump_bounds : unit -> unit
val bump_getbounds : unit -> unit
val bump_ls : unit -> unit
val bump_funccheck : unit -> unit
val bump_reg : unit -> unit
val bump_drop : unit -> unit
val bump_reduced : unit -> unit
val bump_violation : unit -> unit
val bump_cache_hit : unit -> unit
val bump_cache_miss : unit -> unit

val cache_hits : unit -> int
(** Current value of the cache-hit counter — cheap accessor for the cycle
    model, which charges a hit far less than a splay comparison. *)

val cache_misses : unit -> int

val checks_now : unit -> int
(** Current bounds + load/store + indirect-call check count, without
    allocating a snapshot — the profiler samples this on every function
    entry/exit. *)

val read : unit -> snapshot

val reset : unit -> unit
(** Reset the check counters only.  Tier and range counters are separate
    families with their own resets; use {!reset_all} when a full reset is
    intended. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] — per-field subtraction. *)

val total_checks : snapshot -> int
(** Bounds + load/store + indirect-call checks. *)

val hit_rate : snapshot -> float
(** Object-cache hit rate in percent (0 when no lookups were made). *)

val to_string : snapshot -> string

(** {1 Execution-tier counters}

    Accounting for the SVM's second execution tier (closure-compiled hot
    functions with a signed translation cache, Section 3.4).  Kept in a
    separate snapshot: the tiered engine leaves every field of
    {!snapshot} identical to the interpreter's — the differential tests
    rely on that — while these counters differ by design. *)

type tier_snapshot = {
  promotions : int;  (** functions promoted to the compiled tier *)
  tcache_hits : int;  (** translations reused from the signed cache *)
  tcache_misses : int;
      (** fresh translations (cold cache or rejected signature) *)
  sig_verifications : int;
      (** signature re-verifications performed on cache probes *)
  tcache_disk_hits : int;
      (** translations reused from the persistent on-disk store *)
  tcache_disk_stale : int;
      (** on-disk entries rejected (tampered, truncated or stale) *)
  tcache_disk_writes : int;
      (** fresh signed entries persisted to the on-disk store *)
  superblocks : int;  (** cross-branch trace superblocks formed *)
}

val tier_zero : tier_snapshot
val bump_promotion : unit -> unit
val bump_tcache_hit : unit -> unit
val bump_tcache_miss : unit -> unit
val bump_sig_verification : unit -> unit
val bump_tcache_disk_hit : unit -> unit
val bump_tcache_disk_stale : unit -> unit
val bump_tcache_disk_write : unit -> unit
val add_superblocks : int -> unit
val read_tier : unit -> tier_snapshot

val reset_tier : unit -> unit
(** Independent of {!reset}: check counters and tier counters are reset
    separately. *)

val diff_tier : tier_snapshot -> tier_snapshot -> tier_snapshot
val tier_to_string : tier_snapshot -> string

(** {1 Range-elision counters}

    Static accounting for the value-range certificate pipeline
    ({!Sva_analysis.Interval} / the trusted checker in [Sva_tyck]):
    checks elided at build time on verified interval certificates, and
    the number of certificates the trusted checker re-verified.  Kept in
    a separate snapshot so the range-elision-on and -off builds keep
    {!snapshot} comparable in the differential tests. *)

type range_snapshot = {
  range_bounds_elided : int;
      (** [pchk_bounds] elided on a verified in-extent certificate *)
  range_ls_elided : int;
      (** [pchk_lscheck] elided via range-widened safe-access proofs *)
  range_facts : int;  (** interval facts emitted by the analysis *)
  range_cert_checks : int;
      (** certificates re-verified by the trusted checker *)
}

val range_zero : range_snapshot
val add_range_bounds_elided : int -> unit
val add_range_ls_elided : int -> unit
val add_range_facts : int -> unit
val add_range_cert_checks : int -> unit
val read_range : unit -> range_snapshot
val reset_range : unit -> unit

val diff_range : range_snapshot -> range_snapshot -> range_snapshot
val range_to_string : range_snapshot -> string

(** {1 Pool-safety certificate counters}

    Static accounting for the pool-safety certificate pipeline
    ({!Sva_analysis.Pointsto} / {!Sva_safety.Devirt} emitting evidence,
    the trusted checker in [Sva_tyck] re-verifying it): certificates
    emitted, verified and rejected at build time, plus the check
    elisions they justify.  A separate snapshot for the usual reason:
    certification-on and -off builds must keep {!snapshot} bit-identical
    in the differential tests while these counters differ by design. *)

type pool_snapshot = {
  pool_certs_emitted : int;
      (** TH + completeness + devirt certificates the untrusted layer
          emitted *)
  pool_certs_verified : int;
      (** certificates accepted by the trusted checker *)
  pool_certs_rejected : int;
      (** certificates in a bundle the trusted checker rejected *)
  pool_elisions : int;
      (** check elisions justified by verified certificates *)
}

val pool_zero : pool_snapshot
val add_pool_certs_emitted : int -> unit
val add_pool_certs_verified : int -> unit
val add_pool_certs_rejected : int -> unit
val add_pool_elisions : int -> unit
val read_pool : unit -> pool_snapshot
val reset_pool : unit -> unit
val diff_pool : pool_snapshot -> pool_snapshot -> pool_snapshot
val pool_to_string : pool_snapshot -> string

(** {1 Concurrency counters}

    Dynamic accounting for the SVA-OS concurrency primitives: interrupt
    masking and the spinlock operations.  Before this family existed,
    [sva_cli]/[sva_sti] were the only SVA-OS operations invisible to the
    profiler.  A separate snapshot for the usual reason: builds that add
    explicit critical sections change these counts by design while
    {!snapshot} must stay comparable across configurations. *)

type conc_snapshot = {
  cli_count : int;  (** [sva_cli] executions *)
  sti_count : int;  (** [sva_sti] executions *)
  lock_acquires : int;  (** [sva_lock_acquire] executions *)
  lock_releases : int;  (** [sva_lock_release] executions *)
  ipis_sent : int;  (** [sva_ipi_send] executions *)
  ipis_delivered : int;  (** IPI vectors delivered on a target CPU *)
}

val conc_zero : conc_snapshot
val bump_cli : unit -> unit
val bump_sti : unit -> unit
val bump_lock_acquire : unit -> unit
val bump_lock_release : unit -> unit
val bump_ipi_sent : unit -> unit
val bump_ipi_delivered : unit -> unit
val read_conc : unit -> conc_snapshot
val reset_conc : unit -> unit
val diff_conc : conc_snapshot -> conc_snapshot -> conc_snapshot
val conc_to_string : conc_snapshot -> string

val reset_all : unit -> unit
(** {!reset} + {!reset_tier} + {!reset_range} + {!reset_pool} +
    {!reset_conc}: clear every counter family.  This is what "reset the
    statistics" should almost always mean at a measurement boundary;
    forgetting a companion reset (the original [ukern_boot] bug) leaves
    stale tier/range counts in the report.  Callers that want to report
    build-time certification numbers after the reset must snapshot
    {!read_range}/{!read_pool} first — the kernel boot driver does. *)
