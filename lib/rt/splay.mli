(** Self-adjusting binary search tree over disjoint integer ranges.

    SAFECode/SVA record every registered memory object in a {e per-pool
    splay tree} and answer "which object contains this address?" queries
    during bounds and load/store checks (Section 4.5).  Splaying keeps
    recently checked objects at the root, which is what makes the
    Jones-Kelly style object lookup fast in practice (Section 4.1).

    Keys are byte ranges [\[start, start+len)]; ranges must be disjoint.
    The payload type is arbitrary. *)

type 'a t

type 'a node = {
  n_start : int;  (** first byte of the range *)
  n_len : int;  (** length in bytes; ranges of length 0 are not allowed *)
  n_data : 'a;
}

val create : unit -> 'a t

val size : 'a t -> int
(** Number of ranges currently stored. *)

val insert : 'a t -> start:int -> len:int -> 'a -> unit
(** Register a range.  @raise Invalid_argument if [len <= 0] or the range
    overlaps an existing one. *)

val remove : 'a t -> start:int -> 'a node option
(** Remove the range that starts exactly at [start]; returns it, or [None]
    if no range starts there. *)

val find_containing : 'a t -> int -> 'a node option
(** The range containing the given address, if any.  Splays. *)

val find_start : 'a t -> int -> 'a node option
(** The range starting exactly at the given address, if any.  Splays. *)

val overlaps : 'a t -> start:int -> len:int -> bool
(** Does [\[start, start+len)] intersect any stored range? *)

val iter : 'a t -> ('a node -> unit) -> unit
(** In-order traversal. *)

val fold : 'a t -> ('acc -> 'a node -> 'acc) -> 'acc -> 'acc

val to_list : 'a t -> 'a node list
(** All ranges in increasing address order. *)

val clear : 'a t -> unit

val comparisons : unit -> int
(** Global count of key comparisons performed by all splay operations —
    the work metric the SVM's cycle model charges for run-time checks
    (splay lookups are where the Jones-Kelly-style checking spends its
    time, Section 4.1). *)

val depth : 'a t -> int
(** Current height of the tree (0 for empty).  A diagnostic for the
    per-metapool metrics report; splaying keeps it shallow on skewed
    access patterns but it is not bounded. *)
