(* Slots hold the last range that contained an address hashing to them.
   A large object touched at several offsets occupies several slots, which
   is what makes streaming accesses (memcpy over a buffer) hit. *)

type 'a t = {
  slots : 'a Splay.node option array;
  (* Coherence tag for per-CPU sharding: the owning metapool bumps its
     pool epoch on every removal, and a shard whose epoch lags is flushed
     wholesale before use (Metapool_rt).  The cache itself never reads
     it — whether to cache at all is the caller's decision too. *)
  mutable oc_epoch : int;
}

let slot_count = 64
let bucket_shift = 4 (* 16-byte buckets: adjacent word accesses share a slot *)

let create () = { slots = Array.make slot_count None; oc_epoch = 0 }
let epoch c = c.oc_epoch
let set_epoch c e = c.oc_epoch <- e

let slot_of addr = (addr lsr bucket_shift) land (slot_count - 1)

let find c tree addr =
  let i = slot_of addr in
  match c.slots.(i) with
  | Some n when addr >= n.Splay.n_start && addr < n.Splay.n_start + n.Splay.n_len
    ->
      Stats.bump_cache_hit ();
      Some n
  | _ -> (
      Stats.bump_cache_miss ();
      match Splay.find_containing tree addr with
      | Some n as r ->
          c.slots.(i) <- Some n;
          r
      | None -> None)

let invalidate_start c start =
  for i = 0 to slot_count - 1 do
    match c.slots.(i) with
    | Some n when n.Splay.n_start = start -> c.slots.(i) <- None
    | _ -> ()
  done

let clear c = Array.fill c.slots 0 slot_count None
