(* Slots hold the last range that contained an address hashing to them.
   A large object touched at several offsets occupies several slots, which
   is what makes streaming accesses (memcpy over a buffer) hit. *)

type 'a t = { slots : 'a Splay.node option array }

let slot_count = 64
let bucket_shift = 4 (* 16-byte buckets: adjacent word accesses share a slot *)

let create () = { slots = Array.make slot_count None }

let enabled = ref true

let slot_of addr = (addr lsr bucket_shift) land (slot_count - 1)

let find c tree addr =
  if not !enabled then Splay.find_containing tree addr
  else
    let i = slot_of addr in
    match c.slots.(i) with
    | Some n when addr >= n.Splay.n_start && addr < n.Splay.n_start + n.Splay.n_len
      ->
        Stats.bump_cache_hit ();
        Some n
    | _ -> (
        Stats.bump_cache_miss ();
        match Splay.find_containing tree addr with
        | Some n as r ->
            c.slots.(i) <- Some n;
            r
        | None -> None)

let invalidate_start c start =
  for i = 0 to slot_count - 1 do
    match c.slots.(i) with
    | Some n when n.Splay.n_start = start -> c.slots.(i) <- None
    | _ -> ()
  done

let clear c = Array.fill c.slots 0 slot_count None
