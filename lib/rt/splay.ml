type 'a node = { n_start : int; n_len : int; n_data : 'a }

type 'a tree = Leaf | Node of 'a tree * 'a node * 'a tree

type 'a t = { mutable root : 'a tree; mutable count : int }

let create () = { root = Leaf; count = 0 }
let size t = t.count
let clear t =
  t.root <- Leaf;
  t.count <- 0

(* Top-down splay as a partition: split [t] into the subtree of nodes with
   start <= pivot and the subtree of nodes with start > pivot, performing
   the zig-zig/zig-zag restructuring along the search path. *)
let ncomparisons = ref 0

let rec partition pivot t =
  match t with
  | Leaf -> (Leaf, Leaf)
  | Node (l, x, r) -> (
      incr ncomparisons;
      if x.n_start <= pivot then
        match r with
        | Leaf -> (t, Leaf)
        | Node (rl, y, rr) ->
            if y.n_start <= pivot then
              let small, big = partition pivot rr in
              (Node (Node (l, x, rl), y, small), big)
            else
              let small, big = partition pivot rl in
              (Node (l, x, small), Node (big, y, rr))
      else
        match l with
        | Leaf -> (Leaf, t)
        | Node (ll, y, lr) ->
            if y.n_start <= pivot then
              let small, big = partition pivot lr in
              (Node (ll, y, small), Node (big, x, r))
            else
              let small, big = partition pivot ll in
              (small, Node (big, y, Node (lr, x, r))))

(* Rotate until the maximum is at the root; tail recursive. *)
let rec splay_max = function
  | Node (l, x, Node (rl, y, rr)) -> splay_max (Node (Node (l, x, rl), y, rr))
  | t -> t

let rec splay_min = function
  | Node (Node (ll, y, lr), x, r) -> splay_min (Node (ll, y, Node (lr, x, r)))
  | t -> t

let join small big =
  match splay_max small with
  | Leaf -> big
  | Node (l, m, Leaf) -> Node (l, m, big)
  | Node _ -> assert false

let insert t ~start ~len data =
  if len <= 0 then invalid_arg "Splay.insert: non-positive length";
  let small, big = partition start t.root in
  (* Overlap checks: the greatest range starting <= start must end before
     [start]; the least range starting > start must begin at or after
     [start + len]. *)
  (match splay_max small with
  | Node (l, m, Leaf) ->
      if m.n_start + m.n_len > start then
        invalid_arg
          (Printf.sprintf
             "Splay.insert: [%d,+%d) overlaps existing [%d,+%d)" start len
             m.n_start m.n_len);
      ignore l
  | _ -> ());
  (match splay_min big with
  | Node (Leaf, m, _) ->
      if m.n_start < start + len then
        invalid_arg
          (Printf.sprintf
             "Splay.insert: [%d,+%d) overlaps existing [%d,+%d)" start len
             m.n_start m.n_len)
  | _ -> ());
  t.root <- Node (small, { n_start = start; n_len = len; n_data = data }, big);
  t.count <- t.count + 1

let remove t ~start =
  let small, big = partition (start - 1) t.root in
  match splay_min big with
  | Node (Leaf, m, r) when m.n_start = start ->
      t.root <- join small r;
      t.count <- t.count - 1;
      Some m
  | b ->
      t.root <- join small b;
      None

let find_containing t addr =
  let small, big = partition addr t.root in
  match splay_max small with
  | Node (l, m, Leaf) ->
      (* [m] is the greatest range starting at or before [addr]. *)
      t.root <- Node (l, m, big);
      if addr < m.n_start + m.n_len then Some m else None
  | _ ->
      t.root <- big;
      None

let find_start t addr =
  match find_containing t addr with
  | Some m when m.n_start = addr -> Some m
  | _ -> None

let overlaps t ~start ~len =
  if len <= 0 then false
  else
    (* One partition pass answers both halves of the question: the
       greatest range starting <= start may extend over it, and the least
       range starting > start may begin inside [start, start+len). *)
    let small, big = partition start t.root in
    let small = splay_max small in
    let big = splay_min big in
    let left_hit =
      match small with
      | Node (_, m, Leaf) -> m.n_start + m.n_len > start
      | _ -> false
    in
    let right_hit =
      match big with
      | Node (Leaf, m, _) -> m.n_start < start + len
      | _ -> false
    in
    (match small with
    | Leaf -> t.root <- big
    | Node (l, m, Leaf) -> t.root <- Node (l, m, big)
    | Node _ -> assert false);
    left_hit || right_hit

let rec iter_tree g = function
  | Leaf -> ()
  | Node (l, x, r) ->
      iter_tree g l;
      g x;
      iter_tree g r

let iter t g = iter_tree g t.root

let fold t g init =
  let acc = ref init in
  iter t (fun n -> acc := g !acc n);
  !acc

let to_list t = List.rev (fold t (fun acc n -> n :: acc) [])

let comparisons () = !ncomparisons

let rec depth_tree = function
  | Leaf -> 0
  | Node (l, _, r) -> 1 + max (depth_tree l) (depth_tree r)

let depth t = depth_tree t.root
