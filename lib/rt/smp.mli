(** Simulated-SMP context: CPU count and current CPU of one SVM instance.

    The SVM interleaves N modeled CPUs on one host thread (the scheduler
    in [Ukern.Boot.run_smp] switches between them at syscall granularity),
    so "which CPU is running" is a plain mutable field, not thread-local
    state.  Each SVM instance owns one context — created by
    [Sva_os.Svaos.create] and threaded into the per-CPU shards of the
    check runtime ({!Metapool_rt}) — so concurrent instances in one
    process never observe each other's CPU switches.

    The default context is a single CPU, under which every consumer
    behaves bit-identically to the pre-SMP runtime. *)

type t

val create : ?ncpus:int -> unit -> t
(** [create ~ncpus ()] — a context of [ncpus] modeled CPUs (default 1),
    currently executing CPU 0.  @raise Invalid_argument if [ncpus < 1]. *)

val ncpus : t -> int
val cur : t -> int
(** The CPU currently executing (0-based). *)

val set_cur : t -> int -> unit
(** Switch the current CPU.  @raise Invalid_argument if out of range. *)
