(** Bounded ring-buffer event trace and cycle-attribution profiler.

    The observability layer of the runtime: when enabled, every dynamic
    event of interest — run-time check executions, safety violations,
    object registration/deregistration, syscall entry/exit, SVA-OS
    operations, tier promotions and translation-cache probes, and
    build-time range elisions — is recorded into a fixed-capacity ring
    buffer (oldest events are overwritten; the [dropped] counter accounts
    for truncation).  A separate profiling layer attributes modeled
    cycles and run-time check counts to functions and syscalls via a
    shadow call stack.

    Neither layer is part of the TCB: they observe, they never decide.
    Both are semantically invisible — enabling or disabling them never
    changes verdicts, check counters or modeled cycles — and when
    disabled an emission site costs one flag test and allocates
    nothing. *)

(** {1 Events} *)

type ekind =
  | Ev_check  (** a run-time check executed ([ev_name]: which) *)
  | Ev_violation  (** a safety violation was raised *)
  | Ev_register  (** [pchk.reg.obj] *)
  | Ev_drop  (** [pchk.drop.obj] *)
  | Ev_syscall_enter  (** trap entry ([ev_a]: syscall number) *)
  | Ev_syscall_exit
  | Ev_svaos  (** an SVA-OS operation ([ev_name]: which intrinsic) *)
  | Ev_tier_promote  (** a function promoted to the compiled tier *)
  | Ev_tcache_hit  (** signed translation cache: verified reuse *)
  | Ev_tcache_miss  (** fresh translation *)
  | Ev_tcache_disk_hit  (** persistent store: verified on-disk reuse *)
  | Ev_tcache_disk_stale
      (** persistent store: entry rejected (tampered/truncated/stale) *)
  | Ev_tcache_disk_write  (** persistent store: fresh entry persisted *)
  | Ev_range_elide  (** build-time certified check elision ([ev_a]: count) *)

val ekind_name : ekind -> string

type event = {
  ev_seq : int;  (** emission index since [enable]/[clear], 0-based *)
  ev_ts : int;  (** modeled cycles at emission (see {!clock}) *)
  ev_cpu : int;  (** modeled CPU executing at emission (see {!set_cpu}) *)
  ev_kind : ekind;
  ev_name : string;
  ev_pool : string;  (** metapool name, when the event concerns one *)
  ev_a : int;  (** address / syscall number / count, by kind *)
  ev_b : int;  (** access length / object length, by kind *)
}

val set_cpu : int -> unit
(** Attribute subsequent events to this modeled CPU.  The SMP scheduler
    calls it at CPU-switch points; outside SMP runs everything stays on
    CPU 0, so pre-SMP traces are unchanged.  The Chrome export maps it to
    the thread id. *)

val current_cpu : unit -> int

val clock : (unit -> int) ref
(** Timestamp source, read at each emission.  {!Sva_interp.Interp.load}
    installs the VM's modeled-cycle counter; outside any VM it reads 0.
    Because both execution tiers keep bit-identical cycle counts, the
    same workload produces the same timestamps on either engine. *)

val active : bool ref
(** The one flag hot emission sites test before building an event.  Set
    by {!enable}/{!disable}; do not flip it directly. *)

val default_capacity : int

val enable : ?capacity:int -> unit -> unit
(** Allocate the ring buffer ([capacity] events, default
    {!default_capacity}) and start recording. *)

val disable : unit -> unit
(** Stop recording and release the buffer. *)

val enabled : unit -> bool
val clear : unit -> unit
(** Forget all recorded events; keeps recording. *)

val capacity : unit -> int
val emitted : unit -> int
(** Total events emitted since [enable]/[clear], including overwritten ones. *)

val dropped : unit -> int
(** Events lost to ring wrap-around: [max 0 (emitted - capacity)]. *)

val events : unit -> event list
(** Retained events, oldest first (at most [capacity]). *)

val count : ekind -> int
(** Retained events of one kind. *)

(** {2 Emission} — no-ops (and allocation-free) when tracing is off. *)

val emit_check : string -> pool:string -> addr:int -> len:int -> unit
val emit_violation : kind:string -> pool:string -> addr:int -> unit
val emit_register : pool:string -> start:int -> len:int -> unit
val emit_drop : pool:string -> start:int -> unit
val emit_syscall_enter : num:int -> unit
val emit_syscall_exit : num:int -> unit
val emit_svaos : string -> unit
val emit_tier_promote : string -> unit
val emit_tcache_hit : string -> unit
val emit_tcache_miss : string -> unit
val emit_tcache_disk_hit : string -> unit
val emit_tcache_disk_stale : string -> unit
val emit_tcache_disk_write : string -> unit
val emit_range_elide : what:string -> count:int -> unit

(** {1 Profiler}

    Self-cycle attribution over a shadow call stack: each scope's
    inclusive cycle delta minus its callees' is its self time, so self
    times partition the cycles spent under profiled scopes exactly.
    Functions and syscalls are profiled on separate stacks; the syscall
    scope wraps the whole trap path, trap entry/exit surcharge
    included. *)

val profiling : bool ref
(** Tested by the hooks below and by the interpreter's tier dispatch. *)

val enable_profile : unit -> unit
(** Reset all accumulators and start profiling. *)

val disable_profile : unit -> unit

val fn_enter : string -> cycles:int -> checks:int -> unit
val fn_exit : string -> cycles:int -> checks:int -> unit
val sys_enter : int -> cycles:int -> checks:int -> unit
val sys_exit : int -> cycles:int -> checks:int -> unit

type prow = {
  p_name : string;
  p_calls : int;
  p_self_cycles : int;  (** cycles in this scope minus its callees' *)
  p_total_cycles : int;  (** inclusive; recursive calls double-count *)
  p_self_checks : int;
}

val fn_report : unit -> prow list
(** Per-function rows, hottest (by self cycles) first. *)

val sys_report : unit -> prow list
(** Per-syscall rows (named ["syscall N"]), hottest first. *)

val fn_self_cycles : unit -> int
(** Sum of self cycles over all profiled functions. *)

val sys_self_cycles : unit -> int
(** Sum of self cycles over all profiled syscalls — on a syscall-driven
    workload this equals the cycles attributable to syscalls, the
    numerator of the bench's >= 95%-attribution gate. *)
