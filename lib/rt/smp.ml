(* Shared simulated-SMP context: how many CPUs this SVM instance models
   and which one is currently executing.  One value is created per SVM
   instance (by Svaos.create) and threaded into every per-CPU-sharded
   runtime structure, so two instances in one process never share CPU
   state — the whole point of evicting the old process-global toggles. *)

type t = { sc_ncpus : int; mutable sc_cur : int }

let create ?(ncpus = 1) () =
  if ncpus < 1 then invalid_arg "Smp.create: ncpus must be >= 1";
  { sc_ncpus = ncpus; sc_cur = 0 }

let ncpus t = t.sc_ncpus
let cur t = t.sc_cur

let set_cur t i =
  if i < 0 || i >= t.sc_ncpus then
    invalid_arg
      (Printf.sprintf "Smp.set_cur: cpu %d out of range [0,%d)" i t.sc_ncpus);
  t.sc_cur <- i
