type kind =
  | Bounds
  | Load_store
  | Indirect_call
  | Double_free
  | Illegal_free
  | Uninit_pointer
  | Userspace_escape

type t = { v_kind : kind; v_metapool : string; v_addr : int; v_msg : string }

exception Safety_violation of t

let kind_to_string = function
  | Bounds -> "bounds"
  | Load_store -> "load-store"
  | Indirect_call -> "indirect-call"
  | Double_free -> "double-free"
  | Illegal_free -> "illegal-free"
  | Uninit_pointer -> "uninitialized-pointer"
  | Userspace_escape -> "userspace-escape"

let violation k ~metapool ~addr msg =
  if !Trace.active then
    Trace.emit_violation ~kind:(kind_to_string k) ~pool:metapool ~addr;
  raise (Safety_violation { v_kind = k; v_metapool = metapool; v_addr = addr; v_msg = msg })

let to_string v =
  Printf.sprintf "SVA safety violation [%s] pool=%s addr=0x%x: %s"
    (kind_to_string v.v_kind)
    (if v.v_metapool = "" then "<none>" else v.v_metapool)
    v.v_addr v.v_msg
