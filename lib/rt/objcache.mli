(** Direct-mapped object-lookup cache in front of a splay tree.

    The paper's own evaluation (Section 7.1.3) observes that SVA-Safe
    overhead concentrates in the run-time checks, every one of which
    funnels through a splay-tree lookup, and names cheaper lookups as the
    first future performance improvement.  This cache is that improvement:
    a small direct-mapped table of recently hit object ranges, keyed by
    address bucket and consulted before {!Splay.find_containing}.

    Only {e positive} results are cached.  Because registered ranges are
    disjoint, inserting a new object can never make a cached range stale,
    so registration needs no invalidation; removal does (see
    {!invalidate_start}) and pool destruction clears the table.

    Hits and misses are counted in {!Stats} ([cache_hits]/[cache_misses]);
    the interpreter's cycle model charges a hit far less than the
    per-comparison splay charge (see DESIGN.md Section 6). *)

type 'a t

val slot_count : int
(** Number of direct-mapped slots (a power of two). *)

val create : unit -> 'a t

val enabled : bool ref
(** Global kill switch for A/B measurement ([bench/main.exe fastpath]).
    When false every lookup falls through to the splay tree and neither
    counter moves.  Deterministic: the flag only redirects lookups. *)

val find : 'a t -> 'a Splay.t -> int -> 'a Splay.node option
(** [find cache tree addr] answers "which registered range contains
    [addr]?", consulting the cache first and filling it from the splay
    tree on a miss.  Byte-identical to [Splay.find_containing tree addr]
    in all circumstances — the cache is invisible except to the
    hit/miss counters and the splay's comparison counter. *)

val invalidate_start : 'a t -> int -> unit
(** Drop every cached entry for the range starting at the given address.
    Must be called whenever a range is removed from the backing tree. *)

val clear : 'a t -> unit
(** Drop everything (backing tree was cleared). *)
