(** Direct-mapped object-lookup cache in front of a splay tree.

    The paper's own evaluation (Section 7.1.3) observes that SVA-Safe
    overhead concentrates in the run-time checks, every one of which
    funnels through a splay-tree lookup, and names cheaper lookups as the
    first future performance improvement.  This cache is that improvement:
    a small direct-mapped table of recently hit object ranges, keyed by
    address bucket and consulted before {!Splay.find_containing}.

    Only {e positive} results are cached.  Because registered ranges are
    disjoint, inserting a new object can never make a cached range stale,
    so registration needs no invalidation; removal does (see
    {!invalidate_start}) and pool destruction clears the table.

    Hits and misses are counted in {!Stats} ([cache_hits]/[cache_misses]);
    the interpreter's cycle model charges a hit far less than the
    per-comparison splay charge (see DESIGN.md Section 6). *)

type 'a t

val slot_count : int
(** Number of direct-mapped slots (a power of two). *)

val create : unit -> 'a t
(** A fresh empty cache at epoch 0.

    There is deliberately {e no} global kill switch: whether to consult a
    cache at all is per-metapool state ([Metapool_rt.set_cached]), so
    toggling one SVM instance (or one A/B measurement) can never change
    the behaviour of another instance in the same process. *)

val epoch : 'a t -> int
(** Coherence tag for per-CPU cache shards.  The owning metapool bumps
    its pool epoch on every object removal; a shard whose stored epoch
    lags the pool's is wholesale-cleared before use ({!clear}) and then
    re-tagged with {!set_epoch}.  The cache itself never interprets the
    value. *)

val set_epoch : 'a t -> int -> unit

val find : 'a t -> 'a Splay.t -> int -> 'a Splay.node option
(** [find cache tree addr] answers "which registered range contains
    [addr]?", consulting the cache first and filling it from the splay
    tree on a miss.  Byte-identical to [Splay.find_containing tree addr]
    in all circumstances — the cache is invisible except to the
    hit/miss counters and the splay's comparison counter. *)

val invalidate_start : 'a t -> int -> unit
(** Drop every cached entry for the range starting at the given address.
    Must be called whenever a range is removed from the backing tree. *)

val clear : 'a t -> unit
(** Drop everything (backing tree was cleared). *)
