type memclass = Heap | Stack | Global | Userspace | Bios

type obj = { ob_class : memclass; ob_live : bool ref }

type t = {
  mp_name : string;
  mutable mp_type_homog : bool;
  mutable mp_complete : bool;
  mutable mp_elem_size : int;
  mp_objects : obj Splay.t;
  mp_cache : obj Objcache.t;
  mp_cached : bool;
}

let create ?(type_homog = false) ?(complete = true) ?(elem_size = 0)
    ?(cached = true) name =
  {
    mp_name = name;
    mp_type_homog = type_homog;
    mp_complete = complete;
    mp_elem_size = elem_size;
    mp_objects = Splay.create ();
    mp_cache = Objcache.create ();
    mp_cached = cached;
  }

(* Every containment query goes through here: cache first, splay on miss.
   Cached entries are always live — every removal path invalidates — and
   insertion cannot make one stale (ranges are disjoint), so registration
   needs no invalidation. *)
let find mp addr =
  if mp.mp_cached then Objcache.find mp.mp_cache mp.mp_objects addr
  else Splay.find_containing mp.mp_objects addr

let register mp ~cls ~start ~len =
  Stats.bump_reg ();
  (* A failed allocation (null) or a non-positive requested size (integer
     overflow/underflow in the caller) registers nothing: later checks
     through the pointer then fail, which is exactly the exploit-catching
     behaviour (Section 7.2's too-small-object overruns). *)
  if start <> 0 && len > 0 then
    Splay.insert mp.mp_objects ~start ~len { ob_class = cls; ob_live = ref true }

let drop mp ~start =
  Stats.bump_drop ();
  match Splay.remove mp.mp_objects ~start with
  | Some _ -> Objcache.invalidate_start mp.mp_cache start
  | None ->
      Stats.bump_violation ();
      (* Distinguish a pointer into the middle of a live object (illegal
         free) from a pointer to nothing (double free). *)
      let kind =
        match find mp start with
        | Some _ -> Violation.Illegal_free
        | None -> Violation.Double_free
      in
      Violation.violation kind ~metapool:mp.mp_name ~addr:start
        "pchk.drop.obj of a non-live object"

let drop_if_present mp ~start =
  match Splay.remove mp.mp_objects ~start with
  | Some _ ->
      Objcache.invalidate_start mp.mp_cache start;
      true
  | None -> false

let getbounds mp addr =
  Stats.bump_getbounds ();
  match find mp addr with
  | Some n -> Some (n.Splay.n_start, n.Splay.n_len)
  | None -> None

let in_range ~start ~len addr access_len =
  addr >= start && addr + access_len <= start + len

let boundscheck_known ~start ~len ~dst ~access_len ~pool =
  Stats.bump_bounds ();
  if not (in_range ~start ~len dst access_len) then begin
    Stats.bump_violation ();
    Violation.violation Violation.Bounds ~metapool:pool ~addr:dst
      (Printf.sprintf
         "indexing to [0x%x,+%d) escapes object [0x%x,+%d)" dst access_len
         start len)
  end

let boundscheck mp ~src ~dst ~access_len =
  Stats.bump_bounds ();
  match find mp src with
  | Some n ->
      if not (in_range ~start:n.Splay.n_start ~len:n.Splay.n_len dst access_len)
      then begin
        Stats.bump_violation ();
        Violation.violation Violation.Bounds ~metapool:mp.mp_name ~addr:dst
          (Printf.sprintf
             "gep from 0x%x to [0x%x,+%d) escapes object [0x%x,+%d)" src dst
             access_len n.Splay.n_start n.Splay.n_len)
      end
  | None -> (
      match find mp dst with
      | Some _ when not mp.mp_complete ->
          (* Source unregistered in an incomplete pool: nothing can be
             said (Section 4.5). *)
          Stats.bump_reduced ()
      | Some n ->
          Stats.bump_violation ();
          Violation.violation Violation.Bounds ~metapool:mp.mp_name ~addr:dst
            (Printf.sprintf
               "gep source 0x%x outside every object but target inside \
                [0x%x,+%d)"
               src n.Splay.n_start n.Splay.n_len)
      | None ->
          if mp.mp_complete then begin
            Stats.bump_violation ();
            Violation.violation Violation.Bounds ~metapool:mp.mp_name
              ~addr:src "gep source points to no registered object"
          end
          else Stats.bump_reduced ())

let lscheck mp ~addr ~access_len =
  if not mp.mp_complete then Stats.bump_reduced ()
  else begin
    Stats.bump_ls ();
    if addr = 0 then begin
      Stats.bump_violation ();
      (* Null is reported once and the check ends here — no second
         Load_store lookup/violation for the same access. *)
      Violation.violation Violation.Uninit_pointer ~metapool:mp.mp_name
        ~addr "load/store through null pointer"
    end
    else
      match find mp addr with
      | Some n ->
          if
            not
              (in_range ~start:n.Splay.n_start ~len:n.Splay.n_len addr
                 access_len)
          then begin
            Stats.bump_violation ();
            Violation.violation Violation.Load_store ~metapool:mp.mp_name ~addr
              (Printf.sprintf
                 "access [0x%x,+%d) straddles object [0x%x,+%d)" addr
                 access_len n.Splay.n_start n.Splay.n_len)
          end
      | None ->
          Stats.bump_violation ();
          Violation.violation Violation.Load_store ~metapool:mp.mp_name ~addr
            "load/store outside every registered object"
  end

let funccheck_fail ~target names =
  Stats.bump_violation ();
  Violation.violation Violation.Indirect_call ~metapool:"" ~addr:target
    (Printf.sprintf "indirect call to 0x%x not in the call graph set {%s}"
       target (String.concat ", " names))

let funccheck ~allowed ~target =
  Stats.bump_funccheck ();
  if not (List.exists (fun (addr, _) -> addr = target) allowed) then
    funccheck_fail ~target (List.map snd allowed)

let funccheck_hashed ~allowed ~target =
  Stats.bump_funccheck ();
  if not (Hashtbl.mem allowed target) then
    funccheck_fail ~target
      (List.sort compare (Hashtbl.fold (fun _ nm acc -> nm :: acc) allowed []))

let live_objects mp = Splay.size mp.mp_objects

let reset mp =
  Splay.clear mp.mp_objects;
  Objcache.clear mp.mp_cache
