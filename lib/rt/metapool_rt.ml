type memclass = Heap | Stack | Global | Userspace | Bios

type obj = { ob_class : memclass; ob_live : bool ref }

type t = {
  mp_name : string;
  mutable mp_type_homog : bool;
  mutable mp_complete : bool;
  mutable mp_elem_size : int;
  mp_objects : obj Splay.t;
  mp_smp : Smp.t;
  mp_caches : obj Objcache.t array;
  mutable mp_cached : bool;
  mutable mp_epoch : int;
  (* Per-pool observability counters (always on: plain int bumps, no
     effect on verdicts or the cycle model). *)
  mutable mp_peak : int;
  mutable mp_regs : int;
  mutable mp_drops : int;
  mutable mp_lookups : int;
  mutable mp_hits : int;
  mutable mp_flushes : int;
}

let create ?smp ?(type_homog = false) ?(complete = true) ?(elem_size = 0)
    ?(cached = true) name =
  let smp = match smp with Some s -> s | None -> Smp.create () in
  {
    mp_name = name;
    mp_type_homog = type_homog;
    mp_complete = complete;
    mp_elem_size = elem_size;
    mp_objects = Splay.create ();
    mp_smp = smp;
    mp_caches = Array.init (Smp.ncpus smp) (fun _ -> Objcache.create ());
    mp_cached = cached;
    mp_epoch = 0;
    mp_peak = 0;
    mp_regs = 0;
    mp_drops = 0;
    mp_lookups = 0;
    mp_hits = 0;
    mp_flushes = 0;
  }

let set_cached mp b = mp.mp_cached <- b

(* Ownership/epoch coherence over the per-CPU cache shards: the pool
   epoch counts object removals, and a shard is usable only at the
   current epoch.  The CPU that performs a drop repairs its own shard
   precisely (targeted invalidation, then adopt the new epoch) — so a
   single-CPU pool never wholesale-flushes and stays bit-identical to
   the unsharded cache — while any other CPU discovers the stale epoch
   on its next access and clears its whole shard.  Registrations never
   bump the epoch: registered ranges are disjoint, so an insert cannot
   make any cached entry stale.  Lookups on a current shard remain plain
   1-cycle hits with zero cross-CPU traffic, which is the point. *)
let shard mp =
  let c = mp.mp_caches.(Smp.cur mp.mp_smp) in
  if Objcache.epoch c <> mp.mp_epoch then begin
    Objcache.clear c;
    Objcache.set_epoch c mp.mp_epoch;
    mp.mp_flushes <- mp.mp_flushes + 1
  end;
  c

(* Removal path: sync this CPU's shard first (a lagging shard may hold
   entries staled by other CPUs' drops), then bump the epoch, repair the
   shard for this one removal, and adopt the new epoch. *)
let invalidate mp start =
  let c = shard mp in
  mp.mp_epoch <- mp.mp_epoch + 1;
  Objcache.invalidate_start c start;
  Objcache.set_epoch c mp.mp_epoch

(* Every containment query goes through here: this CPU's cache shard
   first, splay on miss.  Current-epoch shard entries are always live —
   every removal path bumps the epoch — and insertion cannot make one
   stale (ranges are disjoint), so registration needs no invalidation.
   The per-pool hit counter is derived from the global one's delta so
   the two can never disagree. *)
let find mp addr =
  mp.mp_lookups <- mp.mp_lookups + 1;
  if mp.mp_cached then begin
    let c = shard mp in
    let h0 = Stats.cache_hits () in
    let r = Objcache.find c mp.mp_objects addr in
    if Stats.cache_hits () > h0 then mp.mp_hits <- mp.mp_hits + 1;
    r
  end
  else Splay.find_containing mp.mp_objects addr

let register mp ~cls ~start ~len =
  Stats.bump_reg ();
  mp.mp_regs <- mp.mp_regs + 1;
  if !Trace.active then Trace.emit_register ~pool:mp.mp_name ~start ~len;
  (* A failed allocation (null) or a non-positive requested size (integer
     overflow/underflow in the caller) registers nothing: later checks
     through the pointer then fail, which is exactly the exploit-catching
     behaviour (Section 7.2's too-small-object overruns). *)
  if start <> 0 && len > 0 then begin
    Splay.insert mp.mp_objects ~start ~len { ob_class = cls; ob_live = ref true };
    let live = Splay.size mp.mp_objects in
    if live > mp.mp_peak then mp.mp_peak <- live
  end

let drop mp ~start =
  Stats.bump_drop ();
  mp.mp_drops <- mp.mp_drops + 1;
  if !Trace.active then Trace.emit_drop ~pool:mp.mp_name ~start;
  match Splay.remove mp.mp_objects ~start with
  | Some _ -> invalidate mp start
  | None ->
      Stats.bump_violation ();
      (* Distinguish a pointer into the middle of a live object (illegal
         free) from a pointer to nothing (double free). *)
      let kind =
        match find mp start with
        | Some _ -> Violation.Illegal_free
        | None -> Violation.Double_free
      in
      Violation.violation kind ~metapool:mp.mp_name ~addr:start
        "pchk.drop.obj of a non-live object"

let drop_if_present mp ~start =
  match Splay.remove mp.mp_objects ~start with
  | Some _ ->
      mp.mp_drops <- mp.mp_drops + 1;
      if !Trace.active then Trace.emit_drop ~pool:mp.mp_name ~start;
      invalidate mp start;
      true
  | None -> false

let getbounds mp addr =
  Stats.bump_getbounds ();
  if !Trace.active then
    Trace.emit_check "getbounds" ~pool:mp.mp_name ~addr ~len:0;
  match find mp addr with
  | Some n -> Some (n.Splay.n_start, n.Splay.n_len)
  | None -> None

let in_range ~start ~len addr access_len =
  addr >= start && addr + access_len <= start + len

let boundscheck_known ~start ~len ~dst ~access_len ~pool =
  Stats.bump_bounds ();
  if !Trace.active then
    Trace.emit_check "bounds-known" ~pool ~addr:dst ~len:access_len;
  if not (in_range ~start ~len dst access_len) then begin
    Stats.bump_violation ();
    Violation.violation Violation.Bounds ~metapool:pool ~addr:dst
      (Printf.sprintf
         "indexing to [0x%x,+%d) escapes object [0x%x,+%d)" dst access_len
         start len)
  end

let boundscheck mp ~src ~dst ~access_len =
  Stats.bump_bounds ();
  if !Trace.active then
    Trace.emit_check "bounds" ~pool:mp.mp_name ~addr:dst ~len:access_len;
  match find mp src with
  | Some n ->
      if not (in_range ~start:n.Splay.n_start ~len:n.Splay.n_len dst access_len)
      then begin
        Stats.bump_violation ();
        Violation.violation Violation.Bounds ~metapool:mp.mp_name ~addr:dst
          (Printf.sprintf
             "gep from 0x%x to [0x%x,+%d) escapes object [0x%x,+%d)" src dst
             access_len n.Splay.n_start n.Splay.n_len)
      end
  | None -> (
      match find mp dst with
      | Some _ when not mp.mp_complete ->
          (* Source unregistered in an incomplete pool: nothing can be
             said (Section 4.5). *)
          Stats.bump_reduced ()
      | Some n ->
          Stats.bump_violation ();
          Violation.violation Violation.Bounds ~metapool:mp.mp_name ~addr:dst
            (Printf.sprintf
               "gep source 0x%x outside every object but target inside \
                [0x%x,+%d)"
               src n.Splay.n_start n.Splay.n_len)
      | None ->
          if mp.mp_complete then begin
            Stats.bump_violation ();
            Violation.violation Violation.Bounds ~metapool:mp.mp_name
              ~addr:src "gep source points to no registered object"
          end
          else Stats.bump_reduced ())

let lscheck mp ~addr ~access_len =
  if not mp.mp_complete then Stats.bump_reduced ()
  else begin
    Stats.bump_ls ();
    if !Trace.active then
      Trace.emit_check "ls" ~pool:mp.mp_name ~addr ~len:access_len;
    if addr = 0 then begin
      Stats.bump_violation ();
      (* Null is reported once and the check ends here — no second
         Load_store lookup/violation for the same access. *)
      Violation.violation Violation.Uninit_pointer ~metapool:mp.mp_name
        ~addr "load/store through null pointer"
    end
    else
      match find mp addr with
      | Some n ->
          if
            not
              (in_range ~start:n.Splay.n_start ~len:n.Splay.n_len addr
                 access_len)
          then begin
            Stats.bump_violation ();
            Violation.violation Violation.Load_store ~metapool:mp.mp_name ~addr
              (Printf.sprintf
                 "access [0x%x,+%d) straddles object [0x%x,+%d)" addr
                 access_len n.Splay.n_start n.Splay.n_len)
          end
      | None ->
          Stats.bump_violation ();
          Violation.violation Violation.Load_store ~metapool:mp.mp_name ~addr
            "load/store outside every registered object"
  end

let funccheck_fail ~target names =
  Stats.bump_violation ();
  Violation.violation Violation.Indirect_call ~metapool:"" ~addr:target
    (Printf.sprintf "indirect call to 0x%x not in the call graph set {%s}"
       target (String.concat ", " names))

let funccheck ~allowed ~target =
  Stats.bump_funccheck ();
  if !Trace.active then
    Trace.emit_check "funccheck" ~pool:"" ~addr:target ~len:0;
  if not (List.exists (fun (addr, _) -> addr = target) allowed) then
    funccheck_fail ~target (List.map snd allowed)

let funccheck_hashed ~allowed ~target =
  Stats.bump_funccheck ();
  if !Trace.active then
    Trace.emit_check "funccheck" ~pool:"" ~addr:target ~len:0;
  if not (Hashtbl.mem allowed target) then
    funccheck_fail ~target
      (List.sort compare (Hashtbl.fold (fun _ nm acc -> nm :: acc) allowed []))

let live_objects mp = Splay.size mp.mp_objects

type metrics = {
  m_name : string;
  m_live : int;
  m_peak : int;
  m_regs : int;
  m_drops : int;
  m_depth : int;
  m_lookups : int;
  m_cache_hits : int;
  m_flushes : int;
}

let metrics mp =
  {
    m_name = mp.mp_name;
    m_live = Splay.size mp.mp_objects;
    m_peak = mp.mp_peak;
    m_regs = mp.mp_regs;
    m_drops = mp.mp_drops;
    m_depth = Splay.depth mp.mp_objects;
    m_lookups = mp.mp_lookups;
    m_cache_hits = mp.mp_hits;
    m_flushes = mp.mp_flushes;
  }

let metrics_hit_rate m =
  if m.m_lookups = 0 then 0.0
  else float_of_int m.m_cache_hits /. float_of_int m.m_lookups *. 100.0

let reset_metrics mp =
  mp.mp_peak <- Splay.size mp.mp_objects;
  mp.mp_regs <- 0;
  mp.mp_drops <- 0;
  mp.mp_lookups <- 0;
  mp.mp_hits <- 0;
  mp.mp_flushes <- 0

let reset mp =
  Splay.clear mp.mp_objects;
  Array.iter
    (fun c ->
      Objcache.clear c;
      Objcache.set_epoch c mp.mp_epoch)
    mp.mp_caches
