(** Seeded-bug fixture for the static concurrency-safety pass.

    A "vendor module" appended to the kernel sources in the
    [sva_lint --races --fixture] build: every [sys_rb_*] function below
    contains exactly one deliberate concurrency defect from the classes
    the lockset analysis covers — plus two {e clean} siblings
    ([sys_rb_masked], [sys_rb_locked]) that exercise the same shared
    state correctly and must stay unflagged.  The fixture code is
    registered but never invoked at run time, so it perturbs no
    benchmark; {!expected} is the ground truth the race self-test and
    the regression suite compare against. *)

let source =
  {|
/* ============ race fixture: intentionally buggy module ============ */

long rb_shared = 0;     /* shared with rb_tick_interrupt */
long rb_table[8];       /* lock-disciplined via rb_lock_a */
long rb_btable[8];      /* lock-disciplined via rb_lock_b */
long rb_lock_a = 0;
long rb_lock_b = 0;

/* The interrupt side of the shared counter; runs masked by the SVM
   dispatcher. */
long rb_tick_interrupt(long icp, long vec, long a2, long a3) {
  rb_shared = rb_shared + 1;
  return 0;
}

/* CLEAN: consumes the shared counter under cli. */
long sys_rb_masked(long a0, long a1, long a2, long a3) {
  sva_cli();
  long v = rb_shared;
  rb_shared = 0;
  sva_sti();
  return v;
}

/* BUG R1: touches interrupt-shared state with no protection at all. */
long sys_rb_race(long a0, long a1, long a2, long a3) {
  rb_shared = rb_shared + 1;               /* race: vs rb_tick_interrupt */
  return rb_shared;
}

/* CLEAN: lock-disciplined table update. */
long sys_rb_locked(long idx, long a1, long a2, long a3) {
  if (idx < 0 || idx >= 8) return -22;
  sva_lock_acquire(&rb_lock_a);
  rb_table[idx] = rb_table[idx] + 1;
  sva_lock_release(&rb_lock_a);
  return 0;
}

/* BUG R2: writes the disciplined table without holding its lock. */
long sys_rb_unlocked(long idx, long a1, long a2, long a3) {
  if (idx < 0 || idx >= 8) return -22;
  rb_table[idx] = 7;                       /* race: lock-disciplined */
  return 0;
}

/* BUG R3a/R3b: the two halves of a lock-order cycle (AB vs BA). */
long sys_rb_ab(long a0, long a1, long a2, long a3) {
  sva_lock_acquire(&rb_lock_a);
  sva_lock_acquire(&rb_lock_b);            /* deadlock: A -> B */
  sva_lock_release(&rb_lock_b);
  sva_lock_release(&rb_lock_a);
  return 0;
}

long sys_rb_ba(long a0, long a1, long a2, long a3) {
  sva_lock_acquire(&rb_lock_b);
  sva_lock_acquire(&rb_lock_a);            /* deadlock: B -> A */
  sva_lock_release(&rb_lock_a);
  sva_lock_release(&rb_lock_b);
  return 0;
}

/* BUG R4: masks interrupts and returns without restoring them. */
long sys_rb_forgot_sti(long a0, long a1, long a2, long a3) {
  sva_cli();
  long v = rb_shared;
  return v;                                /* cli-imbalance */
}

/* BUG R5: returns while still holding rb_lock_b. */
long sys_rb_leak_lock(long idx, long a1, long a2, long a3) {
  if (idx < 0 || idx >= 8) return -22;
  sva_lock_acquire(&rb_lock_b);
  rb_btable[idx] = idx;
  return idx;                              /* lock-imbalance */
}

/* BUG R6: calls a sleeping allocator with interrupts masked. */
long sys_rb_alloc_masked(long n, long a1, long a2, long a3) {
  if (n < 8) n = 8;
  if (n > 256) n = 256;
  sva_cli();
  char *b = kmalloc(n);                    /* atomic-sleep */
  sva_sti();
  if (!b) return -12;
  kfree(b);
  return 0;
}

/* Registration makes the bugs reachable for the analysis (the syscall
   table seeds the universe; the interrupt registration roots the
   interrupt side).  Never called at run time. */
void race_fixture_init(void) {
  sva_register_syscall(92, sys_rb_masked);                    /* SVA-PORT */
  sva_register_syscall(93, sys_rb_race);                      /* SVA-PORT */
  sva_register_syscall(94, sys_rb_locked);                    /* SVA-PORT */
  sva_register_syscall(95, sys_rb_unlocked);                  /* SVA-PORT */
  sva_register_syscall(96, sys_rb_ab);                        /* SVA-PORT */
  sva_register_syscall(97, sys_rb_ba);                        /* SVA-PORT */
  sva_register_syscall(98, sys_rb_forgot_sti);                /* SVA-PORT */
  sva_register_syscall(99, sys_rb_leak_lock);                 /* SVA-PORT */
  sva_register_syscall(100, sys_rb_alloc_masked);             /* SVA-PORT */
  sva_register_interrupt(10, rb_tick_interrupt);              /* SVA-PORT */
}
|}

(* Ground truth: (checker, function) of every seeded defect. *)
let expected =
  [
    ("atomic-sleep", "sys_rb_alloc_masked");
    ("cli-imbalance", "sys_rb_forgot_sti");
    ("deadlock", "sys_rb_ab");
    ("deadlock", "sys_rb_ba");
    ("lock-imbalance", "sys_rb_leak_lock");
    ("race", "sys_rb_race");
    ("race", "sys_rb_unlocked");
  ]
