(** The filesystem layer in MiniC: file objects, a ramfs, pipes, lseek,
    the ioctl path (carrying the BID 11956-style integer-overflow
    vulnerability: a too-small [kmalloc] from a user-controlled count),
    and the ELF-ish loader whose core-dump path reproduces BID 13589 (an
    unchecked negative length flowing into the user-copy library).

    The ioctl argument is declared as a pointer, not a long — the
    Section 6.3 porting change ("If a function parameter (nearly) always
    takes a pointer, please declare it as a pointer"), marked
    SVA-ANALYSIS. *)

let source =
  {|
/* ================= file objects ================= */

struct pipe {
  char rbuf[2048];
  long rpos;
  long wpos;
  long count;
  int readers;
  int writers;
};

struct inode {
  char name[28];
  int used;
  long size;
  long cap;
  char *data;
};

struct file {
  int kind;        /* 0=free 1=inode 2=pipe-read 3=pipe-write */
  int refcnt;
  long pos;
  struct inode *ino;
  struct pipe *pp;
};

struct kmem_cache *file_cache = 0;
struct inode itable[64];
long itable_lock = 0;                                        /* SVA-RACE */
long files_opened = 0;

void file_ref(struct file *f) {
  f->refcnt = f->refcnt + 1;
}

void file_unref(struct file *f) {
  f->refcnt = f->refcnt - 1;
  if (f->refcnt == 0) {
    if (f->kind == 2 && f->pp) f->pp->readers = f->pp->readers - 1;
    if (f->kind == 3 && f->pp) f->pp->writers = f->pp->writers - 1;
    kmem_cache_free(file_cache, (char*)f);
  }
}

int fd_install(struct file *f) {
  for (int fd = 0; fd < 16; fd++) {
    if (current_task->files[fd] == 0) {
      current_task->files[fd] = (long)f;
      return fd;
    }
  }
  return -24;
}

struct file *fd_lookup(long fd) {
  if (fd < 0 || fd >= 16) return (struct file*)0;
  return (struct file*)current_task->files[fd];
}

/* ================= ramfs ================= */

struct inode *ramfs_lookup(char *name) {
  for (int i = 0; i < 64; i++) {
    if (itable[i].used && strcmp(itable[i].name, name) == 0)
      return &itable[i];
  }
  return (struct inode*)0;
}

/* Directory-cache insertion is a real critical section: slot claim and
   name fill must be atomic against concurrent creates.  The sleeping
   allocation happens between the two lock regions (SVA-RACE: the static
   atomic-sleep checker rejects vmalloc under a spinlock), so the slot
   is claimed first and the data pointer is published afterwards. */
struct inode *ramfs_create(char *name) {
  long n = strlen(name);
  if (n > 27) n = 27;
  long slot = -1;
  sva_lock_acquire(&itable_lock);                            /* SVA-RACE */
  for (long i = 0; i < 64; i++) {
    if (slot < 0 && !itable[i].used) {
      slot = i;
      itable[i].used = 1;
      kcopy(itable[i].name, name, n);
      itable[i].name[n] = 0;
      itable[i].size = 0;
      itable[i].cap = 8192;
    }
  }
  sva_lock_release(&itable_lock);                            /* SVA-RACE */
  if (slot < 0) return (struct inode*)0;
  char *data = vmalloc(itable[slot].cap);
  sva_lock_acquire(&itable_lock);                            /* SVA-RACE */
  itable[slot].data = data;
  sva_lock_release(&itable_lock);                            /* SVA-RACE */
  return &itable[slot];
}

long sys_open(long upath, long flags, long a2, long a3) {
  char path[32];
  if (strncpy_from_user(path, upath, 32) < 0) return -14;
  struct inode *ino = ramfs_lookup(path);
  if (!ino) {
    if (flags == 0) return -2;
    ino = ramfs_create(path);
    if (!ino) return -28;
  }
  struct file *f = (struct file*)kmem_cache_alloc(file_cache);
  f->kind = 1;
  f->refcnt = 1;
  f->pos = 0;
  f->ino = ino;
  f->pp = (struct pipe*)0;
  files_opened = files_opened + 1;
  return fd_install(f);
}

long sys_close(long fd, long a1, long a2, long a3) {
  struct file *f = fd_lookup(fd);
  if (!f) return -9;
  current_task->files[fd] = 0;
  file_unref(f);
  return 0;
}

long sys_lseek(long fd, long off, long whence, long a3) {
  struct file *f = fd_lookup(fd);
  if (!f || f->kind != 1) return -9;
  long base = 0;
  if (whence == 1) base = f->pos;
  if (whence == 2) base = f->ino->size;
  long newpos = base + off;
  if (newpos < 0) return -22;
  f->pos = newpos;
  return newpos;
}

long inode_grow(struct inode *ino, long need) {
  if (need <= ino->cap) return 0;
  long newcap = ino->cap * 2;
  while (newcap < need) newcap = newcap * 2;
  char *nd = vmalloc(newcap);
  kcopy(nd, ino->data, ino->size);
  vfree(ino->data);
  ino->data = nd;
  ino->cap = newcap;
  return 0;
}

long sys_read(long fd, long ubuf, long n, long a3) {
  struct file *f = fd_lookup(fd);
  if (!f) return -9;
  if (f->kind == 2) return pipe_read(f, ubuf, n);
  if (f->kind != 1) return -9;
  if (n < 0) return -22;
  struct inode *ino = f->ino;
  long avail = ino->size - f->pos;
  if (avail <= 0) return 0;
  if (n > avail) n = avail;
  /* bounce through a kernel buffer in page-sized chunks */
  char kbuf[512];
  long done = 0;
  while (done < n) {
    long chunk = n - done;
    if (chunk > 512) chunk = 512;
    kcopy(kbuf, ino->data + f->pos + done, chunk);
    if (copy_to_user(ubuf + done, kbuf, chunk) < 0) return -14;
    done = done + chunk;
  }
  f->pos = f->pos + n;
  current_task->utime = current_task->utime + 1;
  return n;
}

long sys_write(long fd, long ubuf, long n, long a3) {
  struct file *f = fd_lookup(fd);
  if (!f) return -9;
  if (f->kind == 3) return pipe_write(f, ubuf, n);
  if (f->kind != 1) return -9;
  if (n < 0) return -22;
  struct inode *ino = f->ino;
  if (inode_grow(ino, f->pos + n) < 0) return -28;
  char kbuf[512];
  long done = 0;
  while (done < n) {
    long chunk = n - done;
    if (chunk > 512) chunk = 512;
    if (copy_from_user(kbuf, ubuf + done, chunk) < 0) return -14;
    kcopy(ino->data + f->pos + done, kbuf, chunk);
    done = done + chunk;
  }
  f->pos = f->pos + n;
  if (f->pos > ino->size) ino->size = f->pos;
  return n;
}

/* ================= pipes ================= */

long sys_pipe(long ufds, long a1, long a2, long a3) {
  struct pipe *pp = (struct pipe*)kmalloc(sizeof(struct pipe));
  if (!pp) return -12;
  pp->rpos = 0;
  pp->wpos = 0;
  pp->count = 0;
  pp->readers = 1;
  pp->writers = 1;
  struct file *fr = (struct file*)kmem_cache_alloc(file_cache);
  struct file *fw = (struct file*)kmem_cache_alloc(file_cache);
  fr->kind = 2; fr->refcnt = 1; fr->pos = 0; fr->pp = pp;
  fr->ino = (struct inode*)0;
  fw->kind = 3; fw->refcnt = 1; fw->pos = 0; fw->pp = pp;
  fw->ino = (struct inode*)0;
  int rfd = fd_install(fr);
  int wfd = fd_install(fw);
  if (rfd < 0 || wfd < 0) return -24;
  int fds[2];
  fds[0] = rfd;
  fds[1] = wfd;
  return copy_to_user(ufds, (char*)fds, 8);
}

long pipe_write(struct file *f, long ubuf, long n) {
  struct pipe *pp = f->pp;
  if (n < 0) return -22;
  long done = 0;
  char kbuf[256];
  while (done < n) {
    long space = 2048 - pp->count;
    if (space == 0) {
      /* drop-tail semantics for a full ring in this single-threaded model */
      return done;
    }
    long chunk = n - done;
    if (chunk > space) chunk = space;
    if (chunk > 256) chunk = 256;
    if (copy_from_user(kbuf, ubuf + done, chunk) < 0) return -14;
    for (long i = 0; i < chunk; i++) {
      pp->rbuf[pp->wpos] = kbuf[i];
      pp->wpos = (pp->wpos + 1) % 2048;
    }
    pp->count = pp->count + chunk;
    done = done + chunk;
  }
  return done;
}

long pipe_read(struct file *f, long ubuf, long n) {
  struct pipe *pp = f->pp;
  if (n < 0) return -22;
  long done = 0;
  char kbuf[256];
  while (done < n && pp->count > 0) {
    long chunk = n - done;
    if (chunk > pp->count) chunk = pp->count;
    if (chunk > 256) chunk = 256;
    for (long i = 0; i < chunk; i++) {
      kbuf[i] = pp->rbuf[pp->rpos];
      pp->rpos = (pp->rpos + 1) % 2048;
    }
    pp->count = pp->count - chunk;
    if (copy_to_user(ubuf + done, kbuf, chunk) < 0) return -14;
    done = done + chunk;
  }
  return done;
}

/* ================= ioctl (BID 11956 pattern) ================= */

/* The Section 6.3 change: the ioctl argument is a user pointer and is
   declared as one (SVA-ANALYSIS). */
struct scsi_ioctl_req { int count; int pad; };

long scsi_ioctl_build(char *uarg) {
  struct scsi_ioctl_req req;
  if (copy_from_user((char*)&req, (long)uarg, sizeof(struct scsi_ioctl_req)) < 0)
    return -14;
  /* VULN(BID-11956): 32-bit multiply overflows for large counts, so the
     allocation is too small for the loop below. */
  int bytes = req.count * 8;
  if (bytes == 0) return -22;
  long *vec = (long*)kmalloc(bytes);
  if (!vec) return -12;
  int limit = req.count;
  if (limit > 16) limit = 16;
  for (int i = 0; i < limit; i++) vec[i] = i;
  kfree((char*)vec);
  return limit;
}

long sys_ioctl(long fd, long cmd, char *uarg, long a3) {    /* SVA-ANALYSIS */
  struct file *f = fd_lookup(fd);
  if (!f) return -9;
  if (cmd == 0x5401) return scsi_ioctl_build(uarg);
  return -25;
}

/* ================= ELF-ish loader + core dump (BID 13589) ================= */

struct uexec_hdr {
  int magic;       /* 0x554b4558 "UKEX" */
  int entry_vpn;
  int npages;
  int dump_len;    /* VULN(BID-13589): signed, trusted by the dump path */
};

long sys_execve(long upath, long a1, long a2, long a3) {
  char path[32];
  if (strncpy_from_user(path, upath, 32) < 0) return -14;
  struct inode *ino = ramfs_lookup(path);
  if (!ino) return -2;
  if (ino->size < sizeof(struct uexec_hdr)) return -8;
  struct uexec_hdr hdr;
  kcopy((char*)&hdr, ino->data, sizeof(struct uexec_hdr));
  if (hdr.magic != 0x554b4558) return -8;
  if (hdr.npages < 0 || hdr.npages > 64) return -8;
  /* a fresh address space with the image mapped at its entry vpn */
  long space = sva_mmu_new_space();                           /* SVA-PORT */
  long uvbase0 = sva_user_base() / 4096;
  /* argument/stack window: the first 8 user pages, shared frames */
  for (int i = 0; i < 8; i++) {
    sva_mmu_map_page(space, uvbase0 + i, uvbase0 + i, 1);     /* SVA-PORT */
  }
  if (hdr.entry_vpn < 8) return -8;
  long uvbase = uvbase0 + hdr.entry_vpn;
  for (int i = 0; i < hdr.npages; i++) {
    long frame = user_frame_alloc();
    sva_mmu_map_page(space, uvbase + i, frame, 1);            /* SVA-PORT */
  }
  long old = current_task->space;
  current_task->space = space;
  sva_mmu_activate(space);                                    /* SVA-PORT */
  if (old != 0) sva_mmu_destroy_space(old);                   /* SVA-PORT */
  /* copy the image payload into the fresh pages */
  long payload = ino->size - sizeof(struct uexec_hdr);
  long max = (long)hdr.npages * 4096;
  if (payload > max) payload = max;
  long ubase = (uvbase * 4096);
  long done = 0;
  char kbuf[512];
  while (done < payload) {
    long chunk = payload - done;
    if (chunk > 512) chunk = 512;
    kcopy(kbuf, ino->data + sizeof(struct uexec_hdr) + done, chunk);
    if (copy_to_user(ubase + done, kbuf, chunk) < 0) return -14;
    done = done + chunk;
  }
  current_task->brk = ubase + payload;
  return 0;
}

/* The core-dump path: reads a header the user controls and passes its
   length field, unchecked, to the raw copy loop.  A negative dump_len
   becomes a huge unsigned count (BID 13589). */
long elf_core_dump(long usrc, long ulen_field) {
  char *dumpbuf = vmalloc(4096);
  if (!dumpbuf) return -12;
  /* the 16-bit length field is read from a user-supplied header... */
  short len = (short)ulen_field;
  /* ...and interpreted as unsigned when sizing the copy */
  unsigned short ulen = (unsigned short)len;
  if (!access_ok(usrc, 1)) return -14;
  __copy_user(dumpbuf, (char*)usrc, (unsigned long)ulen);
  return (long)ulen;
}

long sys_coredump(long usrc, long len_field, long a2, long a3) {
  return elf_core_dump(usrc, len_field);
}

struct stat_buf { long st_size; long st_cap; int st_used; int st_pad; };

long sys_stat(long upath, long ubuf, long a2, long a3) {
  char path[32];
  if (strncpy_from_user(path, upath, 32) < 0) return -14;
  struct inode *ino = ramfs_lookup(path);
  if (!ino) return -2;
  struct stat_buf sb;
  sb.st_size = ino->size;
  sb.st_cap = ino->cap;
  sb.st_used = 1;
  sb.st_pad = 0;
  return copy_to_user(ubuf, (char*)&sb, sizeof(struct stat_buf));
}

long sys_unlink(long upath, long a1, long a2, long a3) {
  char path[32];
  if (strncpy_from_user(path, upath, 32) < 0) return -14;
  struct inode *ino = ramfs_lookup(path);
  if (!ino) return -2;
  ino->used = 0;
  if (ino->data) vfree(ino->data);
  ino->data = (char*)0;
  ino->size = 0;
  ino->cap = 0;
  return 0;
}

void fs_init(void) {
  file_cache = kmem_cache_create(sizeof(struct file));
  for (int i = 0; i < 64; i++) itable[i].used = 0;
}
|}
