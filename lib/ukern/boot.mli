(** Booting the kernel on the SVM and entering it from "userspace".

    {!boot} follows Section 3.4: the SVM loads the (verified) kernel
    bytecode, registers the globals, and transfers control to the kernel
    entry point ([kmain]).

    {!syscall} is the user-to-kernel trap path: the SVM lays down an
    interrupt context on the kernel stack (Table 2), hands the kernel a
    handle to it, dispatches through the kernel's registered handler,
    runs any signal handler the kernel pushed with [llva_ipush_function],
    and tears the context down — under [Native] the same path runs with
    the cheap inline state handling. *)

type t = {
  built : Sva_pipeline.Pipeline.built;
  vm : Sva_interp.Interp.t;
  sys : Sva_os.Svaos.t;
  variant : Kbuild.variant;
  mutable signal_fired : (int * int64) list;
      (** (handler code address, argument) of signal handlers the trap
          path ran, newest first *)
}

exception Boot_failure of string

val boot :
  ?conf:Sva_pipeline.Pipeline.conf ->
  ?variant:Kbuild.variant ->
  ?engine:Sva_pipeline.Pipeline.engine_config ->
  ?smp:Sva_pipeline.Pipeline.smp_config ->
  ?ranges:bool ->
  ?races:bool ->
  ?poolcert:bool ->
  unit ->
  t
(** Build, load and boot the kernel.  [engine] selects the SVM execution
    tier (interpreter by default); [smp] the modeled CPU count (1 by
    default — an N-CPU instance gives each CPU private register state,
    trap scratch and cache shards, see {!run_smp}); [~ranges:true] builds
    with the certificate-verified value-range check elision;
    [~races:true] runs the certificate-verified concurrency-safety pass
    during the build; [~poolcert:true] certifies the points-to layer's
    check elisions (trusted-checker audit, no behaviour change).
    @raise Boot_failure if [kmain] fails. *)

val boot_built :
  ?engine:Sva_pipeline.Pipeline.engine_config ->
  ?smp:Sva_pipeline.Pipeline.smp_config ->
  Sva_pipeline.Pipeline.built ->
  variant:Kbuild.variant ->
  t
(** Boot an already-compiled kernel image (lets benchmarks compile once
    and boot many times). *)

val syscall : t -> int -> int64 list -> int64
(** Trap into the kernel.  At most 4 arguments; missing ones are 0.
    Safety violations and machine faults propagate as exceptions. *)

val interrupt : t -> int -> int64
(** Deliver a hardware interrupt on the given vector: the SVM lays down an
    interrupt context, dispatches the handler the kernel registered with
    [sva_register_interrupt], and tears the context down.  Returns the
    handler's result (-1 if no handler is registered). *)

(** {2 Userspace access for the host-side "applications"} *)

val user_addr : t -> int -> int64
(** [user_addr t off] — address of byte [off] of the init task's user
    window (identity-mapped at boot). *)

val write_user : t -> int -> string -> unit
val read_user : t -> int -> int -> string

(** {2 Wire access} *)

val inject_frame : t -> proto:int -> string -> unit
(** Put a frame on the NIC receive queue (the attacker/client side). *)

val sent_frames : t -> (int * string) list
(** Drain frames the kernel transmitted: (proto, payload). *)

val console : t -> string

val kernel_global : t -> string -> int64
(** Read a kernel global scalar (for assertions, e.g. corruption
    markers). *)

val steps : t -> int
val reset_steps : t -> unit

val cycles : t -> int
(** The SVM's deterministic cycle model (see {!Sva_interp.Interp.cycles});
    {!syscall} additionally charges the trap entry/exit cost, which is
    higher under SVA-OS mediation than for a native inline trap. *)

val reset_cycles : t -> unit

(** {2 Simulated-SMP scheduler}

    Deterministic seeded interleaving of the instance's modeled CPUs on
    the one host thread: jobs are distributed round-robin into per-CPU
    run queues, the least-advanced CPU clock runs next (all CPUs run
    concurrently in model time, ties broken by a seeded LCG), and a CPU
    whose
    queue drains steals half of the longest queue, IPI-ing the victim on
    the dedicated {!reschedule_vector}.  Each job's modeled-cycle delta
    is charged to the clock of the CPU that ran it; the makespan (max
    per-CPU clock) is what an N-way machine would take under this
    schedule, so parallel speedup is makespan(1)/makespan(N).

    [cpus = 1] degenerates to running the jobs in submission order with
    no steals or IPIs — bit-identical to calling them in sequence. *)

val reschedule_vector : int
(** Interrupt vector used for work-stealing reschedule IPIs.  The ukern
    registers no handler on it, so delivery costs exactly the trap
    entry/exit and runs zero checked kernel code. *)

type smp_stats = {
  ss_cpus : int;
  ss_jobs : int;
  ss_steals : int;  (** work-stealing events *)
  ss_ipis_sent : int;
  ss_ipis_delivered : int;
  ss_cycles : int array;  (** per-CPU modeled cycle clock *)
  ss_jobs_per : int array;  (** jobs executed per CPU *)
  ss_makespan : int;  (** max of [ss_cycles] — the modeled wall time *)
  ss_total : int;  (** sum of [ss_cycles] — total modeled work *)
}

val run_smp : t -> cpus:int -> seed:int -> (unit -> unit) list -> smp_stats
(** Run the jobs to completion over [cpus] CPUs with the seeded
    interleaving.  The same (jobs, cpus, seed) triple always produces
    the same schedule, the same per-CPU clocks and the same counters.
    Returns with CPU 0 selected and all IPI queues drained.
    @raise Invalid_argument if [cpus] exceeds the instance's CPU count. *)
