open Sva_analysis

type variant = {
  v_name : string;
  v_mm_analyzed : bool;
  v_usercopy_analyzed : bool;
  v_userspace_valid : bool;
  v_externs_complete : bool;
}

let as_tested =
  {
    v_name = "as-tested";
    v_mm_analyzed = false;
    v_usercopy_analyzed = false;
    v_userspace_valid = false;
    v_externs_complete = false;
  }

let entire_kernel =
  {
    v_name = "entire-kernel";
    v_mm_analyzed = true;
    v_usercopy_analyzed = true;
    v_userspace_valid = true;
    v_externs_complete = true;
  }

let with_usercopy = { as_tested with v_name = "usercopy-compiled"; v_usercopy_analyzed = true }

type section = { sec_name : string; sec_source : string }

let sections v =
  [
    { sec_name = "Arch-dep core (SVA-OS layer)"; sec_source = Ksrc_decls.source };
    {
      sec_name = "Memory subsystem";
      sec_source = Ksrc_mm.source ~analyzed:v.v_mm_analyzed;
    };
    {
      sec_name = "Arch-indep core";
      sec_source = Ksrc_core.source ~usercopy_analyzed:v.v_usercopy_analyzed;
    };
    { sec_name = "Core Filesys."; sec_source = Ksrc_fs.source };
    { sec_name = "Block Filesys. (disk driver)"; sec_source = Ksrc_bfs.source };
    { sec_name = "Net Protocols"; sec_source = Ksrc_net.source };
    { sec_name = "Net Drivers (bluetooth)"; sec_source = Ksrc_bt.source };
    { sec_name = "Init"; sec_source = Ksrc_init.source };
  ]

let sources v = List.map (fun s -> s.sec_source) (sections v)

let allocators =
  [
    Allocdecl.ordinary ~free:"kfree" ~size_arg:0
      ~size_classes:[ 32; 64; 128; 256; 512; 1024; 2048; 4096 ]
      "kmalloc";
    Allocdecl.pool ~free:"kmem_cache_free" ~size_fn:"kmem_cache_objsize"
      ~pool_arg:0 "kmem_cache_alloc";
    Allocdecl.ordinary ~free:"vfree" ~size_arg:0 "vmalloc";
    Allocdecl.ordinary ~size_arg:0 "_alloc_bootmem";
    Allocdecl.ordinary ~size_arg:0 "kernel_lifetime_alloc";
  ]

let aconfig v =
  {
    Pointsto.default_config with
    Pointsto.allocators;
    copy_functions = [ "memcpy"; "memmove"; "strcpy" ];
    known_externs = [ "memset"; "strlen"; "strcmp"; "memcmp" ];
    user_copy_functions = [ "copy_from_user"; "copy_to_user" ];
    syscall_register = Some "sva_register_syscall";
    syscall_invoke = Some "sva_syscall";
    userspace_valid = v.v_userspace_valid;
    externs_complete = v.v_externs_complete;
  }

let fixture_sources v = sources v @ [ Ksrc_lintbugs.source ]
let race_fixture_sources v = sources v @ [ Ksrc_racebugs.source ]

(* The user-copy library dereferences user pointers by design: its raw
   copy loops are the only code allowed to touch userspace (Section 4.6),
   so the taint checker treats them as trusted boundaries. *)
let lint_config v =
  Sva_lint.Lint.config_of_aconfig
    ~extra_trusted:[ "__copy_user"; "strncpy_from_user" ]
    (aconfig v)

let build ?(conf = Sva_pipeline.Pipeline.Sva_safe) ?(lint = false)
    ?(ranges = false) ?(races = false) ?(poolcert = false) v =
  Sva_pipeline.Pipeline.build ~conf ~aconfig:(aconfig v) ~lint
    ~lint_config:(lint_config v) ~ranges ~races ~poolcert
    ~name:("ukern-" ^ v.v_name)
    (sources v)
