(** The architecture-independent kernel core in MiniC: tasks, the syscall
    table and dispatcher, fork, signals (dispatched through the interrupt
    context as required by the SVA port — the Section 6.1 change that
    moved saved state onto the kernel stack), time, rusage, sbrk, and the
    user-space access library.

    The [@UC@] marker on the user-copy library expands to [__noanalyze]
    in the "as tested" build — reproducing Section 7.2's missed exploit:
    "the implementation of the user-to-kernel copying function was in a
    kernel library that was not included when running the safety-checking
    compiler" — and to nothing in the "library compiled" build, which
    catches it. *)

let raw =
  {|
/* ================= tasks ================= */

struct task {
  int pid;
  int ppid;
  int state;             /* 0=free 1=running 2=zombie */
  int pending_sig;
  long space;            /* MMU address space id */
  long brk;              /* user heap break (user virtual address) */
  long utime;
  long stime;
  long nsyscalls;
  long files[16];        /* struct file*, stored as integers for the fd table */
  long sig_handlers[16];
  struct task *next;
  char state_buf[152];   /* llva integer-state save area */
  char fp_buf[64];
  char comm[16];
};

struct kmem_cache *task_cache = 0;
struct task *current_task = 0;
struct task *all_tasks = 0;
int next_pid = 1;
int total_forks = 0;
char *current_icp = 0;

/* user page frames: carved linearly out of the user physical window */
long user_frame_cursor = 0;

long user_frame_alloc(void) {
  long frames = sva_user_size() / 4096;
  if (user_frame_cursor >= frames) { sva_panic(201); }
  long f = user_frame_cursor;
  user_frame_cursor = user_frame_cursor + 1;
  return (sva_user_base() / 4096) + f;
}

/* ================= user memory access library ================= */

int access_ok(long uaddr, long n) {
  if (n < 0) return 0;
  if (uaddr < sva_user_base()) return 0;
  if (uaddr + n > sva_user_base() + sva_user_size()) return 0;
  return 1;
}

/* The raw copying loops: the "additional kernel library" of Section 7.2. */
@UC@ long __copy_user(char *dst, char *src, unsigned long n) {
  unsigned long i = 0;
  while (i + 8 <= n) {
    *(long*)(dst + i) = *(long*)(src + i);
    i = i + 8;
  }
  while (i < n) {
    dst[i] = src[i];
    i = i + 1;
  }
  return 0;
}

long copy_from_user(char *dst, long usrc, long n) {
  if (!access_ok(usrc, n)) return -14;
  __copy_user(dst, (char*)usrc, (unsigned long)n);
  return 0;
}

long copy_to_user(long udst, char *src, long n) {
  if (!access_ok(udst, n)) return -14;
  __copy_user((char*)udst, src, (unsigned long)n);
  return 0;
}

long strncpy_from_user(char *dst, long usrc, long maxlen) {
  if (!access_ok(usrc, 1)) return -14;
  char *s = (char*)usrc;
  long i = 0;
  while (i < maxlen - 1) {
    char c = s[i];
    dst[i] = c;
    if (c == 0) return i;
    i = i + 1;
  }
  dst[i] = 0;
  return i;
}

/* ================= kernel buffer copy ================= */

/* Kernel-to-kernel bulk copies go through the memcpy library routine,
   exactly as in Linux (where memcpy is an uninstrumented assembly
   primitive the paper's safety compiler treats as a declared copy
   function, Section 4.8). */
void kcopy(char *dst, char *src, long n) {
  if (n <= 0) return;
  memcpy(dst, src, n);
}

/* ================= the syscall table and dispatcher ================= */

long syscall_table[64];
long syscalls_served = 0;

void register_syscall_handler(long num, long handler) {
  if (num < 0 || num >= 64) { sva_panic(202); }
  syscall_table[num] = handler;
}

/* All kernel entries funnel through here; the SVM hands us the interrupt
   context it created on the kernel stack (Section 3.3).  Signal dispatch
   happens on the way out via llva_ipush_function (Section 6.1). */
long kernel_syscall_entry(long icp, long num, long a0, long a1, long a2, long a3) {
  current_icp = (char*)icp;                                   /* SVA-PORT */
  syscalls_served = syscalls_served + 1;
  if (num < 0 || num >= 64) return -38;
  long haddr = syscall_table[num];
  if (haddr == 0) return -38;
  long (*h)(long, long, long, long) = (long (*)(long, long, long, long))haddr;
  if (current_task) current_task->nsyscalls = current_task->nsyscalls + 1;
  long r = h(a0, a1, a2, a3);
  if (current_task && current_task->pending_sig) {
    int sig = current_task->pending_sig;
    current_task->pending_sig = 0;
    long handler = current_task->sig_handlers[sig];
    if (handler != 0)
      llva_ipush_function(current_icp, handler, sig);          /* SVA-PORT */
  }
  if (current_task) current_task->stime = current_task->stime + 1;
  return r;
}

/* ================= interrupts ================= */

long jiffies = 0;
long spurious_interrupts = 0;

/* Ticks until the alarm signal fires: written by sys_alarm (syscall
   side, under cli) and decremented by the timer tick (interrupt side,
   masked by the dispatcher) — the canonical shared counter of the
   concurrency port. */
long alarm_ticks = 0;                                        /* SVA-RACE */

/* The timer tick: entered through the same interrupt-context mechanism
   as system calls (Section 3.3).  The pre-SMP kernel also parked its
   interrupt context in the shared [current_icp]; the concurrency port
   removed that store — the tick never dispatches signals itself, and
   the write raced the syscall path's own (SVA-RACE). */
long timer_interrupt(long icp, long vec, long a2, long a3) {
  jiffies = jiffies + 1;
  if (current_task) current_task->utime = current_task->utime + 1;
  if (alarm_ticks > 0) {                                     /* SVA-RACE */
    alarm_ticks = alarm_ticks - 1;
    if (alarm_ticks == 0 && current_task) current_task->pending_sig = 14;
  }
  return 0;
}

/* Arm (or cancel) the tick-driven alarm; returns the previous value.
   The read-modify-write must be atomic against the decrement in
   [timer_interrupt]. */
long sys_alarm(long ticks, long a1, long a2, long a3) {
  if (ticks < 0) return -22;
  sva_cli();                                                 /* SVA-RACE */
  long old = alarm_ticks;
  alarm_ticks = ticks;
  sva_sti();                                                 /* SVA-RACE */
  return old;
}

long spurious_interrupt(long icp, long vec, long a2, long a3) {
  spurious_interrupts = spurious_interrupts + 1;
  return 0;
}

/* ================= process management ================= */

struct task *task_alloc(void) {
  struct task *t = (struct task *)kmem_cache_alloc(task_cache);
  memset((char*)t, 0, sizeof(struct task));
  t->pid = next_pid;
  next_pid = next_pid + 1;
  t->state = 1;
  t->next = all_tasks;
  all_tasks = t;
  return t;
}

struct task *find_task(int pid) {
  struct task *t = all_tasks;
  while (t) {
    if (t->pid == pid) return t;
    t = t->next;
  }
  return (struct task*)0;
}

long sys_getpid(long a0, long a1, long a2, long a3) {
  return current_task->pid;
}

struct rusage { long ru_utime; long ru_stime; long ru_nsyscalls; };

long sys_getrusage(long uptr, long a1, long a2, long a3) {
  struct rusage ru;
  ru.ru_utime = current_task->utime;
  ru.ru_stime = current_task->stime;
  ru.ru_nsyscalls = current_task->nsyscalls;
  return copy_to_user(uptr, (char*)&ru, sizeof(struct rusage));
}

struct timeval { long tv_sec; long tv_usec; };

long sys_gettimeofday(long uptr, long a1, long a2, long a3) {
  struct timeval tv;
  long t = sva_timer_read();                                   /* SVA-PORT */
  tv.tv_sec = t / 1000000;
  tv.tv_usec = t % 1000000;
  return copy_to_user(uptr, (char*)&tv, sizeof(struct timeval));
}

long sys_sbrk(long delta, long a1, long a2, long a3) {
  long old = current_task->brk;
  if (delta == 0) return old;
  long newbrk = old + delta;
  if (newbrk < sva_user_base()) return -22;
  if (newbrk > sva_user_base() + sva_user_size()) return -12;
  /* map any newly spanned pages */
  long vp = (old + 4095) / 4096;
  long endvp = (newbrk + 4095) / 4096;
  while (vp < endvp) {
    sva_mmu_map_page(current_task->space, vp, user_frame_alloc(), 1); /* SVA-PORT */
    vp = vp + 1;
  }
  current_task->brk = newbrk;
  return old;
}

long sys_sigaction(long sig, long handler, long a2, long a3) {
  if (sig < 0 || sig >= 16) return -22;
  current_task->sig_handlers[sig] = handler;
  return 0;
}

long sys_kill(long pid, long sig, long a2, long a3) {
  if (sig < 0 || sig >= 16) return -22;
  struct task *t = find_task((int)pid);
  if (!t) return -3;
  t->pending_sig = (int)sig;
  return 0;
}

long sys_fork(long a0, long a1, long a2, long a3) {
  struct task *parent = current_task;
  struct task *child = task_alloc();
  total_forks = total_forks + 1;
  child->ppid = parent->pid;
  child->brk = parent->brk;
  child->utime = 0;
  child->stime = 0;
  /* duplicate the address space: the expensive part of fork */
  child->space = sva_mmu_clone_space(parent->space);           /* SVA-PORT */
  /* duplicate the fd table */
  for (int i = 0; i < 16; i++) {
    child->files[i] = parent->files[i];
    if (parent->files[i] != 0) file_ref((struct file*)parent->files[i]);
  }
  for (int i = 0; i < 16; i++) child->sig_handlers[i] = parent->sig_handlers[i];
  memcpy(child->comm, parent->comm, 16);
  /* checkpoint the parent's processor state into the child's save area */
  llva_save_integer(child->state_buf);                         /* SVA-PORT */
  llva_save_fp(child->fp_buf, 0);                              /* SVA-PORT */
  return child->pid;
}

long sys_exit(long code, long a1, long a2, long a3) {
  struct task *t = current_task;
  t->state = 2;
  for (int i = 0; i < 16; i++) {
    if (t->files[i] != 0) {
      file_unref((struct file*)t->files[i]);
      t->files[i] = 0;
    }
  }
  if (t->space != 0) sva_mmu_destroy_space(t->space);          /* SVA-PORT */
  t->space = 0;
  return code;
}

/* Switch the current task: save the outgoing processor state, restore the
   incoming one (Table 1 operations), and activate its address space. */
void context_switch(struct task *to) {
  struct task *from = current_task;
  if (from == to) return;
  llva_save_integer(from->state_buf);                          /* SVA-PORT */
  llva_save_fp(from->fp_buf, 0);                               /* SVA-PORT */
  llva_load_integer(to->state_buf);                            /* SVA-PORT */
  llva_load_fp(to->fp_buf);                                    /* SVA-PORT */
  if (to->space != 0) sva_mmu_activate(to->space);             /* SVA-PORT */
  /* the timer tick reads current_task; the switch must be atomic */
  sva_cli();                                                   /* SVA-RACE */
  current_task = to;
  sva_sti();                                                   /* SVA-RACE */
}

long sys_yield(long a0, long a1, long a2, long a3) {
  /* round-robin to the next runnable task, if any */
  struct task *t = current_task->next;
  while (t != current_task) {
    if (!t) t = all_tasks;
    if (t->state == 1) { context_switch(t); return 0; }
    t = t->next;
  }
  return 0;
}
|}

let source ~usercopy_analyzed =
  let attr = if usercopy_analyzed then "" else "__noanalyze " in
  let marker = "@UC@ " in
  let mlen = String.length marker in
  let n = String.length raw in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + mlen <= n && String.sub raw !i mlen = marker then begin
      Buffer.add_string buf attr;
      i := !i + mlen
    end
    else begin
      Buffer.add_char buf raw.[!i];
      incr i
    end
  done;
  Buffer.contents buf
