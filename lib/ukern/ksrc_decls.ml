(** MiniC declarations shared by every kernel translation unit: the SVA-OS
    operations (Section 3.3 — the entire architecture-dependent interface,
    replacing all inline assembly) and the C library builtins the SVM
    provides.  This file {e is} the port's "arch" layer: the kernel
    contains no other machine-specific code. *)

let source =
  {|
/* ==== SVA-OS: processor state (Table 1) ==== */            /* SVA-PORT */
extern void llva_save_integer(char *buffer);                 /* SVA-PORT */
extern void llva_load_integer(char *buffer);                 /* SVA-PORT */
extern int  llva_save_fp(char *buffer, int always);          /* SVA-PORT */
extern void llva_load_fp(char *buffer);                      /* SVA-PORT */

/* ==== SVA-OS: interrupt contexts (Table 2) ==== */         /* SVA-PORT */
extern void llva_icontext_save(char *icp, char *isp);        /* SVA-PORT */
extern void llva_icontext_load(char *icp, char *isp);        /* SVA-PORT */
extern void llva_icontext_commit(char *icp);                 /* SVA-PORT */
extern void llva_ipush_function(char *icp, long fn, long arg); /* SVA-PORT */
extern int  llva_was_privileged(char *icp);                  /* SVA-PORT */

/* ==== SVA-OS: registration and dispatch ==== */            /* SVA-PORT */
extern void sva_register_syscall(long num, ...);             /* SVA-PORT */
extern void sva_register_interrupt(long vec, ...);           /* SVA-PORT */
extern long sva_syscall(long num, ...);                      /* SVA-PORT */

/* ==== SVA-OS: MMU ==== */                                  /* SVA-PORT */
extern long sva_mmu_new_space(void);                         /* SVA-PORT */
extern long sva_mmu_clone_space(long sid);                   /* SVA-PORT */
extern void sva_mmu_destroy_space(long sid);                 /* SVA-PORT */
extern void sva_mmu_activate(long sid);                      /* SVA-PORT */
extern void sva_mmu_map_page(long sid, long vpn, long ppn, long writable); /* SVA-PORT */
extern void sva_mmu_unmap_page(long sid, long vpn);          /* SVA-PORT */
extern long sva_mmu_page_count(long sid);                    /* SVA-PORT */

/* ==== SVA-OS: I/O and timer ==== */                        /* SVA-PORT */
extern void sva_io_console_write(char *buf, long len);       /* SVA-PORT */
extern void sva_io_disk_read(long block, char *buf);         /* SVA-PORT */
extern void sva_io_disk_write(long block, char *buf);        /* SVA-PORT */
extern void sva_io_nic_send(long proto, char *buf, long len);/* SVA-PORT */
extern long sva_io_nic_recv(char *buf, long maxlen);         /* SVA-PORT */
extern long sva_timer_read(void);                            /* SVA-PORT */
extern void sva_cli(void);                                   /* SVA-PORT */
extern void sva_sti(void);                                   /* SVA-PORT */
extern void sva_lock_acquire(long *lk);                      /* SVA-PORT */
extern void sva_lock_release(long *lk);                      /* SVA-PORT */
extern void sva_panic(long code);                            /* SVA-PORT */

/* ==== SVA-OS: memory layout constants ==== */              /* SVA-PORT */
extern long sva_heap_base(void);                             /* SVA-PORT */
extern long sva_heap_size(void);                             /* SVA-PORT */
extern long sva_user_base(void);                             /* SVA-PORT */
extern long sva_user_size(void);                             /* SVA-PORT */

/* ==== manufactured addresses (Section 4.7) ==== */         /* SVA-PORT */
extern char *sva_pseudo_alloc(long start, long len);         /* SVA-PORT */

/* ==== C library provided by the SVM ==== */
extern void *memcpy(char *dst, char *src, long n);
extern void *memmove(char *dst, char *src, long n);
extern void *memset(char *p, int c, long n);
extern int   memcmp(char *a, char *b, long n);
extern long  strlen(char *s);
extern int   strcmp(char *a, char *b);
extern char *strcpy(char *d, char *s);
|}
