(** Kernel initialization in MiniC: [kmain] is the kernel entry point the
    SVM transfers control to after loading the bytecode (Section 3.4).
    It brings up the memory subsystem, creates the caches, registers
    every system call with the SVM ([sva_register_syscall] — which also
    lets the analysis resolve internal syscalls, Section 4.8), probes the
    BIOS area through [sva_pseudo_alloc] (the manufactured-address
    registration of Section 4.7), and starts the init task. *)

let source =
  {|
/* ================= syscall numbers ================= */
/* 1 getpid  2 getrusage  3 gettimeofday  4 open   5 close
   6 read    7 write      8 pipe          9 fork  10 execve
  11 sbrk   12 sigaction 13 kill         14 socket 15 bind
  16 sendto 17 recvfrom  18 setsockopt   19 exit   20 lseek
  21 ioctl  22 netpoll   23 yield        24 coredump 25 sockclose
  26 stat   27 unlink    28 mount        29 sync   30 bsave
  31 bload  32 alarm */

long boot_ticks = 0;
int kernel_booted = 0;
char *bios_area = 0;

/* Internal system calls go through the same dispatch mechanism as
   userspace (Section 4.8): the analysis resolves the constant number to
   the registered handler. */
long kernel_selftest(void) {
  long pid = sva_syscall(1);                                  /* SVA-PORT */
  if (pid <= 0) return -1;
  return 0;
}

__kernel_entry int kmain(void) {
  boot_ticks = sva_timer_read();                              /* SVA-PORT */
  mm_init();
  kmalloc_init();
  task_cache = kmem_cache_create(sizeof(struct task));
  fs_init();
  net_init();

  /* manufactured addresses: scan the BIOS signature area (Section 4.7) */
  bios_area = sva_pseudo_alloc(0xE0000, 0x20000);             /* SVA-PORT */
  int have_sig = 0;
  for (long off = 0; off < 64; off++) {
    if (bios_area[off] == 0x5f) have_sig = have_sig + 1;
  }

  /* the init task and its address space */
  struct task *init = task_alloc();
  init->space = sva_mmu_new_space();                          /* SVA-PORT */
  init->brk = sva_user_base();
  strcpy(init->comm, "init");
  current_task = init;
  /* identity-map an initial user window of 64 pages for init */
  long uvbase = sva_user_base() / 4096;
  for (int i = 0; i < 64; i++) {
    sva_mmu_map_page(init->space, uvbase + i, user_frame_alloc(), 1); /* SVA-PORT */
  }
  sva_mmu_activate(init->space);                              /* SVA-PORT */
  init->brk = sva_user_base() + 64 * 4096;

  /* register every system call with the SVM */
  sva_register_syscall(1, sys_getpid);                        /* SVA-PORT */
  sva_register_syscall(2, sys_getrusage);                     /* SVA-PORT */
  sva_register_syscall(3, sys_gettimeofday);                  /* SVA-PORT */
  sva_register_syscall(4, sys_open);                          /* SVA-PORT */
  sva_register_syscall(5, sys_close);                         /* SVA-PORT */
  sva_register_syscall(6, sys_read);                          /* SVA-PORT */
  sva_register_syscall(7, sys_write);                         /* SVA-PORT */
  sva_register_syscall(8, sys_pipe);                          /* SVA-PORT */
  sva_register_syscall(9, sys_fork);                          /* SVA-PORT */
  sva_register_syscall(10, sys_execve);                       /* SVA-PORT */
  sva_register_syscall(11, sys_sbrk);                         /* SVA-PORT */
  sva_register_syscall(12, sys_sigaction);                    /* SVA-PORT */
  sva_register_syscall(13, sys_kill);                         /* SVA-PORT */
  sva_register_syscall(14, sys_socket);                       /* SVA-PORT */
  sva_register_syscall(15, sys_bind);                         /* SVA-PORT */
  sva_register_syscall(16, sys_sendto);                       /* SVA-PORT */
  sva_register_syscall(17, sys_recvfrom);                     /* SVA-PORT */
  sva_register_syscall(18, sys_setsockopt);                   /* SVA-PORT */
  sva_register_syscall(19, sys_exit);                         /* SVA-PORT */
  sva_register_syscall(20, sys_lseek);                        /* SVA-PORT */
  sva_register_syscall(21, sys_ioctl);                        /* SVA-PORT */
  sva_register_syscall(22, sys_netpoll);                      /* SVA-PORT */
  sva_register_syscall(23, sys_yield);                        /* SVA-PORT */
  sva_register_syscall(24, sys_coredump);                     /* SVA-PORT */
  sva_register_syscall(25, sys_sockclose);                    /* SVA-PORT */
  sva_register_syscall(26, sys_stat);                         /* SVA-PORT */
  sva_register_syscall(27, sys_unlink);                       /* SVA-PORT */
  sva_register_syscall(28, sys_mount);                        /* SVA-PORT */
  sva_register_syscall(29, sys_sync);                         /* SVA-PORT */
  sva_register_syscall(30, sys_bsave);                        /* SVA-PORT */
  sva_register_syscall(31, sys_bload);                        /* SVA-PORT */
  sva_register_syscall(32, sys_alarm);                        /* SVA-PORT */

  /* mirror the registrations in the kernel's own dispatch table */
  register_syscall_handler(1, (long)sys_getpid);
  register_syscall_handler(2, (long)sys_getrusage);
  register_syscall_handler(3, (long)sys_gettimeofday);
  register_syscall_handler(4, (long)sys_open);
  register_syscall_handler(5, (long)sys_close);
  register_syscall_handler(6, (long)sys_read);
  register_syscall_handler(7, (long)sys_write);
  register_syscall_handler(8, (long)sys_pipe);
  register_syscall_handler(9, (long)sys_fork);
  register_syscall_handler(10, (long)sys_execve);
  register_syscall_handler(11, (long)sys_sbrk);
  register_syscall_handler(12, (long)sys_sigaction);
  register_syscall_handler(13, (long)sys_kill);
  register_syscall_handler(14, (long)sys_socket);
  register_syscall_handler(15, (long)sys_bind);
  register_syscall_handler(16, (long)sys_sendto);
  register_syscall_handler(17, (long)sys_recvfrom);
  register_syscall_handler(18, (long)sys_setsockopt);
  register_syscall_handler(19, (long)sys_exit);
  register_syscall_handler(20, (long)sys_lseek);
  register_syscall_handler(21, (long)sys_ioctl);
  register_syscall_handler(22, (long)sys_netpoll);
  register_syscall_handler(23, (long)sys_yield);
  register_syscall_handler(24, (long)sys_coredump);
  register_syscall_handler(25, (long)sys_sockclose);
  register_syscall_handler(26, (long)sys_stat);
  register_syscall_handler(27, (long)sys_unlink);
  register_syscall_handler(28, (long)sys_mount);
  register_syscall_handler(29, (long)sys_sync);
  register_syscall_handler(30, (long)sys_bsave);
  register_syscall_handler(31, (long)sys_bload);
  register_syscall_handler(32, (long)sys_alarm);

  /* interrupt handlers: vector 0 = timer, 2 = NIC rx, 7 = spurious */
  sva_register_interrupt(0, timer_interrupt);                 /* SVA-PORT */
  sva_register_interrupt(2, nic_rx_interrupt);                /* SVA-PORT */
  sva_register_interrupt(7, spurious_interrupt);              /* SVA-PORT */

  if (kernel_selftest() < 0) sva_panic(301);
  kernel_booted = 1;
  return have_sig;
}
|}
