(** Seeded-bug fixture for the static lint layer.

    A small "vendor module" appended to the kernel sources in the
    [sva_lint --fixture] build: every function below contains exactly one
    deliberate defect from the classes the checkers cover.  The fixture
    code is registered but never invoked at run time, so it perturbs no
    benchmark; {!expected} is the ground truth the lint self-test and the
    regression suite compare against. *)

let source =
  {|
/* ============ lint fixture: intentionally buggy module ============ */

/* BUG 1b (interprocedural taint sink): dereferences its argument, which
   sys_peek2_user below taints with a raw syscall argument. */
long lint_fetch(long *p) {
  return *p;                               /* user-taint: via sys_peek2_user */
}

/* BUG 1a: dereferences a user-supplied address directly instead of
   going through copy_from_user. */
long sys_peek_user(long uptr, long a1, long a2, long a3) {
  long *p = (long *)uptr;
  return *p;                               /* user-taint: direct deref */
}

long sys_peek2_user(long uptr, long a1, long a2, long a3) {
  return lint_fetch((long *)uptr);
}

/* BUG 2: dereferences a pointer that is null on every path reaching the
   load (the static side of guarantee T4). */
long lint_null_deref(int flag) {
  long *p = (long *)0;
  if (flag) return 0;
  return *p;                               /* null-deref: definite null */
}

/* BUG 3: dereferences on the branch that just established the pointer
   IS null; the fall-through dereference is fine and must not be
   flagged. */
long lint_guard_deref(long *q) {
  if (q == 0) {
    return *q;                             /* null-deref: on == 0 branch */
  }
  return *q;                               /* clean: q non-null here */
}

/* BUG 4: an interrupt handler's helper calls a sleeping allocator. */
long lint_irq_helper(long n) {
  char *b = kmalloc(n);                    /* irq-sleep: kmalloc in irq */
  if (!b) return -1;
  kfree(b);
  return 0;
}

long lint_storm_interrupt(long icp, long vec, long a2, long a3) {
  return lint_irq_helper(64);
}

/* Registration makes the bugs reachable for the analysis (the syscall
   table seeds the taint checker; the interrupt registration roots the
   irq checker).  Never called at run time. */
void lint_fixture_init(void) {
  sva_register_syscall(90, sys_peek_user);                    /* SVA-PORT */
  sva_register_syscall(91, sys_peek2_user);                   /* SVA-PORT */
  sva_register_interrupt(9, lint_storm_interrupt);            /* SVA-PORT */
}
|}

(* Ground truth: (checker, function) of every seeded defect. *)
let expected =
  [
    ("irq-sleep", "lint_irq_helper");
    ("null-deref", "lint_guard_deref");
    ("null-deref", "lint_null_deref");
    ("user-taint", "lint_fetch");
    ("user-taint", "sys_peek_user");
  ]
