module Machine = Sva_hw.Machine
module Svaos = Sva_os.Svaos
module Interp = Sva_interp.Interp
module Pipeline = Sva_pipeline.Pipeline

type t = {
  built : Pipeline.built;
  vm : Interp.t;
  sys : Svaos.t;
  variant : Kbuild.variant;
  mutable signal_fired : (int * int64) list;
}

exception Boot_failure of string

(* Interrupt contexts live at the top of the kernel stack region, well
   above the executor's frame allocations — one private 8KB scratch area
   per modeled CPU, so concurrent traps on different CPUs never share
   state.  CPU 0's area is the pre-SMP single-CPU scratch address. *)
let trap_scratch t =
  Machine.percpu_trap_base ~cpu:(Svaos.current_cpu t.sys)

let boot_built ?engine ?smp built ~variant =
  let vm = Pipeline.instantiate ?engine ?smp built in
  let sys = Interp.sys vm in
  (match Interp.call vm "kmain" [] with
  | Some _ -> ()
  | None -> raise (Boot_failure "kmain returned void")
  | exception e -> raise (Boot_failure (Printexc.to_string e)));
  { built; vm; sys; variant; signal_fired = [] }

let boot ?(conf = Pipeline.Sva_safe) ?(variant = Kbuild.as_tested) ?engine
    ?smp ?(ranges = false) ?(races = false) ?(poolcert = false) () =
  boot_built ?engine ?smp
    (Kbuild.build ~conf ~ranges ~races ~poolcert variant)
    ~variant

(* Trap entry + exit cost in the cycle model: the SVM's interrupt-context
   creation/teardown (Table 2).  Mediated mode spills and validates the
   full control state; a native kernel's inline trap stub is leaner. *)
let trap_cost sys =
  match sys.Svaos.mode with
  | Svaos.Sva_mediated -> 90
  | Svaos.Native_inline -> 48

let syscall_body t num (a : int64 array) =
  Interp.add_cycles t.vm (trap_cost t.sys);
  let icp =
    Svaos.icontext_create t.sys ~sp:(trap_scratch t) ~was_privileged:false
  in
  Fun.protect
    ~finally:(fun () ->
      try Svaos.icontext_destroy t.sys ~icp
      with _ -> () (* a trap may have left the stack unbalanced *))
    (fun () ->
      let r =
        Interp.call t.vm "kernel_syscall_entry"
          [ Int64.of_int icp; Int64.of_int num; a.(0); a.(1); a.(2); a.(3) ]
      in
      (* Run any signal handler the kernel pushed onto the interrupt
         context (the signal-dispatch mechanism of Section 6.1). *)
      (match Svaos.ipush_pending t.sys ~icp with
      | Some (fn, arg) ->
          t.signal_fired <- (fn, arg) :: t.signal_fired;
          (match Interp.func_name t.vm fn with
          | Some _ -> ignore (Interp.call_addr t.vm fn [ arg ])
          | None -> ())
      | None -> ());
      Option.value r ~default:0L)

let syscall t num args =
  let pad = args @ List.init (max 0 (4 - List.length args)) (fun _ -> 0L) in
  let a = Array.of_list pad in
  if not (!Sva_rt.Trace.active || !Sva_rt.Trace.profiling) then
    syscall_body t num a
  else begin
    (* The observation scope is the whole trap path — enter before the
       trap cost is charged so the profiler attributes it to the syscall,
       exit after teardown; balanced even when a check traps out. *)
    if !Sva_rt.Trace.active then Sva_rt.Trace.emit_syscall_enter ~num;
    if !Sva_rt.Trace.profiling then
      Sva_rt.Trace.sys_enter num ~cycles:(Interp.cycles t.vm)
        ~checks:(Sva_rt.Stats.checks_now ());
    Fun.protect
      ~finally:(fun () ->
        if !Sva_rt.Trace.profiling then
          Sva_rt.Trace.sys_exit num ~cycles:(Interp.cycles t.vm)
            ~checks:(Sva_rt.Stats.checks_now ());
        if !Sva_rt.Trace.active then Sva_rt.Trace.emit_syscall_exit ~num)
      (fun () -> syscall_body t num a)
  end

let interrupt t vector =
  Interp.add_cycles t.vm (trap_cost t.sys);
  let icp =
    Svaos.icontext_create t.sys ~sp:(trap_scratch t + 1024)
      ~was_privileged:true
  in
  Fun.protect
    ~finally:(fun () -> try Svaos.icontext_destroy t.sys ~icp with _ -> ())
    (fun () ->
      match Svaos.interrupt_handler t.sys ~vector with
      | Some handler ->
          Option.value
            (Interp.call t.vm handler
               [ Int64.of_int icp; Int64.of_int vector; 0L; 0L ])
            ~default:0L
      | None -> -1L)

let user_addr _t off = Int64.of_int (Machine.user_base + off)

let write_user t off s =
  Machine.write t.sys.Svaos.machine ~addr:(Machine.user_base + off)
    (Bytes.of_string s)

let read_user t off len =
  Bytes.to_string
    (Machine.read t.sys.Svaos.machine ~addr:(Machine.user_base + off) ~len)

let inject_frame t ~proto payload =
  Sva_hw.Devices.nic_inject t.sys.Svaos.devices
    { Sva_hw.Devices.fr_proto = proto; fr_payload = Bytes.of_string payload }

let sent_frames t =
  List.map
    (fun fr ->
      (fr.Sva_hw.Devices.fr_proto, Bytes.to_string fr.Sva_hw.Devices.fr_payload))
    (Sva_hw.Devices.nic_take_tx t.sys.Svaos.devices)

let console t = Sva_hw.Devices.console_output t.sys.Svaos.devices

let kernel_global t name =
  let addr = Interp.global_addr t.vm name in
  let size = min 8 (Interp.global_size t.vm name) in
  Machine.read_int t.sys.Svaos.machine ~addr ~width:size

let steps t = Interp.steps t.vm
let reset_steps t = Interp.reset_steps t.vm
let cycles t = Interp.cycles t.vm
let reset_cycles t = Interp.reset_cycles t.vm

(* ---------- simulated-SMP scheduler ----------

   Deterministic seeded interleaving of N modeled CPUs on the one host
   thread.  Jobs are distributed round-robin into per-CPU run queues;
   the least-advanced CPU clock executes next (all CPUs run concurrently
   in model time), with clock ties broken by a seeded LCG; a CPU whose
   queue drained
   steals half of the longest queue and IPIs the victim on a dedicated
   reschedule vector (delivered next time the victim runs with
   interrupts enabled — an unregistered vector, so delivery costs only
   the trap entry/exit and executes zero checked kernel code).

   Cycle accounting: the SVM keeps one global cycle counter, so each
   job's (and each IPI delivery's) cycle delta is charged to the clock
   of the CPU that ran it.  The modeled makespan is the maximum per-CPU
   clock — what an N-way machine would take with this schedule — and
   parallel speedup is makespan(1)/makespan(N).

   With [cpus = 1] the schedule degenerates to running the jobs in
   submission order with no steals and no IPIs: bit-identical (cycles,
   checks, verdicts) to calling the jobs in sequence, which the
   differential tests assert. *)

let reschedule_vector = 240

type smp_stats = {
  ss_cpus : int;
  ss_jobs : int;
  ss_steals : int;
  ss_ipis_sent : int;
  ss_ipis_delivered : int;
  ss_cycles : int array;
  ss_jobs_per : int array;
  ss_makespan : int;
  ss_total : int;
}

let run_smp t ~cpus ~seed jobs =
  if cpus < 1 || cpus > Svaos.ncpus t.sys then
    invalid_arg
      (Printf.sprintf "Boot.run_smp: %d cpus on a %d-cpu instance" cpus
         (Svaos.ncpus t.sys));
  let queues = Array.init cpus (fun _ -> Queue.create ()) in
  List.iteri (fun i job -> Queue.add job queues.(i mod cpus)) jobs;
  let clocks = Array.make cpus 0 in
  let jobs_per = Array.make cpus 0 in
  let steals = ref 0 in
  let conc0 = Sva_rt.Stats.read_conc () in
  (* Seeded LCG (glibc constants, 30-bit state): the whole interleaving
     is a pure function of [seed], so any run is reproducible.  Draw
     from the HIGH bits — the low bits of a power-of-two-modulus LCG
     are themselves a tiny cycle (multiplier and increment are both odd,
     so state mod 4 just counts), which would degenerate the "random"
     CPU pick into strict round-robin and never exercise stealing. *)
  let state = ref ((seed lxor 0x5DEECE6) land 0x3FFFFFFF) in
  let rand m =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (!state lsr 16) mod m
  in
  let charge cpu f =
    let c0 = cycles t in
    let r = f () in
    clocks.(cpu) <- clocks.(cpu) + (cycles t - c0);
    r
  in
  (* Next slot goes to the least-advanced CPU: in model time all CPUs
     run concurrently, so the CPU whose clock is lowest is the one that
     reaches its next instruction first.  Ties — fresh clocks, lockstep
     progress on identical jobs — are broken by the seeded LCG, which
     is where the schedule's controlled nondeterminism comes from. *)
  let pick () =
    let lowest = ref max_int in
    Array.iter (fun c -> if c < !lowest then lowest := c) clocks;
    let ties = ref [] in
    for c = cpus - 1 downto 0 do
      if clocks.(c) = !lowest then ties := c :: !ties
    done;
    match !ties with
    | [ c ] -> c
    | ts -> List.nth ts (rand (List.length ts))
  in
  let remaining = ref (List.length jobs) in
  while !remaining > 0 do
    let c = if cpus = 1 then 0 else pick () in
    Svaos.switch_cpu t.sys c;
    (* Deliver pending IPIs first — interrupts beat the run queue. *)
    if Svaos.interrupts_enabled t.sys then begin
      let rec drain () =
        match Svaos.take_ipi t.sys with
        | Some v ->
            ignore (charge c (fun () -> interrupt t v));
            drain ()
        | None -> ()
      in
      drain ()
    end;
    let job =
      if not (Queue.is_empty queues.(c)) then Some (Queue.pop queues.(c))
      else begin
        (* Work stealing: take half of the longest queue and tell the
           victim its queue shrank. *)
        let victim = ref (-1) in
        let best = ref 0 in
        for i = 0 to cpus - 1 do
          let l = Queue.length queues.(i) in
          if l > !best then begin
            best := l;
            victim := i
          end
        done;
        if !victim < 0 then None
        else begin
          incr steals;
          for _ = 1 to (!best + 1) / 2 do
            Queue.add (Queue.pop queues.(!victim)) queues.(c)
          done;
          Svaos.ipi_send t.sys ~cpu:!victim ~vector:reschedule_vector;
          Some (Queue.pop queues.(c))
        end
      end
    in
    match job with
    | None -> () (* nothing anywhere for this CPU this slot *)
    | Some job ->
        charge c job;
        jobs_per.(c) <- jobs_per.(c) + 1;
        decr remaining
  done;
  (* Drain straggler IPIs so no queue leaks into later measurements,
     then hand the instance back on CPU 0. *)
  for c = 0 to cpus - 1 do
    Svaos.switch_cpu t.sys c;
    let rec drain () =
      match Svaos.take_ipi t.sys with
      | Some v ->
          ignore (charge c (fun () -> interrupt t v));
          drain ()
      | None -> ()
    in
    if Svaos.interrupts_enabled t.sys then drain ()
  done;
  Svaos.switch_cpu t.sys 0;
  let d = Sva_rt.Stats.diff_conc (Sva_rt.Stats.read_conc ()) conc0 in
  {
    ss_cpus = cpus;
    ss_jobs = List.length jobs;
    ss_steals = !steals;
    ss_ipis_sent = d.Sva_rt.Stats.ipis_sent;
    ss_ipis_delivered = d.Sva_rt.Stats.ipis_delivered;
    ss_cycles = clocks;
    ss_jobs_per = jobs_per;
    ss_makespan = Array.fold_left max 0 clocks;
    ss_total = Array.fold_left ( + ) 0 clocks;
  }
