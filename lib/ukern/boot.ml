module Machine = Sva_hw.Machine
module Svaos = Sva_os.Svaos
module Interp = Sva_interp.Interp
module Pipeline = Sva_pipeline.Pipeline

type t = {
  built : Pipeline.built;
  vm : Interp.t;
  sys : Svaos.t;
  variant : Kbuild.variant;
  mutable signal_fired : (int * int64) list;
}

exception Boot_failure of string

(* Interrupt contexts live at the top of the kernel stack region, well
   above the executor's frame allocations. *)
let icontext_scratch = Machine.stack_base + Machine.stack_size - 4096

let boot_built ?engine built ~variant =
  let vm = Pipeline.instantiate ?engine built in
  let sys = Interp.sys vm in
  (match Interp.call vm "kmain" [] with
  | Some _ -> ()
  | None -> raise (Boot_failure "kmain returned void")
  | exception e -> raise (Boot_failure (Printexc.to_string e)));
  { built; vm; sys; variant; signal_fired = [] }

let boot ?(conf = Pipeline.Sva_safe) ?(variant = Kbuild.as_tested) ?engine
    ?(ranges = false) ?(races = false) ?(poolcert = false) () =
  boot_built ?engine
    (Kbuild.build ~conf ~ranges ~races ~poolcert variant)
    ~variant

(* Trap entry + exit cost in the cycle model: the SVM's interrupt-context
   creation/teardown (Table 2).  Mediated mode spills and validates the
   full control state; a native kernel's inline trap stub is leaner. *)
let trap_cost sys =
  match sys.Svaos.mode with
  | Svaos.Sva_mediated -> 90
  | Svaos.Native_inline -> 48

let syscall_body t num (a : int64 array) =
  Interp.add_cycles t.vm (trap_cost t.sys);
  let icp =
    Svaos.icontext_create t.sys ~sp:icontext_scratch ~was_privileged:false
  in
  Fun.protect
    ~finally:(fun () ->
      try Svaos.icontext_destroy t.sys ~icp
      with _ -> () (* a trap may have left the stack unbalanced *))
    (fun () ->
      let r =
        Interp.call t.vm "kernel_syscall_entry"
          [ Int64.of_int icp; Int64.of_int num; a.(0); a.(1); a.(2); a.(3) ]
      in
      (* Run any signal handler the kernel pushed onto the interrupt
         context (the signal-dispatch mechanism of Section 6.1). *)
      (match Svaos.ipush_pending t.sys ~icp with
      | Some (fn, arg) ->
          t.signal_fired <- (fn, arg) :: t.signal_fired;
          (match Interp.func_name t.vm fn with
          | Some _ -> ignore (Interp.call_addr t.vm fn [ arg ])
          | None -> ())
      | None -> ());
      Option.value r ~default:0L)

let syscall t num args =
  let pad = args @ List.init (max 0 (4 - List.length args)) (fun _ -> 0L) in
  let a = Array.of_list pad in
  if not (!Sva_rt.Trace.active || !Sva_rt.Trace.profiling) then
    syscall_body t num a
  else begin
    (* The observation scope is the whole trap path — enter before the
       trap cost is charged so the profiler attributes it to the syscall,
       exit after teardown; balanced even when a check traps out. *)
    if !Sva_rt.Trace.active then Sva_rt.Trace.emit_syscall_enter ~num;
    if !Sva_rt.Trace.profiling then
      Sva_rt.Trace.sys_enter num ~cycles:(Interp.cycles t.vm)
        ~checks:(Sva_rt.Stats.checks_now ());
    Fun.protect
      ~finally:(fun () ->
        if !Sva_rt.Trace.profiling then
          Sva_rt.Trace.sys_exit num ~cycles:(Interp.cycles t.vm)
            ~checks:(Sva_rt.Stats.checks_now ());
        if !Sva_rt.Trace.active then Sva_rt.Trace.emit_syscall_exit ~num)
      (fun () -> syscall_body t num a)
  end

let interrupt t vector =
  Interp.add_cycles t.vm (trap_cost t.sys);
  let icp =
    Svaos.icontext_create t.sys ~sp:(icontext_scratch + 1024)
      ~was_privileged:true
  in
  Fun.protect
    ~finally:(fun () -> try Svaos.icontext_destroy t.sys ~icp with _ -> ())
    (fun () ->
      match Svaos.interrupt_handler t.sys ~vector with
      | Some handler ->
          Option.value
            (Interp.call t.vm handler
               [ Int64.of_int icp; Int64.of_int vector; 0L; 0L ])
            ~default:0L
      | None -> -1L)

let user_addr _t off = Int64.of_int (Machine.user_base + off)

let write_user t off s =
  Machine.write t.sys.Svaos.machine ~addr:(Machine.user_base + off)
    (Bytes.of_string s)

let read_user t off len =
  Bytes.to_string
    (Machine.read t.sys.Svaos.machine ~addr:(Machine.user_base + off) ~len)

let inject_frame t ~proto payload =
  Sva_hw.Devices.nic_inject t.sys.Svaos.devices
    { Sva_hw.Devices.fr_proto = proto; fr_payload = Bytes.of_string payload }

let sent_frames t =
  List.map
    (fun fr ->
      (fr.Sva_hw.Devices.fr_proto, Bytes.to_string fr.Sva_hw.Devices.fr_payload))
    (Sva_hw.Devices.nic_take_tx t.sys.Svaos.devices)

let console t = Sva_hw.Devices.console_output t.sys.Svaos.devices

let kernel_global t name =
  let addr = Interp.global_addr t.vm name in
  let size = min 8 (Interp.global_size t.vm name) in
  Machine.read_int t.sys.Svaos.machine ~addr ~width:size

let steps t = Interp.steps t.vm
let reset_steps t = Interp.reset_steps t.vm
let cycles t = Interp.cycles t.vm
let reset_cycles t = Interp.reset_cycles t.vm
