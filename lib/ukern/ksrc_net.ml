(** The network stack in MiniC: sockets, a UDP-ish datagram layer over the
    simulated NIC, the routing (fib) code modelled on Figure 2 of the
    paper, and two vulnerable protocol handlers:

    - [igmp_rcv] — BID 11917: a length underflow turns into a huge copy
      bound overrunning a kmalloc'd report buffer;
    - [sys_setsockopt] MCAST_MSFILTER — BID 10179: a 32-bit size
      computation overflows, kmalloc returns a too-small filter object,
      and the copy loop overruns it.

    The routing control path ([fib_ctl]) indexes [fib_props] with a
    message-supplied type, mirroring the paper's Figure 2 code. *)

let source =
  {|
/* ================= sockets ================= */

struct pkt {
  struct pkt *next;
  long len;
  int src_port;
  char data[1400];
};

struct socket {
  int used;
  int bound_port;
  int proto;
  long rx_queued;
  struct pkt *rx_head;
  struct pkt *rx_tail;
  int filter_count;
  int *filter;        /* MCAST_MSFILTER source list */
};

struct socket sock_table[16];
long socktab_lock = 0;                                       /* SVA-RACE */
struct kmem_cache *pkt_cache = 0;
long net_rx_frames = 0;
long net_tx_frames = 0;
long net_rx_dropped = 0;

/* Frames the NIC has signalled but the stack has not polled yet: shared
   between the rx interrupt top half and the syscall-side poll loop. */
long net_rx_pending = 0;                                     /* SVA-RACE */

/* Socket allocation claims a table slot under the lock; no early return
   may leave the critical section (SVA-RACE: the lock-imbalance checker
   rejects paths that exit with the lock held). */
long sys_socket(long proto, long a1, long a2, long a3) {
  long sd = -24;
  sva_lock_acquire(&socktab_lock);                           /* SVA-RACE */
  for (int i = 0; i < 16; i++) {
    if (sd < 0 && !sock_table[i].used) {
      sock_table[i].used = 1;
      sock_table[i].proto = (int)proto;
      sock_table[i].bound_port = 0;
      sock_table[i].rx_head = (struct pkt*)0;
      sock_table[i].rx_tail = (struct pkt*)0;
      sock_table[i].rx_queued = 0;
      sock_table[i].filter_count = 0;
      sock_table[i].filter = (int*)0;
      sd = i;
    }
  }
  sva_lock_release(&socktab_lock);                           /* SVA-RACE */
  return sd;
}

struct socket *sock_lookup(long sd) {
  if (sd < 0 || sd >= 16) return (struct socket*)0;
  if (!sock_table[sd].used) return (struct socket*)0;
  return &sock_table[sd];
}

long sys_bind(long sd, long port, long a2, long a3) {
  struct socket *s = sock_lookup(sd);
  if (!s) return -9;
  s->bound_port = (int)port;
  return 0;
}

long sys_sockclose(long sd, long a1, long a2, long a3) {
  struct socket *s = sock_lookup(sd);
  if (!s) return -9;
  while (s->rx_head) {
    struct pkt *p = s->rx_head;
    s->rx_head = p->next;
    kmem_cache_free(pkt_cache, (char*)p);
  }
  if (s->filter) kfree((char*)s->filter);
  s->filter = (int*)0;
  s->used = 0;
  return 0;
}

/* Datagram transmit: [port:4][payload] inside the frame. */
long sys_sendto(long sd, long ubuf, long n, long port) {
  struct socket *s = sock_lookup(sd);
  if (!s) return -9;
  if (n < 0 || n > 1400) return -90;
  char kbuf[1408];
  *(int*)kbuf = (int)port;
  if (copy_from_user(kbuf + 4, ubuf, n) < 0) return -14;
  sva_io_nic_send(17, kbuf, n + 4);                           /* SVA-PORT */
  net_tx_frames = net_tx_frames + 1;
  return n;
}

long sys_recvfrom(long sd, long ubuf, long n, long a3) {
  struct socket *s = sock_lookup(sd);
  if (!s) return -9;
  struct pkt *p = s->rx_head;
  if (!p) return -11; /* EAGAIN */
  s->rx_head = p->next;
  if (!s->rx_head) s->rx_tail = (struct pkt*)0;
  s->rx_queued = s->rx_queued - 1;
  long len = p->len;
  if (len > n) len = n;
  long r = copy_to_user(ubuf, p->data, len);
  kmem_cache_free(pkt_cache, (char*)p);
  if (r < 0) return -14;
  return len;
}

/* Queue append runs under the socket-table lock; the sleeping cache
   allocation is hoisted in front of it (SVA-RACE). */
void udp_deliver(int port, char *payload, long len) {
  if (len > 1400) len = 1400;
  struct pkt *p = (struct pkt*)kmem_cache_alloc(pkt_cache);
  p->next = (struct pkt*)0;
  p->len = len;
  p->src_port = port;
  kcopy(p->data, payload, len);
  long delivered = 0;
  sva_lock_acquire(&socktab_lock);                           /* SVA-RACE */
  for (int i = 0; i < 16; i++) {
    if (!delivered && sock_table[i].used && sock_table[i].bound_port == port) {
      if (sock_table[i].rx_tail) {
        sock_table[i].rx_tail->next = p;
      } else {
        sock_table[i].rx_head = p;
      }
      sock_table[i].rx_tail = p;
      sock_table[i].rx_queued = sock_table[i].rx_queued + 1;
      delivered = 1;
    }
  }
  sva_lock_release(&socktab_lock);                           /* SVA-RACE */
  if (!delivered) {
    kmem_cache_free(pkt_cache, (char*)p);
    net_rx_dropped = net_rx_dropped + 1;
  }
}

/* ================= MCAST_MSFILTER (BID 10179) ================= */

long mcast_set_filter(struct socket *s, long uoptval, long optlen) {
  int count;
  if (copy_from_user((char*)&count, uoptval, 4) < 0) return -14;
  if (count < 0) return -22;
  /* VULN(BID-10179): 4 + count*4 is computed in 32 bits and overflows,
     so the filter object is allocated far too small. */
  int bytes = 4 + count * 4;
  int *filter = (int*)kmalloc(bytes);
  if (!filter) return -12;
  filter[0] = count;
  int limit = count;
  if (limit > 32) limit = 32;  /* the exploit only needs a few writes */
  for (int i = 0; i < limit; i++) {
    int src;
    if (copy_from_user((char*)&src, uoptval + 4 + (long)i * 4, 4) < 0) {
      kfree((char*)filter);
      return -14;
    }
    filter[i + 1] = src;
  }
  if (s->filter) kfree((char*)s->filter);
  s->filter = filter;
  s->filter_count = count;
  return 0;
}

long sys_setsockopt(long sd, long optname, long uoptval, long optlen) {
  struct socket *s = sock_lookup(sd);
  if (!s) return -9;
  if (optname == 48) return mcast_set_filter(s, uoptval, optlen);
  return -92;
}

/* ================= IGMP (BID 11917) ================= */

long igmp_reports = 0;

long igmp_rcv(char *data, long len) {
  /* header: [type:1][resv:1][ngrec:2]; each group record is 8 bytes */
  if (len < 1) return -22;
  int typ = data[0];
  if (typ != 0x22) return 0;
  /* VULN(BID-11917): the record count is taken from the packet and the
     header size is subtracted from the payload length without checking
     for underflow; the report buffer is sized from the wrong quantity. */
  int ngrec = (int)(unsigned char)data[2] * 256 + (int)(unsigned char)data[3];
  long payload = len - 4;
  char *report = kmalloc(payload > 0 ? payload : 8);
  if (!report) return -12;
  long copied = 0;
  for (int g = 0; g < ngrec; g++) {
    for (int b = 0; b < 8; b++) {
      /* overruns [report] as soon as ngrec*8 exceeds the allocation */
      report[copied] = data[4 + copied];
      copied = copied + 1;
    }
  }
  igmp_reports = igmp_reports + 1;
  kfree(report);
  return copied;
}

/* ================= routing: the Figure 2 code ================= */

struct fib_prop { int scope; int flags; };
struct fib_nh { int oif; int gw; int weight; };
struct fib_info { int refcnt; int nhs; int prio; int pad; struct fib_nh nh[4]; };

struct fib_prop fib_props[12];
struct kmem_cache *fib_cache = 0;
long fib_entries = 0;

/* Mirrors fib_create_info: validate against fib_props[rtm_type], then
   allocate the info object and its nexthops with kmalloc. */
long fib_create_info(int rtm_type, int rtm_scope, int nhs, int prio) {
  /* the Figure 2 bounds-checked access: rtm_type comes off the wire */
  if (fib_props[rtm_type].scope > rtm_scope)
    return -22;
  if (nhs < 0 || nhs > 4) return -22;
  struct fib_info *fi =
    (struct fib_info*)kmalloc(sizeof(struct fib_info));
  if (!fi) return -12;
  memset((char*)fi, 0, sizeof(struct fib_info));
  fi->refcnt = 1;
  fi->nhs = nhs;
  fi->prio = prio;
  for (int i = 0; i < nhs; i++) {
    fi->nh[i].oif = i;
    fi->nh[i].gw = 0x0a000001 + i;
    fi->nh[i].weight = 1;
  }
  fib_entries = fib_entries + 1;
  kfree((char*)fi);
  return 0;
}

/* Control frame: [rtm_type:4][rtm_scope:4][nhs:4][prio:4]. */
long fib_ctl(char *data, long len) {
  if (len < 16) return -22;
  int rtm_type = *(int*)data;
  int rtm_scope = *(int*)(data + 4);
  int nhs = *(int*)(data + 8);
  int prio = *(int*)(data + 12);
  return fib_create_info(rtm_type, rtm_scope, nhs, prio);
}

/* ================= receive path ================= */

/* The rx interrupt top half: note the arrival and return.  All real
   work happens in the syscall-side poll loop — the handler touches
   nothing but the pending counter, so it can never sleep and needs no
   lock (it runs with interrupts masked by the SVM dispatcher). */
long nic_rx_interrupt(long icp, long vec, long a2, long a3) {
  net_rx_pending = net_rx_pending + 1;                       /* SVA-RACE */
  return 0;
}

long net_poll(void) {
  char frame[1500];
  long processed = 0;
  /* consume the interrupt-side pending count atomically */
  sva_cli();                                                 /* SVA-RACE */
  if (net_rx_pending > 0) net_rx_pending = 0;                /* SVA-RACE */
  sva_sti();                                                 /* SVA-RACE */
  while (1) {
    long r = sva_io_nic_recv(frame, 1500);                    /* SVA-PORT */
    if (r < 0) break;
    net_rx_frames = net_rx_frames + 1;
    int proto = *(int*)frame;
    char *payload = frame + 4;
    long plen = r - 4;
    if (proto == 17) {
      if (plen >= 4) {
        int port = *(int*)payload;
        udp_deliver(port, payload + 4, plen - 4);
      }
    } else if (proto == 2) {
      igmp_rcv(payload, plen);
    } else if (proto == 99) {
      bt_rcv(payload, plen);
    } else if (proto == 254) {
      fib_ctl(payload, plen);
    }
    processed = processed + 1;
  }
  return processed;
}

long sys_netpoll(long a0, long a1, long a2, long a3) {
  return net_poll();
}

void net_init(void) {
  pkt_cache = kmem_cache_create(sizeof(struct pkt));
  for (int i = 0; i < 16; i++) sock_table[i].used = 0;
  /* route properties: scope per route type */
  for (int i = 0; i < 12; i++) {
    fib_props[i].scope = i % 3;
    fib_props[i].flags = 0;
  }
}
|}
