(** Assembling and building the MiniC kernel.

    Build variants mirror the paper's configurations:
    - {!as_tested} — the Section 7.1/7.2 kernel: the memory subsystem and
      the user-copy library are {e not} run through the safety-checking
      compiler (the source of incompleteness in Table 9 and of the one
      missed exploit);
    - {!entire_kernel} — everything compiled and userspace treated as a
      valid object: the zero-incompleteness row of Table 9;
    - {!with_usercopy} — "as tested" plus the user-copy library compiled:
      the configuration the paper says would catch the fifth exploit. *)

open Sva_analysis

type variant = {
  v_name : string;
  v_mm_analyzed : bool;  (** compile the memory subsystem with checks *)
  v_usercopy_analyzed : bool;  (** compile the user-copy library *)
  v_userspace_valid : bool;  (** "entire kernel": userspace is a valid object *)
  v_externs_complete : bool;
}

val as_tested : variant
val entire_kernel : variant
val with_usercopy : variant

type section = {
  sec_name : string;  (** Table 4 row label *)
  sec_source : string;  (** MiniC text *)
}

val sections : variant -> section list
(** The kernel sources in compilation order, labelled with the Table 4
    section each corresponds to. *)

val sources : variant -> string list

val allocators : Allocdecl.t list
(** The allocator declarations of the port (Section 6.2): [kmalloc] with
    its exposed size classes, the slab allocator as a pool allocator with
    its size function, [vmalloc], bootmem, and the kernel-lifetime
    interface. *)

val aconfig : variant -> Pointsto.config
(** The analysis configuration for a variant. *)

val fixture_sources : variant -> string list
(** The kernel sources plus the seeded-bug lint fixture module
    ({!Ksrc_lintbugs}) — the [sva_lint --fixture] input. *)

val race_fixture_sources : variant -> string list
(** The kernel sources plus the seeded-bug concurrency fixture module
    ({!Ksrc_racebugs}) — the [sva_lint --races --fixture] input. *)

val lint_config : variant -> Sva_lint.Lint.config
(** The lint configuration for a variant: the analysis configuration's
    user-copy functions plus the kernel's raw copy loops as trusted
    user-pointer boundaries. *)

val build :
  ?conf:Sva_pipeline.Pipeline.conf ->
  ?lint:bool ->
  ?ranges:bool ->
  ?races:bool ->
  ?poolcert:bool ->
  variant ->
  Sva_pipeline.Pipeline.built
(** Compile the kernel under a pipeline configuration.  [~lint:true]
    enables the static lint stage (findings and safe-access proofs under
    {!lint_config}); [~ranges:true] enables the value-range analysis and
    its certificate-verified check elision; [~races:true] enables the
    concurrency-safety pass and its certificate-verified atomicity
    audit; [~poolcert:true] enables pool-safety certification (the
    points-to evidence bundle re-verified by the trusted checker). *)
