(** Persistent signed translation cache (Section 3.4).

    A directory of signed {!Sva_bytecode.Signing.fentry} records, one
    file per entry, content-addressed by bytecode hash
    ([<dir>/<fe_hash>.fent]).  The store only moves bytes: every entry it
    returns is re-verified by {!Closcomp} before reuse, so the directory
    lives outside the TCB — corruption costs a re-translation, never
    safety.  Disabled unless a directory is installed. *)

val set_dir : string option -> unit
(** Install (or clear) the store directory.  [Some d] creates [d] if
    missing (best effort) and enables persistence; [None] disables it. *)

val active : unit -> bool

type probe =
  | Absent  (** no entry on disk for this key (or store disabled) *)
  | Corrupt of string  (** an entry exists but failed structural decode *)
  | Entry of Sva_bytecode.Signing.fentry
      (** decoded — still untrusted until signature verification *)

val probe : key:string -> probe

val store : Sva_bytecode.Signing.fentry -> bool
(** Persist an entry under its own [fe_hash] (temp file + atomic
    rename).  Returns [false] — silently — when the store is disabled or
    the write failed; persistence is an accelerator, not a guarantee. *)
