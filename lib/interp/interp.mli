(** The SVM executor: runs SVA bytecode on the simulated machine.

    The Secure Virtual Machine may translate bytecode or interpret it
    (Section 3.4); this implementation interprets.  Loading a module
    "translates" it: globals are laid out in the machine's globals region
    and written with their initializers, every function receives a
    synthetic code address (so function pointers are first-class data that
    can be stored, compared, and checked by [pchk.funccheck]), and
    per-function block/instruction tables are built.

    Memory accesses hit the simulated machine byte-for-byte: an overrun
    really corrupts the adjacent object unless a run-time check catches it
    first.  Userspace addresses are translated through the active MMU
    space; kernel addresses are identity-mapped.

    SVA-OS operations and the [pchk.*] run-time checks execute as
    intrinsics; their SVA-OS semantics come from {!Sva_os.Svaos} and the
    check semantics from {!Sva_rt.Metapool_rt}.  Safety violations raise
    {!Sva_rt.Violation.Safety_violation}, modelling the run-time trap. *)

open Sva_ir

exception Vm_error of string
(** Execution errors that are bugs in the executed program or the VM
    (unknown function, struct-typed load, step-limit exceeded, ...). *)

(** {1 Internal representation}

    The pre-decoded program form and the VM state are exposed concretely
    for the second execution tier ({!Closcomp}), which compiles prepared
    functions into closure trees and must reproduce the interpreter's
    bookkeeping exactly.  Ordinary clients should treat {!t} as
    abstract. *)

type fc_cache = { mutable fc_set : (int, string) Hashtbl.t option }
(** Per-call-site memo for [pchk_funccheck] constant target sets. *)

type intr =
  | I_pchk_reg_obj
  | I_pchk_drop_obj
  | I_pchk_drop_obj_opt
  | I_pchk_bounds
  | I_pchk_bounds_known
  | I_pchk_lscheck
  | I_pchk_funccheck of fc_cache option
  | I_pchk_getbounds_start
  | I_pchk_getbounds_len
  | I_sva_pseudo_alloc
  | I_pchk_pseudo_alloc
  | I_save_integer
  | I_load_integer
  | I_save_fp
  | I_load_fp
  | I_icontext_save
  | I_icontext_load
  | I_icontext_commit
  | I_ipush_function
  | I_was_privileged
  | I_register_syscall
  | I_register_interrupt
  | I_syscall
  | I_mmu_new_space
  | I_mmu_clone_space
  | I_mmu_destroy_space
  | I_mmu_activate
  | I_mmu_map_page
  | I_mmu_unmap_page
  | I_mmu_page_count
  | I_io_console_write
  | I_io_disk_read
  | I_io_disk_write
  | I_io_nic_send
  | I_io_nic_recv
  | I_timer_read
  | I_cli
  | I_sti
  | I_lock_acquire
  | I_lock_release
  | I_heap_base
  | I_heap_size
  | I_user_base
  | I_user_size
  | I_panic
  | I_unknown of string

type 'pf callee_cache = { mutable cc : 'pf cc_state }
and 'pf cc_state = Cc_unresolved | Cc_func of 'pf | Cc_builtin of string

type pinsn =
  | P_base of Instr.t
  | P_intr of Instr.t * intr * Value.t array * int * int
      (** instr, decoded intrinsic, args, base cost (native, mediated) *)
  | P_call of Instr.t * Value.t * Value.t array * prepared_func callee_cache

and pterm =
  | P_ret of Value.t option
  | P_jmp of int
  | P_br of Value.t * int * int
  | P_switch of Value.t * (int64 * int) array * int
  | P_unreachable

and pblock = {
  pb_label : string;
  pb_phis : (int * Value.t option array) array;
  pb_body : pinsn array;
  pb_term : pterm;
}

and prepared_func = {
  pf : Func.t;
  pf_blocks : pblock array;
  pf_max_phis : int;
  mutable pf_calls : int;
  mutable pf_entry : (int64 list -> int64 option) option;
  mutable pf_edges : (int, int ref) Hashtbl.t option;
      (** dynamic edge profile ([prev * nblocks + cur] -> taken count),
          recorded while interpreted under an installed JIT; consumed by
          the translator's superblock trace selection.  Pure host-side
          bookkeeping — never visible in modeled cycles or counters. *)
}

type t = {
  im_mod : Irmod.t;
  im_sys : Sva_os.Svaos.t;
  funcs : (string, prepared_func) Hashtbl.t;
  fn_addr : (string, int) Hashtbl.t;
  addr_fn : (int, string) Hashtbl.t;
  g_addr : (string, int) Hashtbl.t;
  g_size : (string, int) Hashtbl.t;
  mps : (int, Sva_rt.Metapool_rt.t) Hashtbl.t;
  size_cache : (Ty.t, int) Hashtbl.t;
  mutable g_cursor : int;
  mutable next_code : int;
  mutable sp : int;
  mutable heap_ptr : int;
  free_lists : (int, int list ref) Hashtbl.t;
  alloc_sizes : (int, int) Hashtbl.t;
  mutable live_heap : int;
  mutable nsteps : int;
  mutable ncycles : int;
  mutable limit : int option;
  mutable jit : jit option;
}

and jit = {
  jit_threshold : int;
  jit_translate : t -> prepared_func -> int64 list -> int64 option;
}
(** The second execution tier (Section 3.4's translate-and-cache SVM):
    [enter] profiles per-function call counts and promotes a function
    past the threshold by calling [jit_translate], whose result becomes
    the function's entry point.  Translation is host work — it must not
    perturb the modeled cycles, steps, or check statistics. *)

val load :
  ?sys:Sva_os.Svaos.t ->
  ?metapools:(int * Sva_rt.Metapool_rt.t) list ->
  Irmod.t ->
  t
(** Translate a verified module into an executable image.  [metapools]
    maps the metapool ids referenced by inserted [pchk.*] intrinsics to
    their run-time pools. *)

val sys : t -> Sva_os.Svaos.t
val irmod : t -> Irmod.t

val link_module : t -> Irmod.t -> unit
(** Dynamically load a kernel module into a running image (Section 3.4:
    "kernel modules and device drivers can be dynamically loaded ...
    because both the bytecode verifier and translator are intraprocedural
    and hence modular").  The module is linked symbol-by-symbol against
    the running kernel (externs resolve to kernel definitions), its
    functions receive code addresses, and its globals are laid out and
    initialized; already-loaded code is not moved.  The module must
    already be verified.  @raise Invalid_argument on symbol clashes. *)

val call : t -> string -> int64 list -> int64 option
(** Execute a function by name.  Returns its result (integers and
    pointers in canonical sign-extended form), or [None] for void.
    @raise Vm_error on execution errors
    @raise Sva_rt.Violation.Safety_violation when a run-time check fires
    @raise Sva_hw.Machine.Hw_fault on wild hardware-level accesses. *)

val call_addr : t -> int -> int64 list -> int64 option
(** Call through a code address (used for registered handlers). *)

val func_addr : t -> string -> int
(** Synthetic code address of a function.  @raise Not_found. *)

val func_name : t -> int -> string option
(** Reverse lookup of {!func_addr}. *)

val global_addr : t -> string -> int
(** Machine address where a global was laid out.  @raise Not_found. *)

val global_size : t -> string -> int

val metapool : t -> int -> Sva_rt.Metapool_rt.t option

val metapools : t -> (int * Sva_rt.Metapool_rt.t) list
(** All runtime metapools in id order — the per-pool metrics report walks
    this. *)

val steps : t -> int
(** Instructions executed since load (or the last {!reset_steps}). *)

val reset_steps : t -> unit

val cycles : t -> int
(** The deterministic cycle model: one cycle per virtual instruction plus
    charged costs for SVA-OS operations (higher in mediated mode — the
    privilege-boundary work of Section 3.3), run-time checks (base cost,
    plus 3 cycles per splay-tree comparison actually performed, plus
    1 cycle per object-lookup cache hit — see DESIGN.md Section 6), bulk
    builtins and the trap path.  The performance tables are computed from
    this metric (deterministic and noise-free); wall-clock timing is the
    cross-check. *)

val reset_cycles : t -> unit

val add_cycles : t -> int -> unit
(** Charge external work to the cycle model (the SVM trap entry/exit). *)

val set_step_limit : t -> int option -> unit
(** Abort with [Vm_error] after this many instructions (default: none). *)

val heap_live_bytes : t -> int
(** Bytes currently allocated by the [malloc] instruction's allocator. *)

(** {1 Execution internals}

    Exposed for {!Closcomp}, which compiles prepared functions to closure
    trees sharing these primitives so the two tiers cannot drift. *)

val vm_err : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Vm_error} with a formatted message. *)

val eval : t -> int64 array -> Value.t -> int64
val to_addr : int64 -> int
val sizeof : t -> Ty.t -> int
val ty_width : Ty.t -> int
val width_of_value : Value.t -> int
val gep_offset : t -> Ty.t -> int64 array -> Value.t list -> int64
val mem_read_int : t -> addr:int -> width:int -> int64
val mem_write_int : t -> addr:int -> width:int -> int64 -> unit
val heap_alloc : t -> int -> int
val heap_free : t -> int -> unit

val get_mp : t -> int -> Sva_rt.Metapool_rt.t
(** Metapool by id.  @raise Vm_error on unknown ids. *)

val builtin : t -> string -> int64 array -> int64 option
val is_builtin : string -> bool

val exec_intr : t -> intr -> Value.t array -> int64 array -> int64 option
(** Execute a decoded intrinsic on already-evaluated arguments (the
    [Value.t array] carries the original operands for [pchk_funccheck]
    diagnostics).  Performs no cycle accounting — the caller charges the
    base cost and the splay/cache deltas. *)

val exec_func : t -> prepared_func -> int64 list -> int64 option
(** The interpreter tier: run a prepared function body directly. *)

val enter : t -> prepared_func -> int64 list -> int64 option
(** Tier dispatch: run the compiled entry if the function was promoted,
    otherwise interpret (bumping the profile counter when a JIT is
    installed).  When {!Sva_rt.Trace.profiling} is on, the dispatch is
    bracketed with profiler frames — identically for both tiers, and
    balanced even when a safety violation unwinds through it. *)

val dispatch_call : t -> string -> int64 list -> int64 option
(** Call by name through tier dispatch; falls back to builtins. *)

val splay_cmp_cost : int
val cache_hit_cost : int
(** Cycle-model constants for the check runtime (DESIGN.md Section 6). *)

val set_jit : t -> jit option -> unit
(** Install (or remove) the second execution tier. *)
