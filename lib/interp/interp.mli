(** The SVM executor: runs SVA bytecode on the simulated machine.

    The Secure Virtual Machine may translate bytecode or interpret it
    (Section 3.4); this implementation interprets.  Loading a module
    "translates" it: globals are laid out in the machine's globals region
    and written with their initializers, every function receives a
    synthetic code address (so function pointers are first-class data that
    can be stored, compared, and checked by [pchk.funccheck]), and
    per-function block/instruction tables are built.

    Memory accesses hit the simulated machine byte-for-byte: an overrun
    really corrupts the adjacent object unless a run-time check catches it
    first.  Userspace addresses are translated through the active MMU
    space; kernel addresses are identity-mapped.

    SVA-OS operations and the [pchk.*] run-time checks execute as
    intrinsics; their SVA-OS semantics come from {!Sva_os.Svaos} and the
    check semantics from {!Sva_rt.Metapool_rt}.  Safety violations raise
    {!Sva_rt.Violation.Safety_violation}, modelling the run-time trap. *)

open Sva_ir

exception Vm_error of string
(** Execution errors that are bugs in the executed program or the VM
    (unknown function, struct-typed load, step-limit exceeded, ...). *)

type t

val load :
  ?sys:Sva_os.Svaos.t ->
  ?metapools:(int * Sva_rt.Metapool_rt.t) list ->
  Irmod.t ->
  t
(** Translate a verified module into an executable image.  [metapools]
    maps the metapool ids referenced by inserted [pchk.*] intrinsics to
    their run-time pools. *)

val sys : t -> Sva_os.Svaos.t
val irmod : t -> Irmod.t

val link_module : t -> Irmod.t -> unit
(** Dynamically load a kernel module into a running image (Section 3.4:
    "kernel modules and device drivers can be dynamically loaded ...
    because both the bytecode verifier and translator are intraprocedural
    and hence modular").  The module is linked symbol-by-symbol against
    the running kernel (externs resolve to kernel definitions), its
    functions receive code addresses, and its globals are laid out and
    initialized; already-loaded code is not moved.  The module must
    already be verified.  @raise Invalid_argument on symbol clashes. *)

val call : t -> string -> int64 list -> int64 option
(** Execute a function by name.  Returns its result (integers and
    pointers in canonical sign-extended form), or [None] for void.
    @raise Vm_error on execution errors
    @raise Sva_rt.Violation.Safety_violation when a run-time check fires
    @raise Sva_hw.Machine.Hw_fault on wild hardware-level accesses. *)

val call_addr : t -> int -> int64 list -> int64 option
(** Call through a code address (used for registered handlers). *)

val func_addr : t -> string -> int
(** Synthetic code address of a function.  @raise Not_found. *)

val func_name : t -> int -> string option
(** Reverse lookup of {!func_addr}. *)

val global_addr : t -> string -> int
(** Machine address where a global was laid out.  @raise Not_found. *)

val global_size : t -> string -> int

val metapool : t -> int -> Sva_rt.Metapool_rt.t option

val steps : t -> int
(** Instructions executed since load (or the last {!reset_steps}). *)

val reset_steps : t -> unit

val cycles : t -> int
(** The deterministic cycle model: one cycle per virtual instruction plus
    charged costs for SVA-OS operations (higher in mediated mode — the
    privilege-boundary work of Section 3.3), run-time checks (base cost,
    plus 3 cycles per splay-tree comparison actually performed, plus
    1 cycle per object-lookup cache hit — see DESIGN.md Section 6), bulk
    builtins and the trap path.  The performance tables are computed from
    this metric (deterministic and noise-free); wall-clock timing is the
    cross-check. *)

val reset_cycles : t -> unit

val add_cycles : t -> int -> unit
(** Charge external work to the cycle model (the SVM trap entry/exit). *)

val set_step_limit : t -> int option -> unit
(** Abort with [Vm_error] after this many instructions (default: none). *)

val heap_live_bytes : t -> int
(** Bytes currently allocated by the [malloc] instruction's allocator. *)
