open Sva_ir
module Machine = Sva_hw.Machine
module Mmu = Sva_hw.Mmu
module Svaos = Sva_os.Svaos
module Metapool_rt = Sva_rt.Metapool_rt
module Violation = Sva_rt.Violation

exception Vm_error of string

let vm_err fmt = Printf.ksprintf (fun s -> raise (Vm_error s)) fmt

let code_base = 0x00B00000
let code_stride = 16

(* ---------- pre-decoded program representation ----------

   The hot loop never touches strings: intrinsic names are resolved to a
   variant once at prepare time, branch targets and phi incoming lists to
   block indices and dense arrays, switch case constants pre-truncated to
   the scrutinee width, and funccheck allowed-sets memoized as hash sets
   on first execution. *)

(* Per-call-site memo for [pchk_funccheck] target sets.  Present only when
   every allowed-list operand is a constant ([Value.Fn] — what the
   safety-checking compiler emits); built on first execution because
   function code addresses are assigned at module-load time. *)
type fc_cache = { mutable fc_set : (int, string) Hashtbl.t option }

type intr =
  | I_pchk_reg_obj
  | I_pchk_drop_obj
  | I_pchk_drop_obj_opt
  | I_pchk_bounds
  | I_pchk_bounds_known
  | I_pchk_lscheck
  | I_pchk_funccheck of fc_cache option
  | I_pchk_getbounds_start
  | I_pchk_getbounds_len
  | I_sva_pseudo_alloc
  | I_pchk_pseudo_alloc
  | I_save_integer
  | I_load_integer
  | I_save_fp
  | I_load_fp
  | I_icontext_save
  | I_icontext_load
  | I_icontext_commit
  | I_ipush_function
  | I_was_privileged
  | I_register_syscall
  | I_register_interrupt
  | I_syscall
  | I_mmu_new_space
  | I_mmu_clone_space
  | I_mmu_destroy_space
  | I_mmu_activate
  | I_mmu_map_page
  | I_mmu_unmap_page
  | I_mmu_page_count
  | I_io_console_write
  | I_io_disk_read
  | I_io_disk_write
  | I_io_nic_send
  | I_io_nic_recv
  | I_timer_read
  | I_cli
  | I_sti
  | I_lock_acquire
  | I_lock_release
  | I_heap_base
  | I_heap_size
  | I_user_base
  | I_user_size
  | I_panic
  | I_unknown of string

(* Per-call-site memo for direct calls: resolving a callee name through
   the function table costs a string hash per call otherwise.  Safe to
   memoize because a name, once installed, is never rebound (link_module
   only adds absent names). *)
type 'pf callee_cache = { mutable cc : 'pf cc_state }

and 'pf cc_state = Cc_unresolved | Cc_func of 'pf | Cc_builtin of string

type pinsn =
  | P_base of Instr.t  (* kinds that were already string-free *)
  | P_intr of Instr.t * intr * Value.t array * int * int
      (* instr, decoded intrinsic, args, base cost (native, mediated) *)
  | P_call of Instr.t * Value.t * Value.t array * prepared_func callee_cache

and pterm =
  | P_ret of Value.t option
  | P_jmp of int
  | P_br of Value.t * int * int
  | P_switch of Value.t * (int64 * int) array * int  (* cases pre-truncated *)
  | P_unreachable

and pblock = {
  pb_label : string;
  pb_phis : (int * Value.t option array) array;
      (* (dest reg, incoming value indexed by predecessor block) *)
  pb_body : pinsn array;
  pb_term : pterm;
}

and prepared_func = {
  pf : Func.t;
  pf_blocks : pblock array;
  pf_max_phis : int;
  mutable pf_calls : int;
      (* profile counter: entries via [enter] while still interpreted *)
  mutable pf_entry : (int64 list -> int64 option) option;
      (* the compiled-tier entry point, once promoted *)
  mutable pf_edges : (int, int ref) Hashtbl.t option;
      (* dynamic edge profile (prev * nblocks + cur -> taken count),
         recorded only while interpreted under an installed JIT; feeds
         superblock trace selection.  Host-side bookkeeping only. *)
}

type t = {
  im_mod : Irmod.t;
  im_sys : Svaos.t;
  funcs : (string, prepared_func) Hashtbl.t;
  fn_addr : (string, int) Hashtbl.t;
  addr_fn : (int, string) Hashtbl.t;
  g_addr : (string, int) Hashtbl.t;
  g_size : (string, int) Hashtbl.t;
  mps : (int, Metapool_rt.t) Hashtbl.t;
  size_cache : (Ty.t, int) Hashtbl.t;
  mutable g_cursor : int;
  mutable next_code : int;
  mutable sp : int;
  mutable heap_ptr : int;
  free_lists : (int, int list ref) Hashtbl.t;
  alloc_sizes : (int, int) Hashtbl.t;
  mutable live_heap : int;
  mutable nsteps : int;
  mutable ncycles : int;
  mutable limit : int option;
  mutable jit : jit option;
}

(* The second execution tier (Section 3.4's translate-and-cache SVM).
   When installed, [enter] counts calls per function and hands hot
   functions to the translator, which returns a compiled entry point.
   Translation happens on the host and is never charged to the cycle
   model: the compiled code must reproduce the interpreter's modeled
   cycles, steps and check statistics bit-for-bit. *)
and jit = {
  jit_threshold : int;
  jit_translate : t -> prepared_func -> int64 list -> int64 option;
}

let sizeof t ty =
  match Hashtbl.find_opt t.size_cache ty with
  | Some s -> s
  | None ->
      let s = Ty.sizeof t.im_mod.Irmod.m_ctx ty in
      Hashtbl.replace t.size_cache ty s;
      s

(* The malloc instruction's heap lives in the upper half of the machine
   heap region; the kernel's page allocator owns the lower half. *)
let malloc_base = Machine.heap_base + (Machine.heap_size / 2)

(* ---------- image construction ---------- *)

(* Lay out globals that do not have an address yet (initial load and each
   dynamically linked module); returns the newly placed globals. *)
let layout_globals t =
  let fresh = ref [] in
  List.iter
    (fun (g : Irmod.global) ->
      if not (Hashtbl.mem t.g_addr g.Irmod.g_name) then begin
        let size = max 1 (sizeof t g.Irmod.g_ty) in
        let align = Ty.alignof t.im_mod.Irmod.m_ctx g.Irmod.g_ty in
        t.g_cursor <- (t.g_cursor + align - 1) / align * align;
        Hashtbl.replace t.g_addr g.Irmod.g_name t.g_cursor;
        Hashtbl.replace t.g_size g.Irmod.g_name size;
        t.g_cursor <- t.g_cursor + size;
        fresh := g :: !fresh
      end)
    t.im_mod.Irmod.m_globals;
  if t.g_cursor > Machine.globals_base + Machine.globals_size then
    vm_err "globals do not fit in the globals region";
  List.rev !fresh

let write_global_inits t globals =
  List.iter
    (fun (g : Irmod.global) ->
      let addr = Hashtbl.find t.g_addr g.Irmod.g_name in
      match g.Irmod.g_init with
      | Irmod.Zero -> ()
      | Irmod.Str s -> Machine.write t.im_sys.Svaos.machine ~addr (Bytes.of_string s)
      | Irmod.Ints (ty, ns) ->
          let w = sizeof t ty in
          List.iteri
            (fun i n ->
              Machine.write_int t.im_sys.Svaos.machine ~addr:(addr + (i * w))
                ~width:w n)
            ns
      | Irmod.Ptrs syms ->
          List.iteri
            (fun i sym ->
              let target =
                match Hashtbl.find_opt t.fn_addr sym with
                | Some a -> a
                | None -> (
                    match Hashtbl.find_opt t.g_addr sym with
                    | Some a -> a
                    | None -> vm_err "initializer references unknown symbol @%s" sym)
              in
              Machine.write_int t.im_sys.Svaos.machine ~addr:(addr + (i * 8))
                ~width:8 (Int64.of_int target))
            syms)
    globals

let width_of_value (v : Value.t) =
  match Value.ty v with
  | Ty.Int w -> w
  | Ty.Ptr _ -> 64
  | Ty.Float -> 64
  | t -> vm_err "no integer width for %s" (Ty.to_string t)

(* The cycle-model charge for an SVA-OS operation or run-time check.
   Mediated mode pays the privilege-boundary premium (validation, full
   state spills, integrity tags) over the native inline sequences. *)
let intrinsic_base_cost ~mediated name nargs =
  match name with
  | "pchk_reg_obj" | "pchk_drop_obj" | "pchk_pseudo_alloc" -> 22
  | "pchk_bounds" -> 18
  | "pchk_bounds_known" -> 4
  | "pchk_lscheck" -> 14
  | "pchk_getbounds_start" | "pchk_getbounds_len" -> 14
  | "pchk_funccheck" -> 6 + (nargs / 6)
  | "llva_save_integer" | "llva_load_integer" -> if mediated then 54 else 22
  | "llva_save_fp" | "llva_load_fp" -> if mediated then 22 else 10
  | "llva_icontext_save" | "llva_icontext_load" -> if mediated then 48 else 16
  | "llva_icontext_commit" -> if mediated then 40 else 14
  | "llva_ipush_function" -> if mediated then 18 else 8
  | "llva_was_privileged" -> 4
  | "sva_register_syscall" | "sva_register_interrupt" -> 10
  | "sva_syscall" -> if mediated then 16 else 8
  | "sva_mmu_map_page" | "sva_mmu_unmap_page" -> if mediated then 16 else 8
  | "sva_mmu_new_space" | "sva_mmu_destroy_space" | "sva_mmu_activate" ->
      if mediated then 12 else 6
  | "sva_mmu_clone_space" -> if mediated then 24 else 12
  | "sva_mmu_page_count" -> 6
  | "sva_io_console_write" | "sva_io_disk_read" | "sva_io_disk_write" -> 30
  | "sva_io_nic_send" | "sva_io_nic_recv" -> 30
  | "sva_timer_read" -> if mediated then 10 else 4
  | "sva_cli" | "sva_sti" -> 2
  | "sva_lock_acquire" | "sva_lock_release" -> if mediated then 12 else 4
  | _ -> 2

let decode_intr name (args : Value.t list) =
  match name with
  | "pchk_reg_obj" -> I_pchk_reg_obj
  | "pchk_drop_obj" -> I_pchk_drop_obj
  | "pchk_drop_obj_opt" -> I_pchk_drop_obj_opt
  | "pchk_bounds" -> I_pchk_bounds
  | "pchk_bounds_known" -> I_pchk_bounds_known
  | "pchk_lscheck" -> I_pchk_lscheck
  | "pchk_funccheck" ->
      let const_allowed =
        match args with
        | [] -> false
        | _ :: allowed ->
            List.for_all (function Value.Fn _ -> true | _ -> false) allowed
      in
      I_pchk_funccheck (if const_allowed then Some { fc_set = None } else None)
  | "pchk_getbounds_start" -> I_pchk_getbounds_start
  | "pchk_getbounds_len" -> I_pchk_getbounds_len
  | "sva_pseudo_alloc" -> I_sva_pseudo_alloc
  | "pchk_pseudo_alloc" -> I_pchk_pseudo_alloc
  | "llva_save_integer" -> I_save_integer
  | "llva_load_integer" -> I_load_integer
  | "llva_save_fp" -> I_save_fp
  | "llva_load_fp" -> I_load_fp
  | "llva_icontext_save" -> I_icontext_save
  | "llva_icontext_load" -> I_icontext_load
  | "llva_icontext_commit" -> I_icontext_commit
  | "llva_ipush_function" -> I_ipush_function
  | "llva_was_privileged" -> I_was_privileged
  | "sva_register_syscall" -> I_register_syscall
  | "sva_register_interrupt" -> I_register_interrupt
  | "sva_syscall" -> I_syscall
  | "sva_mmu_new_space" -> I_mmu_new_space
  | "sva_mmu_clone_space" -> I_mmu_clone_space
  | "sva_mmu_destroy_space" -> I_mmu_destroy_space
  | "sva_mmu_activate" -> I_mmu_activate
  | "sva_mmu_map_page" -> I_mmu_map_page
  | "sva_mmu_unmap_page" -> I_mmu_unmap_page
  | "sva_mmu_page_count" -> I_mmu_page_count
  | "sva_io_console_write" -> I_io_console_write
  | "sva_io_disk_read" -> I_io_disk_read
  | "sva_io_disk_write" -> I_io_disk_write
  | "sva_io_nic_send" -> I_io_nic_send
  | "sva_io_nic_recv" -> I_io_nic_recv
  | "sva_timer_read" -> I_timer_read
  | "sva_cli" -> I_cli
  | "sva_sti" -> I_sti
  | "sva_lock_acquire" -> I_lock_acquire
  | "sva_lock_release" -> I_lock_release
  | "sva_heap_base" -> I_heap_base
  | "sva_heap_size" -> I_heap_size
  | "sva_user_base" -> I_user_base
  | "sva_user_size" -> I_user_size
  | "sva_panic" -> I_panic
  | other -> I_unknown other

(* Source-level name of an SVA-OS operation for the event trace; [None]
   for run-time checks (those emit their own events inside [Metapool_rt])
   and for the pure constant accessors, which mediate nothing. *)
let svaos_name = function
  | I_pchk_reg_obj | I_pchk_drop_obj | I_pchk_drop_obj_opt | I_pchk_bounds
  | I_pchk_bounds_known | I_pchk_lscheck | I_pchk_funccheck _
  | I_pchk_getbounds_start | I_pchk_getbounds_len | I_heap_base | I_heap_size
  | I_user_base | I_user_size | I_panic | I_unknown _ ->
      None
  | I_sva_pseudo_alloc -> Some "sva_pseudo_alloc"
  | I_pchk_pseudo_alloc -> Some "pchk_pseudo_alloc"
  | I_save_integer -> Some "llva_save_integer"
  | I_load_integer -> Some "llva_load_integer"
  | I_save_fp -> Some "llva_save_fp"
  | I_load_fp -> Some "llva_load_fp"
  | I_icontext_save -> Some "llva_icontext_save"
  | I_icontext_load -> Some "llva_icontext_load"
  | I_icontext_commit -> Some "llva_icontext_commit"
  | I_ipush_function -> Some "llva_ipush_function"
  | I_was_privileged -> Some "llva_was_privileged"
  | I_register_syscall -> Some "sva_register_syscall"
  | I_register_interrupt -> Some "sva_register_interrupt"
  | I_syscall -> Some "sva_syscall"
  | I_mmu_new_space -> Some "sva_mmu_new_space"
  | I_mmu_clone_space -> Some "sva_mmu_clone_space"
  | I_mmu_destroy_space -> Some "sva_mmu_destroy_space"
  | I_mmu_activate -> Some "sva_mmu_activate"
  | I_mmu_map_page -> Some "sva_mmu_map_page"
  | I_mmu_unmap_page -> Some "sva_mmu_unmap_page"
  | I_mmu_page_count -> Some "sva_mmu_page_count"
  | I_io_console_write -> Some "sva_io_console_write"
  | I_io_disk_read -> Some "sva_io_disk_read"
  | I_io_disk_write -> Some "sva_io_disk_write"
  | I_io_nic_send -> Some "sva_io_nic_send"
  | I_io_nic_recv -> Some "sva_io_nic_recv"
  | I_timer_read -> Some "sva_timer_read"
  | I_cli -> Some "sva_cli"
  | I_sti -> Some "sva_sti"
  | I_lock_acquire -> Some "sva_lock_acquire"
  | I_lock_release -> Some "sva_lock_release"

let prepare_func (f : Func.t) =
  let blocks = Array.of_list f.Func.f_blocks in
  let nblocks = Array.length blocks in
  let index = Hashtbl.create nblocks in
  Array.iteri (fun i b -> Hashtbl.replace index b.Func.label i) blocks;
  let resolve lbl =
    match Hashtbl.find_opt index lbl with
    | Some i -> i
    | None -> vm_err "branch to unknown label %%%s in @%s" lbl f.Func.f_name
  in
  let max_phis = ref 0 in
  let prep_block (b : Func.block) =
    (* Leading phis become dense per-predecessor-index value arrays. *)
    let rec split acc = function
      | ({ Instr.kind = Instr.Phi incoming; _ } as i) :: rest ->
          let arr = Array.make nblocks None in
          List.iter
            (fun (lbl, v) ->
              match Hashtbl.find_opt index lbl with
              | Some pi -> if arr.(pi) = None then arr.(pi) <- Some v
              | None -> () (* not a block: can never be the predecessor *))
            incoming;
          split ((i.Instr.id, arr) :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let phis, body = split [] b.Func.insns in
    let decode (i : Instr.t) =
      match i.Instr.kind with
      | Instr.Phi _ -> vm_err "phi after non-phi instruction"
      | Instr.Intrinsic (name, args) ->
          let nargs = List.length args in
          P_intr
            ( i,
              decode_intr name args,
              Array.of_list args,
              intrinsic_base_cost ~mediated:false name nargs,
              intrinsic_base_cost ~mediated:true name nargs )
      | Instr.Call (callee, cargs) ->
          P_call (i, callee, Array.of_list cargs, { cc = Cc_unresolved })
      | _ -> P_base i
    in
    let term =
      match b.Func.term with
      | Instr.Ret v -> P_ret v
      | Instr.Jmp l -> P_jmp (resolve l)
      | Instr.Br (c, th, el) -> P_br (c, resolve th, resolve el)
      | Instr.Switch (v, cases, d) ->
          let w = width_of_value v in
          P_switch
            ( v,
              Array.of_list
                (List.map
                   (fun (n, l) -> (Constfold.truncate_to_width w n, resolve l))
                   cases),
              resolve d )
      | Instr.Unreachable -> P_unreachable
    in
    max_phis := max !max_phis (List.length phis);
    {
      pb_label = b.Func.label;
      pb_phis = Array.of_list phis;
      pb_body = Array.of_list (List.map decode body);
      pb_term = term;
    }
  in
  let pf_blocks = Array.map prep_block blocks in
  { pf = f; pf_blocks; pf_max_phis = !max_phis; pf_calls = 0; pf_entry = None;
    pf_edges = None }

let load ?sys ?(metapools = []) (m : Irmod.t) =
  let sys = match sys with Some s -> s | None -> Svaos.create () in
  let t =
    {
      im_mod = m;
      im_sys = sys;
      funcs = Hashtbl.create 64;
      fn_addr = Hashtbl.create 64;
      addr_fn = Hashtbl.create 64;
      g_addr = Hashtbl.create 64;
      g_size = Hashtbl.create 64;
      mps = Hashtbl.create 16;
      size_cache = Hashtbl.create 64;
      g_cursor = Machine.globals_base;
      next_code = 0;
      sp = Machine.stack_base;
      heap_ptr = malloc_base;
      free_lists = Hashtbl.create 16;
      alloc_sizes = Hashtbl.create 64;
      live_heap = 0;
      nsteps = 0;
      ncycles = 0;
      limit = None;
      jit = None;
    }
  in
  let install_funcs t =
    List.iter
      (fun (f : Func.t) ->
        if not (Hashtbl.mem t.funcs f.Func.f_name) then begin
          let addr = code_base + (t.next_code * code_stride) in
          t.next_code <- t.next_code + 1;
          Hashtbl.replace t.funcs f.Func.f_name (prepare_func f);
          Hashtbl.replace t.fn_addr f.Func.f_name addr;
          Hashtbl.replace t.addr_fn addr f.Func.f_name
        end)
      t.im_mod.Irmod.m_funcs
  in
  install_funcs t;
  List.iter (fun (id, mp) -> Hashtbl.replace t.mps id mp) metapools;
  let fresh = layout_globals t in
  write_global_inits t fresh;
  (* Trace timestamps are this VM's modeled-cycle clock.  Reading a
     mutable field through a closure keeps disabled-mode cost at zero:
     nothing here runs unless an event is actually recorded. *)
  Sva_rt.Trace.clock := (fun () -> t.ncycles);
  t

(* Dynamic module loading: link, place code, lay out and initialize the
   module's globals.  Existing code and data are not disturbed. *)
let link_module t (m2 : Irmod.t) =
  Irmod.merge t.im_mod m2;
  List.iter
    (fun (f : Func.t) ->
      if not (Hashtbl.mem t.funcs f.Func.f_name) then begin
        let addr = code_base + (t.next_code * code_stride) in
        t.next_code <- t.next_code + 1;
        Hashtbl.replace t.funcs f.Func.f_name (prepare_func f);
        Hashtbl.replace t.fn_addr f.Func.f_name addr;
        Hashtbl.replace t.addr_fn addr f.Func.f_name
      end)
    t.im_mod.Irmod.m_funcs;
  let fresh = layout_globals t in
  write_global_inits t fresh

let sys t = t.im_sys
let irmod t = t.im_mod
let func_addr t name = Hashtbl.find t.fn_addr name
let func_name t addr = Hashtbl.find_opt t.addr_fn addr
let global_addr t name = Hashtbl.find t.g_addr name
let global_size t name = Hashtbl.find t.g_size name
let metapool t id = Hashtbl.find_opt t.mps id

let metapools t =
  List.sort
    (fun (a, _) (b, _) -> compare (a : int) b)
    (Hashtbl.fold (fun id mp acc -> (id, mp) :: acc) t.mps [])
let steps t = t.nsteps
let reset_steps t = t.nsteps <- 0
let cycles t = t.ncycles
let reset_cycles t = t.ncycles <- 0
let add_cycles t n = t.ncycles <- t.ncycles + n
let set_step_limit t l = t.limit <- l
let heap_live_bytes t = t.live_heap
let set_jit t j = t.jit <- j

(* ---------- memory access ---------- *)

let xlate t ~write addr =
  if Machine.in_kernel_range ~addr then addr
  else Mmu.translate t.im_sys.Svaos.mmu ~addr ~write

let mem_read_int t ~addr ~width =
  Machine.read_int t.im_sys.Svaos.machine ~addr:(xlate t ~write:false addr) ~width

let mem_write_int t ~addr ~width v =
  Machine.write_int t.im_sys.Svaos.machine ~addr:(xlate t ~write:true addr) ~width v

(* Bulk copy that translates page-by-page for user ranges. *)
let mem_blit t ~src ~dst ~len =
  let remaining = ref len and s = ref src and d = ref dst in
  while !remaining > 0 do
    let chunk_s = Machine.page_size - (!s mod Machine.page_size) in
    let chunk_d = Machine.page_size - (!d mod Machine.page_size) in
    let chunk = min !remaining (min chunk_s chunk_d) in
    Machine.blit t.im_sys.Svaos.machine
      ~src:(xlate t ~write:false !s)
      ~dst:(xlate t ~write:true !d)
      ~len:chunk;
    s := !s + chunk;
    d := !d + chunk;
    remaining := !remaining - chunk
  done

let mem_fill t ~addr ~len c =
  let remaining = ref len and a = ref addr in
  while !remaining > 0 do
    let chunk = min !remaining (Machine.page_size - (!a mod Machine.page_size)) in
    Machine.fill t.im_sys.Svaos.machine ~addr:(xlate t ~write:true !a) ~len:chunk c;
    a := !a + chunk;
    remaining := !remaining - chunk
  done

(* ---------- malloc/free (the SVA-Core heap instructions) ---------- *)

let heap_alloc t size =
  let size = max 8 ((size + 7) / 8 * 8) in
  let addr =
    match Hashtbl.find_opt t.free_lists size with
    | Some ({ contents = a :: rest } as l) ->
        l := rest;
        a
    | _ ->
        let a = t.heap_ptr in
        if a + size > Machine.heap_base + Machine.heap_size then
          vm_err "malloc heap exhausted";
        t.heap_ptr <- a + size;
        a
  in
  Hashtbl.replace t.alloc_sizes addr size;
  t.live_heap <- t.live_heap + size;
  addr

let heap_free t addr =
  match Hashtbl.find_opt t.alloc_sizes addr with
  | None -> vm_err "free of unknown heap address 0x%x" addr
  | Some size ->
      Hashtbl.remove t.alloc_sizes addr;
      t.live_heap <- t.live_heap - size;
      let l =
        match Hashtbl.find_opt t.free_lists size with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace t.free_lists size l;
            l
      in
      l := addr :: !l

(* ---------- value evaluation ---------- *)

let ty_width = function
  | Ty.Int w -> max 1 (w / 8)
  | Ty.Float -> 8
  | Ty.Ptr _ -> 8
  | t -> vm_err "scalar access at non-scalar type %s" (Ty.to_string t)

let eval t (regs : int64 array) (v : Value.t) : int64 =
  match v with
  | Value.Reg (id, _, _) -> regs.(id)
  | Value.Imm (Ty.Int w, n) -> Constfold.truncate_to_width w n
  | Value.Imm (_, n) -> n
  | Value.Fimm f -> Int64.bits_of_float f
  | Value.Null _ -> 0L
  | Value.Undef _ -> 0L
  | Value.Global (g, _) -> (
      match Hashtbl.find_opt t.g_addr g with
      | Some a -> Int64.of_int a
      | None -> vm_err "unknown global @%s" g)
  | Value.Fn (f, _) -> (
      match Hashtbl.find_opt t.fn_addr f with
      | Some a -> Int64.of_int a
      | None -> vm_err "unknown function @%s" f)

let to_addr v = Int64.to_int v

(* ---------- gep ---------- *)

let gep_offset t (base_pointee : Ty.t) regs idxs =
  let off = ref 0L in
  let add n = off := Int64.add !off n in
  (match idxs with
  | first :: rest ->
      add (Int64.mul (eval t regs first) (Int64.of_int (sizeof t base_pointee)));
      let rec descend ty = function
        | [] -> ()
        | idx :: more -> (
            match ty with
            | Ty.Array (e, _) ->
                add (Int64.mul (eval t regs idx) (Int64.of_int (sizeof t e)));
                descend e more
            | Ty.Struct sname ->
                let i = Int64.to_int (eval t regs idx) in
                let foff, fty = Ty.field_at t.im_mod.Irmod.m_ctx sname i in
                add (Int64.of_int foff);
                descend fty more
            | _ -> vm_err "gep descends into scalar")
      in
      descend base_pointee rest
  | [] -> vm_err "gep with no indices");
  !off

(* ---------- builtins (external C library functions) ---------- *)

let strlen_limit = 1 lsl 20

let builtin t name (args : int64 array) : int64 option =
  let a n = args.(n) in
  (match name with
  | "memcpy" | "memmove" | "memset" | "memcmp" ->
      t.ncycles <- t.ncycles + 4 + (to_addr args.(2) / 8)
  | "strlen" | "strcmp" | "strcpy" -> t.ncycles <- t.ncycles + 8
  | _ -> ());
  match name with
  | "memcpy" | "memmove" ->
      mem_blit t ~src:(to_addr (a 1)) ~dst:(to_addr (a 0)) ~len:(to_addr (a 2));
      Some (a 0)
  | "memset" ->
      mem_fill t
        ~addr:(to_addr (a 0))
        ~len:(to_addr (a 2))
        (Char.chr (Int64.to_int (Int64.logand (a 1) 0xffL)));
      Some (a 0)
  | "memcmp" ->
      let x = to_addr (a 0) and y = to_addr (a 1) and n = to_addr (a 2) in
      let rec go i =
        if i >= n then 0L
        else
          let cx = mem_read_int t ~addr:(x + i) ~width:1
          and cy = mem_read_int t ~addr:(y + i) ~width:1 in
          if cx = cy then go (i + 1)
          else if Int64.compare cx cy < 0 then -1L
          else 1L
      in
      Some (go 0)
  | "strlen" ->
      let p = to_addr (a 0) in
      let rec go i =
        if i > strlen_limit then vm_err "strlen: unterminated string"
        else if mem_read_int t ~addr:(p + i) ~width:1 = 0L then i
        else go (i + 1)
      in
      Some (Int64.of_int (go 0))
  | "strcmp" ->
      let x = to_addr (a 0) and y = to_addr (a 1) in
      let rec go i =
        let cx = mem_read_int t ~addr:(x + i) ~width:1
        and cy = mem_read_int t ~addr:(y + i) ~width:1 in
        if cx <> cy then if Int64.compare cx cy < 0 then -1L else 1L
        else if cx = 0L then 0L
        else go (i + 1)
      in
      Some (go 0)
  | "strcpy" ->
      let d = to_addr (a 0) and s = to_addr (a 1) in
      let rec go i =
        let c = mem_read_int t ~addr:(s + i) ~width:1 in
        mem_write_int t ~addr:(d + i) ~width:1 c;
        if c <> 0L then go (i + 1)
      in
      go 0;
      Some (a 0)
  | _ -> vm_err "call to unknown external function @%s" name

let is_builtin name =
  match name with
  | "memcpy" | "memmove" | "memset" | "memcmp" | "strlen" | "strcmp" | "strcpy" ->
      true
  | _ -> false

(* ---------- intrinsics ---------- *)

let get_mp t id =
  match Hashtbl.find_opt t.mps id with
  | Some mp -> mp
  | None -> vm_err "reference to unknown metapool %d" id

let cls_of_code = function
  | 0 -> Metapool_rt.Heap
  | 1 -> Metapool_rt.Stack
  | 2 -> Metapool_rt.Global
  | 3 -> Metapool_rt.Userspace
  | 4 -> Metapool_rt.Bios
  | c -> vm_err "bad memory class code %d" c

(* Cycle-model constants for the check runtime (DESIGN.md Section 6):
   each splay-tree comparison actually performed costs [splay_cmp_cost];
   a lookup answered by the object cache costs [cache_hit_cost] in total,
   much cheaper than even a single tree comparison. *)
let splay_cmp_cost = 3
let cache_hit_cost = 1

(* Execute a decoded intrinsic on already-evaluated arguments.  [vargs]
   (the original operands) are still needed by [pchk_funccheck], whose
   allowed-set diagnostics use the constant [Value.Fn] names.  Shared by
   the interpreter and the compiled tier (which pre-compiles the operand
   fetches). *)
let rec exec_intr t intr (vargs : Value.t array) (args : int64 array) :
    int64 option =
  (* Emitting here (rather than per-tier) is what makes the interpreter
     and the compiled tier produce identical SVA-OS event streams: both
     reach every mediated operation through this one function. *)
  (if !Sva_rt.Trace.active then
     match svaos_name intr with
     | Some nm -> Sva_rt.Trace.emit_svaos nm
     | None -> ());
  let a n = args.(n) in
  let addr n = to_addr (a n) in
  let sys = t.im_sys in
  match intr with
  (* --- run-time checks --- *)
  | I_pchk_reg_obj ->
      let mp = get_mp t (to_addr (a 0)) in
      Metapool_rt.register mp ~cls:(cls_of_code (to_addr (a 3))) ~start:(addr 1)
        ~len:(to_addr (a 2));
      None
  | I_pchk_drop_obj ->
      Metapool_rt.drop (get_mp t (to_addr (a 0))) ~start:(addr 1);
      None
  | I_pchk_drop_obj_opt ->
      ignore (Metapool_rt.drop_if_present (get_mp t (to_addr (a 0))) ~start:(addr 1));
      None
  | I_pchk_bounds ->
      Metapool_rt.boundscheck
        (get_mp t (to_addr (a 0)))
        ~src:(addr 1) ~dst:(addr 2)
        ~access_len:(to_addr (a 3));
      None
  | I_pchk_bounds_known ->
      Metapool_rt.boundscheck_known ~start:(addr 0) ~len:(to_addr (a 1))
        ~dst:(addr 2) ~access_len:(to_addr (a 3)) ~pool:"<static>";
      None
  | I_pchk_lscheck ->
      Metapool_rt.lscheck
        (get_mp t (to_addr (a 0)))
        ~addr:(addr 1) ~access_len:(to_addr (a 2));
      None
  | I_pchk_funccheck fc ->
      let target = addr 0 in
      let build () =
        let s = Hashtbl.create (max 4 (Array.length vargs)) in
        Array.iteri
          (fun k v ->
            if k > 0 then
              let nm =
                match v with Value.Fn (fn, _) -> fn | _ -> "<addr>"
              in
              let key = to_addr args.(k) in
              if not (Hashtbl.mem s key) then Hashtbl.add s key nm)
          vargs;
        s
      in
      let allowed =
        match fc with
        | Some c -> (
            match c.fc_set with
            | Some s -> s
            | None ->
                let s = build () in
                c.fc_set <- Some s;
                s)
        | None -> build ()
      in
      Metapool_rt.funccheck_hashed ~allowed ~target;
      None
  | I_pchk_getbounds_start ->
      (* Returns the base of the object containing the pointer, 0 if
         unknown. *)
      Some
        (match Metapool_rt.getbounds (get_mp t (to_addr (a 0))) (addr 1) with
        | Some (s, _) -> Int64.of_int s
        | None -> 0L)
  | I_pchk_getbounds_len ->
      Some
        (match Metapool_rt.getbounds (get_mp t (to_addr (a 0))) (addr 1) with
        | Some (_, l) -> Int64.of_int l
        | None -> 0L)
  | I_sva_pseudo_alloc ->
      (* Unchecked build: just manufacture the pointer. *)
      Some (a 0)
  | I_pchk_pseudo_alloc ->
      let mp = get_mp t (to_addr (a 0)) in
      let start = addr 1 and len = to_addr (a 2) in
      (match Metapool_rt.getbounds mp start with
      | Some _ -> () (* already registered *)
      | None -> Metapool_rt.register mp ~cls:Metapool_rt.Bios ~start ~len);
      Some (a 1)
  (* --- Table 1: state save/restore --- *)
  | I_save_integer ->
      Svaos.save_integer sys ~buffer:(addr 0);
      None
  | I_load_integer ->
      Svaos.load_integer sys ~buffer:(addr 0);
      None
  | I_save_fp ->
      Some (if Svaos.save_fp sys ~buffer:(addr 0) ~always:(a 1 <> 0L) then 1L else 0L)
  | I_load_fp ->
      Svaos.load_fp sys ~buffer:(addr 0);
      None
  (* --- Table 2: interrupt contexts --- *)
  | I_icontext_save ->
      Svaos.icontext_save sys ~icp:(addr 0) ~isp:(addr 1);
      None
  | I_icontext_load ->
      Svaos.icontext_load sys ~icp:(addr 0) ~isp:(addr 1);
      None
  | I_icontext_commit ->
      Svaos.icontext_commit sys ~icp:(addr 0);
      None
  | I_ipush_function ->
      Svaos.ipush_function sys ~icp:(addr 0) ~fn:(addr 1) ~arg:(a 2);
      None
  | I_was_privileged ->
      Some (if Svaos.was_privileged sys ~icp:(addr 0) then 1L else 0L)
  (* --- registration and dispatch --- *)
  | I_register_syscall ->
      let handler =
        match func_name t (addr 1) with
        | Some fn -> fn
        | None -> vm_err "sva_register_syscall: bad handler address"
      in
      Svaos.register_syscall sys ~num:(to_addr (a 0)) ~handler;
      None
  | I_register_interrupt ->
      let handler =
        match func_name t (addr 1) with
        | Some fn -> fn
        | None -> vm_err "sva_register_interrupt: bad handler address"
      in
      Svaos.register_interrupt sys ~vector:(to_addr (a 0)) ~handler;
      None
  | I_syscall -> (
      (* Internal system call: dispatch through the registered handler
         using the same mechanism as a userspace trap, minus the privilege
         transition. *)
      match Svaos.syscall_handler sys ~num:(to_addr (a 0)) with
      | Some handler ->
          let rest = Array.to_list (Array.sub args 1 (Array.length args - 1)) in
          let res = call t handler rest in
          Some (Option.value res ~default:0L)
      | None -> Some (-38L) (* -ENOSYS *))
  (* --- MMU --- *)
  | I_mmu_new_space -> Some (Int64.of_int (Svaos.mmu_new_space sys))
  | I_mmu_clone_space ->
      Some (Int64.of_int (Svaos.mmu_clone_space sys ~sid:(to_addr (a 0))))
  | I_mmu_destroy_space ->
      Svaos.mmu_destroy_space sys ~sid:(to_addr (a 0));
      None
  | I_mmu_activate ->
      Svaos.mmu_activate sys ~sid:(to_addr (a 0));
      None
  | I_mmu_map_page ->
      Svaos.mmu_map_page sys ~sid:(to_addr (a 0)) ~vpn:(to_addr (a 1))
        ~ppn:(to_addr (a 2))
        ~writable:(a 3 <> 0L);
      None
  | I_mmu_unmap_page ->
      Svaos.mmu_unmap_page sys ~sid:(to_addr (a 0)) ~vpn:(to_addr (a 1));
      None
  | I_mmu_page_count ->
      Some (Int64.of_int (Svaos.mmu_page_count sys ~sid:(to_addr (a 0))))
  (* --- I/O --- *)
  | I_io_console_write ->
      Svaos.io_console_write sys ~addr:(addr 0) ~len:(to_addr (a 1));
      None
  | I_io_disk_read ->
      Svaos.io_disk_read sys ~block:(to_addr (a 0)) ~addr:(addr 1);
      None
  | I_io_disk_write ->
      Svaos.io_disk_write sys ~block:(to_addr (a 0)) ~addr:(addr 1);
      None
  | I_io_nic_send ->
      Svaos.io_nic_send sys ~proto:(to_addr (a 0)) ~addr:(addr 1)
        ~len:(to_addr (a 2));
      None
  | I_io_nic_recv ->
      Some (Int64.of_int (Svaos.io_nic_recv sys ~addr:(addr 0) ~maxlen:(to_addr (a 1))))
  | I_timer_read -> Some (Svaos.timer_read sys)
  | I_cli ->
      Svaos.cli sys;
      None
  | I_sti ->
      Svaos.sti sys;
      None
  | I_lock_acquire ->
      Svaos.lock_acquire sys ~lock:(to_addr (a 0));
      None
  | I_lock_release ->
      Svaos.lock_release sys ~lock:(to_addr (a 0));
      None
  (* --- constants --- *)
  | I_heap_base -> Some (Int64.of_int (Svaos.heap_base sys))
  | I_heap_size -> Some (Int64.of_int (Svaos.heap_size sys / 2))
    (* lower half only: the upper half belongs to the malloc instruction *)
  | I_user_base -> Some (Int64.of_int (Svaos.user_base sys))
  | I_user_size -> Some (Int64.of_int (Svaos.user_size sys))
  | I_panic -> vm_err "kernel panic: code %Ld" (a 0)
  | I_unknown name -> vm_err "unknown intrinsic @%s" name

(* ---------- the main execution loop ---------- *)

and exec_func t (pf : prepared_func) (args : int64 list) : int64 option =
  let f = pf.pf in
  let regs = Array.make (max 1 f.Func.f_next_reg) 0L in
  List.iteri
    (fun i v -> if i < Array.length regs then regs.(i) <- v)
    args;
  let sp_save = t.sp in
  let result = ref None in
  let running = ref true in
  let cur = ref 0 in
  let prev = ref (-1) in
  let phi_scratch = Array.make (max 1 pf.pf_max_phis) 0L in
  let nblocks = Array.length pf.pf_blocks in
  while !running do
    (* Edge profiling for superblock selection: host bookkeeping only,
       live only while the function is still interpreted under a JIT. *)
    (match pf.pf_edges with
    | Some tbl when !prev >= 0 ->
        let key = (!prev * nblocks) + !cur in
        (match Hashtbl.find_opt tbl key with
        | Some r -> incr r
        | None -> Hashtbl.add tbl key (ref 1))
    | _ -> ());
    let blk = pf.pf_blocks.(!cur) in
    (* Phase 1: evaluate all phis against the predecessor simultaneously. *)
    let nphis = Array.length blk.pb_phis in
    if nphis > 0 then begin
      for k = 0 to nphis - 1 do
        let _, incoming = blk.pb_phis.(k) in
        match (if !prev >= 0 then incoming.(!prev) else None) with
        | Some v -> phi_scratch.(k) <- eval t regs v
        | None ->
            vm_err "phi in %%%s has no incoming for %%%s" blk.pb_label
              (if !prev >= 0 then pf.pf_blocks.(!prev).pb_label else "")
      done;
      for k = 0 to nphis - 1 do
        regs.(fst blk.pb_phis.(k)) <- phi_scratch.(k)
      done
    end;
    t.nsteps <- t.nsteps + nphis;
    t.ncycles <- t.ncycles + nphis;
    (* Phase 2: straight-line instructions. *)
    let body = blk.pb_body in
    for bi = 0 to Array.length body - 1 do
      t.nsteps <- t.nsteps + 1;
      t.ncycles <- t.ncycles + 1;
      (match t.limit with
      | Some l when t.nsteps > l -> vm_err "step limit exceeded"
      | _ -> ());
      match body.(bi) with
      | P_intr (i, intr, vargs, cost_native, cost_mediated) -> (
          let mediated = t.im_sys.Svaos.mode = Svaos.Sva_mediated in
          let splay0 = Sva_rt.Splay.comparisons () in
          let hits0 = Sva_rt.Stats.cache_hits () in
          let r = exec_intr t intr vargs (Array.map (eval t regs) vargs) in
          t.ncycles <-
            t.ncycles
            + (if mediated then cost_mediated else cost_native)
            + (splay_cmp_cost * (Sva_rt.Splay.comparisons () - splay0))
            + (cache_hit_cost * (Sva_rt.Stats.cache_hits () - hits0));
          (* MMU space duplication costs a page-table walk. *)
          (match (intr, r) with
          | I_mmu_clone_space, Some sid ->
              t.ncycles <-
                t.ncycles
                + (2 * Svaos.mmu_page_count t.im_sys ~sid:(Int64.to_int sid))
          | _ -> ());
          match r with
          | Some v -> if i.Instr.ty <> Ty.Void then regs.(i.Instr.id) <- v
          | None -> ())
      | P_call (i, callee, cargs, cache) -> (
          let argv = Array.to_list (Array.map (eval t regs) cargs) in
          let res =
            match cache.cc with
            | Cc_func cpf -> enter t cpf argv
            | Cc_builtin name -> builtin t name (Array.of_list argv)
            | Cc_unresolved -> (
                match callee with
                | Value.Fn (name, _) -> (
                    match Hashtbl.find_opt t.funcs name with
                    | Some cpf ->
                        cache.cc <- Cc_func cpf;
                        enter t cpf argv
                    | None ->
                        if is_builtin name then begin
                          cache.cc <- Cc_builtin name;
                          builtin t name (Array.of_list argv)
                        end
                        else vm_err "call to undefined function @%s" name)
                | _ -> (
                    let target = to_addr (eval t regs callee) in
                    match func_name t target with
                    | Some name -> dispatch_call t name argv
                    | None ->
                        vm_err "indirect call to non-code address 0x%x" target))
          in
          match res with Some v -> regs.(i.Instr.id) <- v | None -> ())
      | P_base i -> (
        let set v = regs.(i.Instr.id) <- v in
        match i.Instr.kind with
        | Instr.Binop (op, x, y) -> (
            match op with
            | Instr.Fadd | Instr.Fsub | Instr.Fmul | Instr.Fdiv ->
                let fx = Int64.float_of_bits (eval t regs x)
                and fy = Int64.float_of_bits (eval t regs y) in
                let r =
                  match op with
                  | Instr.Fadd -> fx +. fy
                  | Instr.Fsub -> fx -. fy
                  | Instr.Fmul -> fx *. fy
                  | _ -> fx /. fy
                in
                set (Int64.bits_of_float r)
            | _ -> (
                let w = width_of_value x in
                match Constfold.eval_binop op w (eval t regs x) (eval t regs y) with
                | Some r -> set r
                | None -> vm_err "division by zero in @%s" f.Func.f_name))
        | Instr.Icmp (op, x, y) ->
            let w = width_of_value x in
            set
              (if Constfold.eval_icmp op w (eval t regs x) (eval t regs y) then 1L
               else 0L)
        | Instr.Alloca (ty, count) ->
            let n = Int64.to_int (eval t regs count) in
            let size = max 1 (sizeof t ty * max 1 n) in
            t.sp <- (t.sp + 15) / 16 * 16;
            if t.sp + size > Machine.stack_base + Machine.stack_size then
              vm_err "kernel stack overflow";
            let addr = t.sp in
            t.sp <- t.sp + size;
            set (Int64.of_int addr)
        | Instr.Load p ->
            let w = ty_width i.Instr.ty in
            set (mem_read_int t ~addr:(to_addr (eval t regs p)) ~width:w)
        | Instr.Store (v, p) ->
            let w = ty_width (Value.ty v) in
            mem_write_int t ~addr:(to_addr (eval t regs p)) ~width:w (eval t regs v)
        | Instr.Gep (base, idxs) ->
            let pointee = Ty.pointee (Value.ty base) in
            let off = gep_offset t pointee regs idxs in
            set (Int64.add (eval t regs base) off)
        | Instr.Cast (op, x, ty) -> (
            let v = eval t regs x in
            match op with
            | Instr.Bitcast | Instr.Inttoptr | Instr.Ptrtoint -> set v
            | Instr.Trunc -> (
                match ty with
                | Ty.Int w -> set (Constfold.truncate_to_width w v)
                | _ -> vm_err "trunc to non-integer")
            | Instr.Sext -> set v
            | Instr.Zext ->
                let sw = width_of_value x in
                set (Constfold.zext_of_width sw v)
            | Instr.Fptosi -> set (Int64.of_float (Int64.float_of_bits v))
            | Instr.Sitofp -> set (Int64.bits_of_float (Int64.to_float v)))
        | Instr.Select (c, x, y) ->
            set (if eval t regs c <> 0L then eval t regs x else eval t regs y)
        | Instr.Malloc (ty, count) ->
            let n = Int64.to_int (eval t regs count) in
            set (Int64.of_int (heap_alloc t (sizeof t ty * max 1 n)))
        | Instr.Free p -> heap_free t (to_addr (eval t regs p))
        | Instr.Atomic_cas (p, e, r) ->
            let w = ty_width (Value.ty e) in
            let addr = to_addr (eval t regs p) in
            let old = mem_read_int t ~addr ~width:w in
            if old = eval t regs e then
              mem_write_int t ~addr ~width:w (eval t regs r);
            set old
        | Instr.Atomic_add (p, d) ->
            let w = ty_width (Value.ty d) in
            let addr = to_addr (eval t regs p) in
            let old = mem_read_int t ~addr ~width:w in
            mem_write_int t ~addr ~width:w (Int64.add old (eval t regs d));
            set old
        | Instr.Membar -> ()
        (* Pre-decoded at prepare time into P_intr / P_call / pb_phis. *)
        | Instr.Intrinsic _ | Instr.Call _ | Instr.Phi _ -> assert false)
    done;
    (* Terminator. *)
    t.nsteps <- t.nsteps + 1;
    t.ncycles <- t.ncycles + 1;
    (match t.limit with
    | Some l when t.nsteps > l -> vm_err "step limit exceeded"
    | _ -> ());
    prev := !cur;
    (match blk.pb_term with
    | P_ret v ->
        result := Option.map (eval t regs) v;
        running := false
    | P_jmp ix -> cur := ix
    | P_br (c, th, el) -> cur := (if eval t regs c <> 0L then th else el)
    | P_switch (v, cases, default) ->
        let x = eval t regs v in
        let n = Array.length cases in
        let rec go k =
          if k >= n then default
          else
            let c, ix = cases.(k) in
            if Int64.equal c x then ix else go (k + 1)
        in
        cur := go 0
    | P_unreachable -> vm_err "reached 'unreachable' in @%s" f.Func.f_name)
  done;
  t.sp <- sp_save;
  !result

(* Tier dispatch: every function entry goes through here.  Without a JIT
   installed this is one null test on top of the interpreter.  With one,
   each interpreted entry bumps the function's profile counter; at the
   threshold the function is translated (host work, zero modeled cycles)
   and every subsequent entry runs the compiled closure tree. *)
and enter t (pf : prepared_func) (args : int64 list) : int64 option =
  if not !Sva_rt.Trace.profiling then enter_raw t pf args
  else begin
    (* Cycle-attribution profiling: bracket the whole tier dispatch so
       compiled and interpreted entries are charged identically.  The
       frames must balance even when a check traps out of the function. *)
    let name = pf.pf.Func.f_name in
    Sva_rt.Trace.fn_enter name ~cycles:t.ncycles
      ~checks:(Sva_rt.Stats.checks_now ());
    match enter_raw t pf args with
    | r ->
        Sva_rt.Trace.fn_exit name ~cycles:t.ncycles
          ~checks:(Sva_rt.Stats.checks_now ());
        r
    | exception e ->
        Sva_rt.Trace.fn_exit name ~cycles:t.ncycles
          ~checks:(Sva_rt.Stats.checks_now ());
        raise e
  end

and enter_raw t (pf : prepared_func) (args : int64 list) : int64 option =
  match pf.pf_entry with
  | Some compiled -> compiled args
  | None -> (
      match t.jit with
      | None -> exec_func t pf args
      | Some j ->
          (match pf.pf_edges with
          | None -> pf.pf_edges <- Some (Hashtbl.create 16)
          | Some _ -> ());
          pf.pf_calls <- pf.pf_calls + 1;
          if pf.pf_calls >= j.jit_threshold then begin
            let compiled = j.jit_translate t pf in
            pf.pf_entry <- Some compiled;
            compiled args
          end
          else exec_func t pf args)

and dispatch_call t name argv =
  match Hashtbl.find_opt t.funcs name with
  | Some pf -> enter t pf argv
  | None ->
      if is_builtin name then builtin t name (Array.of_list argv)
      else vm_err "call to undefined function @%s" name

and call t name args =
  match Hashtbl.find_opt t.funcs name with
  | Some pf -> (
      try enter t pf args
      with e ->
        (* A trap aborts the VM invocation; unwind the stack allocator. *)
        t.sp <- Machine.stack_base;
        raise e)
  | None -> vm_err "call to unknown function @%s" name

let call_addr t addr args =
  match func_name t addr with
  | Some name -> call t name args
  | None -> vm_err "call_addr: 0x%x is not a function" addr
