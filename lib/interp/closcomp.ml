(* The SVM's second execution tier: a closure compiler.

   Section 3.4's SVM "can cache translations" of verified bytecode; this
   module is that translator for the OCaml substrate.  A promoted
   function is compiled once into a tree of OCaml closures — one fused
   chain per basic block, with operand fetches specialized per value
   constructor, branch targets resolved to block indices, and
   superinstruction fusion for compare+branch, gep+load/store and
   check+access pairs — so the hot path never pays the interpreter's
   per-instruction constructor dispatch again.

   Translations are keyed by the SHA-256 of the function's bytecode and
   recorded as signed cache entries ({!Sva_bytecode.Signing.fentry}).  A
   cache hit re-verifies the signature before reuse and may then skip the
   translation-time bytecode re-verification; a tampered entry is
   discarded and the function re-translated from re-verified bytecode,
   exactly the paper's cached-native-code story.

   The tier must be semantically invisible.  Every compiled closure
   reproduces the interpreter's bookkeeping bit-for-bit: steps, the
   modeled cycle counts (including the splay-comparison and cache-hit
   deltas charged around intrinsics), the step-limit check position, phi
   simultaneity, stack-pointer save/restore, and all error messages.
   The speedup is host wall-clock only. *)

open Sva_ir
module I = Interp
module Machine = Sva_hw.Machine
module Svaos = Sva_os.Svaos
module Metapool_rt = Sva_rt.Metapool_rt
module Stats = Sva_rt.Stats
module Splay = Sva_rt.Splay
module Codec = Sva_bytecode.Codec
module Signing = Sva_bytecode.Signing
module Sha256 = Sva_bytecode.Sha256

(* ---------- per-invocation frame ---------- *)

type frame = {
  regs : int64 array;
  scratch : int64 array;  (* phi staging, sized pf_max_phis *)
  mutable prev : int;  (* predecessor block index; -1 on entry *)
  mutable ret : int64 option;
}

type cvalf = frame -> int64
type cop = frame -> unit

(* Per-step bookkeeping, identical to the interpreter's prologue for
   every instruction and terminator: count, charge one cycle, then the
   step-limit check. *)
let[@inline] tick (t : I.t) =
  t.I.nsteps <- t.I.nsteps + 1;
  t.I.ncycles <- t.I.ncycles + 1;
  match t.I.limit with
  | Some l when t.I.nsteps > l -> I.vm_err "step limit exceeded"
  | _ -> ()

(* ---------- operand fetch specialization ---------- *)

let cval (t : I.t) (v : Value.t) : cvalf =
  match v with
  | Value.Reg (id, _, _) -> fun fr -> fr.regs.(id)
  | Value.Imm (Ty.Int w, n) ->
      let k = Constfold.truncate_to_width w n in
      fun _ -> k
  | Value.Imm (_, n) -> fun _ -> n
  | Value.Fimm f ->
      let k = Int64.bits_of_float f in
      fun _ -> k
  | Value.Null _ | Value.Undef _ -> fun _ -> 0L
  | Value.Global (g, _) -> (
      (* Resolve now when possible; a symbol a later link_module may
         still provide falls back to the interpreter's lazy lookup
         (addresses, once assigned, are never rebound). *)
      match Hashtbl.find_opt t.I.g_addr g with
      | Some a ->
          let k = Int64.of_int a in
          fun _ -> k
      | None -> (
          fun _ ->
            match Hashtbl.find_opt t.I.g_addr g with
            | Some a -> Int64.of_int a
            | None -> I.vm_err "unknown global @%s" g))
  | Value.Fn (f, _) -> (
      match Hashtbl.find_opt t.I.fn_addr f with
      | Some a ->
          let k = Int64.of_int a in
          fun _ -> k
      | None -> (
          fun _ ->
            match Hashtbl.find_opt t.I.fn_addr f with
            | Some a -> Int64.of_int a
            | None -> I.vm_err "unknown function @%s" f))

(* Compile-time constant, when the operand needs no frame and no symbol
   table (exactly the cases [I.eval] computes without [t]). *)
let const_of (v : Value.t) : int64 option =
  match v with
  | Value.Imm (Ty.Int w, n) -> Some (Constfold.truncate_to_width w n)
  | Value.Imm (_, n) -> Some n
  | Value.Fimm f -> Some (Int64.bits_of_float f)
  | Value.Null _ | Value.Undef _ -> Some 0L
  | _ -> None

(* ---------- instruction compilation ---------- *)

(* Specialized integer binops.  Add/Sub/Mul and the bitwise ops are pure
   wrap-to-width and inlined; the trapping, shift and unsigned ops reuse
   Constfold.eval_binop (the interpreter's own evaluator) so the
   semantics cannot drift. *)
let cbinop t fname (i : Instr.t) op x y : cop =
  let id = i.Instr.id in
  match op with
  | Instr.Fadd | Instr.Fsub | Instr.Fmul | Instr.Fdiv ->
      let cx = cval t x and cy = cval t y in
      let fop =
        match op with
        | Instr.Fadd -> ( +. )
        | Instr.Fsub -> ( -. )
        | Instr.Fmul -> ( *. )
        | _ -> ( /. )
      in
      fun fr ->
        tick t;
        let fx = Int64.float_of_bits (cx fr) in
        let fy = Int64.float_of_bits (cy fr) in
        fr.regs.(id) <- Int64.bits_of_float (fop fx fy)
  | _ -> (
      let w = I.width_of_value x in
      let cx = cval t x and cy = cval t y in
      let wrap =
        if w >= 64 then fun v -> v
        else if w = 1 then fun v -> Int64.logand v 1L
        else
          let sh = 64 - w in
          fun v -> Int64.shift_right (Int64.shift_left v sh) sh
      in
      match op with
      | Instr.Add ->
          fun fr ->
            tick t;
            fr.regs.(id) <- wrap (Int64.add (cx fr) (cy fr))
      | Instr.Sub ->
          fun fr ->
            tick t;
            fr.regs.(id) <- wrap (Int64.sub (cx fr) (cy fr))
      | Instr.Mul ->
          fun fr ->
            tick t;
            fr.regs.(id) <- wrap (Int64.mul (cx fr) (cy fr))
      | Instr.And ->
          fun fr ->
            tick t;
            fr.regs.(id) <- wrap (Int64.logand (cx fr) (cy fr))
      | Instr.Or ->
          fun fr ->
            tick t;
            fr.regs.(id) <- wrap (Int64.logor (cx fr) (cy fr))
      | Instr.Xor ->
          fun fr ->
            tick t;
            fr.regs.(id) <- wrap (Int64.logxor (cx fr) (cy fr))
      | _ ->
          fun fr ->
            tick t;
            let a = cx fr in
            let b = cy fr in
            (match Constfold.eval_binop op w a b with
            | Some r -> fr.regs.(id) <- r
            | None -> I.vm_err "division by zero in @%s" fname))

(* Gep: fold the index walk at compile time into a static byte offset
   plus dynamic (scale * index) terms.  A dynamically-indexed struct (or
   any walk this decomposition cannot prove out) falls back to the
   interpreter's own gep_offset so errors and semantics match exactly. *)
let cgep t (i : Instr.t) (base : Value.t) idxs : cop =
  let id = i.Instr.id in
  let pointee = Ty.pointee (Value.ty base) in
  let cbase = cval t base in
  let generic () =
    (* offset first, base second — the interpreter's order *)
    fun fr ->
      tick t;
      let off = I.gep_offset t pointee fr.regs idxs in
      fr.regs.(id) <- Int64.add (cbase fr) off
  in
  match
    let konst = ref 0L in
    let terms = ref [] in
    let add_idx scale v =
      match const_of v with
      | Some n -> konst := Int64.add !konst (Int64.mul n scale)
      | None -> terms := (scale, cval t v) :: !terms
    in
    (match idxs with
    | first :: rest ->
        add_idx (Int64.of_int (I.sizeof t pointee)) first;
        let rec descend ty = function
          | [] -> ()
          | idx :: more -> (
              match ty with
              | Ty.Array (e, _) ->
                  add_idx (Int64.of_int (I.sizeof t e)) idx;
                  descend e more
              | Ty.Struct sname -> (
                  match const_of idx with
                  | Some n ->
                      let foff, fty =
                        Ty.field_at t.I.im_mod.Irmod.m_ctx sname
                          (Int64.to_int n)
                      in
                      konst := Int64.add !konst (Int64.of_int foff);
                      descend fty more
                  | None -> raise Exit)
              | _ -> raise Exit)
        in
        descend pointee rest
    | [] -> raise Exit);
    (!konst, List.rev !terms)
  with
  | exception _ -> generic ()
  | k, [] ->
      fun fr ->
        tick t;
        fr.regs.(id) <- Int64.add (cbase fr) k
  | k, ts ->
      fun fr ->
        tick t;
        let off =
          List.fold_left
            (fun acc (s, cv) -> Int64.add acc (Int64.mul (cv fr) s))
            k ts
        in
        fr.regs.(id) <- Int64.add (cbase fr) off

(* Calls.  A compiled call site shares the interpreter's per-site callee
   cache: a callee already resolved by interpreted runs is inlined, and
   one resolved later is memoized for both tiers.  Callees always
   re-enter through [I.enter], so compiled code can call interpreted
   functions and trigger their promotion. *)
let ccall t (i : Instr.t) (callee : Value.t) (cargs : Value.t array)
    (cache : I.prepared_func I.callee_cache) : cop =
  let id = i.Instr.id in
  let evs = Array.map (cval t) cargs in
  let argv fr = Array.to_list (Array.map (fun ev -> ev fr) evs) in
  let set fr res =
    match res with Some v -> fr.regs.(id) <- v | None -> ()
  in
  let direct cpf fr =
    tick t;
    set fr (I.enter t cpf (argv fr))
  in
  match cache.I.cc with
  | I.Cc_func cpf -> direct cpf
  | I.Cc_builtin name ->
      fun fr ->
        tick t;
        set fr (I.builtin t name (Array.of_list (argv fr)))
  | I.Cc_unresolved -> (
      match callee with
      | Value.Fn (name, _) -> (
          match Hashtbl.find_opt t.I.funcs name with
          | Some cpf ->
              cache.I.cc <- I.Cc_func cpf;
              direct cpf
          | None ->
              (* Unresolved at translation time: the defining module may
                 be linked later.  Resolve on first execution, memoizing
                 into the shared per-site cache like the interpreter. *)
              fun fr ->
                tick t;
                let args = argv fr in
                let res =
                  match cache.I.cc with
                  | I.Cc_func cpf -> I.enter t cpf args
                  | I.Cc_builtin nm -> I.builtin t nm (Array.of_list args)
                  | I.Cc_unresolved -> (
                      match Hashtbl.find_opt t.I.funcs name with
                      | Some cpf ->
                          cache.I.cc <- I.Cc_func cpf;
                          I.enter t cpf args
                      | None ->
                          if I.is_builtin name then begin
                            cache.I.cc <- I.Cc_builtin name;
                            I.builtin t name (Array.of_list args)
                          end
                          else
                            I.vm_err "call to undefined function @%s" name)
                in
                set fr res)
      | _ ->
          let ctarget = cval t callee in
          fun fr ->
            tick t;
            let args = argv fr in
            let target = I.to_addr (ctarget fr) in
            (match I.func_name t target with
            | Some name -> set fr (I.dispatch_call t name args)
            | None ->
                I.vm_err "indirect call to non-code address 0x%x" target))

(* Intrinsics: pre-compiled operand fetches feeding the shared
   [I.exec_intr], wrapped in the interpreter's exact charging sequence
   (base cost by current SVA-OS mode, splay-comparison and cache-hit
   deltas, the mmu_clone_space page-walk surcharge). *)
let cintr t (i : Instr.t) intr (vargs : Value.t array) cost_native
    cost_mediated : cop =
  let id = i.Instr.id in
  let has_result = i.Instr.ty <> Ty.Void in
  let evs = Array.map (cval t) vargs in
  fun fr ->
    tick t;
    let mediated = t.I.im_sys.Svaos.mode = Svaos.Sva_mediated in
    let splay0 = Splay.comparisons () in
    let hits0 = Stats.cache_hits () in
    let r = I.exec_intr t intr vargs (Array.map (fun ev -> ev fr) evs) in
    t.I.ncycles <-
      t.I.ncycles
      + (if mediated then cost_mediated else cost_native)
      + (I.splay_cmp_cost * (Splay.comparisons () - splay0))
      + (I.cache_hit_cost * (Stats.cache_hits () - hits0));
    (match (intr, r) with
    | I.I_mmu_clone_space, Some sid ->
        t.I.ncycles <-
          t.I.ncycles
          + (2 * Svaos.mmu_page_count t.I.im_sys ~sid:(Int64.to_int sid))
    | _ -> ());
    match r with
    | Some v -> if has_result then fr.regs.(id) <- v
    | None -> ()

(* One instruction to one closure.  A compile-time error (bad width, gep
   into a scalar, ...) is deferred to execution time, where the
   interpreter would raise it — after the same bookkeeping. *)
let cinsn t fname (p : I.pinsn) : cop =
  let compile () =
    match p with
    | I.P_intr (i, intr, vargs, cn, cm) -> cintr t i intr vargs cn cm
    | I.P_call (i, callee, cargs, cache) -> ccall t i callee cargs cache
    | I.P_base i -> (
        let id = i.Instr.id in
        match i.Instr.kind with
        | Instr.Binop (op, x, y) -> cbinop t fname i op x y
        | Instr.Icmp (op, x, y) ->
            let w = I.width_of_value x in
            let cx = cval t x and cy = cval t y in
            fun fr ->
              tick t;
              let a = cx fr in
              let b = cy fr in
              fr.regs.(id) <-
                (if Constfold.eval_icmp op w a b then 1L else 0L)
        | Instr.Alloca (ty, count) ->
            let es = I.sizeof t ty in
            let ccount = cval t count in
            fun fr ->
              tick t;
              let n = Int64.to_int (ccount fr) in
              let size = max 1 (es * max 1 n) in
              t.I.sp <- (t.I.sp + 15) / 16 * 16;
              if t.I.sp + size > Machine.stack_base + Machine.stack_size
              then I.vm_err "kernel stack overflow";
              let addr = t.I.sp in
              t.I.sp <- t.I.sp + size;
              fr.regs.(id) <- Int64.of_int addr
        | Instr.Load p ->
            let w = I.ty_width i.Instr.ty in
            let cp = cval t p in
            fun fr ->
              tick t;
              fr.regs.(id) <-
                I.mem_read_int t ~addr:(I.to_addr (cp fr)) ~width:w
        | Instr.Store (v, p) ->
            let w = I.ty_width (Value.ty v) in
            let cv = cval t v and cp = cval t p in
            fun fr ->
              tick t;
              I.mem_write_int t ~addr:(I.to_addr (cp fr)) ~width:w (cv fr)
        | Instr.Gep (base, idxs) -> cgep t i base idxs
        | Instr.Cast (op, x, ty) -> (
            let cx = cval t x in
            match op with
            | Instr.Bitcast | Instr.Inttoptr | Instr.Ptrtoint | Instr.Sext ->
                fun fr ->
                  tick t;
                  fr.regs.(id) <- cx fr
            | Instr.Trunc -> (
                match ty with
                | Ty.Int w ->
                    fun fr ->
                      tick t;
                      fr.regs.(id) <- Constfold.truncate_to_width w (cx fr)
                | _ -> I.vm_err "trunc to non-integer")
            | Instr.Zext ->
                let sw = I.width_of_value x in
                fun fr ->
                  tick t;
                  fr.regs.(id) <- Constfold.zext_of_width sw (cx fr)
            | Instr.Fptosi ->
                fun fr ->
                  tick t;
                  fr.regs.(id) <-
                    Int64.of_float (Int64.float_of_bits (cx fr))
            | Instr.Sitofp ->
                fun fr ->
                  tick t;
                  fr.regs.(id) <-
                    Int64.bits_of_float (Int64.to_float (cx fr)))
        | Instr.Select (c, x, y) ->
            let cc = cval t c and cx = cval t x and cy = cval t y in
            fun fr ->
              tick t;
              fr.regs.(id) <- (if cc fr <> 0L then cx fr else cy fr)
        | Instr.Malloc (ty, count) ->
            let es = I.sizeof t ty in
            let ccount = cval t count in
            fun fr ->
              tick t;
              let n = Int64.to_int (ccount fr) in
              fr.regs.(id) <- Int64.of_int (I.heap_alloc t (es * max 1 n))
        | Instr.Free p ->
            let cp = cval t p in
            fun fr ->
              tick t;
              I.heap_free t (I.to_addr (cp fr))
        | Instr.Atomic_cas (p, e, r) ->
            let w = I.ty_width (Value.ty e) in
            let cp = cval t p and ce = cval t e and cr = cval t r in
            fun fr ->
              tick t;
              let addr = I.to_addr (cp fr) in
              let old = I.mem_read_int t ~addr ~width:w in
              if old = ce fr then I.mem_write_int t ~addr ~width:w (cr fr);
              fr.regs.(id) <- old
        | Instr.Atomic_add (p, d) ->
            let w = I.ty_width (Value.ty d) in
            let cp = cval t p and cd = cval t d in
            fun fr ->
              tick t;
              let addr = I.to_addr (cp fr) in
              let old = I.mem_read_int t ~addr ~width:w in
              I.mem_write_int t ~addr ~width:w (Int64.add old (cd fr));
              fr.regs.(id) <- old
        | Instr.Membar -> fun _ -> tick t
        | Instr.Intrinsic _ | Instr.Call _ | Instr.Phi _ -> assert false)
  in
  match compile () with
  | c -> c
  | exception e ->
      fun _ ->
        tick t;
        raise e

(* ---------- superinstruction fusion ---------- *)

(* gep+load / gep+store: the computed address feeds the access directly.
   Both halves keep their own bookkeeping prologue (the step-limit trap
   can fire between them, exactly as in the interpreter), and the gep
   result register is still written — later code may read it. *)
let fuse_gep_access t (g : Instr.t) base idxs (acc : I.pinsn) : cop option =
  let gid = g.Instr.id in
  match acc with
  | I.P_base a -> (
      match a.Instr.kind with
      | Instr.Load (Value.Reg (pid, _, _)) when pid = gid -> (
          match I.ty_width a.Instr.ty with
          | exception I.Vm_error _ -> None
          | w ->
              let cgep_op = cgep t g base idxs in
              let did = a.Instr.id in
              Some
                (fun fr ->
                  cgep_op fr;
                  tick t;
                  fr.regs.(did) <-
                    I.mem_read_int t
                      ~addr:(I.to_addr fr.regs.(gid))
                      ~width:w))
      | Instr.Store (v, Value.Reg (pid, _, _)) when pid = gid -> (
          match I.ty_width (Value.ty v) with
          | exception I.Vm_error _ -> None
          | w ->
              let cgep_op = cgep t g base idxs in
              let cv = cval t v in
              Some
                (fun fr ->
                  cgep_op fr;
                  tick t;
                  I.mem_write_int t
                    ~addr:(I.to_addr fr.regs.(gid))
                    ~width:w (cv fr)))
      | _ -> None)
  | _ -> None

(* lscheck+access: the checked pointer is evaluated once and shared by
   the check and the guarded load/store.  The check half replicates the
   interpreter's full charging sequence for pchk_lscheck. *)
let fuse_check_access t (ci : Instr.t) (vargs : Value.t array) cost_native
    cost_mediated (acc : I.pinsn) : cop option =
  if Array.length vargs <> 3 || ci.Instr.ty <> Ty.Void then None
  else
    let cmp_id = cval t vargs.(0) in
    let cptr = cval t vargs.(1) in
    let clen = cval t vargs.(2) in
    (* bookkeeping + execution + charging of the lscheck itself; returns
       the evaluated pointer for the fused access *)
    let check fr =
      tick t;
      let mpid = cmp_id fr in
      let ptr = cptr fr in
      let len = clen fr in
      let mediated = t.I.im_sys.Svaos.mode = Svaos.Sva_mediated in
      let splay0 = Splay.comparisons () in
      let hits0 = Stats.cache_hits () in
      Metapool_rt.lscheck
        (I.get_mp t (I.to_addr mpid))
        ~addr:(I.to_addr ptr)
        ~access_len:(I.to_addr len);
      t.I.ncycles <-
        t.I.ncycles
        + (if mediated then cost_mediated else cost_native)
        + (I.splay_cmp_cost * (Splay.comparisons () - splay0))
        + (I.cache_hit_cost * (Stats.cache_hits () - hits0));
      ptr
    in
    match acc with
    | I.P_base a -> (
        match a.Instr.kind with
        | Instr.Load p when Value.equal p vargs.(1) -> (
            match I.ty_width a.Instr.ty with
            | exception I.Vm_error _ -> None
            | w ->
                let did = a.Instr.id in
                Some
                  (fun fr ->
                    let ptr = check fr in
                    tick t;
                    fr.regs.(did) <-
                      I.mem_read_int t ~addr:(I.to_addr ptr) ~width:w))
        | Instr.Store (v, p) when Value.equal p vargs.(1) -> (
            match I.ty_width (Value.ty v) with
            | exception I.Vm_error _ -> None
            | w ->
                let cv = cval t v in
                Some
                  (fun fr ->
                    let ptr = check fr in
                    tick t;
                    I.mem_write_int t ~addr:(I.to_addr ptr) ~width:w (cv fr)))
        | _ -> None)
    | _ -> None

(* ---------- block compilation ---------- *)

type cblock = {
  cb_phis : cop option;
  cb_body : cop array;
  cb_term : frame -> int;  (* next block index; -1 = return *)
}

(* Compile a terminator.  [bi] is this block's index: the interpreter
   records [prev] after the terminator's bookkeeping, before evaluating
   its operand. *)
let cterm t fname bi (term : I.pterm) : frame -> int =
  match term with
  | I.P_ret None ->
      fun fr ->
        tick t;
        fr.prev <- bi;
        fr.ret <- None;
        -1
  | I.P_ret (Some v) ->
      let cv = cval t v in
      fun fr ->
        tick t;
        fr.prev <- bi;
        fr.ret <- Some (cv fr);
        -1
  | I.P_jmp ix ->
      fun fr ->
        tick t;
        fr.prev <- bi;
        ix
  | I.P_br (c, th, el) ->
      let cc = cval t c in
      fun fr ->
        tick t;
        fr.prev <- bi;
        if cc fr <> 0L then th else el
  | I.P_switch (v, cases, default) ->
      let cv = cval t v in
      let n = Array.length cases in
      fun fr ->
        tick t;
        fr.prev <- bi;
        let x = cv fr in
        let rec go k =
          if k >= n then default
          else
            let c, ix = cases.(k) in
            if Int64.equal c x then ix else go (k + 1)
        in
        go 0
  | I.P_unreachable ->
      fun fr ->
        tick t;
        fr.prev <- bi;
        I.vm_err "reached 'unreachable' in @%s" fname

(* Fused compare+branch: the icmp result is still written (later blocks
   may read it through phis), and both halves keep their own bookkeeping
   so the counters and the limit-trap position are unchanged. *)
let fuse_icmp_br t bi (ic : Instr.t) op x y th el : frame -> int =
  let w = I.width_of_value x in
  let cx = cval t x and cy = cval t y in
  let iid = ic.Instr.id in
  fun fr ->
    tick t;
    let a = cx fr in
    let b = cy fr in
    let c = Constfold.eval_icmp op w a b in
    fr.regs.(iid) <- (if c then 1L else 0L);
    tick t;
    fr.prev <- bi;
    if c then th else el

let cphis t (labels : string array) (pb : I.pblock) : cop option =
  let phis = pb.I.pb_phis in
  let n = Array.length phis in
  if n = 0 then None
  else
    let dests = Array.map fst phis in
    let comp =
      Array.map
        (fun (_, incoming) -> Array.map (Option.map (cval t)) incoming)
        phis
    in
    let label = pb.I.pb_label in
    Some
      (fun fr ->
        for k = 0 to n - 1 do
          let inc = comp.(k) in
          match (if fr.prev >= 0 then inc.(fr.prev) else None) with
          | Some cv -> fr.scratch.(k) <- cv fr
          | None ->
              I.vm_err "phi in %%%s has no incoming for %%%s" label
                (if fr.prev >= 0 then labels.(fr.prev) else "")
        done;
        for k = 0 to n - 1 do
          fr.regs.(dests.(k)) <- fr.scratch.(k)
        done;
        t.I.nsteps <- t.I.nsteps + n;
        t.I.ncycles <- t.I.ncycles + n)

let cblock t fname (labels : string array) bi (pb : I.pblock) : cblock =
  let body = pb.I.pb_body in
  let nbody = Array.length body in
  (* Fused compare+branch consumes the last body instruction when it
     produces exactly the branch condition. *)
  let term_fused, body_end =
    match pb.I.pb_term with
    | I.P_br (Value.Reg (cid, _, _), th, el) when nbody > 0 -> (
        match body.(nbody - 1) with
        | I.P_base ({ Instr.kind = Instr.Icmp (op, x, y); _ } as ic)
          when ic.Instr.id = cid -> (
            match fuse_icmp_br t bi ic op x y th el with
            | f -> (Some f, nbody - 1)
            | exception _ -> (None, nbody))
        | _ -> (None, nbody))
    | _ -> (None, nbody)
  in
  let ops = ref [] in
  let k = ref 0 in
  while !k < body_end do
    let fused =
      if !k + 1 < body_end then
        match body.(!k) with
        | I.P_base ({ Instr.kind = Instr.Gep (base, idxs); _ } as g) -> (
            try fuse_gep_access t g base idxs body.(!k + 1) with _ -> None)
        | I.P_intr (ci, I.I_pchk_lscheck, vargs, cn, cm) -> (
            try fuse_check_access t ci vargs cn cm body.(!k + 1)
            with _ -> None)
        | _ -> None
      else None
    in
    (match fused with
    | Some op ->
        ops := op :: !ops;
        k := !k + 2
    | None ->
        ops := cinsn t fname body.(!k) :: !ops;
        incr k)
  done;
  {
    cb_phis = cphis t labels pb;
    cb_body = Array.of_list (List.rev !ops);
    cb_term =
      (match term_fused with
      | Some f -> f
      | None -> cterm t fname bi pb.I.pb_term);
  }

(* ---------- trace superblocks ----------

   Per-block fused chains already kill the interpreter's per-instruction
   dispatch; superblocks kill the per-BLOCK dispatch on hot paths.  At
   translation time we pick trace heads (the entry block plus every
   back-edge target, i.e. loop headers) and grow each into a linear
   trace of likely successors — by the dynamic edge profile the
   interpreter recorded while the function was still cold
   ([pf_edges]), falling back to a static heuristic (prefer back
   edges, then the first-listed target) when no profile exists, as in
   AOT mode.  At run time a trace executes its blocks back-to-back,
   looping in place when control returns to the head; any other
   successor is a side exit back to the generic dispatch loop.

   Crucially a superblock reuses the SAME compiled phi/body/term
   closures a standalone block uses — only the dispatch between blocks
   changes — so cycles, steps, checks, traps and results are
   bit-identical with superblocks on or off. *)

let max_trace_len = 16

let static_succs (term : I.pterm) =
  match term with
  | I.P_ret _ | I.P_unreachable -> []
  | I.P_jmp ix -> [ ix ]
  | I.P_br (_, th, el) -> [ th; el ]
  | I.P_switch (_, cases, default) ->
      Array.to_list (Array.map snd cases) @ [ default ]

(* Linear trace of block indices starting at [head]; [ixs.(0) = head]. *)
type strace = { st_blocks : int array }

let form_traces (pf : I.prepared_func) : strace option array =
  let blocks = pf.I.pf_blocks in
  let nblocks = Array.length blocks in
  let succs bi = static_succs blocks.(bi).I.pb_term in
  let edge_count bi s =
    match pf.I.pf_edges with
    | None -> 0
    | Some tbl -> (
        match Hashtbl.find_opt tbl ((bi * nblocks) + s) with
        | Some r -> !r
        | None -> 0)
  in
  let preferred bi =
    match succs bi with
    | [] -> None
    | [ s ] -> Some s
    | s0 :: _ as ss ->
        let scored = List.map (fun s -> (s, edge_count bi s)) ss in
        let maxc = List.fold_left (fun a (_, c) -> max a c) 0 scored in
        if maxc > 0 then
          (* hottest edge; ties resolve to the first-listed target *)
          Some (fst (List.find (fun (_, c) -> c = maxc) scored))
        else begin
          (* no profile: prefer a back edge (loop continuation), then
             the first-listed (then-) target *)
          match List.find_opt (fun (s, _) -> s <= bi) scored with
          | Some (s, _) -> Some s
          | None -> Some s0
        end
  in
  let is_head = Array.make nblocks false in
  if nblocks > 0 then is_head.(0) <- true;
  for bi = 0 to nblocks - 1 do
    List.iter (fun s -> if s <= bi then is_head.(s) <- true) (succs bi)
  done;
  let grow head =
    let in_trace = Array.make nblocks false in
    in_trace.(head) <- true;
    let rec go acc last len =
      if len >= max_trace_len then List.rev acc
      else
        match preferred last with
        | None -> List.rev acc
        | Some s when in_trace.(s) -> List.rev acc
        | Some s ->
            in_trace.(s) <- true;
            go (s :: acc) s (len + 1)
    in
    go [ head ] head 1
  in
  Array.init nblocks (fun bi ->
      if not is_head.(bi) then None
      else
        match grow bi with
        | _ :: _ :: _ as ixs -> Some { st_blocks = Array.of_list ixs }
        | _ -> None)

(* ---------- function compilation ---------- *)

let build (t : I.t) (pf : I.prepared_func) : int64 list -> int64 option =
  let f = pf.I.pf in
  let fname = f.Func.f_name in
  let nregs = max 1 f.Func.f_next_reg in
  let nscratch = max 1 pf.I.pf_max_phis in
  let labels = Array.map (fun b -> b.I.pb_label) pf.I.pf_blocks in
  let blocks = Array.mapi (cblock t fname labels) pf.I.pf_blocks in
  let traces = form_traces pf in
  Stats.add_superblocks
    (Array.fold_left
       (fun acc tr -> match tr with Some _ -> acc + 1 | None -> acc)
       0 traces);
  let run_block (cb : cblock) fr =
    (match cb.cb_phis with Some p -> p fr | None -> ());
    let body = cb.cb_body in
    for k = 0 to Array.length body - 1 do
      body.(k) fr
    done;
    cb.cb_term fr
  in
  (* Execute a trace from its head: stay on the trace while control
     follows it (or re-enters the head — a loop), side-exit with the
     actual successor otherwise.  Returns the next block index, -1 for
     return. *)
  let run_trace (tr : strace) fr =
    let ixs = tr.st_blocks in
    let n = Array.length ixs in
    let k = ref 0 in
    let out = ref min_int in
    while !out = min_int do
      let nxt = run_block blocks.(ixs.(!k)) fr in
      if nxt < 0 then out := -1
      else begin
        let k' = !k + 1 in
        if k' < n && nxt = ixs.(k') then k := k'
        else if nxt = ixs.(0) then k := 0
        else out := nxt
      end
    done;
    !out
  in
  fun args ->
    let fr =
      {
        regs = Array.make nregs 0L;
        scratch = Array.make nscratch 0L;
        prev = -1;
        ret = None;
      }
    in
    List.iteri (fun i v -> if i < nregs then fr.regs.(i) <- v) args;
    let sp_save = t.I.sp in
    let cur = ref 0 in
    let running = ref true in
    while !running do
      let nxt =
        match traces.(!cur) with
        | Some tr -> run_trace tr fr
        | None -> run_block blocks.(!cur) fr
      in
      if nxt < 0 then running := false else cur := nxt
    done;
    (* Restored only on normal return, like the interpreter: a trap
       unwinds through [I.call], which resets the stack allocator. *)
    t.I.sp <- sp_save;
    fr.ret

(* ---------- the signed translation cache ---------- *)

let cache : (string, Signing.fentry) Hashtbl.t = Hashtbl.create 64

let native_artifact ~bytecode = Sha256.hex ("svm-closcomp-v1:" ^ bytecode)
let key_of_func f = Sha256.hex (Codec.encode_func f)

(* Translation-time bytecode re-verification: the function must decode
   from its bytecode and round-trip bit-exactly.  This is the work a
   valid signed cache entry lets the SVM skip. *)
let reverify fname bytecode =
  let ok =
    match Codec.decode_func bytecode with
    | f2 -> String.equal (Codec.encode_func f2) bytecode
    | exception Codec.Decode_error _ -> false
  in
  if not ok then
    I.vm_err "translation: bytecode re-verification failed for @%s" fname

let clear_cache () = Hashtbl.reset cache
let cache_size () = Hashtbl.length cache
let cached_entry key = Hashtbl.find_opt cache key

let tamper_cached key f =
  match Hashtbl.find_opt cache key with
  | None -> false
  | Some e ->
      Hashtbl.replace cache key (f e);
      true

let translate (t : I.t) (pf : I.prepared_func) : int64 list -> int64 option =
  Stats.bump_promotion ();
  let fname = pf.I.pf.Func.f_name in
  (* Tier events are the one deliberate divergence between the two
     engines' traces: the interpreter never promotes.  The event-identity
     tests filter them out before comparing streams. *)
  if !Sva_rt.Trace.active then Sva_rt.Trace.emit_tier_promote fname;
  let bytecode = Codec.encode_func pf.I.pf in
  let key = Sha256.hex bytecode in
  let native = native_artifact ~bytecode in
  (* Section 3.4: a miss (or a cached translation whose signature does
     not verify) re-translates from re-verified bytecode, re-signs the
     result, and persists it for the next process. *)
  let fresh ~disk_stale =
    Stats.bump_tcache_miss ();
    if !Sva_rt.Trace.active then Sva_rt.Trace.emit_tcache_miss fname;
    if disk_stale then begin
      Stats.bump_tcache_disk_stale ();
      if !Sva_rt.Trace.active then Sva_rt.Trace.emit_tcache_disk_stale fname
    end;
    reverify fname bytecode;
    let e = Signing.sign_function ~name:fname ~bytecode ~native in
    Hashtbl.replace cache key e;
    if Tcache_disk.store e then begin
      Stats.bump_tcache_disk_write ();
      if !Sva_rt.Trace.active then Sva_rt.Trace.emit_tcache_disk_write fname
    end
  in
  (* In-memory miss: probe the persistent store.  A decodable on-disk
     entry gets the same signature verification an in-memory one does;
     anything structurally broken, tampered or stale falls back to a
     fresh translation (which overwrites the bad file). *)
  let from_disk () =
    match Tcache_disk.probe ~key with
    | Tcache_disk.Absent -> fresh ~disk_stale:false
    | Tcache_disk.Corrupt _ -> fresh ~disk_stale:true
    | Tcache_disk.Entry e -> (
        Stats.bump_sig_verification ();
        match Signing.verify_function e ~bytecode ~native with
        | () ->
            Stats.bump_tcache_hit ();
            Stats.bump_tcache_disk_hit ();
            if !Sva_rt.Trace.active then
              Sva_rt.Trace.emit_tcache_disk_hit fname;
            Hashtbl.replace cache key e
        | exception Signing.Tampered _ -> fresh ~disk_stale:true)
  in
  (match Hashtbl.find_opt cache key with
  | Some e -> (
      Stats.bump_sig_verification ();
      match Signing.verify_function e ~bytecode ~native with
      | () ->
          Stats.bump_tcache_hit ();
          if !Sva_rt.Trace.active then Sva_rt.Trace.emit_tcache_hit fname
      | exception Signing.Tampered _ -> from_disk ())
  | None -> from_disk ());
  build t pf

let enable ?(threshold = 16) (t : I.t) =
  I.set_jit t
    (Some { I.jit_threshold = max 1 threshold; I.jit_translate = translate })

let disable (t : I.t) = I.set_jit t None

(* Whole-kernel ahead-of-time mode: translate every loaded function at
   instantiate time (deterministic name order), so the first call of
   every function already runs compiled and a populated persistent store
   makes a second process boot hot.  Translation is host work — modeled
   cycles, steps and check counters are untouched, so AOT output is
   bit-identical to the other engines'. *)
let compile_all (t : I.t) =
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.I.funcs [] in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.I.funcs name with
      | Some pf -> (
          match pf.I.pf_entry with
          | Some _ -> ()
          | None -> pf.I.pf_entry <- Some (translate t pf))
      | None -> ())
    (List.sort String.compare names)
