(* Persistent signed translation cache (Section 3.4).

   A directory of signed [Signing.fentry] records, one file per entry,
   content-addressed by the entry's bytecode hash: <dir>/<fe_hash>.fent.
   The store is plumbing, not policy — it hands back whatever bytes are
   on disk, and [Closcomp.translate] re-runs the full signature
   verification before reusing anything, so the directory (like the disk
   cache in the paper) sits entirely outside the TCB.  A corrupted,
   truncated or stale file costs a re-translation, never safety.

   Writes go through a temp file + rename so a concurrent reader never
   observes a half-written entry. *)

module Signing = Sva_bytecode.Signing
module Codec = Sva_bytecode.Codec

(* The active store directory; [None] disables persistence entirely
   (the default — only --tcache-dir / eng_tcache_dir turns it on). *)
let dir : string option ref = ref None

let set_dir d =
  (match d with
  | Some path when not (Sys.file_exists path) ->
      (try Sys.mkdir path 0o755 with Sys_error _ -> ())
  | _ -> ());
  dir := d

let active () = !dir <> None

let path_of ~key d = Filename.concat d (key ^ ".fent")

type probe = Absent | Corrupt of string | Entry of Signing.fentry

let probe ~key =
  match !dir with
  | None -> Absent
  | Some d ->
      let path = path_of ~key d in
      if not (Sys.file_exists path) then Absent
      else begin
        match In_channel.with_open_bin path In_channel.input_all with
        | exception Sys_error msg -> Corrupt msg
        | data -> (
            match Signing.decode_fentry data with
            | e -> Entry e
            | exception Codec.Decode_error msg -> Corrupt msg)
      end

(* Unique temp-file suffix per writer: pid + in-process counter.  A
   fixed [path ^ ".tmp"] let two concurrent writers of the same function
   interleave their writes and then rename a torn file — silently, since
   signature verification on read would just call the entry stale.  With
   a per-writer name each writer renames only bytes it wrote alone, and
   the rename itself is atomic, preserving the module's concurrent-reader
   claim. *)
let tmp_seq = ref 0

let tmp_name path =
  incr tmp_seq;
  Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ()) !tmp_seq

(* Persist a (just-signed) entry.  Returns whether the write happened;
   I/O failures are swallowed — the store is an accelerator, losing a
   write only means the next process re-translates. *)
let store (e : Signing.fentry) =
  match !dir with
  | None -> false
  | Some d -> (
      let path = path_of ~key:e.Signing.fe_hash d in
      let tmp = tmp_name path in
      match
        Out_channel.with_open_bin tmp (fun oc ->
            Out_channel.output_string oc (Signing.encode_fentry e));
        Sys.rename tmp path
      with
      | () -> true
      | exception Sys_error _ ->
          (try Sys.remove tmp with Sys_error _ -> ());
          false)
