(** The SVM's second execution tier: a closure compiler with a signed
    translation cache (Section 3.4).

    Hot functions (profiled by {!Interp.enter} against the installed
    threshold) are compiled into trees of OCaml closures — per-block
    fused chains with specialized operand fetches, resolved branch
    targets, and superinstruction fusion for compare+branch,
    gep+load/store and check+access pairs.  Each translation is recorded
    as a signed cache entry keyed by the SHA-256 of the function's
    bytecode; reuse re-verifies the signature and a tampered entry falls
    back to re-translation from re-verified bytecode.

    The tier is semantically invisible: results, traps, check statistics
    and the modeled cycle counts are bit-identical to the interpreter's.
    Only host wall-clock time improves. *)

open Sva_ir

val enable : ?threshold:int -> Interp.t -> unit
(** Install the tier on a VM: functions entered at least [threshold]
    times (default 16, clamped to at least 1) are translated and run
    compiled from then on. *)

val disable : Interp.t -> unit

val compile_all : Interp.t -> unit
(** Whole-kernel AOT: translate every loaded function now (in
    deterministic name order), through the same signed cache — against a
    populated {!Tcache_disk} store this is all verified disk hits and
    zero re-translations.  Host work only; execution stays bit-identical
    to the other engines. *)

val build : Interp.t -> Interp.prepared_func -> int64 list -> int64 option
(** Compile a prepared function to its closure-tree entry point,
    bypassing the translation cache (exposed for tests).  Block dispatch
    uses trace superblocks: linear multi-block traces grown from loop
    headers along profiled (or statically likely) edges, with side exits
    back to generic dispatch — semantics and counters unchanged. *)

val translate :
  Interp.t -> Interp.prepared_func -> int64 list -> int64 option
(** The installed [jit_translate]: consult the signed in-memory
    translation cache, then the persistent {!Tcache_disk} store
    (verifying the entry's signature in either case); re-verify,
    re-sign and persist on a miss or a tampered/stale entry, then
    compile.  Bumps the {!Sva_rt.Stats} tier counters. *)

(** {1 Translation cache introspection (tests and demos)} *)

val key_of_func : Func.t -> string
(** The cache key: SHA-256 hex of the function's bytecode. *)

val cache_size : unit -> int
val clear_cache : unit -> unit

val cached_entry : string -> Sva_bytecode.Signing.fentry option
(** Look up the signed entry recorded under a cache key. *)

val tamper_cached :
  string -> (Sva_bytecode.Signing.fentry -> Sva_bytecode.Signing.fentry) -> bool
(** Corrupt the cached entry under a key in place (e.g. with
    {!Sva_bytecode.Signing.tamper_fentry_signature}); returns [false]
    when the key is absent. *)
