(** Alias of {!Sva_analysis.Dataflow} — the generic worklist dataflow
    solver originally lived here and moved down a layer so the
    value-range analysis ({!Sva_analysis.Interval}) can share it.  The
    checkers and existing clients keep referring to [Dataflow]
    unqualified; see the aliased module for documentation. *)
include module type of Sva_analysis.Dataflow
