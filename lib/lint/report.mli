(** Lint findings: the machine-readable result type of the sanitizer
    passes, with a deterministic order and a stable text rendering (the
    [@lint] regression gate diffs against the seeded-fixture set). *)

type severity = Error | Warning

type finding = {
  f_checker : string;  (** checker slug, e.g. ["user-taint"] *)
  f_func : string;  (** function containing the defect *)
  f_instr : int option;  (** offending instruction id, when one exists *)
  f_message : string;
  f_severity : severity;
}

val finding :
  ?severity:severity ->
  checker:string ->
  func:string ->
  ?instr:int ->
  string ->
  finding

val compare_finding : finding -> finding -> int
(** Order: checker, function, instruction id, message. *)

val sort : finding list -> finding list
(** Sort and de-duplicate. *)

val to_string : finding -> string
(** One line: ["checker: error: @func[#i]: message"]. *)

val render : finding list -> string
(** All findings, one per line, in {!sort} order. *)

val count_by_checker : checkers:string list -> finding list -> (string * int) list
(** Findings per checker, in the given checker order (zero rows kept). *)
