(* The worklist solver moved to [Sva_analysis.Dataflow] so the value-range
   analysis (which sva_lint depends on transitively) can reuse it; this
   alias keeps the historical [Sva_lint.Dataflow] path working for the
   checkers and the test suite. *)
include Sva_analysis.Dataflow
