(** The sanitizer passes: four static checkers built on {!Dataflow}.

    Three produce {!Report.finding}s — user-pointer taint, definite
    null/uninitialized dereference (the static side of guarantee T4),
    and interrupt-context allocation safety.  The fourth is a prover:
    it emits per-instruction proofs that a load/store cannot fault,
    which {!Sva_safety.Checkinsert} consumes to elide the corresponding
    run-time checks (Section 7.1.3). *)

open Sva_ir
open Sva_analysis

type config = {
  lc_trusted : string list;
      (** functions allowed to dereference user pointers
          (copy_from_user/copy_to_user style); their bodies are skipped
          and taint does not propagate into them *)
  lc_sleeping : string list;
      (** allocators that may sleep, forbidden in interrupt context *)
  lc_interrupt_register : string;
      (** SVA-OS operation registering interrupt handlers *)
  lc_free_functions : string list;
      (** deallocation functions (kfree, ...): passing a global-derived
          pointer to one disqualifies that global from safety proofs *)
}

val default_config : config

type ctx
(** Shared checker state: the module, points-to results, call graph and
    a per-function CFG cache. *)

val make_ctx : ?config:config -> Irmod.t -> Pointsto.result -> ctx

val iterations : ctx -> int
(** Total dataflow block visits performed so far, over all checkers. *)

val user_taint : ctx -> Report.finding list
(** Dereferences of pointers derived from syscall-handler arguments
    outside the trusted user-copy functions.  Interprocedural: a call
    passing a tainted value taints the callee's parameter. *)

val null_deref : ctx -> Report.finding list
(** Loads/stores through provably-null or uninitialized pointers.
    Branch-sensitive ([p == 0] refines the facts on each edge) and
    deliberately definite-only: a clean kernel reports nothing. *)

val irq_sleep : ctx -> Report.finding list
(** Calls to sleeping allocators in functions reachable from registered
    interrupt handlers. *)

type proof = { pr_func : string; pr_instr : int }

val safe_access :
  ?ranges:(fname:string -> Instr.t -> bool) -> ctx -> proof list
(** Loads/stores provably inside a known-size, known-live object:
    non-escaping constant-size allocas and (module-wide never-freed)
    globals, through statically-in-bounds geps.  [ranges] widens the
    in-bounds test to variable-index geps the interval analysis
    certified in extent ({!Sva_analysis.Interval}); each [true] answer
    is expected to be backed by a certificate the trusted checker
    re-verifies. *)
