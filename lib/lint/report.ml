type severity = Error | Warning

type finding = {
  f_checker : string;
  f_func : string;
  f_instr : int option;
  f_message : string;
  f_severity : severity;
}

let finding ?(severity = Error) ~checker ~func ?instr message =
  {
    f_checker = checker;
    f_func = func;
    f_instr = instr;
    f_message = message;
    f_severity = severity;
  }

let compare_finding a b =
  let c = compare a.f_checker b.f_checker in
  if c <> 0 then c
  else
    let c = compare a.f_func b.f_func in
    if c <> 0 then c
    else
      let c = compare a.f_instr b.f_instr in
      if c <> 0 then c else compare a.f_message b.f_message

let sort findings = List.sort_uniq compare_finding findings

let to_string f =
  Printf.sprintf "%s: %s: @%s%s: %s" f.f_checker
    (match f.f_severity with Error -> "error" | Warning -> "warning")
    f.f_func
    (match f.f_instr with Some i -> Printf.sprintf "[#%d]" i | None -> "")
    f.f_message

let render findings =
  String.concat "" (List.map (fun f -> to_string f ^ "\n") (sort findings))

let count_by_checker ~checkers findings =
  List.map
    (fun c ->
      (c, List.length (List.filter (fun f -> f.f_checker = c) findings)))
    checkers
