open Sva_ir
open Sva_analysis

type config = Checkers.config = {
  lc_trusted : string list;
  lc_sleeping : string list;
  lc_interrupt_register : string;
  lc_free_functions : string list;
}

let default_config = Checkers.default_config

let config_of_aconfig ?(extra_trusted = []) (ac : Pointsto.config) =
  {
    default_config with
    lc_trusted =
      List.sort_uniq compare (ac.Pointsto.user_copy_functions @ extra_trusted);
    lc_free_functions =
      List.filter_map
        (fun (a : Allocdecl.t) -> a.Allocdecl.a_free)
        ac.Pointsto.allocators;
  }

let checkers = [ "user-taint"; "null-deref"; "irq-sleep" ]

type result = {
  lr_findings : Report.finding list;  (** sorted, deduplicated *)
  lr_counts : (string * int) list;
  lr_proofs : (string * int, unit) Hashtbl.t;
  lr_proof_count : int;
  lr_range_geps : int;
  lr_funcs : int;
  lr_iterations : int;
}

let run ?(config = default_config) ?(ranges = fun ~fname:_ _ -> false) m pa =
  let ctx = Checkers.make_ctx ~config m pa in
  let findings =
    Report.sort
      (Checkers.user_taint ctx @ Checkers.null_deref ctx
     @ Checkers.irq_sleep ctx)
  in
  (* count distinct geps the range oracle vouched for (the prover may
     consult it several times per instruction across solver sweeps) *)
  let range_used = Hashtbl.create 16 in
  let ranges ~fname (i : Sva_ir.Instr.t) =
    let ok = ranges ~fname i in
    if ok then Hashtbl.replace range_used (fname, i.Sva_ir.Instr.id) ();
    ok
  in
  let proofs = Checkers.safe_access ~ranges ctx in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (p : Checkers.proof) ->
      Hashtbl.replace tbl (p.Checkers.pr_func, p.Checkers.pr_instr) ())
    proofs;
  {
    lr_findings = findings;
    lr_counts = Report.count_by_checker ~checkers findings;
    lr_proofs = tbl;
    lr_proof_count = Hashtbl.length tbl;
    lr_range_geps = Hashtbl.length range_used;
    lr_funcs =
      List.length
        (List.filter
           (fun (f : Func.t) -> not (Func.has_attr f Func.Noanalyze))
           m.Irmod.m_funcs);
    lr_iterations = Checkers.iterations ctx;
  }

let proved_safe r ~fname id = Hashtbl.mem r.lr_proofs (fname, id)
let render r = Report.render r.lr_findings
