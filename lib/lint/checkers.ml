open Sva_ir
open Sva_analysis

module IS = Set.Make (Int)
module IM = Map.Make (Int)
module SS = Set.Make (String)

type config = {
  lc_trusted : string list;
  lc_sleeping : string list;
  lc_interrupt_register : string;
  lc_free_functions : string list;
}

let default_config =
  {
    lc_trusted = [ "copy_from_user"; "copy_to_user" ];
    lc_sleeping = [ "kmalloc"; "vmalloc"; "kmem_cache_alloc" ];
    lc_interrupt_register = "sva_register_interrupt";
    lc_free_functions = [];
  }

type ctx = {
  m : Irmod.t;
  pa : Pointsto.result;
  cg : Callgraph.t;
  config : config;
  cfgs : (string, Cfg.t) Hashtbl.t;
  mutable iterations : int;  (** total solver block visits, all checkers *)
}

let make_ctx ?(config = default_config) m pa =
  {
    m;
    pa;
    cg = Callgraph.build m pa;
    config;
    cfgs = Hashtbl.create 64;
    iterations = 0;
  }

let iterations ctx = ctx.iterations

let cfg_of ctx (f : Func.t) =
  match Hashtbl.find_opt ctx.cfgs f.Func.f_name with
  | Some c -> c
  | None ->
      let c = Cfg.build f in
      Hashtbl.replace ctx.cfgs f.Func.f_name c;
      c

(* Functions whose bodies the checkers may inspect. *)
let analyzed ctx =
  List.filter
    (fun (f : Func.t) ->
      (not (Func.has_attr f Func.Noanalyze)) && f.Func.f_blocks <> [])
    ctx.m.Irmod.m_funcs

let find_analyzed ctx fn =
  match Irmod.find_func ctx.m fn with
  | Some f when (not (Func.has_attr f Func.Noanalyze)) && f.Func.f_blocks <> []
    ->
      Some f
  | Some _ | None -> None

(* Possible callees of one call instruction: the direct name, or the
   points-to target set for indirect calls. *)
let call_targets ctx ~fname (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Call (Value.Fn (n, _), _) -> [ n ]
  | Instr.Call (_, _) -> Pointsto.callsite_targets ctx.pa ~fname i.Instr.id
  | _ -> []

(* Replay a block's instructions from its solved entry fact, calling
   [visit] with the fact holding {e before} each instruction.  With the
   default [visit] this is exactly a block transfer function. *)
let replay step ?visit (b : Func.block) fact =
  List.fold_left
    (fun fact (i : Instr.t) ->
      (match visit with Some v -> v fact i | None -> ());
      step fact i)
    fact b.Func.insns

(* ------------------------------------------------------------------ *)
(* Checker 1: user-pointer taint (Section 4.8's syscall boundary).     *)
(*                                                                     *)
(* Syscall handler arguments are user-controlled.  A value computed    *)
(* from one (casts, arithmetic, gep base) stays tainted; dereferencing *)
(* a tainted pointer anywhere except a trusted user-copy function is   *)
(* a kernel-memory-disclosure/corruption primitive.  Taint does not    *)
(* flow through memory (a load result is kernel data) nor through gep  *)
(* indices (indexing a kernel table with a user integer is bounds-     *)
(* checked separately).                                                *)
(* ------------------------------------------------------------------ *)

module TaintL = struct
  type t = IS.t

  let bottom = IS.empty
  let equal = IS.equal
  let join = IS.union
end

module TaintSolver = Dataflow.Make (TaintL)

let tainted_value taint = function
  | Value.Reg (id, _, _) -> IS.mem id taint
  | Value.Imm _ | Value.Fimm _ | Value.Null _ | Value.Undef _ | Value.Global _
  | Value.Fn _ ->
      false

let taint_step taint (i : Instr.t) =
  let tainted =
    match i.Instr.kind with
    | Instr.Binop (_, a, b) ->
        tainted_value taint a || tainted_value taint b
    | Instr.Cast (_, v, _) -> tainted_value taint v
    | Instr.Gep (base, _) -> tainted_value taint base
    | Instr.Phi incoming ->
        List.exists (fun (_, v) -> tainted_value taint v) incoming
    | Instr.Select (_, a, b) ->
        tainted_value taint a || tainted_value taint b
    | Instr.Icmp _ | Instr.Alloca _ | Instr.Load _ | Instr.Store _
    | Instr.Call _ | Instr.Malloc _ | Instr.Free _ | Instr.Atomic_cas _
    | Instr.Atomic_add _ | Instr.Membar | Instr.Intrinsic _ ->
        false
  in
  if tainted then IS.add i.Instr.id taint else taint

let solve_taint ctx (f : Func.t) ~entry =
  let r = TaintSolver.solve ~entry ~transfer:(replay taint_step) f (cfg_of ctx f) in
  ctx.iterations <- ctx.iterations + r.TaintSolver.iterations;
  r

let user_taint ctx =
  let trusted fn = List.mem fn ctx.config.lc_trusted in
  let handlers =
    SS.of_list (List.map snd (Pointsto.syscall_table ctx.pa))
  in
  let funcs = List.map (fun (f : Func.t) -> f.Func.f_name) (analyzed ctx) in
  let param_seeds (f : Func.t) =
    IS.of_list (List.init (List.length f.Func.f_params) Fun.id)
  in
  let init fn =
    if SS.mem fn handlers then
      match find_analyzed ctx fn with
      | Some f -> param_seeds f
      | None -> IS.empty
    else IS.empty
  in
  (* Fixpoint over per-function summaries: the set of parameters that may
     carry user-controlled values.  A call with a tainted argument taints
     the corresponding parameter of every possible callee. *)
  let summaries =
    Dataflow.Summaries.solve ctx.cg ~funcs ~init ~equal:IS.equal
      ~transfer:(fun ~get ~update fn ->
        if trusted fn then ()
        else
          match find_analyzed ctx fn with
          | None -> ()
          | Some f ->
              let r = solve_taint ctx f ~entry:(get fn) in
              List.iter
                (fun (b : Func.block) ->
                  ignore
                    (replay taint_step
                       ~visit:(fun fact (i : Instr.t) ->
                         match i.Instr.kind with
                         | Instr.Call (_, args) ->
                             List.iteri
                               (fun k a ->
                                 if tainted_value fact a then
                                   List.iter
                                     (fun tgt ->
                                       if not (trusted tgt) then
                                         update tgt
                                           (IS.add k (get tgt)))
                                     (call_targets ctx ~fname:fn i))
                               args
                         | _ -> ())
                       b
                       (r.TaintSolver.input b.Func.label)))
                f.Func.f_blocks)
  in
  (* Reporting pass under the final summaries. *)
  let findings = ref [] in
  List.iter
    (fun (f : Func.t) ->
      let fn = f.Func.f_name in
      if not (trusted fn) then begin
        let seeds = IS.inter (Dataflow.Summaries.get summaries fn)
            (param_seeds f)
        in
        if not (IS.is_empty seeds) then begin
          let r = solve_taint ctx f ~entry:seeds in
          List.iter
            (fun (b : Func.block) ->
              ignore
                (replay taint_step
                   ~visit:(fun fact (i : Instr.t) ->
                     let deref p what =
                       if tainted_value fact p then
                         findings :=
                           Report.finding ~checker:"user-taint" ~func:fn
                             ~instr:i.Instr.id
                             (Printf.sprintf
                                "%s through user-controlled pointer \
                                 (reaches a syscall argument; only %s may \
                                 dereference user pointers)"
                                what
                                (String.concat "/" ctx.config.lc_trusted))
                           :: !findings
                     in
                     match i.Instr.kind with
                     | Instr.Load p -> deref p "load"
                     | Instr.Store (_, p) -> deref p "store"
                     | Instr.Atomic_cas (p, _, _) | Instr.Atomic_add (p, _) ->
                         deref p "atomic update"
                     | _ -> ())
                   b
                   (r.TaintSolver.input b.Func.label)))
            f.Func.f_blocks
        end
      end)
    (analyzed ctx);
  !findings

(* ------------------------------------------------------------------ *)
(* Checker 2: definite null / uninitialized dereference — the static   *)
(* side of guarantee T4.  Only provably-null (or provably-uninit)      *)
(* pointers are reported, so a clean kernel produces no findings; the  *)
(* run-time lscheck still covers the "maybe" cases.  Conditional       *)
(* branches refine facts per edge: on the true edge of [p == 0] the    *)
(* pointer is null, on the false edge non-null.                        *)
(* ------------------------------------------------------------------ *)

type nullness = NBot | NNull | NUndef | NNonnull | NTop

let null_join a b =
  if a = b then a
  else
    match (a, b) with
    | NBot, x | x, NBot -> x
    | NNull, NUndef | NUndef, NNull -> NNull
    | _ -> NTop

module NullL = struct
  type t = nullness IM.t

  let bottom = IM.empty
  let equal = IM.equal ( = )
  let join = IM.union (fun _ a b -> Some (null_join a b))
end

module NullSolver = Dataflow.Make (NullL)

let null_of fact = function
  | Value.Null _ -> NNull
  | Value.Undef _ -> NUndef
  | Value.Imm (_, 0L) -> NNull
  | Value.Imm _ | Value.Fimm _ | Value.Global _ | Value.Fn _ -> NNonnull
  | Value.Reg (id, _, _) -> (
      match IM.find_opt id fact with Some v -> v | None -> NBot)

let null_step fact (i : Instr.t) =
  let set v = IM.add i.Instr.id v fact in
  match i.Instr.kind with
  | Instr.Alloca _ | Instr.Malloc _ -> set NNonnull
  | Instr.Gep (base, _) -> set (null_of fact base)
  | Instr.Cast (_, v, _) -> set (null_of fact v)
  | Instr.Select (_, a, b) -> set (null_join (null_of fact a) (null_of fact b))
  | Instr.Phi incoming ->
      set
        (List.fold_left
           (fun acc (_, v) -> null_join acc (null_of fact v))
           NBot incoming)
  | _ -> ( match Instr.result i with Some _ -> set NTop | None -> fact)

(* Resolve a branch condition to "register [p] compared against null":
   returns [(p, true)] when the condition is true iff p is null.  Peels
   integer widenings and pointer-to-integer casts, so both [if (p)] and
   [if (p == 0)] lowerings are recognized. *)
let null_test defs cond =
  let def_of = function
    | Value.Reg (id, _, _) -> Hashtbl.find_opt defs id
    | _ -> None
  in
  let rec strip v =
    match def_of v with
    | Some { Instr.kind = Instr.Cast ((Instr.Ptrtoint | Instr.Bitcast), v', _); _ }
      ->
        strip v'
    | _ -> v
  in
  let is_nullc = function
    | Value.Null _ | Value.Undef _ | Value.Imm (_, 0L) -> true
    | _ -> false
  in
  let rec go v pos =
    match def_of v with
    | Some { Instr.kind = Instr.Icmp (op, a, b); _ } when op = Instr.Eq || op = Instr.Ne
      -> (
        let pick x y =
          if is_nullc y then
            match strip x with
            | Value.Reg (id, ty, _) when (match ty with Ty.Ptr _ -> true | _ -> false)
              ->
                Some id
            | _ -> None
          else None
        in
        let p = match pick a b with Some p -> Some p | None -> pick b a in
        match p with
        | Some id -> Some (id, if op = Instr.Eq then pos else not pos)
        | None -> (
            (* [icmp ne b, 0] tests the truth of boolean [b] (the
               lowering of [if (...)] re-compares the zext'd i1);
               [icmp eq b, 0] tests its negation. *)
            match (a, b) with
            | (x, Value.Imm (_, 0L)) | (Value.Imm (_, 0L), x) ->
                go x (if op = Instr.Ne then pos else not pos)
            | _ -> None))
    | Some { Instr.kind = Instr.Cast ((Instr.Zext | Instr.Sext | Instr.Trunc), v', _); _ }
      ->
        go v' pos
    | _ -> None
  in
  go cond true

let null_deref ctx =
  let findings = ref [] in
  List.iter
    (fun (f : Func.t) ->
      let fn = f.Func.f_name in
      let cfg = cfg_of ctx f in
      let defs = Hashtbl.create 32 in
      Func.iter_instrs f (fun _ i -> Hashtbl.replace defs i.Instr.id i);
      let edge ~src ~dst fact =
        match (Func.find_block f src).Func.term with
        | Instr.Br (cond, tl, el) when tl <> el -> (
            match null_test defs cond with
            | Some (p, true_means_null) ->
                let on_true = dst = tl in
                let v =
                  if on_true = true_means_null then NNull else NNonnull
                in
                IM.add p v fact
            | None -> fact)
        | _ -> fact
      in
      let r = NullSolver.solve ~edge ~transfer:(replay null_step) f cfg in
      ctx.iterations <- ctx.iterations + r.NullSolver.iterations;
      List.iter
        (fun (b : Func.block) ->
          if Cfg.is_reachable cfg b.Func.label then
            ignore
              (replay null_step
                 ~visit:(fun fact (i : Instr.t) ->
                   let deref p what =
                     match null_of fact p with
                     | NNull ->
                         findings :=
                           Report.finding ~checker:"null-deref" ~func:fn
                             ~instr:i.Instr.id
                             (Printf.sprintf
                                "%s through provably-null pointer" what)
                           :: !findings
                     | NUndef ->
                         findings :=
                           Report.finding ~checker:"null-deref" ~func:fn
                             ~instr:i.Instr.id
                             (Printf.sprintf
                                "%s through uninitialized pointer" what)
                           :: !findings
                     | NBot | NNonnull | NTop -> ()
                   in
                   match i.Instr.kind with
                   | Instr.Load p -> deref p "load"
                   | Instr.Store (_, p) -> deref p "store"
                   | Instr.Atomic_cas (p, _, _) | Instr.Atomic_add (p, _) ->
                       deref p "atomic update"
                   | _ -> ())
                 b
                 (r.NullSolver.input b.Func.label)))
        f.Func.f_blocks)
    (analyzed ctx);
  !findings

(* ------------------------------------------------------------------ *)
(* Checker 3: interrupt-context safety.  Handlers registered through   *)
(* the SVA-OS interrupt-registration operation run with interrupts     *)
(* disabled; anything they (transitively) call must not invoke a       *)
(* sleeping allocator.                                                 *)
(* ------------------------------------------------------------------ *)

let interrupt_handlers ctx =
  let reg = ctx.config.lc_interrupt_register in
  let handlers = ref SS.empty in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun _ (i : Instr.t) ->
          let scan name args =
            if name = reg then
              List.iter
                (function
                  | Value.Fn (h, _) -> handlers := SS.add h !handlers
                  | _ -> ())
                args
          in
          match i.Instr.kind with
          | Instr.Call (Value.Fn (n, _), args) -> scan n args
          | Instr.Intrinsic (n, args) -> scan n args
          | _ -> ()))
    (analyzed ctx);
  SS.elements !handlers

let irq_sleep ctx =
  let handlers = interrupt_handlers ctx in
  (* First (alphabetical) handler from which each function is reachable,
     for a deterministic and explainable report. *)
  let via = Hashtbl.create 32 in
  List.iter
    (fun h ->
      List.iter
        (fun fn -> if not (Hashtbl.mem via fn) then Hashtbl.replace via fn h)
        (Callgraph.reachable_from ctx.cg [ h ]))
    handlers;
  let findings = ref [] in
  List.iter
    (fun (f : Func.t) ->
      match Hashtbl.find_opt via f.Func.f_name with
      | None -> ()
      | Some h ->
          Func.iter_instrs f (fun _ (i : Instr.t) ->
              match i.Instr.kind with
              | Instr.Call (Value.Fn (callee, _), _)
                when List.mem callee ctx.config.lc_sleeping ->
                  findings :=
                    Report.finding ~checker:"irq-sleep" ~func:f.Func.f_name
                      ~instr:i.Instr.id
                      (Printf.sprintf
                         "call to sleeping allocator %s in interrupt \
                          context (reachable from handler %s)"
                         callee h)
                    :: !findings
              | _ -> ()))
    (analyzed ctx);
  !findings

(* ------------------------------------------------------------------ *)
(* Checker 4: static safe-access proofs.  A load/store whose pointer   *)
(* provably stays inside a known-size, known-live object needs no      *)
(* run-time lscheck (Section 7.1.3's static elision).  Proof sources:  *)
(*                                                                     *)
(*  - constant-size allocas none of whose derived pointers escape the  *)
(*    function (not stored as a value, returned, passed to a call, or  *)
(*    freed) — such an object is live for the whole frame;             *)
(*  - globals, provided nothing in the module frees a global-derived   *)
(*    pointer or stores one to memory (globals are registered at boot  *)
(*    and then live forever).                                          *)
(*                                                                     *)
(* Geps preserve safety only when [Sva_safety.Checkinsert.static_safe] proves the *)
(* constant indexing in bounds of the base's static type.              *)
(* ------------------------------------------------------------------ *)

type safety = SBot | Safe of int  (** valid bytes at the pointer *) | SUnsafe

let safety_join a b =
  match (a, b) with
  | SBot, x | x, SBot -> x
  | Safe n, Safe m -> Safe (min n m)
  | SUnsafe, _ | _, SUnsafe -> SUnsafe

module SafeL = struct
  type t = safety IM.t

  let bottom = IM.empty
  let equal = IM.equal ( = )
  let join = IM.union (fun _ a b -> Some (safety_join a b))
end

module SafeSolver = Dataflow.Make (SafeL)

type proof = { pr_func : string; pr_instr : int }

let sizeof_opt tctx ty =
  match Ty.sizeof tctx ty with n -> Some n | exception Invalid_argument _ -> None

(* Flow-insensitive per-function map: register -> the allocas (by id) and
   globals (by name) its value may be derived from via gep/cast/phi/select
   chains. *)
let derivations (f : Func.t) =
  let tbl : (int, IS.t * SS.t) Hashtbl.t = Hashtbl.create 32 in
  let get id =
    match Hashtbl.find_opt tbl id with
    | Some p -> p
    | None -> (IS.empty, SS.empty)
  in
  let of_value = function
    | Value.Reg (id, _, _) -> get id
    | Value.Global (g, _) -> (IS.empty, SS.singleton g)
    | _ -> (IS.empty, SS.empty)
  in
  let union (a1, g1) (a2, g2) = (IS.union a1 a2, SS.union g1 g2) in
  let changed = ref true in
  while !changed do
    changed := false;
    Func.iter_instrs f (fun _ (i : Instr.t) ->
        let next =
          match i.Instr.kind with
          | Instr.Alloca _ -> Some (IS.singleton i.Instr.id, SS.empty)
          | Instr.Gep (base, _) -> Some (of_value base)
          | Instr.Cast (_, v, _) -> Some (of_value v)
          | Instr.Select (_, a, b) -> Some (union (of_value a) (of_value b))
          | Instr.Phi incoming ->
              Some
                (List.fold_left
                   (fun acc (_, v) -> union acc (of_value v))
                   (IS.empty, SS.empty) incoming)
          | _ -> None
        in
        match next with
        | Some ((a, g) as p) ->
            let a0, g0 = get i.Instr.id in
            if not (IS.equal a a0 && SS.equal g g0) then begin
              Hashtbl.replace tbl i.Instr.id p;
              changed := true
            end
        | None -> ());
  done;
  of_value

(* Globals whose whole-module liveness assumption holds: no instruction
   anywhere frees a global-derived pointer, passes one to a free
   function, or stores one to memory (from where unseen code could free
   it).  Returns the set of *disqualified* globals. *)
let unsafe_globals ctx =
  let bad = ref SS.empty in
  List.iter
    (fun (f : Func.t) ->
      let derived = derivations f in
      let globals_of v = snd (derived v) in
      let disqualify v = bad := SS.union (globals_of v) !bad in
      Func.iter_instrs f (fun _ (i : Instr.t) ->
          match i.Instr.kind with
          | Instr.Free p -> disqualify p
          | Instr.Store (v, _) -> disqualify v
          | Instr.Call (Value.Fn (callee, _), args)
            when List.mem callee ctx.config.lc_free_functions ->
              List.iter disqualify args
          | _ -> ()))
    (analyzed ctx);
  !bad

let safe_access ?(ranges = fun ~fname:_ _ -> false) ctx =
  let tctx = ctx.m.Irmod.m_ctx in
  let bad_globals = unsafe_globals ctx in
  let proofs = ref [] in
  List.iter
    (fun (f : Func.t) ->
      let fn = f.Func.f_name in
      let derived = derivations f in
      (* Allocas whose frame-lifetime argument holds: constant size, and
         no derived pointer is stored as a value, returned, passed to any
         call or intrinsic, or freed. *)
      let alloca_size = Hashtbl.create 8 in
      Func.iter_instrs f (fun _ (i : Instr.t) ->
          match i.Instr.kind with
          | Instr.Alloca (ty, Value.Imm (_, n)) when Int64.compare n 0L > 0 -> (
              match sizeof_opt tctx ty with
              | Some sz ->
                  Hashtbl.replace alloca_size i.Instr.id (Int64.to_int n * sz)
              | None -> ())
          | _ -> ());
      let escaped = ref IS.empty in
      let escape v = escaped := IS.union (fst (derived v)) !escaped in
      Func.iter_instrs f (fun _ (i : Instr.t) ->
          match i.Instr.kind with
          | Instr.Store (v, _) -> escape v
          | Instr.Free p -> escape p
          | Instr.Call (_, _) | Instr.Intrinsic (_, _) ->
              List.iter escape (Instr.operands i.Instr.kind)
          | _ -> ());
      List.iter
        (fun (b : Func.block) ->
          match b.Func.term with
          | Instr.Ret (Some v) -> escape v
          | _ -> ())
        f.Func.f_blocks;
      let eligible_alloca id =
        Hashtbl.mem alloca_size id && not (IS.mem id !escaped)
      in
      let safe_of fact = function
        | Value.Global (g, ty) when not (SS.mem g bad_globals) -> (
            match sizeof_opt tctx ty with Some n -> Safe n | None -> SUnsafe)
        | Value.Reg (id, _, _) -> (
            match IM.find_opt id fact with Some s -> s | None -> SUnsafe)
        | _ -> SUnsafe
      in
      let step fact (i : Instr.t) =
        let set s = IM.add i.Instr.id s fact in
        match i.Instr.kind with
        | Instr.Alloca _ when eligible_alloca i.Instr.id -> (
            match Hashtbl.find_opt alloca_size i.Instr.id with
            | Some sz -> set (Safe sz)
            | None -> set SUnsafe)
        | Instr.Gep (base, idxs) -> (
            match (safe_of fact base, Value.ty base) with
            | Safe n, Ty.Ptr pointee
              when (match sizeof_opt tctx pointee with
                   | Some psz -> n >= psz
                   | None -> false)
                   && (Sva_safety.Checkinsert.static_safe tctx base idxs
                      (* variable indexing certified in extent by the
                         interval analysis (certificate re-verified by
                         the trusted checker) *)
                      || ranges ~fname:fn i) ->
                set (Safe (Sva_safety.Checkinsert.gep_access_len tctx i))
            | _ -> set SUnsafe)
        | Instr.Cast (_, v, _) -> set (safe_of fact v)
        | Instr.Select (_, a, b) ->
            set (safety_join (safe_of fact a) (safe_of fact b))
        | Instr.Phi incoming ->
            set
              (List.fold_left
                 (fun acc (_, v) -> safety_join acc (safe_of fact v))
                 SBot incoming)
        | Instr.Free _ -> IM.map (fun _ -> SUnsafe) fact
        | _ -> ( match Instr.result i with Some _ -> set SUnsafe | None -> fact)
      in
      let r = SafeSolver.solve ~transfer:(replay step) f (cfg_of ctx f) in
      ctx.iterations <- ctx.iterations + r.SafeSolver.iterations;
      let scalar ty =
        match sizeof_opt tctx ty with Some n -> n | None -> max_int
      in
      List.iter
        (fun (b : Func.block) ->
          ignore
            (replay step
               ~visit:(fun fact (i : Instr.t) ->
                 let prove p len =
                   match safe_of fact p with
                   | Safe n when n >= len && len < max_int ->
                       proofs :=
                         { pr_func = fn; pr_instr = i.Instr.id } :: !proofs
                   | _ -> ()
                 in
                 match i.Instr.kind with
                 | Instr.Load p -> prove p (scalar i.Instr.ty)
                 | Instr.Store (v, p) -> prove p (scalar (Value.ty v))
                 | _ -> ())
               b
               (r.SafeSolver.input b.Func.label)))
        f.Func.f_blocks)
    (analyzed ctx);
  !proofs
