(** The static lint layer: runs every checker of {!Checkers} over an
    analyzed module and packages the findings, per-checker counts and
    safe-access proofs for the pipeline, the [sva_lint] CLI and the
    benchmark harness.

    Determinism: findings are sorted and de-duplicated ({!Report.sort})
    and the underlying solvers visit blocks in reverse postorder, so two
    runs over the same module render identically. *)

open Sva_ir
open Sva_analysis

type config = Checkers.config = {
  lc_trusted : string list;
  lc_sleeping : string list;
  lc_interrupt_register : string;
  lc_free_functions : string list;
}

val default_config : config

val config_of_aconfig :
  ?extra_trusted:string list -> Pointsto.config -> config
(** Derive a lint configuration from the points-to porting configuration:
    the kernel's user-copy functions become the trusted deref list (plus
    [extra_trusted]) and its allocator declarations supply the free
    functions. *)

val checkers : string list
(** Slugs of the finding-producing checkers, in report order. *)

type result = {
  lr_findings : Report.finding list;  (** sorted, deduplicated *)
  lr_counts : (string * int) list;  (** findings per checker *)
  lr_proofs : (string * int, unit) Hashtbl.t;
      (** (function, instruction) accesses proved safe *)
  lr_proof_count : int;
  lr_range_geps : int;
      (** distinct geps whose in-bounds step of a proof came from the
          interval analysis's [ranges] oracle *)
  lr_funcs : int;  (** analyzed functions *)
  lr_iterations : int;  (** total dataflow block visits *)
}

val run :
  ?config:config ->
  ?ranges:(fname:string -> Instr.t -> bool) ->
  Irmod.t ->
  Pointsto.result ->
  result
(** Lint a module.  [pa] must be the points-to result computed over
    [m] in its current form (the pipeline runs lint right after the
    points-to stage, before instrumentation).  [ranges] is forwarded to
    the safe-access prover ({!Checkers.safe_access}): it widens proofs
    to variable-index geps certified in extent by
    {!Sva_analysis.Interval}, and every elision it enables is backed by
    a certificate the trusted checker re-verifies. *)

val proved_safe : result -> fname:string -> int -> bool
(** Did the safe-access prover cover instruction [id] of [fname]?
    {!Sva_safety.Checkinsert} queries this to elide the run-time check. *)

val render : result -> string
(** All findings, one per line, deterministic order. *)
