open Sva_ir

type entry = {
  ce_module_name : string;
  ce_bytecode : string;
  ce_native : string;
  ce_signature : string;
}

exception Tampered of string

let svm_key = ref "sva-secure-virtual-machine-key"

let translate (m : Irmod.t) =
  (* The interpreter is the translator; its deterministic input is the
     bytecode, so the cacheable translation artifact is a fingerprint over
     the bytecode plus the translation scheme version. *)
  Sha256.hex ("svm-translate-v1:" ^ Codec.encode m)

let payload name bytecode native =
  Printf.sprintf "%d:%s|%d:%s|%d:%s" (String.length name) name
    (String.length bytecode) bytecode (String.length native) native

let sign m =
  let bytecode = Codec.encode m in
  let native = translate m in
  let name = m.Irmod.m_name in
  {
    ce_module_name = name;
    ce_bytecode = bytecode;
    ce_native = native;
    ce_signature = Sha256.hmac ~key:!svm_key (payload name bytecode native);
  }

let verify e =
  let expect =
    Sha256.hmac ~key:!svm_key (payload e.ce_module_name e.ce_bytecode e.ce_native)
  in
  if not (String.equal expect e.ce_signature) then
    raise (Tampered ("signature mismatch for module " ^ e.ce_module_name));
  let m =
    try Codec.decode e.ce_bytecode
    with Codec.Decode_error msg -> raise (Tampered ("undecodable bytecode: " ^ msg))
  in
  (* The cached native artifact must match a fresh translation. *)
  if not (String.equal (translate m) e.ce_native) then
    raise (Tampered ("stale native translation for module " ^ e.ce_module_name));
  m

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  Bytes.to_string b

let tamper_bytecode e =
  { e with ce_bytecode = flip_byte e.ce_bytecode (String.length e.ce_bytecode / 2) }

let tamper_native e =
  { e with ce_native = flip_byte e.ce_native (String.length e.ce_native / 2) }

(* ---------- per-function translation-cache entries ----------

   The tiered execution engine caches translations of single hot
   functions, keyed by the SHA-256 of the function's bytecode.  Each
   entry is signed exactly like a module entry: the SVM re-verifies the
   signature before reusing a cached translation, and a tampered entry is
   discarded in favour of a fresh (re-verified, re-signed) translation. *)

type fentry = {
  fe_name : string;  (* function name; diagnostic only *)
  fe_hash : string;  (* sha256 hex of fe_bytecode: the cache key *)
  fe_bytecode : string;
  fe_native : string;
  fe_signature : string;
}

(* Domain-separated from module entries so a function cannot masquerade
   as a module (or vice versa) under the same key. *)
let fpayload name bytecode native = payload ("func:" ^ name) bytecode native

let sign_function ~name ~bytecode ~native =
  {
    fe_name = name;
    fe_hash = Sha256.hex bytecode;
    fe_bytecode = bytecode;
    fe_native = native;
    fe_signature = Sha256.hmac ~key:!svm_key (fpayload name bytecode native);
  }

let verify_function e ~bytecode ~native =
  let expect =
    Sha256.hmac ~key:!svm_key (fpayload e.fe_name e.fe_bytecode e.fe_native)
  in
  if not (String.equal expect e.fe_signature) then
    raise (Tampered ("signature mismatch for function " ^ e.fe_name));
  if not (String.equal e.fe_bytecode bytecode) then
    raise (Tampered ("cached bytecode differs for function " ^ e.fe_name));
  if not (String.equal e.fe_hash (Sha256.hex bytecode)) then
    raise (Tampered ("cache key mismatch for function " ^ e.fe_name));
  if not (String.equal e.fe_native native) then
    raise (Tampered ("stale native translation for function " ^ e.fe_name))

let tamper_fentry_signature e =
  { e with fe_signature = flip_byte e.fe_signature (String.length e.fe_signature / 2) }

let tamper_fentry_native e =
  { e with fe_native = flip_byte e.fe_native (String.length e.fe_native / 2) }

let tamper_fentry_bytecode e =
  { e with fe_bytecode = flip_byte e.fe_bytecode (String.length e.fe_bytecode / 2) }

(* ---------- on-disk fentry serialization ----------

   The persistent translation cache stores one signed [fentry] per file,
   content-addressed by [fe_hash].  The format is deliberately dumb —
   magic, then five length-prefixed fields — because nothing in it is
   trusted: a decoded entry still has to pass [verify_function] before
   the SVM reuses the translation, so a corrupted file can at worst cost
   a re-translation, never safety. *)

let fentry_magic = "SVAFENT1"

let encode_fentry e =
  let buf = Buffer.create (256 + String.length e.fe_bytecode) in
  Buffer.add_string buf fentry_magic;
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "%08x" (String.length s));
      Buffer.add_string buf s)
    [ e.fe_name; e.fe_hash; e.fe_bytecode; e.fe_native; e.fe_signature ];
  Buffer.contents buf

let decode_fentry data =
  let err msg = raise (Codec.Decode_error ("fentry: " ^ msg)) in
  let mlen = String.length fentry_magic in
  if String.length data < mlen || String.sub data 0 mlen <> fentry_magic then
    err "bad magic";
  let pos = ref mlen in
  let field what =
    if !pos + 8 > String.length data then err ("truncated length of " ^ what);
    let n =
      match int_of_string ("0x" ^ String.sub data !pos 8) with
      | n when n >= 0 -> n
      | _ -> err ("negative length of " ^ what)
      | exception _ -> err ("malformed length of " ^ what)
    in
    pos := !pos + 8;
    if !pos + n > String.length data then err ("truncated " ^ what);
    let s = String.sub data !pos n in
    pos := !pos + n;
    s
  in
  let fe_name = field "name" in
  let fe_hash = field "hash" in
  let fe_bytecode = field "bytecode" in
  let fe_native = field "native" in
  let fe_signature = field "signature" in
  if !pos <> String.length data then err "trailing bytes";
  { fe_name; fe_hash; fe_bytecode; fe_native; fe_signature }
