(** Signed translation cache (Sections 2 and 3.4).

    "When translation is done offline, the translated native code is
    cached on disk together with the bytecode, and the pair is digitally
    signed together to ensure integrity and safety of the native code."
    A cache entry here pairs the bytecode with the "native translation"
    (in this implementation, the translator's deterministic image digest),
    signed with the SVM's key.  Loading verifies the signature and the
    bytecode hash before the module may execute. *)

open Sva_ir

type entry = {
  ce_module_name : string;
  ce_bytecode : string;  (** serialized module *)
  ce_native : string;  (** cached translation artifact *)
  ce_signature : string;  (** HMAC-SHA256 over name, bytecode and native *)
}

exception Tampered of string

val svm_key : string ref
(** The SVM signing key (a deployment would keep this sealed). *)

val translate : Irmod.t -> string
(** The deterministic "native code" artifact for a module.  The
    interpreter executes bytecode directly, so the artifact is the
    translation fingerprint the SVM caches and re-checks. *)

val sign : Irmod.t -> entry
(** Encode, translate and sign a module. *)

val verify : entry -> Irmod.t
(** Check the signature and decode the bytecode.
    @raise Tampered if the signature, bytecode or native artifact was
    modified. *)

val tamper_bytecode : entry -> entry
(** Flip a byte in the bytecode (for tests and demos). *)

val tamper_native : entry -> entry

(** {1 Per-function translation-cache entries}

    The tiered execution engine ({!Sva_interp.Closcomp}) caches the
    translation of each hot function, keyed by the SHA-256 of the
    function's bytecode and signed with the SVM key.  Reuse re-verifies
    the signature (Section 3.4); a tampered entry is discarded and the
    function re-translated from (re-verified) bytecode. *)

type fentry = {
  fe_name : string;  (** function name (diagnostic) *)
  fe_hash : string;  (** SHA-256 hex of [fe_bytecode] — the cache key *)
  fe_bytecode : string;  (** the function's serialized bytecode *)
  fe_native : string;  (** deterministic translation artifact *)
  fe_signature : string;  (** HMAC-SHA256 over name, bytecode and native *)
}

val sign_function : name:string -> bytecode:string -> native:string -> fentry

val verify_function : fentry -> bytecode:string -> native:string -> unit
(** Check an entry against the function about to be executed: the
    signature must verify under the SVM key and the cached bytecode,
    key and native artifact must match the presented ones.
    @raise Tampered otherwise. *)

val tamper_fentry_signature : fentry -> fentry
val tamper_fentry_native : fentry -> fentry
val tamper_fentry_bytecode : fentry -> fentry
(** Byte-flipping helpers for tests and demos. *)

(** {1 On-disk serialization}

    Wire format for the persistent translation cache
    ({!Sva_interp.Tcache_disk}): a magic string followed by the five
    fields, each length-prefixed.  Decoding performs only structural
    checks — a decoded entry is untrusted until it passes
    {!verify_function}, so the store sits outside the TCB. *)

val encode_fentry : fentry -> string

val decode_fentry : string -> fentry
(** @raise Codec.Decode_error on bad magic, truncation, malformed
    length fields or trailing bytes. *)
