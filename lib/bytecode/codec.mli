(** The on-disk SVA bytecode format.

    SVA inherits LLVM's property that the compiler IR {e is} the external
    object-code representation (Section 3.1): this codec serializes a
    whole module — struct definitions, globals, externs, functions with
    attributes, blocks and instructions — and restores it bit-exactly.
    The bytecode verifier and the translator both start from these bytes;
    signatures ({!Signing}) cover them. *)

open Sva_ir

exception Decode_error of string

val magic : string
(** Leading bytes of every encoded module — callers sniff these to tell
    bytecode from source text. *)

val encode : Irmod.t -> string
(** Serialize a module (deterministic: equal modules produce equal
    bytes). *)

val decode : string -> Irmod.t
(** Reconstruct a module.  @raise Decode_error on malformed input. *)

val roundtrip_equal : Irmod.t -> bool
(** [encode] then [decode] then [encode] again and compare — the codec's
    self-test. *)

val encode_func : Func.t -> string
(** Serialize one function independently of its module (deterministic) —
    the unit the translation cache hashes and signs. *)

val decode_func : string -> Func.t
(** Reconstruct a function.  @raise Decode_error on malformed input. *)

val func_roundtrip_equal : Func.t -> bool
(** Per-function codec self-test, used as the translation-time bytecode
    re-verification that a valid cache entry may skip. *)
