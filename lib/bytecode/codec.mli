(** The on-disk SVA bytecode format.

    SVA inherits LLVM's property that the compiler IR {e is} the external
    object-code representation (Section 3.1): this codec serializes a
    whole module — struct definitions, globals, externs, functions with
    attributes, blocks and instructions — and restores it bit-exactly.
    The bytecode verifier and the translator both start from these bytes;
    signatures ({!Signing}) cover them. *)

open Sva_ir

exception Decode_error of string

val magic : string
(** Leading bytes of every encoded module — callers sniff these to tell
    bytecode from source text. *)

val encode : Irmod.t -> string
(** Serialize a module (deterministic: equal modules produce equal
    bytes). *)

val decode : string -> Irmod.t
(** Reconstruct a module.  @raise Decode_error on malformed input. *)

val roundtrip_equal : Irmod.t -> bool
(** [encode] then [decode] then [encode] again and compare — the codec's
    self-test. *)
