open Sva_ir

exception Decode_error of string

let magic = "SVABC01\n"

(* ---------- writer ---------- *)


let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let w_u32 b n =
  w_u8 b n;
  w_u8 b (n lsr 8);
  w_u8 b (n lsr 16);
  w_u8 b (n lsr 24)

let w_i64 b (n : int64) =
  for i = 0 to 7 do
    w_u8 b (Int64.to_int (Int64.shift_right_logical n (8 * i)) land 0xff)
  done

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_list b f items =
  w_u32 b (List.length items);
  List.iter (f b) items

let w_bool b v = w_u8 b (if v then 1 else 0)

let rec w_ty b (t : Ty.t) =
  match t with
  | Ty.Void -> w_u8 b 0
  | Ty.Int w ->
      w_u8 b 1;
      w_u8 b w
  | Ty.Float -> w_u8 b 2
  | Ty.Ptr p ->
      w_u8 b 3;
      w_ty b p
  | Ty.Array (e, n) ->
      w_u8 b 4;
      w_ty b e;
      w_u32 b n
  | Ty.Struct s ->
      w_u8 b 5;
      w_str b s
  | Ty.Func (r, ps, va) ->
      w_u8 b 6;
      w_ty b r;
      w_list b w_ty ps;
      w_bool b va

let w_value b (v : Value.t) =
  match v with
  | Value.Imm (t, n) ->
      w_u8 b 0;
      w_ty b t;
      w_i64 b n
  | Value.Fimm f ->
      w_u8 b 1;
      w_i64 b (Int64.bits_of_float f)
  | Value.Null t ->
      w_u8 b 2;
      w_ty b t
  | Value.Undef t ->
      w_u8 b 3;
      w_ty b t
  | Value.Global (g, t) ->
      w_u8 b 4;
      w_str b g;
      w_ty b t
  | Value.Fn (f, t) ->
      w_u8 b 5;
      w_str b f;
      w_ty b t
  | Value.Reg (id, t, nm) ->
      w_u8 b 6;
      w_u32 b id;
      w_ty b t;
      w_str b nm

let binop_code : Instr.binop -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Sdiv -> 3 | Udiv -> 4 | Srem -> 5
  | Urem -> 6 | And -> 7 | Or -> 8 | Xor -> 9 | Shl -> 10 | Lshr -> 11
  | Ashr -> 12 | Fadd -> 13 | Fsub -> 14 | Fmul -> 15 | Fdiv -> 16

let binop_of_code = function
  | 0 -> Instr.Add | 1 -> Instr.Sub | 2 -> Instr.Mul | 3 -> Instr.Sdiv
  | 4 -> Instr.Udiv | 5 -> Instr.Srem | 6 -> Instr.Urem | 7 -> Instr.And
  | 8 -> Instr.Or | 9 -> Instr.Xor | 10 -> Instr.Shl | 11 -> Instr.Lshr
  | 12 -> Instr.Ashr | 13 -> Instr.Fadd | 14 -> Instr.Fsub | 15 -> Instr.Fmul
  | 16 -> Instr.Fdiv
  | c -> raise (Decode_error (Printf.sprintf "bad binop code %d" c))

let icmp_code : Instr.icmp -> int = function
  | Eq -> 0 | Ne -> 1 | Slt -> 2 | Sle -> 3 | Sgt -> 4 | Sge -> 5
  | Ult -> 6 | Ule -> 7 | Ugt -> 8 | Uge -> 9

let icmp_of_code = function
  | 0 -> Instr.Eq | 1 -> Instr.Ne | 2 -> Instr.Slt | 3 -> Instr.Sle
  | 4 -> Instr.Sgt | 5 -> Instr.Sge | 6 -> Instr.Ult | 7 -> Instr.Ule
  | 8 -> Instr.Ugt | 9 -> Instr.Uge
  | c -> raise (Decode_error (Printf.sprintf "bad icmp code %d" c))

let cast_code : Instr.cast -> int = function
  | Bitcast -> 0 | Inttoptr -> 1 | Ptrtoint -> 2 | Trunc -> 3 | Zext -> 4
  | Sext -> 5 | Fptosi -> 6 | Sitofp -> 7

let cast_of_code = function
  | 0 -> Instr.Bitcast | 1 -> Instr.Inttoptr | 2 -> Instr.Ptrtoint
  | 3 -> Instr.Trunc | 4 -> Instr.Zext | 5 -> Instr.Sext | 6 -> Instr.Fptosi
  | 7 -> Instr.Sitofp
  | c -> raise (Decode_error (Printf.sprintf "bad cast code %d" c))

let w_kind b (k : Instr.kind) =
  match k with
  | Instr.Binop (op, x, y) ->
      w_u8 b 0;
      w_u8 b (binop_code op);
      w_value b x;
      w_value b y
  | Instr.Icmp (op, x, y) ->
      w_u8 b 1;
      w_u8 b (icmp_code op);
      w_value b x;
      w_value b y
  | Instr.Alloca (t, n) ->
      w_u8 b 2;
      w_ty b t;
      w_value b n
  | Instr.Load p ->
      w_u8 b 3;
      w_value b p
  | Instr.Store (v, p) ->
      w_u8 b 4;
      w_value b v;
      w_value b p
  | Instr.Gep (base, idxs) ->
      w_u8 b 5;
      w_value b base;
      w_list b w_value idxs
  | Instr.Cast (op, v, t) ->
      w_u8 b 6;
      w_u8 b (cast_code op);
      w_value b v;
      w_ty b t
  | Instr.Select (c, x, y) ->
      w_u8 b 7;
      w_value b c;
      w_value b x;
      w_value b y
  | Instr.Call (f, args) ->
      w_u8 b 8;
      w_value b f;
      w_list b w_value args
  | Instr.Phi incoming ->
      w_u8 b 9;
      w_list b
        (fun b (l, v) ->
          w_str b l;
          w_value b v)
        incoming
  | Instr.Malloc (t, n) ->
      w_u8 b 10;
      w_ty b t;
      w_value b n
  | Instr.Free p ->
      w_u8 b 11;
      w_value b p
  | Instr.Atomic_cas (p, e, r) ->
      w_u8 b 12;
      w_value b p;
      w_value b e;
      w_value b r
  | Instr.Atomic_add (p, d) ->
      w_u8 b 13;
      w_value b p;
      w_value b d
  | Instr.Membar -> w_u8 b 14
  | Instr.Intrinsic (name, args) ->
      w_u8 b 15;
      w_str b name;
      w_list b w_value args

let w_term b (t : Instr.term) =
  match t with
  | Instr.Ret None -> w_u8 b 0
  | Instr.Ret (Some v) ->
      w_u8 b 1;
      w_value b v
  | Instr.Br (c, th, el) ->
      w_u8 b 2;
      w_value b c;
      w_str b th;
      w_str b el
  | Instr.Jmp l ->
      w_u8 b 3;
      w_str b l
  | Instr.Switch (v, cases, d) ->
      w_u8 b 4;
      w_value b v;
      w_list b
        (fun b (n, l) ->
          w_i64 b n;
          w_str b l)
        cases;
      w_str b d
  | Instr.Unreachable -> w_u8 b 5

let w_instr b (i : Instr.t) =
  w_u32 b i.Instr.id;
  w_str b i.Instr.nm;
  w_ty b i.Instr.ty;
  w_kind b i.Instr.kind

let attr_code : Func.attr -> int = function
  | Func.Noanalyze -> 0
  | Func.Callsig_assert -> 1
  | Func.Kernel_entry -> 2

let attr_of_code = function
  | 0 -> Func.Noanalyze
  | 1 -> Func.Callsig_assert
  | 2 -> Func.Kernel_entry
  | c -> raise (Decode_error (Printf.sprintf "bad attr code %d" c))

let w_func b (f : Func.t) =
  w_str b f.Func.f_name;
  w_ty b f.Func.f_ret;
  w_list b
    (fun b (n, t) ->
      w_str b n;
      w_ty b t)
    f.Func.f_params;
  w_bool b f.Func.f_varargs;
  w_u32 b f.Func.f_next_reg;
  w_list b (fun b a -> w_u8 b (attr_code a)) f.Func.f_attrs;
  w_list b
    (fun b (blk : Func.block) ->
      w_str b blk.Func.label;
      w_list b w_instr blk.Func.insns;
      w_term b blk.Func.term)
    f.Func.f_blocks

let w_ginit b (g : Irmod.ginit) =
  match g with
  | Irmod.Zero -> w_u8 b 0
  | Irmod.Str s ->
      w_u8 b 1;
      w_str b s
  | Irmod.Ints (t, ns) ->
      w_u8 b 2;
      w_ty b t;
      w_list b w_i64 ns
  | Irmod.Ptrs syms ->
      w_u8 b 3;
      w_list b w_str syms

let encode (m : Irmod.t) : string =
  let b = Buffer.create 65536 in
  Buffer.add_string b magic;
  w_str b m.Irmod.m_name;
  w_list b
    (fun b name ->
      let def = Ty.find_struct m.Irmod.m_ctx name in
      w_str b name;
      w_list b
        (fun b (fn, ft) ->
          w_str b fn;
          w_ty b ft)
        def.Ty.s_fields)
    (Ty.struct_names m.Irmod.m_ctx);
  w_list b
    (fun b (g : Irmod.global) ->
      w_str b g.Irmod.g_name;
      w_ty b g.Irmod.g_ty;
      w_ginit b g.Irmod.g_init;
      w_bool b g.Irmod.g_const)
    m.Irmod.m_globals;
  w_list b
    (fun b (n, t) ->
      w_str b n;
      w_ty b t)
    m.Irmod.m_externs;
  w_list b w_func m.Irmod.m_funcs;
  Buffer.contents b

(* ---------- reader ---------- *)

type reader = { src : string; mutable pos : int }

let fail_at r msg =
  raise (Decode_error (Printf.sprintf "%s at offset %d" msg r.pos))

let r_u8 r =
  if r.pos >= String.length r.src then fail_at r "truncated";
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_u32 r =
  let a = r_u8 r in
  let b = r_u8 r in
  let c = r_u8 r in
  let d = r_u8 r in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let r_i64 r =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (r_u8 r)) (8 * i))
  done;
  !v

let r_str r =
  let n = r_u32 r in
  if r.pos + n > String.length r.src then fail_at r "truncated string";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let r_list r f =
  let n = r_u32 r in
  List.init n (fun _ -> f r)

let r_bool r = r_u8 r <> 0

let rec r_ty r : Ty.t =
  match r_u8 r with
  | 0 -> Ty.Void
  | 1 -> Ty.Int (r_u8 r)
  | 2 -> Ty.Float
  | 3 -> Ty.Ptr (r_ty r)
  | 4 ->
      let e = r_ty r in
      let n = r_u32 r in
      Ty.Array (e, n)
  | 5 -> Ty.Struct (r_str r)
  | 6 ->
      let ret = r_ty r in
      let ps = r_list r r_ty in
      let va = r_bool r in
      Ty.Func (ret, ps, va)
  | c -> fail_at r (Printf.sprintf "bad type tag %d" c)

let r_value r : Value.t =
  match r_u8 r with
  | 0 ->
      let t = r_ty r in
      let n = r_i64 r in
      Value.Imm (t, n)
  | 1 -> Value.Fimm (Int64.float_of_bits (r_i64 r))
  | 2 -> Value.Null (r_ty r)
  | 3 -> Value.Undef (r_ty r)
  | 4 ->
      let g = r_str r in
      let t = r_ty r in
      Value.Global (g, t)
  | 5 ->
      let f = r_str r in
      let t = r_ty r in
      Value.Fn (f, t)
  | 6 ->
      let id = r_u32 r in
      let t = r_ty r in
      let nm = r_str r in
      Value.Reg (id, t, nm)
  | c -> fail_at r (Printf.sprintf "bad value tag %d" c)

let r_kind r : Instr.kind =
  match r_u8 r with
  | 0 ->
      let op = binop_of_code (r_u8 r) in
      let x = r_value r in
      let y = r_value r in
      Instr.Binop (op, x, y)
  | 1 ->
      let op = icmp_of_code (r_u8 r) in
      let x = r_value r in
      let y = r_value r in
      Instr.Icmp (op, x, y)
  | 2 ->
      let t = r_ty r in
      let n = r_value r in
      Instr.Alloca (t, n)
  | 3 -> Instr.Load (r_value r)
  | 4 ->
      let v = r_value r in
      let p = r_value r in
      Instr.Store (v, p)
  | 5 ->
      let base = r_value r in
      let idxs = r_list r r_value in
      Instr.Gep (base, idxs)
  | 6 ->
      let op = cast_of_code (r_u8 r) in
      let v = r_value r in
      let t = r_ty r in
      Instr.Cast (op, v, t)
  | 7 ->
      let c = r_value r in
      let x = r_value r in
      let y = r_value r in
      Instr.Select (c, x, y)
  | 8 ->
      let f = r_value r in
      let args = r_list r r_value in
      Instr.Call (f, args)
  | 9 ->
      Instr.Phi
        (r_list r (fun r ->
             let l = r_str r in
             let v = r_value r in
             (l, v)))
  | 10 ->
      let t = r_ty r in
      let n = r_value r in
      Instr.Malloc (t, n)
  | 11 -> Instr.Free (r_value r)
  | 12 ->
      let p = r_value r in
      let e = r_value r in
      let rr = r_value r in
      Instr.Atomic_cas (p, e, rr)
  | 13 ->
      let p = r_value r in
      let d = r_value r in
      Instr.Atomic_add (p, d)
  | 14 -> Instr.Membar
  | 15 ->
      let name = r_str r in
      let args = r_list r r_value in
      Instr.Intrinsic (name, args)
  | c -> fail_at r (Printf.sprintf "bad instruction tag %d" c)

let r_term r : Instr.term =
  match r_u8 r with
  | 0 -> Instr.Ret None
  | 1 -> Instr.Ret (Some (r_value r))
  | 2 ->
      let c = r_value r in
      let th = r_str r in
      let el = r_str r in
      Instr.Br (c, th, el)
  | 3 -> Instr.Jmp (r_str r)
  | 4 ->
      let v = r_value r in
      let cases =
        r_list r (fun r ->
            let n = r_i64 r in
            let l = r_str r in
            (n, l))
      in
      let d = r_str r in
      Instr.Switch (v, cases, d)
  | 5 -> Instr.Unreachable
  | c -> fail_at r (Printf.sprintf "bad terminator tag %d" c)

let r_instr r : Instr.t =
  let id = r_u32 r in
  let nm = r_str r in
  let ty = r_ty r in
  let kind = r_kind r in
  { Instr.id; nm; ty; kind }

let r_func r : Func.t =
  let name = r_str r in
  let ret = r_ty r in
  let params =
    r_list r (fun r ->
        let n = r_str r in
        let t = r_ty r in
        (n, t))
  in
  let varargs = r_bool r in
  let next_reg = r_u32 r in
  let attrs = r_list r (fun r -> attr_of_code (r_u8 r)) in
  let f = Func.create ~varargs ~attrs name ret params in
  f.Func.f_next_reg <- next_reg;
  let blocks =
    r_list r (fun r ->
        let label = r_str r in
        let insns = r_list r r_instr in
        let term = r_term r in
        { Func.label; insns; term })
  in
  f.Func.f_blocks <- blocks;
  f

let decode (s : string) : Irmod.t =
  let r = { src = s; pos = 0 } in
  if
    String.length s < String.length magic
    || String.sub s 0 (String.length magic) <> magic
  then raise (Decode_error "bad magic");
  r.pos <- String.length magic;
  let name = r_str r in
  let m = Irmod.create name in
  List.iter
    (fun (sname, fields) -> ignore (Ty.define_struct m.Irmod.m_ctx sname fields))
    (r_list r (fun r ->
         let sname = r_str r in
         let fields =
           r_list r (fun r ->
               let fn = r_str r in
               let ft = r_ty r in
               (fn, ft))
         in
         (sname, fields)));
  List.iter
    (fun g -> Irmod.add_global m g)
    (r_list r (fun r ->
         let g_name = r_str r in
         let g_ty = r_ty r in
         let g_init =
           match r_u8 r with
           | 0 -> Irmod.Zero
           | 1 -> Irmod.Str (r_str r)
           | 2 ->
               let t = r_ty r in
               let ns = r_list r r_i64 in
               Irmod.Ints (t, ns)
           | 3 -> Irmod.Ptrs (r_list r r_str)
           | c -> fail_at r (Printf.sprintf "bad ginit tag %d" c)
         in
         let g_const = r_bool r in
         { Irmod.g_name; g_ty; g_init; g_const }));
  List.iter
    (fun (n, t) -> Irmod.declare_extern m n t)
    (r_list r (fun r ->
         let n = r_str r in
         let t = r_ty r in
         (n, t)));
  List.iter (fun f -> Irmod.add_func m f) (r_list r r_func);
  if r.pos <> String.length s then fail_at r "trailing bytes";
  m

let roundtrip_equal m =
  let e1 = encode m in
  let e2 = encode (decode e1) in
  String.equal e1 e2

(* ---------- per-function bytecode ----------

   The translate-and-cache tier keys translations by the SHA-256 of a
   single function's bytecode, so functions must be serializable (and
   checkable) independently of their module. *)

let encode_func (f : Func.t) : string =
  let b = Buffer.create 1024 in
  w_func b f;
  Buffer.contents b

let decode_func (s : string) : Func.t =
  let r = { src = s; pos = 0 } in
  let f = r_func r in
  if r.pos <> String.length s then fail_at r "trailing bytes";
  f

let func_roundtrip_equal (f : Func.t) =
  let e1 = encode_func f in
  let e2 = encode_func (decode_func e1) in
  String.equal e1 e2
