(** The end-to-end SVA compilation pipeline.

    Models the four kernel configurations measured in Section 7.1:

    - {!conf.Native} — original kernel, GCC: no SVA-OS mediation, no
      checks, simple optimizer;
    - {!conf.Sva_gcc} — the SVA-ported kernel compiled with GCC: SVA-OS
      mediation, no checks, simple optimizer;
    - {!conf.Sva_llvm} — ported kernel through the LLVM-like pipeline;
    - {!conf.Sva_safe} — plus the safety-checking compiler: points-to
      analysis, metapool inference, run-time check insertion.

    The same MiniC sources build under every configuration; only the
    pass set and the SVA-OS execution mode differ. *)

open Sva_ir
open Sva_analysis
open Sva_safety

type conf = Native | Sva_gcc | Sva_llvm | Sva_safe

val conf_name : conf -> string
val all_confs : conf list

(** {1 Execution engine selection}

    The SVM runs bytecode on one of three engines (Section 3.4): the
    pre-decoded interpreter; the tiered engine that promotes hot
    functions to closure-compiled code cached in a signed translation
    cache ({!Sva_interp.Closcomp}); or whole-kernel AOT, which
    closure-compiles every function at instantiate time through the
    same cache, so a populated persistent store
    ({!Sva_interp.Tcache_disk}) lets a second process boot hot with
    zero re-translations.  The engines are semantically identical —
    same results, traps, check statistics and modeled cycles; only
    host wall-clock time differs. *)

type engine = Interp | Tiered | Aot

type engine_config = {
  eng_kind : engine;
  eng_threshold : int;  (** calls before a function is promoted *)
  eng_tcache_dir : string option;
      (** persistent signed translation store directory; [None] keeps
          the cache in-memory only *)
}

val default_jit_threshold : int
val default_engine : engine_config  (** [Interp] *)

val tiered_engine : engine_config
(** [Tiered] at {!default_jit_threshold}. *)

val aot_engine : engine_config
(** [Aot]: whole-kernel compile at instantiate, no warmup. *)

val engine_name : engine -> string
val engine_of_string : string -> engine option

val engine_flag : engine_config -> string -> engine_config option
(** Parse one [--engine=interp|tiered|aot], [--jit-threshold=N] or
    [--tcache-dir=DIR] argument into an updated config; [None] if the
    argument is none of these flags.
    @raise Invalid_argument on a malformed value.  Shared by the CLI
    binaries so the flags are spelled identically everywhere. *)

(** {1 Observability selection}

    The event trace and cycle-attribution profiler
    ({!Sva_rt.Trace}) are off by default and semantically invisible
    when enabled: results, verdicts, check counts and modeled cycles
    are unchanged (the differential tests assert this bit-exactly).
    These helpers give every binary the same flag spellings. *)

type obs_config = {
  obs_trace : int option;
      (** [Some capacity]: record events into a ring of that size *)
  obs_trace_out : string option;
      (** write the trace as Chrome trace-event JSON to this file *)
  obs_profile : bool;  (** attribute cycles/checks to functions+syscalls *)
}

val default_obs : obs_config
(** Everything off. *)

val obs_flag : obs_config -> string -> obs_config option
(** Parse one [--trace], [--trace=N], [--trace-out=FILE] or [--profile]
    argument into an updated config; [None] if the argument is none of
    these.  [--trace-out] implies tracing at the default capacity.
    @raise Invalid_argument on a malformed value. *)

val install_obs : obs_config -> unit
(** Apply the config to the global {!Sva_rt.Trace} state (enable the
    ring and/or the profiler).  Does not write any file — the caller
    exports after the workload runs. *)

(** {2 Simulated-SMP selection} *)

type smp_config = {
  smp_cpus : int;  (** modeled CPUs, 1..[Sva_hw.Machine.max_cpus] *)
  smp_seed : int;  (** deterministic scheduler-interleaving seed *)
}

val default_smp : smp_config
(** One CPU, seed 1 — bit-identical to the pre-SMP pipeline. *)

val smp_flag : smp_config -> string -> smp_config option
(** Parse one [--cpus=N] or [--smp-seed=S] argument into an updated
    config; [None] if the argument is neither.
    @raise Invalid_argument on a malformed or out-of-range value. *)

type built = {
  bl_name : string;
  bl_conf : conf;
  bl_mod : Irmod.t;
  bl_pa : Pointsto.result option;  (** present for [Sva_safe] *)
  bl_mps : Metapool.t option;
  bl_summary : Checkinsert.summary option;
  bl_aconfig : Pointsto.config;
  bl_annot : Sva_tyck.Tyck.annot option;
      (** the metapool type annotations, validated by the trusted checker
          before check insertion (Section 5) *)
  bl_cloned : int;  (** functions cloned (Section 4.8), when enabled *)
  bl_devirt : int;  (** indirect calls devirtualized (Section 4.8) *)
  bl_checkopt : Checkopt.summary option;
      (** results of the check optimizations of Section 7.1.3, when enabled *)
  bl_lint : Sva_lint.Lint.result option;
      (** static lint findings and safe-access proofs, when enabled *)
  bl_ranges : Interval.result option;
      (** the value-range analysis result, when [~ranges:true]; its
          certificate bundle has been verified by the trusted checker
          ([Sva_tyck.Rangecert]) against the instrumented module *)
  bl_races : Lockset.result option;
      (** the concurrency-safety analysis result, when [~races:true]; its
          atomicity certificate bundle has been verified by the trusted
          checker ([Sva_tyck.Atomcert]) against the instrumented module *)
  bl_poolcert : Poolev.bundle option;
      (** the pool-safety evidence bundle, when [~poolcert:true]; every
          membership fact, TH/completeness/devirt certificate and
          check-elision record in it has been verified by the trusted
          checker ([Sva_tyck.Poolcert]) against the instrumented module *)
}

val compile : ?pipeline:Passes.pipeline -> name:string -> string list -> Irmod.t
(** Compile MiniC sources and run the optimization pass pipeline
    (LLVM-like by default) — the shared front half of {!build}. *)

val is_bytecode : string -> bool
(** Does this data start with the SVA bytecode magic? *)

val load_source : name:string -> string -> Irmod.t
(** Load a module from raw bytes: SVA bytecode (recognized by its magic)
    is decoded, anything else is compiled as MiniC via {!compile}.
    @raise Sva_bytecode.Codec.Decode_error on corrupt bytecode
    @raise Minic.Parser.Parse_error / Minic.Lower.Lower_error on bad
    source *)

val load_file : string -> Irmod.t
(** {!load_source} on a file's contents, named after its basename. *)

val build :
  ?conf:conf ->
  ?aconfig:Pointsto.config ->
  ?options:Checkinsert.options ->
  ?typecheck:bool ->
  ?clone:bool ->
  ?devirt:bool ->
  ?checkopt:bool ->
  ?lint:bool ->
  ?lint_config:Sva_lint.Lint.config ->
  ?ranges:bool ->
  ?races:bool ->
  ?poolcert:bool ->
  name:string ->
  string list ->
  built
(** Compile MiniC sources under a configuration.  For [Sva_safe] the full
    safety pipeline runs: optional function cloning (Section 4.8),
    points-to analysis, metapool inference, metapool type annotation
    extraction + trusted type checking (unless [~typecheck:false]),
    optional devirtualization, the optional static lint stage (whose
    safe-access proofs elide provably-redundant load/store checks),
    run-time check insertion, the optional check optimizations of
    Section 7.1.3, and IR re-verification.  [lint_config] defaults to
    {!Sva_lint.Lint.config_of_aconfig} of [aconfig].

    [~ranges:true] additionally runs the value-range abstract
    interpretation ({!Sva_analysis.Interval}) on the analyzed module:
    the lint prover consults it to widen safe-access proofs to
    variable-index geps, check insertion elides [pchk_bounds] for
    certified geps, and after instrumentation the trusted checker
    re-verifies every materialized certificate — the build fails if any
    is rejected (Section 5 discipline).

    [~races:true] additionally runs the interprocedural lockset +
    interrupt-atomicity analysis ({!Sva_analysis.Lockset}) on the
    instrumented module: shared state reachable from both interrupt and
    syscall context is classified, unsynchronized access pairs are
    reported as findings, and every access the analysis certifies as
    protected carries an atomicity certificate re-verified by the
    trusted checker ({!Sva_tyck.Atomcert}) — the build fails if any
    certificate is rejected.

    [~poolcert:true] additionally evicts the points-to layer from the
    TCB: before devirtualization and check insertion run, the analysis
    results are distilled into a {!Sva_safety.Poolev.bundle} of
    membership tables and TH/completeness certificates; devirtualization
    appends a certificate per rewritten call and check insertion appends
    a record per points-to-justified elision; after instrumentation the
    trusted checker ({!Sva_tyck.Poolcert}) re-verifies the whole bundle
    against an independent scan of the instrumented module — the build
    fails if anything is rejected.  Certification is pure observation:
    the built module, summary, verdicts and modeled cycles are
    bit-identical with and without it.
    @raise Failure if the type checker rejects the annotations or the
    range-, atomicity- or pool-certificate checker rejects a certificate
    (a safety-checking-compiler bug). *)

val build_module :
  ?conf:conf ->
  ?aconfig:Pointsto.config ->
  ?options:Checkinsert.options ->
  ?typecheck:bool ->
  ?clone:bool ->
  ?devirt:bool ->
  ?checkopt:bool ->
  ?lint:bool ->
  ?lint_config:Sva_lint.Lint.config ->
  ?ranges:bool ->
  ?races:bool ->
  ?poolcert:bool ->
  name:string ->
  Irmod.t ->
  built
(** The analysis half of {!build}, for a module already loaded (e.g.
    decoded from bytecode by {!load_source}).  The optimization passes
    are assumed to have run. *)

val instantiate :
  ?sys:Sva_os.Svaos.t -> ?engine:engine_config -> ?smp:smp_config -> built ->
  Sva_interp.Interp.t
(** Load a built image into an SVM instance.  The SVA-OS mode follows the
    configuration (Native_inline for [Native], mediated otherwise); the
    run-time metapools are created — their lookup-cache shards threaded
    onto the instance's CPU context — and userspace is pre-registered in
    pools reachable from syscall arguments.  [engine] (default
    {!default_engine}) selects the execution tier; [Tiered] installs the
    closure compiler before any code — including the global-registration
    boot pass — runs.  [smp] (default {!default_smp}) sizes the modeled
    CPU array when the instance is created here; it does not re-size a
    caller-supplied [sys]. *)
